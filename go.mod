module ftpn

go 1.22
