#!/bin/sh
# Regenerate BENCH_PR1.json: the machine-readable performance report for
# the breakpoint-solver / parallel-runner / event-freelist optimization
# (README "Performance"). Runs the suite via the ftpnsim bench harness,
# then prints the go-bench view of the same targets for eyeballing.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/ftpnsim -exp bench -out BENCH_PR1.json
echo
echo "== go test -bench view =="
go test -run xxx -bench 'Table2MJPEG' -benchmem .
go test -run xxx -bench 'SupDiff|DetectionBound|DelayBound|OutputBound$' -benchmem ./internal/rtc/
go test -run xxx -bench . -benchmem ./internal/des/
