#!/bin/sh
# Regenerate the machine-readable performance reports:
#  - BENCH_PR1.json: breakpoint-solver / parallel-runner / event-freelist
#    optimization vs its seed baselines (README "Performance").
#  - BENCH_PR4.json: observability hook overhead — channel ops with hooks
#    disabled vs metrics installed, compared against the pre-probe tree's
#    hot path (DESIGN.md §9). The pre-probe ns/op baselines are measured
#    by checking the PR4_SEED_REV commit out into a throwaway worktree
#    and parsing the "runtime:" row of its own Table 2 output, so both
#    sides run on the same host back to back.
#  - BENCH_PR5.json: simulation-core throughput — bucket-queue scheduler
#    vs the heap oracle, SPSC channel fast path vs the locked oracle, and
#    the 1000-run campaign wall-clock against the PR5_SEED_REV worktree
#    (timed here, fed in via -seed-campaign-ns). The same worktree's DES
#    benchmarks are diffed against the new tree with benchstat when it is
#    installed; otherwise both raw outputs are printed.
#  - BENCH_PR6.json: sharded-simulation scaling — one simulation split
#    across conservative (Chandy–Misra) kernel shards, swept over shard
#    counts with per-point trace-identity checks and the per-app identity
#    matrix (DESIGN.md §11). The baseline is the in-suite single kernel.
#  - BENCH_PR9.json: detection-latency distribution over generated
#    topologies with the flight recorder armed, each latency checked
#    against its analytic (m,k) bound and its forensic reconstruction
#    (DESIGN.md §14). The probe-hook overhead rows are compared against
#    the pre-recorder tree (PR9_SEED_REV) with the same worktree recipe
#    as BENCH_PR4, so "what did the recorder hooks cost" is measured on
#    one host back to back.
# Finishes with the go-bench view of the same targets for eyeballing.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/ftpnsim -exp bench -out BENCH_PR1.json

echo
echo "== BENCH_PR4: observability hook overhead =="
PR4_SEED_REV=${PR4_SEED_REV:-2d673fa}
seed_sel=0
seed_rep=0
if git rev-parse --verify --quiet "$PR4_SEED_REV^{commit}" >/dev/null; then
    wt=$(mktemp -d)
    git worktree add --detach --force "$wt" "$PR4_SEED_REV" >/dev/null
    line=$( (cd "$wt" && go run ./cmd/ftpnsim -exp table2 -app mjpeg -runs 2 -tokens 120) \
        | grep 'runtime: selector' || true)
    git worktree remove --force "$wt" >/dev/null
    seed_sel=$(printf '%s' "$line" | sed -n 's/.*selector \([0-9][0-9]*\)ns\/op.*/\1/p')
    seed_rep=$(printf '%s' "$line" | sed -n 's/.*replicator \([0-9][0-9]*\)ns\/op.*/\1/p')
    echo "seed ($PR4_SEED_REV): selector ${seed_sel:-?}ns/op, replicator ${seed_rep:-?}ns/op"
else
    echo "seed revision $PR4_SEED_REV unavailable; skipping seed comparison"
fi
go run ./cmd/ftpnsim -exp obsbench -out BENCH_PR4.json \
    -seed-sel-ns "${seed_sel:-0}" -seed-rep-ns "${seed_rep:-0}"

echo
echo "== BENCH_PR5: simulation-core throughput =="
PR5_SEED_REV=${PR5_SEED_REV:-e403b6e}
seed_campaign_ns=0
old_bench=""
if git rev-parse --verify --quiet "$PR5_SEED_REV^{commit}" >/dev/null; then
    wt=$(mktemp -d)
    git worktree add --detach --force "$wt" "$PR5_SEED_REV" >/dev/null
    (cd "$wt" && go build -o ftpnsim ./cmd/ftpnsim)
    start=$(date +%s%N)
    "$wt/ftpnsim" -exp campaign -n 1000 -seed 1 -out /dev/null >/dev/null
    seed_campaign_ns=$(( $(date +%s%N) - start ))
    echo "seed ($PR5_SEED_REV): 1000-run campaign took ${seed_campaign_ns}ns"
    old_bench=$(mktemp)
    if ! (cd "$wt" && go test -run xxx -bench . -benchmem -count 5 ./internal/des/) >"$old_bench"; then
        old_bench=""
    fi
    git worktree remove --force "$wt" >/dev/null
else
    echo "seed revision $PR5_SEED_REV unavailable; skipping seed comparison"
fi
go run ./cmd/ftpnsim -exp corebench -n 1000 \
    -seed-campaign-ns "$seed_campaign_ns" -out BENCH_PR5.json
if [ -n "$old_bench" ]; then
    new_bench=$(mktemp)
    go test -run xxx -bench . -benchmem -count 5 ./internal/des/ >"$new_bench"
    if command -v benchstat >/dev/null 2>&1; then
        benchstat "$old_bench" "$new_bench"
    else
        echo "benchstat not installed; raw DES benchmark outputs follow"
        echo "--- seed ($PR5_SEED_REV)"
        cat "$old_bench"
        echo "--- this tree"
        cat "$new_bench"
    fi
fi

echo
echo "== BENCH_PR6: sharded-simulation scaling =="
# The suite carries its own single-kernel baseline and per-point trace
# identity checks, so no seed worktree is needed; the seed revision
# (PR6_SEED_REV) had no sharded kernel to compare against. benchstat
# compares the sequential-vs-sharded dispatch benchmark when installed.
go run ./cmd/ftpnsim -exp shardbench -shards 1,2,4,8 -out BENCH_PR6.json
shard_bench=$(mktemp)
if go test -run xxx -bench 'ShardDispatch' -benchmem -count 5 ./internal/des/ >"$shard_bench"; then
    if command -v benchstat >/dev/null 2>&1; then
        benchstat "$shard_bench"
    else
        cat "$shard_bench"
    fi
fi

echo
echo "== BENCH_PR9: detection-latency + flight-recorder overhead =="
PR9_SEED_REV=${PR9_SEED_REV:-42b1fb0}
seed_sel=0
seed_rep=0
if git rev-parse --verify --quiet "$PR9_SEED_REV^{commit}" >/dev/null; then
    wt=$(mktemp -d)
    git worktree add --detach --force "$wt" "$PR9_SEED_REV" >/dev/null
    line=$( (cd "$wt" && go run ./cmd/ftpnsim -exp table2 -app mjpeg -runs 2 -tokens 120) \
        | grep 'runtime: selector' || true)
    git worktree remove --force "$wt" >/dev/null
    seed_sel=$(printf '%s' "$line" | sed -n 's/.*selector \([0-9][0-9]*\)ns\/op.*/\1/p')
    seed_rep=$(printf '%s' "$line" | sed -n 's/.*replicator \([0-9][0-9]*\)ns\/op.*/\1/p')
    echo "seed ($PR9_SEED_REV): selector ${seed_sel:-?}ns/op, replicator ${seed_rep:-?}ns/op"
else
    echo "seed revision $PR9_SEED_REV unavailable; skipping seed comparison"
fi
go run ./cmd/ftpnsim -exp latbench -n 500 -seed 1 -out BENCH_PR9.json \
    -seed-sel-ns "${seed_sel:-0}" -seed-rep-ns "${seed_rep:-0}"

echo
echo "== go test -bench view =="
go test -run xxx -bench 'Table2MJPEG' -benchmem .
go test -run xxx -bench 'SupDiff|DetectionBound|DelayBound|OutputBound$' -benchmem ./internal/rtc/
go test -run xxx -bench . -benchmem ./internal/des/
go test -run xxx -bench 'SelectorHotPath|CounterInc|HistogramObserve|FlightRecord' -benchmem ./internal/ft/ ./internal/obs/
