package ftpn

// Benchmarks regenerating the paper's evaluation. One benchmark per
// table and figure, plus ablations of the design choices called out in
// DESIGN.md. Custom metrics (ms latencies, token counts) are attached
// with b.ReportMetric so `go test -bench` prints the paper-shaped
// numbers alongside the usual ns/op.
//
//	go test -bench 'Table' -benchmem      # Tables 1-3
//	go test -bench 'Fig' -benchmem        # Figures 1-2 (topologies)
//	go test -bench 'Ablation' -benchmem   # design-choice ablations

import (
	"testing"

	"ftpn/internal/crt"
	"ftpn/internal/des"
	"ftpn/internal/detect"
	"ftpn/internal/exp"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/scc"
)

// benchTokens keeps each in-benchmark simulation short enough to
// iterate; the ftpnsim CLI runs the full-length workloads.
const benchTokens = 120

// BenchmarkTable1 regenerates Table 1 (timing parameters).
func BenchmarkTable1(b *testing.B) {
	var rows []exp.Table1Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table1()
	}
	if len(rows) != 18 {
		b.Fatalf("table 1 rows = %d", len(rows))
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// table2Bench runs the Table 2 experiment for one application and
// reports its headline numbers.
func table2Bench(b *testing.B, name string) {
	b.Helper()
	var res *exp.Table2Result
	for i := 0; i < b.N; i++ {
		app, err := exp.AppByName(name, false, benchTokens)
		if err != nil {
			b.Fatal(err)
		}
		res, err = exp.Table2(app, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Undetected != 0 || res.FalsePos != 0 {
			b.Fatalf("undetected=%d falsePos=%d", res.Undetected, res.FalsePos)
		}
	}
	b.ReportMetric(float64(res.SelLatency.Mean())/1000, "sel-latency-ms")
	b.ReportMetric(float64(res.Sizing.SelBoundUs)/1000, "sel-bound-ms")
	b.ReportMetric(float64(res.RepLatency.Mean())/1000, "rep-latency-ms")
	b.ReportMetric(float64(res.Sizing.RepBoundUs)/1000, "rep-bound-ms")
	b.ReportMetric(float64(res.SelMaxFill), "sel-max-fill")
	b.ReportMetric(float64(res.Sizing.SelCaps[1]), "sel-cap")
}

// BenchmarkTable2MJPEG regenerates the MJPEG block of Table 2.
func BenchmarkTable2MJPEG(b *testing.B) { table2Bench(b, "mjpeg") }

// BenchmarkTable2MJPEGSequential runs the same experiment with the
// worker pool disabled — the baseline for the parallel-runner speedup
// (compare against BenchmarkTable2MJPEG; identical output either way).
func BenchmarkTable2MJPEGSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := exp.AppByName("mjpeg", false, benchTokens)
		if err != nil {
			b.Fatal(err)
		}
		res, err := exp.Table2(app, 4, exp.WithParallelism(1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Undetected != 0 || res.FalsePos != 0 {
			b.Fatalf("undetected=%d falsePos=%d", res.Undetected, res.FalsePos)
		}
	}
}

// BenchmarkTable2ADPCM regenerates the ADPCM block of Table 2.
func BenchmarkTable2ADPCM(b *testing.B) { table2Bench(b, "adpcm") }

// BenchmarkTable2H264 regenerates the H.264 variant the paper summarizes
// in prose ("similar results").
func BenchmarkTable2H264(b *testing.B) { table2Bench(b, "h264") }

// BenchmarkTable3 regenerates the distance-function comparison with the
// paper's 1 ms poll.
func BenchmarkTable3(b *testing.B) {
	var rows []exp.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Table3(2, 1000, benchTokens)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Undetected != 0 {
			b.Fatalf("%s: undetected", r.App)
		}
	}
	b.ReportMetric(float64(rows[1].Ours.Mean())/1000, "adpcm-ours-ms")
	b.ReportMetric(float64(rows[1].DF.Mean())/1000, "adpcm-df-ms")
	b.ReportMetric(float64(rows[0].Ours.Mean())/1000, "mjpeg-ours-ms")
	b.ReportMetric(float64(rows[0].DF.Mean())/1000, "mjpeg-df-ms")
	b.ReportMetric(float64(rows[2].Ours.Mean())/1000, "h264-ours-ms")
	b.ReportMetric(float64(rows[2].DF.Mean())/1000, "h264-df-ms")
}

// BenchmarkFig1Topology regenerates Figure 1: the reference network and
// its duplicated counterpart.
func BenchmarkFig1Topology(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		app, err := exp.AppByName("adpcm", false, 1)
		if err != nil {
			b.Fatal(err)
		}
		net, err := app.Build(nil)
		if err != nil {
			b.Fatal(err)
		}
		k := des.NewKernel()
		sys, err := ft.Build(k, net, ft.BuildConfig{})
		if err != nil {
			b.Fatal(err)
		}
		n = len(net.DOT()) + len(sys.DOT())
		k.Shutdown()
	}
	b.ReportMetric(float64(n), "dot-bytes")
}

// BenchmarkFig2Topology regenerates Figure 2: the MJPEG and ADPCM
// application graphs.
func BenchmarkFig2Topology(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		for _, name := range []string{"mjpeg", "adpcm"} {
			app, err := exp.AppByName(name, false, 1)
			if err != nil {
				b.Fatal(err)
			}
			net, err := app.Build(nil)
			if err != nil {
				b.Fatal(err)
			}
			n += len(net.DOT())
		}
	}
	b.ReportMetric(float64(n), "dot-bytes")
}

// BenchmarkSelectorOp measures the cost of one selector channel
// operation — the basis of Table 2's runtime-overhead row (the paper
// reports microseconds against a 30 ms period).
func BenchmarkSelectorOp(b *testing.B) {
	k := des.NewKernel()
	sel := ft.NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 4, nil, nil)
	tok := kpn.Token{Seq: 1}
	k.Spawn("driver", 0, func(p *des.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sel.WriterPort(1).Write(p, tok)
			sel.WriterPort(2).Write(p, tok)
			sel.ReaderPort().Read(p)
		}
	})
	k.Run(0)
	k.Shutdown()
}

// BenchmarkReplicatorOp measures one replicator channel operation.
func BenchmarkReplicatorOp(b *testing.B) {
	k := des.NewKernel()
	rep := ft.NewReplicator(k, "R", [2]int{8, 8}, nil)
	tok := kpn.Token{Seq: 1}
	k.Spawn("driver", 0, func(p *des.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep.WriterPort().Write(p, tok)
			rep.ReaderPort(1).Read(p)
			rep.ReaderPort(2).Read(p)
		}
	})
	k.Run(0)
	k.Shutdown()
}

// BenchmarkAblationSelector compares the paper's single-FIFO selector
// with virtual per-writer queues against a naive merge that buffers both
// replica streams in full FIFOs before deduplicating: the naive design
// doubles token-slot memory and adds a copy per duplicate pair.
func BenchmarkAblationSelector(b *testing.B) {
	b.Run("paper-single-fifo", func(b *testing.B) {
		k := des.NewKernel()
		sel := ft.NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 0, nil, nil)
		tok := kpn.Token{Seq: 1, Payload: make([]byte, 512)}
		k.Spawn("driver", 0, func(p *des.Proc) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel.WriterPort(1).Write(p, tok)
				sel.WriterPort(2).Write(p, tok)
				sel.ReaderPort().Read(p)
			}
		})
		k.Run(0)
		k.Shutdown()
	})
	b.Run("naive-double-fifo", func(b *testing.B) {
		k := des.NewKernel()
		f1 := kpn.NewFIFO(k, "m1", 8)
		f2 := kpn.NewFIFO(k, "m2", 8)
		tok := kpn.Token{Seq: 1, Payload: make([]byte, 512)}
		k.Spawn("driver", 0, func(p *des.Proc) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f1.Write(p, tok)
				f2.Write(p, tok)
				a := f1.Read(p)
				bb := f2.Read(p)
				if a.Seq != bb.Seq { // dedup compare
					b.Fail()
				}
			}
		})
		k.Run(0)
		k.Shutdown()
	})
}

// BenchmarkAblationPolling sweeps the distance-function poll period
// (§4.3: finer polling narrows the gap at higher overhead). Reported
// metric: mean detection latency in ms for the ADPCM app.
func BenchmarkAblationPolling(b *testing.B) {
	for _, poll := range []des.Time{200, 1000, 5000} {
		poll := poll
		b.Run(formatUs(poll), func(b *testing.B) {
			var mean int64
			for i := 0; i < b.N; i++ {
				row, err := exp.Table3ADPCMOnly(2, poll, benchTokens)
				if err != nil {
					b.Fatal(err)
				}
				mean = row.DF.Mean()
			}
			b.ReportMetric(float64(mean)/1000, "df-latency-ms")
		})
	}
}

// BenchmarkAblationThreshold sweeps the divergence threshold D around
// the analytic value: D below eq. 5's bound produces false positives
// (the reported "latency" then goes negative — detection fired before
// the injection, i.e. spuriously), while larger D slows detection
// (eq. 8 grows linearly in D).
func BenchmarkAblationThreshold(b *testing.B) {
	app := exp.ADPCMApp(false, benchTokens)
	sizing, err := exp.ComputeSizing(app)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		d    int64
	}{
		{"D-below-eq5", 1},         // below the eq. 5 bound: false positives
		{"D-analytic", sizing.D},   // the paper's design point
		{"D-double", 2 * sizing.D}, // safe but slower detection
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var fp int
			var latency int64
			for i := 0; i < b.N; i++ {
				fp, latency = runThresholdProbe(b, app, sizing, v.d)
			}
			b.ReportMetric(float64(fp), "false-positives")
			b.ReportMetric(float64(latency)/1000, "latency-ms")
		})
	}
}

// runThresholdProbe runs one fault-free and one faulty simulation with
// an overridden selector threshold. Selector stall capacities are
// inflated so the divergence detector is the only selector mechanism in
// play, isolating the effect of D.
func runThresholdProbe(b *testing.B, app exp.App, sizing exp.Sizing, d int64) (falsePos int, latency int64) {
	b.Helper()
	cfg := sizing.BuildConfig(app)
	cfg.SelectorD = map[string]int64{app.OutChan: d}
	// Stall detection fires when the consumer outruns a replica by the
	// initial fill; inflating caps AND inits pushes it out of the way so
	// only the divergence detector (the ablated mechanism) remains.
	cfg.SelectorCaps = map[string][2]int{app.OutChan: {64, 64}}
	cfg.SelectorInits = map[string][2]int{app.OutChan: {32, 32}}
	cfg.ReplicatorD = nil // replicator divergence off: isolate the selector

	// Fault-free probe.
	net, err := app.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	falsePos = len(sys.Faults)

	// Faulty probe.
	net2, err := app.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	k2 := des.NewKernel()
	sys2, err := ft.Build(k2, net2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	injectAt := des.Time(app.Tokens/2) * app.PeriodUs
	sys2.InjectFault(1, injectAt, fault.StopProducing, 0)
	k2.Run(0)
	k2.Shutdown()
	for _, f := range sys2.Faults {
		if f.Replica == 1 && f.Channel == app.OutChan {
			latency = f.At - injectAt
			break
		}
	}
	return falsePos, latency
}

// BenchmarkAblationReplicatorBuffer compares the paper's two-queue
// replicator against the §3.1-suggested shared circular buffer with two
// read cursors (one token stored once instead of twice).
func BenchmarkAblationReplicatorBuffer(b *testing.B) {
	b.Run("two-queues", func(b *testing.B) {
		k := des.NewKernel()
		rep := ft.NewReplicator(k, "R", [2]int{8, 8}, nil)
		tok := kpn.Token{Seq: 1, Payload: make([]byte, 512)}
		k.Spawn("driver", 0, func(p *des.Proc) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.WriterPort().Write(p, tok)
				rep.ReaderPort(1).Read(p)
				rep.ReaderPort(2).Read(p)
			}
		})
		k.Run(0)
		k.Shutdown()
	})
	b.Run("shared-ring", func(b *testing.B) {
		k := des.NewKernel()
		rep := ft.NewSharedReplicator(k, "R", 8, nil)
		tok := kpn.Token{Seq: 1, Payload: make([]byte, 512)}
		k.Spawn("driver", 0, func(p *des.Proc) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.WriterPort().Write(p, tok)
				rep.ReaderPort(1).Read(p)
				rep.ReaderPort(2).Read(p)
			}
		})
		k.Run(0)
		k.Shutdown()
	})
}

// BenchmarkAblationChunking sweeps the iRCCE chunk size for a decoded
// MJPEG frame transfer (§4.1's design choice): chunks above the 3 KB
// MPB limit fall back to DDR3 and get strictly slower, smaller chunks
// pay more synchronization overhead — 3 KB is the sweet spot.
func BenchmarkAblationChunking(b *testing.B) {
	chip, err := scc.New(scc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	src, dst := chip.Core(0), chip.Core(2)
	const frameBytes = 76800 // decoded 320x240 frame
	for _, chunk := range []int{1024, 3072, 8192} {
		chunk := chunk
		b.Run("chunk-"+itoa(chunk/1024)+"KB", func(b *testing.B) {
			var t des.Time
			for i := 0; i < b.N; i++ {
				t = chip.TransferTimeChunked(src, dst, frameBytes, chunk)
			}
			b.ReportMetric(float64(t), "transfer-us")
		})
	}
}

// BenchmarkRuntimes compares the deterministic simulation runtime
// against the concurrent goroutine runtime moving the same token stream
// through a replicator+selector pair — the cost of determinism.
func BenchmarkRuntimes(b *testing.B) {
	b.Run("des-deterministic", func(b *testing.B) {
		k := des.NewKernel()
		rep := ft.NewReplicator(k, "R", [2]int{8, 8}, nil)
		sel := ft.NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 0, nil, nil)
		tok := kpn.Token{Seq: 1, Payload: make([]byte, 64)}
		k.Spawn("driver", 0, func(p *des.Proc) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.WriterPort().Write(p, tok)
				sel.WriterPort(1).Write(p, rep.ReaderPort(1).Read(p))
				sel.WriterPort(2).Write(p, rep.ReaderPort(2).Read(p))
				sel.ReaderPort().Read(p)
			}
		})
		k.Run(0)
		k.Shutdown()
	})
	b.Run("crt-goroutines", func(b *testing.B) {
		clock := crt.NewWallClock()
		rep := crt.NewReplicator(clock, "R", [2]int{8, 8}, nil)
		sel := crt.NewSelector(clock, "S", [2]int{8, 8}, [2]int{0, 0}, 0, nil)
		for r := 1; r <= 2; r++ {
			r := r
			go func() {
				for {
					tok, ok := rep.Read(r)
					if !ok {
						return
					}
					if !sel.Write(r, tok) {
						return
					}
				}
			}()
		}
		// The crt replicator convicts instead of blocking, so the driver
		// provides end-to-end flow control with a semaphore sized under
		// the queue capacities.
		sem := make(chan struct{}, 4)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				if _, ok := sel.Read(); !ok {
					return
				}
				<-sem
			}
		}()
		tok := crt.Token{Seq: 1, Payload: make([]byte, 64)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sem <- struct{}{}
			rep.Write(tok)
		}
		<-done
		b.StopTimer()
		rep.Close()
		sel.Close()
	})
}

// BenchmarkDistanceMonitorPoll measures the baseline monitor's per-poll
// cost (its standing runtime overhead even when nothing is wrong).
func BenchmarkDistanceMonitorPoll(b *testing.B) {
	k := des.NewKernel()
	mon := detect.NewDistanceMonitor(k, "m", 1000, []des.Time{1 << 40}, nil)
	mon.Start()
	mon.OnEvent(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(k.Now() + 1000)
	}
	b.StopTimer()
	k.Shutdown()
}

// formatUs renders a µs value for sub-benchmark names.
func formatUs(us des.Time) string {
	switch {
	case us >= 1000 && us%1000 == 0:
		return "poll-" + itoa(int(us/1000)) + "ms"
	default:
		return "poll-" + itoa(int(us)) + "us"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
