// Quickstart: build a tiny real-time process network, duplicate its
// critical subnetwork with the ft transform, size the channels with
// real-time calculus, inject a timing fault, and watch the framework
// detect and tolerate it — all in ~100 lines.
package main

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

func main() {
	// A producer emitting a token every 10 ms (±1 ms), a critical worker
	// squaring the payload, and a consumer at the same rate.
	producer := rtc.PJD{Period: 10_000, Jitter: 1_000}
	consumer := rtc.PJD{Period: 10_000, Jitter: 1_000}

	var received []int64
	net := &kpn.Network{
		Name: "quickstart",
		Procs: []kpn.ProcessSpec{
			{Name: "P", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
				return kpn.Producer(producer, 1, 2000, func(i int64) []byte {
					return []byte{byte(i), byte(i >> 8)}
				})
			}},
			{Name: "W", Role: kpn.RoleCritical, New: func(replica int) kpn.Behavior {
				// Replica design diversity: replica 2 is jitterier.
				work := kpn.WorkModel{BaseUs: 2_000, JitterUs: des.Time(replica) * 2_000}
				return kpn.Transform(work, 7, func(i int64, b []byte) []byte {
					v := int64(b[0]) | int64(b[1])<<8
					v *= v
					return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
				})
			}},
			{Name: "C", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
				return kpn.Consumer(consumer, 2, 2000, func(now des.Time, tok kpn.Token) {
					if tok.Seq > 0 {
						received = append(received, tok.Seq)
					}
				})
			}},
		},
		Chans: []kpn.ChannelSpec{
			{Name: "F_P", From: "P", To: "W", Capacity: 4, TokenBytes: 2},
			{Name: "F_C", From: "W", To: "C", Capacity: 8, InitialTokens: 2, TokenBytes: 4},
		},
	}

	// Size the duplicated system analytically (Section 3.4 of the paper).
	out1 := rtc.PJD{Period: 10_000, Jitter: 6_000} // replica 1 output envelope
	out2 := rtc.PJD{Period: 10_000, Jitter: 8_000} // replica 2 output envelope
	h := rtc.Horizon(producer, consumer, out1, out2)
	d, err := rtc.DivergenceThreshold(out1.Upper(), out1.Lower(), out2.Upper(), out2.Lower(), h)
	check(err)
	init1, err := rtc.InitialFill(out1.Lower(), consumer.Upper(), h)
	check(err)
	init2, err := rtc.InitialFill(out2.Lower(), consumer.Upper(), h)
	check(err)
	bound, err := rtc.StoppedDetectionBound([]rtc.Curve{out1.Lower(), out2.Lower()}, d, 8*h)
	check(err)
	fmt.Printf("analytic design: D=%d  |S|0=(%d,%d)  detection bound=%.1f ms\n",
		d, init1, init2, float64(bound)/1000)

	// Build the duplicated system and inject a stop fault into replica 1
	// at t = 5 s.
	k := des.NewKernel()
	sys, err := ft.Build(k, net, ft.BuildConfig{
		SelectorCaps:  map[string][2]int{"F_C": {2 * int(init1), 2 * int(init2)}},
		SelectorInits: map[string][2]int{"F_C": {int(init1), int(init2)}},
		SelectorD:     map[string]int64{"F_C": d},
		OnFault: func(f ft.Fault) {
			fmt.Printf("t=%6.1f ms  DETECTED %s\n", float64(f.At)/1000, f)
		},
	})
	check(err)
	const injectAt = 5_000_000
	sys.InjectFault(1, injectAt, fault.StopAll, 0)
	fmt.Printf("t=%6.1f ms  injecting stop fault into replica 1\n", float64(injectAt)/1000)

	k.Run(0)
	k.Shutdown()

	f, ok := sys.FirstFault(1)
	if !ok {
		panic("fault not detected")
	}
	fmt.Printf("detection latency: %.1f ms (bound %.1f ms)\n",
		float64(f.At-injectAt)/1000, float64(bound)/1000)
	fmt.Printf("consumer received %d tokens without interruption; false positives: %d\n",
		len(received), len(sys.FalsePositives()))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
