// Sizing walkthrough: use the real-time calculus package directly to
// size the FIFOs and thresholds of a custom application, the way a
// designer would apply Section 3.4 of the paper — including calibrating
// arrival curves from a measured trace instead of a PJD model.
package main

import (
	"fmt"

	"ftpn/internal/rtc"
)

func main() {
	// Suppose a radar front-end delivers bursts: nominally every 5 ms
	// with up to 12 ms jitter, never closer than 1 ms.
	producer := rtc.PJD{Period: 5_000, Jitter: 12_000, MinDist: 1_000}
	// Two diversified replicas of the processing chain.
	rep1 := rtc.PJD{Period: 5_000, Jitter: 14_000}
	rep2 := rtc.PJD{Period: 5_000, Jitter: 20_000}
	consumer := rtc.PJD{Period: 5_000, Jitter: 2_000}
	h := rtc.Horizon(producer, rep1, rep2, consumer)

	// Eq. 3: replicator queue capacities.
	for i, m := range []rtc.PJD{rep1, rep2} {
		c, err := rtc.BufferCapacity(producer.Upper(), m.Lower(), h)
		check(err)
		fmt.Printf("|R%d| = %d tokens (eq. 3)\n", i+1, c)
	}

	// Eq. 4: initial fill so the consumer never stalls.
	for i, m := range []rtc.PJD{rep1, rep2} {
		f, err := rtc.InitialFill(m.Lower(), consumer.Upper(), h)
		check(err)
		fmt.Printf("|S%d|0 = %d tokens, |S%d| = %d (eq. 4)\n", i+1, f, i+1, 2*f)
	}

	// Eq. 5: divergence threshold.
	d, err := rtc.DivergenceThreshold(rep1.Upper(), rep1.Lower(), rep2.Upper(), rep2.Lower(), h)
	check(err)
	fmt.Printf("D = %d (eq. 5, no false positives)\n", d)

	// Eq. 8: worst-case detection latency for a fail-silent replica.
	b, err := rtc.StoppedDetectionBound([]rtc.Curve{rep1.Lower(), rep2.Lower()}, d, 8*h)
	check(err)
	fmt.Printf("max detection latency = %.1f ms (eq. 8)\n", float64(b)/1000)

	// Eq. 6: a degraded (not stopped) replica that still produces at a
	// third of the required rate takes longer to convict.
	degraded := rtc.PJD{Period: 15_000, Jitter: 20_000}
	b2, err := rtc.DetectionBound(rep1.Lower(), degraded.Upper(), d, 64*h)
	check(err)
	fmt.Printf("degraded-replica detection latency = %.1f ms (eq. 6)\n", float64(b2)/1000)

	// Calibration path (§3.4: curves "derived from calibration
	// experiments"): build arrival curves from an observed trace.
	var ts []rtc.Time
	state := int64(42)
	t := rtc.Time(0)
	for i := 0; i < 400; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		t += 4_000 + ((state>>33)&0x7FFFFFFF)%3_000 // 4-7 ms gaps
		ts = append(ts, t)
	}
	upper, lower, err := rtc.CalibratedCurves(ts, 64)
	check(err)
	// Calibrated curves carry an exact transient as long as the trace;
	// scan several times past it so the supremum provably converges.
	hCal := 4 * ts[len(ts)-1]
	cap2, err := rtc.BufferCapacity(upper, rep1.Lower(), hCal)
	check(err)
	fmt.Printf("calibrated producer: upper(10ms)=%d lower(10ms)=%d, |R| vs replica 1 = %d\n",
		upper.Eval(10_000), lower.Eval(10_000), cap2)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
