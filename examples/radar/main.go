// Fault-tolerant radar processing — the streaming domain the paper's
// introduction motivates. The critical subnetwork (matched filter →
// envelope → CFAR) is duplicated; a stop fault hits one replica
// mid-scan, detection lists keep flowing to the tracker, and the
// planted targets stay tracked throughout.
package main

import (
	"flag"
	"fmt"

	"ftpn/internal/apps"
	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

func main() {
	scans := flag.Int64("scans", 200, "coherent processing intervals to run")
	flag.Parse()

	cfg := apps.DefaultRadarConfig()
	cfg.Intervals = *scans

	// Size the boundary channels analytically from the radar's models.
	in1, in2 := cfg.ReplicaInputModel(1), cfg.ReplicaInputModel(2)
	out1, out2 := cfg.ReplicaOutputModel(1), cfg.ReplicaOutputModel(2)
	h := rtc.Horizon(cfg.Producer, cfg.Consumer, in1, in2, out1, out2)
	rcap1, err := rtc.BufferCapacity(cfg.Producer.Upper(), in1.Lower(), h)
	check(err)
	rcap2, err := rtc.BufferCapacity(cfg.Producer.Upper(), in2.Lower(), h)
	check(err)
	init1, err := rtc.InitialFill(out1.Lower(), cfg.Consumer.Upper(), h)
	check(err)
	init2, err := rtc.InitialFill(out2.Lower(), cfg.Consumer.Upper(), h)
	check(err)
	d, err := rtc.DivergenceThreshold(out1.Upper(), out1.Lower(), out2.Upper(), out2.Lower(), h)
	check(err)
	fmt.Printf("radar sizing: |R|=(%d,%d) |S|0=(%d,%d) D=%d\n", rcap1, rcap2, init1, init2, d)

	var scansWithTargets, total int
	net, err := apps.RadarNetwork(cfg, func(now des.Time, tok kpn.Token) {
		if tok.Seq <= 0 {
			return
		}
		total++
		dets, err := apps.DetectionsFromToken(tok)
		check(err)
		hits := 0
		for _, target := range cfg.Targets {
			for _, det := range dets {
				if det.Cell >= target+cfg.PulseLen-10 && det.Cell <= target+cfg.PulseLen+10 {
					hits++
					break
				}
			}
		}
		if hits == len(cfg.Targets) {
			scansWithTargets++
		}
	})
	check(err)

	k := des.NewKernel()
	sys, err := ft.Build(k, net, ft.BuildConfig{
		ReplicatorCaps: map[string][2]int{"F_in": {int(rcap1), int(rcap2)}},
		ReplicatorD:    map[string]int64{"F_in": d},
		SelectorCaps:   map[string][2]int{"F_out": {2 * int(init1), 2 * int(init2)}},
		SelectorInits:  map[string][2]int{"F_out": {int(init1), int(init2)}},
		SelectorD:      map[string]int64{"F_out": d},
		OnFault: func(f ft.Fault) {
			fmt.Printf("t=%8.1f ms  DETECTED %s\n", float64(f.At)/1000, f)
		},
	})
	check(err)
	injectAt := des.Time(*scans/2) * cfg.Producer.Period
	sys.InjectFault(1, injectAt, fault.StopAll, 0)
	fmt.Printf("t=%8.1f ms  replica 1 stops mid-scan\n", float64(injectAt)/1000)
	k.Run(0)
	k.Shutdown()

	if _, ok := sys.FirstFault(1); !ok {
		panic("fault not detected")
	}
	fmt.Printf("tracker received %d scans; both targets present in %d (%.1f%%)\n",
		total, scansWithTargets, 100*float64(scansWithTargets)/float64(total))
	fmt.Printf("false positives: %d\n", len(sys.FalsePositives()))
	if scansWithTargets < total*9/10 {
		panic("target tracking degraded despite fault tolerance")
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
