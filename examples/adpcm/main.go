// Fault-tolerant ADPCM pipeline with a rate-degradation fault: unlike a
// fail-stop fault, the faulty replica keeps producing — just slower than
// its design-time model allows. The selector's divergence threshold
// (eq. 5) catches it without any runtime timer, and the audio the
// consumer hears is bit-identical to the reference run.
package main

import (
	"flag"
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
)

func main() {
	blocks := flag.Int64("blocks", 600, "3 KB audio blocks to stream")
	extra := flag.Int64("slowdown", 15000, "extra µs per channel operation after the fault")
	flag.Parse()

	app := exp.ADPCMApp(false, *blocks)
	sizing, err := exp.ComputeSizing(app)
	check(err)
	fmt.Printf("analytic sizing: |R|=(%d,%d) |S|=(%d,%d) D=%d, DRep=%d\n",
		sizing.RepCaps[0], sizing.RepCaps[1], sizing.SelCaps[0], sizing.SelCaps[1],
		sizing.D, sizing.DRep)

	// Reference run: collect the byte stream the consumer hears.
	var refAudio []uint64
	refNet, err := app.Build(func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			refAudio = append(refAudio, tok.Hash())
		}
	})
	check(err)
	k1 := des.NewKernel()
	_, err = refNet.Instantiate(k1, kpn.Options{})
	check(err)
	k1.Run(0)
	k1.Shutdown()

	// Duplicated run with a degradation fault in replica 1.
	var dupAudio []uint64
	dupNet, err := app.Build(func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			dupAudio = append(dupAudio, tok.Hash())
		}
	})
	check(err)
	cfg := sizing.BuildConfig(app)
	cfg.OnFault = func(f ft.Fault) {
		fmt.Printf("t=%8.1f ms  DETECTED %s\n", float64(f.At)/1000, f)
	}
	k2 := des.NewKernel()
	sys, err := ft.Build(k2, dupNet, cfg)
	check(err)
	injectAt := des.Time(*blocks/2) * app.PeriodUs
	sys.InjectFault(1, injectAt, fault.Degrade, des.Time(*extra))
	fmt.Printf("t=%8.1f ms  degrading replica 1 by +%d µs per operation\n",
		float64(injectAt)/1000, *extra)
	k2.Run(0)
	k2.Shutdown()

	// The consumer's audio must be identical despite the fault. (The two
	// runs may consume a different number of preloaded tokens, so their
	// produced streams can differ in length by that amount; both start at
	// block 1, so the common prefix must match bit for bit.)
	n := len(refAudio)
	if len(dupAudio) < n {
		n = len(dupAudio)
	}
	if n == 0 {
		panic("no audio delivered")
	}
	for i := 0; i < n; i++ {
		if refAudio[i] != dupAudio[i] {
			panic(fmt.Sprintf("audio block %d differs between reference and duplicated runs", i))
		}
	}
	f, ok := sys.FirstFault(1)
	if !ok {
		panic("degradation fault not detected")
	}
	fmt.Printf("audio bit-identical across %d blocks; degradation detected %.1f ms after onset (%s at %s)\n",
		n, float64(f.At-injectAt)/1000, f.Reason, f.Channel)
	fmt.Printf("false positives: %d\n", len(sys.FalsePositives()))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
