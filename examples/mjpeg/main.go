// Fault-tolerant MJPEG decoder on the SCC platform model: the paper's
// first benchmark application end to end. The reference network and the
// duplicated network run on a simulated 48-core SCC (one process per
// tile, iRCCE-style message timing); a stop fault is injected into one
// replica and the decoded-frame stream at the consumer is shown to be
// unaffected, with the detection latency compared against the analytic
// bound.
package main

import (
	"flag"
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/scc"
	"ftpn/internal/trace"
)

func main() {
	frames := flag.Int64("frames", 400, "frames to decode")
	replica := flag.Int("replica", 2, "replica to fault (1 or 2)")
	flag.Parse()

	app := exp.MJPEGApp(false, *frames)
	sizing, err := exp.ComputeSizing(app)
	check(err)
	fmt.Printf("analytic sizing: |R|=(%d,%d) |S|=(%d,%d) |S|0=(%d,%d) D=%d\n",
		sizing.RepCaps[0], sizing.RepCaps[1], sizing.SelCaps[0], sizing.SelCaps[1],
		sizing.SelInits[0], sizing.SelInits[1], sizing.D)
	fmt.Printf("detection bounds: selector %.1f ms, replicator %.1f ms\n",
		float64(sizing.SelBoundUs)/1000, float64(sizing.RepBoundUs)/1000)

	chip, err := scc.New(scc.DefaultConfig())
	check(err)
	fmt.Printf("SCC booted: %d cores on %d tiles, %d/%d/%d MHz\n",
		scc.NumCores, scc.NumTiles,
		chip.Config().TileFreqMHz, chip.Config().RouterFreqMHz, chip.Config().MemFreqMHz)

	arrivals := &trace.Arrivals{}
	var frameBytes int
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		arrivals.Record(now)
		if tok.Seq > 0 {
			frameBytes = tok.Size()
		}
	})
	check(err)

	cfg := sizing.BuildConfig(app)
	cfg.Chip = chip
	cfg.OnFault = func(f ft.Fault) {
		fmt.Printf("t=%8.1f ms  DETECTED %s\n", float64(f.At)/1000, f)
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, cfg)
	check(err)

	injectAt := des.Time(*frames/2) * app.PeriodUs
	sys.InjectFault(*replica, injectAt, fault.StopAll, 0)
	fmt.Printf("t=%8.1f ms  injecting stop fault into replica %d\n", float64(injectAt)/1000, *replica)

	end := k.Run(0)
	k.Shutdown()

	f, ok := sys.FirstFault(*replica)
	if !ok {
		panic("fault not detected")
	}
	inter := arrivals.Inter(sizing.SelInits[1] + 2)
	fmt.Printf("simulated %.1f s of virtual time\n", float64(end)/1e6)
	fmt.Printf("decoded %d frames of %d bytes; inter-frame ms: min %.1f max %.1f mean %.1f\n",
		arrivals.Count(), frameBytes,
		float64(inter.Min())/1000, float64(inter.Max())/1000, float64(inter.Mean())/1000)
	fmt.Printf("detection latency %.1f ms (bound %.1f ms); false positives: %d\n",
		float64(f.At-injectAt)/1000, float64(sizing.SelBoundUs)/1000, len(sys.FalsePositives()))
	fmt.Printf("selector drops (late duplicates): R1=%d R2=%d\n",
		sys.Selectors["F_out"].Drops(1), sys.Selectors["F_out"].Drops(2))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
