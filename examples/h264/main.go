// Fault-tolerant H.264 encoder: the paper's third benchmark. Both
// replicas encode the same raw frames into slices; a fail-stop fault
// hits one replica mid-run and the consumer's bitstream continues
// uninterrupted. The example also decodes the consumer's bitstream with
// the matching decoder as a value self-check.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"

	"ftpn/internal/codec/h264"
	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
)

func main() {
	frames := flag.Int64("frames", 400, "frames to encode")
	flag.Parse()

	app := exp.H264App(false, *frames)
	sizing, err := exp.ComputeSizing(app)
	check(err)
	fmt.Printf("analytic sizing: |R|=(%d,%d) |S|=(%d,%d) D=%d\n",
		sizing.RepCaps[0], sizing.RepCaps[1], sizing.SelCaps[0], sizing.SelCaps[1], sizing.D)

	var encoded [][]byte
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			encoded = append(encoded, append([]byte{}, tok.Payload...))
		}
	})
	check(err)

	cfg := sizing.BuildConfig(app)
	cfg.OnFault = func(f ft.Fault) {
		fmt.Printf("t=%8.1f ms  DETECTED %s\n", float64(f.At)/1000, f)
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, cfg)
	check(err)
	injectAt := des.Time(*frames/2) * app.PeriodUs
	sys.InjectFault(2, injectAt, fault.StopAll, 0)
	fmt.Printf("t=%8.1f ms  injecting stop fault into replica 2\n", float64(injectAt)/1000)
	k.Run(0)
	k.Shutdown()

	if _, ok := sys.FirstFault(2); !ok {
		panic("fault not detected")
	}
	// Self-check: every muxed token decodes back into raw slices.
	var totalBits int
	for _, tok := range encoded {
		for len(tok) > 0 {
			n := int(binary.BigEndian.Uint32(tok[:4]))
			slice := tok[4 : 4+n]
			if _, _, _, err := h264.Decode(slice); err != nil {
				panic(fmt.Sprintf("slice failed to decode: %v", err))
			}
			totalBits += n * 8
			tok = tok[4+n:]
		}
	}
	fmt.Printf("encoded %d frames despite the fault; bitstream self-check passed (%.1f KB total)\n",
		len(encoded), float64(totalBits)/8/1024)
	fmt.Printf("false positives: %d\n", len(sys.FalsePositives()))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
