// Live demo: the fault-tolerance framework running on real goroutines
// and wall-clock time (package crt) instead of the simulator. A
// producer streams tokens every few milliseconds through two replica
// pipelines into a selector; halfway through, one replica goroutine is
// stopped, and the counter-based detectors convict it while the
// consumer's stream continues without a hiccup.
package main

import (
	"flag"
	"fmt"
	"sync/atomic"
	"time"

	"ftpn/internal/codec/adpcm"
	"ftpn/internal/crt"
)

func main() {
	tokens := flag.Int64("tokens", 400, "tokens to stream")
	period := flag.Duration("period", 5*time.Millisecond, "producer period")
	flag.Parse()

	clock := crt.NewWallClock()
	onFault := func(f crt.Fault) { fmt.Printf("  [%8v] DETECTED %s\n", f.At.Round(time.Millisecond), f) }

	rep := crt.NewReplicator(clock, "R", [2]int{4, 4}, onFault)
	sel := crt.NewSelector(clock, "S", [2]int{8, 8}, [2]int{3, 3}, 4, onFault)

	var stopReplica1 atomic.Bool
	injectAt := time.Duration(*tokens/2) * *period

	// Replica pipelines: read raw PCM, ADPCM-encode+decode it, forward.
	for r := 1; r <= 2; r++ {
		r := r
		go func() {
			for {
				tok, ok := rep.Read(r)
				if !ok {
					return
				}
				if r == 1 && stopReplica1.Load() {
					return // the fault: replica 1's goroutine dies
				}
				samples := make([]int16, len(tok.Payload)/2)
				for i := range samples {
					samples[i] = int16(tok.Payload[2*i]) | int16(tok.Payload[2*i+1])<<8
				}
				block, err := adpcm.EncodeBlock(samples)
				if err != nil {
					panic(err)
				}
				decoded, err := adpcm.DecodeBlock(block)
				if err != nil {
					panic(err)
				}
				out := make([]byte, len(decoded)*2)
				for i, v := range decoded {
					out[2*i] = byte(v)
					out[2*i+1] = byte(v >> 8)
				}
				if !sel.Write(r, crt.Token{Seq: tok.Seq, Payload: out}) {
					return
				}
			}
		}()
	}

	// Consumer: paced at the producer period — a consumer that reads
	// greedily would outrun the slower replica's guarantee and trip the
	// stall detector spuriously (that is eq. 4's whole point: the
	// initial fill covers the consumer's *declared* envelope, not an
	// unbounded appetite).
	consumed := make(chan int64, 1)
	go func() {
		var n int64
		var last time.Duration
		var worst time.Duration
		for {
			clock.Sleep(*period)
			tok, ok := sel.Read()
			if !ok {
				break
			}
			now := clock.Now()
			if tok.Seq > 1 && last > 0 {
				if gap := now - last; gap > worst {
					worst = gap
				}
			}
			last = now
			n++
			if n == *tokens {
				break
			}
		}
		fmt.Printf("consumer: %d tokens, worst inter-arrival %v\n", n, worst.Round(time.Millisecond))
		consumed <- n
	}()

	fmt.Printf("streaming %d tokens at %v; replica 1 dies at %v\n", *tokens, *period, injectAt)
	go func() {
		clock.Sleep(injectAt)
		stopReplica1.Store(true)
		fmt.Printf("  [%8v] replica 1 goroutine stopped\n", clock.Now().Round(time.Millisecond))
	}()

	for i := int64(1); i <= *tokens; i++ {
		payload := make([]byte, 256)
		for j := range payload {
			payload[j] = byte(i + int64(j))
		}
		rep.Write(crt.Token{Seq: i, Payload: payload})
		clock.Sleep(*period)
	}
	n := <-consumed
	rep.Close()
	sel.Close()

	ok1, at := rep.Faulty(1)
	sok1, sat, sreason := sel.Faulty(1)
	fmt.Printf("replicator convicted R1: %v (at %v); selector convicted R1: %v (%s at %v)\n",
		ok1, at.Round(time.Millisecond), sok1, sreason, sat.Round(time.Millisecond))
	if n < *tokens-8 {
		panic("consumer starved despite fault tolerance")
	}
	if ok2, _ := rep.Faulty(2); ok2 {
		panic("healthy replica convicted at the replicator")
	}
	if ok2, _, _ := sel.Faulty(2); ok2 {
		panic("healthy replica convicted at the selector")
	}
	fmt.Println("healthy replica kept the stream alive; no false positives")
}
