// Live demo: the fault-tolerance framework running on real goroutines
// and wall-clock time (package crt) instead of the simulator. A
// producer streams tokens every few milliseconds through two replica
// pipelines into a selector; halfway through, one replica goroutine is
// stopped, and the counter-based detectors convict it while the
// consumer's stream continues without a hiccup. With -recover (the
// default) the dead replica is then repaired: its goroutine is
// respawned, its replicator queue re-armed from the healthy backlog and
// its selector interface re-synchronized, restoring full redundancy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftpn/internal/codec/adpcm"
	"ftpn/internal/crt"
	"ftpn/internal/obs"
)

type config struct {
	tokens   int64
	period   time.Duration
	duration time.Duration // hard wall-clock cap (0 = uncapped)
	recover  bool
	httpAddr string // observability endpoint ("" = off)

	// onHTTP, when non-nil, receives the endpoint's bound address once
	// it is listening (tests pass ":0" and dial back).
	onHTTP func(addr string)
}

func main() {
	var cfg config
	flag.Int64Var(&cfg.tokens, "tokens", 400, "tokens to stream")
	flag.DurationVar(&cfg.period, "period", 5*time.Millisecond, "producer period")
	flag.DurationVar(&cfg.duration, "duration", 30*time.Second, "hard wall-clock cap on the demo (0 = uncapped)")
	flag.BoolVar(&cfg.recover, "recover", true, "repair, re-integrate and respawn the dead replica")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080; empty = off)")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "live:", err)
		os.Exit(1)
	}
}

// pipeline is one replica's work loop: read raw PCM from the
// replicator, ADPCM-encode+decode it, forward to the selector. gen
// guards against a superseded incarnation of replica 1 racing its
// respawned successor for queue tokens.
func pipeline(rep *crt.Replicator, sel *crt.Selector, r int, gen *atomic.Int64, mygen int64) {
	for {
		tok, ok := rep.Read(r)
		if !ok {
			return
		}
		if r == 1 && gen.Load() != mygen {
			return // killed (the fault) or superseded by a respawn
		}
		samples := make([]int16, len(tok.Payload)/2)
		for i := range samples {
			samples[i] = int16(tok.Payload[2*i]) | int16(tok.Payload[2*i+1])<<8
		}
		block, err := adpcm.EncodeBlock(samples)
		if err != nil {
			panic(err)
		}
		decoded, err := adpcm.DecodeBlock(block)
		if err != nil {
			panic(err)
		}
		out := make([]byte, len(decoded)*2)
		for i, v := range decoded {
			out[2*i] = byte(v)
			out[2*i+1] = byte(v >> 8)
		}
		if !sel.Write(r, crt.Token{Seq: tok.Seq, Payload: out}) {
			return
		}
	}
}

// probeKinds are the crt channel event kinds (crt.ProbeEvent.Kind).
var probeKinds = []string{
	"write", "enqueue", "read", "drop-duplicate", "drop-lost",
	"drop-resync", "reintegrate", "aligned",
}

// channelProbe builds a metrics probe for one crt channel: a pre-bound
// event counter per (kind, replica) and a fill gauge per replica. crt
// probes run with the channel lock held, so every series is resolved up
// front and the probe itself is two lookups and two atomic updates.
func channelProbe(reg *obs.Registry, channel string) crt.Probe {
	events := make(map[string]*[3]*obs.Counter, len(probeKinds))
	var fill [3]*obs.Gauge
	for r := 0; r <= 2; r++ {
		l := obs.Labels{"channel": channel, "replica": fmt.Sprintf("%d", r)}
		for _, k := range probeKinds {
			kl := obs.Labels{"channel": channel, "replica": l["replica"], "kind": k}
			c := reg.Counter("ftpn_crt_channel_events_total",
				"Channel events by kind; replica 0 = channel-wide.", kl)
			if events[k] == nil {
				events[k] = &[3]*obs.Counter{}
			}
			events[k][r] = c
		}
		fill[r] = reg.Gauge("ftpn_crt_channel_fill",
			"Queue fill after the last event; replica 0 = channel-wide.", l)
	}
	return func(e crt.ProbeEvent) {
		if cs := events[e.Kind]; cs != nil && e.Replica >= 0 && e.Replica <= 2 {
			cs[e.Replica].Inc()
			fill[e.Replica].Set(int64(e.Fill))
		}
	}
}

// flightProbe mirrors crt channel probe events into a flight-recorder
// stream and chains to next. crt probes run with the channel lock held,
// so the mirror is a single ring write.
func flightProbe(st *obs.FlightStream, next crt.Probe) crt.Probe {
	return func(e crt.ProbeEvent) {
		st.Record(obs.FlightEvent{
			At:      e.At.Microseconds(),
			Channel: e.Channel,
			Kind:    e.Kind,
			Replica: e.Replica,
			Fill:    e.Fill,
		})
		next(e)
	}
}

// serveObs starts the observability endpoint: Prometheus text on
// /metrics, liveness on /healthz (200 healthy, 503 degraded/recovering),
// the flight-recorder tail on /events (?n=128 bounds the tail), the
// forensic conviction explanations on /convictions and the standard
// pprof handlers under /debug/pprof/. It returns the server and its
// bound address.
func serveObs(addr string, reg *obs.Registry, fr *obs.FlightRecorder, health func() string, onScrape func()) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if onScrape != nil {
			onScrape()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		evs := fr.Tail(n)
		if evs == nil {
			evs = []obs.FlightEvent{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(evs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/convictions", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		exs := obs.ExplainAll(fr.Events())
		if exs == nil {
			exs = []obs.Explanation{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(exs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := health()
		w.Header().Set("Content-Type", "application/json")
		if st != "healthy" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q}\n", st)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// lockedWriter serializes demo output: fault handlers, the consumer and
// the recovery supervisor all print from their own goroutines.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func run(cfg config, sink io.Writer) error {
	out := &lockedWriter{w: sink}
	clock := crt.NewWallClock()
	start := time.Now()
	done := make(chan struct{})

	// Flight recorder: one stream catches the lifecycle events (inject,
	// convict, recover) always; the channel probes mirror into it only
	// when the HTTP endpoint that exposes it is on.
	fr := obs.NewFlightRecorder(0)
	flightSt := fr.Stream(0)

	var faultMu sync.Mutex
	var r1Faulted bool
	r1Fault := make(chan crt.Fault, 1)
	onFault := func(f crt.Fault) {
		flightSt.Record(obs.FlightEvent{
			At: f.At.Microseconds(), Channel: f.Channel,
			Kind: obs.FlightConvict, Reason: f.Reason, Replica: f.Replica,
		})
		fmt.Fprintf(out, "  [%8v] DETECTED %s\n", f.At.Round(time.Millisecond), f)
		if f.Replica == 1 {
			faultMu.Lock()
			first := !r1Faulted
			r1Faulted = true
			faultMu.Unlock()
			if first {
				r1Fault <- f
			}
		}
	}

	rep := crt.NewReplicator(clock, "R", [2]int{4, 4}, onFault)
	sel := crt.NewSelector(clock, "S", [2]int{8, 8}, [2]int{3, 3}, 4, onFault)

	// Observability endpoint: probes install before the channels are
	// shared, the server stays up for the demo's lifetime.
	if cfg.httpAddr != "" {
		reg := obs.NewRegistry()
		uptime := obs.RegisterBuildInfo(reg, "live-demo")
		rep.SetProbe(flightProbe(flightSt, channelProbe(reg, "R")))
		sel.SetProbe(flightProbe(flightSt, channelProbe(reg, "S")))
		health := func() string {
			for r := 1; r <= 2; r++ {
				if f, _ := rep.Faulty(r); f {
					return "degraded"
				}
				if f, _, _ := sel.Faulty(r); f {
					return "degraded"
				}
			}
			if sel.Resyncing(1) || sel.Resyncing(2) {
				return "recovering"
			}
			return "healthy"
		}
		srv, addr, err := serveObs(cfg.httpAddr, reg, fr, health, func() {
			uptime.Set(int64(time.Since(start).Seconds()))
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "observability on http://%s (/metrics, /healthz, /events, /convictions, /debug/pprof/)\n", addr)
		if cfg.onHTTP != nil {
			cfg.onHTTP(addr)
		}
	}

	var gen1 atomic.Int64
	spawn := func(r int) {
		go pipeline(rep, sel, r, &gen1, gen1.Load())
	}
	spawn(1)
	spawn(2)

	// Hard wall-clock cap so a wedged demo cannot hang CI: closing the
	// channels errors out every blocked party.
	var expired atomic.Bool
	if cfg.duration > 0 {
		watchdog := time.AfterFunc(cfg.duration, func() {
			expired.Store(true)
			rep.Close()
			sel.Close()
		})
		defer watchdog.Stop()
	}

	// Consumer: paced at the producer period — a consumer that reads
	// greedily would outrun the slower replica's guarantee and trip the
	// stall detector spuriously (that is eq. 4's whole point: the
	// initial fill covers the consumer's *declared* envelope, not an
	// unbounded appetite).
	consumed := make(chan int64, 1)
	go func() {
		var n int64
		var last time.Duration
		var worst time.Duration
		for {
			clock.Sleep(cfg.period)
			tok, ok := sel.Read()
			if !ok {
				break
			}
			now := clock.Now()
			if tok.Seq > 1 && last > 0 {
				if gap := now - last; gap > worst {
					worst = gap
				}
			}
			last = now
			n++
			if n == cfg.tokens {
				break
			}
		}
		fmt.Fprintf(out, "consumer: %d tokens, worst inter-arrival %v\n", n, worst.Round(time.Millisecond))
		consumed <- n
	}()

	injectAt := time.Duration(cfg.tokens/2) * cfg.period
	fmt.Fprintf(out, "streaming %d tokens at %v; replica 1 dies at %v\n", cfg.tokens, cfg.period, injectAt)
	go func() {
		clock.Sleep(injectAt)
		gen1.Add(1) // the fault: replica 1's goroutine dies at its next token
		flightSt.Record(obs.FlightEvent{
			At: clock.Now().Microseconds(), Kind: obs.FlightInject,
			Reason: "stop-all", Replica: 1,
		})
		fmt.Fprintf(out, "  [%8v] replica 1 goroutine stopped\n", clock.Now().Round(time.Millisecond))
	}()

	// Recovery supervisor: once replica 1 is convicted, wait out a
	// repair delay (restart cost), re-arm its replicator queue from the
	// healthy backlog, put its selector interface into resynchronization
	// and respawn the goroutine — the crt mirror of ft's
	// RepairAndReintegrateAt.
	recovered := make(chan struct{})
	if cfg.recover {
		go func() {
			defer close(recovered)
			select {
			case <-r1Fault:
			case <-done:
				return
			}
			clock.Sleep(10 * cfg.period)
			if !rep.Reintegrate(1, 3) || !sel.Reintegrate(1) {
				return
			}
			gen1.Add(1)
			spawn(1)
			flightSt.Record(obs.FlightEvent{
				At: clock.Now().Microseconds(), Kind: obs.FlightRecover, Replica: 1,
			})
			fmt.Fprintf(out, "  [%8v] replica 1 repaired, re-integrated and respawned\n",
				clock.Now().Round(time.Millisecond))
		}()
	}

	for i := int64(1); i <= cfg.tokens; i++ {
		payload := make([]byte, 256)
		for j := range payload {
			payload[j] = byte(i + int64(j))
		}
		if !rep.Write(crt.Token{Seq: i, Payload: payload}) {
			break
		}
		clock.Sleep(cfg.period)
	}
	n := <-consumed
	close(done)
	if cfg.recover {
		<-recovered
	}
	rep.Close()
	sel.Close()

	if expired.Load() {
		return fmt.Errorf("demo exceeded the -duration cap of %v", cfg.duration)
	}
	ok1, at := rep.Faulty(1)
	sok1, sat, sreason := sel.Faulty(1)
	fmt.Fprintf(out, "replicator convicted R1: %v (at %v); selector convicted R1: %v (%s at %v)\n",
		ok1, at.Round(time.Millisecond), sok1, sreason, sat.Round(time.Millisecond))
	if n < cfg.tokens-8 {
		return fmt.Errorf("consumer starved despite fault tolerance: %d of %d tokens", n, cfg.tokens)
	}
	if ok2, _ := rep.Faulty(2); ok2 {
		return fmt.Errorf("healthy replica convicted at the replicator")
	}
	if ok2, _, _ := sel.Faulty(2); ok2 {
		return fmt.Errorf("healthy replica convicted at the selector")
	}
	faultMu.Lock()
	detected := r1Faulted
	faultMu.Unlock()
	if !detected {
		return fmt.Errorf("replica 1 fault was never detected")
	}
	if cfg.recover {
		if ok1 || sok1 {
			return fmt.Errorf("replica 1 still convicted after repair + re-integration")
		}
		if sel.Resyncing(1) {
			return fmt.Errorf("replica 1 selector interface never completed resynchronization")
		}
		fmt.Fprintln(out, "replica 1 detected, repaired and re-integrated; full redundancy restored")
	} else {
		fmt.Fprintln(out, "healthy replica kept the stream alive; no false positives")
	}
	return nil
}
