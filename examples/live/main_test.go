package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestLiveDemoRecovers smoke-tests the wall-clock runtime end-to-end:
// stream, kill replica 1's goroutine, detect, repair + re-integrate +
// respawn, finish with full redundancy and no false positives. The
// -duration cap bounds the test even if something wedges.
func TestLiveDemoRecovers(t *testing.T) {
	var out bytes.Buffer
	cfg := config{tokens: 150, period: 2 * time.Millisecond, duration: 30 * time.Second, recover: true}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "full redundancy restored") {
		t.Errorf("missing recovery confirmation; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DETECTED") {
		t.Errorf("no detection reported; output:\n%s", out.String())
	}
}

// TestLiveDemoWithoutRecovery keeps the original demo path covered: the
// fault is detected and latched, the healthy replica carries the stream.
func TestLiveDemoWithoutRecovery(t *testing.T) {
	var out bytes.Buffer
	cfg := config{tokens: 100, period: 2 * time.Millisecond, duration: 30 * time.Second, recover: false}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no false positives") {
		t.Errorf("missing success line; output:\n%s", out.String())
	}
}

// TestLiveDemoDurationCap verifies the watchdog: an impossibly small
// cap aborts the run with an error instead of hanging.
func TestLiveDemoDurationCap(t *testing.T) {
	var out bytes.Buffer
	cfg := config{tokens: 5000, period: 2 * time.Millisecond, duration: 50 * time.Millisecond, recover: false}
	err := run(cfg, &out)
	if err == nil || !strings.Contains(err.Error(), "duration cap") {
		t.Fatalf("err = %v, want duration-cap abort", err)
	}
}
