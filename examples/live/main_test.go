package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestLiveDemoRecovers smoke-tests the wall-clock runtime end-to-end:
// stream, kill replica 1's goroutine, detect, repair + re-integrate +
// respawn, finish with full redundancy and no false positives. The
// -duration cap bounds the test even if something wedges.
func TestLiveDemoRecovers(t *testing.T) {
	var out bytes.Buffer
	cfg := config{tokens: 150, period: 2 * time.Millisecond, duration: 30 * time.Second, recover: true}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "full redundancy restored") {
		t.Errorf("missing recovery confirmation; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DETECTED") {
		t.Errorf("no detection reported; output:\n%s", out.String())
	}
}

// TestLiveDemoWithoutRecovery keeps the original demo path covered: the
// fault is detected and latched, the healthy replica carries the stream.
func TestLiveDemoWithoutRecovery(t *testing.T) {
	var out bytes.Buffer
	cfg := config{tokens: 100, period: 2 * time.Millisecond, duration: 30 * time.Second, recover: false}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no false positives") {
		t.Errorf("missing success line; output:\n%s", out.String())
	}
}

// TestLiveDemoHTTPEndpoint runs the demo with the observability
// endpoint enabled and watches /healthz flip healthy -> degraded (or
// recovering) -> healthy across the fault + recovery arc, while
// /metrics serves the Prometheus exposition and pprof answers.
func TestLiveDemoHTTPEndpoint(t *testing.T) {
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	cfg := config{
		tokens: 300, period: 2 * time.Millisecond, duration: 60 * time.Second,
		recover: true, httpAddr: "127.0.0.1:0",
		onHTTP: func(a string) { addrCh <- a },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- run(cfg, &out) }()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("endpoint never came up")
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// The run starts healthy, degrades at the injected fault, and must
	// report healthy again once the replica is re-integrated.
	deadline := time.Now().Add(30 * time.Second)
	unhealthy := ""
	for time.Now().Before(deadline) {
		if st, body := get("/healthz"); st == http.StatusServiceUnavailable {
			unhealthy = body
			break
		}
		time.Sleep(time.Millisecond)
	}
	if unhealthy == "" {
		t.Fatal("/healthz never reported the fault")
	}
	if !strings.Contains(unhealthy, "degraded") && !strings.Contains(unhealthy, "recovering") {
		t.Errorf("unhealthy body = %q, want degraded or recovering", unhealthy)
	}

	// While the demo still streams: metrics and pprof must serve.
	if st, body := get("/metrics"); st != http.StatusOK ||
		!strings.Contains(body, "ftpn_crt_channel_events_total") ||
		!strings.Contains(body, "# TYPE ftpn_crt_channel_fill gauge") ||
		!strings.Contains(body, "ftpn_build_info{") ||
		!strings.Contains(body, "ftpn_process_uptime_seconds") {
		t.Errorf("/metrics status %d, body:\n%.400s", st, body)
	}
	if st, _ := get("/debug/pprof/cmdline"); st != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", st)
	}

	// The flight recorder serves the structured event log and, once the
	// fault has been detected, a causal explanation of the conviction.
	if st, body := get("/events?n=64"); st != http.StatusOK {
		t.Errorf("/events status %d", st)
	} else {
		var evs []map[string]any
		if err := json.Unmarshal([]byte(body), &evs); err != nil {
			t.Errorf("/events is not a JSON array: %v\n%.400s", err, body)
		} else if len(evs) == 0 {
			t.Error("/events returned no events during an active run")
		}
	}
	if st, body := get("/convictions"); st != http.StatusOK {
		t.Errorf("/convictions status %d", st)
	} else {
		var exs []map[string]any
		if err := json.Unmarshal([]byte(body), &exs); err != nil {
			t.Errorf("/convictions is not JSON: %v\n%.400s", err, body)
		} else if len(exs) == 0 {
			t.Error("/convictions empty after a detected fault")
		} else {
			ex := exs[0]
			if ex["fault_mode"] != "stop-all" {
				t.Errorf("conviction fault_mode = %v, want stop-all", ex["fault_mode"])
			}
			if lat, ok := ex["latency_us"].(float64); !ok || lat < 0 {
				t.Errorf("conviction latency_us = %v, want >= 0", ex["latency_us"])
			}
		}
	}

	healthy := false
	for time.Now().Before(deadline) {
		if st, _ := get("/healthz"); st == http.StatusOK {
			healthy = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !healthy {
		t.Error("/healthz never returned to healthy after recovery")
	}
	if err := <-errCh; err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
}

// TestLiveDemoDurationCap verifies the watchdog: an impossibly small
// cap aborts the run with an error instead of hanging.
func TestLiveDemoDurationCap(t *testing.T) {
	var out bytes.Buffer
	cfg := config{tokens: 5000, period: 2 * time.Millisecond, duration: 50 * time.Millisecond, recover: false}
	err := run(cfg, &out)
	if err == nil || !strings.Contains(err.Error(), "duration cap") {
		t.Fatalf("err = %v, want duration-cap abort", err)
	}
}
