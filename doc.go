// Package ftpn is a reproduction of "An Efficient Real Time Fault
// Detection and Tolerance Framework Validated on the Intel SCC
// Processor" (Rai, Huang, Stoimenov, Thiele — DAC 2014): replicator and
// selector arbitration channels that make a duplicated real-time
// process network equivalent to its reference network, counter-based
// timing-fault detection without runtime timekeeping, arrival-curve
// sizing of every queue and threshold, and the paper's three benchmark
// applications (MJPEG decoder, ADPCM, H.264 encoder) running on a
// simulated Intel SCC.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured comparison. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation; the library itself lives under internal/.
package ftpn
