package ftpn

// Cross-package integration tests: end-to-end properties that span the
// simulator, the platform model, the applications and the framework.

import (
	"testing"

	"ftpn/internal/apps"
	"ftpn/internal/des"
	"ftpn/internal/exp"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
	"ftpn/internal/scc"
)

// TestMJPEGOnSCCFaultTolerantEndToEnd is the headline integration: the
// MJPEG decoder with real frames on the simulated SCC, analytically
// sized, surviving a stop fault with a bit-identical consumer stream.
func TestMJPEGOnSCCFaultTolerantEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	app := exp.MJPEGApp(false, 150)
	sizing, err := exp.ComputeSizing(app)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := scc.New(scc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	run := func(withFault bool) ([]uint64, *ft.System) {
		var hashes []uint64
		net, err := app.Build(func(now des.Time, tok kpn.Token) {
			if tok.Seq > 0 {
				hashes = append(hashes, tok.Hash())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sizing.BuildConfig(app)
		cfg.Chip = chip
		k := des.NewKernel()
		sys, err := ft.Build(k, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if withFault {
			sys.InjectFault(2, 75*app.PeriodUs, fault.StopAll, 0)
		}
		k.Run(0)
		k.Shutdown()
		return hashes, sys
	}

	clean, cleanSys := run(false)
	faulty, faultySys := run(true)

	if len(cleanSys.Faults) != 0 {
		t.Fatalf("fault-free run convicted: %v", cleanSys.Faults)
	}
	if _, ok := faultySys.FirstFault(2); !ok {
		t.Fatal("stop fault not detected on the SCC instance")
	}
	if fp := faultySys.FalsePositives(); len(fp) != 0 {
		t.Fatalf("false positives: %v", fp)
	}
	if len(clean) != len(faulty) {
		t.Fatalf("stream lengths differ: %d vs %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("frame %d differs between fault-free and faulty runs", i)
		}
	}
}

// TestTransientFaultToleratedAndLatched: a replica pauses and resumes
// (beyond the paper's permanent model). The consumer stream is
// unaffected, the conviction stays latched, and the resumed replica's
// stale tokens are absorbed as late duplicates.
func TestTransientFaultToleratedAndLatched(t *testing.T) {
	app := exp.ADPCMApp(false, 200)
	sizing, err := exp.ComputeSizing(app)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			count++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, sizing.BuildConfig(app))
	if err != nil {
		t.Fatal(err)
	}
	inject := 80 * app.PeriodUs
	sys.InjectFault(1, inject, fault.StopAll, 0)
	sys.Switches[0].RepairAt(inject + 40*app.PeriodUs)
	k.Run(0)
	k.Shutdown()

	f, ok := sys.FirstFault(1)
	if !ok {
		t.Fatal("transient fault not detected")
	}
	if f.At < inject {
		t.Fatalf("detected at %d before injection %d", f.At, inject)
	}
	if faulty, _, _ := sys.Selectors["F_out"].Faulty(1); !faulty {
		t.Error("conviction must stay latched after repair")
	}
	if fp := sys.FalsePositives(); len(fp) != 0 {
		t.Errorf("false positives: %v", fp)
	}
	want := int(app.Tokens) - sizing.SelInits[0]
	if sizing.SelInits[1] > sizing.SelInits[0] {
		want = int(app.Tokens) - sizing.SelInits[1]
	}
	if count < want-1 || count > want+1 {
		t.Errorf("consumer saw %d produced tokens, want about %d", count, want)
	}
	// The resumed replica's late tokens were dropped, not delivered twice.
	sel := sys.Selectors["F_out"]
	if sel.Drops(1) == 0 {
		t.Error("resumed replica's stale tokens should surface as dropped duplicates")
	}
}

// TestThreeReplicaSystemToleratesTwoFaults wires the paper's n-replica
// generalization by hand: three diversified replicas behind an
// NReplicator/NSelector pair survive two staggered stop faults.
func TestThreeReplicaSystemToleratesTwoFaults(t *testing.T) {
	k := des.NewKernel()
	period := des.Time(1000)
	nrep := ft.NewNReplicator(k, "R", []int{4, 4, 4}, nil)
	nsel := ft.NewNSelector(k, "S", []int{8, 8, 8}, []int{3, 3, 3}, 5, nil, nil)

	switches := make([]*fault.Switch, 3)
	for r := 1; r <= 3; r++ {
		r := r
		switches[r-1] = fault.NewSwitch(k)
		in := fault.GateRead(nrep.ReaderPort(r), switches[r-1])
		out := fault.GateWrite(nsel.WriterPort(r), switches[r-1])
		work := kpn.WorkModel{BaseUs: 200, JitterUs: des.Time(r) * 100}
		behavior := kpn.Transform(work, int64(40+r), nil)
		k.Spawn("rep", 0, func(p *des.Proc) {
			behavior(p, []kpn.ReadPort{in}, []kpn.WritePort{out})
		})
	}
	const tokens = 300
	prod := kpn.Producer(rtc.PJD{Period: period, Jitter: 50}, 1, tokens, nil)
	k.Spawn("P", 0, func(p *des.Proc) { prod(p, nil, []kpn.WritePort{nrep.WriterPort()}) })
	var consumed int
	cons := kpn.Consumer(rtc.PJD{Period: period, Jitter: 50}, 2, tokens, func(now des.Time, tok kpn.Token) {
		consumed++
	})
	k.Spawn("C", 0, func(p *des.Proc) { cons(p, []kpn.ReadPort{nsel.ReaderPort()}, nil) })

	switches[0].InjectAt(100*period, fault.StopAll, 0)
	switches[2].InjectAt(180*period, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()

	if consumed != tokens {
		t.Fatalf("consumer got %d tokens, want %d", consumed, tokens)
	}
	ok1, _, _ := nrep.Faulty(1)
	ok3, _, _ := nrep.Faulty(3)
	if !ok1 || !ok3 {
		t.Errorf("replicator convictions: R1=%v R3=%v, want both", ok1, ok3)
	}
	if ok2, _, _ := nrep.Faulty(2); ok2 {
		t.Error("surviving replica convicted at the replicator")
	}
	if ok2, _, _ := nsel.Faulty(2); ok2 {
		t.Error("surviving replica convicted at the selector")
	}
}

// TestStrictReplicatorTheorem2: in strict mode with never-overflowing
// queues, the duplicated ADPCM network is timing-equivalent to the
// reference — consumer arrival instants match exactly.
func TestStrictReplicatorTheorem2(t *testing.T) {
	cfg := apps.DefaultADPCMConfig()
	cfg.Blocks = 100

	var refArr []des.Time
	refNet, err := apps.ADPCMNetwork(cfg, func(now des.Time, tok kpn.Token) { refArr = append(refArr, now) })
	if err != nil {
		t.Fatal(err)
	}
	k1 := des.NewKernel()
	if _, err := refNet.Instantiate(k1, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k1.Run(0)
	k1.Shutdown()

	var dupArr []des.Time
	dupNet, err := apps.ADPCMNetwork(cfg, func(now des.Time, tok kpn.Token) { dupArr = append(dupArr, now) })
	if err != nil {
		t.Fatal(err)
	}
	k2 := des.NewKernel()
	sys, err := ft.Build(k2, dupNet, ft.BuildConfig{
		ReplicatorCaps: map[string][2]int{"F_in": {64, 64}}, // effectively unbounded
		SelectorCaps:   map[string][2]int{"F_out": {16, 16}},
		SelectorInits:  map[string][2]int{"F_out": {4, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Replicators["F_in"].Strict = true
	k2.Run(0)
	k2.Shutdown()

	if len(refArr) != len(dupArr) {
		t.Fatalf("arrival counts differ: %d vs %d", len(refArr), len(dupArr))
	}
	for i := range refArr {
		if refArr[i] != dupArr[i] {
			t.Fatalf("arrival %d: reference t=%d, duplicated t=%d (Theorem 2 timing equivalence violated)",
				i, refArr[i], dupArr[i])
		}
	}
}

// TestSizingMatchesPaperTable2MJPEG pins the analytic design for the
// MJPEG configuration to the paper's exact Table 2 values.
func TestSizingMatchesPaperTable2MJPEG(t *testing.T) {
	s, err := exp.ComputeSizing(exp.MJPEGApp(false, 10))
	if err != nil {
		t.Fatal(err)
	}
	if s.RepCaps != [2]int{2, 3} {
		t.Errorf("|R| = %v, paper has (2,3)", s.RepCaps)
	}
	if s.SelCaps != [2]int{4, 6} || s.SelInits != [2]int{2, 3} {
		t.Errorf("|S| = %v |S|0 = %v, paper has (4,6)/(2,3)", s.SelCaps, s.SelInits)
	}
}
