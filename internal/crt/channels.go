package crt

import (
	"fmt"
	"sync"
	"time"

	"ftpn/internal/ft"
)

// Fault is a detection event from a concurrent channel.
type Fault struct {
	Channel string
	Replica int // 1-based
	At      time.Duration
	Reason  string
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	return fmt.Sprintf("%s: replica R%d faulty at %v (%s)", f.Channel, f.Replica, f.At, f.Reason)
}

// FaultHandler receives detections; it is called with the channel lock
// released.
type FaultHandler func(Fault)

// sampleDetect routes one detection-predicate evaluation through an
// installed policy; a nil policy reproduces the inline first-violation
// behavior exactly. Callers hold the owning channel's lock, which is
// the synchronization the ft.Policy contract requires.
func sampleDetect(p ft.Policy, r int, reason string, violation bool) bool {
	if p == nil {
		return violation
	}
	return p.Sample(r, ft.Reason(reason), violation)
}

// Replicator is the concurrent two-queue replicator with queue-full
// fault detection (§3.3), safe for one writer and two reader
// goroutines.
type Replicator struct {
	mu       sync.Mutex
	notEmpty [2]*sync.Cond
	clock    Clock
	name     string
	caps     [2]int
	queues   [2][]Token
	faulty   [2]bool
	faultAt  [2]time.Duration
	closed   bool
	handler  FaultHandler
	lost     int64
	probe    Probe
	// policy, when non-nil, arbitrates detection samples instead of the
	// inline first-violation conviction (see ft.Policy). Per-channel
	// instance; every Sample/Reset call happens under mu.
	policy ft.Policy
}

// SetPolicy installs the replicator's detection policy (nil keeps the
// inline first-violation path). The instance must not be shared with
// another channel: calls are serialized by this channel's lock only.
func (r *Replicator) SetPolicy(p ft.Policy) {
	r.mu.Lock()
	r.policy = p
	r.mu.Unlock()
}

// NewReplicator builds a concurrent replicator.
func NewReplicator(clock Clock, name string, caps [2]int, handler FaultHandler) *Replicator {
	if caps[0] <= 0 || caps[1] <= 0 {
		panic(fmt.Sprintf("crt: replicator %q capacities must be positive, got %v", name, caps))
	}
	r := &Replicator{clock: clock, name: name, caps: caps, handler: handler}
	r.notEmpty[0] = sync.NewCond(&r.mu)
	r.notEmpty[1] = sync.NewCond(&r.mu)
	return r
}

// Write duplicates the token into every healthy queue; a full queue
// convicts its replica and the producer never blocks. Returns false
// after Close.
func (r *Replicator) Write(tok Token) bool {
	var fire []Fault
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	delivered := false
	for i := 0; i < 2; i++ {
		if r.faulty[i] {
			continue
		}
		if len(r.queues[i]) >= r.caps[i] {
			if sampleDetect(r.policy, i, "queue-full", true) {
				r.faulty[i] = true
				r.faultAt[i] = r.clock.Now()
				fire = append(fire, Fault{Channel: r.name, Replica: i + 1, At: r.faultAt[i], Reason: "queue-full"})
				continue
			}
			// Forgiven overflow: re-arm like the ft replicator's slide —
			// drop the oldest token so the newest is admitted and the
			// replica's window stays contiguous.
			copy(r.queues[i], r.queues[i][1:])
			r.queues[i] = r.queues[i][:len(r.queues[i])-1]
			if fn := r.probe; fn != nil {
				fn(ProbeEvent{At: r.clock.Now(), Channel: r.name, Kind: "drop-slide", Replica: i + 1, Fill: len(r.queues[i])})
			}
		} else if r.policy != nil {
			// Space available: a clean sample slides the (m,k) window
			// toward forgiveness.
			sampleDetect(r.policy, i, "queue-full", false)
		}
		r.queues[i] = append(r.queues[i], tok)
		// Replica i's reader parks only after observing an empty queue
		// under this lock, so only the empty->non-empty transition can
		// have a waiter to wake.
		if len(r.queues[i]) == 1 {
			r.notEmpty[i].Signal()
		}
		delivered = true
		if fn := r.probe; fn != nil {
			fn(ProbeEvent{At: r.clock.Now(), Channel: r.name, Kind: "enqueue", Replica: i + 1, Fill: len(r.queues[i])})
		}
	}
	if !delivered {
		r.lost++
	}
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.clock.Now(), Channel: r.name, Kind: "write"})
		if !delivered {
			fn(ProbeEvent{At: r.clock.Now(), Channel: r.name, Kind: "drop-lost"})
		}
	}
	r.mu.Unlock()
	for _, f := range fire {
		if r.handler != nil {
			r.handler(f)
		}
	}
	return true
}

// Read blocks until replica's queue (1-based) has a token; ok is false
// once the replicator is closed and drained.
func (r *Replicator) Read(replica int) (Token, bool) {
	i := replica - 1
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.queues[i]) == 0 && !r.closed {
		r.notEmpty[i].Wait()
	}
	if len(r.queues[i]) == 0 {
		return Token{}, false
	}
	tok := r.queues[i][0]
	copy(r.queues[i], r.queues[i][1:])
	r.queues[i] = r.queues[i][:len(r.queues[i])-1]
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.clock.Now(), Channel: r.name, Kind: "read", Replica: replica, Fill: len(r.queues[i])})
	}
	return tok, true
}

// Reintegrate re-admits a repaired replica (1-based): its stale queue is
// drained and re-armed with the newest min(fill, cap-1) tokens mirrored
// from the healthy replica's backlog, and its conviction is cleared so
// queue-full detection is re-armed. The other replica must be healthy
// (it is the reference); Reintegrate reports false and does nothing
// otherwise. This mirrors ft.Replicator.Reintegrate for the wall-clock
// runtime.
func (r *Replicator) Reintegrate(replica, fill int) bool {
	i := replica - 1
	h := 1 - i
	r.mu.Lock()
	if r.faulty[h] || r.closed {
		r.mu.Unlock()
		return false
	}
	if fill > r.caps[i]-1 {
		fill = r.caps[i] - 1
	}
	src := r.queues[h]
	if fill > len(src) {
		fill = len(src)
	}
	if fill < 0 {
		fill = 0
	}
	r.queues[i] = append(r.queues[i][:0], src[len(src)-fill:]...)
	r.faulty[i] = false
	if r.policy != nil {
		r.policy.Reset(i)
	}
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.clock.Now(), Channel: r.name, Kind: "reintegrate", Replica: replica, Fill: fill})
	}
	r.mu.Unlock()
	r.notEmpty[i].Broadcast()
	return true
}

// Fill returns replica's (1-based) current queue fill.
func (r *Replicator) Fill(replica int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[replica-1])
}

// Close wakes all blocked readers.
func (r *Replicator) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notEmpty[0].Broadcast()
	r.notEmpty[1].Broadcast()
}

// Faulty reports replica's (1-based) conviction.
func (r *Replicator) Faulty(replica int) (bool, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faulty[replica-1], r.faultAt[replica-1]
}

// Lost counts tokens written while both replicas were faulty.
func (r *Replicator) Lost() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lost
}

// Selector is the concurrent selector channel: duplicate-pair
// arbitration, per-interface space accounting, divergence and
// consumer-stall detection, safe for two writer goroutines and one
// reader.
type Selector struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  [2]*sync.Cond
	clock    Clock
	name     string
	caps     [2]int
	inits    [2]int
	space    [2]int64
	wcnt     [2]int64
	drops    [2]int64
	reads    int64
	fifo     []Token
	faulty   [2]bool
	faultAt  [2]time.Duration
	reasons  [2]string
	closed   bool
	handler  FaultHandler
	maxFill  int
	divThres int64

	// Re-integration state, mirroring ft.Selector: wBase rebases the
	// pair index after recovery, lastSeqW is the stream index of the
	// last counted write, resync marks an interface seeking its Seq
	// alignment point, adjust keeps the space-counter identity exact
	// across the alignment clamp, and selGrace excuses the re-aligned
	// interface's transient lead. All-zero state reproduces the original
	// counters exactly.
	wBase       [2]int64
	lastSeqW    [2]int64
	resync      [2]bool
	resyncDrops [2]int64
	adjust      [2]int64
	selGrace    [2]int64
	resyncWait  *sync.Cond

	probe Probe
	// policy, when non-nil, arbitrates detection samples instead of the
	// inline first-violation conviction (see ft.Policy). Per-channel
	// instance; every Sample/Reset call happens under mu.
	policy ft.Policy
}

// SetPolicy installs the selector's detection policy (nil keeps the
// inline first-violation path). The instance must not be shared with
// another channel: calls are serialized by this channel's lock only.
func (s *Selector) SetPolicy(p ft.Policy) {
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// NewSelector builds a concurrent selector with capacities, initial
// fills and the eq. 5 divergence threshold d (0 disables).
func NewSelector(clock Clock, name string, caps, inits [2]int, d int64, handler FaultHandler) *Selector {
	if caps[0] <= 0 || caps[1] <= 0 {
		panic(fmt.Sprintf("crt: selector %q capacities must be positive, got %v", name, caps))
	}
	for i := 0; i < 2; i++ {
		if inits[i] < 0 || inits[i] > caps[i] {
			panic(fmt.Sprintf("crt: selector %q init %d outside [0,%d]", name, inits[i], caps[i]))
		}
	}
	s := &Selector{clock: clock, name: name, caps: caps, inits: inits, handler: handler, divThres: d}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull[0] = sync.NewCond(&s.mu)
	s.notFull[1] = sync.NewCond(&s.mu)
	s.resyncWait = sync.NewCond(&s.mu)
	nPre := inits[0]
	if inits[1] > nPre {
		nPre = inits[1]
	}
	for i := 0; i < nPre; i++ {
		s.fifo = append(s.fifo, Token{Seq: int64(i) - int64(nPre) + 1})
	}
	s.maxFill = nPre
	for i := 0; i < 2; i++ {
		// Initial credits affect only space; pairing and divergence use
		// actual write counts (see ft.Selector for why).
		s.space[i] = int64(caps[i] - inits[i])
	}
	return s
}

// effW is interface i's pair index since its last (re-)integration base.
func (s *Selector) effW(i int) int64 { return s.wcnt[i] - s.wBase[i] }

// Reintegrate puts interface replica (1-based) into resynchronization
// after its replica has been repaired: stale tokens still in its
// pipeline are discarded uncounted, and the first token at or just past
// the healthy interface's write front re-aligns its pair index, space
// counter and divergence base, clearing the conviction. The other
// interface must be healthy (it is the reference stream); Reintegrate
// reports false and does nothing otherwise. Mirrors
// ft.Selector.Reintegrate for the wall-clock runtime.
func (s *Selector) Reintegrate(replica int) bool {
	i := replica - 1
	h := 1 - i
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faulty[h] || s.resync[h] || s.closed {
		return false
	}
	if s.resync[i] {
		return true
	}
	// A convicted replica is always at or behind the reference stream;
	// re-integrating an interface that is ahead would re-align its pair
	// index backwards and duplicate queued pairs — refuse instead.
	if s.effW(i) > s.effW(h) {
		return false
	}
	s.resync[i] = true
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.clock.Now(), Channel: s.name, Kind: "reintegrate", Replica: replica, Fill: len(s.fifo)})
	}
	// A writer parked on the space counter must re-route through the
	// resync path; one parked mid-resync re-evaluates the new state.
	s.notFull[i].Broadcast()
	s.resyncWait.Broadcast()
	return true
}

// align ends interface i's resynchronization against healthy reference
// h. back=0 aligns the pending token as the first of the next pair,
// back=1 as the late duplicate of h's current pair. Caller holds s.mu.
func (s *Selector) align(i, h int, back int64) {
	s.wBase[i] = s.wcnt[i] - (s.effW(h) - back)
	raw := int64(s.caps[i]-s.inits[i]) - s.effW(i) + s.reads
	clamped := raw
	if clamped < 0 {
		clamped = 0
	}
	if c := int64(s.caps[i]); clamped > c {
		clamped = c
	}
	s.adjust[i] = raw - clamped
	s.space[i] = clamped
	s.resync[i] = false
	// The re-integrated replica's empty pipeline lets it race to the
	// stream front; do not convict the healthy side for that transient.
	s.selGrace[i] = int64(s.caps[i]) + s.divThres
	s.faulty[i] = false
	s.reasons[i] = ""
	if s.policy != nil {
		s.policy.Reset(i)
	}
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.clock.Now(), Channel: s.name, Kind: "aligned", Replica: i + 1, Fill: len(s.fifo)})
	}
}

// Write submits replica's (1-based) next token, blocking on the
// interface's own space only (Lemma 1). Returns false after Close.
func (s *Selector) Write(replica int, tok Token) bool {
	i := replica - 1
	other := 1 - i
	var fire []Fault
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return false
		}
		if s.resync[i] {
			last := s.lastSeqW[other]
			switch {
			case tok.Seq <= 0 || tok.Seq < last:
				// Stale pipeline remnant from before the outage: discard
				// without counting.
				s.resyncDrops[i]++
				if fn := s.probe; fn != nil {
					fn(ProbeEvent{At: s.clock.Now(), Channel: s.name, Kind: "drop-resync", Replica: replica, Fill: len(s.fifo)})
				}
				s.mu.Unlock()
				return true
			case tok.Seq == last:
				s.align(i, other, 1) // late duplicate of other's current pair
			case tok.Seq == last+1:
				s.align(i, other, 0) // first token of the next pair
			default:
				// Ahead of the healthy write front: wait for the healthy
				// interface to advance. Only the recovering side blocks
				// here, so Lemma 1 isolation is preserved.
				s.resyncWait.Wait()
				continue
			}
		}
		if s.space[i] == 0 {
			s.notFull[i].Wait()
			continue // a Reintegrate may have re-routed this interface
		}
		break
	}
	if s.effW(i) >= s.effW(other) {
		s.fifo = append(s.fifo, tok)
		if len(s.fifo) > s.maxFill {
			s.maxFill = len(s.fifo)
		}
		// The consumer parks only after observing an empty FIFO under
		// this lock; later enqueues have nobody to wake.
		if len(s.fifo) == 1 {
			s.notEmpty.Signal()
		}
		if fn := s.probe; fn != nil {
			fn(ProbeEvent{At: s.clock.Now(), Channel: s.name, Kind: "enqueue", Replica: replica, Fill: len(s.fifo)})
		}
	} else {
		s.drops[i]++
		if fn := s.probe; fn != nil {
			fn(ProbeEvent{At: s.clock.Now(), Channel: s.name, Kind: "drop-duplicate", Replica: replica, Fill: len(s.fifo)})
		}
	}
	s.wcnt[i]++
	s.space[i]--
	s.lastSeqW[i] = tok.Seq
	if s.selGrace[i] > 0 {
		s.selGrace[i]--
	}
	if s.resync[other] {
		s.resyncWait.Broadcast()
	}
	if s.divThres > 0 && !s.faulty[other] && !s.resync[other] && s.selGrace[i] == 0 {
		lead := s.effW(i) - s.effW(other)
		if sampleDetect(s.policy, other, "divergence", lead >= s.divThres) {
			s.faulty[other] = true
			s.faultAt[other] = s.clock.Now()
			s.reasons[other] = "divergence"
			fire = append(fire, Fault{Channel: s.name, Replica: other + 1, At: s.faultAt[other], Reason: "divergence"})
		}
	}
	s.mu.Unlock()
	for _, f := range fire {
		if s.handler != nil {
			s.handler(f)
		}
	}
	return true
}

// Read blocks until a token is queued; ok is false once the selector is
// closed and drained.
func (s *Selector) Read() (Token, bool) {
	var fire []Fault
	s.mu.Lock()
	for len(s.fifo) == 0 && !s.closed {
		s.notEmpty.Wait()
	}
	if len(s.fifo) == 0 {
		s.mu.Unlock()
		return Token{}, false
	}
	tok := s.fifo[0]
	copy(s.fifo, s.fifo[1:])
	s.fifo = s.fifo[:len(s.fifo)-1]
	s.reads++
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.clock.Now(), Channel: s.name, Kind: "read", Fill: len(s.fifo)})
	}
	for i := 0; i < 2; i++ {
		s.space[i]++
		// An interface mid-resync is exempt until it re-aligns.
		if !s.faulty[i] && !s.resync[i] {
			if sampleDetect(s.policy, i, "consumer-stall", s.space[i] > int64(s.caps[i])) {
				s.faulty[i] = true
				s.faultAt[i] = s.clock.Now()
				s.reasons[i] = "consumer-stall"
				fire = append(fire, Fault{Channel: s.name, Replica: i + 1, At: s.faultAt[i], Reason: "consumer-stall"})
			}
		}
		// Writer i parks only after observing zero space under this lock
		// (Reintegrate re-routes it with its own broadcast), so only the
		// 0 -> 1 space transition can have a waiter to wake.
		if s.space[i] == 1 {
			s.notFull[i].Signal()
		}
	}
	s.mu.Unlock()
	for _, f := range fire {
		if s.handler != nil {
			s.handler(f)
		}
	}
	return tok, true
}

// Close wakes everyone.
func (s *Selector) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	s.notFull[0].Broadcast()
	s.notFull[1].Broadcast()
	s.resyncWait.Broadcast()
}

// Faulty reports replica's (1-based) conviction and reason.
func (s *Selector) Faulty(replica int) (bool, time.Duration, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faulty[replica-1], s.faultAt[replica-1], s.reasons[replica-1]
}

// Drops returns replica's (1-based) discarded late duplicates; MaxFill
// the largest queue fill observed.
func (s *Selector) Drops(replica int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops[replica-1]
}

// Writes returns how many tokens interface replica (1-based) has
// written (counted writes only).
func (s *Selector) Writes(replica int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wcnt[replica-1]
}

// ResyncDrops counts stale tokens interface replica (1-based) discarded
// uncounted during re-integration; Resyncing reports whether it is
// still seeking its alignment point.
func (s *Selector) ResyncDrops(replica int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resyncDrops[replica-1]
}

// Resyncing reports whether interface replica (1-based) is mid-resync.
func (s *Selector) Resyncing(replica int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resync[replica-1]
}

// MaxFill returns the largest observed fill.
func (s *Selector) MaxFill() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxFill
}
