package crt

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// blockingFIFO is the surface shared by the SPSC FIFO and the
// LockedFIFO oracle; the suite below runs against both.
type blockingFIFO interface {
	Name() string
	Write(Token) bool
	Read() (Token, bool)
	Close()
	MaxFill() int
	Fill() int
}

var fifoImpls = []struct {
	name string
	mk   func(name string, capacity int) blockingFIFO
}{
	{"spsc", func(n string, c int) blockingFIFO { return NewFIFO(n, c) }},
	{"locked", func(n string, c int) blockingFIFO { return NewLockedFIFO(n, c) }},
}

// TestFIFOImplsOrderAndBounds streams tokens through each
// implementation with randomized consumer pacing and checks strict FIFO
// order, the capacity bound on the watermark, and the empty end state.
func TestFIFOImplsOrderAndBounds(t *testing.T) {
	for _, impl := range fifoImpls {
		t.Run(impl.name, func(t *testing.T) {
			f := impl.mk("c", 4)
			const n = 5000
			done := make(chan struct{})
			go func() {
				defer close(done)
				rng := rand.New(rand.NewSource(11))
				for i := int64(1); i <= n; i++ {
					if rng.Intn(64) == 0 {
						time.Sleep(time.Microsecond)
					}
					tok, ok := f.Read()
					if !ok || tok.Seq != i {
						t.Errorf("read %d: got %v ok=%v", i, tok.Seq, ok)
						return
					}
				}
			}()
			for i := int64(1); i <= n; i++ {
				if !f.Write(Token{Seq: i}) {
					t.Fatal("write failed")
				}
			}
			<-done
			if mf := f.MaxFill(); mf < 1 || mf > 4 {
				t.Errorf("MaxFill = %d, want within [1,4]", mf)
			}
			if f.Fill() != 0 {
				t.Errorf("Fill = %d, want 0", f.Fill())
			}
		})
	}
}

// TestFIFOImplsBlockAtCapacity pins the blocking slow path: a writer
// into a full FIFO parks until the consumer makes space, a reader on an
// empty FIFO parks until the producer delivers.
func TestFIFOImplsBlockAtCapacity(t *testing.T) {
	for _, impl := range fifoImpls {
		t.Run(impl.name, func(t *testing.T) {
			f := impl.mk("c", 2)
			f.Write(Token{Seq: 1})
			f.Write(Token{Seq: 2})
			unblocked := make(chan struct{})
			go func() {
				f.Write(Token{Seq: 3}) // full: must park
				close(unblocked)
			}()
			select {
			case <-unblocked:
				t.Fatal("write into a full FIFO did not block")
			case <-time.After(20 * time.Millisecond):
			}
			if tok, ok := f.Read(); !ok || tok.Seq != 1 {
				t.Fatalf("read = %v %v", tok.Seq, ok)
			}
			select {
			case <-unblocked:
			case <-time.After(2 * time.Second):
				t.Fatal("parked writer was not woken by the read")
			}

			// Reader parks on empty, woken by a write.
			for f.Fill() > 0 {
				f.Read()
			}
			got := make(chan int64, 1)
			go func() {
				tok, _ := f.Read()
				got <- tok.Seq
			}()
			time.Sleep(10 * time.Millisecond)
			f.Write(Token{Seq: 9})
			select {
			case seq := <-got:
				if seq != 9 {
					t.Fatalf("woken read got %d", seq)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("parked reader was not woken by the write")
			}
		})
	}
}

// TestFIFOImplsCloseSemantics pins Close across both implementations:
// blocked writers fail, reads drain the backlog then report closed.
func TestFIFOImplsCloseSemantics(t *testing.T) {
	for _, impl := range fifoImpls {
		t.Run(impl.name, func(t *testing.T) {
			f := impl.mk("c", 1)
			writeOK := make(chan bool, 1)
			go func() {
				f.Write(Token{Seq: 1})
				writeOK <- f.Write(Token{Seq: 2}) // full: blocks until close
			}()
			time.Sleep(10 * time.Millisecond)
			f.Close()
			if <-writeOK {
				t.Error("blocked write must fail after close")
			}
			if tok, ok := f.Read(); !ok || tok.Seq != 1 {
				t.Errorf("drain read = %v %v", tok.Seq, ok)
			}
			if _, ok := f.Read(); ok {
				t.Error("read after drain on closed FIFO should report !ok")
			}
			if f.Write(Token{Seq: 3}) {
				t.Error("write after close should fail")
			}
		})
	}
}

// TestFIFOFastPathZeroAllocs pins the 0 allocs/op property of the SPSC
// ring's non-contended write/read cycle.
func TestFIFOFastPathZeroAllocs(t *testing.T) {
	f := NewFIFO("c", 4)
	tok := Token{Seq: 1, Payload: []byte{1, 2, 3}}
	f.Write(tok)
	f.Read()
	allocs := testing.AllocsPerRun(1000, func() {
		f.Write(tok)
		f.Read()
	})
	if allocs > 0 {
		t.Fatalf("%.1f allocs per write/read cycle, want 0", allocs)
	}
}

// TestFIFOParkedReaderSeesEveryToken hammers the park/wake handshake
// from both sides with tiny capacities so the slow path is hit
// constantly; run under -race this doubles as the memory-model check
// for the Dekker flags.
func TestFIFOParkedReaderSeesEveryToken(t *testing.T) {
	for _, capacity := range []int{1, 2, 3} {
		f := NewFIFO("c", capacity)
		const n = 20000
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= n; i++ {
				tok, ok := f.Read()
				if !ok || tok.Seq != i {
					t.Errorf("cap %d: read %d got %v ok=%v", capacity, i, tok.Seq, ok)
					return
				}
			}
		}()
		for i := int64(1); i <= n; i++ {
			f.Write(Token{Seq: i})
		}
		wg.Wait()
	}
}
