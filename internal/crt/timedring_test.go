package crt

import (
	"runtime"
	"sync"
	"testing"
)

// tokenRingConformance drives a Token-typed transport through FIFO and
// SPSC checks — the same contract the des-level conformance suite
// verifies at int64, here at the payload type the runtimes actually
// ship.
func tokenRingConformance(t *testing.T, mk func(capacity int) TimedQueue) {
	t.Helper()

	t.Run("fifo", func(t *testing.T) {
		q := mk(4)
		for i := 0; i < q.Cap(); i++ {
			ok := q.TryPush(Stamped{At: int64(i), V: Token{Seq: int64(i), Payload: []byte{byte(i)}}})
			if !ok {
				t.Fatalf("push %d failed below capacity", i)
			}
		}
		if q.TryPush(Stamped{At: 99}) {
			t.Fatalf("push into full ring succeeded")
		}
		for i := 0; i < q.Cap(); i++ {
			m, ok := q.TryPop()
			if !ok || m.At != int64(i) || m.V.Seq != int64(i) || m.V.Payload[0] != byte(i) {
				t.Fatalf("pop %d = (%v,%v)", i, m, ok)
			}
		}
		if _, ok := q.TryPop(); ok {
			t.Fatalf("pop from empty ring succeeded")
		}
	})

	t.Run("spsc", func(t *testing.T) {
		total := int64(5000)
		if testing.Short() {
			total = 500
		}
		q := mk(8)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < total; {
				if q.TryPush(Stamped{At: i, V: Token{Seq: i}}) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}()
		for want := int64(0); want < total; {
			if m, ok := q.TryPop(); ok {
				if m.At != want || m.V.Seq != want {
					t.Fatalf("received (%d,%d), want %d", m.At, m.V.Seq, want)
				}
				want++
			} else {
				runtime.Gosched()
			}
		}
		wg.Wait()
	})
}

func TestTokenTimedRingConformance(t *testing.T) {
	tokenRingConformance(t, func(c int) TimedQueue { return NewTimedRing(c) })
}

func TestTokenLockedTimedRingConformance(t *testing.T) {
	tokenRingConformance(t, func(c int) TimedQueue { return NewLockedTimedRing(c) })
}
