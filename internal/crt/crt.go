// Package crt is the concurrent runtime: the same replicator/selector
// arbitration and counter-based fault detection as package ft, but
// running on real goroutines and wall-clock time instead of the
// deterministic simulation kernel. It exists to demonstrate that the
// framework's rules are runtime-agnostic — every experiment in the
// paper reproduction uses the des-based runtime for determinism, while
// this package backs live demos and the DES-vs-goroutine throughput
// benchmark.
//
// Concurrency discipline: every channel guards its counters with one
// mutex and signals blocked peers through sync.Cond, mirroring the
// blocking FIFO semantics of Section 2. All detection rules are
// evaluated under the same lock that mutates the counters, so a
// conviction is always consistent with the counter state that caused
// it.
package crt

import (
	"fmt"
	"sync"
	"time"

	"ftpn/internal/kpn"
)

// Token aliases the kpn token type: payload plus sequence number; the
// Stamp field holds wall-clock nanoseconds since the runtime's start.
type Token = kpn.Token

// Clock abstracts time so tests can run fast; WallClock is the real
// thing.
type Clock interface {
	// Now returns the time since the clock's epoch.
	Now() time.Duration
	// Sleep blocks for about d (best effort, like any OS timer).
	Sleep(d time.Duration)
}

// WallClock implements Clock over the host's monotonic clock.
type WallClock struct {
	epoch time.Time
}

// NewWallClock starts a wall clock with its epoch at the call.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (c *WallClock) Now() time.Duration { return time.Since(c.epoch) }

// Sleep implements Clock.
func (c *WallClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// FIFO is a bounded blocking channel safe for concurrent use.
type FIFO struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	name     string
	capacity int
	q        []Token
	closed   bool
	maxFill  int
}

// NewFIFO creates a bounded FIFO.
func NewFIFO(name string, capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("crt: FIFO %q capacity must be positive, got %d", name, capacity))
	}
	f := &FIFO{name: name, capacity: capacity}
	f.notEmpty = sync.NewCond(&f.mu)
	f.notFull = sync.NewCond(&f.mu)
	return f
}

// Name returns the channel name.
func (f *FIFO) Name() string { return f.name }

// Write blocks while the queue is full; it reports false once the FIFO
// is closed.
func (f *FIFO) Write(tok Token) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.q) >= f.capacity && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		return false
	}
	f.q = append(f.q, tok)
	if len(f.q) > f.maxFill {
		f.maxFill = len(f.q)
	}
	f.notEmpty.Signal()
	return true
}

// Read blocks while the queue is empty; ok is false once the FIFO is
// closed and drained.
func (f *FIFO) Read() (tok Token, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.q) == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if len(f.q) == 0 {
		return Token{}, false
	}
	tok = f.q[0]
	copy(f.q, f.q[1:])
	f.q = f.q[:len(f.q)-1]
	f.notFull.Signal()
	return tok, true
}

// Close wakes all blocked parties; writes fail afterwards, reads drain.
func (f *FIFO) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.notEmpty.Broadcast()
	f.notFull.Broadcast()
}

// MaxFill returns the largest fill level observed.
func (f *FIFO) MaxFill() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxFill
}

// Fill returns the current fill level.
func (f *FIFO) Fill() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.q)
}
