// Package crt is the concurrent runtime: the same replicator/selector
// arbitration and counter-based fault detection as package ft, but
// running on real goroutines and wall-clock time instead of the
// deterministic simulation kernel. It exists to demonstrate that the
// framework's rules are runtime-agnostic — every experiment in the
// paper reproduction uses the des-based runtime for determinism, while
// this package backs live demos and the DES-vs-goroutine throughput
// benchmark.
//
// Concurrency discipline: the replicator and selector guard their
// counters with one mutex and signal blocked peers through sync.Cond,
// mirroring the blocking FIFO semantics of Section 2; all detection
// rules are evaluated under the same lock that mutates the counters, so
// a conviction is always consistent with the counter state that caused
// it. Signals are transition-predicated: a waiter is woken only when
// the predicate it blocks on (its queue's emptiness, its interface's
// space) actually changed, which on the paper's point-to-point channel
// topology (one goroutine per channel end) cuts futex traffic without
// changing who can proceed. The plain FIFO, whose two ends are single
// goroutines by construction, additionally has a lock-free ring fast
// path (see FIFO); LockedFIFO keeps the mutex-only implementation as
// the semantic oracle.
package crt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ftpn/internal/kpn"
)

// Token aliases the kpn token type: payload plus sequence number; the
// Stamp field holds wall-clock nanoseconds since the runtime's start.
type Token = kpn.Token

// Clock abstracts time so tests can run fast; WallClock is the real
// thing.
type Clock interface {
	// Now returns the time since the clock's epoch.
	Now() time.Duration
	// Sleep blocks for about d (best effort, like any OS timer).
	Sleep(d time.Duration)
}

// WallClock implements Clock over the host's monotonic clock.
type WallClock struct {
	epoch time.Time
}

// NewWallClock starts a wall clock with its epoch at the call.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (c *WallClock) Now() time.Duration { return time.Since(c.epoch) }

// Sleep implements Clock.
func (c *WallClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// FIFO is a bounded blocking channel between ONE producer goroutine and
// ONE consumer goroutine — the shape of every point-to-point channel in
// the paper's process networks. The single-producer/single-consumer
// discipline is what licenses the fast path: a power-of-two ring
// indexed by monotonically increasing head/tail counters, each written
// by exactly one side, so a transfer through a non-empty, non-full FIFO
// is two atomic loads and one store per end with no lock and no
// allocation. The mutex+cond pair survives only as the blocking slow
// path, entered via a Dekker-style handshake: a side publishes its park
// flag before re-checking the counters, and the opposite side checks
// the flag after publishing its counter, so one of the two always sees
// the other and no wakeup is lost.
//
// For channels with several goroutines on one end, use LockedFIFO.
type FIFO struct {
	name     string
	capacity int
	mask     uint64
	buf      []Token

	// The counters live on separate cache lines so the producer's tail
	// stores do not invalidate the consumer's head line and vice versa.
	_    [64]byte
	head atomic.Uint64 // consumer position: next slot to read
	_    [64]byte
	tail atomic.Uint64 // producer position: next slot to write
	_    [64]byte

	rWait   atomic.Bool // consumer is parking/parked in the slow path
	wWait   atomic.Bool // producer is parking/parked in the slow path
	closed  atomic.Bool
	maxFill atomic.Int64 // producer-maintained watermark

	mu   sync.Mutex
	cond *sync.Cond
}

// NewFIFO creates a bounded FIFO.
func NewFIFO(name string, capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("crt: FIFO %q capacity must be positive, got %d", name, capacity))
	}
	ring := 1
	for ring < capacity {
		ring <<= 1
	}
	f := &FIFO{name: name, capacity: capacity, mask: uint64(ring - 1), buf: make([]Token, ring)}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Name returns the channel name.
func (f *FIFO) Name() string { return f.name }

// wake nudges whoever is parked in the slow path. Taking the mutex
// orders the broadcast against a parker that has set its flag but not
// yet reached cond.Wait (it still holds the mutex at that point).
func (f *FIFO) wake() {
	f.mu.Lock()
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Write blocks while the queue is full; it reports false once the FIFO
// is closed.
func (f *FIFO) Write(tok Token) bool {
	for {
		if f.closed.Load() {
			return false
		}
		t := f.tail.Load()
		if t-f.head.Load() < uint64(f.capacity) {
			f.buf[t&f.mask] = tok
			f.tail.Store(t + 1)
			// Re-reading head keeps the watermark from overshooting a
			// concurrent read; only the producer writes maxFill.
			if fill := int64(t + 1 - f.head.Load()); fill > f.maxFill.Load() {
				f.maxFill.Store(fill)
			}
			if f.rWait.Load() {
				f.wake()
			}
			return true
		}
		f.mu.Lock()
		f.wWait.Store(true)
		if f.tail.Load()-f.head.Load() < uint64(f.capacity) || f.closed.Load() {
			f.wWait.Store(false)
			f.mu.Unlock()
			continue
		}
		f.cond.Wait()
		f.wWait.Store(false)
		f.mu.Unlock()
	}
}

// Read blocks while the queue is empty; ok is false once the FIFO is
// closed and drained.
func (f *FIFO) Read() (tok Token, ok bool) {
	for {
		h := f.head.Load()
		if f.tail.Load() > h {
			tok = f.buf[h&f.mask]
			f.buf[h&f.mask] = Token{} // release the payload reference
			f.head.Store(h + 1)
			if f.wWait.Load() {
				f.wake()
			}
			return tok, true
		}
		if f.closed.Load() {
			// A token may have been published between the emptiness and
			// closed checks; drain it before reporting closed.
			if f.tail.Load() > h {
				continue
			}
			return Token{}, false
		}
		f.mu.Lock()
		f.rWait.Store(true)
		if f.tail.Load() > f.head.Load() || f.closed.Load() {
			f.rWait.Store(false)
			f.mu.Unlock()
			continue
		}
		f.cond.Wait()
		f.rWait.Store(false)
		f.mu.Unlock()
	}
}

// Close wakes all blocked parties; writes fail afterwards, reads drain.
func (f *FIFO) Close() {
	f.closed.Store(true)
	f.wake()
}

// MaxFill returns the largest fill level observed.
func (f *FIFO) MaxFill() int { return int(f.maxFill.Load()) }

// Fill returns the current fill level.
func (f *FIFO) Fill() int {
	t := f.tail.Load()
	h := f.head.Load()
	if h > t { // head advanced between the two loads
		return 0
	}
	return int(t - h)
}

// LockedFIFO is the original mutex+cond bounded blocking channel. It
// accepts any number of goroutines on either end and serves as the
// semantic oracle the lock-free FIFO fast path is tested against.
type LockedFIFO struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	name     string
	capacity int
	q        []Token
	closed   bool
	maxFill  int
}

// NewLockedFIFO creates a bounded mutex-only FIFO.
func NewLockedFIFO(name string, capacity int) *LockedFIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("crt: FIFO %q capacity must be positive, got %d", name, capacity))
	}
	f := &LockedFIFO{name: name, capacity: capacity}
	f.notEmpty = sync.NewCond(&f.mu)
	f.notFull = sync.NewCond(&f.mu)
	return f
}

// Name returns the channel name.
func (f *LockedFIFO) Name() string { return f.name }

// Write blocks while the queue is full; it reports false once the FIFO
// is closed.
func (f *LockedFIFO) Write(tok Token) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.q) >= f.capacity && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		return false
	}
	f.q = append(f.q, tok)
	if len(f.q) > f.maxFill {
		f.maxFill = len(f.q)
	}
	f.notEmpty.Signal()
	return true
}

// Read blocks while the queue is empty; ok is false once the FIFO is
// closed and drained.
func (f *LockedFIFO) Read() (tok Token, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.q) == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if len(f.q) == 0 {
		return Token{}, false
	}
	tok = f.q[0]
	copy(f.q, f.q[1:])
	f.q = f.q[:len(f.q)-1]
	f.notFull.Signal()
	return tok, true
}

// Close wakes all blocked parties; writes fail afterwards, reads drain.
func (f *LockedFIFO) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.notEmpty.Broadcast()
	f.notFull.Broadcast()
}

// MaxFill returns the largest fill level observed.
func (f *LockedFIFO) MaxFill() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxFill
}

// Fill returns the current fill level.
func (f *LockedFIFO) Fill() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.q)
}
