package crt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}
func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestFIFOConcurrentOrder(t *testing.T) {
	f := NewFIFO("c", 4)
	const n = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= n; i++ {
			want, ok := f.Read()
			if !ok || want.Seq != i {
				t.Errorf("read %d: got %v ok=%v", i, want.Seq, ok)
				return
			}
		}
	}()
	for i := int64(1); i <= n; i++ {
		if !f.Write(Token{Seq: i}) {
			t.Fatal("write failed")
		}
	}
	<-done
	if f.MaxFill() > 4 {
		t.Errorf("MaxFill = %d exceeds capacity", f.MaxFill())
	}
	if f.Fill() != 0 {
		t.Errorf("Fill = %d, want 0", f.Fill())
	}
}

func TestFIFOCloseUnblocks(t *testing.T) {
	f := NewFIFO("c", 1)
	writeOK := make(chan bool, 1)
	go func() {
		f.Write(Token{Seq: 1})
		writeOK <- f.Write(Token{Seq: 2}) // full: blocks until close
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	if <-writeOK {
		t.Error("blocked write must fail after close")
	}
	// Reads drain the remaining token, then report closed.
	if tok, ok := f.Read(); !ok || tok.Seq != 1 {
		t.Errorf("drain read = %v %v", tok.Seq, ok)
	}
	if _, ok := f.Read(); ok {
		t.Error("read after drain on closed FIFO should report !ok")
	}
	if f.Name() != "c" {
		t.Error("name accessor broken")
	}
}

func TestFIFOBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewFIFO("c", 0)
}

func TestReplicatorConcurrentFanOut(t *testing.T) {
	clock := NewWallClock()
	// The replicator convicts instead of blocking the producer (§3.3),
	// so an unpaced producer needs queues sized for the whole burst.
	const n = 500
	r := NewReplicator(clock, "R", [2]int{n, n}, nil)
	var wg sync.WaitGroup
	errs := make(chan string, 2)
	for rep := 1; rep <= 2; rep++ {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= n; i++ {
				tok, ok := r.Read(rep)
				if !ok || tok.Seq != i {
					errs <- "order violated"
					return
				}
			}
		}()
	}
	for i := int64(1); i <= n; i++ {
		r.Write(Token{Seq: i})
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	if ok, _ := r.Faulty(1); ok {
		t.Error("healthy run convicted replica 1")
	}
}

func TestReplicatorQueueFullConviction(t *testing.T) {
	clock := &fakeClock{}
	var faults []Fault
	var mu sync.Mutex
	r := NewReplicator(clock, "R", [2]int{2, 8}, func(f Fault) {
		mu.Lock()
		faults = append(faults, f)
		mu.Unlock()
	})
	clock.Sleep(5 * time.Millisecond)
	// Nobody reads queue 1: third write convicts replica 1 and never blocks.
	done := make(chan struct{})
	go func() {
		for i := int64(1); i <= 5; i++ {
			r.Write(Token{Seq: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("producer blocked on a faulty replica")
	}
	ok, at := r.Faulty(1)
	if !ok || at != 5*time.Millisecond {
		t.Errorf("Faulty(1) = %v at %v", ok, at)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(faults) != 1 || faults[0].Reason != "queue-full" || faults[0].Replica != 1 {
		t.Errorf("faults = %v", faults)
	}
}

func TestReplicatorCloseUnblocksReader(t *testing.T) {
	r := NewReplicator(NewWallClock(), "R", [2]int{2, 2}, nil)
	done := make(chan bool)
	go func() {
		_, ok := r.Read(2)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	r.Close()
	if ok := <-done; ok {
		t.Error("closed read should report !ok")
	}
	if r.Write(Token{}) {
		t.Error("write after close should fail")
	}
}

func TestSelectorConcurrentDedup(t *testing.T) {
	clock := NewWallClock()
	s := NewSelector(clock, "S", [2]int{16, 16}, [2]int{0, 0}, 0, nil)
	const n = 400
	var wg sync.WaitGroup
	for rep := 1; rep <= 2; rep++ {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= n; i++ {
				s.Write(rep, Token{Seq: i, Payload: []byte{byte(i)}})
			}
		}()
	}
	var got int64
	var lastSeq int64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := int64(1); i <= n; i++ {
			tok, ok := s.Read()
			if !ok {
				return
			}
			if tok.Seq != lastSeq+1 {
				t.Errorf("sequence gap: %d after %d", tok.Seq, lastSeq)
				return
			}
			lastSeq = tok.Seq
			atomic.AddInt64(&got, 1)
		}
	}()
	wg.Wait()
	<-readerDone
	if got != n {
		t.Fatalf("consumer got %d tokens, want %d", got, n)
	}
	if s.Drops(1)+s.Drops(2) != n {
		t.Errorf("total drops = %d, want %d (every pair has one late copy)", s.Drops(1)+s.Drops(2), n)
	}
}

func TestSelectorDivergenceConviction(t *testing.T) {
	clock := &fakeClock{}
	var fault atomic.Value
	s := NewSelector(clock, "S", [2]int{16, 16}, [2]int{0, 0}, 3, func(f Fault) { fault.Store(f) })
	clock.Sleep(time.Millisecond)
	for i := int64(1); i <= 3; i++ {
		s.Write(1, Token{Seq: i})
	}
	f, _ := fault.Load().(Fault)
	if f.Replica != 2 || f.Reason != "divergence" || f.At != time.Millisecond {
		t.Errorf("fault = %+v", f)
	}
	if ok, _, reason := s.Faulty(2); !ok || reason != "divergence" {
		t.Errorf("Faulty(2) = %v %s", ok, reason)
	}
}

func TestSelectorConsumerStallConviction(t *testing.T) {
	s := NewSelector(NewWallClock(), "S", [2]int{2, 2}, [2]int{0, 0}, 0, nil)
	for i := int64(1); i <= 3; i++ {
		s.Write(1, Token{Seq: i})
		s.Read()
	}
	if ok, _, reason := s.Faulty(2); !ok || reason != "consumer-stall" {
		t.Errorf("silent replica 2 not convicted: %v %s", ok, reason)
	}
	if ok, _, _ := s.Faulty(1); ok {
		t.Error("active replica 1 wrongly convicted")
	}
}

func TestSelectorInitialTokens(t *testing.T) {
	s := NewSelector(NewWallClock(), "S", [2]int{4, 6}, [2]int{2, 3}, 0, nil)
	if s.MaxFill() != 3 {
		t.Errorf("initial fill = %d, want 3", s.MaxFill())
	}
	for i := 0; i < 3; i++ {
		tok, ok := s.Read()
		if !ok || tok.Seq > 0 {
			t.Fatalf("preloaded token %d: %v %v", i, tok.Seq, ok)
		}
	}
}

func TestSelectorIsolationUnderContention(t *testing.T) {
	// Writer 2 stalls completely; writer 1 must never block as long as
	// the consumer keeps reading (its own space is the only constraint).
	s := NewSelector(NewWallClock(), "S", [2]int{2, 2}, [2]int{0, 0}, 0, nil)
	done := make(chan struct{})
	go func() {
		for i := int64(1); i <= 100; i++ {
			s.Write(1, Token{Seq: i})
		}
		close(done)
	}()
	go func() {
		for {
			if _, ok := s.Read(); !ok {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer 1 blocked despite consumer progress (isolation violated)")
	}
	s.Close()
}

func TestSelectorCloseUnblocks(t *testing.T) {
	s := NewSelector(NewWallClock(), "S", [2]int{1, 1}, [2]int{0, 0}, 0, nil)
	readerOK := make(chan bool)
	go func() {
		_, ok := s.Read()
		readerOK <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	s.Close()
	if <-readerOK {
		t.Error("closed empty read should report !ok")
	}
	if s.Write(1, Token{}) {
		t.Error("write after close should fail")
	}
}

func TestChannelValidationPanics(t *testing.T) {
	clock := NewWallClock()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("rep caps", func() { NewReplicator(clock, "R", [2]int{0, 2}, nil) })
	mustPanic("sel caps", func() { NewSelector(clock, "S", [2]int{0, 2}, [2]int{0, 0}, 0, nil) })
	mustPanic("sel inits", func() { NewSelector(clock, "S", [2]int{2, 2}, [2]int{3, 0}, 0, nil) })
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b < a+time.Millisecond/2 {
		t.Errorf("clock did not advance: %v -> %v", a, b)
	}
	c.Sleep(-5) // negative sleep is a no-op
}

func TestFaultString(t *testing.T) {
	f := Fault{Channel: "S", Replica: 1, At: 2 * time.Millisecond, Reason: "divergence"}
	if f.String() != "S: replica R1 faulty at 2ms (divergence)" {
		t.Errorf("String = %q", f.String())
	}
}

// TestReplicatorReintegrate convicts replica 1 by queue-full, then
// re-integrates it and checks the re-armed queue mirrors the healthy
// backlog and detection is re-armed.
func TestReplicatorReintegrate(t *testing.T) {
	r := NewReplicator(&fakeClock{}, "R", [2]int{2, 8}, nil)
	for i := int64(1); i <= 5; i++ {
		r.Write(Token{Seq: i}) // nobody reads queue 1: convicts at write 3
	}
	if ok, _ := r.Faulty(1); !ok {
		t.Fatal("replica 1 not convicted")
	}
	if !r.Reintegrate(1, 1) {
		t.Fatal("Reintegrate refused despite healthy replica 2")
	}
	if ok, _ := r.Faulty(1); ok {
		t.Error("replica 1 still convicted after re-integration")
	}
	if got := r.Fill(1); got != 1 {
		t.Errorf("re-armed fill = %d, want 1", got)
	}
	// The re-armed token is the newest from the healthy backlog.
	if tok, ok := r.Read(1); !ok || tok.Seq != 5 {
		t.Errorf("re-armed token = %v ok=%v, want Seq 5", tok.Seq, ok)
	}
	// Detection is re-armed: filling queue 1 again re-convicts.
	for i := int64(6); i <= 9; i++ {
		r.Write(Token{Seq: i})
	}
	if ok, _ := r.Faulty(1); !ok {
		t.Error("queue-full detection not re-armed after re-integration")
	}
	r.Close()
}

// TestSelectorReintegrate runs the full resync protocol single-threaded
// (deterministically): convict replica 2 by divergence, keep replica 1
// streaming, re-integrate 2 with a stale + aligned token sequence, and
// verify the consumer stream stays gapless while conviction clears.
func TestSelectorReintegrate(t *testing.T) {
	s := NewSelector(&fakeClock{}, "S", [2]int{8, 8}, [2]int{0, 0}, 3, nil)
	// Replica 2 silent: replica 1's third write convicts it (divergence,
	// before any read can trip the stall rule).
	for i := int64(1); i <= 4; i++ {
		s.Write(1, Token{Seq: i})
	}
	for i := 0; i < 4; i++ {
		s.Read()
	}
	if ok, _, reason := s.Faulty(2); !ok || reason != "divergence" {
		t.Fatalf("Faulty(2) = %v %s, want divergence conviction", ok, reason)
	}
	if s.Reintegrate(1) {
		t.Error("Reintegrate(1) should refuse: replica 2 is not a healthy reference")
	}
	if !s.Reintegrate(2) {
		t.Fatal("Reintegrate(2) refused despite healthy replica 1")
	}
	// Stale tokens (Seq < healthy front 4) are dropped uncounted; Seq 4
	// aligns as the late duplicate of the current pair, Seq 5 arbitrates
	// normally as first-of-next-pair and is enqueued.
	for i := int64(2); i <= 5; i++ {
		s.Write(2, Token{Seq: i})
	}
	if s.Resyncing(2) {
		t.Error("replica 2 still resyncing after alignment token")
	}
	if got := s.ResyncDrops(2); got != 2 {
		t.Errorf("resync drops = %d, want 2 (Seq 2..3 stale)", got)
	}
	if ok, _, _ := s.Faulty(2); ok {
		t.Error("replica 2 still convicted after alignment")
	}
	// Both replicas stream on; consumer sees a gapless sequence.
	want := int64(5)
	if tok, ok := s.Read(); !ok || tok.Seq != want {
		t.Fatalf("post-recovery token = %v ok=%v, want Seq %d", tok.Seq, ok, want)
	}
	for i := int64(6); i <= 9; i++ {
		s.Write(1, Token{Seq: i})
		s.Write(2, Token{Seq: i})
		tok, ok := s.Read()
		if !ok || tok.Seq != i {
			t.Fatalf("token after recovery = %v ok=%v, want Seq %d", tok.Seq, ok, i)
		}
	}
	// Redundancy restored: pair accounting sees replica 2 participating.
	if s.Drops(1)+s.Drops(2) == 0 {
		t.Error("no late duplicates dropped after recovery: replica 2 not arbitrating")
	}
	s.Close()
}
