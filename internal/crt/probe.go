package crt

import "time"

// ProbeEvent is one channel-level event from the wall-clock runtime,
// mirroring ft.ProbeEvent with real timestamps. Kind values match
// ft.ProbeKind.String(): "write", "enqueue", "read", "drop-duplicate",
// "drop-lost", "drop-resync", "reintegrate", "aligned".
type ProbeEvent struct {
	At      time.Duration
	Channel string
	Kind    string
	Replica int // 1-based; 0 = channel-wide
	Fill    int // queue fill after the event (where meaningful)
}

// Probe observes channel events. Unlike fault handlers, probes are
// called with the channel lock HELD so the event reflects a consistent
// state: they must be cheap, must not block, and must not call back
// into the channel. Metric updates (internal/obs) satisfy this. A nil
// probe costs one predicted branch per event site.
type Probe func(ProbeEvent)

// SetProbe installs the channel's probe (nil disables). Install probes
// before the channel is shared between goroutines.
func (r *Replicator) SetProbe(p Probe) { r.probe = p }

// SetProbe installs the channel's probe (nil disables). Install probes
// before the channel is shared between goroutines.
func (s *Selector) SetProbe(p Probe) { s.probe = p }
