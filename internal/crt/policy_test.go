package crt

import (
	"sync"
	"testing"
	"time"

	"ftpn/internal/ft"
)

// TestSelectorMKForgivesExcursion: an (m,k) policy on the concurrent
// selector forgives a divergence excursion that the binary path would
// convict, and still convicts once the budget is exceeded.
func TestSelectorMKForgivesExcursion(t *testing.T) {
	mk, err := ft.NewMKPolicy(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSelector(NewWallClock(), "S", [2]int{16, 16}, [2]int{0, 0}, 2, nil)
	s.SetPolicy(mk)
	// Replica 1 runs 3 pairs ahead: 2 violating samples (lead 2, 3) —
	// within the budget of 3.
	for i := int64(1); i <= 3; i++ {
		s.Write(1, Token{Seq: i})
	}
	if ok, _, _ := s.Faulty(2); ok {
		t.Fatal("replica 2 convicted inside the (3,8) budget")
	}
	// Replica 2 catches up; the clean samples slide the window.
	for i := int64(1); i <= 3; i++ {
		s.Write(2, Token{Seq: i})
	}
	// A second, longer excursion: violations 4 and 5 in the window
	// exceed m=3.
	for i := int64(4); i <= 9; i++ {
		s.Write(1, Token{Seq: i})
	}
	if ok, _, reason := s.Faulty(2); !ok || reason != "divergence" {
		t.Fatalf("replica 2 not convicted past the budget: %v %s", ok, reason)
	}
}

// TestReplicatorMKForgivesOverflow: a forgiven queue overflow on the
// concurrent replicator drops the oldest token and admits the newest
// instead of convicting, and the budget still convicts eventually.
func TestReplicatorMKForgivesOverflow(t *testing.T) {
	mk, err := ft.NewMKPolicy(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplicator(NewWallClock(), "R", [2]int{2, 16}, nil)
	r.SetPolicy(mk)
	for i := int64(1); i <= 4; i++ {
		r.Write(Token{Seq: i})
	}
	// Queue 1 (cap 2) overflowed twice — both within the budget.
	if ok, _ := r.Faulty(1); ok {
		t.Fatal("replica 1 convicted inside the (2,8) budget")
	}
	if tok, _ := r.Read(1); tok.Seq != 3 {
		t.Fatalf("head of slid queue = %d, want 3 (oldest dropped)", tok.Seq)
	}
	// The third overflow in the window exceeds m=2.
	r.Write(Token{Seq: 5})
	r.Write(Token{Seq: 6})
	if ok, _ := r.Faulty(1); !ok {
		t.Fatal("replica 1 not convicted past the budget")
	}
}

// TestPolicyHammerMK drives both concurrent channels hard with an
// (m,k) policy armed — two selector writers racing a reader, a
// replicator writer racing two readers plus periodic re-integrations
// resetting the replicator's policy windows. Run under -race this is
// the memory-model check that all policy state stays confined to the
// channel locks; functionally it asserts only that the hammer
// quiesces (no deadlock) with every producer write accepted.
func TestPolicyHammerMK(t *testing.T) {
	const n = 4000
	clock := NewWallClock()

	selMK, err := ft.NewMKPolicy(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSelector(clock, "S", [2]int{64, 64}, [2]int{0, 0}, 8, nil)
	s.SetPolicy(selMK)

	repMK, err := ft.NewMKPolicy(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplicator(clock, "R", [2]int{8, 8}, nil)
	r.SetPolicy(repMK)

	var writers sync.WaitGroup
	var rest sync.WaitGroup

	// Selector: two racing writers, one draining reader.
	writers.Add(2)
	for w := 1; w <= 2; w++ {
		go func(w int) {
			defer writers.Done()
			for i := int64(1); i <= n; i++ {
				if !s.Write(w, Token{Seq: i}) {
					return
				}
			}
		}(w)
	}
	rest.Add(1)
	go func() {
		defer rest.Done()
		for {
			if _, ok := s.Read(); !ok {
				return
			}
		}
	}()

	// Replicator: one writer with periodic re-integrations, two
	// draining readers.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := int64(1); i <= n; i++ {
			if !r.Write(Token{Seq: i}) {
				return
			}
			if i%256 == 0 {
				r.Reintegrate(1+int(i/256)%2, 2)
			}
		}
	}()
	rest.Add(2)
	for rep := 1; rep <= 2; rep++ {
		go func(rep int) {
			defer rest.Done()
			for {
				if _, ok := r.Read(rep); !ok {
					return
				}
			}
		}(rep)
	}

	// Writers finish (readers keep the queues draining), then Close
	// unblocks the parked readers.
	wdone := make(chan struct{})
	go func() { writers.Wait(); close(wdone) }()
	select {
	case <-wdone:
	case <-time.After(30 * time.Second):
		t.Fatal("hammer writers did not finish (deadlock?)")
	}
	s.Close()
	r.Close()
	rdone := make(chan struct{})
	go func() { rest.Wait(); close(rdone) }()
	select {
	case <-rdone:
	case <-time.After(10 * time.Second):
		t.Fatal("hammer readers did not quiesce after close")
	}
}
