package crt

import "ftpn/internal/des"

// Timestamped transport for the concurrent runtime: the same SPSC ring
// the sharded simulation kernel uses for cross-shard token transfer,
// instantiated at the Token payload type. The live runtime and the
// simulation share one transport implementation so conformance tests
// (and bugs found by either side) cover both.

// Stamped is a token with its delivery timestamp.
type Stamped = des.Stamped[Token]

// TimedQueue is the transport contract: bounded, FIFO, TryPush/TryPop.
type TimedQueue = des.TimedQueue[Token]

// TimedRing is the lock-free single-producer single-consumer variant.
type TimedRing = des.TimedRing[Token]

// LockedTimedRing is the mutex-guarded variant for callers without the
// SPSC discipline.
type LockedTimedRing = des.LockedTimedRing[Token]

// NewTimedRing returns an SPSC token ring; capacity rounds up to a
// power of two.
func NewTimedRing(capacity int) *TimedRing { return des.NewTimedRing[Token](capacity) }

// NewLockedTimedRing returns the locked variant.
func NewLockedTimedRing(capacity int) *LockedTimedRing { return des.NewLockedTimedRing[Token](capacity) }
