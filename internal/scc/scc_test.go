package scc

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TileFreqMHz != 533 || cfg.RouterFreqMHz != 800 || cfg.MemFreqMHz != 800 {
		t.Errorf("boot clocks = %d/%d/%d, want 533/800/800",
			cfg.TileFreqMHz, cfg.RouterFreqMHz, cfg.MemFreqMHz)
	}
	if cfg.L2Enabled || cfg.Interrupts {
		t.Error("paper boots with L2 and interrupts off")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.TileFreqMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tile frequency should be invalid")
	}
	bad = DefaultConfig()
	bad.Cost.PerByteNs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost should be invalid")
	}
	bad = DefaultConfig()
	bad.Cost = CostModel{}
	if err := bad.Validate(); err == nil {
		t.Error("all-zero cost model should be invalid")
	}
	if _, err := New(bad); err == nil {
		t.Error("New with invalid config should fail")
	}
}

func TestTopology(t *testing.T) {
	ch, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if NumCores != 48 || NumTiles != 24 {
		t.Fatalf("SCC is 48 cores on 24 tiles, constants say %d/%d", NumCores, NumTiles)
	}
	// Cores 2t and 2t+1 share tile t.
	for tid := 0; tid < NumTiles; tid++ {
		a, b := ch.Core(2*tid), ch.Core(2*tid+1)
		if a.Tile().ID != tid || b.Tile().ID != tid {
			t.Errorf("cores %d,%d not on tile %d", a.ID, b.ID, tid)
		}
	}
	// Tile coordinates are row-major 6 wide.
	tl := ch.Tile(13)
	if tl.X != 1 || tl.Y != 2 {
		t.Errorf("tile 13 at (%d,%d), want (1,2)", tl.X, tl.Y)
	}
}

func TestCoreTileBoundsPanic(t *testing.T) {
	ch, _ := New(DefaultConfig())
	for _, fn := range []func(){
		func() { ch.Core(-1) },
		func() { ch.Core(NumCores) },
		func() { ch.Tile(-1) },
		func() { ch.Tile(NumTiles) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestHopsAndRoute(t *testing.T) {
	ch, _ := New(DefaultConfig())
	sameTile := ch.Hops(ch.Core(0), ch.Core(1))
	if sameTile != 0 {
		t.Errorf("same-tile hops = %d, want 0", sameTile)
	}
	// Tile 0 (0,0) to tile 23 (5,3): 5 + 3 = 8 hops.
	if h := ch.Hops(ch.Core(0), ch.Core(47)); h != 8 {
		t.Errorf("corner-to-corner hops = %d, want 8", h)
	}
	// XY routing goes X first.
	route := ch.Route(ch.Core(0), ch.Core(2*(MeshWidth+1))) // tile 0 -> tile 7 (1,1)
	want := []int{0, 1, 7}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	ch, _ := New(DefaultConfig())
	prop := func(a, b uint8) bool {
		ca, cb := ch.Core(int(a)%NumCores), ch.Core(int(b)%NumCores)
		h := ch.Hops(ca, cb)
		return h == ch.Hops(cb, ca) && h >= 0 && h <= MeshWidth-1+MeshHeight-1 &&
			len(ch.Route(ca, cb)) == h+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTSC(t *testing.T) {
	ch, _ := New(DefaultConfig())
	c := ch.Core(5)
	// After 1000 µs at 533 MHz: 533000 cycles.
	if got := ch.TSC(c, 1000); got != 533000 {
		t.Errorf("TSC(1000µs) = %d, want 533000", got)
	}
	ch.SetTSCOffset(c, 7)
	if got := ch.TSC(c, 0); got != 7 {
		t.Errorf("TSC with offset = %d, want 7", got)
	}
	// Synchronized cores agree.
	if ch.TSC(ch.Core(1), 500) != ch.TSC(ch.Core(40), 500) {
		t.Error("synchronized cores must read equal TSCs")
	}
}

func TestTransferTime(t *testing.T) {
	ch, _ := New(DefaultConfig())
	a, b := ch.Core(0), ch.Core(2) // adjacent tiles, 1 hop
	// 3 KB = 1 chunk: 2000 + 50 + 3072 ns = 5122 ns -> 6 µs.
	if got := ch.TransferTime(a, b, 3072); got != 6 {
		t.Errorf("TransferTime(3KB,1hop) = %d, want 6", got)
	}
	// 10 KB encoded MJPEG frame: 4 chunks.
	got10k := ch.TransferTime(a, b, 10*1024)
	// 4*(2000+50) + 10240 = 18440 ns -> 19 µs.
	if got10k != 19 {
		t.Errorf("TransferTime(10KB) = %d, want 19", got10k)
	}
	// Transfers are monotone in size and hops.
	if ch.TransferTime(a, b, 76800) <= got10k {
		t.Error("larger message should cost more")
	}
	far := ch.Core(47)
	if ch.TransferTime(a, far, 10*1024) <= got10k {
		t.Error("longer route should cost more")
	}
	// Zero-byte control message still costs at least a tick.
	if ch.TransferTime(a, b, 0) < 1 {
		t.Error("zero-byte transfer must cost at least 1 tick")
	}
	// Message timing stays far below the MJPEG frame period (30 ms), as
	// §4.1 claims for MPB-routed traffic.
	if decoded := ch.TransferTime(a, b, 76800); decoded > 1000 {
		t.Errorf("decoded-frame transfer = %d µs, want well under 1 ms", decoded)
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	ch, _ := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative size should panic")
		}
	}()
	ch.TransferTime(ch.Core(0), ch.Core(1), -1)
}

func TestMapPipeline(t *testing.T) {
	ch, _ := New(DefaultConfig())
	cores, err := ch.MapPipeline(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 10 {
		t.Fatalf("mapped %d cores, want 10", len(cores))
	}
	// One process per tile: all tiles distinct.
	seen := make(map[int]bool)
	for _, c := range cores {
		if seen[c.Tile().ID] {
			t.Errorf("tile %d used twice", c.Tile().ID)
		}
		seen[c.Tile().ID] = true
	}
	// Consecutive stages adjacent: exactly 1 hop.
	for i := 0; i+1 < len(cores); i++ {
		if h := ch.Hops(cores[i], cores[i+1]); h != 1 {
			t.Errorf("stages %d-%d are %d hops apart, want 1", i, i+1, h)
		}
	}
	// Serpentine placement has zero interior-router contention.
	if c := ch.RouteContention(cores); c != 0 {
		t.Errorf("pipeline contention = %d, want 0", c)
	}
}

func TestMapPipelineBounds(t *testing.T) {
	ch, _ := New(DefaultConfig())
	if _, err := ch.MapPipeline(0); err == nil {
		t.Error("mapping 0 processes should fail")
	}
	if _, err := ch.MapPipeline(NumTiles + 1); err == nil {
		t.Error("mapping more processes than tiles should fail")
	}
	if cores, err := ch.MapPipeline(NumTiles); err != nil || len(cores) != NumTiles {
		t.Errorf("full-chip mapping failed: %v", err)
	}
}

func TestRouteContentionDetectsCrossing(t *testing.T) {
	ch, _ := New(DefaultConfig())
	// A deliberately bad placement: two long routes crossing the middle.
	bad := []*Core{ch.Core(0), ch.Core(10), ch.Core(2), ch.Core(8)}
	if c := ch.RouteContention(bad); c == 0 {
		t.Skip("placement happens not to conflict under XY routing")
	}
}

func TestTransferTimeChunkedDDRPenalty(t *testing.T) {
	ch, _ := New(DefaultConfig())
	a, b := ch.Core(0), ch.Core(2)
	const msg = 24 * 1024
	mpb := ch.TransferTimeChunked(a, b, msg, MaxChunkBytes)
	ddr := ch.TransferTimeChunked(a, b, msg, 8*1024) // > 3 KB: DDR3 path
	if ddr <= mpb {
		t.Errorf("DDR-path transfer (%d) should cost more than MPB chunks (%d)", ddr, mpb)
	}
	// Within the MPB limit, fewer chunks means less overhead.
	small := ch.TransferTimeChunked(a, b, msg, 1024)
	if small <= mpb {
		t.Errorf("1KB chunks (%d) should cost more sync overhead than 3KB chunks (%d)", small, mpb)
	}
}

func TestTransferTimeChunkedValidation(t *testing.T) {
	ch, _ := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("zero chunk size should panic")
		}
	}()
	ch.TransferTimeChunked(ch.Core(0), ch.Core(1), 100, 0)
}
