package scc

import "fmt"

// MapPipeline places n communicating processes on n distinct tiles (one
// process per tile, as the paper maps them) such that consecutive
// pipeline stages sit on adjacent tiles and their XY routes do not cross:
// tiles are visited in a serpentine (boustrophedon) order through the
// mesh, which keeps every stage-to-stage route a single hop and removes
// router cross-traffic — the low-contention mapping of Zimmer et al.
// that §4.1 cites. Core 0 of each chosen tile is returned.
func (ch *Chip) MapPipeline(n int) ([]*Core, error) {
	if n < 1 || n > NumTiles {
		return nil, fmt.Errorf("scc: cannot map %d processes one-per-tile onto %d tiles", n, NumTiles)
	}
	cores := make([]*Core, 0, n)
	for i := 0; i < n; i++ {
		y := i / MeshWidth
		x := i % MeshWidth
		if y%2 == 1 { // serpentine: odd rows run right-to-left
			x = MeshWidth - 1 - x
		}
		tile := y*MeshWidth + x
		cores = append(cores, ch.cores[tile*CoresPerTile])
	}
	return cores, nil
}

// RouteContention counts how many tile routers are shared between the
// XY routes of distinct (src, dst) core pairs in the given placement's
// consecutive stages. A serpentine pipeline placement scores zero for
// interior routers; higher scores mean more cross-traffic.
func (ch *Chip) RouteContention(stages []*Core) int {
	use := make(map[int]int)
	for i := 0; i+1 < len(stages); i++ {
		route := ch.Route(stages[i], stages[i+1])
		// Interior routers only: endpoints legitimately serve their tiles.
		for _, t := range route[1:max(1, len(route)-1)] {
			use[t]++
		}
	}
	contention := 0
	for _, n := range use {
		if n > 1 {
			contention += n - 1
		}
	}
	return contention
}
