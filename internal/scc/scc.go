// Package scc models the Intel Single-chip Cloud Computer (SCC), the
// 48-core experimental many-core processor the paper validates on
// (Howard et al., ISSCC 2010). The model reproduces the aspects of the
// platform the experiments depend on:
//
//   - the 6×4 mesh of 24 tiles with two IA-32 cores per tile,
//   - XY dimension-ordered routing between tile routers,
//   - per-tile 16 KB message-passing buffers (MPBs) and the iRCCE-style
//     chunked transfer discipline (chunks of at most 3 KB so messages are
//     routed exclusively via the MPBs, never via DDR3 — paper §4.1),
//   - per-core time-stamp counters (TSC) at the tile clock frequency,
//     synchronized at application boot,
//   - the paper's baremetal boot parameters: 533 MHz tiles, 800 MHz
//     routers, 800 MHz DDR3, L2 caches off, interrupts off.
//
// Timing is virtual (package des); the transfer-cost model is documented
// on CostModel and calibrated to published SCC measurements (~1 µs/KB
// effective MPB bandwidth plus per-chunk synchronization overhead).
package scc

import (
	"fmt"

	"ftpn/internal/des"
)

// Mesh geometry and per-tile resources of the physical SCC.
const (
	MeshWidth    = 6 // tiles per row
	MeshHeight   = 4 // tile rows
	NumTiles     = MeshWidth * MeshHeight
	CoresPerTile = 2
	NumCores     = NumTiles * CoresPerTile
	MPBBytesTile = 16 * 1024 // message-passing buffer per tile
	MPBBytesCore = MPBBytesTile / CoresPerTile

	// MaxChunkBytes is the largest message fragment the iRCCE-style layer
	// sends at once; the paper keeps chunks at or below 3 KB so that all
	// traffic stays in the MPBs.
	MaxChunkBytes = 3 * 1024
)

// Config holds the chip boot parameters. The zero value is invalid; use
// DefaultConfig for the paper's settings.
type Config struct {
	TileFreqMHz   int  // core/tile clock (TSC frequency)
	RouterFreqMHz int  // mesh router clock
	MemFreqMHz    int  // DDR3 clock
	L2Enabled     bool // the paper boots with all L2 caches off
	Interrupts    bool // the paper boots with interrupts disabled
	Cost          CostModel
}

// DefaultConfig returns the boot parameters used in the paper's
// experiments: tile 533 MHz, router 800 MHz, DDR3 800 MHz, L2 caches
// switched off, all interrupts disabled.
func DefaultConfig() Config {
	return Config{
		TileFreqMHz:   533,
		RouterFreqMHz: 800,
		MemFreqMHz:    800,
		L2Enabled:     false,
		Interrupts:    false,
		Cost:          DefaultCostModel(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TileFreqMHz <= 0 || c.RouterFreqMHz <= 0 || c.MemFreqMHz <= 0 {
		return fmt.Errorf("scc: clock frequencies must be positive: tile=%d router=%d mem=%d",
			c.TileFreqMHz, c.RouterFreqMHz, c.MemFreqMHz)
	}
	return c.Cost.Validate()
}

// Tile is one of the 24 mesh tiles: two cores, a router and an MPB.
type Tile struct {
	ID   int // 0..23, row-major
	X, Y int // mesh coordinates: X in 0..5, Y in 0..3
}

// Core is one of the 48 IA-32 cores.
type Core struct {
	ID        int // 0..47; cores 2t and 2t+1 live on tile t
	tile      *Tile
	tscOffset int64 // residual clock skew after boot-time sync, in cycles
}

// Tile returns the tile the core resides on.
func (c *Core) Tile() *Tile { return c.tile }

// Chip is an SCC instance.
type Chip struct {
	cfg   Config
	tiles [NumTiles]*Tile
	cores [NumCores]*Core
}

// New builds an SCC chip with the given boot parameters.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Chip{cfg: cfg}
	for t := 0; t < NumTiles; t++ {
		ch.tiles[t] = &Tile{ID: t, X: t % MeshWidth, Y: t / MeshWidth}
	}
	for c := 0; c < NumCores; c++ {
		ch.cores[c] = &Core{ID: c, tile: ch.tiles[c/CoresPerTile]}
	}
	return ch, nil
}

// Config returns the chip's boot parameters.
func (ch *Chip) Config() Config { return ch.cfg }

// Core returns core id (0..47).
func (ch *Chip) Core(id int) *Core {
	if id < 0 || id >= NumCores {
		panic(fmt.Sprintf("scc: core id %d out of range [0,%d)", id, NumCores))
	}
	return ch.cores[id]
}

// Tile returns tile id (0..23).
func (ch *Chip) Tile(id int) *Tile {
	if id < 0 || id >= NumTiles {
		panic(fmt.Sprintf("scc: tile id %d out of range [0,%d)", id, NumTiles))
	}
	return ch.tiles[id]
}

// TSC returns the core's time-stamp counter reading at virtual time now:
// cycles elapsed at the tile frequency, plus the core's residual offset.
// With the default zero offsets this models the paper's boot-time clock
// synchronization.
func (ch *Chip) TSC(c *Core, now des.Time) int64 {
	return now*int64(ch.cfg.TileFreqMHz) + c.tscOffset
}

// SetTSCOffset sets a residual per-core clock skew in cycles, for
// experiments that study imperfect synchronization.
func (ch *Chip) SetTSCOffset(c *Core, cycles int64) { c.tscOffset = cycles }

// Hops returns the XY-routed hop count between the tiles of two cores.
// Cores on the same tile communicate through the local MPB with zero
// router hops.
func (ch *Chip) Hops(from, to *Core) int {
	dx := from.tile.X - to.tile.X
	if dx < 0 {
		dx = -dx
	}
	dy := from.tile.Y - to.tile.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Route returns the sequence of tile IDs an XY-routed message visits,
// including source and destination tiles. X is routed first, then Y,
// matching the SCC mesh.
func (ch *Chip) Route(from, to *Core) []int {
	path := []int{from.tile.ID}
	x, y := from.tile.X, from.tile.Y
	for x != to.tile.X {
		if x < to.tile.X {
			x++
		} else {
			x--
		}
		path = append(path, y*MeshWidth+x)
	}
	for y != to.tile.Y {
		if y < to.tile.Y {
			y++
		} else {
			y--
		}
		path = append(path, y*MeshWidth+x)
	}
	return path
}
