package scc

import (
	"fmt"

	"ftpn/internal/des"
)

// CostModel parameterizes the virtual-time cost of an iRCCE-style
// message transfer between two cores. A message of n bytes is split into
// ceil(n / MaxChunkBytes) chunks; each chunk costs
//
//	ChunkOverheadNs + n_chunk*PerByteNs + hops*PerHopNs
//
// nanoseconds, and the total is rounded up to whole microseconds (the
// tick granularity of the simulation). The defaults are calibrated to
// published SCC MPB measurements (Clauss et al., HPCS 2011; Rai et al.,
// ROME 2013): roughly 1 µs per KB of payload end to end, with a few
// microseconds of flag-synchronization overhead per chunk and tens of
// nanoseconds per router hop.
type CostModel struct {
	ChunkOverheadNs int64 // per-chunk synchronization (MPB flags, fences)
	PerByteNs       int64 // copy in + route + copy out, per payload byte
	PerHopNs        int64 // additional mesh latency per router hop per chunk
	// DDRPerByteNs is the per-byte cost when a chunk exceeds the MPB
	// chunk limit and must bounce through DDR3 instead — the slow path
	// the paper avoids by capping chunks at 3 KB ("ensuring that all
	// messages are routed exclusively via the message passing buffers").
	DDRPerByteNs int64
}

// DefaultCostModel returns the calibrated cost parameters described on
// CostModel.
func DefaultCostModel() CostModel {
	return CostModel{
		ChunkOverheadNs: 2000, // ~2 µs chunk setup/notify
		PerByteNs:       1,    // ~1 GB/s effective MPB path
		PerHopNs:        50,   // 4 router cycles @800 MHz ≈ 5 ns, plus buffering
		DDRPerByteNs:    6,    // off-chip round trip ≈ 6x the MPB path
	}
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	if m.ChunkOverheadNs < 0 || m.PerByteNs < 0 || m.PerHopNs < 0 {
		return fmt.Errorf("scc: cost model fields must be non-negative: %+v", m)
	}
	if m.ChunkOverheadNs == 0 && m.PerByteNs == 0 {
		return fmt.Errorf("scc: cost model would make all transfers free")
	}
	return nil
}

// TransferTime returns the virtual time (ticks = µs) to move a message
// of the given size from one core to another, using the paper's 3 KB
// MPB chunking. Every transfer costs at least one tick. Intra-tile
// transfers still pay the MPB copy costs but no hop latency.
func (ch *Chip) TransferTime(from, to *Core, bytes int) des.Time {
	return ch.TransferTimeChunked(from, to, bytes, MaxChunkBytes)
}

// TransferTimeChunked is TransferTime with an explicit chunk size, the
// knob behind the chunking ablation: chunks above MaxChunkBytes cannot
// stay in the MPBs and pay the DDR3 per-byte cost instead.
func (ch *Chip) TransferTimeChunked(from, to *Core, bytes, chunkBytes int) des.Time {
	if bytes < 0 {
		panic(fmt.Sprintf("scc: negative transfer size %d", bytes))
	}
	if chunkBytes <= 0 {
		panic(fmt.Sprintf("scc: chunk size must be positive, got %d", chunkBytes))
	}
	m := ch.cfg.Cost
	hops := int64(ch.Hops(from, to))
	chunks := int64((bytes + chunkBytes - 1) / chunkBytes)
	if chunks == 0 {
		chunks = 1 // zero-payload control message still synchronizes
	}
	perByte := m.PerByteNs
	if chunkBytes > MaxChunkBytes {
		perByte = m.DDRPerByteNs
	}
	ns := chunks*(m.ChunkOverheadNs+hops*m.PerHopNs) + int64(bytes)*perByte
	us := (ns + 999) / 1000
	if us < 1 {
		us = 1
	}
	return us
}
