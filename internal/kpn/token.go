// Package kpn implements the real-time dataflow process-network runtime
// the paper's framework operates on: determinate Kahn-style process
// networks with bounded FIFO channels, blocking read/write semantics,
// and <period, jitter, delay> timing at the producer/consumer interfaces
// (Section 2 of the paper).
//
// Networks are described as graphs (Network) and instantiated onto a
// discrete-event kernel (package des), optionally placed onto cores of
// the SCC platform model (package scc) so that channel writes pay
// realistic message-passing latency.
package kpn

import (
	"hash/fnv"

	"ftpn/internal/des"
)

// Token is one unit of data flowing through a channel. Seq is the
// monotonically increasing sequence number within its stream (the j of
// the paper's T_k[j]); Stamp is the virtual time the token was produced
// (the paper's t(k, j)). Payload carries the actual application data.
type Token struct {
	Seq     int64
	Stamp   des.Time
	Payload []byte
}

// Hash returns an FNV-1a digest of the payload, used by equivalence
// checks to compare token values cheaply.
func (t Token) Hash() uint64 {
	h := fnv.New64a()
	h.Write(t.Payload) //nolint:errcheck // hash.Hash never errors
	return h.Sum64()
}

// Size returns the payload size in bytes.
func (t Token) Size() int { return len(t.Payload) }

// ReadPort is the reader side of a channel: a destructive, blocking read
// (Section 2: "a process attempting to read tokens from an empty input
// FIFO queue will block").
type ReadPort interface {
	// Read blocks the calling process until a token is available, then
	// removes and returns it.
	Read(p *des.Proc) Token
	// PortName identifies the port for diagnostics and topology dumps.
	PortName() string
}

// WritePort is the writer side of a channel: a blocking write ("a
// process attempting to write tokens to a full output FIFO queue will
// block").
type WritePort interface {
	// Write blocks the calling process until the channel can accept the
	// token, then enqueues it.
	Write(p *des.Proc, tok Token)
	PortName() string
}

// Observer receives channel events; used by measurement (package trace)
// and by external fault monitors (package detect) that watch token
// arrivals without disturbing the stream.
type Observer interface {
	// OnWrite fires after a token is enqueued. fill is the queue fill
	// level after the operation.
	OnWrite(now des.Time, tok Token, fill int)
	// OnRead fires after a token is dequeued.
	OnRead(now des.Time, tok Token, fill int)
}
