package kpn

import (
	"fmt"

	"ftpn/internal/des"
)

// DelayedFIFO is a channel whose tokens become visible to the reader a
// fixed delay after they are written — the RTC delay bound of the
// connection (the paper's communication delay d of the <p, j, d>
// interface triple). It is the cross-shard channel primitive: the
// delay is the static lookahead that makes conservative parallel
// simulation possible, and the same channel type is used sequentially
// so that a single-kernel run is a bit-identical oracle for any
// sharded partitioning.
//
// Visibility is decided BY VALUE, not by event order: a record carries
// its maturity instant, and Read compares it against the current
// virtual time. A wakeup callback is scheduled at each maturity
// instant, but a reader that arrives at the same instant through some
// other path (a timer, another channel) observes the token whether or
// not that callback has run yet. This makes the reader's block/resume
// pattern — and with it the canonical scheduler trace — independent of
// how deliveries interleave with other same-instant events, which is
// exactly what differs between a sequential run and a sharded one.
//
// Writes never block: the framework sizes FIFOs analytically from the
// arrival and service curves (paper eqs. 3–8), so a correctly sized
// channel never backpressures and the bound is reported (MaxFill)
// rather than enforced. Capacity is kept as the nominal analytic bound
// for diagnostics.
type DelayedFIFO struct {
	k        *des.Kernel
	name     string
	capacity int
	delay    des.Time
	recs     []delayedRec
	head     int
	notEmpty des.Signal
	obs      []Observer

	reads, writes int64
	maxFill       int
}

// delayedRec is one written token with its maturity instant. Maturity
// instants are nondecreasing in list order: each channel has a single
// writer and a fixed delay.
type delayedRec struct {
	at  des.Time
	tok Token
}

// NewDelayedFIFO creates a delayed channel on kernel k. The delay must
// be strictly positive — a zero delay would provide no lookahead and
// belongs to the plain FIFO. Capacity is the nominal analytic bound
// (positive, diagnostics only).
func NewDelayedFIFO(k *des.Kernel, name string, capacity int, delay des.Time) *DelayedFIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("kpn: DelayedFIFO %q capacity must be positive, got %d", name, capacity))
	}
	if delay <= 0 {
		panic(fmt.Sprintf("kpn: DelayedFIFO %q delay must be positive, got %d", name, delay))
	}
	return &DelayedFIFO{k: k, name: name, capacity: capacity, delay: delay}
}

// PortName implements ReadPort and WritePort.
func (f *DelayedFIFO) PortName() string { return f.name }

// Capacity returns the nominal analytic bound (not enforced).
func (f *DelayedFIFO) Capacity() int { return f.capacity }

// Delay returns the channel's visibility delay.
func (f *DelayedFIFO) Delay() des.Time { return f.delay }

// Fill returns the number of tokens currently visible to the reader.
func (f *DelayedFIFO) Fill() int {
	now := f.k.Now()
	n := 0
	for i := f.head; i < len(f.recs) && f.recs[i].at <= now; i++ {
		n++
	}
	return n
}

// Queued returns the number of undelivered tokens, visible or not.
func (f *DelayedFIFO) Queued() int { return len(f.recs) - f.head }

// MaxFill returns the highest visible fill level observed at any
// maturity instant.
func (f *DelayedFIFO) MaxFill() int { return f.maxFill }

// Reads and Writes return operation counters.
func (f *DelayedFIFO) Reads() int64  { return f.reads }
func (f *DelayedFIFO) Writes() int64 { return f.writes }

// Observe registers an observer. OnWrite fires at the token's maturity
// instant (when it becomes visible), OnRead at the read.
func (f *DelayedFIFO) Observe(o Observer) { f.obs = append(f.obs, o) }

// Preload inserts tokens visible from time 0, implementing the initial
// fill F_{C,0} of eq. 4.
func (f *DelayedFIFO) Preload(toks []Token) {
	for _, tok := range toks {
		f.recs = append(f.recs, delayedRec{at: 0, tok: tok})
		f.writes++
	}
	if q := f.Queued(); q > f.maxFill {
		f.maxFill = q
	}
}

// Write implements WritePort: the token matures delay ticks from now.
// It never blocks (see the type comment).
func (f *DelayedFIFO) Write(p *des.Proc, tok Token) {
	f.Deliver(p.Now()+f.delay, tok)
}

// Deliver enqueues a token maturing at the given instant. It is the
// entry point for cross-shard drains, which receive (token, timestamp)
// pairs whose maturity was fixed on the writing shard. The instant
// must not precede the latest queued record — per-channel FIFO order
// is the sharded/sequential identity contract.
func (f *DelayedFIFO) Deliver(at des.Time, tok Token) {
	if n := len(f.recs); n > f.head && at < f.recs[n-1].at {
		panic(fmt.Sprintf("kpn: DelayedFIFO %q delivery at %d before queued record at %d",
			f.name, at, f.recs[n-1].at))
	}
	f.recs = append(f.recs, delayedRec{at: at, tok: tok})
	f.writes++
	f.k.At(at, func() { f.mature(tok) })
}

// mature runs at a record's maturity instant: bookkeeping, observers,
// and the reader wakeup. Token visibility does NOT depend on it.
func (f *DelayedFIFO) mature(tok Token) {
	if fill := f.Fill(); fill > f.maxFill {
		f.maxFill = fill
	}
	for _, o := range f.obs {
		o.OnWrite(f.k.Now(), tok, f.Fill())
	}
	f.k.Broadcast(&f.notEmpty)
}

// Read implements ReadPort: blocks while no mature token is available.
func (f *DelayedFIFO) Read(p *des.Proc) Token {
	for f.head >= len(f.recs) || f.recs[f.head].at > f.k.Now() {
		p.Wait(&f.notEmpty)
	}
	tok := f.recs[f.head].tok
	f.recs[f.head] = delayedRec{} // release payload for GC
	f.head++
	f.reads++
	if f.head == len(f.recs) { // compact when drained
		f.recs = f.recs[:0]
		f.head = 0
	} else if f.head > 1024 && f.head*2 > len(f.recs) {
		f.recs = append(f.recs[:0], f.recs[f.head:]...)
		f.head = 0
	}
	for _, o := range f.obs {
		o.OnRead(f.k.Now(), tok, f.Fill())
	}
	return tok
}

var (
	_ ReadPort  = (*DelayedFIFO)(nil)
	_ WritePort = (*DelayedFIFO)(nil)
)
