package kpn

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ftpn/internal/des"
)

// PayloadMemo caches the deterministic payload pipeline of an
// application across simulation runs. Every producer generator and
// critical-stage payload function in internal/apps is a pure function of
// the stream index (the only fault mode that touches data, fault.Corrupt,
// flips bytes in a private copy of the gated token), so when an experiment
// executes the same workload hundreds of times — fault-injection
// campaigns, Table 2 sweeps — each stage's output for stream index seq
// is recomputed identically on every run. The memo computes it once and
// hands every later run (and the second replica within a run) the same
// read-only byte slice.
//
// Correctness: cached slices are exactly the bytes the stage would have
// produced, so consumer streams — including the Seq+payload-hash golden
// comparison of the campaign — stay bit-identical. Virtual timing is
// unaffected: execution-time models draw from the input token size and
// the per-process RNG, neither of which the memo changes. Callers must
// treat payloads as immutable (the KPN stages already do — splits slice,
// merges copy).
//
// A nil *PayloadMemo is valid and disables caching.
type PayloadMemo struct {
	m      sync.Map // memoKey -> []byte
	hits   atomic.Int64
	misses atomic.Int64
}

// memoKey identifies one stage output in one application's stream.
type memoKey struct {
	stage string
	seq   int64
}

// NewPayloadMemo returns an empty memo.
func NewPayloadMemo() *PayloadMemo { return &PayloadMemo{} }

// do returns the cached payload for (stage, seq), computing and caching
// it via f on a miss. Concurrent first computations of the same key are
// benign: both produce identical bytes and either slice may win.
func (m *PayloadMemo) do(stage string, seq int64, compute func() []byte) []byte {
	key := memoKey{stage, seq}
	if v, ok := m.m.Load(key); ok {
		m.hits.Add(1)
		return v.([]byte)
	}
	m.misses.Add(1)
	out := compute()
	m.m.Store(key, out)
	return out
}

// Lookup returns the cached payload for (stage, seq) without computing
// on a miss. Value-fault detection (ft.Selector.SetValueCheck) uses it
// as the golden replay reference, RepTFD-style: the memo holds exactly
// the bytes a fault-free execution produces, so any replica payload
// that differs from a cache hit is a value fault. Nil-memo safe.
func (m *PayloadMemo) Lookup(stage string, seq int64) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	v, ok := m.m.Load(memoKey{stage, seq})
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

// Stats reports cache hits and misses (for tests and benchmarks).
func (m *PayloadMemo) Stats() (hits, misses int64) {
	if m == nil {
		return 0, 0
	}
	return m.hits.Load(), m.misses.Load()
}

// Gen wraps a producer payload generator with the memo, keyed by the
// production index. With a nil memo it returns gen unchanged.
func (m *PayloadMemo) Gen(stage string, gen func(i int64) []byte) func(i int64) []byte {
	if m == nil || gen == nil {
		return gen
	}
	return func(i int64) []byte {
		return m.do(stage, i, func() []byte { return gen(i) })
	}
}

// MemoStage generalizes MemoTransform to arbitrary port arity: each
// firing reads one token from every input (in the channel declaration
// order the network binds ports in), delays for the work model applied
// to the total input size, and writes one token carrying f's payload to
// every output. The emitted Seq is the first input's Seq, so the stream
// index assigned at the producer survives forks, joins and feedback
// stages — declare forward channels before feedback channels so the
// first input is the forward one. Like MemoTransform the payload must
// be a pure function of (stream index, input payloads) for the memo to
// be sound; a nil f forwards the first input's payload, a nil memo
// disables caching. Package topo builds every synthetic DSL stage on
// this behavior.
func MemoStage(work WorkModel, seed int64, memo *PayloadMemo, stage string, f func(i int64, ins [][]byte) []byte) Behavior {
	return func(p *des.Proc, in []ReadPort, out []WritePort) {
		if len(in) == 0 || len(out) == 0 {
			panic(fmt.Sprintf("kpn: MemoStage %q needs at least 1 input and 1 output, got %d/%d", stage, len(in), len(out)))
		}
		rng := rand.New(rand.NewSource(seed))
		toks := make([]Token, len(in))
		for {
			total := 0
			for i := range in {
				toks[i] = in[i].Read(p)
				total += toks[i].Size()
			}
			p.Delay(work.Duration(rng, total))
			seq := toks[0].Seq
			var payload []byte
			if f == nil {
				payload = toks[0].Payload
			} else {
				compute := func() []byte {
					ins := make([][]byte, len(toks))
					for i := range toks {
						ins[i] = toks[i].Payload
					}
					return f(seq, ins)
				}
				if memo != nil {
					payload = memo.do(stage, seq, compute)
				} else {
					payload = compute()
				}
			}
			tok := Token{Seq: seq, Stamp: p.Now(), Payload: payload}
			for _, o := range out {
				o.Write(p, tok)
			}
		}
	}
}

// MemoTransform is Transform with the payload function memoized by the
// token's stream index. Unlike Transform, f receives tok.Seq (not the
// local read counter) as its index argument: the stream index is what
// determines the payload — a recovered replica's read counter drifts
// from Seq after an outage, and every stage payload function in
// internal/apps is index-independent anyway. With a nil memo the
// behavior is identical to Transform except for that argument.
func MemoTransform(work WorkModel, seed int64, memo *PayloadMemo, stage string, f func(i int64, payload []byte) []byte) Behavior {
	if f == nil || memo == nil {
		return Transform(work, seed, f)
	}
	return func(p *des.Proc, in []ReadPort, out []WritePort) {
		if len(in) != 1 || len(out) != 1 {
			panic(fmt.Sprintf("kpn: Transform needs 1 input and 1 output, got %d/%d", len(in), len(out)))
		}
		rng := rand.New(rand.NewSource(seed))
		for {
			tok := in[0].Read(p)
			p.Delay(work.Duration(rng, tok.Size()))
			payload := memo.do(stage, tok.Seq, func() []byte { return f(tok.Seq, tok.Payload) })
			out[0].Write(p, Token{Seq: tok.Seq, Stamp: p.Now(), Payload: payload})
		}
	}
}
