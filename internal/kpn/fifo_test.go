package kpn

import (
	"testing"
	"testing/quick"

	"ftpn/internal/des"
)

func TestFIFOBasicOrder(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 4)
	var got []int64
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			f.Write(p, Token{Seq: i})
		}
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, f.Read(p).Seq)
		}
	})
	k.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("read order = %v, want [1 2 3]", got)
	}
	if f.Reads() != 3 || f.Writes() != 3 {
		t.Errorf("counters = %d/%d, want 3/3", f.Reads(), f.Writes())
	}
}

func TestFIFOWriterBlocksWhenFull(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 2)
	var writeDone des.Time = -1
	k.Spawn("w", 0, func(p *des.Proc) {
		f.Write(p, Token{Seq: 1})
		f.Write(p, Token{Seq: 2})
		f.Write(p, Token{Seq: 3}) // blocks until the reader frees a slot
		writeDone = p.Now()
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		p.Delay(100)
		f.Read(p)
	})
	k.Run(0)
	if writeDone != 100 {
		t.Errorf("third write completed at %d, want 100 (blocked on full FIFO)", writeDone)
	}
	k.Shutdown()
}

func TestFIFOReaderBlocksWhenEmpty(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 2)
	var readDone des.Time = -1
	k.Spawn("r", 0, func(p *des.Proc) {
		f.Read(p)
		readDone = p.Now()
	})
	k.Spawn("w", 0, func(p *des.Proc) {
		p.Delay(55)
		f.Write(p, Token{Seq: 1})
	})
	k.Run(0)
	if readDone != 55 {
		t.Errorf("read completed at %d, want 55 (blocked on empty FIFO)", readDone)
	}
}

func TestFIFOMaxFillTracking(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 10)
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 7; i++ {
			f.Write(p, Token{Seq: i})
		}
		for i := 0; i < 7; i++ {
			f.Read(p)
		}
		f.Write(p, Token{Seq: 8})
	})
	k.Run(0)
	if f.MaxFill() != 7 {
		t.Errorf("MaxFill = %d, want 7", f.MaxFill())
	}
	if f.Fill() != 1 {
		t.Errorf("Fill = %d, want 1", f.Fill())
	}
}

func TestFIFOPreload(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 3)
	f.Preload([]Token{{Seq: -1}, {Seq: 0}})
	if f.Fill() != 2 {
		t.Fatalf("fill after preload = %d, want 2", f.Fill())
	}
	var seqs []int64
	k.Spawn("r", 0, func(p *des.Proc) {
		for i := 0; i < 2; i++ {
			seqs = append(seqs, f.Read(p).Seq)
		}
	})
	k.Run(0)
	if seqs[0] != -1 || seqs[1] != 0 {
		t.Errorf("preloaded seqs = %v, want [-1 0]", seqs)
	}
}

func TestFIFOPreloadOverflowPanics(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 1)
	defer func() {
		if recover() == nil {
			t.Error("overflowing preload should panic")
		}
	}()
	f.Preload(make([]Token, 2))
}

func TestFIFOBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewFIFO(des.NewKernel(), "c", 0)
}

type recordingObserver struct {
	writes, reads int
	lastFill      int
}

func (r *recordingObserver) OnWrite(now des.Time, tok Token, fill int) {
	r.writes++
	r.lastFill = fill
}
func (r *recordingObserver) OnRead(now des.Time, tok Token, fill int) {
	r.reads++
	r.lastFill = fill
}

func TestFIFOObserver(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 4)
	obs := &recordingObserver{}
	f.Observe(obs)
	k.Spawn("w", 0, func(p *des.Proc) {
		f.Write(p, Token{Seq: 1})
		f.Write(p, Token{Seq: 2})
		f.Read(p)
	})
	k.Run(0)
	if obs.writes != 2 || obs.reads != 1 {
		t.Errorf("observer saw %d writes %d reads, want 2/1", obs.writes, obs.reads)
	}
	if obs.lastFill != 1 {
		t.Errorf("lastFill = %d, want 1", obs.lastFill)
	}
}

// Property: under any deterministic interleaving, a FIFO preserves order
// and never exceeds its capacity.
func TestFIFOOrderAndBoundProperty(t *testing.T) {
	prop := func(capRaw uint8, nRaw uint8, readerLag uint8) bool {
		capacity := int(capRaw%8) + 1
		n := int64(nRaw%64) + 1
		k := des.NewKernel()
		f := NewFIFO(k, "c", capacity)
		ok := true
		k.Spawn("w", 0, func(p *des.Proc) {
			for i := int64(1); i <= n; i++ {
				f.Write(p, Token{Seq: i})
				p.Delay(1)
			}
		})
		k.Spawn("r", 0, func(p *des.Proc) {
			want := int64(1)
			for want <= n {
				tok := f.Read(p)
				if tok.Seq != want {
					ok = false
					return
				}
				want++
				p.Delay(des.Time(readerLag % 5))
			}
		})
		k.Run(0)
		k.Shutdown()
		return ok && f.MaxFill() <= capacity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTokenHashAndSize(t *testing.T) {
	a := Token{Payload: []byte("hello")}
	b := Token{Payload: []byte("hello")}
	c := Token{Payload: []byte("world")}
	if a.Hash() != b.Hash() {
		t.Error("equal payloads must hash equal")
	}
	if a.Hash() == c.Hash() {
		t.Error("different payloads should hash differently")
	}
	if a.Size() != 5 {
		t.Errorf("Size = %d, want 5", a.Size())
	}
}
