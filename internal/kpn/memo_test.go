package kpn

import (
	"bytes"
	"testing"
)

// TestPayloadMemoLookup: Lookup hits only what do() cached, never
// computes, and is nil-safe.
func TestPayloadMemoLookup(t *testing.T) {
	m := NewPayloadMemo()
	if _, ok := m.Lookup("s", 1); ok {
		t.Fatal("Lookup hit an empty memo")
	}
	gen := m.Gen("s", func(i int64) []byte { return []byte{byte(i), byte(i + 1)} })
	want := gen(1)
	got, ok := m.Lookup("s", 1)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Lookup = (%v, %v), want (%v, true)", got, ok, want)
	}
	if _, ok := m.Lookup("s", 2); ok {
		t.Fatal("Lookup hit an uncached index")
	}
	if _, ok := m.Lookup("other", 1); ok {
		t.Fatal("Lookup hit a different stage")
	}
	var nilMemo *PayloadMemo
	if _, ok := nilMemo.Lookup("s", 1); ok {
		t.Fatal("nil memo Lookup returned a hit")
	}
}
