package kpn

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/rtc"
)

func TestDefaultShardCount(t *testing.T) {
	wide := &Network{Name: "wide"}
	for i := 0; i < 64; i++ {
		wide.Procs = append(wide.Procs, ProcessSpec{Name: fmt.Sprintf("p%d", i)})
	}
	if got, want := DefaultShardCount(wide), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("DefaultShardCount(wide) = %d, want GOMAXPROCS %d", got, want)
	}
	narrow := &Network{Name: "narrow", Procs: []ProcessSpec{{Name: "a"}, {Name: "b"}}}
	if got := DefaultShardCount(narrow); got > 2 || got < 1 {
		t.Fatalf("DefaultShardCount(narrow) = %d, want in [1,2]", got)
	}
}

// testChain builds src -> t1 -> ... -> tk -> dst with the given channel
// delays (0 = plain FIFO).
func testChain(name string, nprocs int, delay des.Time) *Network {
	n := &Network{Name: name}
	beh := func(int) Behavior { return func(p *des.Proc, in []ReadPort, out []WritePort) {} }
	for i := 0; i < nprocs; i++ {
		n.Procs = append(n.Procs, ProcessSpec{Name: fmt.Sprintf("p%d", i), New: beh})
	}
	for i := 0; i+1 < nprocs; i++ {
		n.Chans = append(n.Chans, ChannelSpec{
			Name: fmt.Sprintf("c%d", i),
			From: fmt.Sprintf("p%d", i), To: fmt.Sprintf("p%d", i+1),
			Capacity: 4, DelayUs: delay,
		})
	}
	return n
}

func TestPartitionNetworkRefusesZeroDelayCut(t *testing.T) {
	n := testChain("nolook", 4, 0)
	_, err := PartitionNetwork(n, 2)
	if err == nil {
		t.Fatalf("partitioning a zero-delay chain across 2 shards did not fail")
	}
	if !strings.Contains(err.Error(), "zero-delay") || !strings.Contains(err.Error(), "WithDelays") {
		t.Fatalf("error %q does not explain the zero-lookahead refusal", err)
	}
	// One shard never cuts anything, so it is always legal.
	plan, err := PartitionNetwork(n, 1)
	if err != nil || plan.Shards != 1 {
		t.Fatalf("single-shard plan: %v %+v", err, plan)
	}
	// The same topology with delay bounds shards fine.
	if _, err := PartitionNetwork(n.WithDelays(50), 2); err != nil {
		t.Fatalf("delayed chain refused: %v", err)
	}
}

// A network where only some channels carry delays: the partitioner must
// cut the delayed channel even though the zero-delay one is lighter.
func TestPartitionNetworkAvoidsZeroDelayCut(t *testing.T) {
	n := testChain("mixed", 4, 0)
	n.Chans[1].DelayUs = 30 // only the middle channel is cuttable
	n.Chans[0].TokenBytes = 1
	n.Chans[1].TokenBytes = 1 << 20 // heavy, but the only legal cut
	n.Chans[2].TokenBytes = 1
	plan, err := PartitionNetwork(n, 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if plan.Assign["p1"] == plan.Assign["p2"] {
		t.Fatalf("partition %v did not cut the only delayed channel", plan.Assign)
	}
}

func TestPartitionNetworkClamps(t *testing.T) {
	n := testChain("clamp", 3, 10)
	plan, err := PartitionNetwork(n, 99)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if plan.Shards != 3 {
		t.Fatalf("Shards = %d, want clamp to 3 processes", plan.Shards)
	}
	seen := map[int]bool{}
	for _, s := range plan.Assign {
		seen[s] = true
	}
	if len(seen) != 3 {
		t.Fatalf("assignment %v does not use all shards", plan.Assign)
	}
}

func TestInstantiateShardedErrors(t *testing.T) {
	n := testChain("errs", 4, 20)
	plan, err := PartitionNetwork(n, 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	sk := des.NewShardedKernel(3)
	if _, err := n.InstantiateSharded(sk, plan, Options{}); err == nil {
		t.Fatalf("shard-count mismatch not rejected")
	}
	sk2 := des.NewShardedKernel(2)
	bad := ShardPlan{Shards: 2, Assign: map[string]int{"p0": 0, "p1": 0, "p2": 1}} // p3 missing
	if _, err := n.InstantiateSharded(sk2, bad, Options{}); err == nil {
		t.Fatalf("missing assignment not rejected")
	}
	sk2.Shutdown()
	sk.Shutdown()
}

// ---------------------------------------------------------------------------
// The identity property: a sharded run of a delayed network produces a
// byte-identical canonical trace and sink stream for every partition.
// ---------------------------------------------------------------------------

type sinkRec struct {
	At   des.Time
	Seq  int64
	Hash uint64
}

// genNet deterministically builds a random delayed network from seed:
// either a single pipeline or two producer chains merging into a tail.
// The recorder collects the consumer's output stream.
func genNet(seed int64, rec *[]sinkRec) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{Name: fmt.Sprintf("prop%d", seed)}
	count := int64(15 + rng.Intn(25))

	model := func() rtc.PJD {
		return rtc.PJD{Period: des.Time(40 + rng.Intn(400)), Jitter: des.Time(rng.Intn(40))}
	}
	work := func() WorkModel {
		return WorkModel{BaseUs: des.Time(5 + rng.Intn(80)), JitterUs: des.Time(rng.Intn(30))}
	}
	delay := func() des.Time { return des.Time(10 + rng.Intn(200)) }
	payload := func(i int64) []byte { return []byte{byte(i), byte(i >> 8), byte(seed)} }
	channel := func(from, to string) {
		n.Chans = append(n.Chans, ChannelSpec{
			Name: fmt.Sprintf("c%d", len(n.Chans)), From: from, To: to,
			Capacity: 4 + rng.Intn(12), DelayUs: delay(),
			TokenBytes: 1 + rng.Intn(512),
		})
	}
	producer := func(name string, c int64) {
		m, s := model(), rng.Int63()
		n.Procs = append(n.Procs, ProcessSpec{Name: name, New: func(int) Behavior {
			return Producer(m, s, c, payload)
		}})
	}
	transform := func(name string) {
		w, s := work(), rng.Int63()
		n.Procs = append(n.Procs, ProcessSpec{Name: name, New: func(int) Behavior {
			return Transform(w, s, func(i int64, b []byte) []byte { return append(b, byte(i)) })
		}})
	}
	consumer := func(name string, c int64) {
		m, s := model(), rng.Int63()
		n.Procs = append(n.Procs, ProcessSpec{Name: name, New: func(int) Behavior {
			return Consumer(m, s, c, func(now des.Time, tok Token) {
				*rec = append(*rec, sinkRec{At: now, Seq: tok.Seq, Hash: tok.Hash()})
			})
		}})
	}
	chain := func(prefix string, k int) (first, last string) {
		for i := 0; i < k; i++ {
			name := fmt.Sprintf("%s%d", prefix, i)
			transform(name)
			if i == 0 {
				first = name
			} else {
				channel(fmt.Sprintf("%s%d", prefix, i-1), name)
			}
			last = name
		}
		return first, last
	}

	if rng.Intn(2) == 0 {
		// Pipeline: P -> T* -> C.
		producer("P", count)
		first, last := chain("T", 2+rng.Intn(4))
		channel("P", first)
		consumer("C", count)
		channel(last, "C")
	} else {
		// Diamond: two producer chains merge, then a tail chain.
		producer("Pa", count)
		producer("Pb", count)
		fa, la := chain("A", 1+rng.Intn(2))
		fb, lb := chain("B", 1+rng.Intn(2))
		channel("Pa", fa)
		channel("Pb", fb)
		w, s := work(), rng.Int63()
		n.Procs = append(n.Procs, ProcessSpec{Name: "M", New: func(int) Behavior {
			return func(p *des.Proc, in []ReadPort, out []WritePort) {
				mrng := rand.New(rand.NewSource(s))
				for i := int64(1); ; i++ {
					a := in[0].Read(p)
					b := in[1].Read(p)
					p.Delay(w.Duration(mrng, a.Size()+b.Size()))
					out[0].Write(p, Token{
						Seq: i, Stamp: p.Now(),
						Payload: append(append([]byte(nil), a.Payload...), b.Payload...),
					})
				}
			}
		}})
		channel(la, "M")
		channel(lb, "M")
		ft, lt := chain("T", 1+rng.Intn(2))
		channel("M", ft)
		consumer("C", count)
		channel(lt, "C")
	}
	return n
}

func runSequentialNet(t *testing.T, seed int64) ([]byte, []sinkRec) {
	t.Helper()
	var rec []sinkRec
	n := genNet(seed, &rec)
	k := des.NewKernel()
	tc := des.NewTraceCollector()
	tc.Attach(k)
	if _, err := n.Instantiate(k, Options{}); err != nil {
		t.Fatalf("seed %d: sequential instantiate: %v", seed, err)
	}
	k.Run(0)
	k.Shutdown()
	return tc.Bytes(), rec
}

func runShardedNet(t *testing.T, seed int64, shards int) ([]byte, []sinkRec, des.ShardStats) {
	t.Helper()
	var rec []sinkRec
	n := genNet(seed, &rec)
	plan, err := PartitionNetwork(n, shards)
	if err != nil {
		t.Fatalf("seed %d: partition into %d: %v", seed, shards, err)
	}
	sk := des.NewShardedKernel(plan.Shards)
	tc := des.NewTraceCollector()
	for i := 0; i < sk.NumShards(); i++ {
		tc.Attach(sk.Shard(i))
	}
	if _, err := n.InstantiateSharded(sk, plan, Options{}); err != nil {
		t.Fatalf("seed %d: sharded instantiate: %v", seed, err)
	}
	sk.Run(0)
	stats := sk.Stats()
	sk.Shutdown()
	return tc.Bytes(), rec, stats
}

func sinksEqual(a, b []sinkRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedNetworkIdentityProperty is the partition-invariance
// property test: random delayed networks, random partitions, random
// seeds — the sharded canonical trace and the consumer's output stream
// must match the single-kernel oracle bit for bit.
func TestShardedNetworkIdentityProperty(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(0xF7D))
	var drained int64
	for trial := 0; trial < trials; trial++ {
		seed := rng.Int63()
		wantTrace, wantSink := runSequentialNet(t, seed)
		if len(wantSink) == 0 {
			t.Fatalf("seed %d: sequential run delivered nothing", seed)
		}
		shards := 2 + rng.Intn(3)
		if trial%10 == 0 {
			shards = 1 // the degenerate partition must be identical too
		}
		gotTrace, gotSink, stats := runShardedNet(t, seed, shards)
		if !bytes.Equal(wantTrace, gotTrace) {
			t.Fatalf("seed %d shards %d: canonical trace diverged from sequential oracle\nseq:\n%s\nsharded:\n%s",
				seed, shards, wantTrace, gotTrace)
		}
		if !sinksEqual(wantSink, gotSink) {
			t.Fatalf("seed %d shards %d: sink stream diverged\nseq: %v\nsharded: %v",
				seed, shards, wantSink, gotSink)
		}
		drained += stats.Drained
	}
	if drained == 0 {
		t.Fatalf("no cross-shard messages in %d trials: property test is vacuous", trials)
	}
}

// TestShardedNetworkIdentityAllWidths pins one seed and sweeps every
// shard count 1..8 (clamped by the process count).
func TestShardedNetworkIdentityAllWidths(t *testing.T) {
	const seed = 424242
	wantTrace, wantSink := runSequentialNet(t, seed)
	for shards := 1; shards <= 8; shards++ {
		gotTrace, gotSink, _ := runShardedNet(t, seed, shards)
		if !bytes.Equal(wantTrace, gotTrace) {
			t.Fatalf("shards %d: trace diverged", shards)
		}
		if !sinksEqual(wantSink, gotSink) {
			t.Fatalf("shards %d: sink stream diverged", shards)
		}
	}
}
