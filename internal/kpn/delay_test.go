package kpn

import (
	"testing"

	"ftpn/internal/des"
)

func TestDelayedFIFOVisibility(t *testing.T) {
	k := des.NewKernel()
	f := NewDelayedFIFO(k, "D", 4, 5)

	var got []des.Time
	k.Spawn("reader", 0, func(p *des.Proc) {
		for i := 0; i < 2; i++ {
			tok := f.Read(p)
			got = append(got, p.Now())
			if tok.Seq != int64(i+1) {
				t.Errorf("read %d: Seq %d", i, tok.Seq)
			}
		}
	})
	k.Spawn("writer", 0, func(p *des.Proc) {
		p.Delay(10)
		f.Write(p, Token{Seq: 1}) // matures at 15
		f.Write(p, Token{Seq: 2}) // matures at 15 too
	})
	k.Run(0)

	if len(got) != 2 || got[0] != 15 || got[1] != 15 {
		t.Fatalf("read instants %v, want [15 15]", got)
	}
	if f.Reads() != 2 || f.Writes() != 2 {
		t.Fatalf("counters reads=%d writes=%d, want 2/2", f.Reads(), f.Writes())
	}
	if f.Fill() != 0 || f.Queued() != 0 {
		t.Fatalf("fill=%d queued=%d after drain", f.Fill(), f.Queued())
	}
	k.Shutdown()
}

// A reader arriving at the maturity instant through its own timer — not
// through the wakeup callback — must see the token: visibility is by
// value, not by event order.
func TestDelayedFIFOVisibilityByValue(t *testing.T) {
	k := des.NewKernel()
	f := NewDelayedFIFO(k, "D", 4, 7)
	f.Deliver(7, Token{Seq: 1}) // matures at 7

	sawAt := des.Time(-1)
	k.Spawn("poller", 0, func(p *des.Proc) {
		p.Delay(7) // arrives at t=7 independently of the maturity callback
		if f.Fill() != 1 {
			t.Errorf("fill at t=7 is %d, want 1 (value visibility)", f.Fill())
		}
		f.Read(p)
		sawAt = p.Now()
	})
	k.Run(0)
	if sawAt != 7 {
		t.Fatalf("read completed at %d, want 7", sawAt)
	}
	k.Shutdown()
}

func TestDelayedFIFOPreload(t *testing.T) {
	k := des.NewKernel()
	f := NewDelayedFIFO(k, "D", 4, 3)
	f.Preload([]Token{{Seq: -1}, {Seq: 0}})
	if f.Fill() != 2 {
		t.Fatalf("preloaded fill %d, want 2 (visible at time 0)", f.Fill())
	}
	var seqs []int64
	k.Spawn("reader", 0, func(p *des.Proc) {
		seqs = append(seqs, f.Read(p).Seq, f.Read(p).Seq)
	})
	k.Run(0)
	if len(seqs) != 2 || seqs[0] != -1 || seqs[1] != 0 {
		t.Fatalf("read %v, want [-1 0]", seqs)
	}
	k.Shutdown()
}

func TestDelayedFIFODeliverRejectsReorder(t *testing.T) {
	k := des.NewKernel()
	f := NewDelayedFIFO(k, "D", 4, 3)
	f.Deliver(10, Token{Seq: 1})
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-order Deliver did not panic")
		}
	}()
	f.Deliver(9, Token{Seq: 2})
}

func TestDelayedFIFOConstructorValidation(t *testing.T) {
	k := des.NewKernel()
	for _, tc := range []struct{ cap, delay int }{{0, 5}, {4, 0}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDelayedFIFO(cap=%d, delay=%d) did not panic", tc.cap, tc.delay)
				}
			}()
			NewDelayedFIFO(k, "bad", tc.cap, des.Time(tc.delay))
		}()
	}
}

type fillObs struct {
	writes, reads []int // fill levels observed
}

func (o *fillObs) OnWrite(now des.Time, tok Token, fill int) { o.writes = append(o.writes, fill) }
func (o *fillObs) OnRead(now des.Time, tok Token, fill int)  { o.reads = append(o.reads, fill) }

func TestDelayedFIFOObserversAndMaxFill(t *testing.T) {
	k := des.NewKernel()
	f := NewDelayedFIFO(k, "D", 8, 2)
	obs := &fillObs{}
	f.Observe(obs)

	k.Spawn("writer", 0, func(p *des.Proc) {
		f.Write(p, Token{Seq: 1})
		f.Write(p, Token{Seq: 2}) // both mature at 2
		p.Delay(10)
		f.Write(p, Token{Seq: 3}) // matures at 12
	})
	k.Spawn("reader", 0, func(p *des.Proc) {
		p.Delay(5)
		f.Read(p)
		f.Read(p)
		f.Read(p)
	})
	k.Run(0)

	if f.MaxFill() != 2 {
		t.Fatalf("MaxFill %d, want 2", f.MaxFill())
	}
	if len(obs.writes) != 3 || len(obs.reads) != 3 {
		t.Fatalf("observer saw %d writes / %d reads, want 3/3", len(obs.writes), len(obs.reads))
	}
	k.Shutdown()
}
