package kpn

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/rtc"
)

// feedbackNet builds a two-process network with a forward channel and a
// feedback channel carrying `init` initial tokens.
func feedbackNet(init int) *Network {
	passThrough := func(int) Behavior {
		return func(p *des.Proc, in []ReadPort, out []WritePort) {
			for {
				tok := in[0].Read(p)
				if len(in) > 1 {
					in[1].Read(p)
				}
				for _, o := range out {
					o.Write(p, tok)
				}
			}
		}
	}
	return &Network{
		Name: "feedback",
		Procs: []ProcessSpec{
			{Name: "A", Role: kRoleCritical, New: passThrough},
			{Name: "B", Role: kRoleCritical, New: passThrough},
			{Name: "src", Role: RoleProducer, New: func(int) Behavior {
				return Producer(rtc.PJD{Period: 10}, 1, 5, nil)
			}},
		},
		Chans: []ChannelSpec{
			{Name: "in", From: "src", To: "A", Capacity: 4},
			{Name: "fwd", From: "A", To: "B", Capacity: 4},
			{Name: "fb", From: "B", To: "A", Capacity: 4, InitialTokens: init},
		},
	}
}

// kRoleCritical avoids import cycles in the test helper.
const kRoleCritical = RoleCritical

func TestCyclesDetected(t *testing.T) {
	n := feedbackNet(2)
	cycles := n.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("found %d cycles, want 1: %v", len(cycles), cycles)
	}
	c := cycles[0]
	if len(c.Channels) != 2 || c.InitialTokens != 2 {
		t.Errorf("cycle = %v", c)
	}
	if c.String() == "" {
		t.Error("empty cycle rendering")
	}
}

func TestDeadlockRisks(t *testing.T) {
	if risks := feedbackNet(2).DeadlockRisks(); len(risks) != 0 {
		t.Errorf("preloaded feedback flagged: %v", risks)
	}
	risks := feedbackNet(0).DeadlockRisks()
	if len(risks) != 1 {
		t.Fatalf("token-free cycle not flagged: %v", risks)
	}
}

func TestAcyclicPipelineHasNoCycles(t *testing.T) {
	n := testNet(nil)
	if cycles := n.Cycles(); len(cycles) != 0 {
		t.Errorf("pipeline reported cycles: %v", cycles)
	}
}

func TestSelfLoopCycle(t *testing.T) {
	n := &Network{
		Name: "selfloop",
		Procs: []ProcessSpec{
			{Name: "A", Role: RoleCritical, New: func(int) Behavior {
				return func(p *des.Proc, in []ReadPort, out []WritePort) {}
			}},
		},
		Chans: []ChannelSpec{
			{Name: "loop", From: "A", To: "A", Capacity: 2, InitialTokens: 1},
		},
	}
	cycles := n.Cycles()
	if len(cycles) != 1 || len(cycles[0].Channels) != 1 || cycles[0].InitialTokens != 1 {
		t.Errorf("self loop = %v", cycles)
	}
}

func TestTwoDistinctCyclesCountedOnce(t *testing.T) {
	// A <-> B with two parallel forward channels: two elementary cycles
	// (fwd1+back, fwd2+back), each counted exactly once regardless of
	// DFS start.
	n := &Network{
		Name: "multi",
		Procs: []ProcessSpec{
			{Name: "A", Role: RoleCritical, New: func(int) Behavior { return func(*des.Proc, []ReadPort, []WritePort) {} }},
			{Name: "B", Role: RoleCritical, New: func(int) Behavior { return func(*des.Proc, []ReadPort, []WritePort) {} }},
		},
		Chans: []ChannelSpec{
			{Name: "fwd1", From: "A", To: "B", Capacity: 1},
			{Name: "fwd2", From: "A", To: "B", Capacity: 1},
			{Name: "back", From: "B", To: "A", Capacity: 1, InitialTokens: 1},
		},
	}
	cycles := n.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("found %d cycles, want 2: %v", len(cycles), cycles)
	}
}

// TestDeadlockRiskIsReal runs the token-free feedback network and shows
// it actually stalls: the analysis predicts real behaviour.
func TestDeadlockRiskIsReal(t *testing.T) {
	n := feedbackNet(0)
	k := des.NewKernel()
	if _, err := n.Instantiate(k, Options{}); err != nil {
		t.Fatal(err)
	}
	end := k.Run(0)
	blocked := k.Blocked()
	k.Shutdown()
	// A stalls forever waiting on the empty feedback channel.
	if len(blocked) == 0 {
		t.Errorf("predicted deadlock did not materialize (end=%d)", end)
	}
	// The preloaded variant flows.
	n2 := feedbackNet(2)
	var consumed int
	n2.Procs[1].New = func(int) Behavior { // B: count and feed back
		return func(p *des.Proc, in []ReadPort, out []WritePort) {
			for {
				tok := in[0].Read(p)
				consumed++
				out[0].Write(p, tok)
			}
		}
	}
	k2 := des.NewKernel()
	if _, err := n2.Instantiate(k2, Options{}); err != nil {
		t.Fatal(err)
	}
	k2.Run(0)
	k2.Shutdown()
	if consumed != 5 {
		t.Errorf("preloaded feedback consumed %d tokens, want 5", consumed)
	}
}
