package kpn

import (
	"fmt"

	"ftpn/internal/des"
)

// FIFO is a bounded channel with blocking, destructive reads and
// blocking writes — the communication primitive of the reference process
// network. It is single-simulation-threaded by construction (package
// des), so no locking is needed.
type FIFO struct {
	k        *des.Kernel
	name     string
	capacity int
	q        []Token
	head     int
	notEmpty des.Signal
	notFull  des.Signal
	obs      []Observer

	reads, writes int64
	maxFill       int
}

// NewFIFO creates a bounded FIFO channel. Capacity must be positive.
func NewFIFO(k *des.Kernel, name string, capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("kpn: FIFO %q capacity must be positive, got %d", name, capacity))
	}
	return &FIFO{k: k, name: name, capacity: capacity}
}

// PortName implements ReadPort and WritePort.
func (f *FIFO) PortName() string { return f.name }

// Capacity returns the channel's bounded capacity.
func (f *FIFO) Capacity() int { return f.capacity }

// Fill returns the current number of queued tokens.
func (f *FIFO) Fill() int { return len(f.q) - f.head }

// MaxFill returns the highest fill level ever observed (the paper's
// "Max. Observed Fill" row of Table 2).
func (f *FIFO) MaxFill() int { return f.maxFill }

// Reads and Writes return operation counters.
func (f *FIFO) Reads() int64  { return f.reads }
func (f *FIFO) Writes() int64 { return f.writes }

// Observe registers an observer for write/read events.
func (f *FIFO) Observe(o Observer) { f.obs = append(f.obs, o) }

// Preload inserts tokens before the simulation starts, implementing the
// initial fill F_{C,0} of eq. 4. It must not overflow the capacity.
func (f *FIFO) Preload(toks []Token) {
	if f.Fill()+len(toks) > f.capacity {
		panic(fmt.Sprintf("kpn: preloading %d tokens overflows FIFO %q (cap %d, fill %d)",
			len(toks), f.name, f.capacity, f.Fill()))
	}
	f.q = append(f.q, toks...)
	if fill := f.Fill(); fill > f.maxFill {
		f.maxFill = fill
	}
}

// Write implements WritePort: blocks while the queue is full.
func (f *FIFO) Write(p *des.Proc, tok Token) {
	for f.Fill() >= f.capacity {
		p.Wait(&f.notFull)
	}
	f.q = append(f.q, tok)
	f.writes++
	if fill := f.Fill(); fill > f.maxFill {
		f.maxFill = fill
	}
	f.k.Broadcast(&f.notEmpty)
	for _, o := range f.obs {
		o.OnWrite(f.k.Now(), tok, f.Fill())
	}
}

// Read implements ReadPort: blocks while the queue is empty.
func (f *FIFO) Read(p *des.Proc) Token {
	for f.Fill() == 0 {
		p.Wait(&f.notEmpty)
	}
	tok := f.q[f.head]
	f.q[f.head] = Token{} // release payload for GC
	f.head++
	f.reads++
	if f.head == len(f.q) { // compact when drained
		f.q = f.q[:0]
		f.head = 0
	} else if f.head > 1024 && f.head*2 > len(f.q) {
		f.q = append(f.q[:0], f.q[f.head:]...)
		f.head = 0
	}
	f.k.Broadcast(&f.notFull)
	for _, o := range f.obs {
		o.OnRead(f.k.Now(), tok, f.Fill())
	}
	return tok
}

var (
	_ ReadPort  = (*FIFO)(nil)
	_ WritePort = (*FIFO)(nil)
)
