package kpn

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/rtc"
)

func TestPacerStrictlyPeriodic(t *testing.T) {
	pc := NewPacer(rtc.PJD{Period: 10}, 1)
	for i := int64(0); i < 5; i++ {
		if at := pc.Next(); at != i*10 {
			t.Errorf("activation %d at %d, want %d", i, at, i*10)
		}
	}
}

func TestPacerRespectsEnvelope(t *testing.T) {
	m := rtc.PJD{Period: 100, Jitter: 40, MinDist: 60}
	pc := NewPacer(m, 42)
	var times []des.Time
	for i := 0; i < 200; i++ {
		times = append(times, pc.Next())
	}
	u, l := m.Upper(), m.Lower()
	for a := 0; a < len(times); a++ {
		if a > 0 && times[a] < times[a-1] {
			t.Fatal("activations must be non-decreasing")
		}
		if a > 0 && times[a]-times[a-1] < m.MinDist {
			t.Fatalf("min distance violated: %d after %d", times[a], times[a-1])
		}
		for b := a; b < len(times); b++ {
			delta := times[b] - times[a] + 1
			if cnt := rtc.Count(b - a + 1); cnt > u.Eval(delta) {
				t.Fatalf("upper envelope violated: %d events in window %d", cnt, delta)
			}
		}
	}
	// Lower envelope: count events in sampled windows inside the span.
	span := times[len(times)-1]
	for _, start := range []des.Time{0, 123, 1777} {
		for _, delta := range []des.Time{150, 500, 2000} {
			if start+delta > span {
				continue
			}
			var cnt rtc.Count
			for _, at := range times {
				if at >= start && at < start+delta {
					cnt++
				}
			}
			if cnt < l.Eval(delta) {
				t.Fatalf("lower envelope violated: %d events in [%d,%d)", cnt, start, start+delta)
			}
		}
	}
}

func TestPacerDeterministic(t *testing.T) {
	m := rtc.PJD{Period: 10, Jitter: 5}
	a, b := NewPacer(m, 7), NewPacer(m, 7)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give the same activation sequence")
		}
	}
	c := NewPacer(m, 8)
	same := true
	for i := 0; i < 50; i++ {
		if NewPacer(m, 7).Next() != c.Next() {
			same = false
			break
		}
	}
	_ = same // different seeds may coincide on a prefix; no assertion
}

func TestPacerInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid model should panic")
		}
	}()
	NewPacer(rtc.PJD{Period: 0}, 1)
}

func TestProducerConsumerPipeline(t *testing.T) {
	k := des.NewKernel()
	f := NewFIFO(k, "c", 4)
	var arrivals []des.Time
	var seqs []int64

	prod := Producer(rtc.PJD{Period: 100}, 1, 10, func(i int64) []byte { return []byte{byte(i)} })
	cons := Consumer(rtc.PJD{Period: 100}, 2, 10, func(now des.Time, tok Token) {
		arrivals = append(arrivals, now)
		seqs = append(seqs, tok.Seq)
	})
	k.Spawn("P", 0, func(p *des.Proc) { prod(p, nil, []WritePort{f}) })
	k.Spawn("C", 0, func(p *des.Proc) { cons(p, []ReadPort{f}, nil) })
	k.Run(0)

	if len(seqs) != 10 {
		t.Fatalf("consumed %d tokens, want 10", len(seqs))
	}
	for i, s := range seqs {
		if s != int64(i)+1 {
			t.Errorf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	// Strictly periodic producer and consumer, same period: arrival i at i*100.
	for i, at := range arrivals {
		if at != des.Time(i)*100 {
			t.Errorf("arrival %d at %d, want %d", i, at, i*100)
		}
	}
}

func TestTransformAddsLatencyAndRewritesPayload(t *testing.T) {
	k := des.NewKernel()
	in := NewFIFO(k, "in", 4)
	out := NewFIFO(k, "out", 4)
	tr := Transform(WorkModel{BaseUs: 7}, 3, func(i int64, pl []byte) []byte {
		return append(pl, 0xFF)
	})
	k.Spawn("T", 0, func(p *des.Proc) { tr(p, []ReadPort{in}, []WritePort{out}) })
	var got Token
	k.Spawn("drv", 0, func(p *des.Proc) {
		in.Write(p, Token{Seq: 1, Payload: []byte{1, 2}})
		got = out.Read(p)
	})
	k.Run(0)
	k.Shutdown()
	if got.Stamp != 7 {
		t.Errorf("transform output at %d, want 7 (base work)", got.Stamp)
	}
	if len(got.Payload) != 3 || got.Payload[2] != 0xFF {
		t.Errorf("payload = %v, want transformed", got.Payload)
	}
}

func TestTransformPortAridityPanics(t *testing.T) {
	k := des.NewKernel()
	tr := Transform(WorkModel{}, 1, nil)
	k.Spawn("T", 0, func(p *des.Proc) { tr(p, nil, nil) })
	defer func() {
		if recover() == nil {
			t.Error("transform without ports should panic")
		}
	}()
	k.Run(0)
}

func TestConsumerBlockedCountsAgainstBudget(t *testing.T) {
	// If the consumer blocks past its next activation, it reads
	// immediately afterwards instead of waiting another period.
	k := des.NewKernel()
	f := NewFIFO(k, "c", 4)
	var arrivals []des.Time
	cons := Consumer(rtc.PJD{Period: 10}, 1, 2, func(now des.Time, tok Token) {
		arrivals = append(arrivals, now)
	})
	k.Spawn("C", 0, func(p *des.Proc) { cons(p, []ReadPort{f}, nil) })
	k.Spawn("W", 0, func(p *des.Proc) {
		p.Delay(35)
		f.Write(p, Token{Seq: 1})
		f.Write(p, Token{Seq: 2})
	})
	k.Run(0)
	if len(arrivals) != 2 || arrivals[0] != 35 || arrivals[1] != 35 {
		t.Errorf("arrivals = %v, want [35 35]", arrivals)
	}
}

func TestWorkModelDurationNonNegative(t *testing.T) {
	w := WorkModel{BaseUs: 0, PerKBUs: 0, JitterUs: 0}
	k := des.NewKernel()
	in := NewFIFO(k, "in", 1)
	out := NewFIFO(k, "out", 1)
	tr := Transform(w, 1, nil)
	k.Spawn("T", 0, func(p *des.Proc) { tr(p, []ReadPort{in}, []WritePort{out}) })
	var done bool
	k.Spawn("drv", 0, func(p *des.Proc) {
		in.Write(p, Token{Seq: 1})
		out.Read(p)
		done = true
	})
	k.Run(0)
	k.Shutdown()
	if !done {
		t.Error("zero-cost transform should still move tokens")
	}
}
