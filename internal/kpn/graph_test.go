package kpn

import (
	"strings"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/rtc"
	"ftpn/internal/scc"
)

// testNet builds a minimal producer -> worker -> consumer network.
func testNet(onToken func(now des.Time, tok Token)) *Network {
	return &Network{
		Name: "test",
		Procs: []ProcessSpec{
			{Name: "P", Role: RoleProducer, New: func(int) Behavior {
				return Producer(rtc.PJD{Period: 100}, 1, 20, func(i int64) []byte { return []byte{byte(i)} })
			}},
			{Name: "W", Role: RoleCritical, New: func(replica int) Behavior {
				return Transform(WorkModel{BaseUs: 10, JitterUs: des.Time(replica) * 5}, 3, nil)
			}},
			{Name: "C", Role: RoleConsumer, New: func(int) Behavior {
				return Consumer(rtc.PJD{Period: 100}, 2, 20, onToken)
			}},
		},
		Chans: []ChannelSpec{
			{Name: "FP", From: "P", To: "W", Capacity: 4, TokenBytes: 1024},
			{Name: "FC", From: "W", To: "C", Capacity: 4, InitialTokens: 1, TokenBytes: 1024},
		},
	}
}

func TestNetworkValidate(t *testing.T) {
	n := testNet(nil)
	if err := n.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Network)
	}{
		{"empty name", func(n *Network) { n.Name = "" }},
		{"unnamed proc", func(n *Network) { n.Procs[0].Name = "" }},
		{"dup proc", func(n *Network) { n.Procs[1].Name = "P" }},
		{"nil factory", func(n *Network) { n.Procs[0].New = nil }},
		{"unnamed chan", func(n *Network) { n.Chans[0].Name = "" }},
		{"dup chan", func(n *Network) { n.Chans[1].Name = "FP" }},
		{"bad from", func(n *Network) { n.Chans[0].From = "X" }},
		{"bad to", func(n *Network) { n.Chans[0].To = "X" }},
		{"zero cap", func(n *Network) { n.Chans[0].Capacity = 0 }},
		{"fill over cap", func(n *Network) { n.Chans[0].InitialTokens = 99 }},
		{"negative fill", func(n *Network) { n.Chans[0].InitialTokens = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := testNet(nil)
			c.mutate(bad)
			if err := bad.Validate(); err == nil {
				t.Error("expected validation failure")
			}
		})
	}
}

func TestNetworkAccessors(t *testing.T) {
	n := testNet(nil)
	if n.Proc("W") == nil || n.Proc("nope") != nil {
		t.Error("Proc lookup broken")
	}
	if ins := n.Inputs("W"); len(ins) != 1 || ins[0].Name != "FP" {
		t.Errorf("Inputs(W) = %v", ins)
	}
	if outs := n.Outputs("W"); len(outs) != 1 || outs[0].Name != "FC" {
		t.Errorf("Outputs(W) = %v", outs)
	}
}

func TestInstantiateRunsEndToEnd(t *testing.T) {
	var count int
	var lastSeq int64
	n := testNet(func(now des.Time, tok Token) {
		count++
		lastSeq = tok.Seq
	})
	k := des.NewKernel()
	inst, err := n.Instantiate(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	if count != 20 {
		t.Fatalf("consumer saw %d tokens, want 20", count)
	}
	// Consumer read 1 preloaded token plus 19 produced ones.
	if lastSeq != 19 {
		t.Errorf("last seq = %d, want 19", lastSeq)
	}
	if inst.FIFOs["FP"].Writes() == 0 {
		t.Error("producer FIFO never written")
	}
}

func TestInstantiateOnSCC(t *testing.T) {
	chip, err := scc.New(scc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []des.Time
	n := testNet(func(now des.Time, tok Token) { arrivals = append(arrivals, now) })
	k := des.NewKernel()
	inst, err := n.Instantiate(k, Options{Chip: chip})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	if len(inst.Cores) != 3 {
		t.Fatalf("placed %d processes, want 3", len(inst.Cores))
	}
	// One process per tile.
	tiles := map[int]bool{}
	for _, c := range inst.Cores {
		if tiles[c.Tile().ID] {
			t.Error("two processes share a tile")
		}
		tiles[c.Tile().ID] = true
	}
	if len(arrivals) == 0 {
		t.Fatal("no tokens arrived on the SCC instance")
	}
}

func TestInstantiatePlacementExplicit(t *testing.T) {
	chip, _ := scc.New(scc.DefaultConfig())
	n := testNet(nil)
	k := des.NewKernel()
	_, err := n.Instantiate(k, Options{
		Chip: chip,
		Placement: map[string]*scc.Core{
			"P": chip.Core(0), "W": chip.Core(2), "C": chip.Core(4),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
}

func TestInstantiatePlacementMissingProcess(t *testing.T) {
	chip, _ := scc.New(scc.DefaultConfig())
	n := testNet(nil)
	_, err := n.Instantiate(des.NewKernel(), Options{
		Chip:      chip,
		Placement: map[string]*scc.Core{"P": chip.Core(0)},
	})
	if err == nil {
		t.Error("incomplete placement should fail")
	}
}

func TestInstantiateInvalidNetwork(t *testing.T) {
	bad := testNet(nil)
	bad.Chans[0].Capacity = 0
	if _, err := bad.Instantiate(des.NewKernel(), Options{}); err == nil {
		t.Error("instantiating an invalid network should fail")
	}
}

func TestTransferDelayOnSCC(t *testing.T) {
	chip, _ := scc.New(scc.DefaultConfig())
	k := des.NewKernel()
	f := NewFIFO(k, "c", 2)
	port := WithTransfer(f, chip, chip.Core(0), chip.Core(47), 0)
	var wrote des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		port.Write(p, Token{Seq: 1, Payload: make([]byte, 10*1024)})
		wrote = p.Now()
	})
	k.Run(0)
	want := chip.TransferTime(chip.Core(0), chip.Core(47), 10*1024)
	if wrote != want {
		t.Errorf("write completed at %d, want transfer time %d", wrote, want)
	}
	if port.PortName() != "c" {
		t.Errorf("PortName = %q, want c", port.PortName())
	}
}

func TestTransferFallbackBytes(t *testing.T) {
	chip, _ := scc.New(scc.DefaultConfig())
	k := des.NewKernel()
	f := NewFIFO(k, "c", 2)
	port := WithTransfer(f, chip, chip.Core(0), chip.Core(2), 4096)
	var wrote des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		port.Write(p, Token{Seq: 1}) // no payload: fallback size applies
		wrote = p.Now()
	})
	k.Run(0)
	want := chip.TransferTime(chip.Core(0), chip.Core(2), 4096)
	if wrote != want {
		t.Errorf("write completed at %d, want %d", wrote, want)
	}
}

func TestDOTAndSummary(t *testing.T) {
	n := testNet(nil)
	dot := n.DOT()
	for _, want := range []string{"digraph", `"P"`, `"W"`, `"C"`, "FP", "FC"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	sum := n.Summary()
	if !strings.Contains(sum, "role=critical") || !strings.Contains(sum, "cap=4") {
		t.Errorf("Summary missing fields:\n%s", sum)
	}
}

func TestRoleString(t *testing.T) {
	if RoleProducer.String() != "producer" || RoleCritical.String() != "critical" ||
		RoleConsumer.String() != "consumer" || Role(9).String() != "Role(9)" {
		t.Error("Role.String broken")
	}
}
