package kpn

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"ftpn/internal/des"
)

// Sharded instantiation: place a process network onto the shards of a
// des.ShardedKernel so one simulation runs on several cores under the
// conservative (Chandy–Misra) protocol. The partitioner cuts only
// channels that carry a positive RTC delay bound (ChannelSpec.DelayUs)
// — the delay is the lookahead that keeps the protocol deadlock-free —
// and the cut channels keep their exact sequential semantics because
// both sides use the same value-visibility DelayedFIFO. A single-kernel
// Instantiate of the same network is therefore a bit-identical oracle
// for any shard count.

// zeroDelayWeight makes cutting a zero-delay channel effectively
// infinitely expensive for the partitioner: any partition that avoids
// zero-delay cuts beats any that does not.
const zeroDelayWeight = int64(1) << 40

// ShardPlan maps every process of a network to a shard index.
type ShardPlan struct {
	// Shards is the number of shards the plan targets (after clamping
	// to the process count).
	Shards int
	// Assign maps process name to shard index in [0, Shards).
	Assign map[string]int
}

// DefaultShardCount picks the shard count used when the caller does
// not force one: the machine's parallelism, clamped to the network's
// width (there is no point in more shards than processes).
func DefaultShardCount(n *Network) int {
	c := runtime.GOMAXPROCS(0)
	if w := len(n.Procs); w < c {
		c = w
	}
	if c < 1 {
		c = 1
	}
	return c
}

// PartitionNetwork splits the network's processes into the requested
// number of balanced shards, minimizing cut channel traffic (weighted
// by TokenBytes). Channels without a delay bound cannot legally cross
// shards — they provide no lookahead — so they carry a prohibitive
// weight; if even then a zero-delay channel ends up cut, the topology
// cannot be sharded at that width and an error names the channels (use
// Network.WithDelays or fewer shards).
func PartitionNetwork(n *Network, shards int) (ShardPlan, error) {
	if err := n.Validate(); err != nil {
		return ShardPlan{}, err
	}
	if len(n.Procs) == 0 {
		return ShardPlan{}, fmt.Errorf("kpn: network %q has no processes to partition", n.Name)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(n.Procs) {
		shards = len(n.Procs)
	}

	idx := make(map[string]int, len(n.Procs))
	for i, p := range n.Procs {
		idx[p.Name] = i
	}
	edges := make([]des.GraphEdge, 0, len(n.Chans))
	for _, c := range n.Chans {
		w := int64(c.TokenBytes)
		if w < 1 {
			w = 1
		}
		if c.DelayUs <= 0 {
			w = zeroDelayWeight
		}
		edges = append(edges, des.GraphEdge{A: idx[c.From], B: idx[c.To], Weight: w})
	}
	assign := des.PartitionGraph(len(n.Procs), edges, shards)

	var bad []string
	for _, c := range n.Chans {
		if c.DelayUs <= 0 && assign[idx[c.From]] != assign[idx[c.To]] {
			bad = append(bad, fmt.Sprintf("%s (%s->%s)", c.Name, c.From, c.To))
		}
	}
	if len(bad) > 0 {
		return ShardPlan{}, fmt.Errorf(
			"kpn: network %q cannot run on %d shards: zero-delay channels %s would cross shards and provide no lookahead; give them RTC delay bounds (Network.WithDelays) or use fewer shards",
			n.Name, shards, strings.Join(bad, ", "))
	}

	plan := ShardPlan{Shards: shards, Assign: make(map[string]int, len(n.Procs))}
	for name, i := range idx {
		plan.Assign[name] = assign[i]
	}
	return plan, nil
}

// ShardedInstance is a network instantiated across the shards of a
// ShardedKernel.
type ShardedInstance struct {
	Net  *Network
	SK   *des.ShardedKernel
	Plan ShardPlan
	// FIFOs and Delayed hold the channel endpoints by name. A cut
	// channel appears in Delayed (its receiver side); its writer port
	// is a cross-shard adapter not exposed here.
	FIFOs   map[string]*FIFO
	Delayed map[string]*DelayedFIFO
	// Links holds the synchronization edge per connected (src,dst)
	// shard pair.
	Links map[[2]int]*des.Link
	// Cut lists the names of channels that cross shards.
	Cut []string
}

// shardWriter is the write side of a cut channel: it stamps the token
// with its maturity instant (source-local now + the channel delay) and
// pushes it onto the link's SPSC transport. The push spins only when
// the ring is full; StallWake gets the destination draining.
type shardWriter struct {
	name  string
	delay des.Time
	ring  *des.TimedRing[Token]
	link  *des.Link
}

func (w *shardWriter) PortName() string { return w.name }

func (w *shardWriter) Write(p *des.Proc, tok Token) {
	at := p.Now() + w.delay
	for !w.ring.TryPush(des.Stamped[Token]{At: at, V: tok}) {
		w.link.StallWake()
		runtime.Gosched()
	}
	w.link.NotifySent()
}

// InstantiateSharded places the network onto sk according to plan:
// local channels become ordinary FIFOs (or DelayedFIFOs when they
// carry a delay bound) on their shard's kernel, cut channels become a
// receiver-side DelayedFIFO fed through an SPSC ring, and each
// connected shard pair gets one synchronization Link whose lookahead
// is the minimum delay among the pair's cut channels. Attach any
// TraceCollectors to the shard kernels before calling this — spawns
// are trace events.
//
// SCC placement (Options.Chip) is not supported in sharded mode.
func (n *Network) InstantiateSharded(sk *des.ShardedKernel, plan ShardPlan, opt Options) (*ShardedInstance, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opt.Chip != nil {
		return nil, fmt.Errorf("kpn: sharded instantiation does not support SCC placement")
	}
	if sk.NumShards() != plan.Shards {
		return nil, fmt.Errorf("kpn: kernel has %d shards but plan wants %d", sk.NumShards(), plan.Shards)
	}
	for _, p := range n.Procs {
		s, ok := plan.Assign[p.Name]
		if !ok {
			return nil, fmt.Errorf("kpn: shard plan missing process %q", p.Name)
		}
		if s < 0 || s >= plan.Shards {
			return nil, fmt.Errorf("kpn: process %q assigned to shard %d outside [0,%d)", p.Name, s, plan.Shards)
		}
	}

	inst := &ShardedInstance{
		Net: n, SK: sk, Plan: plan,
		FIFOs:   make(map[string]*FIFO),
		Delayed: make(map[string]*DelayedFIFO),
		Links:   make(map[[2]int]*des.Link),
	}

	// Synchronization links first: one per connected shard pair,
	// lookahead = min delay among the pair's cut channels. Deterministic
	// order for reproducible Link layout.
	minLook := make(map[[2]int]des.Time)
	for _, c := range n.Chans {
		src, dst := plan.Assign[c.From], plan.Assign[c.To]
		if src == dst {
			continue
		}
		if c.DelayUs <= 0 {
			return nil, fmt.Errorf("kpn: channel %q crosses shards without a delay bound", c.Name)
		}
		key := [2]int{src, dst}
		if l, ok := minLook[key]; !ok || c.DelayUs < l {
			minLook[key] = c.DelayUs
		}
	}
	pairs := make([][2]int, 0, len(minLook))
	for k := range minLook {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, key := range pairs {
		inst.Links[key] = sk.Connect(key[0], key[1], minLook[key])
	}

	// Channels. Cut channels live on the receiver shard; the writer
	// port is a cross-shard adapter whose ring is drained into the
	// receiver-side DelayedFIFO between Run slices.
	writers := make(map[string]WritePort, len(n.Chans))
	for _, c := range n.Chans {
		src, dst := plan.Assign[c.From], plan.Assign[c.To]
		if src == dst {
			k := sk.Shard(dst)
			if c.DelayUs > 0 {
				df := NewDelayedFIFO(k, c.Name, c.Capacity, c.DelayUs)
				inst.Delayed[c.Name] = df
				writers[c.Name] = df
			} else {
				f := NewFIFO(k, c.Name, c.Capacity)
				inst.FIFOs[c.Name] = f
				writers[c.Name] = f
			}
			continue
		}
		inst.Cut = append(inst.Cut, c.Name)
		link := inst.Links[[2]int{src, dst}]
		df := NewDelayedFIFO(sk.Shard(dst), c.Name, c.Capacity, c.DelayUs)
		inst.Delayed[c.Name] = df
		ringCap := c.Capacity * 2
		if ringCap < 64 {
			ringCap = 64
		}
		ring := des.NewTimedRing[Token](ringCap)
		writers[c.Name] = &shardWriter{name: c.Name, delay: c.DelayUs, ring: ring, link: link}
		sk.RegisterDrain(dst, func(k *des.Kernel) int64 {
			var got int64
			for {
				m, ok := ring.TryPop()
				if !ok {
					break
				}
				df.Deliver(m.At, m.V)
				got++
			}
			if got > 0 {
				link.NotifyDrained(got)
			}
			return got
		})
	}

	// Initial fills, same Seq convention as Instantiate.
	for _, c := range n.Chans {
		if c.InitialTokens == 0 {
			continue
		}
		toks := make([]Token, c.InitialTokens)
		for i := range toks {
			toks[i] = Token{Seq: int64(i) - int64(c.InitialTokens) + 1} // ..., -1, 0
		}
		if f, ok := inst.FIFOs[c.Name]; ok {
			f.Preload(toks)
		} else {
			inst.Delayed[c.Name].Preload(toks)
		}
	}

	// Processes, each on its assigned shard. Readers always see the
	// channel's receiver-side endpoint; writers see the local endpoint
	// or the cross-shard adapter.
	for _, ps := range n.Procs {
		behavior := ps.New(opt.Replica)
		k := sk.Shard(plan.Assign[ps.Name])
		var ins []ReadPort
		for _, c := range n.Inputs(ps.Name) {
			if f, ok := inst.FIFOs[c.Name]; ok {
				ins = append(ins, f)
			} else {
				ins = append(ins, inst.Delayed[c.Name])
			}
		}
		var outs []WritePort
		for _, c := range n.Outputs(ps.Name) {
			outs = append(outs, writers[c.Name])
		}
		k.Spawn(ps.Name, 0, func(p *des.Proc) { behavior(p, ins, outs) })
	}
	return inst, nil
}

var _ WritePort = (*shardWriter)(nil)
