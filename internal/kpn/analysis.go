package kpn

import (
	"fmt"
	"sort"
	"strings"
)

// Static network analysis: structural checks a designer runs before
// sizing a network with real-time calculus. A cycle of channels with no
// initial tokens anywhere on it is a guaranteed deadlock in a blocking
// KPN (every process on the cycle waits for input that can only come
// from the cycle itself); a cycle whose initial tokens are fewer than
// its process count may still throttle throughput.

// Cycle is one elementary cycle of the channel graph, as an ordered
// list of channel names.
type Cycle struct {
	Channels      []string
	InitialTokens int
}

// String implements fmt.Stringer.
func (c Cycle) String() string {
	return fmt.Sprintf("[%s] init=%d", strings.Join(c.Channels, " -> "), c.InitialTokens)
}

// Cycles enumerates the elementary cycles of the network's channel
// graph (processes as vertices, channels as edges) via DFS from each
// vertex; suitable for the small graphs of process networks.
func (n *Network) Cycles() []Cycle {
	// Adjacency: process -> outgoing channels.
	adj := make(map[string][]ChannelSpec)
	for _, c := range n.Chans {
		adj[c.From] = append(adj[c.From], c)
	}
	var cycles []Cycle
	seen := make(map[string]bool) // canonical cycle keys

	var names []string
	for _, p := range n.Procs {
		names = append(names, p.Name)
	}
	sort.Strings(names)

	var dfs func(start, cur string, pathChans []ChannelSpec, onPath map[string]bool)
	dfs = func(start, cur string, pathChans []ChannelSpec, onPath map[string]bool) {
		for _, c := range adj[cur] {
			if c.To == start {
				cyc := append(append([]ChannelSpec(nil), pathChans...), c)
				key := canonicalCycleKey(cyc)
				if !seen[key] {
					seen[key] = true
					var chNames []string
					init := 0
					for _, cc := range cyc {
						chNames = append(chNames, cc.Name)
						init += cc.InitialTokens
					}
					cycles = append(cycles, Cycle{Channels: chNames, InitialTokens: init})
				}
				continue
			}
			if onPath[c.To] {
				continue
			}
			onPath[c.To] = true
			dfs(start, c.To, append(pathChans, c), onPath)
			delete(onPath, c.To)
		}
	}
	for _, start := range names {
		dfs(start, start, nil, map[string]bool{start: true})
	}
	sort.Slice(cycles, func(i, j int) bool {
		return strings.Join(cycles[i].Channels, ",") < strings.Join(cycles[j].Channels, ",")
	})
	return cycles
}

// canonicalCycleKey rotates the channel list to its lexicographically
// smallest rotation so each elementary cycle is counted once.
func canonicalCycleKey(cyc []ChannelSpec) string {
	names := make([]string, len(cyc))
	for i, c := range cyc {
		names[i] = c.Name
	}
	best := strings.Join(names, ",")
	for r := 1; r < len(names); r++ {
		rot := strings.Join(append(append([]string(nil), names[r:]...), names[:r]...), ",")
		if rot < best {
			best = rot
		}
	}
	return best
}

// DeadlockRisks returns the cycles with zero initial tokens — certain
// deadlocks under blocking semantics. A sound design either breaks such
// cycles or preloads them (ChannelSpec.InitialTokens).
func (n *Network) DeadlockRisks() []Cycle {
	var out []Cycle
	for _, c := range n.Cycles() {
		if c.InitialTokens == 0 {
			out = append(out, c)
		}
	}
	return out
}
