package kpn

import (
	"fmt"
	"sort"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/scc"
)

// Role classifies a process for the fault-tolerance transform: producers
// and consumers run on reliable hardware and are never replicated, while
// the critical subnetwork is what gets duplicated (paper §1.1).
type Role int

const (
	// RoleProducer feeds tokens into the critical subnetwork.
	RoleProducer Role = iota
	// RoleCritical is part of the critical subnetwork (replicated).
	RoleCritical
	// RoleConsumer consumes tokens from the critical subnetwork.
	RoleConsumer
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleProducer:
		return "producer"
	case RoleCritical:
		return "critical"
	case RoleConsumer:
		return "consumer"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ProcessSpec declares one process of a network. New builds the process
// behavior for a given replica index: 0 is the reference instance, 1 and
// 2 are the diversified replicas (the paper expresses design diversity
// as different jitter values per replica, Table 1).
type ProcessSpec struct {
	Name string
	Role Role
	New  func(replica int) Behavior
}

// ChannelSpec declares one FIFO channel of a network.
type ChannelSpec struct {
	Name     string
	From, To string // process names
	Capacity int
	// InitialTokens pre-fills the channel to implement eq. 4's F_{C,0};
	// preloaded tokens carry non-positive Seq values so equivalence
	// checks can distinguish them from produced tokens.
	InitialTokens int
	// TokenBytes is the nominal payload size used for SCC transfer-time
	// modeling when tokens carry no real payload.
	TokenBytes int
	// DelayUs, when positive, gives the channel RTC delay-bound
	// semantics: tokens become visible to the reader DelayUs ticks
	// after the write (DelayedFIFO). A positive delay is also the
	// static lookahead that lets a partitioner cut the channel across
	// shards for parallel simulation; zero-delay channels can only
	// live inside one shard.
	DelayUs des.Time
}

// Network is a declarative process-network graph. It can be instantiated
// onto a simulation kernel directly (the reference network) or passed to
// the ft package's duplication transform.
type Network struct {
	Name  string
	Procs []ProcessSpec
	Chans []ChannelSpec
}

// Validate checks structural soundness: unique non-empty names, channel
// endpoints that exist, positive capacities, and initial fills within
// capacity.
func (n *Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("kpn: network needs a name")
	}
	procs := make(map[string]bool)
	for _, p := range n.Procs {
		if p.Name == "" {
			return fmt.Errorf("kpn: network %q has an unnamed process", n.Name)
		}
		if procs[p.Name] {
			return fmt.Errorf("kpn: duplicate process name %q", p.Name)
		}
		if p.New == nil {
			return fmt.Errorf("kpn: process %q has no behavior factory", p.Name)
		}
		procs[p.Name] = true
	}
	chans := make(map[string]bool)
	for _, c := range n.Chans {
		if c.Name == "" {
			return fmt.Errorf("kpn: network %q has an unnamed channel", n.Name)
		}
		if chans[c.Name] {
			return fmt.Errorf("kpn: duplicate channel name %q", c.Name)
		}
		chans[c.Name] = true
		if !procs[c.From] {
			return fmt.Errorf("kpn: channel %q writes from unknown process %q", c.Name, c.From)
		}
		if !procs[c.To] {
			return fmt.Errorf("kpn: channel %q reads into unknown process %q", c.Name, c.To)
		}
		if c.Capacity <= 0 {
			return fmt.Errorf("kpn: channel %q capacity must be positive, got %d", c.Name, c.Capacity)
		}
		if c.InitialTokens < 0 || c.InitialTokens > c.Capacity {
			return fmt.Errorf("kpn: channel %q initial fill %d outside [0,%d]", c.Name, c.InitialTokens, c.Capacity)
		}
		if c.DelayUs < 0 {
			return fmt.Errorf("kpn: channel %q delay must be non-negative, got %d", c.Name, c.DelayUs)
		}
	}
	return nil
}

// WithDelays returns a copy of the network with every channel's
// DelayUs set to us — a uniform RTC delay bound. It is how a
// zero-delay reference network is prepared for sharded simulation.
func (n *Network) WithDelays(us des.Time) *Network {
	cp := *n
	cp.Chans = append([]ChannelSpec(nil), n.Chans...)
	for i := range cp.Chans {
		cp.Chans[i].DelayUs = us
	}
	return &cp
}

// Proc returns the spec of the named process, or nil.
func (n *Network) Proc(name string) *ProcessSpec {
	for i := range n.Procs {
		if n.Procs[i].Name == name {
			return &n.Procs[i]
		}
	}
	return nil
}

// Inputs returns the channels read by the named process, in declaration
// order (the order behaviors receive their ports in).
func (n *Network) Inputs(name string) []ChannelSpec {
	var out []ChannelSpec
	for _, c := range n.Chans {
		if c.To == name {
			out = append(out, c)
		}
	}
	return out
}

// Outputs returns the channels written by the named process.
func (n *Network) Outputs(name string) []ChannelSpec {
	var out []ChannelSpec
	for _, c := range n.Chans {
		if c.From == name {
			out = append(out, c)
		}
	}
	return out
}

// Options configures instantiation.
type Options struct {
	// Chip, when non-nil, places processes on SCC cores so channel
	// writes pay message-passing latency. Placement maps process names
	// to cores; when nil, processes are auto-placed one per tile in
	// serpentine order (low-contention pipeline mapping).
	Chip      *scc.Chip
	Placement map[string]*scc.Core
	// Replica selects the behavior variant passed to each ProcessSpec's
	// factory; 0 is the reference.
	Replica int
}

// Instance is an instantiated network: live FIFOs and spawned processes
// on a kernel. Channels with a positive DelayUs live in Delayed, the
// rest in FIFOs.
type Instance struct {
	Net     *Network
	K       *des.Kernel
	FIFOs   map[string]*FIFO
	Delayed map[string]*DelayedFIFO
	Cores   map[string]*scc.Core
}

// port returns the named channel's endpoint, whichever kind it is.
func (inst *Instance) port(name string) interface {
	ReadPort
	WritePort
} {
	if f, ok := inst.FIFOs[name]; ok {
		return f
	}
	return inst.Delayed[name]
}

// Instantiate builds the network's FIFOs, binds ports (wrapping writes
// with SCC transfer latency when placed), and spawns all processes at
// time 0.
func (n *Network) Instantiate(k *des.Kernel, opt Options) (*Instance, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	inst := &Instance{
		Net: n, K: k,
		FIFOs:   make(map[string]*FIFO),
		Delayed: make(map[string]*DelayedFIFO),
		Cores:   make(map[string]*scc.Core),
	}

	if opt.Chip != nil {
		if opt.Placement != nil {
			for _, p := range n.Procs {
				core, ok := opt.Placement[p.Name]
				if !ok {
					return nil, fmt.Errorf("kpn: placement missing process %q", p.Name)
				}
				inst.Cores[p.Name] = core
			}
		} else {
			cores, err := opt.Chip.MapPipeline(len(n.Procs))
			if err != nil {
				return nil, err
			}
			for i, p := range n.Procs {
				inst.Cores[p.Name] = cores[i]
			}
		}
	}

	for _, c := range n.Chans {
		if c.DelayUs > 0 {
			inst.Delayed[c.Name] = NewDelayedFIFO(k, c.Name, c.Capacity, c.DelayUs)
		} else {
			inst.FIFOs[c.Name] = NewFIFO(k, c.Name, c.Capacity)
		}
		if c.InitialTokens > 0 {
			toks := make([]Token, c.InitialTokens)
			for i := range toks {
				toks[i] = Token{Seq: int64(i) - int64(c.InitialTokens) + 1} // ..., -1, 0
			}
			if f, ok := inst.FIFOs[c.Name]; ok {
				f.Preload(toks)
			} else {
				inst.Delayed[c.Name].Preload(toks)
			}
		}
	}

	for _, ps := range n.Procs {
		behavior := ps.New(opt.Replica)
		var ins []ReadPort
		for _, c := range n.Inputs(ps.Name) {
			ins = append(ins, inst.port(c.Name))
		}
		var outs []WritePort
		for _, c := range n.Outputs(ps.Name) {
			var port WritePort = inst.port(c.Name)
			if opt.Chip != nil {
				port = WithTransfer(port, opt.Chip, inst.Cores[c.From], inst.Cores[c.To], c.TokenBytes)
			}
			outs = append(outs, port)
		}
		k.Spawn(ps.Name, 0, func(p *des.Proc) { behavior(p, ins, outs) })
	}
	return inst, nil
}

// DOT renders the network as a Graphviz digraph, used by cmd/ftpntopo to
// reproduce the paper's Figure 1 and Figure 2 structure.
func (n *Network) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for _, p := range n.Procs {
		shape := "box"
		if p.Role == RoleCritical {
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  %q [shape=%s,label=\"%s\\n(%s)\"];\n", p.Name, shape, p.Name, p.Role)
	}
	for _, c := range n.Chans {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s cap=%d\"];\n", c.From, c.To, c.Name, c.Capacity)
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary renders a sorted one-line-per-element ASCII description.
func (n *Network) Summary() string {
	var lines []string
	for _, p := range n.Procs {
		lines = append(lines, fmt.Sprintf("proc %-24s role=%s", p.Name, p.Role))
	}
	for _, c := range n.Chans {
		lines = append(lines, fmt.Sprintf("chan %-24s %s -> %s cap=%d init=%d tokB=%d",
			c.Name, c.From, c.To, c.Capacity, c.InitialTokens, c.TokenBytes))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
