package kpn

import (
	"fmt"
	"math/rand"

	"ftpn/internal/des"
	"ftpn/internal/rtc"
)

// Behavior is the body of a process, given its bound input and output
// ports in the order the network's channels declare them.
type Behavior func(p *des.Proc, in []ReadPort, out []WritePort)

// Pacer generates the activation instants of a PJD-timed process
// deterministically: activation i occurs at i*Period + phase_i with
// phase_i uniform in [0, Jitter], respecting MinDist between consecutive
// activations. The produced trace always satisfies the model's arrival
// curves.
type Pacer struct {
	model rtc.PJD
	rng   *rand.Rand
	idx   int64
	last  des.Time
}

// NewPacer creates a pacer for the model, seeded deterministically.
func NewPacer(model rtc.PJD, seed int64) *Pacer {
	if err := model.Validate(); err != nil {
		panic(fmt.Sprintf("kpn: invalid pacer model: %v", err))
	}
	return &Pacer{model: model, rng: rand.New(rand.NewSource(seed)), last: -1 << 62}
}

// Next returns the next activation instant (absolute virtual time).
func (pc *Pacer) Next() des.Time {
	at := pc.idx * pc.model.Period
	if pc.model.Jitter > 0 {
		at += pc.rng.Int63n(pc.model.Jitter + 1)
	}
	if d := pc.model.MinDist; d > 0 && at < pc.last+d {
		at = pc.last + d
	}
	if at < pc.last { // jitter must never reorder activations
		at = pc.last
	}
	pc.last = at
	pc.idx++
	return at
}

// WaitNext delays the process until the next activation instant. If the
// process is already past that instant (because it blocked on a
// channel), it proceeds immediately: blocking time counts against the
// activation budget.
func (pc *Pacer) WaitNext(p *des.Proc) {
	at := pc.Next()
	if d := at - p.Now(); d > 0 {
		p.Delay(d)
	}
}

// Producer returns a behavior that emits count tokens paced by the PJD
// model, with payloads from gen (which may be nil for timing-only
// tokens). Each token's Stamp is its production instant and Seq its
// index. The producer writes to every output port (normally one).
func Producer(model rtc.PJD, seed int64, count int64, gen func(i int64) []byte) Behavior {
	return func(p *des.Proc, in []ReadPort, out []WritePort) {
		pacer := NewPacer(model, seed)
		for i := int64(0); count <= 0 || i < count; i++ {
			pacer.WaitNext(p)
			var payload []byte
			if gen != nil {
				payload = gen(i)
			}
			tok := Token{Seq: i + 1, Stamp: p.Now(), Payload: payload}
			for _, o := range out {
				o.Write(p, tok)
			}
		}
	}
}

// WorkModel is the execution-time model of a transform process: a fixed
// base cost, a per-kilobyte cost on the input payload, and a uniform
// jitter in [0, JitterUs] capturing the paper's "design diversity ...
// captured by different jitter values".
type WorkModel struct {
	BaseUs   des.Time
	PerKBUs  des.Time
	JitterUs des.Time
}

// Duration returns a deterministic pseudo-random execution time for an
// input of the given size, drawn from the given source.
func (w WorkModel) Duration(rng *rand.Rand, bytes int) des.Time {
	d := w.BaseUs + w.PerKBUs*des.Time(bytes)/1024
	if w.JitterUs > 0 {
		d += rng.Int63n(w.JitterUs + 1)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Transform returns a behavior that repeatedly reads one token from its
// single input, computes for a work-model duration, and writes f's
// result to its single output. The input token's Seq is preserved, so a
// stream index assigned at the producer survives the whole pipeline —
// replica re-integration (package ft) relies on this to re-align a
// recovered replica's output stream even when the replica skipped
// tokens during its outage. Stamp is the completion instant. If f is
// nil the payload passes through unchanged.
func Transform(work WorkModel, seed int64, f func(i int64, payload []byte) []byte) Behavior {
	return func(p *des.Proc, in []ReadPort, out []WritePort) {
		if len(in) != 1 || len(out) != 1 {
			panic(fmt.Sprintf("kpn: Transform needs 1 input and 1 output, got %d/%d", len(in), len(out)))
		}
		rng := rand.New(rand.NewSource(seed))
		for i := int64(1); ; i++ {
			tok := in[0].Read(p)
			p.Delay(work.Duration(rng, tok.Size()))
			payload := tok.Payload
			if f != nil {
				payload = f(i, tok.Payload)
			}
			out[0].Write(p, Token{Seq: tok.Seq, Stamp: p.Now(), Payload: payload})
		}
	}
}

// Consumer returns a behavior that performs one blocking read per PJD
// activation, invoking onToken (which may be nil) with the arrival time
// of each token. A finite count stops the consumer after that many
// tokens; count <= 0 runs forever.
func Consumer(model rtc.PJD, seed int64, count int64, onToken func(now des.Time, tok Token)) Behavior {
	return func(p *des.Proc, in []ReadPort, out []WritePort) {
		if len(in) != 1 {
			panic(fmt.Sprintf("kpn: Consumer needs exactly 1 input, got %d", len(in)))
		}
		pacer := NewPacer(model, seed)
		for i := int64(0); count <= 0 || i < count; i++ {
			pacer.WaitNext(p)
			tok := in[0].Read(p)
			if onToken != nil {
				onToken(p.Now(), tok)
			}
		}
	}
}
