package kpn

import (
	"ftpn/internal/des"
	"ftpn/internal/scc"
)

// transferPort wraps a WritePort so that every write first pays the
// SCC message-passing latency from the writer's core to the reader's
// core, modeling an iRCCE chunked MPB transfer.
type transferPort struct {
	inner    WritePort
	chip     *scc.Chip
	from, to *scc.Core
	// fallbackBytes is used when a token has no payload (timing-only
	// simulations where TokenBytes stands in for real data).
	fallbackBytes int
}

// WithTransfer wraps port so writes are delayed by the chip's transfer
// time for the token's payload size (or fallbackBytes for empty
// payloads) between the two cores.
func WithTransfer(port WritePort, chip *scc.Chip, from, to *scc.Core, fallbackBytes int) WritePort {
	return &transferPort{inner: port, chip: chip, from: from, to: to, fallbackBytes: fallbackBytes}
}

// Write implements WritePort.
func (t *transferPort) Write(p *des.Proc, tok Token) {
	bytes := tok.Size()
	if bytes == 0 {
		bytes = t.fallbackBytes
	}
	p.Delay(t.chip.TransferTime(t.from, t.to, bytes))
	t.inner.Write(p, tok)
}

// PortName implements WritePort.
func (t *transferPort) PortName() string { return t.inner.PortName() }

// readTransferPort wraps a ReadPort so every read pays the transfer
// latency of moving the token from the channel's host core to the
// reader's core (used when a channel such as a replicator is hosted on
// reliable hardware away from the reading replica).
type readTransferPort struct {
	inner         ReadPort
	chip          *scc.Chip
	from, to      *scc.Core
	fallbackBytes int
}

// WithReadTransfer wraps port so reads are delayed by the chip's
// transfer time for the token's payload size between the two cores.
func WithReadTransfer(port ReadPort, chip *scc.Chip, from, to *scc.Core, fallbackBytes int) ReadPort {
	return &readTransferPort{inner: port, chip: chip, from: from, to: to, fallbackBytes: fallbackBytes}
}

// Read implements ReadPort.
func (t *readTransferPort) Read(p *des.Proc) Token {
	tok := t.inner.Read(p)
	bytes := tok.Size()
	if bytes == 0 {
		bytes = t.fallbackBytes
	}
	p.Delay(t.chip.TransferTime(t.from, t.to, bytes))
	return tok
}

// PortName implements ReadPort.
func (t *readTransferPort) PortName() string { return t.inner.PortName() }
