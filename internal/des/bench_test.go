package des

import "testing"

// BenchmarkKernelChurn measures the event-scheduling hot path: two
// processes ping-ponging through Delay plus a periodic callback, the mix
// Table2 simulations exercise. With the event freelist, steady-state
// scheduling performs zero heap allocations per event (run with
// -benchmem; the small constant per op is goroutine machinery, not
// events).
func BenchmarkKernelChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for p := 0; p < 2; p++ {
			k.Spawn("worker", 0, func(p *Proc) {
				for j := 0; j < 1000; j++ {
					p.Delay(3)
				}
			})
		}
		k.Every(5, func() bool { return k.Now() < 2500 })
		k.Run(0)
		k.Shutdown()
	}
}

// BenchmarkEventSchedule isolates push/pop of pure callback events with
// no process machinery at all: the per-event cost of the heap plus the
// freelist, and zero allocs/op after warm-up.
func BenchmarkEventSchedule(b *testing.B) {
	k := NewKernel()
	var n int
	var tick func()
	tick = func() {
		if n > 0 {
			n--
			k.After(1, tick)
		}
	}
	// Warm the freelist and the heap backing array.
	n = 16
	k.After(1, tick)
	k.Run(0)

	b.ReportAllocs()
	b.ResetTimer()
	n = b.N
	k.After(1, tick)
	k.Run(0)
}

// TestFreelistReuse pins the zero-allocation property: once warm, the
// kernel schedules events without allocating.
func TestFreelistReuse(t *testing.T) {
	k := NewKernel()
	var n int
	var tick func()
	tick = func() {
		if n > 0 {
			n--
			k.After(1, tick)
		}
	}
	n = 64
	k.After(1, tick)
	k.Run(0)

	allocs := testing.AllocsPerRun(100, func() {
		n = 50
		k.After(1, tick)
		k.Run(0)
	})
	if allocs > 0 {
		t.Fatalf("warm kernel allocated %.1f times per 50-event run, want 0", allocs)
	}
}
