//go:build !des_heap

package des

// defaultQueueKind is the event queue NewKernel uses. Build with
// -tags des_heap to fall back to the reference binary heap.
const defaultQueueKind = QueueBucket
