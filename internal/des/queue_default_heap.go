//go:build des_heap

package des

// defaultQueueKind under the des_heap build tag: every kernel schedules
// through the reference binary heap instead of the bucket queue.
const defaultQueueKind = QueueHeap
