package des

import (
	"testing"
)

func TestStaleGrantAcrossRuns(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		sk := NewShardedKernel(3)
		a := sk.Shard(0)
		lam := sk.Connect(0, 1, 10)
		lmb := sk.Connect(1, 2, 10)
		ramRing := NewTimedRing[int](8)
		mbRing := NewTimedRing[int](8)
		sk.RegisterDrain(1, func(k *Kernel) int64 {
			var n int64
			for {
				msg, ok := ramRing.TryPop()
				if !ok {
					break
				}
				at := msg.At
				k.At(at, func() {
					mbRing.TryPush(Stamped[int]{At: at + 10})
					lmb.NotifySent()
				})
				n++
			}
			if n > 0 {
				lam.NotifyDrained(n)
			}
			return n
		})
		sk.RegisterDrain(2, func(k *Kernel) int64 {
			var n int64
			for {
				msg, ok := mbRing.TryPop()
				if !ok {
					break
				}
				if msg.At < k.Now() {
					t.Fatalf("trial %d: causality violation: message stamped %d drained at kernel time %d (grants=%d)",
						trial, msg.At, k.Now(), sk.Stats().Grants)
				}
				k.At(msg.At, func() {})
				n++
			}
			if n > 0 {
				lmb.NotifyDrained(n)
			}
			return n
		})
		// A's only event is beyond the first Run's limit: M stays idle in
		// Run(100), so its outbound clock never moves past the initial 10.
		a.At(150, func() {
			ramRing.TryPush(Stamped[int]{At: a.Now() + 10})
			lam.NotifySent()
		})
		b := sk.Shard(2)
		b.At(60, func() {})
		b.At(120, func() {})

		sk.Run(100)
		sk.Run(400)
		sk.Shutdown()
	}
}
