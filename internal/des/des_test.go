package des

import (
	"strings"
	"testing"
)

func TestDelayAdvancesClock(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("p", 0, func(p *Proc) {
		times = append(times, p.Now())
		p.Delay(10)
		times = append(times, p.Now())
		p.Delay(5)
		times = append(times, p.Now())
	})
	end := k.Run(0)
	if end != 15 {
		t.Errorf("Run returned %d, want 15", end)
	}
	want := []Time{0, 10, 15}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("times[%d] = %d, want %d", i, times[i], w)
		}
	}
}

func TestStartDelay(t *testing.T) {
	k := NewKernel()
	var started Time = -1
	k.Spawn("late", 42, func(p *Proc) { started = p.Now() })
	k.Run(0)
	if started != 42 {
		t.Errorf("process started at %d, want 42", started)
	}
}

func TestNegativeStartDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Spawn with negative delay should panic")
		}
	}()
	NewKernel().Spawn("bad", -1, func(*Proc) {})
}

func TestDeterministicInterleaving(t *testing.T) {
	// Two processes at the same instants must interleave identically on
	// every run, ordered by spawn/schedule sequence.
	run := func() string {
		k := NewKernel()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, 0, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Delay(10)
				}
			})
		}
		k.Run(0)
		return strings.Join(log, "")
	}
	first := run()
	if first != "abcabcabc" {
		t.Errorf("interleaving = %q, want abcabcabc", first)
	}
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic interleaving: %q vs %q", got, first)
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var count int
	k.Spawn("p", 0, func(p *Proc) {
		for i := 0; i < 100; i++ {
			count++
			p.Delay(10)
		}
	})
	end := k.Run(35)
	if end != 35 {
		t.Errorf("Run(35) returned %d, want 35", end)
	}
	if count != 4 { // t = 0, 10, 20, 30
		t.Errorf("count = %d, want 4", count)
	}
	// Resume the same simulation.
	end = k.Run(100)
	if end != 100 || count != 11 {
		t.Errorf("after resume: end = %d count = %d, want 100 and 11", end, count)
	}
	k.Shutdown()
}

func TestAtAndAfter(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(30, func() { fired = append(fired, k.Now()) })
	k.At(10, func() { fired = append(fired, k.Now()) })
	k.After(20, func() { fired = append(fired, k.Now()) })
	k.Run(0)
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 20 || fired[2] != 30 {
		t.Errorf("fired = %v, want [10 20 30]", fired)
	}
}

func TestAtPastClamped(t *testing.T) {
	k := NewKernel()
	var at Time = -1
	k.Spawn("p", 0, func(p *Proc) {
		p.Delay(50)
		p.k.At(10, func() { at = k.Now() }) // in the past: clamp to now
	})
	k.Run(0)
	if at != 50 {
		t.Errorf("past event fired at %d, want 50", at)
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	k.Every(7, func() bool {
		ticks = append(ticks, k.Now())
		return len(ticks) < 4
	})
	k.Run(0)
	if len(ticks) != 4 || ticks[3] != 28 {
		t.Errorf("ticks = %v, want [7 14 21 28]", ticks)
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) should panic")
		}
	}()
	NewKernel().Every(0, func() bool { return true })
}

func TestSignalWaitBroadcast(t *testing.T) {
	k := NewKernel()
	var sig Signal
	var woke Time = -1
	k.Spawn("waiter", 0, func(p *Proc) {
		p.Wait(&sig)
		woke = p.Now()
	})
	k.Spawn("waker", 0, func(p *Proc) {
		p.Delay(25)
		k.Broadcast(&sig)
	})
	k.Run(0)
	if woke != 25 {
		t.Errorf("waiter woke at %d, want 25", woke)
	}
}

func TestBroadcastWakesAllFIFO(t *testing.T) {
	k := NewKernel()
	var sig Signal
	var order []string
	for _, n := range []string{"w1", "w2", "w3"} {
		n := n
		k.Spawn(n, 0, func(p *Proc) {
			p.Wait(&sig)
			order = append(order, n)
		})
	}
	k.At(5, func() { k.Broadcast(&sig) })
	k.Run(0)
	if strings.Join(order, ",") != "w1,w2,w3" {
		t.Errorf("wake order = %v, want w1,w2,w3", order)
	}
	if sig.NumWaiters() != 0 {
		t.Errorf("NumWaiters = %d after broadcast, want 0", sig.NumWaiters())
	}
}

func TestBlockedReporting(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("stuck-b", 0, func(p *Proc) { p.Wait(&sig) })
	k.Spawn("stuck-a", 0, func(p *Proc) { p.Wait(&sig) })
	k.Run(0)
	blocked := k.Blocked()
	if len(blocked) != 2 || blocked[0] != "stuck-a" || blocked[1] != "stuck-b" {
		t.Errorf("Blocked() = %v, want [stuck-a stuck-b]", blocked)
	}
	k.Shutdown()
	if got := k.Blocked(); len(got) != 0 {
		t.Errorf("Blocked() after Shutdown = %v, want empty", got)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	var count int
	k.Spawn("p", 0, func(p *Proc) {
		for {
			count++
			if count == 3 {
				k.Stop()
			}
			p.Delay(10)
		}
	})
	k.Run(0)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	k.Shutdown()
}

func TestProcessPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("bomb", 0, func(p *Proc) {
		p.Delay(5)
		panic("boom")
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected panic from Run")
		}
		if !strings.Contains(v.(error).Error(), "boom") {
			t.Errorf("panic = %v, want to contain boom", v)
		}
	}()
	k.Run(0)
}

func TestShutdownUnwindsWithoutPanic(t *testing.T) {
	k := NewKernel()
	var sig Signal
	cleaned := false
	k.Spawn("p", 0, func(p *Proc) {
		defer func() { cleaned = true }()
		p.Wait(&sig)
	})
	k.Spawn("never-started", 100, func(p *Proc) { t.Error("should not run") })
	k.Run(10)
	k.Shutdown()
	if !cleaned {
		t.Error("deferred cleanup in killed process did not run")
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	var name string
	var sameKernel bool
	k.Spawn("x", 0, func(p *Proc) {
		name = p.Name()
		sameKernel = p.Kernel() == k
	})
	k.Run(0)
	if name != "x" || !sameKernel {
		t.Errorf("accessors: name=%q sameKernel=%v", name, sameKernel)
	}
	if k.NumProcs() != 1 {
		t.Errorf("NumProcs = %d, want 1", k.NumProcs())
	}
}

func TestDelayZeroYields(t *testing.T) {
	// Delay(0) must let other ready processes at the same instant run.
	k := NewKernel()
	var log []string
	k.Spawn("a", 0, func(p *Proc) {
		log = append(log, "a1")
		p.Delay(0)
		log = append(log, "a2")
	})
	k.Spawn("b", 0, func(p *Proc) {
		log = append(log, "b1")
	})
	k.Run(0)
	if strings.Join(log, ",") != "a1,b1,a2" {
		t.Errorf("log = %v, want a1,b1,a2", log)
	}
}

func TestTraceRecordsSchedulerActions(t *testing.T) {
	k := NewKernel()
	var events []TraceEvent
	k.Trace(func(e TraceEvent) { events = append(events, e) })
	k.Spawn("p", 0, func(p *Proc) {
		p.Delay(5)
	})
	k.At(3, func() {})
	k.Run(0)
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	got := strings.Join(kinds, ",")
	want := "spawn,resume,callback,resume,end"
	if got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
	if events[1].Proc != "p" || events[1].At != 0 {
		t.Errorf("first resume = %+v", events[1])
	}
	if events[3].At != 5 {
		t.Errorf("second resume at %d, want 5", events[3].At)
	}
	// Disabling stops emission.
	k2 := NewKernel()
	k2.Trace(nil)
	k2.Spawn("q", 0, func(p *Proc) {})
	k2.Run(0)
}

func TestTraceStop(t *testing.T) {
	k := NewKernel()
	var sawStop bool
	k.Trace(func(e TraceEvent) {
		if e.Kind == "stop" {
			sawStop = true
		}
	})
	k.Spawn("p", 0, func(p *Proc) { k.Stop() })
	k.Run(0)
	k.Shutdown()
	if !sawStop {
		t.Error("stop not traced")
	}
}
