package des

import (
	"fmt"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
)

// toyLog records deliveries of a minimal cross-shard workload: periodic
// sources on one shard sending stamped values to a sink on another, via
// the real TimedRing transport. The same workload can be wired onto a
// single kernel, giving a sequential oracle. Comparison is canonical —
// sorted by (at, tag) — because cross-link arrivals at the same instant
// may drain in different rounds; per-link order is what the protocol
// guarantees, and it is what the kpn trace contract depends on.
type toyLog struct {
	recs []toyRec
}

type toyRec struct {
	at  Time
	tag string
	v   int64
}

func (l *toyLog) add(at Time, tag string, v int64) {
	l.recs = append(l.recs, toyRec{at, tag, v})
}

func (l *toyLog) canon() string {
	recs := append([]toyRec(nil), l.recs...)
	slices.SortFunc(recs, func(a, b toyRec) int {
		if a.at != b.at {
			return int(a.at - b.at)
		}
		if a.tag != b.tag {
			if a.tag < b.tag {
				return -1
			}
			return 1
		}
		return int(a.v - b.v)
	})
	var sb []byte
	for _, r := range recs {
		sb = fmt.Appendf(sb, "%d %s %d\n", r.at, r.tag, r.v)
	}
	return string(sb)
}

// wireToy builds `senders` periodic sources on shard 0 (or kernel k0
// when sk is nil) delivering to a sink log on shard 1 (or the same
// kernel). Returns the sink log.
func wireToy(sk *ShardedKernel, k0, k1 *Kernel, senders, count int, period, delay Time) *toyLog {
	log := &toyLog{}
	for s := 0; s < senders; s++ {
		s := s
		ring := NewTimedRing[int64](64)
		var link *Link
		if sk != nil {
			link = sk.Connect(0, 1, delay)
			sk.RegisterDrain(1, func(k *Kernel) int64 {
				var n int64
				for {
					m, ok := ring.TryPop()
					if !ok {
						break
					}
					k.At(m.At, func() { log.add(k.Now(), fmt.Sprintf("s%d", s), m.V) })
					n++
				}
				link.NotifyDrained(n)
				return n
			})
		}
		i := 0
		k0.Spawn(fmt.Sprintf("src%d", s), 0, func(p *Proc) {
			for ; i < count; i++ {
				p.Delay(period)
				v := int64(s*1000 + i)
				if sk != nil {
					at := p.Now() + delay
					for !ring.TryPush(Stamped[int64]{At: at, V: v}) {
						link.StallWake()
					}
					link.NotifySent()
				} else {
					at := p.Now() + delay
					k1.At(at, func() { log.add(k1.Now(), fmt.Sprintf("s%d", s), v) })
				}
			}
		})
	}
	return log
}

func TestShardedToyMatchesSequential(t *testing.T) {
	const senders, count = 3, 50
	const period, delay = Time(7), Time(5)

	seqK := NewKernel()
	seqLog := wireToy(nil, seqK, seqK, senders, count, period, delay)
	seqK.Run(0)
	seqK.Shutdown()

	sk := NewShardedKernel(2)
	shLog := wireToy(sk, sk.Shard(0), sk.Shard(1), senders, count, period, delay)
	sk.Run(0)
	sk.Shutdown()

	if len(seqLog.recs) != senders*count {
		t.Fatalf("sequential log has %d entries, want %d", len(seqLog.recs), senders*count)
	}
	if seq, shd := seqLog.canon(), shLog.canon(); seq != shd {
		t.Fatalf("sharded delivery log diverges from sequential:\nseq:\n%s\nshd:\n%s", seq, shd)
	}
	st := sk.Stats()
	if st.Drained != int64(senders*count) {
		t.Fatalf("drained %d messages, want %d", st.Drained, senders*count)
	}
	if st.NullMessages == 0 {
		t.Fatalf("expected null-message publications, got none (stats %+v)", st)
	}
}

func TestShardedPingPongCycle(t *testing.T) {
	// Two shards exchanging replies: exercises in-flight detection and
	// the global fixed point on a cyclic link graph.
	const rounds = 40
	const delay = Time(3)
	sk := NewShardedKernel(2)
	r01 := NewTimedRing[int64](8)
	r10 := NewTimedRing[int64](8)
	l01 := sk.Connect(0, 1, delay)
	l10 := sk.Connect(1, 0, delay)

	var deliveries []string
	send := func(ring *TimedRing[int64], l *Link, at Time, v int64) {
		for !ring.TryPush(Stamped[int64]{At: at, V: v}) {
			l.StallWake()
		}
		l.NotifySent()
	}
	sk.RegisterDrain(1, func(k *Kernel) int64 {
		var n int64
		for {
			m, ok := r01.TryPop()
			if !ok {
				break
			}
			k.At(m.At, func() {
				deliveries = append(deliveries, fmt.Sprintf("1@%d:%d", k.Now(), m.V))
				if m.V < rounds {
					send(r10, l10, k.Now()+delay, m.V+1)
				}
			})
			n++
		}
		l01.NotifyDrained(n)
		return n
	})
	var back atomic.Int64
	sk.RegisterDrain(0, func(k *Kernel) int64 {
		var n int64
		for {
			m, ok := r10.TryPop()
			if !ok {
				break
			}
			k.At(m.At, func() {
				back.Add(1)
				if m.V < rounds {
					send(r01, l01, k.Now()+delay, m.V+1)
				}
			})
			n++
		}
		l10.NotifyDrained(n)
		return n
	})
	sk.Shard(0).At(0, func() { send(r01, l01, delay, 1) })

	reached := sk.Run(0)
	sk.Shutdown()

	wantFwd := rounds/2 + rounds%2
	if len(deliveries) != wantFwd {
		t.Fatalf("shard 1 saw %d deliveries, want %d: %v", len(deliveries), wantFwd, deliveries)
	}
	// Value v is delivered at v*delay.
	for i, d := range deliveries {
		v := int64(2*i + 1)
		if want := fmt.Sprintf("1@%d:%d", Time(v)*delay, v); d != want {
			t.Fatalf("delivery %d = %q, want %q", i, d, want)
		}
	}
	if want := Time(rounds) * delay; reached < want {
		t.Fatalf("Run reached %d, want at least %d", reached, want)
	}
	if got := back.Load(); got != rounds/2 {
		t.Fatalf("shard 0 saw %d replies, want %d", got, rounds/2)
	}
}

func TestShardedRunUntilResumes(t *testing.T) {
	mk := func() (*ShardedKernel, *int) {
		sk := NewShardedKernel(2)
		ring := NewTimedRing[int64](16)
		l := sk.Connect(0, 1, 10)
		n := new(int)
		sk.RegisterDrain(1, func(k *Kernel) int64 {
			var c int64
			for {
				m, ok := ring.TryPop()
				if !ok {
					break
				}
				k.At(m.At, func() { *n++ })
				c++
			}
			l.NotifyDrained(c)
			return c
		})
		sk.Shard(0).Spawn("src", 0, func(p *Proc) {
			for i := 0; i < 30; i++ {
				p.Delay(10)
				for !ring.TryPush(Stamped[int64]{At: p.Now() + 10, V: int64(i)}) {
					l.StallWake()
				}
				l.NotifySent()
			}
		})
		return sk, n
	}

	skA, nA := mk()
	skA.Run(155)
	gotAt155 := *nA
	skA.Run(0)
	skA.Shutdown()
	if *nA != 30 {
		t.Fatalf("resumed run delivered %d, want 30", *nA)
	}

	skB, nB := mk()
	skB.Run(155)
	skB.Shutdown()
	// Deliveries happen at 20,30,...,310; at most 14 fit in [0,155].
	if gotAt155 != 14 || *nB != 14 {
		t.Fatalf("limited runs delivered %d and %d, want 14", gotAt155, *nB)
	}
}

func TestShardedPanicPropagates(t *testing.T) {
	sk := NewShardedKernel(2)
	sk.Connect(0, 1, 5)
	sk.Shard(1).Spawn("boom", 0, func(p *Proc) {
		p.Delay(3)
		panic("kaboom")
	})
	defer sk.Shutdown()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatalf("expected panic to propagate out of Run")
		}
		if got := fmt.Sprint(v); got != `des: process "boom" panicked: kaboom` {
			t.Fatalf("unexpected panic value %q", got)
		}
	}()
	sk.Run(0)
}

func TestConnectRejectsBadLinks(t *testing.T) {
	sk := NewShardedKernel(2)
	for _, bad := range []func(){
		func() { sk.Connect(0, 0, 5) },
		func() { sk.Connect(0, 1, 0) },
		func() { sk.Connect(0, 1, -3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestTraceCollectorMergesDeterministically(t *testing.T) {
	run := func(shards int) []byte {
		tc := NewTraceCollector()
		if shards == 1 {
			k := NewKernel()
			tc.Attach(k)
			for i := 0; i < 3; i++ {
				i := i
				k.Spawn(fmt.Sprintf("p%d", i), Time(i), func(p *Proc) {
					for j := 0; j < 5; j++ {
						p.Delay(4)
					}
				})
			}
			k.Run(0)
			k.Shutdown()
		} else {
			sk := NewShardedKernel(shards)
			for i := 0; i < shards; i++ {
				tc.Attach(sk.Shard(i))
			}
			for i := 0; i < 3; i++ {
				i := i
				k := sk.Shard(i % shards)
				k.Spawn(fmt.Sprintf("p%d", i), Time(i), func(p *Proc) {
					for j := 0; j < 5; j++ {
						p.Delay(4)
					}
				})
			}
			sk.Run(0)
			sk.Shutdown()
		}
		return tc.Bytes()
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatalf("empty sequential trace")
	}
	for _, shards := range []int{2, 3} {
		if got := run(shards); string(got) != string(seq) {
			t.Fatalf("trace at %d shards diverges from sequential:\n%s\nvs\n%s", shards, got, seq)
		}
	}
}

// TestShardedParkWakeHammer is the -race stress for the park/wake and
// publish/drain paths: a ring of shards, every shard both sending and
// receiving, with mixed periods so parks and wakes interleave heavily.
func TestShardedParkWakeHammer(t *testing.T) {
	shards := 4
	msgs := 400
	if testing.Short() {
		msgs = 120
	}
	rng := rand.New(rand.NewSource(7))
	sk := NewShardedKernel(shards)
	var delivered atomic.Int64
	for i := 0; i < shards; i++ {
		src, dst := i, (i+1)%shards
		ring := NewTimedRing[int64](4) // tiny ring: force stall/wake traffic
		delay := Time(1 + rng.Int63n(4))
		l := sk.Connect(src, dst, delay)
		sk.RegisterDrain(dst, func(k *Kernel) int64 {
			var n int64
			for {
				m, ok := ring.TryPop()
				if !ok {
					break
				}
				k.At(m.At, func() { delivered.Add(1) })
				n++
			}
			l.NotifyDrained(n)
			return n
		})
		period := Time(1 + rng.Int63n(7))
		sk.Shard(src).Spawn(fmt.Sprintf("gen%d", i), 0, func(p *Proc) {
			for j := 0; j < msgs; j++ {
				p.Delay(period)
				for !ring.TryPush(Stamped[int64]{At: p.Now() + delay, V: int64(j)}) {
					l.StallWake()
				}
				l.NotifySent()
			}
		})
	}
	sk.Run(0)
	sk.Shutdown()
	if got := delivered.Load(); got != int64(shards*msgs) {
		t.Fatalf("delivered %d messages, want %d", got, shards*msgs)
	}
}

func BenchmarkShardDispatch(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			timers := 256
			periods := []Time{1, 2, 3, 5, 8, 40, 130, 1000, 9000, 100000}
			sk := NewShardedKernel(shards)
			remaining := make([]int, shards)
			ticks := make([]func(), timers)
			for t := 0; t < timers; t++ {
				t := t
				sh := t % shards
				k := sk.Shard(sh)
				per := periods[t%len(periods)]
				ticks[t] = func() {
					if remaining[sh] > 0 {
						remaining[sh]--
						k.After(per, ticks[t])
					}
				}
			}
			arm := func(count int) {
				for sh := range remaining {
					remaining[sh] = count/shards - timers/shards
				}
				for t := 0; t < timers; t++ {
					sk.Shard(t % shards).After(periods[t%len(periods)], ticks[t])
				}
				sk.Run(0)
			}
			arm(10 * timers)
			b.ReportAllocs()
			b.ResetTimer()
			arm(b.N + 10*timers)
		})
	}
}
