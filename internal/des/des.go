// Package des is a deterministic discrete-event simulation kernel with
// cooperative goroutine processes. It provides the virtual-time substrate
// on which the SCC platform model and the Kahn-process-network runtime
// execute: processes advance a shared virtual clock by sleeping
// (Proc.Delay) and blocking on conditions (Proc.Block), and the kernel
// resumes exactly one process at a time, ordered by (time, sequence
// number), so every run of the same program is bit-identical.
//
// Time is in ticks; one tick is one microsecond of virtual time
// throughout this repository.
package des

import (
	"fmt"
	"slices"
)

// Time is an instant or duration of virtual time in ticks (microseconds).
type Time = int64

// event is a scheduled kernel action: resume a process or run a callback.
// Events are kernel-owned and recycled through a freelist once consumed,
// so steady-state scheduling does not allocate.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	proc *Proc  // non-nil: resume this process
	fn   func() // non-nil: run this callback in kernel context
	next *event // freelist link while the event is recycled
}

// Kernel is a discrete-event simulator. The zero value is not usable;
// create kernels with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventQueue
	procs   []*Proc
	running *Proc  // the process currently executing, nil in kernel context
	free    *event // freelist of consumed events, reused by push
	stopped    bool
	panicV     any    // re-thrown panic from a process
	dispatched uint64 // events consumed across all Run calls

	tracer func(TraceEvent)
}

// TraceEvent describes one scheduler action, for debugging simulations
// and timeline export (internal/obs). Kinds:
//
//	"spawn"    — process created
//	"resume"   — process handed the processor
//	"block"    — process parked on a Signal
//	"end"      — process body returned
//	"callback" — kernel-context callback ran
//	"stop"     — Stop was called
type TraceEvent struct {
	At   Time
	Kind string
	Proc string // process name, empty for kernel callbacks
}

// Trace installs a tracer invoked synchronously for every scheduler
// action (nil disables). Tracing is for debugging: it does not alter
// event order.
func (k *Kernel) Trace(fn func(TraceEvent)) { k.tracer = fn }

// emit reports a scheduler action to the tracer, if any.
func (k *Kernel) emit(kind, proc string) {
	if k.tracer != nil {
		k.tracer(TraceEvent{At: k.now, Kind: kind, Proc: proc})
	}
}

// NewKernel returns an empty simulator at virtual time 0, scheduling
// through the default event queue (the bucket queue unless the des_heap
// build tag selects the reference heap).
func NewKernel() *Kernel {
	return NewKernelWithQueue(defaultQueueKind)
}

// NewKernelWithQueue returns an empty simulator using an explicit event
// queue implementation. Both kinds dequeue in identical (time, FIFO)
// order; the choice affects host performance only.
func NewKernelWithQueue(kind QueueKind) *Kernel {
	return &Kernel{events: newQueue(kind)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at virtual time t (clamped to
// the current time if t is in the past). Use it for fault injection,
// pollers and other environment actions that are not processes.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.push(t, nil, fn)
}

// After schedules fn to run d ticks from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Every schedules fn to run every period ticks, starting at now+period,
// until the simulation ends or fn returns false.
func (k *Kernel) Every(period Time, fn func() bool) {
	if period <= 0 {
		panic(fmt.Sprintf("des: Every period must be positive, got %d", period))
	}
	var tick func()
	tick = func() {
		if k.stopped {
			return
		}
		if fn() {
			k.After(period, tick)
		}
	}
	k.After(period, tick)
}

// Stop ends the simulation: Run returns once the currently executing
// process yields. Pending events are discarded.
func (k *Kernel) Stop() {
	k.stopped = true
	k.emit("stop", "")
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// push schedules an event, reusing a recycled one when available.
func (k *Kernel) push(at Time, proc *Proc, fn func()) {
	e := k.free
	if e != nil {
		k.free = e.next
		e.next = nil
	} else {
		e = new(event)
	}
	e.at, e.proc, e.fn = at, proc, fn
	e.seq = k.seq
	k.seq++
	k.events.push(e)
}

// recycle returns a consumed (popped) event to the freelist.
func (k *Kernel) recycle(e *event) {
	e.proc, e.fn = nil, nil
	e.next = k.free
	k.free = e
}

// Run executes the simulation until no events remain, the virtual clock
// would pass `until` (use a non-positive value for "no limit"), or Stop
// is called. It returns the virtual time at which the simulation settled.
// A panic inside any process is re-thrown from Run.
func (k *Kernel) Run(until Time) Time {
	for !k.stopped && k.events.len() > 0 {
		// Probe first: an event past the limit stays queued untouched, so
		// a later Run call resumes with the original FIFO order intact.
		if _, ok := k.events.next(until); !ok {
			k.now = until
			return k.now
		}
		e := k.events.pop()
		k.dispatched++
		k.now = e.at
		if e.fn != nil {
			k.emit("callback", "")
			e.fn()
		} else if e.proc != nil && e.proc.state != stateDone {
			k.emit("resume", e.proc.name)
			k.resume(e.proc)
		}
		k.recycle(e)
		if k.panicV != nil {
			v := k.panicV
			k.panicV = nil
			panic(v)
		}
	}
	return k.now
}

// resume hands control to p and waits for it to yield, block or finish.
func (k *Kernel) resume(p *Proc) {
	k.running = p
	p.state = stateRunning
	p.resume <- struct{}{}
	<-p.yielded
	k.running = nil
	if p.state == stateDone {
		k.emit("end", p.name)
	}
}

// Blocked returns the names of processes that are blocked on a Signal,
// sorted for reproducible diagnostics. After Run returns, a non-empty
// result with no pending events indicates processes permanently stalled
// (e.g. consumers starved after a finite workload drained).
func (k *Kernel) Blocked() []string {
	var names []string
	for _, p := range k.procs {
		if p.state == stateBlocked {
			names = append(names, p.name)
		}
	}
	slices.Sort(names)
	return names
}

// NumProcs returns the number of processes ever spawned on the kernel.
func (k *Kernel) NumProcs() int { return len(k.procs) }

// Pending returns the number of scheduled events not yet dispatched.
// The shard runner (shard.go) uses it to distinguish an idle kernel
// from one whose events lie beyond the current horizon.
func (k *Kernel) Pending() int { return k.events.len() }

// Dispatched returns the total number of events the kernel has
// consumed across all Run calls — a progress counter for chunked
// execution and throughput benchmarks.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Shutdown terminates all process goroutines that have not finished,
// unwinding their stacks. Call it once after the final Run to avoid
// leaking goroutines; the kernel must not be used afterwards.
func (k *Kernel) Shutdown() {
	k.stopped = true
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-p.yielded
	}
}
