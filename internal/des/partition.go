package des

import (
	"fmt"
	"slices"
)

// Graph partitioning for the sharded kernel: split n nodes (processes)
// into k balanced parts minimizing the total weight of cut edges
// (channel traffic). The heuristic is a deterministic two-phase scheme
// in the Kernighan–Lin family: a BFS-contiguous initial assignment so
// pipelines land in connected blocks, then greedy single-node moves
// while the cut improves and balance is preserved. Optimal balanced
// min-cut is NP-hard; for the process networks here (a handful to a
// few hundred nodes) this converges in a few passes and, critically,
// is bit-reproducible: ties break on the lowest node and part index.

// GraphEdge is one undirected weighted edge between node indices A and
// B. Parallel edges are allowed and their weights add.
type GraphEdge struct {
	A, B   int
	Weight int64
}

// PartitionGraph assigns each of n nodes to one of parts parts,
// returning the assignment slice. parts is clamped to [1, n]. Every
// part is non-empty and part sizes differ by at most one.
func PartitionGraph(n int, edges []GraphEdge, parts int) []int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			panic(fmt.Sprintf("des: PartitionGraph edge (%d,%d) outside [0,%d)", e.A, e.B, n))
		}
	}

	// Adjacency with summed parallel-edge weights, neighbors sorted for
	// deterministic traversal.
	type nb struct {
		node int
		w    int64
	}
	adj := make([][]nb, n)
	{
		sum := make(map[[2]int]int64)
		for _, e := range edges {
			if e.A == e.B {
				continue
			}
			a, b := e.A, e.B
			if a > b {
				a, b = b, a
			}
			sum[[2]int{a, b}] += e.Weight
		}
		keys := make([][2]int, 0, len(sum))
		for k := range sum {
			keys = append(keys, k)
		}
		slices.SortFunc(keys, func(x, y [2]int) int {
			if x[0] != y[0] {
				return x[0] - y[0]
			}
			return x[1] - y[1]
		})
		for _, k := range keys {
			w := sum[k]
			adj[k[0]] = append(adj[k[0]], nb{k[1], w})
			adj[k[1]] = append(adj[k[1]], nb{k[0], w})
		}
	}

	// Initial assignment: BFS from the lowest unvisited node, filling
	// parts with contiguous blocks of floor/ceil size.
	assign := make([]int, n)
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, e := range adj[v] {
				if !seen[e.node] {
					seen[e.node] = true
					queue = append(queue, e.node)
				}
			}
		}
	}
	size := make([]int, parts)
	for i, v := range order {
		// Part p receives block [p*n/parts, (p+1)*n/parts).
		p := i * parts / n
		assign[v] = p
		size[p]++
	}

	// Refinement: move one node at a time to the part with the highest
	// connectivity gain, respecting the floor/ceil balance envelope.
	minSize := n / parts
	maxSize := (n + parts - 1) / parts
	conn := make([]int64, parts) // scratch: node's edge weight into each part
	for pass := 0; pass < 8; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			from := assign[v]
			if size[from] <= minSize {
				continue // moving v would under-fill its part
			}
			for p := range conn {
				conn[p] = 0
			}
			for _, e := range adj[v] {
				conn[assign[e.node]] += e.w
			}
			best, bestGain := from, int64(0)
			for p := 0; p < parts; p++ {
				if p == from || size[p] >= maxSize {
					continue
				}
				if gain := conn[p] - conn[from]; gain > bestGain {
					best, bestGain = p, gain
				}
			}
			if best != from {
				assign[v] = best
				size[from]--
				size[best]++
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	// parts <= n makes minSize >= 1, so the balance envelope keeps
	// every part non-empty through refinement.
	return assign
}

// CutWeight sums the weight of edges whose endpoints live in different
// parts of the assignment — the objective PartitionGraph minimizes.
func CutWeight(edges []GraphEdge, assign []int) int64 {
	var w int64
	for _, e := range edges {
		if assign[e.A] != assign[e.B] {
			w += e.Weight
		}
	}
	return w
}
