package des

import (
	"fmt"
	"math/rand"
	"testing"
)

func partSizes(assign []int, parts int) []int {
	sizes := make([]int, parts)
	for _, p := range assign {
		sizes[p]++
	}
	return sizes
}

func TestPartitionBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		parts := 1 + rng.Intn(8)
		var edges []GraphEdge
		for i := 0; i < n*2; i++ {
			edges = append(edges, GraphEdge{rng.Intn(n), rng.Intn(n), int64(1 + rng.Intn(100))})
		}
		assign := PartitionGraph(n, edges, parts)
		if len(assign) != n {
			t.Fatalf("n=%d parts=%d: assignment length %d", n, parts, len(assign))
		}
		eff := parts
		if eff > n {
			eff = n
		}
		sizes := partSizes(assign, eff)
		minS, maxS := n, 0
		for _, s := range sizes {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		if minS == 0 {
			t.Fatalf("n=%d parts=%d: empty part, sizes %v", n, parts, sizes)
		}
		if maxS-minS > 1 {
			t.Fatalf("n=%d parts=%d: imbalance, sizes %v", n, parts, sizes)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	edges := []GraphEdge{{0, 1, 5}, {1, 2, 7}, {2, 3, 2}, {3, 4, 9}, {4, 5, 1}, {0, 5, 3}}
	a := PartitionGraph(6, edges, 3)
	for i := 0; i < 5; i++ {
		if b := PartitionGraph(6, edges, 3); fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("run %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestPartitionChainCut(t *testing.T) {
	// A uniform-weight pipeline of 8 nodes split in two should cut
	// exactly one edge: the two halves are contiguous.
	var edges []GraphEdge
	for i := 0; i < 7; i++ {
		edges = append(edges, GraphEdge{i, i + 1, 10})
	}
	assign := PartitionGraph(8, edges, 2)
	if w := CutWeight(edges, assign); w != 10 {
		t.Fatalf("chain cut weight %d, want 10 (assign %v)", w, assign)
	}
}

func TestPartitionPrefersLightCut(t *testing.T) {
	// Two 3-cliques of heavy edges joined by one light edge: the light
	// edge must be the cut.
	heavy := []GraphEdge{
		{0, 1, 100}, {1, 2, 100}, {0, 2, 100},
		{3, 4, 100}, {4, 5, 100}, {3, 5, 100},
		{2, 3, 1},
	}
	assign := PartitionGraph(6, heavy, 2)
	if w := CutWeight(heavy, assign); w != 1 {
		t.Fatalf("cut weight %d, want 1 (assign %v)", w, assign)
	}
}

func TestPartitionClampsParts(t *testing.T) {
	assign := PartitionGraph(3, nil, 10)
	sizes := partSizes(assign, 3)
	for p, s := range sizes {
		if s != 1 {
			t.Fatalf("part %d has %d nodes, want 1 (assign %v)", p, s, assign)
		}
	}
	if got := PartitionGraph(4, nil, 0); len(got) != 4 {
		t.Fatalf("parts=0 assignment %v", got)
	} else {
		for _, p := range got {
			if p != 0 {
				t.Fatalf("parts=0 should collapse to one part, got %v", got)
			}
		}
	}
	if got := PartitionGraph(0, nil, 2); got != nil {
		t.Fatalf("n=0 should return nil, got %v", got)
	}
}

func TestPartitionRejectsBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on out-of-range edge")
		}
	}()
	PartitionGraph(3, []GraphEdge{{0, 3, 1}}, 2)
}

func TestCutWeight(t *testing.T) {
	edges := []GraphEdge{{0, 1, 4}, {1, 2, 6}, {0, 2, 5}}
	if w := CutWeight(edges, []int{0, 0, 1}); w != 11 {
		t.Fatalf("cut weight %d, want 11", w)
	}
	if w := CutWeight(edges, []int{0, 0, 0}); w != 0 {
		t.Fatalf("cut weight %d, want 0", w)
	}
}
