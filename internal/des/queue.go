package des

import "math/bits"

// eventQueue is the kernel's pending-event set, ordered by (at, seq).
//
// next reports the earliest event's time. With limit > 0 it may answer
// ok=false ("nothing at or before limit") without computing the exact
// minimum, and it promises that any internal reorganization stays
// consistent with later pushes at times > limit — the kernel relies on
// that after an early Run(until) exit. With limit <= 0 it returns the
// exact minimum, and the caller must pop it before pushing anything
// earlier. pop returns the minimum event or nil when empty.
type eventQueue interface {
	push(e *event)
	next(limit Time) (Time, bool)
	pop() *event
	len() int
	// bound returns a non-mutating lower bound on the earliest queued
	// event's time (exact for the heap, a slot block start for the
	// bucket queue). ok is false when the queue is empty. The sharded
	// kernel's horizon fixed point uses it to see past the current
	// safe window without disturbing queue state.
	bound() (Time, bool)
}

// QueueKind selects the kernel's event-queue implementation.
type QueueKind int

const (
	// QueueBucket is the integer-tick bucket (hierarchical timing-wheel)
	// queue: O(1) amortized push/pop, no interface boxing, FIFO within a
	// tick by construction.
	QueueBucket QueueKind = iota
	// QueueHeap is the reference binary heap ordered by (at, seq), kept
	// as the oracle the bucket queue is property-tested against.
	QueueHeap
)

// newQueue builds an event queue of the given kind.
func newQueue(kind QueueKind) eventQueue {
	if kind == QueueHeap {
		return &heapQueue{h: make([]*event, 0, 64)}
	}
	return newBucketQueue()
}

// ---------------------------------------------------------------------------
// Bucket queue: a hierarchical timing wheel over integer ticks.
//
// Level l has 64 slots of width 64^l ticks, so six levels cover deltas up
// to 64^6 ≈ 6.9e10 ticks (~19 virtual hours) ahead of the queue's clock;
// rarer events park on an overflow list. Each slot is an intrusive FIFO
// list chained through event.next (the same link the kernel's freelist
// uses — an event is never in both). A per-level occupancy bitmap plus
// rotate+TrailingZeros finds the next non-empty slot in O(1), so empty
// ticks cost nothing regardless of how sparse the schedule is.
//
// Dequeue order equals the heap's (at, seq) order without comparing seq:
//   - within one tick, events sit in one level-0 slot in push order;
//   - an event cascading down from level l was pushed with a strictly
//     larger delta — hence strictly earlier, with a smaller seq — than
//     any same-tick event resident at a lower level, so cascades and
//     overflow migrations prepend (as a block, order preserved) while
//     fresh pushes append.
// ---------------------------------------------------------------------------

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits                 // 64
	wheelLevels = 6                              // covers deltas < 64^6
	farDelta    = 1 << (wheelBits * wheelLevels) // overflow threshold
)

// slotList is an intrusive FIFO of events chained through event.next.
type slotList struct {
	head, tail *event
}

type bucketQueue struct {
	cur   Time // queue clock: no queued event is earlier
	n     int
	slots [wheelLevels][wheelSlots]slotList
	occ   [wheelLevels]uint64 // occupancy bitmaps

	// far holds events the wheel cannot index from its current clock:
	// delta >= farDelta, or slot-aliased (the event's slot at every
	// level wide enough for its delta is a full wheel turn ahead). Kept
	// in push order.
	far    []*event
	farMin Time
}

func newBucketQueue() *bucketQueue {
	return &bucketQueue{farMin: 1<<63 - 1}
}

func (q *bucketQueue) len() int { return q.n }

// levelFor returns the wheel level for a non-negative delta < farDelta.
func levelFor(delta Time) int {
	if delta < wheelSlots {
		return 0
	}
	return (bits.Len64(uint64(delta)) - 1) / wheelBits
}

// wheelLevel returns the level where an event at time `at` can be
// indexed from the current clock, or ok=false when it must park on the
// overflow list. Starting from levelFor(delta), a level is usable only
// when the event's block is less than a full turn ahead of the clock's
// block; otherwise the slot index would alias onto the current turn
// (same slot, one turn later) and candidate() would report a block the
// event is not in. Bumping one level always resolves the alias (the
// block distance shrinks 64-fold), so the loop runs at most twice.
func (q *bucketQueue) wheelLevel(at Time) (int, bool) {
	delta := at - q.cur
	if delta >= farDelta {
		return 0, false
	}
	for l := levelFor(delta); l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		if (at>>shift)-(q.cur>>shift) < wheelSlots {
			return l, true
		}
	}
	return 0, false
}

// insert places e at the right level for its delta from the queue clock.
// Cascades and migrations set prepend, keeping same-tick FIFO order.
func (q *bucketQueue) insert(e *event, prepend bool) {
	l, onWheel := q.wheelLevel(e.at)
	if !onWheel {
		if prepend {
			q.far = append([]*event{e}, q.far...)
		} else {
			q.far = append(q.far, e)
		}
		if e.at < q.farMin {
			q.farMin = e.at
		}
		return
	}
	s := (e.at >> uint(wheelBits*l)) & (wheelSlots - 1)
	sl := &q.slots[l][s]
	if prepend {
		e.next = sl.head
		sl.head = e
		if sl.tail == nil {
			sl.tail = e
		}
	} else {
		e.next = nil
		if sl.tail == nil {
			sl.head = e
		} else {
			sl.tail.next = e
		}
		sl.tail = e
	}
	q.occ[l] |= 1 << uint(s)
}

func (q *bucketQueue) push(e *event) {
	q.insert(e, false)
	q.n++
}

// candidate returns the earliest possible event time indicated by level
// l's bitmap: the exact tick for level 0, the block start otherwise.
// ok is false when the level is empty.
func (q *bucketQueue) candidate(l int) (Time, bool) {
	bm := q.occ[l]
	if bm == 0 {
		return 0, false
	}
	shift := uint(wheelBits * l)
	pos := uint((q.cur >> shift) & (wheelSlots - 1))
	k := bits.TrailingZeros64(bits.RotateLeft64(bm, -int(pos)))
	return ((q.cur >> shift) + Time(k)) << shift, true
}

// cascade empties the level-l slot starting at block time bs, advancing
// the clock to the block and re-inserting its events one level (or more)
// down. The reversed walk plus prepending keeps same-tick FIFO order.
func (q *bucketQueue) cascade(l int, bs Time) {
	if bs > q.cur {
		q.cur = bs
	}
	s := (bs >> (wheelBits * l)) & (wheelSlots - 1)
	e := q.slots[l][s].head
	q.slots[l][s] = slotList{}
	q.occ[l] &^= 1 << uint(s)
	// Reverse the list in place, then prepend one by one: net effect is
	// a block-prepend into each destination slot with order preserved.
	var rev *event
	for e != nil {
		next := e.next
		e.next = rev
		rev = e
		e = next
	}
	for rev != nil {
		next := rev.next
		q.insert(rev, true)
		rev = next
	}
}

// migrate moves overflow events now indexable from the clock onto the
// wheel.
func (q *bucketQueue) migrate() {
	if q.n == len(q.far) {
		// The wheel is empty: jump the clock to the overflow front so
		// at least its earliest event becomes placeable (delta zero).
		q.cur = q.farMin
	}
	var eligible []*event
	keep := q.far[:0]
	for _, e := range q.far {
		if _, ok := q.wheelLevel(e.at); ok {
			eligible = append(eligible, e)
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(q.far); i++ {
		q.far[i] = nil
	}
	q.far = keep
	q.farMin = 1<<63 - 1
	for _, e := range q.far {
		if e.at < q.farMin {
			q.farMin = e.at
		}
	}
	for i := len(eligible) - 1; i >= 0; i-- {
		q.insert(eligible[i], true)
	}
}

// next reorganizes until the globally earliest event heads a level-0
// slot and returns its time, advancing the queue clock to it. With a
// positive limit it stops — mutating nothing further — as soon as the
// minimum candidate exceeds the limit: candidates are lower bounds on
// their events' times, so the earliest event is past the limit too, and
// every clock advance so far was to a candidate <= limit, which keeps
// later pushes in (limit, min] valid.
func (q *bucketQueue) next(limit Time) (Time, bool) {
	if q.n == 0 {
		return 0, false
	}
	const inf = Time(1<<63 - 1)
	for {
		// Find the minimum candidate across levels; ties go to the highest
		// level (and the overflow list before any level), so lower-seq
		// events are always in place before a tick is popped.
		minT := inf
		cascadeL := -1
		for l := 1; l < wheelLevels; l++ {
			if bs, ok := q.candidate(l); ok && (bs < minT || (bs == minT && l > cascadeL)) {
				minT, cascadeL = bs, l
			}
		}
		if t0, ok := q.candidate(0); ok && t0 < minT {
			minT, cascadeL = t0, 0
		}
		useFar := len(q.far) > 0 && q.farMin <= minT
		if useFar {
			minT = q.farMin
		}
		if limit > 0 && minT > limit {
			return 0, false
		}
		if useFar {
			q.migrate()
			continue
		}
		if cascadeL != 0 {
			q.cascade(cascadeL, minT)
			continue
		}
		if q.cur < minT {
			q.cur = minT
		}
		return minT, true
	}
}

// bound returns the minimum candidate across all levels and the
// overflow list — a lower bound on the earliest event, computed
// without reorganizing anything.
func (q *bucketQueue) bound() (Time, bool) {
	if q.n == 0 {
		return 0, false
	}
	minT := Time(1<<63 - 1)
	for l := 0; l < wheelLevels; l++ {
		if bs, ok := q.candidate(l); ok && bs < minT {
			minT = bs
		}
	}
	if len(q.far) > 0 && q.farMin < minT {
		minT = q.farMin
	}
	return minT, true
}

func (q *bucketQueue) pop() *event {
	t, ok := q.next(0)
	if !ok {
		return nil
	}
	s := t & (wheelSlots - 1)
	sl := &q.slots[0][s]
	e := sl.head
	sl.head = e.next
	if sl.head == nil {
		sl.tail = nil
		q.occ[0] &^= 1 << uint(s)
	}
	e.next = nil
	q.n--
	return e
}

// ---------------------------------------------------------------------------
// Heap queue: the reference implementation. A plain binary heap ordered
// by (at, seq), with typed sift routines instead of container/heap so no
// event is boxed into an interface on the hot path.
// ---------------------------------------------------------------------------

type heapQueue struct {
	h []*event
}

func (q *heapQueue) len() int { return len(q.h) }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *heapQueue) push(e *event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *heapQueue) next(limit Time) (Time, bool) {
	if len(q.h) == 0 || (limit > 0 && q.h[0].at > limit) {
		return 0, false
	}
	return q.h[0].at, true
}

// bound returns the exact earliest event time without mutation.
func (q *heapQueue) bound() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) pop() *event {
	n := len(q.h)
	if n == 0 {
		return nil
	}
	top := q.h[0]
	q.h[0] = q.h[n-1]
	q.h[n-1] = nil
	q.h = q.h[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(q.h[l], q.h[small]) {
			small = l
		}
		if r < n && eventLess(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return top
}
