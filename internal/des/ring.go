package des

import (
	"sync"
	"sync/atomic"
)

// Cross-shard message transport: a timestamped single-producer /
// single-consumer ring plus its mutex-only oracle. The sharded kernel
// (shard.go) moves tokens between per-core kernels through these rings;
// the SPSC discipline holds because every cross-shard channel has
// exactly one writing process (owned by the source shard's runner) and
// one draining runner (the destination shard). The layout mirrors
// crt.FIFO: power-of-two buffer, monotonically increasing head/tail
// counters on separate cache lines, each written by exactly one side.
//
// Unlike crt.FIFO the ring never blocks: TryPush/TryPop fail fast and
// the caller decides how to wait (the shard runner parks through the
// ShardedKernel's horizon protocol, not on the ring).

// Stamped is a value carrying its virtual delivery time. For
// cross-shard messages At is the instant the destination kernel must
// process the value — always strictly beyond the destination's current
// horizon, which is what makes conservative parallel simulation safe.
type Stamped[T any] struct {
	At Time
	V  T
}

// TimedQueue is the transport surface shared by the SPSC ring and its
// locked oracle, so conformance suites and the kpn cross-shard adapter
// can run against either.
type TimedQueue[T any] interface {
	TryPush(Stamped[T]) bool
	TryPop() (Stamped[T], bool)
	Len() int
	Cap() int
}

// TimedRing is the lock-free SPSC timestamped ring. One goroutine may
// call TryPush and one other TryPop; Len is safe from either side.
type TimedRing[T any] struct {
	mask uint64
	buf  []Stamped[T]

	// head/tail live on separate cache lines so the producer's tail
	// stores do not invalidate the consumer's head line and vice versa.
	_    [64]byte
	head padUint64 // consumer position: next slot to read
	_    [64]byte
	tail padUint64 // producer position: next slot to write
	_    [64]byte
}

// padUint64 is an atomic counter; the padding lives in the enclosing
// struct so the two counters never share a cache line.
type padUint64 struct{ v atomic.Uint64 }

// NewTimedRing creates a ring with at least the given capacity
// (rounded up to a power of two). Capacity must be positive.
func NewTimedRing[T any](capacity int) *TimedRing[T] {
	if capacity <= 0 {
		panic("des: TimedRing capacity must be positive")
	}
	ring := 1
	for ring < capacity {
		ring <<= 1
	}
	return &TimedRing[T]{mask: uint64(ring - 1), buf: make([]Stamped[T], ring)}
}

// TryPush appends m; it reports false when the ring is full.
func (r *TimedRing[T]) TryPush(m Stamped[T]) bool {
	t := r.tail.v.Load()
	if t-r.head.v.Load() > r.mask { // len == cap
		return false
	}
	r.buf[t&r.mask] = m
	r.tail.v.Store(t + 1)
	return true
}

// TryPop removes the oldest message; ok is false when the ring is
// empty.
func (r *TimedRing[T]) TryPop() (m Stamped[T], ok bool) {
	h := r.head.v.Load()
	if r.tail.v.Load() == h {
		return m, false
	}
	m = r.buf[h&r.mask]
	r.buf[h&r.mask] = Stamped[T]{} // release any payload reference
	r.head.v.Store(h + 1)
	return m, true
}

// Len returns the current number of queued messages.
func (r *TimedRing[T]) Len() int {
	t := r.tail.v.Load()
	h := r.head.v.Load()
	if h > t { // head advanced between the two loads
		return 0
	}
	return int(t - h)
}

// Cap returns the ring's capacity.
func (r *TimedRing[T]) Cap() int { return int(r.mask) + 1 }

// LockedTimedRing is the mutex-only oracle for TimedRing: identical
// bounded-queue semantics, any number of goroutines on either end.
type LockedTimedRing[T any] struct {
	mu  sync.Mutex
	cap int
	q   []Stamped[T]
}

// NewLockedTimedRing creates a bounded locked queue with the same
// effective capacity rounding as NewTimedRing.
func NewLockedTimedRing[T any](capacity int) *LockedTimedRing[T] {
	if capacity <= 0 {
		panic("des: LockedTimedRing capacity must be positive")
	}
	ring := 1
	for ring < capacity {
		ring <<= 1
	}
	return &LockedTimedRing[T]{cap: ring}
}

// TryPush appends m; it reports false when the queue is full.
func (r *LockedTimedRing[T]) TryPush(m Stamped[T]) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.q) >= r.cap {
		return false
	}
	r.q = append(r.q, m)
	return true
}

// TryPop removes the oldest message; ok is false when empty.
func (r *LockedTimedRing[T]) TryPop() (m Stamped[T], ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.q) == 0 {
		return m, false
	}
	m = r.q[0]
	copy(r.q, r.q[1:])
	r.q[len(r.q)-1] = Stamped[T]{}
	r.q = r.q[:len(r.q)-1]
	return m, true
}

// Len returns the current number of queued messages.
func (r *LockedTimedRing[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.q)
}

// Cap returns the queue's capacity.
func (r *LockedTimedRing[T]) Cap() int { return r.cap }
