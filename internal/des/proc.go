package des

import "fmt"

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateReady   procState = iota // scheduled to run
	stateRunning                  // currently executing
	stateBlocked                  // waiting on a Signal
	stateDone                     // body returned
)

// Proc is a simulated process: a goroutine that advances virtual time by
// calling Delay and synchronizes with other processes via Signals and the
// structures built on them. All Proc methods must be called from the
// process's own body function.
type Proc struct {
	k       *Kernel
	name    string
	state   procState
	killed  bool
	resume  chan struct{}
	yielded chan struct{}
}

// errKilled is the sentinel used by Kernel.Shutdown to unwind process
// goroutines that are still alive when the simulation is torn down.
type errKilled struct{}

// Spawn creates a process that starts executing body at virtual time
// now+startDelay. The body runs in its own goroutine but strictly
// interleaved with all other processes under kernel control.
func (k *Kernel) Spawn(name string, startDelay Time, body func(p *Proc)) *Proc {
	if startDelay < 0 {
		panic(fmt.Sprintf("des: negative start delay %d for process %q", startDelay, name))
	}
	p := &Proc{
		k:       k,
		name:    name,
		state:   stateReady,
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.emit("spawn", name)
	go func() {
		<-p.resume
		if p.killed {
			p.state = stateDone
			p.yielded <- struct{}{}
			return
		}
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(errKilled); !ok {
					k.panicV = fmt.Errorf("des: process %q panicked: %v", name, v)
				}
			}
			p.state = stateDone
			p.yielded <- struct{}{}
		}()
		body(p)
	}()
	k.push(k.now+startDelay, p, nil)
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Delay suspends the process for d ticks of virtual time. A non-positive
// d yields the processor without advancing time (the process is
// re-scheduled at the current instant, after already-pending events).
func (p *Proc) Delay(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.push(p.k.now+d, p, nil)
	p.yield(stateReady)
}

// yield returns control to the kernel, recording the new state.
func (p *Proc) yield(s procState) {
	p.state = s
	p.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled{})
	}
	p.state = stateRunning
}

// Signal is a wait queue processes can block on. The zero value is ready
// to use. Wakeups are FIFO and deterministic.
type Signal struct {
	waiters []*Proc
}

// Wait blocks the calling process until another process or a kernel
// callback calls Broadcast (or Wake reaches it). Typical use re-checks
// the guarded condition in a loop, as with sync.Cond.
func (p *Proc) Wait(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.k.emit("block", p.name)
	p.yield(stateBlocked)
}

// Broadcast wakes all processes waiting on s at the current virtual
// time. It is safe to call from process bodies and kernel callbacks.
func (k *Kernel) Broadcast(s *Signal) {
	for _, w := range s.waiters {
		if w.state == stateBlocked {
			w.state = stateReady
			k.push(k.now, w, nil)
		}
	}
	s.waiters = s.waiters[:0]
}

// NumWaiters returns how many processes are currently waiting on s.
func (s *Signal) NumWaiters() int { return len(s.waiters) }
