package des

import (
	"encoding/binary"
	"testing"
)

// FuzzBucketQueueOrder feeds a byte-driven op stream (pushes with
// arbitrary deltas including overflow range, pops, peeks) to the bucket
// queue and the heap oracle and requires identical dequeue order. Wired
// into the CI fuzz smoke alongside the detector interleaving fuzzers.
func FuzzBucketQueueOrder(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x00, 0x20, 0xFF, 0x01, 0x02, 0x03})
	f.Add([]byte{0x40, 0x00, 0x40, 0x00, 0x80, 0x80, 0x80})
	f.Add([]byte{0x20, 0xFF, 0xFF, 0xFF, 0x30, 0x00, 0x00, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		bq, hq := newBucketQueue(), &heapQueue{}
		var seq uint64
		now := Time(0)
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			switch {
			case op < 0xC0: // push: delta from the next bytes, shifted to reach any level
				var raw uint64
				if len(data) >= 2 {
					raw = uint64(binary.LittleEndian.Uint16(data))
					data = data[2:]
				}
				shift := uint(op&0x3F) % 45
				at := now + Time(raw<<shift)
				if at < now || at > 1<<62 { // clamp accumulated overflow
					at = 1 << 62
				}
				bq.push(&event{at: at, seq: seq})
				hq.push(&event{at: at, seq: seq})
				seq++
			case op < 0xE0: // pop
				be, he := bq.pop(), hq.pop()
				if (be == nil) != (he == nil) {
					t.Fatalf("pop: bucket %v vs heap %v", be, he)
				}
				if be != nil {
					if be.at != he.at || be.seq != he.seq {
						t.Fatalf("pop: bucket (at=%d seq=%d) vs heap (at=%d seq=%d)",
							be.at, be.seq, he.at, he.seq)
					}
					now = be.at
				}
			default: // bounded probe (the Run(until) path: must not perturb order)
				var raw uint64
				if len(data) >= 2 {
					raw = uint64(binary.LittleEndian.Uint16(data))
					data = data[2:]
				}
				limit := now + 1 + Time(raw)<<(uint(op&0x1F)%30)
				if limit < now || limit > 1<<62 { // clamp accumulated overflow
					limit = 1 << 62
				}
				bAt, bOK := bq.next(limit)
				hAt, hOK := hq.next(limit)
				if bOK != hOK || (bOK && bAt != hAt) {
					t.Fatalf("probe(%d): bucket (%d,%v) vs heap (%d,%v)", limit, bAt, bOK, hAt, hOK)
				}
				// After an empty probe the kernel resumes at the limit, after
				// a hit it dispatches the event; later pushes land at or
				// above either point — mirror that push floor.
				if !bOK && limit > now {
					now = limit
				} else if bOK && bAt > now {
					now = bAt
				}
			}
			if bq.len() != hq.len() {
				t.Fatalf("len: bucket %d vs heap %d", bq.len(), hq.len())
			}
		}
		// Drain.
		for {
			be, he := bq.pop(), hq.pop()
			if (be == nil) != (he == nil) {
				t.Fatalf("drain: bucket %v vs heap %v", be, he)
			}
			if be == nil {
				return
			}
			if be.at != he.at || be.seq != he.seq {
				t.Fatalf("drain: bucket (at=%d seq=%d) vs heap (at=%d seq=%d)",
					be.at, be.seq, he.at, he.seq)
			}
		}
	})
}
