package des

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Sharded conservative parallel simulation (Chandy–Misra–Bryant with
// shared-memory null messages). A ShardedKernel wraps N independent
// Kernels, one per OS thread, connected by directed Links. Each link
// carries a lookahead L — a static guarantee that a message sent by the
// source shard at local time s is delivered at s+L at the earliest (in
// this repository L comes from a channel's RTC delay bound). The
// safe-time invariant is the classic one:
//
//	a shard may advance to H-1, where H = min over inbound links of
//	that link's clock — an inclusive lower bound on the delivery time
//	of every message the link will still produce.
//
// Null messages are not queued messages here: because the shards share
// memory, a link's clock is a single atomic the source publishes and
// the destination reads. A publication replaces the classic null
// message; a wake of a parked destination replaces its arrival
// interrupt.
//
// Message payloads travel separately, through caller-owned SPSC rings
// (TimedRing) drained by functions registered with RegisterDrain. The
// runner guarantees every drain callback runs with the destination
// kernel quiescent (between Run slices), and the protocol guarantees
// every drained message's timestamp is strictly beyond the kernel's
// current time, so cross-shard delivery can never reorder the past.
//
// Termination: an idle shard parks. The last parker runs a global
// horizon fixed point (a min-plus relaxation over the link graph) that
// either grants a blocked shard a larger horizon — this resolves relay
// chains through idle shards without the classic null-message
// avalanche — or proves global quiescence and ends the run.

// maxTime is the practical "infinite" horizon: far beyond any virtual
// time the simulations reach, with headroom so adding lookaheads
// cannot overflow int64.
const maxTime = Time(1) << 62

// Link is a directed synchronization edge between two shards. Its
// clock is the null-message channel: an inclusive lower bound on the
// delivery time of every message the source will still send. sent and
// recvd count payload messages so quiescence detection can prove no
// message is in flight.
type Link struct {
	sk        *ShardedKernel
	src, dst  int
	lookahead Time

	clock atomic.Int64 // published lower bound on future deliveries
	sent  atomic.Int64 // messages pushed by the source side
	recvd atomic.Int64 // messages drained by the destination side
}

// Src and Dst return the shard indices the link connects.
func (l *Link) Src() int { return l.src }
func (l *Link) Dst() int { return l.dst }

// Lookahead returns the link's static delivery lower bound.
func (l *Link) Lookahead() Time { return l.lookahead }

// Clock returns the link's current published horizon.
func (l *Link) Clock() Time { return l.clock.Load() }

// InFlight returns how many sent messages have not been drained yet.
func (l *Link) InFlight() int64 { return l.sent.Load() - l.recvd.Load() }

// NotifySent records one payload message pushed onto the link's
// transport. Call it after the ring push: the destination treats
// sent==recvd as "transport drained", so the counter must never lead
// the data.
func (l *Link) NotifySent() { l.sent.Add(1) }

// NotifyDrained records n payload messages consumed from the link's
// transport. Drain callbacks call it as they pop the ring.
func (l *Link) NotifyDrained(n int64) { l.recvd.Add(n) }

// StallWake reports a full-transport stall to the destination: it
// wakes the destination shard (so it drains) and counts the stall.
// The sending runner should yield and retry after calling it.
func (l *Link) StallWake() {
	l.sk.stalls.Add(1)
	l.sk.wakeShard(l.dst)
}

// shardState is the per-shard runner bookkeeping.
type shardState struct {
	k      *Kernel
	id     int
	in     []*Link
	out    []*Link
	drains []func(k *Kernel) int64
	chunk  Time // Run slice length; maxTime when the shard has no outbound links

	parked atomic.Bool  // runner is parking/parked (Dekker flag for wakers)
	lastH  atomic.Int64 // horizon the runner last read before draining
	grant  atomic.Int64 // horizon granted by the global fixed point

	parks atomic.Int64 // this shard's parks (also counted globally)
	wakes atomic.Int64 // wakes delivered to this shard (also counted globally)

	wake bool // under ShardedKernel.mu: a waker has work for this shard
}

// ShardStats aggregates the synchronization-protocol counters of one
// run: null-message clock publications, horizon grants from the global
// fixed point, parks, wakes of parked shards, payload messages drained,
// and full-transport stalls.
type ShardStats struct {
	NullMessages int64
	Grants       int64
	Parks        int64
	Wakes        int64
	Drained      int64
	Stalls       int64
}

// ShardedKernel runs N kernels in parallel under the conservative
// protocol above. Construction, Connect, RegisterDrain and process
// spawning happen single-threaded before Run; Run may be called
// repeatedly with growing limits, like Kernel.Run.
type ShardedKernel struct {
	shards []*shardState
	links  []*Link

	mu    sync.Mutex
	cond  *sync.Cond
	done  bool
	until Time
	panic any

	nulls   atomic.Int64
	grants  atomic.Int64
	parks   atomic.Int64
	wakes   atomic.Int64
	drained atomic.Int64
	stalls  atomic.Int64
}

// NewShardedKernel creates n kernels with the default event queue.
func NewShardedKernel(n int) *ShardedKernel {
	return NewShardedKernelWithQueue(n, defaultQueueKind)
}

// NewShardedKernelWithQueue creates n kernels using an explicit event
// queue implementation.
func NewShardedKernelWithQueue(n int, kind QueueKind) *ShardedKernel {
	if n <= 0 {
		panic(fmt.Sprintf("des: ShardedKernel needs at least one shard, got %d", n))
	}
	sk := &ShardedKernel{}
	sk.cond = sync.NewCond(&sk.mu)
	for i := 0; i < n; i++ {
		sk.shards = append(sk.shards, &shardState{k: NewKernelWithQueue(kind), id: i})
	}
	return sk
}

// NumShards returns the number of wrapped kernels.
func (sk *ShardedKernel) NumShards() int { return len(sk.shards) }

// Shard returns kernel i. Spawn processes and build channels on it
// before Run; during Run only its own runner touches it.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i].k }

// Connect declares that shard src sends timestamped messages to shard
// dst with the given lookahead (strictly positive, or the conservative
// protocol deadlocks — the kpn layer refuses zero-lookahead cuts
// before ever getting here). Multiple channels between the same shard
// pair should share one Link carrying their minimum lookahead.
func (sk *ShardedKernel) Connect(src, dst int, lookahead Time) *Link {
	if src == dst {
		panic(fmt.Sprintf("des: Connect(%d,%d): a link must cross shards", src, dst))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("des: Connect(%d,%d): lookahead must be positive, got %d", src, dst, lookahead))
	}
	l := &Link{sk: sk, src: src, dst: dst, lookahead: lookahead}
	// Initial promise: the source's clock starts at 0, so nothing can
	// be delivered before the lookahead itself.
	l.clock.Store(int64(lookahead))
	sk.links = append(sk.links, l)
	sk.shards[src].out = append(sk.shards[src].out, l)
	sk.shards[dst].in = append(sk.shards[dst].in, l)
	return l
}

// RegisterDrain installs fn on the destination shard. The runner calls
// it between Run slices with the shard's kernel quiescent; fn pops its
// transport ring(s), schedules the messages onto k (their stamps are
// strictly in k's future), calls Link.NotifyDrained, and returns how
// many messages it consumed.
func (sk *ShardedKernel) RegisterDrain(shard int, fn func(k *Kernel) int64) {
	s := sk.shards[shard]
	s.drains = append(s.drains, fn)
}

// Stats returns the accumulated protocol counters.
func (sk *ShardedKernel) Stats() ShardStats {
	return ShardStats{
		NullMessages: sk.nulls.Load(),
		Grants:       sk.grants.Load(),
		Parks:        sk.parks.Load(),
		Wakes:        sk.wakes.Load(),
		Drained:      sk.drained.Load(),
		Stalls:       sk.stalls.Load(),
	}
}

// ShardStat is one shard's view of the synchronization protocol: its
// own park/wake counts plus its current lookahead slack — how far the
// inbound link promises (the horizon) run ahead of the horizon the
// runner last adopted. Large slack means neighbours' lookahead keeps
// the shard well fed; slack pinned near zero marks the critical chain.
type ShardStat struct {
	Shard     int
	Parks     int64
	Wakes     int64
	Horizon   Time // min inbound promise, lifted by any global grant
	LastH     Time // horizon the runner last adopted
	Slack     Time // max(0, Horizon-LastH); meaningless when Unbounded
	Unbounded bool // no inbound links: the horizon is infinite
}

// PerShardStats snapshots every shard's ShardStat. Safe to call while
// Run is in flight — it reads only atomics (link clocks, grants,
// lastH), so a concurrent snapshot is a consistent-enough point-in-time
// view per field, exactly like Stats.
func (sk *ShardedKernel) PerShardStats() []ShardStat {
	out := make([]ShardStat, len(sk.shards))
	for i, s := range sk.shards {
		h := s.horizon()
		lh := Time(s.lastH.Load())
		st := ShardStat{
			Shard:   i,
			Parks:   s.parks.Load(),
			Wakes:   s.wakes.Load(),
			Horizon: h,
			LastH:   lh,
		}
		if len(s.in) == 0 || h >= maxTime {
			st.Unbounded = true
		} else if h > lh {
			st.Slack = h - lh
		}
		out[i] = st
	}
	return out
}

// Shutdown terminates all process goroutines on all shards. Call once
// after the final Run.
func (sk *ShardedKernel) Shutdown() {
	for _, s := range sk.shards {
		s.k.Shutdown()
	}
}

// Run executes all shards concurrently until global quiescence or
// until every shard's clock would pass `until` (non-positive = no
// limit). It returns the largest virtual time any shard reached. A
// panic inside any process is re-thrown.
func (sk *ShardedKernel) Run(until Time) Time {
	if until <= 0 {
		until = maxTime
	}
	sk.mu.Lock()
	sk.done = false
	sk.until = until
	for _, s := range sk.shards {
		s.wake = false
		s.parked.Store(false)
		// A grant is a promise derived from the fixed point of a prior
		// run, computed under that run's `until` cap: a shard that held
		// events beyond the cap looked inert to the fixed point, so the
		// promise can overshoot its next send. Stale grants must not
		// lift horizons in this run.
		s.grant.Store(0)
		if s.chunk == 0 {
			s.chunk = chunkFor(s)
		}
	}
	sk.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range sk.shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					sk.mu.Lock()
					if sk.panic == nil {
						sk.panic = v
					}
					sk.done = true
					sk.cond.Broadcast()
					sk.mu.Unlock()
				}
			}()
			sk.runShard(s, until)
		}(s)
	}
	wg.Wait()

	sk.mu.Lock()
	v := sk.panic
	sk.panic = nil
	sk.mu.Unlock()
	if v != nil {
		panic(v)
	}
	reached := Time(0)
	for _, s := range sk.shards {
		if t := s.k.Now(); t > reached {
			reached = t
		}
	}
	return reached
}

// chunkFor sizes a shard's Run slices: roughly four lookaheads of its
// tightest outbound link, so downstream shards overlap execution
// pipeline-style, floored to amortize the slice overhead. A shard with
// no outbound links never needs to publish progress and runs straight
// to its target.
func chunkFor(s *shardState) Time {
	if len(s.out) == 0 {
		return maxTime
	}
	minL := maxTime
	for _, l := range s.out {
		if l.lookahead < minL {
			minL = l.lookahead
		}
	}
	if c := 4 * minL; c > 64 {
		return c
	}
	return 64
}

// horizon computes the shard's current safe bound: the minimum inbound
// link clock, lifted by any fixed-point grant. A shard with no inbound
// links is bounded only by `until`.
func (s *shardState) horizon() Time {
	h := maxTime
	for _, l := range s.in {
		if c := Time(l.clock.Load()); c < h {
			h = c
		}
	}
	if g := Time(s.grant.Load()); g > h {
		h = g
	}
	return h
}

// publish stores lb+lookahead into every outbound clock that would
// strictly increase, waking parked destinations. lb is the shard's
// lower bound on its own next send time.
func (sk *ShardedKernel) publish(s *shardState, lb Time) {
	for _, l := range s.out {
		c := lb + l.lookahead
		if c > maxTime {
			c = maxTime
		}
		if c > Time(l.clock.Load()) {
			l.clock.Store(int64(c))
			sk.nulls.Add(1)
			// Dekker handshake: the clock store above is ordered before
			// this flag read, and the parker re-reads clocks after
			// setting the flag, so one side always sees the other.
			if sk.shards[l.dst].parked.Load() {
				sk.wakeShard(l.dst)
			}
		}
	}
}

// wakeShard marks the shard runnable and broadcasts. Safe from any
// goroutine.
func (sk *ShardedKernel) wakeShard(id int) {
	sk.mu.Lock()
	if !sk.shards[id].wake {
		sk.shards[id].wake = true
		sk.wakes.Add(1)
		sk.shards[id].wakes.Add(1)
		sk.cond.Broadcast()
	}
	sk.mu.Unlock()
}

// drain runs the shard's drain callbacks; the returned count also
// feeds the global Drained counter.
func (sk *ShardedKernel) drain(s *shardState) int64 {
	var n int64
	for _, fn := range s.drains {
		n += fn(s.k)
	}
	if n > 0 {
		sk.drained.Add(n)
	}
	return n
}

// inflight reports whether any inbound transport still holds messages.
// Without registered drains the counters can never reconcile, so links
// used purely for synchronization do not count.
func (s *shardState) inflight() bool {
	if len(s.drains) == 0 {
		return false
	}
	for _, l := range s.in {
		if l.sent.Load() != l.recvd.Load() {
			return true
		}
	}
	return false
}

// runWindow executes events at times <= target and leaves the virtual
// clock at target. Unlike Kernel.Run, the limit is literal — target 0
// runs exactly the time-0 events, which a shard whose horizon is the
// minimum lookahead legitimately needs. A target in the past is a
// no-op. Probing with target+1 keeps the bucket queue's clock at or
// below target+1, so cross-shard pushes at times >= target+1 (the
// protocol guarantees no earlier ones) stay valid.
func (k *Kernel) runWindow(target Time) Time {
	if target < k.now {
		return k.now
	}
	for !k.stopped && k.events.len() > 0 {
		if t, ok := k.events.next(target + 1); !ok || t > target {
			break
		}
		e := k.events.pop()
		k.dispatched++
		k.now = e.at
		if e.fn != nil {
			k.emit("callback", "")
			e.fn()
		} else if e.proc != nil && e.proc.state != stateDone {
			k.emit("resume", e.proc.name)
			k.resume(e.proc)
		}
		k.recycle(e)
		if k.panicV != nil {
			v := k.panicV
			k.panicV = nil
			panic(v)
		}
	}
	if !k.stopped {
		k.now = target
	}
	return k.now
}

// runShard is one shard's runner loop. Safety argument for every Run
// slice: the slice target is min(until, H-1) with H the horizon read
// BEFORE draining, so (a) events the slice dispatches are ≤ H-1, (b)
// any message a peer pushes after our clock read carries a stamp ≥ the
// clock value we read ≥ H > target — the queue clock never advances
// past a pending cross-shard delivery, preserving the bucket queue's
// push-after-early-exit contract.
func (sk *ShardedKernel) runShard(s *shardState, until Time) {
	k := s.k
	for {
		// Read the horizon first, then drain: messages pushed before
		// the clock reads are visible to the drain (the ring's tail
		// store precedes the clock publication), and messages pushed
		// after carry stamps ≥ the clocks just read.
		h := s.horizon()
		drained := sk.drain(s)
		s.lastH.Store(int64(h))

		target := until
		if h-1 < target {
			target = h - 1
		}

		// Execute the safe window in chunks, publishing progress after
		// each slice so downstream shards overlap with us. Dead space
		// (no events for many chunks) is skipped via the queue's
		// non-mutating bound.
		worked := drained > 0
		before := k.Dispatched()
		for k.Pending() > 0 && !k.Stopped() {
			step := k.Now() + s.chunk
			if step < k.Now() { // overflow on an effectively infinite chunk
				step = target
			}
			if eb, ok := k.events.bound(); ok && eb > step {
				step = eb
			}
			if step > target {
				step = target
			}
			reached := k.runWindow(step)
			// Future sends happen at ≥ reached+1 (events ≤ reached are
			// done; cross-shard arrivals are ≥ H ≥ reached+1).
			sk.publish(s, reached+1)
			if reached >= target {
				break
			}
		}
		worked = worked || k.Dispatched() != before

		// Window exhausted. Publish the horizon remainder only after
		// real progress: an idle shard relaying every inbound clock
		// advance would feed a null-message avalanche around link
		// cycles (each relay grows the next horizon by one lookahead,
		// forever). Idle relays are the global fixed point's job.
		if k.Stopped() {
			sk.publish(s, maxTime)
		} else if worked && k.Pending() == 0 {
			// All local work done: the next send can only follow a
			// future inbound delivery, so it happens at ≥ h.
			sk.publish(s, h)
		}

		// Park attempt. Order matters: set the parked flag, THEN
		// re-check horizons and transports under the mutex, so (a) a
		// concurrent publisher or sender that missed the flag is
		// itself seen by the re-check (Dekker), and (b) a shard with
		// parked=true never mutates its kernel while a globalCheck
		// holding the mutex reads it.
		s.parked.Store(true)
		sk.mu.Lock()
		if (k.Pending() > 0 && s.horizon() > h) || s.inflight() || s.wake {
			s.wake = false
			s.parked.Store(false)
			sk.mu.Unlock()
			continue // something actionable arrived while we were finishing
		}
		sk.parks.Add(1)
		s.parks.Add(1)
		sk.globalCheck()
		for !sk.done && !s.wake {
			sk.cond.Wait()
		}
		if sk.done {
			sk.mu.Unlock()
			return
		}
		s.wake = false
		s.parked.Store(false)
		sk.mu.Unlock()
	}
}

// globalCheck runs with sk.mu held, by a runner that just parked. Over
// the stable subset of shards — parked with no pending wake, hence
// frozen while the mutex is held — it computes the horizon fixed point
//
//	x(S) = min( pendingBound(S), min over inbound links bound(link) )
//
// where pendingBound(S) = max(lastH, queue bound) if S has queued
// events, min'd with lastH if S has undrained inbound messages (their
// stamps are ≥ the horizon S last used), and +inf otherwise; and
// bound(link) is x(src)+L for a stable source but only the link's
// published clock for a running one (a running shard keeps its own
// clocks current, so the clock is the strongest stable fact about it).
// x(S) lower-bounds shard S's next activity, so the per-link bounds
// are valid new horizons. Any stable shard with work whose new horizon
// strictly grows gets it as a grant and is woken — this relays
// horizons through idle shards without eager null-message chains. When
// every shard is stable and nothing can be granted, the run is over.
func (sk *ShardedKernel) globalCheck() {
	n := len(sk.shards)
	stable := make([]bool, n)
	all := true
	for i, s := range sk.shards {
		stable[i] = s.parked.Load() && !s.wake
		all = all && stable[i]
	}
	x := make([]Time, n)
	for i, s := range sk.shards {
		x[i] = maxTime
		if !stable[i] {
			continue // never read a running shard's kernel
		}
		if s.k.Pending() > 0 && !s.k.Stopped() {
			// Events all lie at ≥ max(lastH, queue bound): the shard
			// already ran to lastH-1, and the queue bound sees past
			// the horizon so far-future events don't force the fixed
			// point through one lookahead-sized step per round. When
			// the run cap, not the horizon, was the binding target the
			// shard only ran to `until`, so the honest claim is
			// min(lastH, until+1).
			b := Time(s.lastH.Load())
			if b > sk.until+1 {
				b = sk.until + 1
			}
			if eb, ok := s.k.events.bound(); ok && eb > b {
				b = eb
			}
			x[i] = b
		}
		if s.inflight() {
			if lh := Time(s.lastH.Load()); lh < x[i] {
				x[i] = lh
			}
		}
		// A running upstream neighbor can deliver as early as its
		// link's published clock.
		for _, l := range s.in {
			if !stable[l.src] {
				if c := Time(l.clock.Load()); c < x[i] {
					x[i] = c
				}
			}
		}
	}
	for range sk.shards { // Bellman–Ford over ≤ n-1 relaxation rounds
		changed := false
		for _, l := range sk.links {
			if !stable[l.src] || !stable[l.dst] {
				continue
			}
			if v := x[l.src] + l.lookahead; v < x[l.dst] {
				x[l.dst] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	granted := false
	for i, s := range sk.shards {
		if !stable[i] {
			continue
		}
		pending := (s.k.Pending() > 0 && !s.k.Stopped()) || s.inflight()
		if !pending || Time(s.lastH.Load()) > sk.until {
			continue // nothing to run, or already done to the limit
		}
		newH := maxTime
		for _, l := range s.in {
			var b Time
			if stable[l.src] {
				b = x[l.src] + l.lookahead
				if b > maxTime {
					b = maxTime
				}
				if c := Time(l.clock.Load()); c > b {
					b = c // both are valid bounds; take the stronger
				}
			} else {
				b = Time(l.clock.Load())
			}
			if b < newH {
				newH = b
			}
		}
		if newH > Time(s.lastH.Load()) {
			s.grant.Store(int64(newH))
			s.wake = true
			granted = true
			sk.grants.Add(1)
		}
	}
	if granted {
		sk.cond.Broadcast()
		return
	}
	if all {
		sk.done = true
		sk.cond.Broadcast()
	}
}

// ---------------------------------------------------------------------------
// Canonical merged traces: the bit-identity contract between a sharded
// run and the single-kernel oracle.
// ---------------------------------------------------------------------------

// TraceCollector records the process-level scheduler events of one or
// more kernels and serializes them into a canonical byte form that is
// invariant under partitioning: per-process event order is preserved
// (it is fully determined by the Kahn network's semantics), kernel
// callbacks are excluded (their count and order are scheduling
// artifacts of the transport, not of the application), and concurrent
// per-kernel streams are merged by (time, process, per-process index).
type TraceCollector struct {
	streams [][]traceRec // one slice per attached kernel; no locking needed
}

type traceRec struct {
	at   Time
	proc string
	kind string
}

// NewTraceCollector returns an empty collector.
func NewTraceCollector() *TraceCollector { return &TraceCollector{} }

// Attach installs the collector as kernel k's tracer. Each kernel gets
// its own stream, so kernels on different shards may trace
// concurrently.
func (tc *TraceCollector) Attach(k *Kernel) {
	idx := len(tc.streams)
	tc.streams = append(tc.streams, nil)
	k.Trace(func(e TraceEvent) {
		if e.Proc == "" {
			return // kernel callback or stop: transport artifact
		}
		tc.streams[idx] = append(tc.streams[idx], traceRec{at: e.At, proc: e.Proc, kind: e.Kind})
	})
}

// Bytes returns the canonical serialized trace.
func (tc *TraceCollector) Bytes() []byte {
	type keyed struct {
		traceRec
		idx int // per-(at,proc) arrival index within its own stream
	}
	var all []keyed
	for _, st := range tc.streams {
		seq := make(map[string]int, 8)
		for _, r := range st {
			all = append(all, keyed{r, seq[r.proc]})
			seq[r.proc]++
		}
	}
	slices.SortFunc(all, func(a, b keyed) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.proc != b.proc {
			if a.proc < b.proc {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	var out []byte
	for _, r := range all {
		out = fmt.Appendf(out, "%d %s %s\n", r.at, r.proc, r.kind)
	}
	return out
}
