package des

import (
	"math/rand"
	"testing"
)

// drainCompare pops both queues to exhaustion and fails on the first
// divergence in dequeue order (compared by event identity).
func drainCompare(t *testing.T, bq, hq eventQueue, ctx string) {
	t.Helper()
	for i := 0; ; i++ {
		bAt, bOK := bq.next(0)
		hAt, hOK := hq.next(0)
		if bOK != hOK || (bOK && bAt != hAt) {
			t.Fatalf("%s: peek %d: bucket (%d,%v) vs heap (%d,%v)", ctx, i, bAt, bOK, hAt, hOK)
		}
		be, he := bq.pop(), hq.pop()
		if be == nil && he == nil {
			return
		}
		if be == nil || he == nil {
			t.Fatalf("%s: pop %d: bucket %v vs heap %v", ctx, i, be, he)
		}
		if be.at != he.at || be.seq != he.seq {
			t.Fatalf("%s: pop %d: bucket (at=%d seq=%d) vs heap (at=%d seq=%d)",
				ctx, i, be.at, be.seq, he.at, he.seq)
		}
		if bq.len() != hq.len() {
			t.Fatalf("%s: pop %d: len %d vs %d", ctx, i, bq.len(), hq.len())
		}
	}
}

// queuePair pushes the same (at, seq) schedule into a bucket queue and a
// heap queue. Separate event structs per queue: the bucket queue chains
// through event.next.
func queuePair(ats []Time) (eventQueue, eventQueue) {
	bq, hq := newBucketQueue(), &heapQueue{}
	for i, at := range ats {
		bq.push(&event{at: at, seq: uint64(i)})
		hq.push(&event{at: at, seq: uint64(i)})
	}
	return bq, hq
}

// TestBucketQueueMatchesHeapOracle drives both queues with randomized
// push/pop streams — same-tick bursts, long jumps, overflow-range
// deltas — and requires identical dequeue order, the property that keeps
// every determinism regression bit-identical on the new scheduler.
func TestBucketQueueMatchesHeapOracle(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 7))
		bq, hq := newBucketQueue(), &heapQueue{}
		var seq uint64
		now := Time(0)
		push := func(at Time) {
			bq.push(&event{at: at, seq: seq})
			hq.push(&event{at: at, seq: seq})
			seq++
		}
		steps := 200 + rng.Intn(400)
		for s := 0; s < steps; s++ {
			switch op := rng.Intn(10); {
			case op < 5: // push a short-range event
				push(now + Time(rng.Intn(200)))
			case op < 6: // same-tick burst, mixed with a couple of later ones
				at := now + Time(rng.Intn(50))
				for b := 0; b < 2+rng.Intn(6); b++ {
					push(at)
					if rng.Intn(3) == 0 {
						push(at + Time(rng.Intn(100000)))
					}
				}
			case op < 7: // long-range: exercise higher wheel levels
				push(now + Time(rng.Int63n(1<<30)))
			case op < 8: // overflow-range: beyond the wheel span
				push(now + farDelta + Time(rng.Int63n(1<<40)))
			case op < 9: // alias-window: delta just under the next level's
				// span, where the level-l slot index lands a full wheel
				// turn ahead of the clock (the hang fixed in wheelLevel)
				l := 1 + rng.Intn(wheelLevels-1)
				push(now + 63<<(wheelBits*l) + Time(rng.Int63n(1<<(wheelBits*l))))
			default: // pop a few, advancing the virtual clock
				for p := 0; p < 1+rng.Intn(4); p++ {
					be, he := bq.pop(), hq.pop()
					if (be == nil) != (he == nil) {
						t.Fatalf("trial %d: pop mismatch: %v vs %v", trial, be, he)
					}
					if be == nil {
						break
					}
					if be.at != he.at || be.seq != he.seq {
						t.Fatalf("trial %d: pop (at=%d seq=%d) vs (at=%d seq=%d)",
							trial, be.at, be.seq, he.at, he.seq)
					}
					now = be.at
				}
			}
			// Probes between ops must never perturb the order. A bounded
			// probe (the Run(until) path) licenses pushes only above its
			// limit; an exact probe, only at or above its answer — mirror
			// the kernel by advancing the push floor accordingly.
			if rng.Intn(2) == 0 {
				limit := now + Time(rng.Intn(100000))
				bAt, bOK := bq.next(limit)
				hAt, hOK := hq.next(limit)
				if bOK != hOK || (bOK && bAt != hAt) {
					t.Fatalf("trial %d: probe(%d) (%d,%v) vs (%d,%v)", trial, limit, bAt, bOK, hAt, hOK)
				}
				if !bOK {
					now = limit
				} else if bAt > now {
					now = bAt
				}
			} else {
				bAt, bOK := bq.next(0)
				hAt, hOK := hq.next(0)
				if bOK != hOK || (bOK && bAt != hAt) {
					t.Fatalf("trial %d: peek (%d,%v) vs (%d,%v)", trial, bAt, bOK, hAt, hOK)
				}
				if bOK && bAt > now {
					now = bAt
				}
			}
		}
		drainCompare(t, bq, hq, "drain")
	}
}

// TestBucketQueueSameTickFIFO pins the stable tie-break: events at one
// tick dequeue in push order even when they entered at different wheel
// levels (direct pushes vs cascades vs overflow migrations).
func TestBucketQueueSameTickFIFO(t *testing.T) {
	const at = farDelta + 4096 + 17
	// seq 0, 3 and 4 share one tick but enter via the overflow list; by
	// the time they migrate onto the wheel, the clock has advanced past
	// seq 2 (level 0) and seq 1 (a middle level). Migration and cascade
	// must keep the shared tick in 0, 3, 4 order.
	bq, hq := queuePair([]Time{at, at - farDelta + 1, 3, at})
	bq.push(&event{at: at, seq: 4})
	hq.push(&event{at: at, seq: 4})
	drainCompare(t, bq, hq, "same-tick")
}

// TestBucketQueueSlotAlias is the regression for the settle() livelock:
// with the clock partway into a block, an event whose delta is just
// under the next level's span maps to the clock's own slot position one
// full wheel turn ahead. candidate() then reported the current turn's
// block start and cascade() re-inserted the event in place without
// advancing the clock, spinning settle() forever. wheelLevel now bumps
// such events one level up (or to the overflow list from the top level).
func TestBucketQueueSlotAlias(t *testing.T) {
	for l := 1; l < wheelLevels; l++ {
		span := Time(1) << (wheelBits * (l + 1)) // 64^(l+1)
		for _, off := range []Time{1, span / 128, span/64 - 1} {
			bq, hq := newBucketQueue(), &heapQueue{}
			// Advance the clock off block alignment first.
			for q, sq := range []eventQueue{bq, hq} {
				sq.push(&event{at: 2*off + 3, seq: 0})
				if e := sq.pop(); e == nil || e.at != 2*off+3 {
					t.Fatalf("level %d queue %d: clock setup pop %v", l, q, e)
				}
			}
			now := 2*off + 3
			// The alias: at lands in the clock's slot, one turn ahead.
			at := (now>>(wheelBits*l)+wheelSlots)<<(wheelBits*l) + off/2
			bq.push(&event{at: at, seq: 1})
			hq.push(&event{at: at, seq: 1})
			bq.push(&event{at: at, seq: 2})
			hq.push(&event{at: at, seq: 2})
			drainCompare(t, bq, hq, "alias")
		}
	}
}

// TestRunUntilKeepsQueueOrder pins the peek-based run limit: stopping a
// kernel mid-schedule and resuming must not reorder same-tick events.
func TestRunUntilKeepsQueueOrder(t *testing.T) {
	for _, kind := range []QueueKind{QueueBucket, QueueHeap} {
		k := NewKernelWithQueue(kind)
		var got []int
		for i := 0; i < 4; i++ {
			k.At(10, func() { got = append(got, i) })
		}
		k.At(5, func() { got = append(got, -1) })
		if at := k.Run(7); at != 7 {
			t.Fatalf("kind %d: Run(7) settled at %d", kind, at)
		}
		k.Run(0)
		want := []int{-1, 0, 1, 2, 3}
		for i, w := range want {
			if i >= len(got) || got[i] != w {
				t.Fatalf("kind %d: callback order %v, want %v", kind, got, want)
			}
		}
	}
}

// TestKernelQueueKindsBitIdentical runs an identical mixed workload on
// both queue kinds and requires identical traces.
func TestKernelQueueKindsBitIdentical(t *testing.T) {
	run := func(kind QueueKind) []TraceEvent {
		k := NewKernelWithQueue(kind)
		var tr []TraceEvent
		k.Trace(func(ev TraceEvent) { tr = append(tr, ev) })
		for w := 0; w < 3; w++ {
			seed := int64(100 + w)
			k.Spawn("w", Time(w), func(p *Proc) {
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 50; i++ {
					p.Delay(Time(r.Intn(40)))
				}
			})
		}
		k.Every(7, func() bool { return k.Now() < 900 })
		k.Run(0)
		k.Shutdown()
		return tr
	}
	a, b := run(QueueBucket), run(QueueHeap)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEventDispatchZeroAllocs pins the 0 allocs/op property of warm
// event dispatch on both queue implementations.
func TestEventDispatchZeroAllocs(t *testing.T) {
	for _, kind := range []QueueKind{QueueBucket, QueueHeap} {
		k := NewKernelWithQueue(kind)
		var n int
		var tick func()
		tick = func() {
			if n > 0 {
				n--
				k.After(1, tick)
			}
		}
		n = 64
		k.After(1, tick)
		k.Run(0)
		allocs := testing.AllocsPerRun(100, func() {
			n = 50
			k.After(1, tick)
			k.Run(0)
		})
		if allocs > 0 {
			t.Fatalf("queue kind %d: %.1f allocs per 50-event run, want 0", kind, allocs)
		}
	}
}
