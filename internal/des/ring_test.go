package des

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// timedQueueConformance drives any TimedQueue implementation through a
// single-threaded FIFO check and, for the SPSC ring, a two-goroutine
// transfer under the race detector.
func timedQueueConformance(t *testing.T, mk func(capacity int) TimedQueue[int64]) {
	t.Helper()

	t.Run("fifo", func(t *testing.T) {
		q := mk(8)
		if _, ok := q.TryPop(); ok {
			t.Fatalf("pop from empty queue succeeded")
		}
		for i := int64(0); i < int64(q.Cap()); i++ {
			if !q.TryPush(Stamped[int64]{At: i, V: i * 10}) {
				t.Fatalf("push %d failed below capacity", i)
			}
		}
		if q.TryPush(Stamped[int64]{At: 99, V: 99}) {
			t.Fatalf("push into full queue succeeded")
		}
		if got := q.Len(); got != q.Cap() {
			t.Fatalf("Len %d, want %d", got, q.Cap())
		}
		for i := int64(0); i < int64(q.Cap()); i++ {
			m, ok := q.TryPop()
			if !ok || m.At != i || m.V != i*10 {
				t.Fatalf("pop %d = (%v,%v), want (%d,%d)", i, m, ok, i, i*10)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("queue not empty after draining")
		}
	})

	t.Run("wraparound", func(t *testing.T) {
		q := mk(4)
		var next, want int64
		rng := rand.New(rand.NewSource(3))
		for step := 0; step < 2000; step++ {
			if rng.Intn(2) == 0 {
				if q.TryPush(Stamped[int64]{At: next, V: next}) {
					next++
				}
			} else if m, ok := q.TryPop(); ok {
				if m.V != want {
					t.Fatalf("step %d: popped %d, want %d", step, m.V, want)
				}
				want++
			}
		}
	})

	t.Run("spsc", func(t *testing.T) {
		const total = 20000
		q := mk(16)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < total; {
				if q.TryPush(Stamped[int64]{At: i, V: i}) {
					i++
				} else {
					runtime.Gosched() // single-CPU hosts: let the consumer run
				}
			}
		}()
		for want := int64(0); want < total; {
			if m, ok := q.TryPop(); ok {
				if m.At != want || m.V != want {
					t.Fatalf("received (%d,%d), want (%d,%d)", m.At, m.V, want, want)
				}
				want++
			} else {
				runtime.Gosched()
			}
		}
		wg.Wait()
	})
}

func TestTimedRingConformance(t *testing.T) {
	timedQueueConformance(t, func(c int) TimedQueue[int64] { return NewTimedRing[int64](c) })
}

func TestLockedTimedRingConformance(t *testing.T) {
	timedQueueConformance(t, func(c int) TimedQueue[int64] { return NewLockedTimedRing[int64](c) })
}

func TestTimedRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128}} {
		if got := NewTimedRing[int64](tc.ask).Cap(); got != tc.want {
			t.Fatalf("TimedRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
		if got := NewLockedTimedRing[int64](tc.ask).Cap(); got != tc.want {
			t.Fatalf("LockedTimedRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}
