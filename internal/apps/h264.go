package apps

import (
	"fmt"

	"ftpn/internal/codec/h264"
	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// H264Config parameterizes the H.264 encoder application (the paper's
// third benchmark, §4.2): a producer streams raw frames, the critical
// subnetwork is sliceframe → encode×Slices → muxstream, and the consumer
// collects the encoded bitstream tokens.
type H264Config struct {
	Width, Height int
	Slices        int
	QP            int
	Frames        int64
	FrameCache    int

	Producer rtc.PJD
	Consumer rtc.PJD

	Slice StageTiming
	Enc   StageTiming
	Mux   StageTiming

	InCap, MidCap, OutCap int
	OutInit               int

	// Memo, when non-nil, caches the deterministic payload pipeline
	// (raw-frame synthesis, per-slice encode) across runs sharing the
	// config.
	Memo *kpn.PayloadMemo
}

// DefaultH264Config returns a ~30 fps encoder configuration with
// replica jitter diversity, scaled down geometrically (virtual-time
// results do not depend on pixel count).
func DefaultH264Config() H264Config {
	return H264Config{
		Width: 64, Height: 48, Slices: 2, QP: 26, Frames: 600, FrameCache: 16,
		Producer: pjd(30_000, 1_000, 30_000),
		Consumer: pjd(30_000, 1_000, 30_000),
		Slice:    StageTiming{BaseUs: 400, JitterUs: [3]des.Time{400, 800, 2_500}},
		Enc:      StageTiming{BaseUs: 9_000, PerKBUs: 150, JitterUs: [3]des.Time{1_500, 3_000, 12_000}},
		Mux:      StageTiming{BaseUs: 400, JitterUs: [3]des.Time{400, 1_200, 4_000}},
		InCap:    4, MidCap: 4, OutCap: 8, OutInit: 3,
	}
}

// Validate reports whether the configuration is usable.
func (cfg H264Config) Validate() error {
	if cfg.Slices < 1 {
		return fmt.Errorf("apps: H264 needs at least one slice, got %d", cfg.Slices)
	}
	if cfg.Width%4 != 0 || cfg.Height%(4*cfg.Slices) != 0 {
		return fmt.Errorf("apps: H264 geometry %dx%d not divisible into %d 4-aligned slices",
			cfg.Width, cfg.Height, cfg.Slices)
	}
	if cfg.QP < 0 || cfg.QP > h264.MaxQP {
		return fmt.Errorf("apps: H264 QP %d outside [0,%d]", cfg.QP, h264.MaxQP)
	}
	if cfg.FrameCache < 1 {
		return fmt.Errorf("apps: H264 frame cache must be positive")
	}
	if err := cfg.Producer.Validate(); err != nil {
		return err
	}
	return cfg.Consumer.Validate()
}

// RawBytes returns the raw-frame token size.
func (cfg H264Config) RawBytes() int { return cfg.Width * cfg.Height }

// rawFrame synthesizes deterministic raw frame i.
func (cfg H264Config) rawFrame(i int64) []byte {
	pix := make([]byte, cfg.RawBytes())
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			v := uint64(x+y)*5 + uint64(i)*31
			n := uint64(x)*2654435761 ^ uint64(y)*40503 ^ uint64(i)*11400714819323198485
			pix[y*cfg.Width+x] = byte((v + n%17) % 256)
		}
	}
	return pix
}

// H264Network builds the reference process network.
func H264Network(cfg H264Config, sink Sink) (*kpn.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cache := make(map[int64][]byte, cfg.FrameCache)
	gen := cfg.Memo.Gen("h264/raw", func(i int64) []byte {
		key := i % int64(cfg.FrameCache)
		if b, ok := cache[key]; ok {
			return b
		}
		b := cfg.rawFrame(key)
		cache[key] = b
		return b
	})
	sliceH := cfg.Height / cfg.Slices

	procs := []kpn.ProcessSpec{
		{Name: "producer", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
			return kpn.Producer(cfg.Producer, 31, cfg.Frames, gen)
		}},
		{Name: "sliceframe", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			work := cfg.Slice.work(r)
			return func(p *des.Proc, in []kpn.ReadPort, out []kpn.WritePort) {
				if len(in) != 1 || len(out) != cfg.Slices {
					panic(fmt.Sprintf("apps: sliceframe ports %d/%d", len(in), len(out)))
				}
				rng := newStageRand(32 + int64(r))
				for i := int64(1); ; i++ {
					tok := in[0].Read(p)
					p.Delay(stageDuration(work, rng, tok.Size()))
					if len(tok.Payload) != cfg.RawBytes() {
						panic(fmt.Sprintf("apps: sliceframe raw size %d", len(tok.Payload)))
					}
					for s, o := range out {
						part := tok.Payload[s*sliceH*cfg.Width : (s+1)*sliceH*cfg.Width]
						o.Write(p, kpn.Token{Seq: tok.Seq, Stamp: p.Now(), Payload: part})
					}
				}
			}
		}},
	}
	chans := []kpn.ChannelSpec{
		{Name: "F_in", From: "producer", To: "sliceframe", Capacity: cfg.InCap, TokenBytes: cfg.RawBytes()},
	}
	for s := 0; s < cfg.Slices; s++ {
		en := fmt.Sprintf("encode%d", s+1)
		procs = append(procs, kpn.ProcessSpec{Name: en, Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.Enc.work(r), 33+int64(s), cfg.Memo, "h264/"+en, func(i int64, payload []byte) []byte {
				data, err := h264.Encode(payload, cfg.Width, sliceH, cfg.QP)
				if err != nil {
					panic(fmt.Sprintf("apps: H264 encode: %v", err))
				}
				return data
			})
		}})
		chans = append(chans,
			kpn.ChannelSpec{Name: fmt.Sprintf("F_r%d", s+1), From: "sliceframe", To: en,
				Capacity: cfg.MidCap, TokenBytes: cfg.RawBytes() / cfg.Slices},
			kpn.ChannelSpec{Name: fmt.Sprintf("F_e%d", s+1), From: en, To: "muxstream",
				Capacity: cfg.MidCap, TokenBytes: cfg.RawBytes() / (4 * cfg.Slices)},
		)
	}
	procs = append(procs,
		kpn.ProcessSpec{Name: "muxstream", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			work := cfg.Mux.work(r)
			return func(p *des.Proc, in []kpn.ReadPort, out []kpn.WritePort) {
				if len(in) != cfg.Slices || len(out) != 1 {
					panic(fmt.Sprintf("apps: muxstream ports %d/%d", len(in), len(out)))
				}
				rng := newStageRand(34 + int64(r))
				for i := int64(1); ; i++ {
					parts := make([][]byte, len(in))
					var seq int64
					for s, ip := range in {
						tok := ip.Read(p)
						if s == 0 {
							seq = tok.Seq
						}
						parts[s] = tok.Payload
					}
					muxed := chain32(parts)
					p.Delay(stageDuration(work, rng, len(muxed)))
					out[0].Write(p, kpn.Token{Seq: seq, Stamp: p.Now(), Payload: muxed})
				}
			}
		}},
		kpn.ProcessSpec{Name: "consumer", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
			return kpn.Consumer(cfg.Consumer, 35, cfg.Frames, func(now des.Time, tok kpn.Token) {
				if sink != nil {
					sink(now, tok)
				}
			})
		}},
	)
	chans = append(chans, kpn.ChannelSpec{
		Name: "F_out", From: "muxstream", To: "consumer",
		Capacity: cfg.OutCap, InitialTokens: cfg.OutInit, TokenBytes: cfg.RawBytes() / 4,
	})
	return &kpn.Network{Name: "h264-encoder", Procs: procs, Chans: chans}, nil
}

// ReplicaOutputModel returns a conservative envelope of replica r's
// encoded-bitstream output stream.
func (cfg H264Config) ReplicaOutputModel(r int) rtc.PJD {
	raw := cfg.RawBytes()
	j := cfg.Producer.Jitter +
		cfg.Slice.maxLatencyUs(r, raw) +
		cfg.Enc.maxLatencyUs(r, raw/cfg.Slices) +
		cfg.Mux.maxLatencyUs(r, raw/4) +
		5_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}

// ReplicaInputModel returns a conservative envelope of replica r's
// consumption from the replicator.
func (cfg H264Config) ReplicaInputModel(r int) rtc.PJD {
	j := cfg.Producer.Jitter + cfg.Slice.maxLatencyUs(r, cfg.RawBytes()) +
		cfg.Enc.maxLatencyUs(r, cfg.RawBytes()/cfg.Slices) + 5_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}
