package apps

import (
	"encoding/binary"
	"fmt"
	"math"

	"ftpn/internal/codec/adpcm"
	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// ADPCMConfig parameterizes the ADPCM application (Figure 2, bottom):
// the system provides one 3 KB PCM data sample to the replicator every
// ~6.3 ms; the critical subnetwork is encoder → decoder (the encoder
// performs 4:1 compression, reverted by the decoder); the consumer reads
// reconstructed samples.
type ADPCMConfig struct {
	SamplesPerBlock int   // PCM samples per token (1500 ⇒ 3 KB)
	Blocks          int64 // tokens to produce; <= 0 unbounded

	Producer rtc.PJD // Table 1: <6.3ms, 0.1ms, 6.3ms>
	Consumer rtc.PJD

	Enc StageTiming
	Dec StageTiming

	InCap, MidCap, OutCap int
	OutInit               int

	// Memo, when non-nil, caches the deterministic payload pipeline
	// (PCM synthesis, encode, decode) across runs sharing the config.
	Memo *kpn.PayloadMemo
}

// DefaultADPCMConfig returns the paper's parameters: 3 KB samples every
// 6.3 ms, replica diversity via encoder/decoder jitter tiers.
func DefaultADPCMConfig() ADPCMConfig {
	return ADPCMConfig{
		SamplesPerBlock: 1500, Blocks: 900,
		Producer: pjd(6_300, 100, 6_300),
		Consumer: pjd(6_300, 100, 6_300),
		Enc:      StageTiming{BaseUs: 1_200, PerKBUs: 50, JitterUs: [3]des.Time{500, 1_000, 2_000}},
		Dec:      StageTiming{BaseUs: 900, PerKBUs: 50, JitterUs: [3]des.Time{500, 1_000, 2_000}},
		InCap:    4, MidCap: 4, OutCap: 8, OutInit: 4,
	}
}

// Validate reports whether the configuration is usable.
func (cfg ADPCMConfig) Validate() error {
	if cfg.SamplesPerBlock < 2 || cfg.SamplesPerBlock%2 != 0 {
		return fmt.Errorf("apps: ADPCM samples per block must be even and >= 2, got %d", cfg.SamplesPerBlock)
	}
	if err := cfg.Producer.Validate(); err != nil {
		return err
	}
	return cfg.Consumer.Validate()
}

// BlockBytes returns the PCM token size (the paper's 3 KB).
func (cfg ADPCMConfig) BlockBytes() int { return cfg.SamplesPerBlock * 2 }

// pcmBlock synthesizes deterministic PCM for block i: a few mixed tones
// with slowly varying phase, packed little-endian.
func (cfg ADPCMConfig) pcmBlock(i int64) []byte {
	out := make([]byte, cfg.BlockBytes())
	base := float64(i) * 0.37
	for s := 0; s < cfg.SamplesPerBlock; s++ {
		t := base + float64(s)/48_000
		v := 9000*math.Sin(2*math.Pi*440*t) +
			5000*math.Sin(2*math.Pi*1310*t) +
			2500*math.Sin(2*math.Pi*97*t)
		binary.LittleEndian.PutUint16(out[s*2:], uint16(int16(v)))
	}
	return out
}

// ADPCMNetwork builds the reference process network.
func ADPCMNetwork(cfg ADPCMConfig, sink Sink) (*kpn.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	procs := []kpn.ProcessSpec{
		{Name: "producer", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
			return kpn.Producer(cfg.Producer, 21, cfg.Blocks, cfg.Memo.Gen("adpcm/pcm", cfg.pcmBlock))
		}},
		{Name: "encoder", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.Enc.work(r), 22, cfg.Memo, "adpcm/enc", func(i int64, payload []byte) []byte {
				samples := bytesToPCM(payload)
				block, err := adpcm.EncodeBlock(samples)
				if err != nil {
					panic(fmt.Sprintf("apps: ADPCM encode: %v", err))
				}
				return block
			})
		}},
		{Name: "decoder", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.Dec.work(r), 23, cfg.Memo, "adpcm/dec", func(i int64, payload []byte) []byte {
				samples, err := adpcm.DecodeBlock(payload)
				if err != nil {
					panic(fmt.Sprintf("apps: ADPCM decode: %v", err))
				}
				return pcmToBytes(samples)
			})
		}},
		{Name: "consumer", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
			return kpn.Consumer(cfg.Consumer, 24, cfg.Blocks, func(now des.Time, tok kpn.Token) {
				if sink != nil {
					sink(now, tok)
				}
			})
		}},
	}
	chans := []kpn.ChannelSpec{
		{Name: "F_in", From: "producer", To: "encoder", Capacity: cfg.InCap, TokenBytes: cfg.BlockBytes()},
		{Name: "F_enc", From: "encoder", To: "decoder", Capacity: cfg.MidCap,
			TokenBytes: adpcm.CompressedSize(cfg.SamplesPerBlock)},
		{Name: "F_out", From: "decoder", To: "consumer", Capacity: cfg.OutCap,
			InitialTokens: cfg.OutInit, TokenBytes: cfg.BlockBytes()},
	}
	return &kpn.Network{Name: "adpcm-app", Procs: procs, Chans: chans}, nil
}

// bytesToPCM unpacks little-endian 16-bit samples.
func bytesToPCM(b []byte) []int16 {
	out := make([]int16, len(b)/2)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(b[i*2:]))
	}
	return out
}

// pcmToBytes packs samples little-endian.
func pcmToBytes(s []int16) []byte {
	out := make([]byte, len(s)*2)
	for i, v := range s {
		binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
	}
	return out
}

// ReplicaOutputModel returns a conservative envelope of replica r's
// reconstructed-sample output stream.
func (cfg ADPCMConfig) ReplicaOutputModel(r int) rtc.PJD {
	j := cfg.Producer.Jitter +
		cfg.Enc.maxLatencyUs(r, cfg.BlockBytes()) +
		cfg.Dec.maxLatencyUs(r, adpcm.CompressedSize(cfg.SamplesPerBlock)) +
		2_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}

// ReplicaInputModel returns a conservative envelope of replica r's
// consumption from the replicator.
func (cfg ADPCMConfig) ReplicaInputModel(r int) rtc.PJD {
	j := cfg.Producer.Jitter + cfg.Enc.maxLatencyUs(r, cfg.BlockBytes()) + 2_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}
