package apps

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
)

func TestRadarConfigValidation(t *testing.T) {
	good := DefaultRadarConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Window = 10
	if bad.Validate() == nil {
		t.Error("tiny window should fail")
	}
	bad = good
	bad.Gains = nil
	if bad.Validate() == nil {
		t.Error("mismatched targets/gains should fail")
	}
}

func TestRadarReferenceDetectsTargets(t *testing.T) {
	cfg := DefaultRadarConfig()
	cfg.Intervals = 20
	var toks []kpn.Token
	net, err := RadarNetwork(cfg, func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			toks = append(toks, tok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	if len(toks) == 0 {
		t.Fatal("tracker received nothing")
	}
	dets, err := DetectionsFromToken(toks[0])
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, d := range dets {
		for _, target := range cfg.Targets {
			lo := target + cfg.PulseLen - 10
			hi := target + cfg.PulseLen + 10
			if d.Cell >= lo && d.Cell <= hi {
				found[target] = true
			}
		}
	}
	for _, target := range cfg.Targets {
		if !found[target] {
			t.Errorf("planted target at bin %d not detected (dets=%d)", target, len(dets))
		}
	}
}

func TestRadarDuplicatedEquivalentFaultFree(t *testing.T) {
	cfg := DefaultRadarConfig()
	cfg.Intervals = 30
	sys := runRefAndDup(t, func(sink Sink) (*kpn.Network, error) { return RadarNetwork(cfg, sink) },
		ft.BuildConfig{
			ReplicatorCaps: map[string][2]int{"F_in": {4, 6}},
			SelectorCaps:   map[string][2]int{"F_out": {8, 12}},
			SelectorInits:  map[string][2]int{"F_out": {3, 3}},
			SelectorD:      map[string]int64{"F_out": 6},
		})
	if len(sys.Faults) != 0 {
		t.Errorf("fault-free radar run flagged: %v", sys.Faults)
	}
}
