package apps

import (
	"fmt"

	"ftpn/internal/codec/mjpeg"
	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// MJPEGConfig parameterizes the fault-tolerant MJPEG decoder (Figure 2,
// top): a producer streams encoded frames (one token per frame, split
// into independently decodable horizontal strips), the critical
// subnetwork is splitstream → decode×Strips → mergeframe, and the
// consumer displays decoded frames.
type MJPEGConfig struct {
	Width, Height int
	Strips        int
	Quality       int
	Frames        int64 // tokens to produce; <= 0 means unbounded
	FrameCache    int   // distinct synthetic frames cycled by the producer

	Producer rtc.PJD // encoded-frame inter-arrival model (Table 1: <30ms, 2ms, 30ms>)
	Consumer rtc.PJD // decoded-frame consumption model

	Split StageTiming
	Dec   StageTiming
	Merge StageTiming

	// Channel capacities of the reference network (before eq. 3 sizing
	// of the duplicated system).
	InCap, MidCap, OutCap int
	OutInit               int

	// Memo, when non-nil, caches the deterministic payload pipeline
	// (frame encode, per-strip decode) across runs sharing the config;
	// see kpn.PayloadMemo. Timing and output streams are unaffected.
	Memo *kpn.PayloadMemo
}

// DefaultMJPEGConfig returns the paper's Table 1 parameters: ~30 fps
// encoded input with 2 ms jitter, replica design diversity of 5 ms vs
// 30 ms jitter, and a consumer at the same frame rate. The default
// frame geometry is scaled down from 320×240 so that simulations stay
// fast; virtual-time results are unaffected by pixel count (see
// EXPERIMENTS.md). Use PaperScaleMJPEG for full 320×240 tokens.
func DefaultMJPEGConfig() MJPEGConfig {
	return MJPEGConfig{
		Width: 64, Height: 48, Strips: 3, Quality: 70, Frames: 600, FrameCache: 24,
		Producer: pjd(30_000, 2_000, 30_000),
		Consumer: pjd(30_000, 2_000, 30_000),
		Split:    StageTiming{BaseUs: 300, JitterUs: [3]des.Time{500, 700, 2_000}},
		Dec:      StageTiming{BaseUs: 5_000, PerKBUs: 100, JitterUs: [3]des.Time{2_000, 3_000, 20_000}},
		Merge:    StageTiming{BaseUs: 300, JitterUs: [3]des.Time{500, 1_300, 6_000}},
		InCap:    4, MidCap: 4, OutCap: 8, OutInit: 3,
	}
}

// PaperScaleMJPEG returns the full-scale geometry of the paper: 320×240
// frames (~10 KB encoded, 76.8 KB decoded).
func PaperScaleMJPEG() MJPEGConfig {
	cfg := DefaultMJPEGConfig()
	cfg.Width, cfg.Height = 320, 240
	return cfg
}

// Validate reports whether the configuration is usable.
func (cfg MJPEGConfig) Validate() error {
	if cfg.Strips < 1 {
		return fmt.Errorf("apps: MJPEG needs at least one strip, got %d", cfg.Strips)
	}
	if cfg.Height%(8*cfg.Strips) != 0 || cfg.Width%8 != 0 {
		return fmt.Errorf("apps: MJPEG geometry %dx%d not divisible into %d 8-aligned strips",
			cfg.Width, cfg.Height, cfg.Strips)
	}
	if cfg.FrameCache < 1 {
		return fmt.Errorf("apps: MJPEG frame cache must be positive")
	}
	if err := cfg.Producer.Validate(); err != nil {
		return err
	}
	return cfg.Consumer.Validate()
}

// DecodedBytes returns the decoded-frame token size (the paper's
// 76.8 KB at full scale).
func (cfg MJPEGConfig) DecodedBytes() int { return cfg.Width * cfg.Height }

// encodeFrameStrips encodes synthetic frame i as independently decodable
// horizontal strips packed with chain32.
func (cfg MJPEGConfig) encodeFrameStrips(i int64) []byte {
	stripH := cfg.Height / cfg.Strips
	parts := make([][]byte, cfg.Strips)
	full := mjpeg.TestFrame(cfg.Width, cfg.Height, i)
	for s := 0; s < cfg.Strips; s++ {
		strip := mjpeg.NewFrame(cfg.Width, stripH)
		copy(strip.Pix, full.Pix[s*stripH*cfg.Width:(s+1)*stripH*cfg.Width])
		enc, err := mjpeg.Encode(strip, cfg.Quality)
		if err != nil {
			panic(fmt.Sprintf("apps: MJPEG producer encode: %v", err))
		}
		parts[s] = enc
	}
	return chain32(parts)
}

// MJPEGNetwork builds the reference process network. sink (may be nil)
// receives each decoded frame at the consumer.
func MJPEGNetwork(cfg MJPEGConfig, sink Sink) (*kpn.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cache := make(map[int64][]byte, cfg.FrameCache)
	gen := cfg.Memo.Gen("mjpeg/frames", func(i int64) []byte {
		key := i % int64(cfg.FrameCache)
		if b, ok := cache[key]; ok {
			return b
		}
		b := cfg.encodeFrameStrips(key)
		cache[key] = b
		return b
	})

	procs := []kpn.ProcessSpec{
		{Name: "producer", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
			return kpn.Producer(cfg.Producer, 11, cfg.Frames, gen)
		}},
		{Name: "splitstream", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return splitStreamBehavior(cfg, r)
		}},
	}
	chans := []kpn.ChannelSpec{
		{Name: "F_in", From: "producer", To: "splitstream", Capacity: cfg.InCap, TokenBytes: 12 * 1024},
	}
	for s := 0; s < cfg.Strips; s++ {
		dn := fmt.Sprintf("decode%d", s+1)
		procs = append(procs, kpn.ProcessSpec{Name: dn, Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.Dec.work(r), 100+int64(s), cfg.Memo, "mjpeg/"+dn, func(i int64, payload []byte) []byte {
				f, err := mjpeg.Decode(payload)
				if err != nil {
					panic(fmt.Sprintf("apps: MJPEG decode: %v", err))
				}
				return f.Pix
			})
		}})
		chans = append(chans,
			kpn.ChannelSpec{Name: fmt.Sprintf("F_s%d", s+1), From: "splitstream", To: dn,
				Capacity: cfg.MidCap, TokenBytes: 4 * 1024},
			kpn.ChannelSpec{Name: fmt.Sprintf("F_d%d", s+1), From: dn, To: "mergeframe",
				Capacity: cfg.MidCap, TokenBytes: cfg.DecodedBytes() / cfg.Strips},
		)
	}
	procs = append(procs,
		kpn.ProcessSpec{Name: "mergeframe", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return mergeFrameBehavior(cfg, r)
		}},
		kpn.ProcessSpec{Name: "consumer", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
			return kpn.Consumer(cfg.Consumer, 13, cfg.Frames, func(now des.Time, tok kpn.Token) {
				if sink != nil {
					sink(now, tok)
				}
			})
		}},
	)
	chans = append(chans, kpn.ChannelSpec{
		Name: "F_out", From: "mergeframe", To: "consumer",
		Capacity: cfg.OutCap, InitialTokens: cfg.OutInit, TokenBytes: cfg.DecodedBytes(),
	})
	return &kpn.Network{Name: "mjpeg-decoder", Procs: procs, Chans: chans}, nil
}

// splitStreamBehavior parses one encoded-frame token into per-strip
// tokens, one per decoder output.
func splitStreamBehavior(cfg MJPEGConfig, replica int) kpn.Behavior {
	work := cfg.Split.work(replica)
	return func(p *des.Proc, in []kpn.ReadPort, out []kpn.WritePort) {
		if len(in) != 1 || len(out) != cfg.Strips {
			panic(fmt.Sprintf("apps: splitstream ports %d/%d, want 1/%d", len(in), len(out), cfg.Strips))
		}
		rng := newStageRand(17 + int64(replica))
		for i := int64(1); ; i++ {
			tok := in[0].Read(p)
			p.Delay(stageDuration(work, rng, tok.Size()))
			parts, err := splitChain32(tok.Payload)
			if err != nil || len(parts) != cfg.Strips {
				panic(fmt.Sprintf("apps: splitstream frame %d: %v (%d parts)", tok.Seq, err, len(parts)))
			}
			for s, o := range out {
				o.Write(p, kpn.Token{Seq: tok.Seq, Stamp: p.Now(), Payload: parts[s]})
			}
		}
	}
}

// mergeFrameBehavior reassembles strips into one decoded frame.
func mergeFrameBehavior(cfg MJPEGConfig, replica int) kpn.Behavior {
	work := cfg.Merge.work(replica)
	return func(p *des.Proc, in []kpn.ReadPort, out []kpn.WritePort) {
		if len(in) != cfg.Strips || len(out) != 1 {
			panic(fmt.Sprintf("apps: mergeframe ports %d/%d, want %d/1", len(in), len(out), cfg.Strips))
		}
		rng := newStageRand(19 + int64(replica))
		frame := make([]byte, 0, cfg.DecodedBytes())
		for i := int64(1); ; i++ {
			frame = frame[:0]
			var seq int64
			for s, ip := range in {
				part := ip.Read(p)
				if s == 0 {
					seq = part.Seq
				}
				frame = append(frame, part.Payload...)
			}
			if len(frame) != cfg.DecodedBytes() {
				panic(fmt.Sprintf("apps: mergeframe %d assembled %d bytes, want %d", i, len(frame), cfg.DecodedBytes()))
			}
			p.Delay(stageDuration(work, rng, len(frame)))
			out[0].Write(p, kpn.Token{Seq: seq, Stamp: p.Now(), Payload: append([]byte{}, frame...)})
		}
	}
}

// ReplicaOutputModel returns a conservative PJD envelope for replica r's
// decoded-frame output stream: the producer's period with jitter widened
// by every stage's worst-case latency. Conservative means the envelope
// always contains the actual stream, so eq. 4/5 sizing from it is safe.
func (cfg MJPEGConfig) ReplicaOutputModel(r int) rtc.PJD {
	encTok := 12 * 1024
	decTok := cfg.DecodedBytes()
	j := cfg.Producer.Jitter +
		cfg.Split.maxLatencyUs(r, encTok) +
		cfg.Dec.maxLatencyUs(r, encTok/cfg.Strips) +
		cfg.Merge.maxLatencyUs(r, decTok) +
		5_000 // transfer and scheduling margin
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}

// ReplicaInputModel returns a conservative PJD envelope for replica r's
// consumption from the replicator: it consumes at the producer's rate,
// delayed at worst by the first stage's latency (plus margin).
func (cfg MJPEGConfig) ReplicaInputModel(r int) rtc.PJD {
	j := cfg.Producer.Jitter + cfg.Split.maxLatencyUs(r, 12*1024) + cfg.Dec.maxLatencyUs(r, 4*1024) + 5_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}
