package apps

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/dsp"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// RadarConfig parameterizes a pulse-Doppler-style radar processing
// chain — the class of "streaming applications e.g., radar processing"
// the paper's introduction motivates. One token is one coherent
// processing interval (a window of range samples); the critical
// subnetwork is matchedfilter → envelope → cfar, producing detection
// lists the consumer (tracker) reads at a fixed scan rate.
type RadarConfig struct {
	Window    int // range samples per token
	PulseLen  int
	Targets   []int     // planted echo delays (range bins)
	Gains     []float64 // per-target echo gains
	NoiseAmp  float64
	Guard     int
	Train     int
	Factor    float64
	Intervals int64 // tokens; <= 0 unbounded

	Producer rtc.PJD
	Consumer rtc.PJD

	MF   StageTiming
	Env  StageTiming
	Cfar StageTiming

	InCap, MidCap, OutCap int
	OutInit               int

	// Memo, when non-nil, caches the deterministic payload pipeline
	// (echo synthesis, matched filter, envelope, CFAR) across runs
	// sharing the config.
	Memo *kpn.PayloadMemo
}

// DefaultRadarConfig returns a 10 Hz scan with two planted targets and
// the usual replica jitter diversity.
func DefaultRadarConfig() RadarConfig {
	return RadarConfig{
		Window: 2048, PulseLen: 64,
		Targets: []int{700, 1400}, Gains: []float64{1, 0.8},
		NoiseAmp: 0.03, Guard: 8, Train: 24, Factor: 3,
		Intervals: 400,
		Producer:  pjd(100_000, 5_000, 100_000),
		Consumer:  pjd(100_000, 5_000, 100_000),
		MF:        StageTiming{BaseUs: 20_000, PerKBUs: 100, JitterUs: [3]des.Time{5_000, 8_000, 30_000}},
		Env:       StageTiming{BaseUs: 3_000, JitterUs: [3]des.Time{1_000, 2_000, 8_000}},
		Cfar:      StageTiming{BaseUs: 6_000, JitterUs: [3]des.Time{2_000, 3_000, 12_000}},
		InCap:     4, MidCap: 4, OutCap: 8, OutInit: 3,
	}
}

// Validate reports whether the configuration is usable.
func (cfg RadarConfig) Validate() error {
	if cfg.Window < 2*cfg.PulseLen || cfg.PulseLen < 8 {
		return fmt.Errorf("apps: radar window %d / pulse %d too small", cfg.Window, cfg.PulseLen)
	}
	if len(cfg.Targets) != len(cfg.Gains) {
		return fmt.Errorf("apps: radar %d targets vs %d gains", len(cfg.Targets), len(cfg.Gains))
	}
	if err := cfg.Producer.Validate(); err != nil {
		return err
	}
	return cfg.Consumer.Validate()
}

// RadarNetwork builds the reference radar process network. Each
// consumer token's payload is the packed (cell, value) detection list.
func RadarNetwork(cfg RadarConfig, sink Sink) (*kpn.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pulse, err := dsp.Chirp(cfg.PulseLen, 0.05, 0.2)
	if err != nil {
		return nil, err
	}

	gen := cfg.Memo.Gen("radar/echo", func(i int64) []byte {
		sig, err := dsp.AddEchoes(cfg.Window, pulse, cfg.Targets, cfg.Gains, cfg.NoiseAmp, 1000+i%16)
		if err != nil {
			panic(fmt.Sprintf("apps: radar echo synthesis: %v", err))
		}
		return dsp.PackF64(sig)
	})

	procs := []kpn.ProcessSpec{
		{Name: "frontend", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
			return kpn.Producer(cfg.Producer, 51, cfg.Intervals, gen)
		}},
		{Name: "matchedfilter", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.MF.work(r), 52, cfg.Memo, "radar/mf", func(i int64, payload []byte) []byte {
				x, err := dsp.UnpackF64(payload)
				if err != nil {
					panic(err)
				}
				return dsp.PackF64(dsp.MatchedFilter(x, pulse))
			})
		}},
		{Name: "envelope", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.Env.work(r), 53, cfg.Memo, "radar/env", func(i int64, payload []byte) []byte {
				x, err := dsp.UnpackF64(payload)
				if err != nil {
					panic(err)
				}
				return dsp.PackF64(dsp.Envelope(x, 8))
			})
		}},
		{Name: "cfar", Role: kpn.RoleCritical, New: func(r int) kpn.Behavior {
			return kpn.MemoTransform(cfg.Cfar.work(r), 54, cfg.Memo, "radar/cfar", func(i int64, payload []byte) []byte {
				x, err := dsp.UnpackF64(payload)
				if err != nil {
					panic(err)
				}
				dets, err := dsp.CACFAR(x, cfg.Guard, cfg.Train, cfg.Factor)
				if err != nil {
					panic(err)
				}
				flat := make([]float64, 0, 2*len(dets))
				for _, d := range dets {
					flat = append(flat, float64(d.Cell), d.Value)
				}
				return dsp.PackF64(flat)
			})
		}},
		{Name: "tracker", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
			return kpn.Consumer(cfg.Consumer, 55, cfg.Intervals, func(now des.Time, tok kpn.Token) {
				if sink != nil {
					sink(now, tok)
				}
			})
		}},
	}
	chans := []kpn.ChannelSpec{
		{Name: "F_in", From: "frontend", To: "matchedfilter", Capacity: cfg.InCap, TokenBytes: 8 * cfg.Window},
		{Name: "F_mf", From: "matchedfilter", To: "envelope", Capacity: cfg.MidCap, TokenBytes: 8 * cfg.Window},
		{Name: "F_env", From: "envelope", To: "cfar", Capacity: cfg.MidCap, TokenBytes: 8 * cfg.Window},
		{Name: "F_out", From: "cfar", To: "tracker", Capacity: cfg.OutCap,
			InitialTokens: cfg.OutInit, TokenBytes: 512},
	}
	return &kpn.Network{Name: "radar", Procs: procs, Chans: chans}, nil
}

// DetectionsFromToken unpacks a tracker token back into CFAR hits.
func DetectionsFromToken(tok kpn.Token) ([]dsp.Detection, error) {
	flat, err := dsp.UnpackF64(tok.Payload)
	if err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("apps: odd detection payload")
	}
	dets := make([]dsp.Detection, 0, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		dets = append(dets, dsp.Detection{Cell: int(flat[i]), Value: flat[i+1]})
	}
	return dets, nil
}

// ReplicaOutputModel returns a conservative envelope of replica r's
// detection-list output stream.
func (cfg RadarConfig) ReplicaOutputModel(r int) rtc.PJD {
	tokB := 8 * cfg.Window
	j := cfg.Producer.Jitter +
		cfg.MF.maxLatencyUs(r, tokB) +
		cfg.Env.maxLatencyUs(r, tokB) +
		cfg.Cfar.maxLatencyUs(r, tokB) +
		5_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}

// ReplicaInputModel returns a conservative envelope of replica r's
// consumption from the replicator.
func (cfg RadarConfig) ReplicaInputModel(r int) rtc.PJD {
	j := cfg.Producer.Jitter + cfg.MF.maxLatencyUs(r, 8*cfg.Window) + 5_000
	return rtc.PJD{Period: cfg.Producer.Period, Jitter: j}
}
