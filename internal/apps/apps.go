// Package apps builds the paper's three benchmark applications as
// real-time process networks (Figure 2): the MJPEG decoder, the ADPCM
// encoder+decoder application and the H.264 encoder. Every network has
// one producer, one consumer and a critical subnetwork in between, with
// timing parameters from Table 1 expressed as <period, jitter, delay>
// PJD tuples in microseconds. The critical stages carry real codec
// payloads (packages codec/mjpeg, codec/adpcm, codec/h264), so the
// networks are determinate and value equivalence between the reference
// and duplicated systems is checkable, not assumed.
package apps

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// newStageRand seeds a deterministic per-stage random source.
func newStageRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// stageDuration draws one execution time from a stage's work model.
func stageDuration(w kpn.WorkModel, rng *rand.Rand, bytes int) des.Time {
	return w.Duration(rng, bytes)
}

// StageTiming is the execution-time model of one critical stage per
// replica: Base plus a per-replica jitter (the paper's design diversity,
// Table 1: e.g. replica 1 <30,5,30> vs replica 2 <30,30,30>).
type StageTiming struct {
	BaseUs    des.Time
	JitterUs  [3]des.Time // indexed by replica: 0 = reference, 1, 2
	PerKBUs   des.Time
	SeedDelta int64
}

// work returns the kpn.WorkModel for a replica instance.
func (s StageTiming) work(replica int) kpn.WorkModel {
	return kpn.WorkModel{BaseUs: s.BaseUs, PerKBUs: s.PerKBUs, JitterUs: s.JitterUs[replica]}
}

// maxLatencyUs bounds the stage's per-token latency for a replica, for a
// nominal token size.
func (s StageTiming) maxLatencyUs(replica int, tokenBytes int) des.Time {
	return s.BaseUs + s.PerKBUs*des.Time(tokenBytes)/1024 + s.JitterUs[replica]
}

// Sink receives the consumer's tokens.
type Sink func(now des.Time, tok kpn.Token)

// chain32 frames a sequence of byte slices with u32 length prefixes, the
// container the MJPEG and H.264 producers use to pack per-strip
// bitstreams into one token.
func chain32(parts [][]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	var l [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(l[:], uint32(len(p)))
		out = append(out, l[:]...)
		out = append(out, p...)
	}
	return out
}

// splitChain32 reverses chain32.
func splitChain32(data []byte) ([][]byte, error) {
	var parts [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("apps: truncated chain header")
		}
		n := int(binary.BigEndian.Uint32(data[:4]))
		data = data[4:]
		if n > len(data) {
			return nil, fmt.Errorf("apps: chain part length %d exceeds remaining %d", n, len(data))
		}
		parts = append(parts, data[:n])
		data = data[n:]
	}
	return parts, nil
}

// pjd is shorthand for building tuples in microseconds.
func pjd(period, jitter, dist des.Time) rtc.PJD {
	return rtc.PJD{Period: period, Jitter: jitter, MinDist: dist}
}
