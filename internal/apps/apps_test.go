package apps

import (
	"bytes"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
)

func TestChain32RoundTrip(t *testing.T) {
	parts := [][]byte{{1, 2, 3}, {}, {9}, bytes.Repeat([]byte{7}, 300)}
	got, err := splitChain32(chain32(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("got %d parts, want %d", len(got), len(parts))
	}
	for i := range parts {
		if !bytes.Equal(got[i], parts[i]) {
			t.Errorf("part %d differs", i)
		}
	}
}

func TestChain32Corrupt(t *testing.T) {
	if _, err := splitChain32([]byte{0, 0}); err == nil {
		t.Error("truncated header should fail")
	}
	if _, err := splitChain32([]byte{0, 0, 0, 9, 1}); err == nil {
		t.Error("short body should fail")
	}
}

func TestMJPEGConfigValidation(t *testing.T) {
	good := DefaultMJPEGConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Strips = 0
	if bad.Validate() == nil {
		t.Error("zero strips should fail")
	}
	bad = good
	bad.Height = 50 // not divisible into 8-aligned strips
	if bad.Validate() == nil {
		t.Error("bad geometry should fail")
	}
	bad = good
	bad.FrameCache = 0
	if bad.Validate() == nil {
		t.Error("zero cache should fail")
	}
	if PaperScaleMJPEG().DecodedBytes() != 76800 {
		t.Errorf("paper-scale decoded frame = %d bytes, want 76800 (76.8 KB)", PaperScaleMJPEG().DecodedBytes())
	}
}

func TestMJPEGReferenceEndToEnd(t *testing.T) {
	cfg := DefaultMJPEGConfig()
	cfg.Frames = 40
	var frames []kpn.Token
	net, err := MJPEGNetwork(cfg, func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			frames = append(frames, tok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	if len(frames) != int(cfg.Frames)-cfg.OutInit {
		t.Fatalf("consumer saw %d produced frames, want %d", len(frames), int(cfg.Frames)-cfg.OutInit)
	}
	for _, f := range frames {
		if f.Size() != cfg.DecodedBytes() {
			t.Fatalf("decoded frame %d has %d bytes, want %d", f.Seq, f.Size(), cfg.DecodedBytes())
		}
	}
}

func TestADPCMReferenceEndToEnd(t *testing.T) {
	cfg := DefaultADPCMConfig()
	cfg.Blocks = 60
	var blocks []kpn.Token
	net, err := ADPCMNetwork(cfg, func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			blocks = append(blocks, tok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	if len(blocks) != int(cfg.Blocks)-cfg.OutInit {
		t.Fatalf("consumer saw %d blocks, want %d", len(blocks), int(cfg.Blocks)-cfg.OutInit)
	}
	// Reconstructed block is 3 KB PCM and approximates the original.
	orig := bytesToPCM(cfg.pcmBlock(0))
	got := bytesToPCM(blocks[0].Payload)
	if len(got) != len(orig) {
		t.Fatalf("block has %d samples, want %d", len(got), len(orig))
	}
	var worst int
	for i := 256; i < len(orig); i++ {
		d := int(orig[i]) - int(got[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 3000 {
		t.Errorf("ADPCM reconstruction error %d too high", worst)
	}
}

func TestADPCMConfigValidation(t *testing.T) {
	bad := DefaultADPCMConfig()
	bad.SamplesPerBlock = 3
	if bad.Validate() == nil {
		t.Error("odd samples should fail")
	}
	if DefaultADPCMConfig().BlockBytes() != 3000 {
		t.Errorf("block = %d bytes, want 3000 (3 KB)", DefaultADPCMConfig().BlockBytes())
	}
}

func TestH264ReferenceEndToEnd(t *testing.T) {
	cfg := DefaultH264Config()
	cfg.Frames = 40
	var toks []kpn.Token
	net, err := H264Network(cfg, func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			toks = append(toks, tok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	if len(toks) != int(cfg.Frames)-cfg.OutInit {
		t.Fatalf("consumer saw %d tokens, want %d", len(toks), int(cfg.Frames)-cfg.OutInit)
	}
	// Each token is a chain of per-slice bitstreams that decode back to
	// the raw slices.
	parts, err := splitChain32(toks[0].Payload)
	if err != nil || len(parts) != cfg.Slices {
		t.Fatalf("mux token: %v, %d parts", err, len(parts))
	}
}

func TestH264ConfigValidation(t *testing.T) {
	bad := DefaultH264Config()
	bad.QP = 99
	if bad.Validate() == nil {
		t.Error("bad QP should fail")
	}
	bad = DefaultH264Config()
	bad.Slices = 5 // 48 not divisible by 4*5
	if bad.Validate() == nil {
		t.Error("bad slicing should fail")
	}
}

// runRefAndDup runs the reference and duplicated instances of a network
// builder and compares consumer streams (produced tokens only).
func runRefAndDup(t *testing.T, build func(sink Sink) (*kpn.Network, error), cfg ft.BuildConfig) *ft.System {
	t.Helper()
	var ref, dup []kpn.Token
	refNet, err := build(func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			ref = append(ref, tok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k1 := des.NewKernel()
	if _, err := refNet.Instantiate(k1, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k1.Run(0)
	k1.Shutdown()

	dupNet, err := build(func(now des.Time, tok kpn.Token) {
		if tok.Seq > 0 {
			dup = append(dup, tok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k2 := des.NewKernel()
	sys, err := ft.Build(k2, dupNet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2.Run(0)
	k2.Shutdown()

	if len(ref) != len(dup) {
		t.Fatalf("stream lengths: ref %d, dup %d", len(ref), len(dup))
	}
	for i := range ref {
		if ref[i].Seq != dup[i].Seq || ref[i].Hash() != dup[i].Hash() {
			t.Fatalf("token %d differs between reference and duplicated runs", i)
		}
	}
	return sys
}

func TestMJPEGDuplicatedEquivalentFaultFree(t *testing.T) {
	cfg := DefaultMJPEGConfig()
	cfg.Frames = 60
	sys := runRefAndDup(t, func(sink Sink) (*kpn.Network, error) { return MJPEGNetwork(cfg, sink) },
		ft.BuildConfig{
			ReplicatorCaps: map[string][2]int{"F_in": {6, 8}},
			SelectorCaps:   map[string][2]int{"F_out": {8, 12}},
			SelectorInits:  map[string][2]int{"F_out": {3, 3}},
			SelectorD:      map[string]int64{"F_out": 6},
		})
	if len(sys.Faults) != 0 {
		t.Errorf("fault-free MJPEG run flagged: %v", sys.Faults)
	}
}

func TestADPCMDuplicatedEquivalentFaultFree(t *testing.T) {
	cfg := DefaultADPCMConfig()
	cfg.Blocks = 80
	sys := runRefAndDup(t, func(sink Sink) (*kpn.Network, error) { return ADPCMNetwork(cfg, sink) },
		ft.BuildConfig{
			ReplicatorCaps: map[string][2]int{"F_in": {4, 6}},
			SelectorCaps:   map[string][2]int{"F_out": {8, 10}},
			SelectorInits:  map[string][2]int{"F_out": {4, 4}},
			SelectorD:      map[string]int64{"F_out": 5},
		})
	if len(sys.Faults) != 0 {
		t.Errorf("fault-free ADPCM run flagged: %v", sys.Faults)
	}
}

func TestH264DuplicatedEquivalentFaultFree(t *testing.T) {
	cfg := DefaultH264Config()
	cfg.Frames = 60
	sys := runRefAndDup(t, func(sink Sink) (*kpn.Network, error) { return H264Network(cfg, sink) },
		ft.BuildConfig{
			ReplicatorCaps: map[string][2]int{"F_in": {6, 8}},
			SelectorCaps:   map[string][2]int{"F_out": {8, 12}},
			SelectorInits:  map[string][2]int{"F_out": {3, 3}},
			SelectorD:      map[string]int64{"F_out": 6},
		})
	if len(sys.Faults) != 0 {
		t.Errorf("fault-free H264 run flagged: %v", sys.Faults)
	}
}

// TestReplicaOutputModelEnvelope checks that the conservative PJD
// envelope really contains the observed replica output stream.
func TestReplicaOutputModelEnvelope(t *testing.T) {
	cfg := DefaultADPCMConfig()
	cfg.Blocks = 120
	net, err := ADPCMNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, ft.BuildConfig{
		SelectorCaps:  map[string][2]int{"F_out": {16, 16}},
		SelectorInits: map[string][2]int{"F_out": {4, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	sel := sys.Selectors["F_out"]
	// Writes per interface over the whole run must respect the upper
	// envelope of the output model (weak check via totals).
	for r := 1; r <= 2; r++ {
		model := cfg.ReplicaOutputModel(r)
		span := des.Time(cfg.Blocks) * cfg.Producer.Period * 2
		upper := model.Upper().Eval(span)
		if sel.Writes(r) > upper {
			t.Errorf("replica %d wrote %d tokens, above envelope %d", r, sel.Writes(r), upper)
		}
	}
}
