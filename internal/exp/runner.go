package exp

// Parallel experiment execution. Every simulation run (a des.Kernel plus
// the network built on it) is fully self-contained, so the per-run fault
// simulations of Table 2 and Table 3 are embarrassingly parallel. The
// runner executes runs on a bounded worker pool and hands results back
// in run-index order, which keeps aggregation — and therefore every
// rendered table — bit-identical to a sequential execution.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runConfig collects the experiment-execution options.
type runConfig struct {
	workers int
	opCosts bool // measure host-time per channel op (wall-clock, nondeterministic)
}

// Option configures how an experiment executes (not what it computes).
type Option func(*runConfig)

// WithParallelism sets the number of worker goroutines used for
// independent simulation runs. n <= 1 means sequential; the default is
// runtime.GOMAXPROCS(0). Results are aggregated in run order either
// way, so the parallelism level never changes an experiment's output.
func WithParallelism(n int) Option {
	return func(c *runConfig) { c.workers = n }
}

// WithoutOpCosts skips the host wall-clock measurement of per-operation
// overhead (Table2Result.SelOpNs/RepOpNs stay zero). The measurement is
// the only nondeterministic part of a result; tests comparing rendered
// output across executions disable it.
func WithoutOpCosts() Option {
	return func(c *runConfig) { c.opCosts = false }
}

// newRunConfig applies options over the defaults.
func newRunConfig(opts []Option) runConfig {
	c := runConfig{workers: runtime.GOMAXPROCS(0), opCosts: true}
	for _, o := range opts {
		o(&c)
	}
	if c.workers < 1 {
		c.workers = 1
	}
	return c
}

// runIndexed executes fn(0..n-1) on up to `workers` goroutines and
// returns the results in index order. On error it returns the error of
// the lowest-numbered failing run (matching what a sequential loop
// would report). With workers <= 1 it degenerates to a plain loop.
func runIndexed[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
