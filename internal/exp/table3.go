package exp

import (
	"fmt"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/detect"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/trace"
)

// Table3Row compares fault-detection latency of the paper's counter
// framework against the distance-function baseline for one application.
type Table3Row struct {
	App    string
	Ours   trace.Stats // µs
	DF     trace.Stats // µs
	PollUs des.Time
	// Undetected counts runs where either method missed the fault.
	Undetected int
}

// Table3 reproduces the paper's comparison (§4.3, Table 3): replica
// timing variations are minimized (the l = 1 distance-function regime),
// a stop-consuming fault is injected, and both detectors watch the same
// monitoring point — the faulty replica's consumption at the replicator.
// The distance-function monitor is configured with the maximum-distance
// bound that gives the same no-false-positive guarantee as the
// replicator's queue-full rule (the analytic replicator bound), mirroring
// the paper's fail-silent modification of the baseline; it polls with
// period pollUs (the paper uses 1 ms), which is exactly where its extra
// latency comes from.
func Table3(runs int, pollUs, tokens des.Time, opts ...Option) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range []string{"mjpeg", "adpcm", "h264"} {
		row, err := table3App(name, runs, pollUs, int64(tokens), opts...)
		if err != nil {
			return nil, fmt.Errorf("exp: table 3 %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table3Run is one run's outcome, aggregated in run order.
type table3Run struct {
	undetected bool
	ours, df   des.Time
}

// table3App measures one application's row. Runs execute on the worker
// pool (WithParallelism), each with a private kernel and monitor.
func table3App(name string, runs int, pollUs des.Time, tokens int64, opts ...Option) (Table3Row, error) {
	app, err := AppByName(name, true, tokens) // minimized jitter, as §4.3 prescribes
	if err != nil {
		return Table3Row{}, err
	}
	sizing, err := SizingFor(app)
	if err != nil {
		return Table3Row{}, err
	}
	cfg := newRunConfig(opts)
	row := Table3Row{App: app.Name, PollUs: pollUs}
	warmup := des.Time(app.Tokens/2) * app.PeriodUs

	outcomes, err := runIndexed(cfg.workers, runs, func(j int) (table3Run, error) {
		replica := 1 + j%2
		injectAt := warmup + des.Time(j)*app.PeriodUs/des.Time(runs)

		net, err := app.Build(nil)
		if err != nil {
			return table3Run{}, err
		}
		k := des.NewKernel()
		sys, err := ft.Build(k, net, sizing.BuildConfig(app))
		if err != nil {
			return table3Run{}, err
		}
		// Distance-function baseline on the same stream, same evidence.
		mon := detect.NewDistanceMonitor(k, app.InChan, pollUs,
			[]des.Time{sizing.RepBoundUs}, nil)
		sys.Replicators[app.InChan].SetReadHook(replica, func(now des.Time) { mon.OnEvent(now) })
		mon.Start()

		sys.InjectFault(replica, injectAt, fault.StopConsuming, 0)
		k.Run(des.Time(app.Tokens) * app.PeriodUs * 3)
		k.Shutdown()

		ours := des.Time(-1)
		for _, f := range sys.Faults {
			if f.Replica == replica && f.Channel == app.InChan {
				ours = f.At - injectAt
				break
			}
		}
		dfOK, dfAt := mon.Faulty()
		if ours < 0 || !dfOK || dfAt < injectAt {
			return table3Run{undetected: true}, nil
		}
		return table3Run{ours: ours, df: dfAt - injectAt}, nil
	})
	if err != nil {
		return row, err
	}
	for _, o := range outcomes {
		if o.undetected {
			row.Undetected++
			continue
		}
		row.Ours.Add(o.ours)
		row.DF.Add(o.df)
	}
	return row, nil
}

// Table3ADPCMOnly measures only the ADPCM row; the polling-granularity
// ablation bench sweeps pollUs through it.
func Table3ADPCMOnly(runs int, pollUs des.Time, tokens int64, opts ...Option) (Table3Row, error) {
	return table3App("adpcm", runs, pollUs, tokens, opts...)
}

// FormatTable3 renders the comparison paper-style.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Fault Detection Latency (ms) — ours vs distance-function\n")
	fmt.Fprintf(&b, "  %-20s  %26s  %26s\n", "Application",
		"Distance Function (max/min/mean)", "Our Approach (max/min/mean)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s  %8s %8s %8s  %8s %8s %8s   (poll %s ms, undetected %d)\n",
			r.App,
			usToMS(r.DF.Max()), usToMS(r.DF.Min()), usToMS(r.DF.Mean()),
			usToMS(r.Ours.Max()), usToMS(r.Ours.Min()), usToMS(r.Ours.Mean()),
			usToMS(int64(r.PollUs)), r.Undetected)
	}
	return b.String()
}
