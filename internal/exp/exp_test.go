package exp

import (
	"strings"
	"testing"

	"ftpn/internal/des"
)

func TestAppByName(t *testing.T) {
	for _, n := range []string{"mjpeg", "adpcm", "h264"} {
		app, err := AppByName(n, false, 50)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if app.Tokens != 50 {
			t.Errorf("%s tokens = %d, want 50", n, app.Tokens)
		}
	}
	if _, err := AppByName("nope", false, 0); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestComputeSizingShapes(t *testing.T) {
	for _, n := range []string{"mjpeg", "adpcm", "h264"} {
		app, _ := AppByName(n, false, 100)
		s, err := ComputeSizing(app)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		// Replica 2 has more jitter than replica 1, so its queues and
		// credits must be at least as large (the paper's asymmetric
		// 2/3, 4/6, 2/3 pattern).
		if s.RepCaps[1] < s.RepCaps[0] {
			t.Errorf("%s: |R2|=%d < |R1|=%d", n, s.RepCaps[1], s.RepCaps[0])
		}
		if s.SelCaps[1] < s.SelCaps[0] || s.SelInits[1] < s.SelInits[0] {
			t.Errorf("%s: selector sizing not ordered: %v %v", n, s.SelCaps, s.SelInits)
		}
		// |S_k| = 2 |S_k|_0 as in Table 2.
		if s.SelCaps[0] != 2*s.SelInits[0] || s.SelCaps[1] != 2*s.SelInits[1] {
			t.Errorf("%s: caps %v != 2*inits %v", n, s.SelCaps, s.SelInits)
		}
		if s.D < 2 {
			t.Errorf("%s: D = %d, want >= 2", n, s.D)
		}
		if s.SelBoundUs <= 0 || s.RepBoundUs <= 0 {
			t.Errorf("%s: non-positive bounds %d %d", n, s.SelBoundUs, s.RepBoundUs)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 18 {
		t.Fatalf("Table 1 has %d rows, want 18", len(rows))
	}
	out := FormatTable1(rows)
	for _, want := range []string{"MJPEG Decoder", "ADPCM Application", "H.264 Encoder", "<30,2,30>", "<6.3,0.1,6.3>", "Bandwidth"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ADPCM(t *testing.T) {
	app := ADPCMApp(false, 160)
	res, err := Table2(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape 1: observed fill never exceeds the analytic capacity.
	if res.RepMaxFill[0] > res.Sizing.RepCaps[0] || res.RepMaxFill[1] > res.Sizing.RepCaps[1] {
		t.Errorf("replicator fill %v exceeds caps %v", res.RepMaxFill, res.Sizing.RepCaps)
	}
	if res.SelMaxFill > max(res.Sizing.SelCaps[0], res.Sizing.SelCaps[1]) {
		t.Errorf("selector fill %d exceeds cap %v", res.SelMaxFill, res.Sizing.SelCaps)
	}
	// Paper shape 2: every fault detected, within the analytic bound,
	// with no false positives.
	if res.Undetected != 0 || res.FalsePos != 0 {
		t.Fatalf("undetected=%d falsePos=%d", res.Undetected, res.FalsePos)
	}
	if res.SelLatency.Max() > res.Sizing.SelBoundUs {
		t.Errorf("selector latency max %d > bound %d", res.SelLatency.Max(), res.Sizing.SelBoundUs)
	}
	if res.RepLatency.Max() > res.Sizing.RepBoundUs {
		t.Errorf("replicator latency max %d > bound %d", res.RepLatency.Max(), res.Sizing.RepBoundUs)
	}
	// Paper shape 3: reference and duplicated timing equivalent (mean
	// inter-arrival within 5%).
	rm, dm := res.RefInter.Mean(), res.DupInter.Mean()
	if rm <= 0 || dm <= 0 {
		t.Fatalf("inter-arrival means %d %d", rm, dm)
	}
	diff := rm - dm
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(rm) {
		t.Errorf("duplicated inter-arrival mean %d deviates from reference %d", dm, rm)
	}
	// Rendering includes the headline rows.
	out := res.String()
	for _, want := range []string{"Theoretical capacity", "Fault detection latency", "upper bound", "Overhead", "inter-arrival"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestTable2MJPEG(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	app := MJPEGApp(false, 120)
	res, err := Table2(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undetected != 0 || res.FalsePos != 0 {
		t.Fatalf("undetected=%d falsePos=%d\n%s", res.Undetected, res.FalsePos, res.String())
	}
	if res.SelLatency.Max() > res.Sizing.SelBoundUs || res.RepLatency.Max() > res.Sizing.RepBoundUs {
		t.Errorf("latency exceeds bound:\n%s", res.String())
	}
}

func TestTable2H264(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	app := H264App(false, 120)
	res, err := Table2(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undetected != 0 || res.FalsePos != 0 {
		t.Fatalf("undetected=%d falsePos=%d\n%s", res.Undetected, res.FalsePos, res.String())
	}
}

func TestTable2BadRuns(t *testing.T) {
	if _, err := Table2(ADPCMApp(false, 10), 0); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestTable3ShapeOursBeatsPolling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table3(4, 1000, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Undetected != 0 {
			t.Errorf("%s: %d undetected", r.App, r.Undetected)
		}
		if r.Ours.Count() == 0 || r.DF.Count() == 0 {
			t.Fatalf("%s: no samples", r.App)
		}
		// Paper shape: both methods detect within the same order of
		// magnitude, and ours (event-driven counters) does not trail the
		// polled distance function by more than one poll period on mean.
		if r.Ours.Mean() > r.DF.Mean()+int64(r.PollUs) {
			t.Errorf("%s: ours mean %d worse than DF mean %d + poll", r.App, r.Ours.Mean(), r.DF.Mean())
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Distance Function") {
		t.Error("Table 3 rendering incomplete")
	}
}

func TestTable3PollGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// §4.3: finer polling improves the baseline. Compare ADPCM rows at
	// 5 ms vs 0.2 ms poll.
	coarse, err := table3App("adpcm", 4, 5000, 140)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := table3App("adpcm", 4, 200, 140)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.DF.Mean() < fine.DF.Mean() {
		t.Errorf("coarse poll DF mean %d < fine poll %d; expected polling penalty", coarse.DF.Mean(), fine.DF.Mean())
	}
	// Our latency must be unaffected by the baseline's poll period.
	d := coarse.Ours.Mean() - fine.Ours.Mean()
	if d < 0 {
		d = -d
	}
	if d > int64(coarse.Ours.Mean()/4+1000) {
		t.Errorf("our latency should not depend on poll period: %d vs %d", coarse.Ours.Mean(), fine.Ours.Mean())
	}
}

func TestBoundForCount(t *testing.T) {
	app := ADPCMApp(false, 10)
	b, err := boundForCount(app.Producer.Lower(), 3, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// floor((Δ-100)/6300) >= 3 at Δ = 3*6300+100.
	if b != 3*6300+100 {
		t.Errorf("bound = %d, want %d", b, 3*6300+100)
	}
	if _, err := boundForCount(des0Curve{}, 1, 100); err == nil {
		t.Error("unreachable count should fail")
	}
}

// des0Curve is a zero curve helper for the error path.
type des0Curve struct{}

func (des0Curve) Eval(delta des.Time) int64 { return 0 }

func TestFillProfile(t *testing.T) {
	app := ADPCMApp(false, 120)
	samples, sizing, err := FillProfile(app, 1, app.PeriodUs)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	injectAt := des.Time(app.Tokens/2) * app.PeriodUs
	var sawFull bool
	for _, s := range samples {
		if s.RepFill[0] > sizing.RepCaps[0] || s.RepFill[1] > sizing.RepCaps[1] {
			t.Fatalf("fill exceeds capacity at t=%d: %v vs %v", s.At, s.RepFill, sizing.RepCaps)
		}
		if s.At > injectAt && s.RepFill[0] == sizing.RepCaps[0] {
			sawFull = true
		}
		if s.At < injectAt && s.SelSpace[0] > int64(sizing.SelCaps[0]) {
			t.Fatalf("pre-fault space runaway at t=%d", s.At)
		}
	}
	if !sawFull {
		t.Error("faulty replica's queue never reached capacity after the fault")
	}
	out := FormatFillProfile(samples, sizing, app, 1)
	if !strings.Contains(out, "fault injected") {
		t.Errorf("profile rendering missing fault marker:\n%s", out)
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	err := WriteReport(&buf, ReportConfig{Runs: 2, Tokens: 80, PollUs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2 — MJPEG Decoder", "Table 2 — ADPCM Application",
		"Table 2 — H.264 Encoder", "Table 3", "fault injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := WriteReport(&buf, ReportConfig{Runs: 0}); err == nil {
		t.Error("zero runs should fail")
	}
	if DefaultReportConfig().Runs != 20 {
		t.Error("default report config should mirror the paper's 20 runs")
	}
}

func TestTable2Radar(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	app := RadarApp(false, 100)
	res, err := Table2(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undetected != 0 || res.FalsePos != 0 {
		t.Fatalf("radar: undetected=%d falsePos=%d\n%s", res.Undetected, res.FalsePos, res.String())
	}
	if res.SelLatency.Max() > res.Sizing.SelBoundUs || res.RepLatency.Max() > res.Sizing.RepBoundUs {
		t.Errorf("radar latency exceeds bound:\n%s", res.String())
	}
}
