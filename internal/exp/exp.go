// Package exp regenerates the paper's evaluation: Table 1 (timing
// parameters), Table 2 (analytic sizing vs observed fills, fault
// detection latencies vs bounds, overheads, inter-frame timings) and
// Table 3 (comparison against the distance-function monitor), plus the
// topology figures via the kpn/ft DOT renderers. Absolute times depend
// on the SCC timing model, so the assertions of interest are the
// shapes: observed fill <= analytic capacity, observed latency <=
// analytic bound, no false positives, and the counter-based framework
// matching the distance-function baseline without any runtime timer.
package exp

import (
	"fmt"

	"ftpn/internal/apps"
	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// App bundles everything the harness needs to run one of the paper's
// three applications. Each App value carries its own kpn.PayloadMemo
// (inside the captured config), so repeated Build calls from the same
// App — the fault runs of Table 2, the campaign runs of one cell —
// compute each deterministic stage payload once and share it; build
// separate App values for workloads that must not share.
type App struct {
	Name     string
	Build    func(sink apps.Sink) (*kpn.Network, error)
	Producer rtc.PJD
	Consumer rtc.PJD
	InModel  func(r int) rtc.PJD // replica consumption envelope
	OutModel func(r int) rtc.PJD // replica production envelope
	InChan   string              // replicator channel name
	OutChan  string              // selector channel name
	Tokens   int64               // workload length per run
	PeriodUs des.Time
	// Paper-scale token sizes for the memory-overhead rows.
	InTokenBytes, OutTokenBytes int
	// OutInit is the reference network's initial fill of the consumer
	// FIFO.
	OutInit int
}

// MJPEGApp builds the MJPEG-decoder application descriptor. minJitter
// minimizes replica timing variations (the Table 3 configuration);
// tokens overrides the workload length when positive.
func MJPEGApp(minJitter bool, tokens int64) App {
	cfg := apps.DefaultMJPEGConfig()
	if minJitter {
		cfg = minimizeMJPEG(cfg)
	}
	if tokens > 0 {
		cfg.Frames = tokens
	}
	cfg.Memo = kpn.NewPayloadMemo()
	return App{
		Name:     "MJPEG Decoder",
		Build:    func(sink apps.Sink) (*kpn.Network, error) { return apps.MJPEGNetwork(cfg, sink) },
		Producer: cfg.Producer,
		Consumer: cfg.Consumer,
		InModel:  cfg.ReplicaInputModel,
		OutModel: cfg.ReplicaOutputModel,
		InChan:   "F_in", OutChan: "F_out",
		Tokens:       cfg.Frames,
		PeriodUs:     cfg.Producer.Period,
		InTokenBytes: 10 * 1024, OutTokenBytes: 76800,
		OutInit: cfg.OutInit,
	}
}

func minimizeMJPEG(cfg apps.MJPEGConfig) apps.MJPEGConfig {
	cfg.Producer.Jitter = 200
	cfg.Consumer.Jitter = 200
	for _, st := range []*apps.StageTiming{&cfg.Split, &cfg.Dec, &cfg.Merge} {
		st.JitterUs = [3]des.Time{100, 100, 100}
	}
	return cfg
}

// ADPCMApp builds the ADPCM application descriptor.
func ADPCMApp(minJitter bool, tokens int64) App {
	cfg := apps.DefaultADPCMConfig()
	if tokens > 0 {
		cfg.Blocks = tokens
	}
	if minJitter {
		cfg.Producer.Jitter = 50
		cfg.Consumer.Jitter = 50
		cfg.Enc.JitterUs = [3]des.Time{50, 50, 50}
		cfg.Dec.JitterUs = [3]des.Time{50, 50, 50}
	}
	cfg.Memo = kpn.NewPayloadMemo()
	return App{
		Name:     "ADPCM Application",
		Build:    func(sink apps.Sink) (*kpn.Network, error) { return apps.ADPCMNetwork(cfg, sink) },
		Producer: cfg.Producer,
		Consumer: cfg.Consumer,
		InModel:  cfg.ReplicaInputModel,
		OutModel: cfg.ReplicaOutputModel,
		InChan:   "F_in", OutChan: "F_out",
		Tokens:       cfg.Blocks,
		PeriodUs:     cfg.Producer.Period,
		InTokenBytes: 3 * 1024, OutTokenBytes: 3 * 1024,
		OutInit: cfg.OutInit,
	}
}

// H264App builds the H.264 encoder application descriptor.
func H264App(minJitter bool, tokens int64) App {
	cfg := apps.DefaultH264Config()
	if tokens > 0 {
		cfg.Frames = tokens
	}
	if minJitter {
		cfg.Producer.Jitter = 100
		cfg.Consumer.Jitter = 100
		cfg.Slice.JitterUs = [3]des.Time{100, 100, 100}
		cfg.Enc.JitterUs = [3]des.Time{100, 100, 100}
		cfg.Mux.JitterUs = [3]des.Time{100, 100, 100}
	}
	cfg.Memo = kpn.NewPayloadMemo()
	return App{
		Name:     "H.264 Encoder",
		Build:    func(sink apps.Sink) (*kpn.Network, error) { return apps.H264Network(cfg, sink) },
		Producer: cfg.Producer,
		Consumer: cfg.Consumer,
		InModel:  cfg.ReplicaInputModel,
		OutModel: cfg.ReplicaOutputModel,
		InChan:   "F_in", OutChan: "F_out",
		Tokens:       cfg.Frames,
		PeriodUs:     cfg.Producer.Period,
		InTokenBytes: 76800, OutTokenBytes: 20 * 1024,
		OutInit: cfg.OutInit,
	}
}

// RadarApp builds the radar application descriptor — the fourth,
// intro-motivated workload beyond the paper's three (see DESIGN.md §6).
func RadarApp(minJitter bool, tokens int64) App {
	cfg := apps.DefaultRadarConfig()
	if tokens > 0 {
		cfg.Intervals = tokens
	}
	if minJitter {
		cfg.Producer.Jitter = 500
		cfg.Consumer.Jitter = 500
		cfg.MF.JitterUs = [3]des.Time{500, 500, 500}
		cfg.Env.JitterUs = [3]des.Time{500, 500, 500}
		cfg.Cfar.JitterUs = [3]des.Time{500, 500, 500}
	}
	cfg.Memo = kpn.NewPayloadMemo()
	return App{
		Name:     "Radar Chain",
		Build:    func(sink apps.Sink) (*kpn.Network, error) { return apps.RadarNetwork(cfg, sink) },
		Producer: cfg.Producer,
		Consumer: cfg.Consumer,
		InModel:  cfg.ReplicaInputModel,
		OutModel: cfg.ReplicaOutputModel,
		InChan:   "F_in", OutChan: "F_out",
		Tokens:       cfg.Intervals,
		PeriodUs:     cfg.Producer.Period,
		InTokenBytes: 8 * cfg.Window, OutTokenBytes: 512,
		OutInit: cfg.OutInit,
	}
}

// AppByName resolves "mjpeg", "adpcm", "h264" or "radar"; tokens
// overrides the workload length when positive.
func AppByName(name string, minJitter bool, tokens int64) (App, error) {
	switch name {
	case "mjpeg":
		return MJPEGApp(minJitter, tokens), nil
	case "adpcm":
		return ADPCMApp(minJitter, tokens), nil
	case "h264":
		return H264App(minJitter, tokens), nil
	case "radar":
		return RadarApp(minJitter, tokens), nil
	default:
		return App{}, fmt.Errorf("exp: unknown application %q (want mjpeg, adpcm, h264 or radar)", name)
	}
}
