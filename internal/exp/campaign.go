package exp

// Randomized fault-injection campaign with machine-checked invariants.
// Each run draws a scenario — application, jitter tier, fault mode,
// faulty replica, injection time, recovery delay, settle time and an
// optional second fault — from a seeded PRNG, executes the duplicated
// system with a recovery manager attached, and checks the framework's
// end-to-end guarantees against the run's golden fault-free stream:
//
//  1. the consumer's output is token-identical (Seq and payload hash)
//     to the fault-free run — fault masking is exact;
//  2. a replica that was never injected is never convicted (zero false
//     positives), and a recovered replica is not re-convicted between
//     its recovery and the second injection;
//  3. for stop-mode faults the first detection latency is within the
//     analytic rtc bound of the detectors armed for that mode;
//  4. detection triggers exactly one recovery per injected replica and
//     re-integration completes on every channel;
//  5. a second fault injected after recovery is detected again —
//     redundancy really was restored;
//  6. the healthy replica is never back-pressured (it writes the full
//     workload; Lemma 1), and every channel's counter identities hold
//     at the end of the run.
//
// Runs execute on the worker pool (WithParallelism) and aggregate in
// run-index order, so campaign output is bit-identical at any
// parallelism level.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/recover"
)

// campaignApps are the workloads the campaign sweeps, with per-app
// workload lengths chosen so a run stays cheap while leaving room for
// inject -> detect -> recover -> settle -> second fault -> detect.
var campaignApps = []struct {
	name   string
	tokens int64
	weight int
}{
	{"adpcm", 220, 35},
	{"radar", 170, 25},
	{"mjpeg", 150, 20},
	{"h264", 150, 20},
}

// Scenario is one randomized campaign run; it is fully determined by
// (seed, index), so a campaign can be replayed run by run.
type Scenario struct {
	Index       int      `json:"index"`
	App         string   `json:"app"`
	MinJitter   bool     `json:"min_jitter"`
	Tokens      int64    `json:"tokens"`
	Replica     int      `json:"replica"` // first-fault target (1-based)
	Mode        string   `json:"mode"`
	ExtraUs     des.Time `json:"extra_us,omitempty"` // degrade only
	InjectUs    des.Time `json:"inject_us"`
	DelayUs     des.Time `json:"delay_us"`  // detection -> repair
	SettleUs    des.Time `json:"settle_us"` // recovery -> second fault
	SecondMode  string   `json:"second_mode"`
	SecondOther bool     `json:"second_other"` // second fault hits the other replica
}

// modeByName resolves a scenario mode string via the canonical registry
// in internal/fault; campaign scenarios only ever draw valid names.
func modeByName(name string) fault.Mode {
	m, ok := fault.ModeByName(name)
	if !ok {
		panic("exp: unknown fault mode " + name)
	}
	return m
}

// ScenarioFor draws scenario idx of a campaign deterministically.
func ScenarioFor(seed int64, idx int) Scenario {
	rng := rand.New(rand.NewSource(seed*0x5851F42D4C957F2D + int64(idx) + 1))
	var sc Scenario
	sc.Index = idx

	total := 0
	for _, a := range campaignApps {
		total += a.weight
	}
	pick := rng.Intn(total)
	for _, a := range campaignApps {
		if pick < a.weight {
			sc.App, sc.Tokens = a.name, a.tokens
			break
		}
		pick -= a.weight
	}

	sc.MinJitter = rng.Intn(2) == 0
	sc.Replica = 1 + rng.Intn(2)
	modes := []string{"stop-all", "stop-consuming", "stop-producing", "degrade"}
	sc.Mode = modes[rng.Intn(len(modes))]
	// Period-relative times are resolved against the app's period below;
	// draw the multipliers here so the scenario is self-describing.
	app, err := AppByName(sc.App, sc.MinJitter, sc.Tokens)
	if err != nil {
		panic(err) // campaignApps names are static
	}
	p := app.PeriodUs
	if sc.Mode == "degrade" {
		sc.ExtraUs = des.Time(2+rng.Intn(4)) * p
	}
	// Inject in the first third (leaves room for the recovery arc), with
	// sub-period phase sweep.
	lo, hi := sc.Tokens/6, sc.Tokens/3
	sc.InjectUs = des.Time(lo)*p + des.Time(rng.Int63n(int64(hi-lo)*int64(p)))
	sc.DelayUs = des.Time(3+rng.Intn(13)) * p
	sc.SettleUs = des.Time(20+rng.Intn(31)) * p
	secondModes := []string{"stop-all", "stop-consuming", "stop-producing"}
	sc.SecondMode = secondModes[rng.Intn(len(secondModes))]
	sc.SecondOther = rng.Intn(4) == 0
	return sc
}

// tokenID identifies a consumer token for stream comparison.
type tokenID struct {
	seq  int64
	hash uint64
}

// golden is the cached fault-free reference for one (app, tier) cell.
// The App value is reused for every run of the cell, so all runs share
// the cell's payload memo and analytic sizing.
type golden struct {
	app    App
	stream []tokenID
	sizing Sizing
}

// goldenKey indexes the golden cache.
type goldenKey struct {
	app       string
	minJitter bool
}

// buildGoldens runs the fault-free duplicated system once per (app,
// tier) cell and records the consumer stream and sizing.
func buildGoldens(workers int) (map[goldenKey]*golden, error) {
	type cell struct {
		key    goldenKey
		tokens int64
	}
	var cells []cell
	for _, a := range campaignApps {
		for _, mj := range []bool{false, true} {
			cells = append(cells, cell{goldenKey{a.name, mj}, a.tokens})
		}
	}
	results, err := runIndexed(workers, len(cells), func(i int) (*golden, error) {
		c := cells[i]
		app, err := AppByName(c.key.app, c.key.minJitter, c.tokens)
		if err != nil {
			return nil, err
		}
		sizing, err := SizingFor(app)
		if err != nil {
			return nil, err
		}
		var stream []tokenID
		net, err := app.Build(func(now des.Time, tok kpn.Token) {
			stream = append(stream, tokenID{tok.Seq, tok.Hash()})
		})
		if err != nil {
			return nil, err
		}
		k := des.NewKernel()
		sys, err := ft.Build(k, net, sizing.BuildConfig(app))
		if err != nil {
			return nil, err
		}
		k.Run(0)
		k.Shutdown()
		if len(sys.Faults) != 0 {
			return nil, fmt.Errorf("exp: golden run of %s convicted a replica: %v", c.key.app, sys.Faults)
		}
		return &golden{app: app, stream: stream, sizing: sizing}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[goldenKey]*golden, len(cells))
	for i, c := range cells {
		out[c.key] = results[i]
	}
	return out, nil
}

// valueCheck builds the replay-based value cross-check for the cell's
// selector from its golden stream (RepTFD-style): pair p of the
// duplicated output corresponds to golden consumer token nPre+p-1,
// where nPre is the selector's physical preload. Pair positions past
// the recorded stream pass vacuously, and so does a token whose Seq
// differs from the golden position — that is a stream skew the timing
// detectors own (ft.ValueCheck's contract), not corruption. Only a
// same-Seq payload-hash mismatch fails the check.
func (g *golden) valueCheck() ft.ValueCheck {
	nPre := g.sizing.SelInits[0]
	if g.sizing.SelInits[1] > nPre {
		nPre = g.sizing.SelInits[1]
	}
	stream := g.stream
	return func(pair int64, tok kpn.Token) bool {
		idx := int64(nPre) + pair - 1
		if idx < 0 || idx >= int64(len(stream)) {
			return true
		}
		if stream[idx].seq != tok.Seq {
			return true
		}
		return stream[idx].hash == tok.Hash()
	}
}

// buildConfig assembles the ft build configuration for one run of the
// cell under the given detection policy.
func (g *golden) buildConfig(pol ft.PolicySpec) ft.BuildConfig {
	cfg := g.sizing.BuildConfig(g.app)
	cfg.Policy = pol
	if pol.Value {
		cfg.ValueCheck = map[string]ft.ValueCheck{g.app.OutChan: g.valueCheck()}
	}
	return cfg
}

// CampaignRun is the machine-checked outcome of one scenario.
type CampaignRun struct {
	Scenario   Scenario `json:"scenario"`
	Violations []string `json:"violations,omitempty"`

	DetectedUs       int64 `json:"detected_us"`        // first conviction of the target (-1: none)
	RecoveredUs      int64 `json:"recovered_us"`       // -1: no recovery
	SecondInjectUs   int64 `json:"second_inject_us"`   // -1: skipped (no room before stream end)
	SecondDetectedUs int64 `json:"second_detected_us"` // -1: n/a or undetected

	// LatencyMarginPct is (bound-latency)/bound for stop-mode first
	// faults (-1 when no bound applies).
	LatencyMarginPct float64 `json:"latency_margin_pct"`
}

// campaignOne executes one scenario against its golden reference.
func campaignOne(sc Scenario, g *golden, pol ft.PolicySpec) (CampaignRun, error) {
	res := CampaignRun{Scenario: sc, DetectedUs: -1, RecoveredUs: -1,
		SecondInjectUs: -1, SecondDetectedUs: -1, LatencyMarginPct: -1}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Reuse the cell's App: all runs share its payload memo, so the
	// deterministic codec work is computed once per cell, not per run.
	app := g.app
	var stream []tokenID
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		stream = append(stream, tokenID{tok.Seq, tok.Hash()})
	})
	if err != nil {
		return res, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, g.buildConfig(pol))
	if err != nil {
		return res, err
	}
	mgr := recover.NewManager(sys, recover.Plan{Delay: sc.DelayUs, MaxRecoveries: 1})

	// Schedule the second fault off the recovery event so it lands a
	// settle time after re-integration, wherever that ends up; skip it
	// when too little stream remains for another detection arc.
	target2 := sc.Replica
	if sc.SecondOther {
		target2 = 3 - sc.Replica
	}
	streamEndUs := des.Time(sc.Tokens) * app.PeriodUs
	var inject2At des.Time = -1
	mgr.OnRecovered = func(ev recover.Event) {
		if ev.Replica != sc.Replica || inject2At >= 0 {
			return // only the first fault's recovery arms the second fault
		}
		at := ev.RecoveredAt + sc.SettleUs
		if at > streamEndUs-25*app.PeriodUs {
			return
		}
		inject2At = at
		sys.InjectFault(target2, at, modeByName(sc.SecondMode), 0)
	}

	sys.InjectFault(sc.Replica, sc.InjectUs, modeByName(sc.Mode), sc.ExtraUs)
	k.Run(0)
	k.Shutdown()

	// --- Invariant 1: exact fault masking. ---
	if len(stream) != len(g.stream) {
		violate("consumer stream has %d tokens, golden has %d", len(stream), len(g.stream))
	} else {
		for i := range stream {
			if stream[i] != g.stream[i] {
				violate("consumer token %d = (seq %d, hash %x), golden (seq %d, hash %x)",
					i, stream[i].seq, stream[i].hash, g.stream[i].seq, g.stream[i].hash)
				break
			}
		}
	}

	// Recovery bookkeeping for the windows below.
	recoveredAt := des.Time(-1)
	for _, ev := range mgr.Events() {
		if ev.Replica == sc.Replica && recoveredAt < 0 {
			recoveredAt = ev.RecoveredAt
			res.RecoveredUs = int64(ev.RecoveredAt)
			if !ev.Complete {
				violate("re-integration of R%d incomplete on some channel", sc.Replica)
			}
		}
	}
	res.SecondInjectUs = int64(inject2At)

	// --- Invariant 2: no false positives, no spurious re-conviction. ---
	healthy := 3 - sc.Replica
	for _, f := range sys.Faults {
		switch f.Replica {
		case sc.Replica:
			if recoveredAt >= 0 && f.At > recoveredAt && (inject2At < 0 || !(!sc.SecondOther && f.At >= inject2At)) {
				violate("R%d re-convicted at %dus inside the recovered window (%s on %s)",
					f.Replica, f.At, f.Reason, f.Channel)
			}
		case healthy:
			if !sc.SecondOther || inject2At < 0 || f.At < inject2At {
				violate("healthy replica R%d convicted at %dus (%s on %s)",
					f.Replica, f.At, f.Reason, f.Channel)
			}
		}
	}

	// --- Invariant 3: detection, within the analytic bound for stop modes. ---
	first, ok := sys.FirstFault(sc.Replica)
	if !ok || first.At < sc.InjectUs {
		violate("fault injected at %dus was never detected", sc.InjectUs)
	} else {
		res.DetectedUs = int64(first.At)
		latency := first.At - sc.InjectUs
		var bound des.Time
		switch sc.Mode {
		case "stop-all":
			bound = min(g.sizing.SelBoundUs, g.sizing.RepBoundUs)
		case "stop-producing":
			bound = g.sizing.SelBoundUs
		case "stop-consuming":
			bound = g.sizing.RepBoundUs
		}
		if bound > 0 {
			if latency > bound {
				violate("detection latency %dus exceeds analytic bound %dus (%s)",
					latency, bound, sc.Mode)
			}
			res.LatencyMarginPct = 100 * float64(bound-latency) / float64(bound)
		}
	}

	// --- Invariant 4: detection triggered exactly one recovery. ---
	if res.DetectedUs >= 0 && recoveredAt < 0 {
		violate("detected fault was never recovered")
	}
	if n := len(mgr.Events()); n > 2 || (!sc.SecondOther && n > 1) {
		violate("%d recoveries, budget allows at most one per replica", n)
	}

	// --- Invariant 5: the second fault is detected after recovery. ---
	if inject2At >= 0 {
		for _, f := range sys.Faults {
			if f.Replica == target2 && f.At >= inject2At {
				res.SecondDetectedUs = int64(f.At)
				break
			}
		}
		if res.SecondDetectedUs < 0 {
			violate("second fault on R%d at %dus was not detected (redundancy not restored)",
				target2, inject2At)
		}
	}

	// --- Invariant 6: Lemma 1 and the counter identities. ---
	if !sc.SecondOther {
		if w := sys.Selectors[app.OutChan].Writes(healthy); w != sc.Tokens {
			violate("healthy replica wrote %d of %d tokens (back-pressured)", w, sc.Tokens)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		violate("counter invariants: %v", err)
	}
	return res, nil
}

// CampaignConfig parameterizes a campaign.
type CampaignConfig struct {
	Runs int
	Seed int64
	// KeepViolating caps how many violating runs are carried verbatim in
	// the result (0 = default 20).
	KeepViolating int
	// Policy selects the detection policy armed on every channel. The
	// zero value keeps the inline first-violation path and produces
	// byte-identical results to campaigns that predate the policy layer.
	// With Policy.Value set, the selector additionally cross-checks
	// every write against the cell's golden stream.
	Policy ft.PolicySpec
}

// CampaignResult aggregates a campaign in run-index order; it is
// bit-identical at any parallelism level.
type CampaignResult struct {
	Runs int   `json:"runs"`
	Seed int64 `json:"seed"`
	// Policy labels the detection policy the campaign armed; omitted
	// for the default inline path so legacy reports compare bit-equal.
	Policy string `json:"policy,omitempty"`

	Violations    int           `json:"violations"`
	ViolatingRuns []CampaignRun `json:"violating_runs,omitempty"`

	RunsPerApp  map[string]int `json:"runs_per_app"`
	RunsPerMode map[string]int `json:"runs_per_mode"`

	Detected       int `json:"detected"`
	Recovered      int `json:"recovered"`
	SecondInjected int `json:"second_injected"`
	SecondDetected int `json:"second_detected"`
	SecondOnOther  int `json:"second_on_other"`

	// MarginHist buckets the stop-mode latency margin (bound-latency)/
	// bound into deciles [0-10%), [10-20%), ... [90-100%].
	MarginHist   [10]int `json:"latency_margin_hist"`
	MarginRuns   int     `json:"latency_margin_runs"`
	MinMarginPct float64 `json:"min_margin_pct"`
}

// Campaign runs the randomized fault-injection campaign.
func Campaign(cfg CampaignConfig, opts ...Option) (*CampaignResult, error) {
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("exp: campaign needs at least one run")
	}
	rc := newRunConfig(opts)
	keep := cfg.KeepViolating
	if keep <= 0 {
		keep = 20
	}
	if _, err := ft.NewPolicy(cfg.Policy); err != nil {
		return nil, fmt.Errorf("exp: campaign policy: %w", err)
	}
	goldens, err := buildGoldens(rc.workers)
	if err != nil {
		return nil, err
	}
	runs, err := runIndexed(rc.workers, cfg.Runs, func(i int) (CampaignRun, error) {
		sc := ScenarioFor(cfg.Seed, i)
		return campaignOne(sc, goldens[goldenKey{sc.App, sc.MinJitter}], cfg.Policy)
	})
	if err != nil {
		return nil, err
	}

	res := &CampaignResult{
		Runs: cfg.Runs, Seed: cfg.Seed,
		RunsPerApp:   map[string]int{},
		RunsPerMode:  map[string]int{},
		MinMarginPct: 100,
	}
	if !cfg.Policy.IsDefault() {
		res.Policy = cfg.Policy.String()
	}
	for _, r := range runs {
		res.RunsPerApp[r.Scenario.App]++
		res.RunsPerMode[r.Scenario.Mode]++
		if len(r.Violations) > 0 {
			res.Violations++
			if len(res.ViolatingRuns) < keep {
				res.ViolatingRuns = append(res.ViolatingRuns, r)
			}
		}
		if r.DetectedUs >= 0 {
			res.Detected++
		}
		if r.RecoveredUs >= 0 {
			res.Recovered++
		}
		if r.SecondInjectUs >= 0 {
			res.SecondInjected++
			if r.Scenario.SecondOther {
				res.SecondOnOther++
			}
		}
		if r.SecondDetectedUs >= 0 {
			res.SecondDetected++
		}
		if r.LatencyMarginPct >= 0 {
			res.MarginRuns++
			b := int(r.LatencyMarginPct / 10)
			if b > 9 {
				b = 9
			}
			res.MarginHist[b]++
			if r.LatencyMarginPct < res.MinMarginPct {
				res.MinMarginPct = r.LatencyMarginPct
			}
		}
	}
	if res.MarginRuns == 0 {
		res.MinMarginPct = -1
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *CampaignResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a human summary.
func (r *CampaignResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-injection campaign — %d runs, seed %d\n", r.Runs, r.Seed)
	fmt.Fprintf(&b, "  invariant violations: %d\n", r.Violations)
	for _, v := range r.ViolatingRuns {
		fmt.Fprintf(&b, "    run %d (%s/%s): %s\n",
			v.Scenario.Index, v.Scenario.App, v.Scenario.Mode, strings.Join(v.Violations, "; "))
	}
	fmt.Fprintf(&b, "  detected %d/%d, recovered %d, second faults injected %d (on other replica %d), detected %d\n",
		r.Detected, r.Runs, r.Recovered, r.SecondInjected, r.SecondOnOther, r.SecondDetected)
	fmt.Fprintf(&b, "  runs per app:  %s\n", countLine(r.RunsPerApp))
	fmt.Fprintf(&b, "  runs per mode: %s\n", countLine(r.RunsPerMode))
	if r.MarginRuns > 0 {
		fmt.Fprintf(&b, "  stop-mode latency margin vs analytic bound (%d runs, min %.1f%%):\n", r.MarginRuns, r.MinMarginPct)
		for i, c := range r.MarginHist {
			if c > 0 {
				fmt.Fprintf(&b, "    [%3d%%,%3d%%): %d\n", 10*i, 10*(i+1), c)
			}
		}
	}
	return b.String()
}

// countLine renders a count map deterministically (sorted keys).
func countLine(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// small n: insertion sort keeps this dependency-free
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
