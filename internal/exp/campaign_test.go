package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestCampaignInvariantsHold runs a small slice of the randomized
// campaign and requires every machine-checked invariant to hold: exact
// fault masking, zero false positives, latency within the analytic
// bound, recovery after detection and re-detection of the second fault.
func TestCampaignInvariantsHold(t *testing.T) {
	res, err := Campaign(CampaignConfig{Runs: 40, Seed: 1})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations:\n%s", res.Violations, res.String())
	}
	if res.Detected != res.Runs {
		t.Errorf("detected %d of %d injected faults", res.Detected, res.Runs)
	}
	if res.Recovered != res.Detected {
		t.Errorf("recovered %d of %d detections", res.Recovered, res.Detected)
	}
	if res.SecondInjected == 0 {
		t.Errorf("no run had room for a second fault; campaign never exercised restored redundancy")
	}
	if res.SecondDetected != res.SecondInjected {
		t.Errorf("second fault detected in %d of %d runs", res.SecondDetected, res.SecondInjected)
	}
	if res.MarginRuns == 0 || res.MinMarginPct < 0 {
		t.Errorf("no stop-mode run produced a latency margin (MarginRuns=%d)", res.MarginRuns)
	}
}

// TestCampaignDeterministicAcrossParallelism requires the full campaign
// result — JSON bytes included — to be bit-identical whether runs
// execute sequentially or on a worker pool.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	cfg := CampaignConfig{Runs: 24, Seed: 7}
	var reports [2]bytes.Buffer
	for i, par := range []int{1, 8} {
		res, err := Campaign(cfg, WithParallelism(par))
		if err != nil {
			t.Fatalf("Campaign(parallel=%d): %v", par, err)
		}
		if err := res.WriteJSON(&reports[i]); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Fatalf("campaign result differs across parallelism levels:\n-- parallel=1:\n%s\n-- parallel=8:\n%s",
			reports[0].String(), reports[1].String())
	}
}

// TestScenarioForDeterministic pins the scenario generator: the same
// (seed, index) must always yield the same scenario, and different
// indices must actually vary the draw.
func TestScenarioForDeterministic(t *testing.T) {
	a, b := ScenarioFor(42, 3), ScenarioFor(42, 3)
	if a != b {
		t.Fatalf("ScenarioFor(42, 3) not deterministic: %+v vs %+v", a, b)
	}
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		sc := ScenarioFor(1, i)
		if sc.Index != i {
			t.Fatalf("scenario %d has Index %d", i, sc.Index)
		}
		if sc.InjectUs <= 0 || sc.DelayUs <= 0 || sc.SettleUs <= 0 {
			t.Fatalf("scenario %d has non-positive times: %+v", i, sc)
		}
		if sc.Mode == "degrade" && sc.ExtraUs <= 0 {
			t.Fatalf("degrade scenario %d has no extra delay: %+v", i, sc)
		}
		seen[sc.App+"/"+sc.Mode] = true
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct app/mode cells in 50 draws: %v", len(seen), seen)
	}
}

// TestCampaignSummaryMentionsViolations keeps the human summary honest:
// a clean result must report zero violations and the detection counts.
func TestCampaignSummaryMentionsViolations(t *testing.T) {
	res, err := Campaign(CampaignConfig{Runs: 6, Seed: 3})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	s := res.String()
	if !strings.Contains(s, "invariant violations: 0") {
		t.Errorf("summary missing violation count:\n%s", s)
	}
	if !strings.Contains(s, "detected 6/6") {
		t.Errorf("summary missing detection count:\n%s", s)
	}
}
