package exp

// Simulation-core throughput suite behind `ftpnsim -exp corebench`:
// measures the three PR levers — the bucket-queue DES scheduler against
// the retained heap oracle, the crt SPSC channel fast path against the
// mutex-only LockedFIFO, and the memoized campaign (payload memo +
// sizing cache) — and emits BENCH_PR5.json. The campaign section also
// machine-checks the bit-identity contract: the aggregated result must
// be byte-identical at every parallelism level, and (at the golden run
// count) equal to the pre-PR BENCH_PR2.json committed in the repo.
//
// The seed campaign wall-clock cannot be emulated in-process (the memo
// changes the hot path itself), so scripts/bench.sh times the seed
// revision in a throwaway worktree and feeds the nanoseconds in via
// -seed-campaign-ns; without it the report still carries the new
// absolute time.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"ftpn/internal/crt"
	"ftpn/internal/des"
)

// CoreBenchConfig parameterizes the suite.
type CoreBenchConfig struct {
	// CampaignRuns is the fault-injection campaign size (default 1000).
	CampaignRuns int
	// SeedCampaignNs is the seed tree's wall-clock for the same campaign,
	// measured externally by scripts/bench.sh (0 = not available).
	SeedCampaignNs int64
	// GoldenPath is the pre-PR campaign report to diff against
	// (default BENCH_PR2.json; only checked when CampaignRuns matches
	// the golden file's run count).
	GoldenPath string
}

// CoreBenchReport is the schema of BENCH_PR5.json.
type CoreBenchReport struct {
	GeneratedBy string            `json:"generated_by"`
	GoMaxProcs  int               `json:"go_max_procs"`
	Benchmarks  []BenchEntry      `json:"benchmarks"`
	Comparisons []BenchComparison `json:"comparisons"`

	CampaignRuns        int     `json:"campaign_runs"`
	CampaignSeconds     float64 `json:"campaign_seconds"`
	SeedCampaignSeconds float64 `json:"seed_campaign_seconds,omitempty"`
	CampaignSpeedup     float64 `json:"campaign_speedup,omitempty"`

	// ParallelLevels are the -parallel values the campaign was repeated
	// at; ParallelIdentical reports whether every repetition serialized
	// to the same JSON.
	ParallelLevels    []int `json:"parallel_levels_checked"`
	ParallelIdentical bool  `json:"parallel_identical"`

	// GoldenMatch reports equality with the pre-PR campaign report on
	// disk; GoldenNote explains a skipped check.
	GoldenMatch bool   `json:"golden_match"`
	GoldenNote  string `json:"golden_note,omitempty"`

	SizingCacheHits   int64 `json:"sizing_cache_hits"`
	SizingCacheMisses int64 `json:"sizing_cache_misses"`
}

// benchDESEvents measures warm event dispatch throughput on one queue
// kind with a populated schedule: `timers` concurrent self-rescheduling
// timers whose periods span level 0 through the middle wheel levels —
// the shape of a campaign cell, where every replica, detector and
// process keeps its own timeout pending. The heap pays O(log n) sifts
// against this resident set on every operation; the bucket queue stays
// amortized O(1).
func benchDESEvents(name string, kind des.QueueKind, timers int) BenchEntry {
	periods := []des.Time{1, 2, 3, 5, 8, 40, 130, 1000, 9000, 100000}
	return measure(name, func(b *testing.B) {
		k := des.NewKernelWithQueue(kind)
		var n int
		ticks := make([]func(), timers)
		for t := 0; t < timers; t++ {
			per := periods[t%len(periods)]
			t := t
			ticks[t] = func() {
				if n > 0 {
					n--
					k.After(per, ticks[t])
				}
			}
		}
		arm := func(count int) {
			n = count - timers
			for t := 0; t < timers; t++ {
				k.After(periods[t%len(periods)], ticks[t])
			}
			k.Run(0)
		}
		arm(10 * timers) // warm the freelist and the wheel
		b.ReportAllocs()
		b.ResetTimer()
		arm(b.N)
	})
}

// fifoPair is the surface corebench needs from either FIFO flavor.
type fifoPair interface {
	Write(crt.Token) bool
	Read() (crt.Token, bool)
	Close()
}

// benchFIFOCycle measures the uncontended per-operation cost — one
// write plus one read on a warm, non-empty-non-full FIFO. This is the
// fast path the SPSC ring buys: no mutex acquisition on either side.
func benchFIFOCycle(name string, f fifoPair) BenchEntry {
	tok := crt.Token{Seq: 1}
	f.Write(tok)
	f.Read()
	return measure(name, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Write(tok)
			f.Read()
		}
	})
}

// benchFIFOStream measures the end-to-end token rate with a dedicated
// producer and consumer goroutine — the topology every point-to-point
// channel in the runtime has. On a single-core host both
// implementations are bounded by the scheduler's park/wake cost, so
// this is reported alongside, not instead of, the cycle benchmark.
func benchFIFOStream(name string, mk func() fifoPair) BenchEntry {
	return measure(name, func(b *testing.B) {
		f := mk()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, ok := f.Read(); !ok {
					return
				}
			}
		}()
		tok := crt.Token{Seq: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Write(tok)
		}
		b.StopTimer()
		f.Close()
		<-done
	})
}

// RunCoreBenchSuite measures the suite and writes the JSON report to w.
// Progress lines go to log (may be nil).
func RunCoreBenchSuite(w io.Writer, log io.Writer, cfg CoreBenchConfig) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	if cfg.CampaignRuns <= 0 {
		cfg.CampaignRuns = 1000
	}
	if cfg.GoldenPath == "" {
		cfg.GoldenPath = "BENCH_PR2.json"
	}
	rep := CoreBenchReport{
		GeneratedBy:  "ftpnsim -exp corebench",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		CampaignRuns: cfg.CampaignRuns,
	}

	// --- DES scheduler: bucket queue vs the retained heap oracle. ---
	for _, timers := range []int{16, 256, 1024} {
		logf("corebench: des event dispatch, %d resident timers (bucket vs heap)...\n", timers)
		eBucket := benchDESEvents(fmt.Sprintf("des_events_bucket_%dt", timers), des.QueueBucket, timers)
		eHeap := benchDESEvents(fmt.Sprintf("des_events_heap_%dt", timers), des.QueueHeap, timers)
		rep.Benchmarks = append(rep.Benchmarks, eBucket, eHeap)
		rep.Comparisons = append(rep.Comparisons, BenchComparison{
			Name:            fmt.Sprintf("des_events_bucket_vs_heap_%dt", timers),
			BaselineNs:      eHeap.NsPerOp,
			OptimizedNs:     eBucket.NsPerOp,
			Speedup:         ratio(eHeap.NsPerOp, eBucket.NsPerOp),
			IdenticalOutput: true,
			Note: fmt.Sprintf("%d resident mixed-period timers; %s events/s vs %s events/s; order bit-identity pinned by TestKernelQueueKindsBitIdentical",
				timers, perSecond(eBucket.NsPerOp), perSecond(eHeap.NsPerOp)),
		})
	}

	// --- crt channels: SPSC ring fast path vs mutex-only oracle. ---
	logf("corebench: crt fifo ops (spsc vs locked)...\n")
	eSPSC := benchFIFOCycle("crt_fifo_cycle_spsc", crt.NewFIFO("bench", 64))
	eLocked := benchFIFOCycle("crt_fifo_cycle_locked", crt.NewLockedFIFO("bench", 64))
	rep.Benchmarks = append(rep.Benchmarks, eSPSC, eLocked)
	rep.Comparisons = append(rep.Comparisons, BenchComparison{
		Name:            "crt_fifo_cycle_spsc_vs_locked",
		BaselineNs:      eLocked.NsPerOp,
		OptimizedNs:     eSPSC.NsPerOp,
		Speedup:         ratio(eLocked.NsPerOp, eSPSC.NsPerOp),
		IdenticalOutput: true,
		Note: fmt.Sprintf("uncontended write+read cycle; %s cycles/s vs %s cycles/s; semantics pinned by the dual-implementation suite in fifo_test.go",
			perSecond(eSPSC.NsPerOp), perSecond(eLocked.NsPerOp)),
	})
	eSStream := benchFIFOStream("crt_fifo_stream_spsc", func() fifoPair { return crt.NewFIFO("bench", 64) })
	eLStream := benchFIFOStream("crt_fifo_stream_locked", func() fifoPair { return crt.NewLockedFIFO("bench", 64) })
	rep.Benchmarks = append(rep.Benchmarks, eSStream, eLStream)
	rep.Comparisons = append(rep.Comparisons, BenchComparison{
		Name:            "crt_fifo_stream_spsc_vs_locked",
		BaselineNs:      eLStream.NsPerOp,
		OptimizedNs:     eSStream.NsPerOp,
		Speedup:         ratio(eLStream.NsPerOp, eSStream.NsPerOp),
		IdenticalOutput: true,
		Note: fmt.Sprintf("producer/consumer goroutine pair; %s tokens/s vs %s tokens/s; park/wake-bound when GOMAXPROCS=1",
			perSecond(eSStream.NsPerOp), perSecond(eLStream.NsPerOp)),
	})

	// --- Campaign wall-clock + bit-identity across parallelism. ---
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	if levels[2] <= 2 { // dedupe on small hosts, keep at least two levels
		levels = levels[:2]
	}
	rep.ParallelLevels = levels
	rep.ParallelIdentical = true
	var firstJSON []byte
	var campaignNs int64
	for i, p := range levels {
		logf("corebench: campaign %d runs, parallel=%d...\n", cfg.CampaignRuns, p)
		start := time.Now()
		res, err := Campaign(CampaignConfig{Runs: cfg.CampaignRuns, Seed: 1}, WithParallelism(p))
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		if res.Violations > 0 {
			return fmt.Errorf("corebench: campaign at parallel=%d reported %d invariant violations", p, res.Violations)
		}
		js, err := json.Marshal(res)
		if err != nil {
			return err
		}
		if i == 0 {
			firstJSON = js
			campaignNs = elapsed.Nanoseconds()
		} else if !bytes.Equal(js, firstJSON) {
			rep.ParallelIdentical = false
		}
		// Keep the fastest observed wall-clock: the memoized golden state
		// is identical across repetitions, so this is the steady state.
		if ns := elapsed.Nanoseconds(); ns < campaignNs {
			campaignNs = ns
		}
	}
	rep.CampaignSeconds = float64(campaignNs) / 1e9
	rep.Benchmarks = append(rep.Benchmarks, BenchEntry{
		Name: "campaign_wall_clock", NsPerOp: campaignNs, N: len(levels),
	})
	if cfg.SeedCampaignNs > 0 {
		rep.SeedCampaignSeconds = float64(cfg.SeedCampaignNs) / 1e9
		rep.CampaignSpeedup = ratio(cfg.SeedCampaignNs, campaignNs)
		rep.Comparisons = append(rep.Comparisons, BenchComparison{
			Name:            "campaign_wall_clock_vs_seed",
			BaselineNs:      cfg.SeedCampaignNs,
			OptimizedNs:     campaignNs,
			Speedup:         rep.CampaignSpeedup,
			IdenticalOutput: rep.ParallelIdentical && rep.GoldenMatch,
			Note:            "seed timed by scripts/bench.sh in a worktree at the pre-PR revision",
		})
	}

	// --- Golden diff against the committed pre-PR campaign report. ---
	rep.GoldenMatch, rep.GoldenNote = diffGolden(cfg.GoldenPath, cfg.CampaignRuns, firstJSON)
	if cfg.SeedCampaignNs > 0 {
		rep.Comparisons[len(rep.Comparisons)-1].IdenticalOutput = rep.ParallelIdentical && rep.GoldenMatch
	}

	rep.SizingCacheHits, rep.SizingCacheMisses = SizingCacheStats()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// diffGolden compares the fresh campaign JSON against the pre-PR report
// on disk, field-for-field via a canonical re-marshal so formatting
// differences cannot mask or fake a diff.
func diffGolden(path string, runs int, fresh []byte) (bool, string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Sprintf("golden %s not readable: %v", path, err)
	}
	var golden CampaignResult
	if err := json.Unmarshal(raw, &golden); err != nil {
		return false, fmt.Sprintf("golden %s: %v", path, err)
	}
	if golden.Runs != runs {
		return false, fmt.Sprintf("golden %s holds %d runs, campaign ran %d — diff skipped", path, golden.Runs, runs)
	}
	canon, err := json.Marshal(&golden)
	if err != nil {
		return false, fmt.Sprintf("golden %s: %v", path, err)
	}
	if !bytes.Equal(canon, fresh) {
		return false, fmt.Sprintf("campaign output diverges from %s", path)
	}
	return true, ""
}

// perSecond renders a ns/op figure as an ops-per-second string.
func perSecond(nsPerOp int64) string {
	if nsPerOp <= 0 {
		return "?"
	}
	ops := 1e9 / float64(nsPerOp)
	switch {
	case ops >= 1e6:
		return fmt.Sprintf("%.1fM", ops/1e6)
	case ops >= 1e3:
		return fmt.Sprintf("%.0fk", ops/1e3)
	}
	return fmt.Sprintf("%.0f", ops)
}
