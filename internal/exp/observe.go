package exp

// Observability exports for the experiment harness: a Chrome-trace
// timeline of one fault + recovery run (`ftpnsim -tracefile`) and the
// probe-overhead benchmark suite behind `ftpnsim -exp obsbench`
// (BENCH_PR4.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/obs"
	"ftpn/internal/recover"
	"ftpn/internal/trace"
)

// WriteChromeTrace runs one duplicated execution of app with a stop
// fault injected into replica 2 and a recovery manager attached, records
// the run as a Chrome trace-event timeline (queue-fill counter tracks
// for every arbitration channel plus instant markers for the fault, the
// convictions, the repair and the re-integration phases) and writes the
// JSON document to w. The output loads directly in Perfetto or
// chrome://tracing; timestamps are the simulator's virtual microseconds.
func WriteChromeTrace(app App, w io.Writer) error {
	sizing, err := SizingFor(app)
	if err != nil {
		return err
	}
	net, err := app.Build(func(des.Time, kpn.Token) {})
	if err != nil {
		return err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, sizing.BuildConfig(app))
	if err != nil {
		return err
	}
	rec := obs.NewTraceRecorder()
	ft.InstrumentTrace(sys, rec)

	mgr := recover.NewManager(sys, recover.Plan{Delay: 10 * app.PeriodUs, MaxRecoveries: 1})
	mgr.OnConvicted = func(c recover.Conviction) {
		rec.Instant(c.String(), c.Fault.At)
	}
	mgr.OnRecovered = func(ev recover.Event) {
		rec.Instant(fmt.Sprintf("recovered R%d (complete=%t, latency %dus)",
			ev.Replica, ev.Complete, ev.RecoveredAt-ev.DetectedAt), ev.RecoveredAt)
	}

	injectAt := des.Time(app.Tokens/3) * app.PeriodUs
	rec.Instant(fmt.Sprintf("inject stop-all into R2 at %dus", injectAt), injectAt)
	sys.InjectFault(2, injectAt, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()
	if len(sys.Faults) == 0 {
		return fmt.Errorf("exp: traced run of %s detected no fault", app.Name)
	}
	return rec.WriteJSON(w)
}

// opCostRuns is how many times each op-cost measurement repeats; the
// minimum is reported, matching the bench harness convention.
const opCostRuns = 3

// bestOpCosts reports the best-of-N per-op host time for the selector
// and replicator harness under the given instrumentation.
func bestOpCosts(sizing Sizing, instrument func(*ft.System)) (selNs, repNs int64) {
	for i := 0; i < opCostRuns; i++ {
		s, r := measureOpCostsInstrumented(sizing, instrument)
		if i == 0 || s < selNs {
			selNs = s
		}
		if i == 0 || r < repNs {
			repNs = r
		}
	}
	return selNs, repNs
}

// RunObsBenchSuite measures the observability layer's overhead and
// writes BENCH_PR4.json to w: the obs primitives in isolation
// (enabled/disabled counter and histogram updates), then the Table 2
// channel-op harness with hooks disabled vs metrics hooks installed.
// seedSelNs/seedRepNs, when positive, are the seed tree's selector and
// replicator ns/op from the same harness (extracted by scripts/bench.sh
// from the seed's Table 2 output) and yield the disabled-vs-seed
// comparisons backing the "no measurable cost when off" acceptance
// criterion. Progress lines go to log (may be nil).
func RunObsBenchSuite(w io.Writer, log io.Writer, seedSelNs, seedRepNs int64) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	rep := BenchReport{GeneratedBy: "ftpnsim -exp obsbench", GoMaxProcs: runtime.GOMAXPROCS(0)}

	logf("obsbench: obs primitives...\n")
	reg := obs.NewRegistry()
	c := reg.Counter("bench_total", "", nil)
	h := reg.Histogram("bench_hist", "", obs.ExpBuckets(1, 2, 8), nil)
	var disabled *obs.Counter
	rep.Benchmarks = append(rep.Benchmarks,
		measure("obs_counter_inc", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		}),
		measure("obs_counter_inc_disabled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				disabled.Inc()
			}
		}),
		measure("obs_histogram_observe", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Observe(int64(i & 255))
			}
		}),
	)

	logf("obsbench: channel ops, hooks disabled vs metrics hooks...\n")
	app := MJPEGApp(false, 120)
	sizing, err := SizingFor(app)
	if err != nil {
		return err
	}
	selOff, repOff := bestOpCosts(sizing, nil)
	selOn, repOn := bestOpCosts(sizing, func(sys *ft.System) {
		ft.Instrument(sys, obs.NewRegistry())
	})
	rep.Benchmarks = append(rep.Benchmarks,
		BenchEntry{Name: "sel_op_hooks_disabled", NsPerOp: selOff, N: opCostRuns},
		BenchEntry{Name: "sel_op_metrics", NsPerOp: selOn, N: opCostRuns},
		BenchEntry{Name: "rep_op_hooks_disabled", NsPerOp: repOff, N: opCostRuns},
		BenchEntry{Name: "rep_op_metrics", NsPerOp: repOn, N: opCostRuns},
	)
	overhead := func(off, on int64) string {
		return fmt.Sprintf("metrics hooks add %.1f%% per op", 100*ratio(on-off, off))
	}
	rep.Comparisons = append(rep.Comparisons,
		BenchComparison{
			Name: "sel_op_metrics_overhead", BaselineNs: selOff, OptimizedNs: selOn,
			Speedup: ratio(selOff, selOn), IdenticalOutput: true, Note: overhead(selOff, selOn),
		},
		BenchComparison{
			Name: "rep_op_metrics_overhead", BaselineNs: repOff, OptimizedNs: repOn,
			Speedup: ratio(repOff, repOn), IdenticalOutput: true, Note: overhead(repOff, repOn),
		},
	)
	if seedSelNs > 0 && seedRepNs > 0 {
		logf("obsbench: disabled hooks vs seed (sel %dns, rep %dns)...\n", seedSelNs, seedRepNs)
		rep.Comparisons = append(rep.Comparisons,
			BenchComparison{
				Name: "sel_op_disabled_vs_seed", BaselineNs: seedSelNs, OptimizedNs: selOff,
				Speedup: ratio(seedSelNs, selOff), IdenticalOutput: true,
				Note: "acceptance: disabled hooks within 2% of the seed's hot path",
			},
			BenchComparison{
				Name: "rep_op_disabled_vs_seed", BaselineNs: seedRepNs, OptimizedNs: repOff,
				Speedup: ratio(seedRepNs, repOff), IdenticalOutput: true,
				Note: "acceptance: disabled hooks within 2% of the seed's hot path",
			},
		)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// observedRun executes one duplicated run of app with a full metrics
// registry and recovery manager attached, injecting a stop fault into
// replica `replica`. Shared by the harness-level metric-identity test
// and the live example.
func observedRun(app App, replica int, reg *obs.Registry) (*ft.System, *recover.Manager, error) {
	sizing, err := SizingFor(app)
	if err != nil {
		return nil, nil, err
	}
	arr := &trace.Arrivals{}
	net, err := app.Build(func(now des.Time, tok kpn.Token) { arr.Record(now) })
	if err != nil {
		return nil, nil, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, sizing.BuildConfig(app))
	if err != nil {
		return nil, nil, err
	}
	ft.Instrument(sys, reg)
	mgr := recover.NewManager(sys, recover.Plan{Delay: 10 * app.PeriodUs, MaxRecoveries: 1})
	mgr.Observe(reg)
	sys.InjectFault(replica, des.Time(app.Tokens/3)*app.PeriodUs, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()
	return sys, mgr, nil
}
