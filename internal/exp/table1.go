package exp

import (
	"fmt"
	"strings"

	"ftpn/internal/rtc"
)

// Table1Row is one interface's timing parameters.
type Table1Row struct {
	App       string
	Interface string
	Model     rtc.PJD
}

// Table1 returns the timing parameters of all three applications in the
// paper's <period, jitter, delay> form (Table 1). Bandwidth figures
// follow from token sizes and periods.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, name := range []string{"mjpeg", "adpcm", "h264"} {
		app, _ := AppByName(name, false, 0)
		rows = append(rows,
			Table1Row{app.Name, "input (producer)", app.Producer},
			Table1Row{app.Name, "replica 1 consumption", app.InModel(1)},
			Table1Row{app.Name, "replica 2 consumption", app.InModel(2)},
			Table1Row{app.Name, "replica 1 production", app.OutModel(1)},
			Table1Row{app.Name, "replica 2 production", app.OutModel(2)},
			Table1Row{app.Name, "consumer consumption", app.Consumer},
		)
	}
	return rows
}

// ms renders microseconds as fractional milliseconds.
func ms(us int64) string {
	if us%1000 == 0 {
		return fmt.Sprintf("%d", us/1000)
	}
	return fmt.Sprintf("%.1f", float64(us)/1000)
}

// FormatTable1 renders Table 1 paper-style.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Parameters for Fault Tolerance Experiments (<period,jitter,delay> in ms)\n")
	prev := ""
	for _, r := range rows {
		if r.App != prev {
			fmt.Fprintf(&b, "%s\n", r.App)
			prev = r.App
		}
		fmt.Fprintf(&b, "  %-24s <%s,%s,%s>\n", r.Interface,
			ms(r.Model.Period), ms(r.Model.Jitter), ms(r.Model.MinDist))
	}
	// Bandwidth summary as the paper reports (500-833 KB/s class links).
	mj := MJPEGApp(false, 0)
	ad := ADPCMApp(false, 0)
	fmt.Fprintf(&b, "Bandwidth: MJPEG input %.0f KB/s, ADPCM input %.0f KB/s (paper: 500-833 KB/s)\n",
		float64(mj.InTokenBytes)/1024/(float64(mj.PeriodUs)/1e6),
		float64(ad.InTokenBytes)/1024/(float64(ad.PeriodUs)/1e6))
	return b.String()
}
