package exp

// detectbench quantifies the detection-policy tradeoff the (m,k) layer
// introduces: false-conviction rate on forgivable gray faults versus
// missed detections and latency on permanent and value faults. Each
// cell is (app, policy, fault class); per run the duplicated system
// executes with the policy armed, one fault from the class injected at
// a seeded instant, no recovery manager (detection only), and the
// consumer stream compared against the cell's golden reference. For
// permanent stop faults the cell also carries the analytic (m,k)
// detection bound (rtc.DetectionBoundMK via MKDetectionBounds), so the
// report doubles as the analytic-vs-simulated latency comparison.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// detectClasses are the fault classes the bench sweeps. "Transient"
// classes heal (or stay) within a correctly sized (m,k) budget: any
// conviction there is a false conviction. The others are real faults a
// detector should catch.
var detectClasses = []struct {
	name      string
	transient bool
}{
	{"glitch", true},   // bounded Degrade outage, repaired
	{"burst", true},    // duty-cycled stop episodes within the budget
	{"stop", false},    // permanent fail-silent stop (paper's model)
	{"drift", false},   // ramping degrade, permanent
	{"drop", false},    // intermittent token loss, permanent
	{"corrupt", false}, // payload corruption with clean timing (value fault)
}

// glitchFor is the transient outage length the bench (and MKBudgetFor)
// size against: long enough that the backlog it causes overflows the
// replicator queue at least once (|R_k| is 2-3 for the bench apps, so
// binary convicts), short enough that the handful of forgiven
// overflow drops stays below the divergence threshold D and the
// selector's stall slack — past that point the skipped tokens leave a
// *permanent* pair skew and a transient becomes indistinguishable
// from a degraded replica (re-integration, not forgiveness, is the
// remedy there).
func glitchFor(app App) des.Time { return 3 * app.PeriodUs }

// MKBudgetFor derives an (m,k) policy spec sized to forgive transient
// outages of glitchUs on either replica: the violation budget m is the
// worst case over the app's envelopes of rtc.StallViolationBudget, and
// the window k is the smallest power-of-two-ish span that both admits
// m violations and flushes between well-separated episodes.
func MKBudgetFor(app App, glitchUs des.Time) (ft.PolicySpec, error) {
	in1, in2 := app.InModel(1), app.InModel(2)
	out1, out2 := app.OutModel(1), app.OutModel(2)
	h := rtc.Horizon(app.Producer, app.Consumer, in1, in2, out1, out2) * 8
	m := 1
	for _, env := range []rtc.PJD{app.Producer, app.Consumer, in1, in2, out1, out2} {
		b, err := rtc.StallViolationBudget(env.Upper(), glitchUs, h)
		if err != nil {
			return ft.PolicySpec{}, fmt.Errorf("exp: mk budget for %s: %w", app.Name, err)
		}
		if b > m {
			m = b
		}
	}
	return ft.PolicySpec{Kind: ft.PolicyMK, M: m, K: 2 * (m + 1)}, nil
}

// DetectCell aggregates one (app, policy, fault class) cell.
type DetectCell struct {
	App    string `json:"app"`
	Policy string `json:"policy"`
	Fault  string `json:"fault"`
	Runs   int    `json:"runs"`

	// Convicted counts runs in which the injected replica was convicted
	// at or after the injection.
	Convicted int `json:"convicted"`
	// FalseConvictions counts convictions that a correctly sized policy
	// would avoid: any conviction on a transient-class run, or a
	// conviction of the healthy replica on a permanent-class run.
	FalseConvictions int `json:"false_convictions"`
	// Missed counts permanent-class runs whose injected replica was
	// never convicted (for "corrupt" under timing-only policies this is
	// the expected silent data corruption).
	Missed int `json:"missed"`
	// GoldenStreams counts runs whose consumer output was token-
	// identical to the fault-free golden stream.
	GoldenStreams int `json:"golden_streams"`
	// ValueConvictions counts runs whose first conviction of the target
	// was a value (replay cross-check) conviction.
	ValueConvictions int `json:"value_convictions"`

	// Latency stats over convicted runs, -1 when none convicted.
	MeanLatencyUs int64 `json:"mean_latency_us"`
	MaxLatencyUs  int64 `json:"max_latency_us"`
	// AnalyticBoundUs is the (m,k) detection bound for permanent stop
	// faults (0 when the class has no analytic bound).
	AnalyticBoundUs int64 `json:"analytic_bound_us,omitempty"`
}

// DetectReport is the full detectbench result, deterministic at any
// parallelism level.
type DetectReport struct {
	RunsPerCell int          `json:"runs_per_cell"`
	Seed        int64        `json:"seed"`
	Policies    []string     `json:"policies"`
	Cells       []DetectCell `json:"cells"`
}

// detectRun is one run's classified outcome.
type detectRun struct {
	convicted bool
	falseConv bool
	missed    bool
	golden    bool
	valueConv bool
	latencyUs int64
}

// detectOne executes one detectbench run.
func detectOne(g *golden, pol ft.PolicySpec, class string, transient bool, seed int64, idx int) (detectRun, error) {
	var out detectRun
	app := g.app
	rng := rand.New(rand.NewSource(seed*0x5851F42D4C957F2D + int64(idx) + 1))
	replica := 1 + idx%2
	p := app.PeriodUs
	glitch := glitchFor(app)
	injectAt := des.Time(app.Tokens/4)*p + des.Time(rng.Int63n(int64(app.Tokens/4)*int64(p)))

	var stream []tokenID
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		stream = append(stream, tokenID{tok.Seq, tok.Hash()})
	})
	if err != nil {
		return out, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, g.buildConfig(pol))
	if err != nil {
		return out, err
	}
	sw := sys.Switches[replica-1]
	switch class {
	case "stop":
		sys.InjectFault(replica, injectAt, fault.StopAll, 0)
	case "glitch":
		sys.InjectFault(replica, injectAt, fault.Degrade, 3*p)
		sw.RepairAt(injectAt + glitch)
	case "burst":
		// Two well-separated two-period stall episodes, then repaired:
		// short enough that the backlog stays within the replicator
		// queue (no forgiven drops, no permanent pair skew), long enough
		// that the consumer-stall counter trips binary detection, and
		// the (m,k) windows flush during the ~20 clean periods between
		// the episodes.
		sw.InjectGrayAt(injectAt, fault.Burst, fault.Gray{OnUs: 2 * p, PeriodUs: 20 * p})
		sw.RepairAt(injectAt + 23*p)
	case "drift":
		sw.InjectGrayAt(injectAt, fault.Drift, fault.Gray{ExtraUs: 4 * p, RampUs: 30 * p})
	case "drop":
		sw.InjectGrayAt(injectAt, fault.DropTokens, fault.Gray{EveryN: 5})
	case "corrupt":
		sw.InjectGrayAt(injectAt, fault.Corrupt, fault.Gray{EveryN: 4, Seed: uint64(idx) + 1})
	default:
		return out, fmt.Errorf("exp: unknown detect class %q", class)
	}
	k.Run(0)
	k.Shutdown()

	out.golden = len(stream) == len(g.stream)
	if out.golden {
		for i := range stream {
			if stream[i] != g.stream[i] {
				out.golden = false
				break
			}
		}
	}
	healthy := 3 - replica
	for _, f := range sys.Faults {
		if f.Replica == replica && f.At >= injectAt && !out.convicted {
			out.convicted = true
			out.latencyUs = int64(f.At - injectAt)
			out.valueConv = f.Kind == ft.KindValue
		}
		if f.Replica == healthy {
			out.falseConv = true
		}
	}
	if transient && (out.convicted || out.falseConv) {
		out.falseConv = true
	}
	if !transient && !out.convicted {
		out.missed = true
	}
	return out, nil
}

// DetectBench runs the full detection-policy benchmark: every app ×
// {binary, (m,k), (m,k)+value} × fault class, runsPerCell runs each.
func DetectBench(runsPerCell int, seed int64, opts ...Option) (*DetectReport, error) {
	if runsPerCell < 1 {
		return nil, fmt.Errorf("exp: detectbench needs at least one run per cell")
	}
	rc := newRunConfig(opts)
	goldens, err := buildGoldens(rc.workers)
	if err != nil {
		return nil, err
	}

	type cellSpec struct {
		g         *golden
		app       string // campaign short name
		pol       ft.PolicySpec
		polName   string
		class     string
		transient bool
		boundUs   des.Time
	}
	var cells []cellSpec
	polNames := []string{"binary", "mk", "mk+value"}
	for _, a := range campaignApps {
		g := goldens[goldenKey{a.name, false}]
		mk, err := MKBudgetFor(g.app, glitchFor(g.app))
		if err != nil {
			return nil, err
		}
		mkv := mk
		mkv.Value = true
		pols := []ft.PolicySpec{{Kind: ft.PolicyBinary}, mk, mkv}
		for pi, pol := range pols {
			m := 0
			if pol.Kind == ft.PolicyMK {
				m = pol.M
			}
			b, err := MKDetectionBounds(g.app, g.sizing, m)
			if err != nil {
				return nil, err
			}
			for _, cl := range detectClasses {
				var bound des.Time
				if cl.name == "stop" {
					bound = b.Worst()
				}
				cells = append(cells, cellSpec{g: g, app: a.name, pol: pol, polName: polNames[pi],
					class: cl.name, transient: cl.transient, boundUs: bound})
			}
		}
	}

	total := len(cells) * runsPerCell
	runs, err := runIndexed(rc.workers, total, func(i int) (detectRun, error) {
		c := cells[i/runsPerCell]
		return detectOne(c.g, c.pol, c.class, c.transient, seed, i%runsPerCell)
	})
	if err != nil {
		return nil, err
	}

	rep := &DetectReport{RunsPerCell: runsPerCell, Seed: seed, Policies: polNames}
	for ci, c := range cells {
		cell := DetectCell{App: c.app, Policy: c.pol.String(), Fault: c.class,
			Runs: runsPerCell, AnalyticBoundUs: int64(c.boundUs), MeanLatencyUs: -1, MaxLatencyUs: -1}
		var latSum int64
		for _, r := range runs[ci*runsPerCell : (ci+1)*runsPerCell] {
			if r.convicted {
				cell.Convicted++
				latSum += r.latencyUs
				if r.latencyUs > cell.MaxLatencyUs {
					cell.MaxLatencyUs = r.latencyUs
				}
			}
			if r.falseConv {
				cell.FalseConvictions++
			}
			if r.missed {
				cell.Missed++
			}
			if r.golden {
				cell.GoldenStreams++
			}
			if r.valueConv {
				cell.ValueConvictions++
			}
		}
		if cell.Convicted > 0 {
			cell.MeanLatencyUs = latSum / int64(cell.Convicted)
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *DetectReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the policy-tradeoff table.
func (r *DetectReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection-policy bench — %d runs/cell, seed %d\n", r.RunsPerCell, r.Seed)
	fmt.Fprintf(&b, "  %-8s %-16s %-8s %9s %6s %7s %7s %12s %14s\n",
		"app", "policy", "fault", "convicted", "false", "missed", "golden", "max lat (us)", "bound (us)")
	for _, c := range r.Cells {
		bound := "-"
		if c.AnalyticBoundUs > 0 {
			bound = fmt.Sprintf("%d", c.AnalyticBoundUs)
		}
		lat := "-"
		if c.MaxLatencyUs >= 0 {
			lat = fmt.Sprintf("%d", c.MaxLatencyUs)
		}
		fmt.Fprintf(&b, "  %-8s %-16s %-8s %9d %6d %7d %7d %12s %14s\n",
			c.App, c.Policy, c.Fault, c.Convicted, c.FalseConvictions, c.Missed, c.GoldenStreams, lat, bound)
	}
	return b.String()
}
