package exp

// Benchmark harness behind `ftpnsim -exp bench`: measures the PR's
// optimization targets — breakpoint-driven RTC solvers, parallel
// experiment execution, and the allocation-free DES event path — against
// their seed baselines, verifies output identity where the baseline is
// available, and emits a machine-readable JSON report (BENCH_PR1.json).
//
// The seed's Table 2 cost is emulated arithmetically: the seed differed
// from this tree only in the sizing solvers (dense tick scans, retained
// verbatim in rtc/reference.go) and in running simulations sequentially,
// so seed ns/op = sequential Table2 ns/op - new-sizing ns/op +
// dense-sizing ns/op. Parallel speedup over sequential is reported
// separately and is bounded by GOMAXPROCS.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"ftpn/internal/des"
	"ftpn/internal/rtc"
)

// BenchEntry is one measured benchmark.
type BenchEntry struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_per_op"`
	AllocsOp int64  `json:"allocs_per_op"`
	BytesOp  int64  `json:"bytes_per_op"`
	N        int    `json:"iterations"`
}

// BenchComparison relates an optimized path to its baseline.
type BenchComparison struct {
	Name            string  `json:"name"`
	BaselineNs      int64   `json:"baseline_ns_per_op"`
	OptimizedNs     int64   `json:"optimized_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	IdenticalOutput bool    `json:"identical_output"`
	Note            string  `json:"note,omitempty"`
}

// BenchReport is the schema of BENCH_PR1.json.
type BenchReport struct {
	GeneratedBy string            `json:"generated_by"`
	GoMaxProcs  int               `json:"go_max_procs"`
	Benchmarks  []BenchEntry      `json:"benchmarks"`
	Comparisons []BenchComparison `json:"comparisons"`
}

// measureFixed times fn over iters iterations per batch and keeps the
// best batch — more noise-resistant than a single adaptive pass for the
// multi-hundred-ms end-to-end experiments.
func measureFixed(name string, iters, batches int, fn func() error) (BenchEntry, error) {
	best := int64(math.MaxInt64)
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return BenchEntry{}, fmt.Errorf("bench %s: %w", name, err)
			}
		}
		if d := time.Since(start).Nanoseconds() / int64(iters); d < best {
			best = d
		}
	}
	return BenchEntry{Name: name, NsPerOp: best, N: iters * batches}, nil
}

// measure runs fn under the testing benchmark driver.
func measure(name string, fn func(b *testing.B)) BenchEntry {
	r := testing.Benchmark(fn)
	return BenchEntry{
		Name:     name,
		NsPerOp:  r.NsPerOp(),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		N:        r.N,
	}
}

// seedSizing replicates the seed's ComputeSizing exactly, with every
// solver call routed to the dense reference implementation. It is the
// baseline for both the sizing benchmark and the identity check.
func seedSizing(app App) (Sizing, error) {
	var s Sizing
	in1, in2 := app.InModel(1), app.InModel(2)
	out1, out2 := app.OutModel(1), app.OutModel(2)
	h := rtc.Horizon(app.Producer, app.Consumer, in1, in2, out1, out2)

	for i, m := range []rtc.PJD{in1, in2} {
		c, err := rtc.DenseSupDiff(app.Producer.Upper(), m.Lower(), h)
		if err != nil {
			return s, err
		}
		s.RepCaps[i] = int(max(c, 1))
	}
	for i, m := range []rtc.PJD{out1, out2} {
		f, err := rtc.DenseSupDiff(app.Consumer.Upper(), m.Lower(), h)
		if err != nil {
			return s, err
		}
		f = max(f, 1)
		s.SelInits[i] = int(f)
		s.SelCaps[i] = 2 * int(f)
	}
	for _, pair := range [][2]rtc.Curve{
		{out1.Upper(), out2.Lower()}, {out2.Upper(), out1.Lower()},
	} {
		d, err := rtc.DenseSupDiff(pair[0], pair[1], h)
		if err != nil {
			return s, err
		}
		s.D = max(s.D, d+1)
	}
	for _, pair := range [][2]rtc.Curve{
		{in1.Upper(), in2.Lower()}, {in2.Upper(), in1.Lower()},
	} {
		d, err := rtc.DenseSupDiff(pair[0], pair[1], h)
		if err != nil {
			return s, err
		}
		s.DRep = max(s.DRep, d+1)
	}
	bh := h * 8
	for _, l := range []rtc.Curve{out1.Lower(), out2.Lower()} {
		b, err := rtc.DenseDetectionBound(l, rtc.Zero, s.D, bh)
		if err != nil {
			return s, err
		}
		s.SelBoundUs = max(s.SelBoundUs, b)
	}
	for i := range s.RepCaps {
		qf, err := rtc.DenseTimeToReach(app.Producer.Lower(), int64(s.RepCaps[i])+2, bh)
		if err != nil {
			return s, err
		}
		other := []rtc.PJD{in1, in2}[1-i]
		dv, err := rtc.DenseTimeToReach(other.Lower(), 2*s.DRep, bh)
		if err != nil {
			dv = qf
		}
		s.RepBoundUs = max(s.RepBoundUs, min(qf, dv))
	}
	return s, nil
}

// RunBenchSuite measures the suite and writes the JSON report to w.
// Progress lines go to log (may be nil).
func RunBenchSuite(w io.Writer, log io.Writer) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	rep := BenchReport{
		GeneratedBy: "ftpnsim -exp bench",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	app := MJPEGApp(false, 120)
	const t2Runs = 4

	// --- Sizing: breakpoint solvers vs the seed's dense tick scans. ---
	logf("bench: sizing (breakpoint vs dense)...\n")
	newS, err := ComputeSizing(app)
	if err != nil {
		return err
	}
	oldS, err := seedSizing(app)
	if err != nil {
		return err
	}
	sizingIdentical := newS == oldS
	eSizing := measure("sizing_mjpeg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ComputeSizing(app); err != nil {
				b.Fatal(err)
			}
		}
	})
	eSizingDense, err := measureFixed("sizing_mjpeg_dense_seed", 2, 3, func() error {
		_, err := seedSizing(app)
		return err
	})
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, eSizing, eSizingDense)
	rep.Comparisons = append(rep.Comparisons, BenchComparison{
		Name:            "sizing_mjpeg_vs_seed",
		BaselineNs:      eSizingDense.NsPerOp,
		OptimizedNs:     eSizing.NsPerOp,
		Speedup:         ratio(eSizingDense.NsPerOp, eSizing.NsPerOp),
		IdenticalOutput: sizingIdentical,
	})

	// --- Table 2 end-to-end: parallel+breakpoints vs emulated seed. ---
	logf("bench: Table2 mjpeg (parallel vs sequential vs seed-emulated)...\n")
	seqRes, err := Table2(app, t2Runs, WithParallelism(1), WithoutOpCosts())
	if err != nil {
		return err
	}
	parRes, err := Table2(app, t2Runs, WithoutOpCosts())
	if err != nil {
		return err
	}
	t2Identical := seqRes.String() == parRes.String()
	eT2Par, err := measureFixed("table2_mjpeg", 3, 3, func() error {
		_, err := Table2(app, t2Runs, WithoutOpCosts())
		return err
	})
	if err != nil {
		return err
	}
	eT2Seq, err := measureFixed("table2_mjpeg_sequential", 3, 3, func() error {
		_, err := Table2(app, t2Runs, WithParallelism(1), WithoutOpCosts())
		return err
	})
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, eT2Par, eT2Seq)
	seedT2Ns := eT2Seq.NsPerOp - eSizing.NsPerOp + eSizingDense.NsPerOp
	rep.Comparisons = append(rep.Comparisons,
		BenchComparison{
			Name:            "table2_mjpeg_vs_seed",
			BaselineNs:      seedT2Ns,
			OptimizedNs:     eT2Par.NsPerOp,
			Speedup:         ratio(seedT2Ns, eT2Par.NsPerOp),
			IdenticalOutput: t2Identical && sizingIdentical,
			Note:            "seed emulated as sequential Table2 with dense-solver sizing cost",
		},
		BenchComparison{
			Name:            "table2_mjpeg_parallel_vs_sequential",
			BaselineNs:      eT2Seq.NsPerOp,
			OptimizedNs:     eT2Par.NsPerOp,
			Speedup:         ratio(eT2Seq.NsPerOp, eT2Par.NsPerOp),
			IdenticalOutput: t2Identical,
			Note:            fmt.Sprintf("bounded by GOMAXPROCS=%d", rep.GoMaxProcs),
		})

	// --- RTC micro-benchmarks at a 1e5-tick horizon. ---
	logf("bench: rtc solvers at 1e5 ticks...\n")
	const microH = rtc.Time(100000)
	healthy := rtc.PJD{Period: 900, Jitter: 250, MinDist: 100}
	faulty := rtc.PJD{Period: 1100, Jitter: 400}
	svc := rtc.RateLatency{LatencyUs: 700, Rate: 1, Per: 800}

	microCmp := func(name string, opt, base func() (int64, error)) error {
		ov, err := opt()
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		bv, err := base()
		if err != nil {
			return fmt.Errorf("bench %s baseline: %w", name, err)
		}
		eo := measure(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt(); err != nil {
					b.Fatal(err)
				}
			}
		})
		eb := measure(name+"_dense_seed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := base(); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, eo, eb)
		rep.Comparisons = append(rep.Comparisons, BenchComparison{
			Name:            name + "_vs_seed",
			BaselineNs:      eb.NsPerOp,
			OptimizedNs:     eo.NsPerOp,
			Speedup:         ratio(eb.NsPerOp, eo.NsPerOp),
			IdenticalOutput: ov == bv,
		})
		return nil
	}
	if err := microCmp("detection_bound_100k",
		func() (int64, error) { return rtc.DetectionBound(healthy.Lower(), rtc.Zero, 4, microH) },
		func() (int64, error) { return rtc.DenseDetectionBound(healthy.Lower(), rtc.Zero, 4, microH) },
	); err != nil {
		return err
	}
	if err := microCmp("buffer_capacity_100k",
		func() (int64, error) { return rtc.BufferCapacity(faulty.Upper(), healthy.Lower(), microH) },
		func() (int64, error) { return rtc.DenseSupDiff(faulty.Upper(), healthy.Lower(), microH) },
	); err != nil {
		return err
	}
	if err := microCmp("delay_bound_100k",
		func() (int64, error) { return rtc.DelayBound(healthy.Upper(), svc, microH) },
		func() (int64, error) { return rtc.DenseDelayBound(healthy.Upper(), svc, microH) },
	); err != nil {
		return err
	}
	// OutputBound's dense reference is O(h²); compare at a reduced
	// horizon, and additionally report the breakpoint path at 1e5.
	logf("bench: OutputBound (dense baseline is O(h^2), ~seconds)...\n")
	const deconvH = rtc.Time(20000)
	curveSum := func(c rtc.Curve, h rtc.Time) (int64, error) {
		var s int64
		for d := rtc.Time(0); d <= h+100; d++ {
			s += c.Eval(d)
		}
		return s, nil
	}
	if err := microCmp("output_bound_20k",
		func() (int64, error) {
			c, err := rtc.OutputBound(healthy.Upper(), svc, deconvH)
			if err != nil {
				return 0, err
			}
			return curveSum(c, deconvH)
		},
		func() (int64, error) {
			c, err := rtc.DenseOutputBound(healthy.Upper(), svc, deconvH)
			if err != nil {
				return 0, err
			}
			return curveSum(c, deconvH)
		},
	); err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, measure("output_bound_100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtc.OutputBound(healthy.Upper(), svc, microH); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// --- DES event path: freelist keeps the hot loop allocation-free. ---
	logf("bench: des event scheduling...\n")
	rep.Benchmarks = append(rep.Benchmarks, measure("des_event_schedule", func(b *testing.B) {
		k := des.NewKernel()
		var n int
		var tick func()
		tick = func() {
			if n > 0 {
				n--
				k.After(1, tick)
			}
		}
		n = 64
		k.After(1, tick)
		k.Run(0)
		b.ReportAllocs()
		b.ResetTimer()
		n = b.N
		k.After(1, tick)
		k.Run(0)
	}))

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ratio guards against division by zero.
func ratio(base, opt int64) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(base) / float64(opt)
}
