package exp

import (
	"fmt"
	"io"

	"ftpn/internal/des"
)

// ReportConfig parameterizes WriteReport.
type ReportConfig struct {
	Runs     int
	Tokens   int64    // workload override, 0 = defaults
	PollUs   des.Time // distance-function poll period
	Parallel int      // worker goroutines for independent runs, 0 = GOMAXPROCS
}

// DefaultReportConfig mirrors the paper's 20-run methodology with a
// 1 ms poll.
func DefaultReportConfig() ReportConfig {
	return ReportConfig{Runs: 20, PollUs: 1000}
}

// WriteReport regenerates the complete evaluation — Table 1, all Table 2
// blocks, Table 3 and a fill profile — as one plain-text report, the
// programmatic equivalent of running every ftpnsim experiment.
func WriteReport(w io.Writer, cfg ReportConfig) error {
	if cfg.Runs < 1 {
		return fmt.Errorf("exp: report needs at least one run")
	}
	if cfg.PollUs <= 0 {
		cfg.PollUs = 1000
	}
	var opts []Option
	if cfg.Parallel > 0 {
		opts = append(opts, WithParallelism(cfg.Parallel))
	}
	fmt.Fprintln(w, "ftpn evaluation report")
	fmt.Fprintln(w, "======================")
	fmt.Fprintln(w)
	fmt.Fprint(w, FormatTable1(Table1()))
	fmt.Fprintln(w)

	for _, name := range []string{"mjpeg", "adpcm", "h264"} {
		app, err := AppByName(name, false, cfg.Tokens)
		if err != nil {
			return err
		}
		res, err := Table2(app, cfg.Runs, opts...)
		if err != nil {
			return fmt.Errorf("exp: report table 2 %s: %w", name, err)
		}
		fmt.Fprintln(w, res.String())
	}

	rows, err := Table3(cfg.Runs, cfg.PollUs, des.Time(cfg.Tokens), opts...)
	if err != nil {
		return fmt.Errorf("exp: report table 3: %w", err)
	}
	fmt.Fprint(w, FormatTable3(rows))
	fmt.Fprintln(w)

	app, err := AppByName("adpcm", false, cfg.Tokens)
	if err != nil {
		return err
	}
	samples, sizing, err := FillProfile(app, 1, app.PeriodUs)
	if err != nil {
		return fmt.Errorf("exp: report fill profile: %w", err)
	}
	fmt.Fprint(w, FormatFillProfile(samples, sizing, app, 1))
	return nil
}
