package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ftpn/internal/des"
	"ftpn/internal/ft"
	"ftpn/internal/rtc"
)

// Sizing is the analytic design of a duplicated system per Section 3.4:
// replicator capacities (eq. 3), selector initial fills (eq. 4) and
// capacities, divergence thresholds (eq. 5) and detection-latency upper
// bounds (eq. 6-8).
type Sizing struct {
	RepCaps  [2]int
	SelInits [2]int
	SelCaps  [2]int
	D        int64 // selector divergence threshold
	DRep     int64 // replicator read-divergence threshold

	SelBoundUs des.Time // eq. 8 bound for a stopped replica at the selector
	RepBoundUs des.Time // queue-fill bound at the replicator
}

// ComputeSizing derives the full analytic design for an application.
func ComputeSizing(app App) (Sizing, error) {
	var s Sizing
	in1, in2 := app.InModel(1), app.InModel(2)
	out1, out2 := app.OutModel(1), app.OutModel(2)
	h := rtc.Horizon(app.Producer, app.Consumer, in1, in2, out1, out2)

	// Eq. 3: replicator queue capacities, one per replica.
	for i, m := range []rtc.PJD{in1, in2} {
		c, err := rtc.BufferCapacity(app.Producer.Upper(), m.Lower(), h)
		if err != nil {
			return s, fmt.Errorf("exp: replicator capacity R%d: %w", i+1, err)
		}
		s.RepCaps[i] = int(c)
		if s.RepCaps[i] < 1 {
			s.RepCaps[i] = 1
		}
	}

	// Eq. 4: initial fills so the consumer never stalls; the virtual
	// capacity |S_k| additionally absorbs the consumer running ahead of
	// replica k by the same amount, hence |S_k| = 2·|S_k|_0 (which
	// reproduces the paper's 4/2 and 6/3 pattern).
	for i, m := range []rtc.PJD{out1, out2} {
		f, err := rtc.InitialFill(m.Lower(), app.Consumer.Upper(), h)
		if err != nil {
			return s, fmt.Errorf("exp: selector initial fill S%d: %w", i+1, err)
		}
		if f < 1 {
			f = 1
		}
		s.SelInits[i] = int(f)
		s.SelCaps[i] = 2 * int(f)
	}

	// Eq. 5: divergence thresholds from the output envelopes (selector)
	// and consumption envelopes (replicator).
	d, err := rtc.DivergenceThreshold(out1.Upper(), out1.Lower(), out2.Upper(), out2.Lower(), h)
	if err != nil {
		return s, fmt.Errorf("exp: selector divergence threshold: %w", err)
	}
	s.D = d
	dr, err := rtc.DivergenceThreshold(in1.Upper(), in1.Lower(), in2.Upper(), in2.Lower(), h)
	if err != nil {
		return s, fmt.Errorf("exp: replicator divergence threshold: %w", err)
	}
	s.DRep = dr

	// Eq. 8: selector detection bound for a fail-silent replica.
	bh := h * 8
	selBound, err := rtc.StoppedDetectionBound([]rtc.Curve{out1.Lower(), out2.Lower()}, s.D, bh)
	if err != nil {
		return s, fmt.Errorf("exp: selector detection bound: %w", err)
	}
	s.SelBoundUs = selBound

	// Replicator bound: a stopped replica's queue (worst case empty at
	// the fault) fills after cap more tokens; the write that finds it
	// full is the cap+1-th. One additional token must be budgeted for a
	// read the replica had already posted when the fault struck (a
	// blocking read in flight completes; the fault model observes faults
	// at interfaces), so the bound is the time for the producer's lower
	// curve to deliver cap+2 tokens. The divergence detector (2·DRep-1
	// consumption events by the healthy replica) may fire earlier; the
	// bound takes the per-replica minimum, then the worst replica.
	for i := range s.RepCaps {
		qf, err := boundForCount(app.Producer.Lower(), int64(s.RepCaps[i])+2, bh)
		if err != nil {
			return s, fmt.Errorf("exp: replicator queue-fill bound R%d: %w", i+1, err)
		}
		other := []rtc.PJD{in1, in2}[1-i]
		dv, err := boundForCount(other.Lower(), 2*s.DRep, bh) // +1 read in flight

		if err != nil {
			dv = qf // divergence never fires within the horizon
		}
		b := qf
		if dv < b {
			b = dv
		}
		if b > s.RepBoundUs {
			s.RepBoundUs = b
		}
	}
	return s, nil
}

// sizingKey is the complete analytic input of ComputeSizing: the six
// arrival/service envelopes. Two apps with equal envelopes have equal
// sizings, whatever their names or payloads.
type sizingKey struct {
	producer, consumer   rtc.PJD
	in1, in2, out1, out2 rtc.PJD
}

var (
	sizingCache              sync.Map // sizingKey -> Sizing
	sizingHits, sizingMisses atomic.Int64
)

// SizingFor returns ComputeSizing(app), memoized on the app's timing
// envelopes. The breakpoint solvers behind eq. 3-8 are deterministic
// pure functions of those envelopes, so a campaign sweeping thousands
// of runs over a handful of (app, jitter-tier) cells computes each
// design exactly once. Errors are not cached (they indicate
// misconfiguration, which the first caller reports).
func SizingFor(app App) (Sizing, error) {
	key := sizingKey{
		producer: app.Producer, consumer: app.Consumer,
		in1: app.InModel(1), in2: app.InModel(2),
		out1: app.OutModel(1), out2: app.OutModel(2),
	}
	if v, ok := sizingCache.Load(key); ok {
		sizingHits.Add(1)
		return v.(Sizing), nil
	}
	s, err := ComputeSizing(app)
	if err != nil {
		return s, err
	}
	sizingMisses.Add(1)
	sizingCache.Store(key, s)
	return s, nil
}

// SizingCacheStats reports (hits, misses) of the SizingFor cache.
func SizingCacheStats() (hits, misses int64) {
	return sizingHits.Load(), sizingMisses.Load()
}

// MKBounds carries the worst-case detection-latency bounds for a
// permanent fail-silent fault under an (m,k) policy: the analytic
// generalization of Sizing's SelBoundUs/RepBoundUs with m extra
// forgiven violations budgeted per detector (k does not appear — a
// permanent fault violates every sample once past the threshold, see
// rtc.DetectionBoundMK).
type MKBounds struct {
	SelBoundUs des.Time
	RepBoundUs des.Time
}

// Worst returns the later of the two detectors' bounds.
func (b MKBounds) Worst() des.Time {
	if b.RepBoundUs > b.SelBoundUs {
		return b.RepBoundUs
	}
	return b.SelBoundUs
}

// MKDetectionBounds re-derives the stopped-replica detection bounds of
// ComputeSizing under an (m,k) policy with violation budget m. m = 0
// reproduces (SelBoundUs, RepBoundUs) exactly.
func MKDetectionBounds(app App, s Sizing, m int) (MKBounds, error) {
	var b MKBounds
	if m < 0 {
		m = 0
	}
	in1, in2 := app.InModel(1), app.InModel(2)
	out1, out2 := app.OutModel(1), app.OutModel(2)
	bh := rtc.Horizon(app.Producer, app.Consumer, in1, in2, out1, out2) * 8

	sel, err := rtc.StoppedDetectionBoundMK([]rtc.Curve{out1.Lower(), out2.Lower()}, s.D, m, bh)
	if err != nil {
		return b, fmt.Errorf("exp: mk selector detection bound: %w", err)
	}
	b.SelBoundUs = sel

	// Replicator side, mirroring ComputeSizing: the queue-full detector
	// tolerates m forgiven full-queue writes (each one producer token),
	// the read-divergence detector m extra healthy-side consumptions.
	for i := range s.RepCaps {
		qf, err := boundForCount(app.Producer.Lower(), int64(s.RepCaps[i])+2+int64(m), bh)
		if err != nil {
			return b, fmt.Errorf("exp: mk replicator queue-fill bound R%d: %w", i+1, err)
		}
		other := []rtc.PJD{in1, in2}[1-i]
		dv, err := boundForCount(other.Lower(), 2*s.DRep+int64(m), bh)
		if err != nil {
			dv = qf // divergence never fires within the horizon
		}
		rb := qf
		if dv < rb {
			rb = dv
		}
		if rb > b.RepBoundUs {
			b.RepBoundUs = rb
		}
	}
	return b, nil
}

// boundForCount returns the smallest Δ with curve(Δ) >= need, via the
// breakpoint-driven inversion (rtc.TimeToReach) instead of a tick scan.
func boundForCount(c rtc.Curve, need rtc.Count, horizon des.Time) (des.Time, error) {
	return rtc.TimeToReach(c, need, horizon)
}

// BuildConfig converts the sizing into the ft transform's configuration
// for the application's boundary channels.
func (s Sizing) BuildConfig(app App) ft.BuildConfig {
	return ft.BuildConfig{
		ReplicatorCaps: map[string][2]int{app.InChan: s.RepCaps},
		ReplicatorD:    map[string]int64{app.InChan: s.DRep},
		SelectorCaps:   map[string][2]int{app.OutChan: s.SelCaps},
		SelectorInits:  map[string][2]int{app.OutChan: s.SelInits},
		SelectorD:      map[string]int64{app.OutChan: s.D},
	}
}
