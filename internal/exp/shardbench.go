package exp

// Sharded-simulation suite behind `ftpnsim -exp shardbench`: measures
// how a single simulation scales when its process network is split
// across conservative (Chandy–Misra) kernel shards, and machine-checks
// the contract the whole design rests on — the sharded run's canonical
// trace is byte-identical to the single-kernel oracle for every
// application and every shard count. Emits BENCH_PR6.json.
//
// Speedups are honest about the host: parallel gain is bounded by
// min(shards, host CPUs), and on a single-CPU host a sharded run pays
// the synchronization protocol with no parallelism to show for it, so
// the report always records host_cpus next to every ratio.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
)

// ShardBenchConfig parameterizes the suite.
type ShardBenchConfig struct {
	// Shards are the shard counts to sweep (default 1, 2, 4, 8).
	Shards []int
	// Timers is the resident-timer population for the dispatch scaling
	// benchmark (default 1024).
	Timers int
	// Events is the total dispatch count per scaling point (default 400k).
	Events int64
	// Tokens is the workload length of the identity runs (default 24).
	Tokens int64
}

// ShardScalePoint is one measured shard count.
type ShardScalePoint struct {
	Shards       int     `json:"shards"`
	WallNs       int64   `json:"wall_ns"`
	Speedup      float64 `json:"speedup_vs_single_kernel"`
	NullMessages int64   `json:"null_messages"`
	Grants       int64   `json:"grants"`
	Parks        int64   `json:"parks"`
	Drained      int64   `json:"drained"`
	Identical    bool    `json:"identical,omitempty"`
}

// ShardIdentityRow is one application's identity matrix.
type ShardIdentityRow struct {
	App       string `json:"app"`
	Processes int    `json:"processes"`
	Shards    []int  `json:"shards_checked"`
	Identical bool   `json:"identical"`
}

// ShardBenchReport is the schema of BENCH_PR6.json.
type ShardBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`
	HostCPUs    int    `json:"host_cpus"`
	Note        string `json:"note,omitempty"`

	// DispatchBaselineNs is the single plain Kernel's wall-clock for the
	// same event population the sharded sweep dispatches.
	DispatchTimers     int               `json:"dispatch_timers"`
	DispatchEvents     int64             `json:"dispatch_events"`
	DispatchBaselineNs int64             `json:"dispatch_baseline_ns"`
	Dispatch           []ShardScalePoint `json:"dispatch_scaling"`

	// Chain is the end-to-end pipeline-network sweep with per-point
	// trace-identity verification against the sequential oracle.
	ChainProcesses  int               `json:"chain_processes"`
	ChainTokens     int64             `json:"chain_tokens"`
	ChainBaselineNs int64             `json:"chain_baseline_ns"`
	Chain           []ShardScalePoint `json:"chain_scaling"`

	// Apps is the identity matrix: every application, every shard count.
	Apps []ShardIdentityRow `json:"app_identity"`
}

// benchShardDispatch runs `timers` self-rescheduling mixed-period
// timers distributed over the shards until `events` total dispatches,
// with the shards synchronized in a link ring so the conservative
// protocol (windowed advance, null-message publications) is actually
// exercised. shards == 0 means a plain single Kernel — the baseline.
func benchShardDispatch(shards, timers int, events int64) (int64, des.ShardStats) {
	periods := []des.Time{1, 2, 3, 5, 8, 40, 130, 1000, 9000, 100000}
	if shards == 0 {
		k := des.NewKernel()
		var left int64 = events - int64(timers)
		ticks := make([]func(), timers)
		for t := 0; t < timers; t++ {
			per := periods[t%len(periods)]
			t := t
			ticks[t] = func() {
				if left > 0 {
					left--
					k.After(per, ticks[t])
				}
			}
		}
		start := time.Now()
		for t := 0; t < timers; t++ {
			k.After(periods[t%len(periods)], ticks[t])
		}
		k.Run(0)
		return time.Since(start).Nanoseconds(), des.ShardStats{}
	}

	sk := des.NewShardedKernel(shards)
	if shards > 1 {
		for i := 0; i < shards; i++ {
			sk.Connect(i, (i+1)%shards, 500)
		}
	}
	perShard := timers / shards
	left := make([]int64, shards)
	for s := 0; s < shards; s++ {
		n := perShard
		if s == shards-1 {
			n = timers - perShard*(shards-1)
		}
		left[s] = events/int64(shards) - int64(n)
		k := sk.Shard(s)
		ticks := make([]func(), n)
		for t := 0; t < n; t++ {
			per := periods[(s*perShard+t)%len(periods)]
			s, t := s, t
			ticks[t] = func() {
				if left[s] > 0 {
					left[s]--
					k.After(per, ticks[t])
				}
			}
		}
		for t := 0; t < n; t++ {
			k.After(periods[(s*perShard+t)%len(periods)], ticks[t])
		}
	}
	start := time.Now()
	sk.Run(0)
	wall := time.Since(start).Nanoseconds()
	stats := sk.Stats()
	sk.Shutdown()
	return wall, stats
}

// shardChainNet builds a deterministic pipeline network wide enough to
// partition eight ways: producer -> 6 transforms -> consumer, all
// channels carrying RTC delay bounds.
func shardChainNet(tokens int64, rec *[]int64) *kpn.Network {
	n := &kpn.Network{Name: "shardchain"}
	n.Procs = append(n.Procs, kpn.ProcessSpec{Name: "P", New: func(int) kpn.Behavior {
		return kpn.Producer(rtc.PJD{Period: 120, Jitter: 15}, 7, tokens,
			func(i int64) []byte { return []byte{byte(i), byte(i >> 8)} })
	}})
	prev := "P"
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("T%d", i)
		seed := int64(100 + i)
		n.Procs = append(n.Procs, kpn.ProcessSpec{Name: name, New: func(int) kpn.Behavior {
			return kpn.Transform(kpn.WorkModel{BaseUs: 18, JitterUs: 9}, seed,
				func(j int64, b []byte) []byte { return append(b, byte(j)) })
		}})
		n.Chans = append(n.Chans, kpn.ChannelSpec{
			Name: fmt.Sprintf("c%d", i), From: prev, To: name, Capacity: 8, DelayUs: 40,
		})
		prev = name
	}
	n.Procs = append(n.Procs, kpn.ProcessSpec{Name: "C", New: func(int) kpn.Behavior {
		return kpn.Consumer(rtc.PJD{Period: 120, Jitter: 15}, 9, tokens,
			func(now des.Time, tok kpn.Token) { *rec = append(*rec, tok.Seq) })
	}})
	n.Chans = append(n.Chans, kpn.ChannelSpec{
		Name: "cout", From: prev, To: "C", Capacity: 8, DelayUs: 40,
	})
	return n
}

// runNetSequential instantiates net on one plain kernel and returns its
// canonical trace and wall-clock.
func runNetSequential(net *kpn.Network) ([]byte, int64, error) {
	k := des.NewKernel()
	tc := des.NewTraceCollector()
	tc.Attach(k)
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	k.Run(0)
	wall := time.Since(start).Nanoseconds()
	k.Shutdown()
	return tc.Bytes(), wall, nil
}

// runNetSharded partitions net across the given shard count and returns
// the canonical trace, wall-clock and protocol stats.
func runNetSharded(net *kpn.Network, shards int) ([]byte, int64, des.ShardStats, error) {
	plan, err := kpn.PartitionNetwork(net, shards)
	if err != nil {
		return nil, 0, des.ShardStats{}, err
	}
	sk := des.NewShardedKernel(plan.Shards)
	tc := des.NewTraceCollector()
	for i := 0; i < sk.NumShards(); i++ {
		tc.Attach(sk.Shard(i))
	}
	if _, err := net.InstantiateSharded(sk, plan, kpn.Options{}); err != nil {
		return nil, 0, des.ShardStats{}, err
	}
	start := time.Now()
	sk.Run(0)
	wall := time.Since(start).Nanoseconds()
	stats := sk.Stats()
	sk.Shutdown()
	return tc.Bytes(), wall, stats, nil
}

// RunShardBenchSuite measures the suite and writes the JSON report to w.
func RunShardBenchSuite(w io.Writer, log io.Writer, cfg ShardBenchConfig) error {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 8}
	}
	if cfg.Timers <= 0 {
		cfg.Timers = 1024
	}
	if cfg.Events <= 0 {
		cfg.Events = 400_000
	}
	if cfg.Tokens <= 0 {
		cfg.Tokens = 24
	}
	rep := ShardBenchReport{
		GeneratedBy:    "ftpnsim -exp shardbench",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		HostCPUs:       runtime.NumCPU(),
		DispatchTimers: cfg.Timers,
		DispatchEvents: cfg.Events,
		ChainTokens:    cfg.Tokens * 12, // longer workload so protocol cost amortizes
	}
	if rep.HostCPUs < 4 {
		rep.Note = fmt.Sprintf("host has %d CPU(s): parallel speedup is bounded by min(shards, host_cpus); on a single-CPU host the sweep measures protocol overhead, not parallelism", rep.HostCPUs)
	}

	// --- Dispatch scaling: resident-timer population split over shards. ---
	logf("shardbench: dispatch baseline, %d timers, %d events on one kernel...\n", cfg.Timers, cfg.Events)
	base, _ := benchShardDispatch(0, cfg.Timers, cfg.Events)
	rep.DispatchBaselineNs = base
	for _, s := range cfg.Shards {
		logf("shardbench: dispatch on %d shard(s)...\n", s)
		wall, stats := benchShardDispatch(s, cfg.Timers, cfg.Events)
		rep.Dispatch = append(rep.Dispatch, ShardScalePoint{
			Shards: s, WallNs: wall, Speedup: ratio(base, wall),
			NullMessages: stats.NullMessages, Grants: stats.Grants,
			Parks: stats.Parks, Drained: stats.Drained,
		})
	}

	// --- Pipeline-network scaling with per-point identity. ---
	var seqSink []int64
	seqNet := shardChainNet(rep.ChainTokens, &seqSink)
	rep.ChainProcesses = len(seqNet.Procs)
	logf("shardbench: chain baseline, %d processes, %d tokens...\n", rep.ChainProcesses, rep.ChainTokens)
	oracle, chainBase, err := runNetSequential(seqNet)
	if err != nil {
		return err
	}
	rep.ChainBaselineNs = chainBase
	for _, s := range cfg.Shards {
		logf("shardbench: chain on %d shard(s)...\n", s)
		var sink []int64
		trace, wall, stats, err := runNetSharded(shardChainNet(rep.ChainTokens, &sink), s)
		if err != nil {
			return err
		}
		rep.Chain = append(rep.Chain, ShardScalePoint{
			Shards: s, WallNs: wall, Speedup: ratio(chainBase, wall),
			NullMessages: stats.NullMessages, Grants: stats.Grants,
			Parks: stats.Parks, Drained: stats.Drained,
			Identical: bytes.Equal(trace, oracle),
		})
		if !bytes.Equal(trace, oracle) {
			return fmt.Errorf("shardbench: chain trace at %d shards diverged from the sequential oracle", s)
		}
	}

	// --- Application identity matrix: every app, shard counts 1..8. ---
	for _, name := range []string{"mjpeg", "adpcm", "h264", "radar"} {
		app, err := AppByName(name, false, cfg.Tokens)
		if err != nil {
			return err
		}
		logf("shardbench: identity matrix for %s (%d tokens)...\n", name, cfg.Tokens)
		seq, err := app.Build(nil)
		if err != nil {
			return err
		}
		seq = seq.WithDelays(50)
		oracle, _, err := runNetSequential(seq)
		if err != nil {
			return err
		}
		row := ShardIdentityRow{App: name, Processes: len(seq.Procs), Identical: true}
		for s := 1; s <= 8; s++ {
			net, err := app.Build(nil)
			if err != nil {
				return err
			}
			trace, _, _, err := runNetSharded(net.WithDelays(50), s)
			if err != nil {
				return err
			}
			row.Shards = append(row.Shards, s)
			if !bytes.Equal(trace, oracle) {
				row.Identical = false
			}
		}
		rep.Apps = append(rep.Apps, row)
		if !row.Identical {
			return fmt.Errorf("shardbench: %s sharded trace diverged from the sequential oracle", name)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
