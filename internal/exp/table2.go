package exp

import (
	"fmt"
	"strings"
	"time"
	"unsafe"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/trace"
)

// appCodeBytes is the documented proxy for "application code size" used
// to express memory overhead as a percentage, standing in for the
// paper's measured binary sizes (~300 KB for its SCC applications).
const appCodeBytes = 300 * 1024

// Table2Result is one application's block of the paper's Table 2.
type Table2Result struct {
	App    App
	Sizing Sizing

	// Observed maxima under fault-free conditions.
	RepMaxFill [2]int
	SelMaxFill int

	// Fault-detection latency over the fault runs, in µs.
	SelLatency trace.Stats
	RepLatency trace.Stats
	Undetected int
	FalsePos   int

	// Consumer inter-arrival timing, reference vs duplicated (µs).
	RefInter *trace.Stats
	DupInter *trace.Stats

	// Overheads.
	MemSelBytes, MemRepBytes   int   // framework state excluding payloads
	MemSelTokens, MemRepTokens int   // token slots held
	SelOpNs, RepOpNs           int64 // measured host time per channel op

	Runs int
}

// faultRun is the order-independent outcome of one fault-injection run,
// computed inside the worker and aggregated in run order afterwards.
type faultRun struct {
	selDet, repDet bool
	selLat, repLat des.Time
	falsePos       int
}

// Table2 runs the full Table 2 experiment for one application: a
// reference run and a fault-free duplicated run (fill validation and
// timing comparison), then `runs` fault runs alternating the faulty
// replica with the injection phase swept across a period. Each run owns
// its own des.Kernel, so runs execute on a worker pool (see
// WithParallelism); aggregation is in run order, making the result
// independent of the parallelism level.
func Table2(app App, runs int, opts ...Option) (*Table2Result, error) {
	if runs < 1 {
		return nil, fmt.Errorf("exp: need at least one run")
	}
	cfg := newRunConfig(opts)
	sizing, err := SizingFor(app)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{App: app, Sizing: sizing, Runs: runs}

	// Reference run and fault-free duplicated run, as a two-task pool.
	refArr := &trace.Arrivals{}
	dupArr := &trace.Arrivals{}
	var dupSys *ft.System
	if _, err := runIndexed(cfg.workers, 2, func(i int) (struct{}, error) {
		if i == 0 {
			return struct{}{}, runReference(app, refArr)
		}
		sys, err := runDuplicated(app, sizing, dupArr, nil)
		dupSys = sys
		return struct{}{}, err
	}); err != nil {
		return nil, err
	}
	res.RefInter = refArr.Inter(app.OutInit + 2)
	res.DupInter = dupArr.Inter(max(sizing.SelInits[0], sizing.SelInits[1]) + 2)
	rep := dupSys.Replicators[app.InChan]
	sel := dupSys.Selectors[app.OutChan]
	res.RepMaxFill = [2]int{rep.MaxFill(1), rep.MaxFill(2)}
	res.SelMaxFill = sel.MaxFill()
	res.FalsePos += len(dupSys.Faults)

	// Fault runs: simulate in parallel, aggregate sequentially.
	warmup := des.Time(app.Tokens/2) * app.PeriodUs
	outcomes, err := runIndexed(cfg.workers, runs, func(j int) (faultRun, error) {
		replica := 1 + j%2
		injectAt := warmup + des.Time(j)*app.PeriodUs/des.Time(runs)
		sys, err := runDuplicated(app, sizing, nil, func(s *ft.System) {
			s.InjectFault(replica, injectAt, fault.StopAll, 0)
		})
		if err != nil {
			return faultRun{}, err
		}
		var o faultRun
		for _, f := range sys.Faults {
			if f.Replica != replica {
				o.falsePos++
				continue
			}
			switch f.Channel {
			case app.OutChan:
				if !o.selDet {
					o.selLat = f.At - injectAt
					o.selDet = true
				}
			case app.InChan:
				if !o.repDet {
					o.repLat = f.At - injectAt
					o.repDet = true
				}
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		res.FalsePos += o.falsePos
		if o.selDet {
			res.SelLatency.Add(o.selLat)
		}
		if o.repDet {
			res.RepLatency.Add(o.repLat)
		}
		if !o.selDet || !o.repDet {
			res.Undetected++
		}
	}

	// Memory overhead: framework state sizes (structs plus queue-slot
	// metadata), excluding token payload storage, as the paper reports.
	res.MemSelTokens = max(sizing.SelCaps[0], sizing.SelCaps[1])
	res.MemRepTokens = sizing.RepCaps[0] + sizing.RepCaps[1]
	tokSlot := int(unsafe.Sizeof(kpn.Token{}))
	res.MemSelBytes = int(unsafe.Sizeof(ft.Selector{})) + res.MemSelTokens*tokSlot
	res.MemRepBytes = int(unsafe.Sizeof(ft.Replicator{})) + res.MemRepTokens*tokSlot

	// Runtime overhead: host nanoseconds per channel operation.
	if cfg.opCosts {
		res.SelOpNs, res.RepOpNs = measureOpCosts(sizing)
	}
	return res, nil
}

// runReference instantiates and runs the reference network.
func runReference(app App, arr *trace.Arrivals) error {
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		if arr != nil {
			arr.Record(now)
		}
	})
	if err != nil {
		return err
	}
	k := des.NewKernel()
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		return err
	}
	k.Run(0)
	k.Shutdown()
	return nil
}

// runDuplicated builds and runs the duplicated system with the given
// sizing, optionally injecting a fault before the run.
func runDuplicated(app App, sizing Sizing, arr *trace.Arrivals, inject func(*ft.System)) (*ft.System, error) {
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		if arr != nil {
			arr.Record(now)
		}
	})
	if err != nil {
		return nil, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, sizing.BuildConfig(app))
	if err != nil {
		return nil, err
	}
	if inject != nil {
		inject(sys)
	}
	k.Run(0)
	k.Shutdown()
	return sys, nil
}

// measureOpCosts times selector and replicator operations on the host,
// yielding the per-operation runtime overhead the paper reports as a
// fraction of the application period.
func measureOpCosts(sizing Sizing) (selNs, repNs int64) {
	return measureOpCostsInstrumented(sizing, nil)
}

// measureOpCostsInstrumented is measureOpCosts with an optional
// instrumentation step (ft.Instrument / ft.InstrumentTrace) applied to
// the bench channels before the measurement; the obsbench suite uses it
// to price the probe hooks.
func measureOpCostsInstrumented(sizing Sizing, instrument func(*ft.System)) (selNs, repNs int64) {
	const ops = 20000
	k := des.NewKernel()
	sel := ft.NewSelector(k, "bench-sel", sizing.SelCaps, [2]int{0, 0}, sizing.D, nil, nil)
	rep := ft.NewReplicator(k, "bench-rep", sizing.RepCaps, nil)
	if instrument != nil {
		instrument(&ft.System{
			K:           k,
			Selectors:   map[string]*ft.Selector{"bench-sel": sel},
			Replicators: map[string]*ft.Replicator{"bench-rep": rep},
		})
	}
	k.Spawn("driver", 0, func(p *des.Proc) {
		tok := kpn.Token{Seq: 1}
		start := time.Now()
		for i := 0; i < ops; i++ {
			sel.WriterPort(1).Write(p, tok)
			sel.WriterPort(2).Write(p, tok) // late duplicate: dropped
			sel.ReaderPort().Read(p)
		}
		selNs = time.Since(start).Nanoseconds() / (3 * ops)
		start = time.Now()
		for i := 0; i < ops; i++ {
			rep.WriterPort().Write(p, tok)
			rep.ReaderPort(1).Read(p)
			rep.ReaderPort(2).Read(p)
		}
		repNs = time.Since(start).Nanoseconds() / (3 * ops)
	})
	k.Run(0)
	k.Shutdown()
	return selNs, repNs
}

// usToMS formats microseconds as milliseconds with one decimal.
func usToMS(us int64) string { return fmt.Sprintf("%.1f", float64(us)/1000) }

// String renders the result paper-style.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — %s (runs=%d)\n", r.App.Name, r.Runs)
	fmt.Fprintf(&b, "  FIFO                     |R1| |R2| |S1| |S2| |S1|0 |S2|0\n")
	fmt.Fprintf(&b, "  Theoretical capacity      %3d  %3d  %3d  %3d  %4d  %4d\n",
		r.Sizing.RepCaps[0], r.Sizing.RepCaps[1], r.Sizing.SelCaps[0], r.Sizing.SelCaps[1],
		r.Sizing.SelInits[0], r.Sizing.SelInits[1])
	fmt.Fprintf(&b, "  Max observed fill         %3d  %3d  %3d  (no faults)\n",
		r.RepMaxFill[0], r.RepMaxFill[1], r.SelMaxFill)
	fmt.Fprintf(&b, "  Divergence thresholds     D=%d (selector)  D=%d (replicator)\n", r.Sizing.D, r.Sizing.DRep)
	fmt.Fprintf(&b, "  Fault detection latency (ms)\n")
	fmt.Fprintf(&b, "    at selector:   min %s  max %s  mean %s  p95 %s   upper bound %s\n",
		usToMS(r.SelLatency.Min()), usToMS(r.SelLatency.Max()), usToMS(r.SelLatency.Mean()),
		usToMS(r.SelLatency.Percentile(95)), usToMS(r.Sizing.SelBoundUs))
	fmt.Fprintf(&b, "    at replicator: min %s  max %s  mean %s  p95 %s   upper bound %s\n",
		usToMS(r.RepLatency.Min()), usToMS(r.RepLatency.Max()), usToMS(r.RepLatency.Mean()),
		usToMS(r.RepLatency.Percentile(95)), usToMS(r.Sizing.RepBoundUs))
	fmt.Fprintf(&b, "    undetected=%d false positives=%d\n", r.Undetected, r.FalsePos)
	fmt.Fprintf(&b, "  Overhead\n")
	fmt.Fprintf(&b, "    memory: selector %.1fKB+%dTokens (%.1f%%), replicator %.1fKB+%dTokens (%.1f%%)\n",
		float64(r.MemSelBytes)/1024, r.MemSelTokens, 100*float64(r.MemSelBytes)/appCodeBytes,
		float64(r.MemRepBytes)/1024, r.MemRepTokens, 100*float64(r.MemRepBytes)/appCodeBytes)
	fmt.Fprintf(&b, "    runtime: selector %dns/op (%.3f%% of period), replicator %dns/op (%.3f%% of period)\n",
		r.SelOpNs, 100*float64(r.SelOpNs)/float64(r.App.PeriodUs*1000),
		r.RepOpNs, 100*float64(r.RepOpNs)/float64(r.App.PeriodUs*1000))
	fmt.Fprintf(&b, "  Consumer inter-arrival (ms)\n")
	fmt.Fprintf(&b, "    reference:  min %s max %s mean %s\n",
		usToMS(r.RefInter.Min()), usToMS(r.RefInter.Max()), usToMS(r.RefInter.Mean()))
	fmt.Fprintf(&b, "    duplicated: min %s max %s mean %s\n",
		usToMS(r.DupInter.Min()), usToMS(r.DupInter.Max()), usToMS(r.DupInter.Mean()))
	return b.String()
}
