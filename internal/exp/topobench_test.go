package exp

import (
	"bytes"
	"testing"
)

// TestTopoBenchProperties property-checks a slice of the generated
// topology space: zero violations across structure, sizing, golden
// fault-free runs, (m,k) bounds, fault scripts and sharded identity,
// plus the four paper apps round-tripping through the DSL.
func TestTopoBenchProperties(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	rep, err := TopoBench(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d property violations:\n%s", rep.Violations, rep.String())
	}
	if rep.IdentityChecked != n || rep.MKChecked != n {
		t.Fatalf("identity/mk checks ran on %d/%d of %d networks", rep.IdentityChecked, rep.MKChecked, n)
	}
	if rep.Detected == 0 {
		t.Fatal("no faults detected across the sweep — fault scenarios are not exercising detection")
	}
	if len(rep.Apps) != len(topoAppNames) {
		t.Fatalf("app round-trips: %d of %d ran", len(rep.Apps), len(topoAppNames))
	}
	for _, a := range rep.Apps {
		if !a.SizingEqual || !a.GoldenIdentical {
			t.Errorf("app %s round-trip: sizing_equal=%v golden_identical=%v %v",
				a.App, a.SizingEqual, a.GoldenIdentical, a.Violations)
		}
	}
}

// TestTopoBenchParallelIdentity: the report is bit-identical at any
// -parallel level (runIndexed aggregation order).
func TestTopoBenchParallelIdentity(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	seq, err := TopoBench(n, 7, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := TopoBench(n, 7, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := seq.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("topobench report differs between -parallel 1 and 8:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}
