package exp

import (
	"fmt"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
)

// FillSample is one periodic observation of the duplicated system's
// queue levels.
type FillSample struct {
	At       des.Time
	RepFill  [2]int
	SelFill  int
	SelSpace [2]int64
}

// FillProfile runs the duplicated application with a stop fault on the
// given replica and samples queue fills every samplePeriod ticks — the
// raw material of a fill-over-time figure: the faulty replica's
// replicator queue climbing to its capacity, the selector fill dipping
// while the healthy replica takes over, and the faulty interface's
// space counter running away after the fault.
func FillProfile(app App, replica int, samplePeriod des.Time) ([]FillSample, Sizing, error) {
	sizing, err := SizingFor(app)
	if err != nil {
		return nil, sizing, err
	}
	net, err := app.Build(nil)
	if err != nil {
		return nil, sizing, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, sizing.BuildConfig(app))
	if err != nil {
		return nil, sizing, err
	}
	injectAt := des.Time(app.Tokens/2) * app.PeriodUs
	sys.InjectFault(replica, injectAt, fault.StopAll, 0)

	rep := sys.Replicators[app.InChan]
	sel := sys.Selectors[app.OutChan]
	var samples []FillSample
	k.Every(samplePeriod, func() bool {
		samples = append(samples, FillSample{
			At:       k.Now(),
			RepFill:  [2]int{rep.Fill(1), rep.Fill(2)},
			SelFill:  sel.Fill(),
			SelSpace: [2]int64{sel.Space(1), sel.Space(2)},
		})
		return !k.Stopped()
	})
	k.Run(des.Time(app.Tokens) * app.PeriodUs * 2)
	k.Stop()
	k.Shutdown()
	return samples, sizing, nil
}

// FormatFillProfile renders the profile as an ASCII chart of the faulty
// replica's replicator-queue fill around the injection instant.
func FormatFillProfile(samples []FillSample, sizing Sizing, app App, replica int) string {
	var b strings.Builder
	injectAt := des.Time(app.Tokens/2) * app.PeriodUs
	fmt.Fprintf(&b, "Replicator queue fill of replica %d (%s); fault at t=%s ms, capacity %d\n",
		replica, app.Name, usToMS(injectAt), sizing.RepCaps[replica-1])
	lo := injectAt - 10*app.PeriodUs
	hi := injectAt + des.Time(sizing.RepBoundUs) + 5*app.PeriodUs
	for _, s := range samples {
		if s.At < lo || s.At > hi {
			continue
		}
		fill := s.RepFill[replica-1]
		marker := " "
		if s.At >= injectAt && s.At < injectAt+app.PeriodUs {
			marker = "<- fault injected"
		}
		fmt.Fprintf(&b, "  t=%8s ms |%-*s| %d %s\n",
			usToMS(s.At), sizing.RepCaps[replica-1], strings.Repeat("#", fill), fill, marker)
	}
	return b.String()
}
