package exp

// latbench turns the detection-bound invariant the other benches check
// pass/fail into a measured distribution: for hundreds of generated
// stop-scenario topologies (plus the paper apps under every stop mode)
// it runs the duplicated system with the flight recorder armed,
// measures the injected-fault→conviction latency, compares each run
// against its own analytic (m,k) detection bound, and cross-checks the
// measurement against the forensic reconstruction (obs.Explain) of the
// recorder's event log. The report aggregates p50/p95/p99/max latency
// and a bound-slack histogram — the paper's Table 3 story at fleet
// scale. Runs aggregate in index order (runIndexed) and every per-run
// event log is hashed from its canonical serialization, so the report
// is bit-identical at any -parallel level.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/obs"
	"ftpn/internal/topo"
	"ftpn/internal/trace"
)

// LatRun is one generated stop-topology latency measurement.
type LatRun struct {
	Seed   int64  `json:"seed"`
	Name   string `json:"name"`
	Shape  string `json:"shape"`
	Mode   string `json:"mode"` // stop-all / stop-consuming / stop-producing
	Policy string `json:"policy"`

	InjectAtUs int64 `json:"inject_at_us"`
	DetectedUs int64 `json:"detected_us"` // -1: never convicted
	LatencyUs  int64 `json:"latency_us"`
	BoundUs    int64 `json:"bound_us"`
	SlackUs    int64 `json:"slack_us"`
	// SlackPct is 100*(bound-latency)/bound — how much of the analytic
	// detection budget the run left unused.
	SlackPct float64 `json:"slack_pct"`

	// ForensicsOK reports that obs.Explain reconstructed the same
	// injection instant, latency and fault mode from the event log that
	// the harness measured directly.
	ForensicsOK bool `json:"forensics_ok"`
	// EventsHash is an FNV-1a hash of the recorder's canonical
	// serialization; identical across -parallel levels by construction.
	EventsHash uint64 `json:"events_hash"`
	Events     int    `json:"events"`

	Violations []string `json:"violations,omitempty"`
}

// LatAppRun is one paper app × stop mode × policy latency measurement.
type LatAppRun struct {
	App    string `json:"app"`
	Mode   string `json:"mode"`
	Policy string `json:"policy"`

	InjectAtUs  int64    `json:"inject_at_us"`
	DetectedUs  int64    `json:"detected_us"`
	LatencyUs   int64    `json:"latency_us"`
	BoundUs     int64    `json:"bound_us"`
	SlackPct    float64  `json:"slack_pct"`
	ForensicsOK bool     `json:"forensics_ok"`
	Violations  []string `json:"violations,omitempty"`
}

// LatSlackBucket is one bound-slack histogram bucket: runs whose
// SlackPct fell in [LoPct, HiPct).
type LatSlackBucket struct {
	LoPct float64 `json:"lo_pct"`
	HiPct float64 `json:"hi_pct"`
	Count int     `json:"count"`
}

// LatOverhead pins the flight recorder's probe-hook cost: the
// arbitration-channel op costs with the recorder disabled (nil stream —
// nothing installed) versus enabled, plus the Record call itself on the
// nil and live paths. Wall-clock figures, so they are reported but
// never folded into the deterministic aggregates.
type LatOverhead struct {
	SelNsOff int64 `json:"sel_ns_recorder_off"`
	RepNsOff int64 `json:"rep_ns_recorder_off"`
	SelNsOn  int64 `json:"sel_ns_recorder_on"`
	RepNsOn  int64 `json:"rep_ns_recorder_on"`

	RecordNsOff     int64 `json:"record_ns_disabled"`
	RecordAllocsOff int64 `json:"record_allocs_disabled"`
	RecordNsOn      int64 `json:"record_ns_enabled"`
	RecordAllocsOn  int64 `json:"record_allocs_enabled"`

	// Seed-tree baselines (scripts/bench.sh feeds them through
	// -seed-sel-ns/-seed-rep-ns); 0 = not compared.
	SeedSelNs int64 `json:"seed_sel_ns,omitempty"`
	SeedRepNs int64 `json:"seed_rep_ns,omitempty"`
}

// LatBenchReport is the full latbench result.
type LatBenchReport struct {
	GeneratedBy  string `json:"generated_by"`
	Networks     int    `json:"networks"`
	Seed         int64  `json:"seed"`
	SeedsScanned int64  `json:"seeds_scanned"`

	Modes    map[string]int `json:"modes"`
	Policies map[string]int `json:"policies"`

	Convicted        int `json:"convicted"`
	BoundChecked     int `json:"bound_checked"`
	ForensicsChecked int `json:"forensics_checked"`

	P50Us  int64 `json:"p50_us"`
	P95Us  int64 `json:"p95_us"`
	P99Us  int64 `json:"p99_us"`
	MaxUs  int64 `json:"max_us"`
	MinUs  int64 `json:"min_us"`
	MeanUs int64 `json:"mean_us"`

	SlackP50Pct float64          `json:"slack_p50_pct"`
	SlackMinPct float64          `json:"slack_min_pct"`
	SlackHist   []LatSlackBucket `json:"slack_hist"`

	Violations    int      `json:"violations"`
	ViolatingRuns []LatRun `json:"violating_runs,omitempty"` // first 20

	Apps []LatAppRun `json:"apps"`

	Overhead *LatOverhead `json:"overhead,omitempty"`
}

// stopBound selects the analytic bound a stop mode is held to: a
// producer-side stop starves the selector (SelBound), a consumer-side
// stop backs up the replicator queue (RepBound), a full stop trips
// whichever detector fires first.
func stopBound(mode fault.Mode, b MKBounds) des.Time {
	switch mode {
	case fault.StopAll:
		return min(b.SelBoundUs, b.RepBoundUs)
	case fault.StopProducing:
		return b.SelBoundUs
	case fault.StopConsuming:
		return b.RepBoundUs
	}
	return 0
}

// eventsHash hashes the recorder's canonical serialization (FNV-1a).
func eventsHash(fr *obs.FlightRecorder) uint64 {
	h := fnv.New64a()
	h.Write(fr.Bytes())
	return h.Sum64()
}

// checkForensics verifies that the forensic reconstruction of the
// conviction matches the directly measured injection/latency, and that
// for value convictions the chain carries replay evidence.
func checkForensics(fr *obs.FlightRecorder, first ft.Fault, injectAt des.Time, mode string) (obs.Explanation, []string) {
	var problems []string
	ex, ok := obs.Explain(fr.Events(), first.Channel, first.Replica, int64(first.At))
	if !ok {
		return ex, []string{"forensics: no convict event in the flight log"}
	}
	if ex.InjectedAt != int64(injectAt) {
		problems = append(problems, fmt.Sprintf("forensics: injection reconstructed at %dus, injected at %dus", ex.InjectedAt, injectAt))
	}
	if ex.LatencyUs != int64(first.At-injectAt) {
		problems = append(problems, fmt.Sprintf("forensics: latency reconstructed as %dus, measured %dus", ex.LatencyUs, first.At-injectAt))
	}
	if ex.FaultMode != mode {
		problems = append(problems, fmt.Sprintf("forensics: fault mode reconstructed as %q, injected %q", ex.FaultMode, mode))
	}
	if first.Kind == ft.KindValue && ex.ValueDrops == 0 && ex.Reason != string(ft.ReasonValueDivergence) {
		problems = append(problems, "forensics: value conviction without replay evidence in the chain")
	}
	return ex, problems
}

// latTopoOne measures detection latency on one generated stop topology.
func latTopoOne(seed int64) (LatRun, error) {
	spec := topo.Generate(seed)
	run := LatRun{
		Seed: seed, Name: spec.Name, Shape: spec.Shape,
		Policy: "inline", DetectedUs: -1, LatencyUs: -1, SlackPct: -1,
	}
	violate := func(format string, args ...any) {
		run.Violations = append(run.Violations, fmt.Sprintf(format, args...))
	}
	if len(spec.Faults) == 0 {
		violate("seed %d is not a fault scenario", seed)
		return run, nil
	}
	fs := spec.Faults[0]
	mode, ok := fault.ModeByName(fs.Mode)
	if !ok {
		violate("unknown fault mode %q", fs.Mode)
		return run, nil
	}
	run.Mode = fs.Mode
	pol := ft.PolicySpec{}
	if spec.Detection != nil {
		pol = *spec.Detection
		run.Policy = pol.String()
	}
	pol.Value = false // stop faults are timing faults; no golden to replay

	model, err := topo.Compile(spec)
	if err != nil {
		violate("compile: %v", err)
		return run, nil
	}
	app := topoApp(model)
	sizing, err := SizingFor(app)
	if err != nil {
		violate("sizing: %v", err)
		return run, nil
	}
	polM := 0
	if pol.Kind == ft.PolicyMK {
		polM = pol.M
	}
	bounds, err := MKDetectionBounds(app, sizing, polM)
	if err != nil {
		violate("mk bounds: %v", err)
		return run, nil
	}
	bound := stopBound(mode, bounds)
	injectAt := des.Time(fs.AtUs)
	run.InjectAtUs = fs.AtUs

	fr := obs.NewFlightRecorder(0)
	st := fr.Stream(0)
	net, err := app.Build(nil)
	if err != nil {
		violate("build: %v", err)
		return run, nil
	}
	cfg := sizing.BuildConfig(app)
	cfg.Policy = pol
	k := des.NewKernel()
	sys, err := ft.Build(k, net, cfg)
	if err != nil {
		violate("ft build: %v", err)
		return run, nil
	}
	ft.InstrumentFlight(sys, st)
	st.Record(obs.FlightEvent{At: fs.AtUs, Kind: obs.FlightInject, Reason: fs.Mode, Replica: fs.Replica})
	model.ApplyFaults(sys)
	k.Run(0)
	k.Shutdown()

	first, ok := sys.FirstFault(fs.Replica)
	if !ok || first.At < injectAt {
		violate("%s fault injected at %dus was never detected", fs.Mode, injectAt)
		return run, nil
	}
	run.DetectedUs = int64(first.At)
	latency := first.At - injectAt
	run.LatencyUs = int64(latency)
	if bound > 0 {
		run.BoundUs = int64(bound)
		run.SlackUs = int64(bound - latency)
		run.SlackPct = 100 * float64(bound-latency) / float64(bound)
		if latency > bound {
			violate("detection latency %dus exceeds analytic bound %dus (%s, m=%d)", latency, bound, fs.Mode, polM)
		}
	}
	_, problems := checkForensics(fr, first, injectAt, fs.Mode)
	run.ForensicsOK = len(problems) == 0
	run.Violations = append(run.Violations, problems...)
	run.Events = fr.Len()
	run.EventsHash = eventsHash(fr)
	return run, nil
}

// latStopModes are the paper-app stop sweep axes.
var latStopModes = []struct {
	name string
	mode fault.Mode
}{
	{"stop-all", fault.StopAll},
	{"stop-consuming", fault.StopConsuming},
	{"stop-producing", fault.StopProducing},
}

// latAppOne measures one paper app × stop mode × policy cell.
func latAppOne(g *golden, appName string, pol ft.PolicySpec, polName string, modeName string, mode fault.Mode, idx int) (LatAppRun, error) {
	app := g.app
	run := LatAppRun{App: appName, Mode: modeName, Policy: polName,
		DetectedUs: -1, LatencyUs: -1, SlackPct: -1}
	violate := func(format string, args ...any) {
		run.Violations = append(run.Violations, fmt.Sprintf(format, args...))
	}
	replica := 1 + idx%2
	injectAt := des.Time(app.Tokens/2) * app.PeriodUs
	run.InjectAtUs = int64(injectAt)
	polM := 0
	if pol.Kind == ft.PolicyMK {
		polM = pol.M
	}
	bounds, err := MKDetectionBounds(app, g.sizing, polM)
	if err != nil {
		return run, err
	}
	bound := stopBound(mode, bounds)
	run.BoundUs = int64(bound)

	fr := obs.NewFlightRecorder(0)
	st := fr.Stream(0)
	net, err := app.Build(nil)
	if err != nil {
		return run, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, g.buildConfig(pol))
	if err != nil {
		return run, err
	}
	ft.InstrumentFlight(sys, st)
	st.Record(obs.FlightEvent{At: int64(injectAt), Kind: obs.FlightInject, Reason: modeName, Replica: replica})
	sys.InjectFault(replica, injectAt, mode, 0)
	k.Run(0)
	k.Shutdown()

	first, ok := sys.FirstFault(replica)
	if !ok || first.At < injectAt {
		violate("%s fault injected at %dus was never detected", modeName, injectAt)
		return run, nil
	}
	run.DetectedUs = int64(first.At)
	latency := first.At - injectAt
	run.LatencyUs = int64(latency)
	if bound > 0 {
		run.SlackPct = 100 * float64(bound-latency) / float64(bound)
		if latency > bound {
			violate("detection latency %dus exceeds analytic bound %dus (%s)", latency, bound, modeName)
		}
	}
	_, problems := checkForensics(fr, first, injectAt, modeName)
	run.ForensicsOK = len(problems) == 0
	run.Violations = append(run.Violations, problems...)
	return run, nil
}

// slackEdges are the bound-slack histogram bucket edges (percent of the
// analytic budget left unused).
var slackEdges = []float64{0, 10, 25, 50, 75, 90, 100}

// measureLatOverhead pins the recorder's probe-hook cost (wall clock).
func measureLatOverhead(sizing Sizing, seedSelNs, seedRepNs int64) *LatOverhead {
	o := &LatOverhead{SeedSelNs: seedSelNs, SeedRepNs: seedRepNs}
	// Disabled: InstrumentFlight with a nil stream installs nothing —
	// the probe hot path is exactly the uninstrumented one.
	o.SelNsOff, o.RepNsOff = bestOpCosts(sizing, func(sys *ft.System) {
		ft.InstrumentFlight(sys, nil)
	})
	fr := obs.NewFlightRecorder(0)
	o.SelNsOn, o.RepNsOn = bestOpCosts(sizing, func(sys *ft.System) {
		ft.InstrumentFlight(sys, fr.Stream(0))
	})
	ev := obs.FlightEvent{At: 1, Channel: "bench", Kind: "write", Replica: 1}
	var nilStream *obs.FlightStream
	off := measure("flight_record_disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nilStream.Record(ev)
		}
	})
	o.RecordNsOff, o.RecordAllocsOff = off.NsPerOp, off.AllocsOp
	live := fr.Stream(0)
	on := measure("flight_record_enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			live.Record(ev)
		}
	})
	o.RecordNsOn, o.RecordAllocsOn = on.NsPerOp, on.AllocsOp
	return o
}

// LatBench measures detection latency against the analytic bounds over
// n generated stop topologies plus the paper apps; deterministic at any
// parallelism level (the wall-clock overhead section is gated behind
// the opCosts option like every other bench).
func LatBench(n int, seed int64, seedSelNs, seedRepNs int64, opts ...Option) (*LatBenchReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("exp: latbench needs at least one network")
	}
	rc := newRunConfig(opts)

	// Scan seeds for permanent stop scenarios — the class with an
	// analytic detection bound. topo.Generate is cheap (no compile), so
	// a sequential scan keeps seed selection deterministic.
	seeds := make([]int64, 0, n)
	scan := seed
	for int64(len(seeds)) < int64(n) {
		spec := topo.Generate(scan)
		if spec.Scenario == topo.ScenarioStop && len(spec.Faults) > 0 && spec.Faults[0].RepairAtUs == 0 {
			seeds = append(seeds, scan)
		}
		scan++
	}

	results, err := runIndexed(rc.workers, n, func(i int) (LatRun, error) {
		return latTopoOne(seeds[i])
	})
	if err != nil {
		return nil, err
	}

	rep := &LatBenchReport{
		GeneratedBy:  "ftpnsim -exp latbench",
		Networks:     n,
		Seed:         seed,
		SeedsScanned: scan - seed,
		Modes:        map[string]int{},
		Policies:     map[string]int{},
		SlackMinPct:  -1,
	}
	lat := &trace.Stats{}
	slack := &trace.Stats{} // slack pct scaled ×100 for int64 stats
	for i := range slackEdges[:len(slackEdges)-1] {
		rep.SlackHist = append(rep.SlackHist, LatSlackBucket{LoPct: slackEdges[i], HiPct: slackEdges[i+1]})
	}
	for _, run := range results {
		rep.Modes[run.Mode]++
		rep.Policies[run.Policy]++
		if run.DetectedUs >= 0 {
			rep.Convicted++
			lat.Add(run.LatencyUs)
		}
		if run.ForensicsOK {
			rep.ForensicsChecked++
		}
		if run.BoundUs > 0 {
			rep.BoundChecked++
			slack.Add(int64(run.SlackPct * 100))
			if rep.SlackMinPct < 0 || run.SlackPct < rep.SlackMinPct {
				rep.SlackMinPct = run.SlackPct
			}
			for i := range rep.SlackHist {
				b := &rep.SlackHist[i]
				if run.SlackPct >= b.LoPct && (run.SlackPct < b.HiPct || i == len(rep.SlackHist)-1) {
					b.Count++
					break
				}
			}
		}
		if len(run.Violations) > 0 {
			rep.Violations += len(run.Violations)
			if len(rep.ViolatingRuns) < 20 {
				rep.ViolatingRuns = append(rep.ViolatingRuns, run)
			}
		}
	}
	rep.P50Us = lat.Percentile(50)
	rep.P95Us = lat.Percentile(95)
	rep.P99Us = lat.Percentile(99)
	rep.MaxUs = lat.Max()
	rep.MinUs = lat.Min()
	rep.MeanUs = lat.Mean()
	rep.SlackP50Pct = float64(slack.Percentile(50)) / 100

	// Paper apps × stop modes × {binary, (m,k)}.
	goldens, err := buildGoldens(rc.workers)
	if err != nil {
		return nil, err
	}
	type appCell struct {
		g        *golden
		app      string
		pol      ft.PolicySpec
		polName  string
		modeName string
		mode     fault.Mode
	}
	var cells []appCell
	for _, a := range campaignApps {
		g := goldens[goldenKey{a.name, false}]
		mk, err := MKBudgetFor(g.app, glitchFor(g.app))
		if err != nil {
			return nil, err
		}
		for _, pc := range []struct {
			pol  ft.PolicySpec
			name string
		}{{ft.PolicySpec{Kind: ft.PolicyBinary}, "binary"}, {mk, mk.String()}} {
			for _, m := range latStopModes {
				cells = append(cells, appCell{g: g, app: a.name, pol: pc.pol, polName: pc.name, modeName: m.name, mode: m.mode})
			}
		}
	}
	appRuns, err := runIndexed(rc.workers, len(cells), func(i int) (LatAppRun, error) {
		c := cells[i]
		return latAppOne(c.g, c.app, c.pol, c.polName, c.modeName, c.mode, i)
	})
	if err != nil {
		return nil, err
	}
	rep.Apps = appRuns
	for _, a := range appRuns {
		rep.Violations += len(a.Violations)
	}

	if rc.opCosts {
		rep.Overhead = measureLatOverhead(goldens[goldenKey{campaignApps[0].name, false}].sizing, seedSelNs, seedRepNs)
	}
	return rep, nil
}

// WriteJSON writes the report.
func (r *LatBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a human summary.
func (r *LatBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latbench: %d generated stop topologies (seed %d, %d seeds scanned)\n",
		r.Networks, r.Seed, r.SeedsScanned)
	fmt.Fprintf(&b, "  modes:    %s\n", countLine(r.Modes))
	fmt.Fprintf(&b, "  policies: %s\n", countLine(r.Policies))
	fmt.Fprintf(&b, "  convicted %d/%d, %d bound-checked, %d forensics-verified\n",
		r.Convicted, r.Networks, r.BoundChecked, r.ForensicsChecked)
	fmt.Fprintf(&b, "  latency us: p50=%d p95=%d p99=%d max=%d (min=%d mean=%d)\n",
		r.P50Us, r.P95Us, r.P99Us, r.MaxUs, r.MinUs, r.MeanUs)
	fmt.Fprintf(&b, "  bound slack: p50=%.1f%% min=%.1f%%", r.SlackP50Pct, r.SlackMinPct)
	for _, bk := range r.SlackHist {
		fmt.Fprintf(&b, "  [%.0f-%.0f)%%:%d", bk.LoPct, bk.HiPct, bk.Count)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-8s %-16s %-16s %12s %12s %8s\n", "app", "policy", "mode", "latency (us)", "bound (us)", "slack")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "  %-8s %-16s %-16s %12d %12d %7.1f%%\n",
			a.App, a.Policy, a.Mode, a.LatencyUs, a.BoundUs, a.SlackPct)
	}
	if r.Overhead != nil {
		o := r.Overhead
		fmt.Fprintf(&b, "  probe hooks: recorder off sel=%dns rep=%dns, on sel=%dns rep=%dns\n",
			o.SelNsOff, o.RepNsOff, o.SelNsOn, o.RepNsOn)
		fmt.Fprintf(&b, "  record: disabled %dns/%d allocs, enabled %dns/%d allocs\n",
			o.RecordNsOff, o.RecordAllocsOff, o.RecordNsOn, o.RecordAllocsOn)
		if o.SeedSelNs > 0 && o.SeedRepNs > 0 {
			fmt.Fprintf(&b, "  vs seed baseline: sel %dns -> %dns, rep %dns -> %dns (recorder off)\n",
				o.SeedSelNs, o.SelNsOff, o.SeedRepNs, o.RepNsOff)
		}
	}
	fmt.Fprintf(&b, "  violations: %d\n", r.Violations)
	for _, run := range r.ViolatingRuns {
		fmt.Fprintf(&b, "    seed %d (%s/%s): %s\n", run.Seed, run.Shape, run.Mode, strings.Join(run.Violations, "; "))
	}
	return b.String()
}
