package exp

import (
	"bytes"
	"fmt"
	"testing"

	"ftpn/internal/ft"
)

// TestCampaignMK01MatchesBinary: the (0,1) weakly-hard policy and the
// explicit binary policy must be *bit-identical* to the default inline
// path on the randomized campaign — same JSON (policy label aside) at
// every parallelism level. This is the property check that the
// sampling layer is a pure refactoring of the paper's first-violation
// conviction.
func TestCampaignMK01MatchesBinary(t *testing.T) {
	specs := []ft.PolicySpec{
		{}, // inline default
		{Kind: ft.PolicyBinary},
		{Kind: ft.PolicyMK, M: 0, K: 1},
	}
	for _, par := range []int{1, 4} {
		var ref bytes.Buffer
		for i, sp := range specs {
			res, err := Campaign(CampaignConfig{Runs: 16, Seed: 11, Policy: sp}, WithParallelism(par))
			if err != nil {
				t.Fatalf("Campaign(%v, parallel=%d): %v", sp, par, err)
			}
			res.Policy = "" // the label is the only allowed difference
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			if i == 0 {
				ref = buf
				continue
			}
			if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
				t.Fatalf("policy %v differs from the inline path at parallel=%d:\n-- inline:\n%s\n-- %v:\n%s",
					sp, par, ref.String(), sp, buf.String())
			}
		}
	}
}

// TestMKDetectionBoundsDegenerate: with m = 0 the (m,k) detection
// bounds must reproduce the binary bounds of ComputeSizing exactly
// (eq. 6-8), and a positive budget must never shrink a bound.
func TestMKDetectionBoundsDegenerate(t *testing.T) {
	for _, name := range []string{"adpcm", "radar", "mjpeg", "h264"} {
		app, err := AppByName(name, false, 100)
		if err != nil {
			t.Fatalf("AppByName(%s): %v", name, err)
		}
		s, err := SizingFor(app)
		if err != nil {
			t.Fatalf("SizingFor(%s): %v", name, err)
		}
		b0, err := MKDetectionBounds(app, s, 0)
		if err != nil {
			t.Fatalf("MKDetectionBounds(%s, 0): %v", name, err)
		}
		if b0.SelBoundUs != s.SelBoundUs || b0.RepBoundUs != s.RepBoundUs {
			t.Errorf("%s: m=0 bounds (%d, %d) differ from sizing (%d, %d)",
				name, b0.SelBoundUs, b0.RepBoundUs, s.SelBoundUs, s.RepBoundUs)
		}
		prev := b0
		for _, m := range []int{1, 4, 9} {
			bm, err := MKDetectionBounds(app, s, m)
			if err != nil {
				t.Fatalf("MKDetectionBounds(%s, %d): %v", name, m, err)
			}
			if bm.SelBoundUs < prev.SelBoundUs || bm.RepBoundUs < prev.RepBoundUs {
				t.Errorf("%s: bounds shrank from m=%d: %+v -> %+v", name, m, prev, bm)
			}
			prev = bm
		}
	}
}

// TestMKBudgetForShape: the derived budget is a valid (m,k) policy with
// a window that can actually absorb the budget.
func TestMKBudgetForShape(t *testing.T) {
	for _, name := range []string{"adpcm", "radar", "mjpeg", "h264"} {
		app, err := AppByName(name, false, 100)
		if err != nil {
			t.Fatalf("AppByName(%s): %v", name, err)
		}
		sp, err := MKBudgetFor(app, glitchFor(app))
		if err != nil {
			t.Fatalf("MKBudgetFor(%s): %v", name, err)
		}
		if sp.Kind != ft.PolicyMK || sp.M < 1 || sp.K <= sp.M {
			t.Errorf("%s: malformed budget %+v", name, sp)
		}
		if _, err := ft.NewPolicy(sp); err != nil {
			t.Errorf("%s: budget %v does not instantiate: %v", name, sp, err)
		}
	}
}

// TestTransientGlitchRegression is the (m,k) false-conviction
// regression: hundreds of seeded runs inject a transient Degrade
// glitch sized within the app's (m,k) budget. Under the budgeted
// policy there must be zero convictions and every consumer stream must
// be token-identical to the fault-free golden stream; the *same* runs
// under the binary policy must all convict — the tradeoff the policy
// layer exists to buy.
func TestTransientGlitchRegression(t *testing.T) {
	runs := 500
	if testing.Short() {
		runs = 40
	}
	goldens, err := buildGoldens(8)
	if err != nil {
		t.Fatalf("buildGoldens: %v", err)
	}
	g := goldens[goldenKey{"adpcm", false}]
	mk, err := MKBudgetFor(g.app, glitchFor(g.app))
	if err != nil {
		t.Fatalf("MKBudgetFor: %v", err)
	}
	const seed = 23
	type outcome struct{ mk, bin detectRun }
	results, err := runIndexed(8, runs, func(i int) (outcome, error) {
		var o outcome
		var err error
		if o.mk, err = detectOne(g, mk, "glitch", true, seed, i); err != nil {
			return o, fmt.Errorf("mk run %d: %w", i, err)
		}
		if o.bin, err = detectOne(g, ft.PolicySpec{Kind: ft.PolicyBinary}, "glitch", true, seed, i); err != nil {
			return o, fmt.Errorf("binary run %d: %w", i, err)
		}
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range results {
		if o.mk.convicted || o.mk.falseConv {
			t.Errorf("run %d: %v falsely convicted a budgeted transient", i, mk)
		}
		if !o.mk.golden {
			t.Errorf("run %d: consumer stream diverged from golden under %v", i, mk)
		}
		if !o.bin.convicted {
			t.Errorf("run %d: binary policy failed to convict the same transient", i)
		}
	}
}

// TestDetectBenchSmoke pins the qualitative detection matrix on a
// small bench: binary trips on forgivable glitches and silently misses
// corruption; the (m,k) budget forgives every transient yet still
// catches every permanent fault within the analytic bound; the value
// cross-check convicts corruption while masking keeps the stream
// golden.
func TestDetectBenchSmoke(t *testing.T) {
	runs := 2
	if testing.Short() {
		runs = 1
	}
	rep, err := DetectBench(runs, 5, WithParallelism(8))
	if err != nil {
		t.Fatalf("DetectBench: %v", err)
	}
	if want := 4 * 3 * len(detectClasses); len(rep.Cells) != want {
		t.Fatalf("bench produced %d cells, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		id := fmt.Sprintf("%s/%s/%s", c.App, c.Policy, c.Fault)
		binary := c.Policy == "binary"
		value := c.Policy[len(c.Policy)-len("+value"):] == "+value"
		switch c.Fault {
		case "stop":
			if c.Convicted != c.Runs || c.Missed != 0 || c.FalseConvictions != 0 {
				t.Errorf("%s: stop not reliably detected: %+v", id, c)
			}
			if c.AnalyticBoundUs <= 0 || c.MaxLatencyUs > c.AnalyticBoundUs {
				t.Errorf("%s: latency %dus exceeds analytic bound %dus", id, c.MaxLatencyUs, c.AnalyticBoundUs)
			}
		case "drift", "drop":
			if c.Convicted != c.Runs || c.FalseConvictions != 0 {
				t.Errorf("%s: permanent gray fault not reliably detected: %+v", id, c)
			}
		case "glitch":
			if binary {
				if c.FalseConvictions != c.Runs {
					t.Errorf("%s: binary should convict every budgeted transient: %+v", id, c)
				}
			} else if c.Convicted != 0 || c.FalseConvictions != 0 {
				t.Errorf("%s: budgeted policy falsely convicted a transient: %+v", id, c)
			}
			if c.GoldenStreams != c.Runs {
				t.Errorf("%s: transient broke the golden stream: %+v", id, c)
			}
		case "burst":
			if !binary && (c.Convicted != 0 || c.FalseConvictions != 0) {
				t.Errorf("%s: budgeted policy falsely convicted a burst: %+v", id, c)
			}
			if c.GoldenStreams != c.Runs {
				t.Errorf("%s: burst broke the golden stream: %+v", id, c)
			}
		case "corrupt":
			if value {
				if c.Convicted != c.Runs || c.ValueConvictions != c.Runs {
					t.Errorf("%s: value cross-check missed corruption: %+v", id, c)
				}
				if c.GoldenStreams != c.Runs {
					t.Errorf("%s: value path failed to mask corruption: %+v", id, c)
				}
			} else {
				if c.Convicted != 0 || c.Missed != c.Runs {
					t.Errorf("%s: timing-only policy should silently miss corruption: %+v", id, c)
				}
			}
		}
	}
}
