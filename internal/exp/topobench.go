package exp

// topobench property-checks the paper's guarantees on generated
// topologies. For every seeded topo.Generate spec it verifies, on a
// network nobody hand-wired:
//
//  1. structure — the compiled graph validates and every cycle carries
//     initial tokens (kpn.DeadlockRisks is empty);
//  2. sizing admits zero false convictions — the analytic design
//     (eqs. 3-8 via SizingFor) runs the duplicated system fault-free
//     with the spec's detection policy armed and no replica is
//     convicted, the consumer stream is complete, and both replicas
//     write the full workload;
//  3. the (m,k) bounds agree — MKDetectionBounds at m=0 reproduces the
//     sizing's bounds exactly and is monotone in m;
//  4. Lemma 1 isolation and masking under the spec's fault script —
//     the consumer stream is token-identical to the golden run, the
//     healthy replica is never convicted and never back-pressured,
//     permanent faults are detected (stop modes within the analytic
//     (m,k) bound, corruption by the value cross-check), within-budget
//     transients convict nobody;
//  5. sequential-vs-sharded bit-identity — the reference network's
//     canonical event trace is byte-identical between one kernel and
//     an InstantiateSharded run.
//
// On top of the generated sweep, the four paper apps round-trip
// through the DSL (topo.Describe -> Emit -> Parse -> Compile with the
// original behaviors) and must reproduce their direct golden streams
// exactly, with bit-equal sizing. Runs aggregate in index order
// (runIndexed), so the report is bit-identical at any -parallel level.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ftpn/internal/apps"
	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/topo"
)

// topoApp adapts a compiled topo.Model into an App descriptor so the
// sizing analysis, detection bounds and build helpers apply unchanged.
func topoApp(model *topo.Model) App {
	return App{
		Name: model.Spec.Name,
		Build: func(sink apps.Sink) (*kpn.Network, error) {
			return model.Build(topo.Sink(sink))
		},
		Producer:      model.ProducerModel(),
		Consumer:      model.ConsumerModel(),
		InModel:       model.InModel,
		OutModel:      model.OutModel,
		InChan:        model.InChan,
		OutChan:       model.OutChan,
		Tokens:        model.Tokens(),
		PeriodUs:      model.PeriodUs(),
		InTokenBytes:  model.InTokenBytes,
		OutTokenBytes: model.OutTokenBytes,
		OutInit:       model.OutInit,
	}
}

// topoValueCheck mirrors golden.valueCheck for a topobench golden
// stream: replay-based cross-checking against the fault-free consumer
// stream, Seq-gated per the ft.ValueCheck contract.
func topoValueCheck(stream []tokenID, sizing Sizing) ft.ValueCheck {
	nPre := sizing.SelInits[0]
	if sizing.SelInits[1] > nPre {
		nPre = sizing.SelInits[1]
	}
	return func(pair int64, tok kpn.Token) bool {
		idx := int64(nPre) + pair - 1
		if idx < 0 || idx >= int64(len(stream)) {
			return true
		}
		if stream[idx].seq != tok.Seq {
			return true
		}
		return stream[idx].hash == tok.Hash()
	}
}

// TopoRun is one generated network's machine-checked outcome.
type TopoRun struct {
	Seed     int64  `json:"seed"`
	Name     string `json:"name"`
	Shape    string `json:"shape"`
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	Procs    int    `json:"procs"`
	Chans    int    `json:"chans"`

	DetectedUs int64 `json:"detected_us"` // first conviction of the target (-1: none/faultfree)
	BoundUs    int64 `json:"bound_us"`    // analytic bound applied (0: none)
	// MarginPct is (bound-latency)/bound for bounded detections (-1
	// when no bound applies).
	MarginPct float64 `json:"margin_pct"`

	Violations []string `json:"violations,omitempty"`
}

// TopoReport is the full topobench result.
type TopoReport struct {
	GeneratedBy string `json:"generated_by"`
	Networks    int    `json:"networks"`
	Seed        int64  `json:"seed"`

	Shapes    map[string]int `json:"shapes"`
	Scenarios map[string]int `json:"scenarios"`
	Policies  map[string]int `json:"policies"`

	// Detected counts permanent-fault runs whose target was convicted;
	// BoundChecked those additionally checked against an analytic
	// latency bound, with the tightest observed margin.
	Detected     int     `json:"detected"`
	BoundChecked int     `json:"bound_checked"`
	MinMarginPct float64 `json:"min_margin_pct"`

	// IdentityChecked counts sequential-vs-sharded trace comparisons;
	// MKChecked the m=0 identity + monotonicity checks.
	IdentityChecked int `json:"identity_checked"`
	MKChecked       int `json:"mk_checked"`

	Violations    int       `json:"violations"`
	ViolatingRuns []TopoRun `json:"violating_runs,omitempty"` // first 20

	Apps []TopoAppRoundTrip `json:"apps"`
}

// TopoAppRoundTrip is one paper app's DSL round-trip outcome.
type TopoAppRoundTrip struct {
	App             string   `json:"app"`
	SpecBytes       int      `json:"spec_bytes"`
	SizingEqual     bool     `json:"sizing_equal"`
	GoldenIdentical bool     `json:"golden_identical"`
	Violations      []string `json:"violations,omitempty"`
}

// topoRunResult carries per-run counters that don't belong in the
// serialized TopoRun.
type topoRunResult struct {
	run             TopoRun
	identityChecked bool
	mkChecked       bool
}

// topoOne property-checks one generated network.
func topoOne(seed int64, idx int) (topoRunResult, error) {
	spec := topo.Generate(seed + int64(idx))
	res := topoRunResult{run: TopoRun{
		Seed: seed + int64(idx), Name: spec.Name, Shape: spec.Shape, Scenario: spec.Scenario,
		Policy: "inline", Procs: len(spec.Procs), Chans: len(spec.Chans),
		DetectedUs: -1, MarginPct: -1,
	}}
	run := &res.run
	violate := func(format string, args ...any) {
		run.Violations = append(run.Violations, fmt.Sprintf(format, args...))
	}
	pol := ft.PolicySpec{}
	if spec.Detection != nil {
		pol = *spec.Detection
		run.Policy = pol.String()
	}

	// --- Check 1: structure. ---
	model, err := topo.Compile(spec)
	if err != nil {
		violate("compile: %v", err)
		return res, nil
	}
	skel := spec.Skeleton()
	for _, cy := range skel.Cycles() {
		if cy.InitialTokens == 0 {
			violate("cycle %v has no initial tokens yet passed validation", cy.Channels)
		}
	}
	if risks := skel.DeadlockRisks(); len(risks) > 0 {
		violate("DeadlockRisks flagged %v on a validated spec", risks[0].Channels)
	}

	// --- Check 2: analytic sizing admits zero false convictions. ---
	app := topoApp(model)
	sizing, err := SizingFor(app)
	if err != nil {
		violate("sizing: %v", err)
		return res, nil
	}
	timingPol := pol
	timingPol.Value = false // the golden run is what the value check replays against
	var goldenStream []tokenID
	net, err := app.Build(func(now des.Time, tok kpn.Token) {
		goldenStream = append(goldenStream, tokenID{tok.Seq, tok.Hash()})
	})
	if err != nil {
		violate("build: %v", err)
		return res, nil
	}
	cfg := sizing.BuildConfig(app)
	cfg.Policy = timingPol
	k := des.NewKernel()
	sys, err := ft.Build(k, net, cfg)
	if err != nil {
		violate("ft build: %v", err)
		return res, nil
	}
	k.Run(0)
	k.Shutdown()
	if len(sys.Faults) != 0 {
		f := sys.Faults[0]
		violate("fault-free run convicted R%d at %dus (%s on %s)", f.Replica, f.At, f.Reason, f.Channel)
	}
	if int64(len(goldenStream)) != spec.Tokens {
		violate("fault-free consumer stream %d/%d tokens", len(goldenStream), spec.Tokens)
	}
	for r := 1; r <= 2; r++ {
		if w := sys.Selectors[app.OutChan].Writes(r); w != spec.Tokens {
			violate("fault-free replica R%d wrote %d/%d tokens (back-pressured)", r, w, spec.Tokens)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		violate("fault-free counter identities: %v", err)
	}

	// --- Check 3: (m,k) bounds reproduce and dominate the sizing. ---
	polM := 0
	if pol.Kind == ft.PolicyMK {
		polM = pol.M
	}
	b0, err := MKDetectionBounds(app, sizing, 0)
	bm := MKBounds{SelBoundUs: sizing.SelBoundUs, RepBoundUs: sizing.RepBoundUs}
	if err != nil {
		violate("mk bounds m=0: %v", err)
	} else {
		if b0.SelBoundUs != sizing.SelBoundUs || b0.RepBoundUs != sizing.RepBoundUs {
			violate("MKDetectionBounds(0) = (%d,%d) != sizing bounds (%d,%d)",
				b0.SelBoundUs, b0.RepBoundUs, sizing.SelBoundUs, sizing.RepBoundUs)
		}
		prev := b0
		for m := 1; m <= 2; m++ {
			bmm, err := MKDetectionBounds(app, sizing, m)
			if err != nil {
				violate("mk bounds m=%d: %v", m, err)
				break
			}
			if bmm.SelBoundUs < prev.SelBoundUs || bmm.RepBoundUs < prev.RepBoundUs {
				violate("mk bounds not monotone at m=%d: (%d,%d) < (%d,%d)",
					m, bmm.SelBoundUs, bmm.RepBoundUs, prev.SelBoundUs, prev.RepBoundUs)
			}
			if m == polM {
				bm = bmm
			}
			prev = bmm
		}
		res.mkChecked = true
		if polM > 2 {
			if bmm, err := MKDetectionBounds(app, sizing, polM); err == nil {
				bm = bmm
			}
		}
	}

	// --- Check 4: masking, Lemma 1 and detection under the script. ---
	if len(spec.Faults) > 0 {
		fs := spec.Faults[0]
		mode, _ := fault.ModeByName(fs.Mode)
		transient := fs.RepairAtUs > 0
		injectAt := des.Time(fs.AtUs)
		cfg2 := sizing.BuildConfig(app)
		cfg2.Policy = pol
		if pol.Value {
			cfg2.ValueCheck = map[string]ft.ValueCheck{app.OutChan: topoValueCheck(goldenStream, sizing)}
		}
		var stream []tokenID
		net2, err := app.Build(func(now des.Time, tok kpn.Token) {
			stream = append(stream, tokenID{tok.Seq, tok.Hash()})
		})
		if err != nil {
			violate("fault-run build: %v", err)
			return res, nil
		}
		k2 := des.NewKernel()
		sys2, err := ft.Build(k2, net2, cfg2)
		if err != nil {
			violate("fault-run ft build: %v", err)
			return res, nil
		}
		model.ApplyFaults(sys2)
		k2.Run(0)
		k2.Shutdown()

		// Exact masking: token-identical to the golden stream.
		if len(stream) != len(goldenStream) {
			violate("fault-run stream has %d tokens, golden %d", len(stream), len(goldenStream))
		} else {
			for i := range stream {
				if stream[i] != goldenStream[i] {
					violate("fault-run token %d = (seq %d, hash %x), golden (seq %d, hash %x)",
						i, stream[i].seq, stream[i].hash, goldenStream[i].seq, goldenStream[i].hash)
					break
				}
			}
		}

		// Zero false convictions; transients convict nobody.
		healthy := 3 - fs.Replica
		for _, f := range sys2.Faults {
			if f.Replica == healthy {
				violate("healthy replica R%d convicted at %dus (%s on %s)", f.Replica, f.At, f.Reason, f.Channel)
			}
			if transient && f.Replica == fs.Replica {
				violate("within-budget transient convicted R%d at %dus (%s on %s)", f.Replica, f.At, f.Reason, f.Channel)
			}
		}

		// Lemma 1: the healthy replica is never back-pressured.
		if w := sys2.Selectors[app.OutChan].Writes(healthy); w != spec.Tokens {
			violate("Lemma 1: healthy replica R%d wrote %d/%d tokens", healthy, w, spec.Tokens)
		}

		// Permanent faults must be detected; stop modes within the
		// analytic (m,k) bound, corruption by the value cross-check.
		if !transient {
			first, ok := sys2.FirstFault(fs.Replica)
			if !ok || first.At < injectAt {
				violate("%s fault injected at %dus was never detected", fs.Mode, injectAt)
			} else {
				run.DetectedUs = int64(first.At)
				latency := first.At - injectAt
				var bound des.Time
				switch mode {
				case fault.StopAll:
					bound = min(bm.SelBoundUs, bm.RepBoundUs)
				case fault.StopProducing:
					bound = bm.SelBoundUs
				case fault.StopConsuming:
					bound = bm.RepBoundUs
				}
				if bound > 0 {
					run.BoundUs = int64(bound)
					if latency > bound {
						violate("detection latency %dus exceeds analytic bound %dus (%s, m=%d)",
							latency, bound, fs.Mode, polM)
					}
					run.MarginPct = 100 * float64(bound-latency) / float64(bound)
				}
				if mode == fault.Corrupt && first.Kind != ft.KindValue {
					violate("corruption detected as %s, want a value conviction", first.Kind)
				}
			}
		}
		if err := sys2.CheckInvariants(); err != nil {
			violate("fault-run counter identities: %v", err)
		}
	}

	// --- Check 5: sequential-vs-sharded bit-identity. ---
	shards := 2 + idx%3
	if n := len(spec.Procs); shards > n {
		shards = n
	}
	refSeq, err := model.Build(nil)
	if err != nil {
		violate("identity build: %v", err)
		return res, nil
	}
	seqTrace, _, err := runNetSequential(refSeq)
	if err != nil {
		violate("sequential run: %v", err)
		return res, nil
	}
	refSh, err := model.Build(nil)
	if err != nil {
		violate("identity build: %v", err)
		return res, nil
	}
	shTrace, _, _, err := runNetSharded(refSh, shards)
	if err != nil {
		violate("sharded run (%d shards): %v", shards, err)
		return res, nil
	}
	if !bytes.Equal(seqTrace, shTrace) {
		violate("sharded trace (%d shards, %d bytes) diverges from sequential (%d bytes)",
			shards, len(shTrace), len(seqTrace))
	}
	res.identityChecked = true
	return res, nil
}

// topoAppNames are the paper apps swept by the round-trip check.
var topoAppNames = []string{"mjpeg", "adpcm", "h264", "radar"}

// topoAppRoundTrip round-trips one paper app through the DSL and
// compares golden streams and sizing.
func topoAppRoundTrip(name string) (TopoAppRoundTrip, error) {
	rt := TopoAppRoundTrip{App: name}
	violate := func(format string, args ...any) {
		rt.Violations = append(rt.Violations, fmt.Sprintf(format, args...))
	}
	app, err := AppByName(name, false, 120)
	if err != nil {
		return rt, err
	}
	sizing, err := SizingFor(app)
	if err != nil {
		return rt, err
	}

	// Direct golden: the hand-wired network under the ft transform.
	var direct []tokenID
	net1, err := app.Build(func(now des.Time, tok kpn.Token) {
		direct = append(direct, tokenID{tok.Seq, tok.Hash()})
	})
	if err != nil {
		return rt, err
	}
	k1 := des.NewKernel()
	sys1, err := ft.Build(k1, net1, sizing.BuildConfig(app))
	if err != nil {
		return rt, err
	}
	k1.Run(0)
	k1.Shutdown()
	if len(sys1.Faults) != 0 {
		violate("direct golden run convicted: %v", sys1.Faults[0])
	}

	// DSL round-trip: describe a second build (it donates the behavior
	// factories and the sink), emit, parse, validate, compile, rebuild.
	var dsl []tokenID
	net2, err := app.Build(func(now des.Time, tok kpn.Token) {
		dsl = append(dsl, tokenID{tok.Seq, tok.Hash()})
	})
	if err != nil {
		return rt, err
	}
	spec := topo.Describe(net2, topo.ExternTiming{
		Tokens:      app.Tokens,
		Producer:    app.Producer,
		Consumer:    app.Consumer,
		InJitterUs:  [2]des.Time{app.InModel(1).Jitter, app.InModel(2).Jitter},
		OutJitterUs: [2]des.Time{app.OutModel(1).Jitter, app.OutModel(2).Jitter},
	})
	data, err := topo.Emit(spec)
	if err != nil {
		violate("emit: %v", err)
		return rt, nil
	}
	rt.SpecBytes = len(data)
	spec2, err := topo.Parse(data)
	if err != nil {
		violate("re-parse: %v", err)
		return rt, nil
	}
	model, err := topo.Compile(spec2, topo.WithExtern(topo.Factories(net2)))
	if err != nil {
		violate("compile: %v", err)
		return rt, nil
	}
	dslApp := topoApp(model)
	sizing2, err := SizingFor(dslApp)
	if err != nil {
		violate("dsl sizing: %v", err)
		return rt, nil
	}
	rt.SizingEqual = sizing2 == sizing
	if !rt.SizingEqual {
		violate("dsl sizing %+v != direct sizing %+v", sizing2, sizing)
	}
	net3, err := dslApp.Build(nil) // extern: net2's factories carry the dsl sink
	if err != nil {
		violate("dsl build: %v", err)
		return rt, nil
	}
	k3 := des.NewKernel()
	sys3, err := ft.Build(k3, net3, sizing2.BuildConfig(dslApp))
	if err != nil {
		violate("dsl ft build: %v", err)
		return rt, nil
	}
	k3.Run(0)
	k3.Shutdown()
	if len(sys3.Faults) != 0 {
		violate("dsl golden run convicted: %v", sys3.Faults[0])
	}
	rt.GoldenIdentical = len(dsl) == len(direct)
	if rt.GoldenIdentical {
		for i := range dsl {
			if dsl[i] != direct[i] {
				rt.GoldenIdentical = false
				break
			}
		}
	}
	if !rt.GoldenIdentical {
		violate("dsl stream (%d tokens) is not token-identical to the direct golden (%d tokens)", len(dsl), len(direct))
	}
	return rt, nil
}

// TopoBench generates and property-checks n networks from the seed and
// round-trips the paper apps; deterministic at any parallelism level.
func TopoBench(n int, seed int64, opts ...Option) (*TopoReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("exp: topobench needs at least one network")
	}
	rc := newRunConfig(opts)
	results, err := runIndexed(rc.workers, n, func(i int) (topoRunResult, error) {
		return topoOne(seed, i)
	})
	if err != nil {
		return nil, err
	}
	rep := &TopoReport{
		GeneratedBy:  "ftpnsim -exp topobench",
		Networks:     n,
		Seed:         seed,
		Shapes:       map[string]int{},
		Scenarios:    map[string]int{},
		Policies:     map[string]int{},
		MinMarginPct: -1,
	}
	for _, r := range results {
		run := r.run
		rep.Shapes[run.Shape]++
		rep.Scenarios[run.Scenario]++
		rep.Policies[run.Policy]++
		if run.DetectedUs >= 0 {
			rep.Detected++
		}
		if run.BoundUs > 0 {
			rep.BoundChecked++
			if rep.MinMarginPct < 0 || run.MarginPct < rep.MinMarginPct {
				rep.MinMarginPct = run.MarginPct
			}
		}
		if r.identityChecked {
			rep.IdentityChecked++
		}
		if r.mkChecked {
			rep.MKChecked++
		}
		if len(run.Violations) > 0 {
			rep.Violations += len(run.Violations)
			if len(rep.ViolatingRuns) < 20 {
				rep.ViolatingRuns = append(rep.ViolatingRuns, run)
			}
		}
	}
	apps, err := runIndexed(rc.workers, len(topoAppNames), func(i int) (TopoAppRoundTrip, error) {
		return topoAppRoundTrip(topoAppNames[i])
	})
	if err != nil {
		return nil, err
	}
	rep.Apps = apps
	for _, a := range apps {
		rep.Violations += len(a.Violations)
	}
	return rep, nil
}

// WriteJSON writes the report.
func (r *TopoReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a human summary.
func (r *TopoReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topobench: %d generated networks (seed %d)\n", r.Networks, r.Seed)
	fmt.Fprintf(&b, "  shapes:    %s\n", countLine(r.Shapes))
	fmt.Fprintf(&b, "  scenarios: %s\n", countLine(r.Scenarios))
	fmt.Fprintf(&b, "  policies:  %s\n", countLine(r.Policies))
	fmt.Fprintf(&b, "  detected %d faults (%d within analytic bounds, min margin %.1f%%)\n",
		r.Detected, r.BoundChecked, r.MinMarginPct)
	fmt.Fprintf(&b, "  %d sequential-vs-sharded identities, %d mk-bound checks\n",
		r.IdentityChecked, r.MKChecked)
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "  app %-6s round-trip: spec %4dB sizing_equal=%v golden_identical=%v\n",
			a.App, a.SpecBytes, a.SizingEqual, a.GoldenIdentical)
	}
	fmt.Fprintf(&b, "  violations: %d\n", r.Violations)
	for _, run := range r.ViolatingRuns {
		fmt.Fprintf(&b, "    seed %d (%s/%s): %s\n", run.Seed, run.Shape, run.Scenario, strings.Join(run.Violations, "; "))
	}
	return b.String()
}
