package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ftpn/internal/obs"
)

// TestObservedRunMetricIdentities runs a campaign-style fault+recovery
// execution with the metrics registry attached and checks that the obs
// layer's view is identical to the engine's own counters.
func TestObservedRunMetricIdentities(t *testing.T) {
	app := ADPCMApp(false, 150)
	reg := obs.NewRegistry()
	sys, mgr, err := observedRun(app, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Faults) == 0 {
		t.Fatal("observed run detected no fault")
	}

	// Replicator: the metrics relayed through probes must equal the
	// engine counters exactly.
	rep := sys.Replicators[app.InChan]
	ch := obs.Labels{"channel": app.InChan}
	if got := reg.Counter("ftpn_ft_rep_writes_total", "", ch).Value(); got != rep.Writes() {
		t.Errorf("rep writes metric = %d, engine %d", got, rep.Writes())
	}
	if got := reg.Counter("ftpn_ft_rep_lost_total", "", ch).Value(); got != rep.Lost() {
		t.Errorf("rep lost metric = %d, engine %d", got, rep.Lost())
	}
	for i := 1; i <= 2; i++ {
		rl := obs.Labels{"channel": app.InChan, "replica": fmt.Sprintf("%d", i)}
		if got := reg.Counter("ftpn_ft_rep_reads_total", "", rl).Value(); got != rep.Reads(i) {
			t.Errorf("rep reads metric R%d = %d, engine %d", i, got, rep.Reads(i))
		}
	}

	// Selector: enqueued + duplicate drops = accepted writes, and the
	// resync drops of the re-integration match the engine.
	sel := sys.Selectors[app.OutChan]
	for i := 1; i <= 2; i++ {
		rl := obs.Labels{"channel": app.OutChan, "replica": fmt.Sprintf("%d", i)}
		enq := reg.Counter("ftpn_ft_sel_enqueued_total", "", rl).Value()
		dup := reg.Counter("ftpn_ft_sel_dup_drops_total", "", rl).Value()
		rsd := reg.Counter("ftpn_ft_sel_resync_drops_total", "", rl).Value()
		if enq+dup != sel.Writes(i) {
			t.Errorf("sel R%d: enqueued %d + dup drops %d != writes %d", i, enq, dup, sel.Writes(i))
		}
		if dup != sel.Drops(i) {
			t.Errorf("sel R%d: dup drops metric = %d, engine %d", i, dup, sel.Drops(i))
		}
		if rsd != sel.ResyncDrops(i) {
			t.Errorf("sel R%d: resync drops metric = %d, engine %d", i, rsd, sel.ResyncDrops(i))
		}
	}
	if got := reg.Counter("ftpn_ft_sel_reads_total", "", obs.Labels{"channel": app.OutChan}).Value(); got != sel.Reads() {
		t.Errorf("sel reads metric = %d, engine %d", got, sel.Reads())
	}

	// Detection and recovery lifecycle: every engine fault is one fault
	// metric increment and one conviction, and each scheduled conviction
	// is one started recovery.
	for _, name := range []string{"ftpn_ft_faults_total", "ftpn_recover_convictions_total"} {
		var total int64
		seen := map[string]bool{}
		for _, f := range sys.Faults {
			key := f.Channel + "|" + fmt.Sprintf("%d", f.Replica) + "|" + string(f.Reason)
			if seen[key] {
				continue
			}
			seen[key] = true
			total += reg.Counter(name, "", obs.Labels{
				"channel": f.Channel, "replica": fmt.Sprintf("%d", f.Replica), "reason": string(f.Reason),
			}).Value()
		}
		if total != int64(len(sys.Faults)) {
			t.Errorf("%s sums to %d, engine recorded %d faults", name, total, len(sys.Faults))
		}
	}
	started := reg.Counter("ftpn_recover_recoveries_started_total", "", obs.Labels{"replica": "2"}).Value()
	if started != int64(len(mgr.Events())) {
		t.Errorf("recoveries started metric = %d, manager performed %d", started, len(mgr.Events()))
	}
	if len(mgr.Events()) != 1 {
		t.Errorf("recoveries = %d, want 1", len(mgr.Events()))
	}
}

// chromeDoc mirrors the trace JSON shape for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    int64          `json:"ts"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTraceTimeline(t *testing.T) {
	app := ADPCMApp(false, 120)
	var buf bytes.Buffer
	if err := WriteChromeTrace(app, &buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counters := map[string]int{}
	markers := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "C":
			counters[ev.Name]++
		case "i":
			for _, want := range []string{"inject", "fault R2", "convicted", "recovered R2", "resync start", "realigned"} {
				if strings.Contains(ev.Name, want) {
					markers[want] = true
				}
			}
		}
	}
	for _, track := range []string{"fill " + app.InChan, "fill " + app.OutChan} {
		if counters[track] == 0 {
			t.Errorf("no counter samples on track %q", track)
		}
	}
	for _, want := range []string{"inject", "fault R2", "convicted", "recovered R2", "resync start", "realigned"} {
		if !markers[want] {
			t.Errorf("no instant marker containing %q", want)
		}
	}
}

func TestRunObsBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite is slow")
	}
	var buf, log bytes.Buffer
	if err := RunObsBenchSuite(&buf, &log, 100, 100); err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, c := range rep.Comparisons {
		names[c.Name] = true
	}
	for _, want := range []string{
		"sel_op_metrics_overhead", "rep_op_metrics_overhead",
		"sel_op_disabled_vs_seed", "rep_op_disabled_vs_seed",
	} {
		if !names[want] {
			t.Errorf("report lacks comparison %q", want)
		}
	}
	benches := map[string]int64{}
	for _, b := range rep.Benchmarks {
		benches[b.Name] = b.NsPerOp
	}
	if benches["obs_counter_inc_disabled"] > benches["obs_counter_inc"] {
		t.Errorf("disabled counter inc (%dns) slower than enabled (%dns)",
			benches["obs_counter_inc_disabled"], benches["obs_counter_inc"])
	}
}
