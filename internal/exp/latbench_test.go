package exp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/obs"
)

// TestLatBenchDeterministicAcrossParallel: the latbench report —
// including every per-run canonical event-log hash — must be
// bit-identical at any parallelism level once the wall-clock overhead
// section is disabled.
func TestLatBenchDeterministicAcrossParallel(t *testing.T) {
	var ref bytes.Buffer
	for i, par := range []int{1, 4} {
		rep, err := LatBench(6, 1, 0, 0, WithoutOpCosts(), WithParallelism(par))
		if err != nil {
			t.Fatalf("LatBench(parallel=%d): %v", par, err)
		}
		if rep.Overhead != nil {
			t.Fatal("WithoutOpCosts must suppress the wall-clock overhead section")
		}
		if rep.Convicted != 6 || rep.BoundChecked != 6 || rep.ForensicsChecked != 6 {
			t.Fatalf("parallel=%d: convicted/bound/forensics = %d/%d/%d, want 6/6/6",
				par, rep.Convicted, rep.BoundChecked, rep.ForensicsChecked)
		}
		if rep.Violations != 0 {
			t.Fatalf("parallel=%d: %d violations:\n%s", par, rep.Violations, rep.String())
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if i == 0 {
			ref = buf
			continue
		}
		if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
			t.Fatalf("report differs across parallelism levels:\n-- parallel=1:\n%s\n-- parallel=%d:\n%s",
				ref.String(), par, buf.String())
		}
	}
}

// flightNetSequential runs net on one plain kernel with the flight
// recorder's kernel tracer attached and returns the canonical log.
func flightNetSequential(net *kpn.Network) ([]byte, error) {
	fr := obs.NewFlightRecorder(0)
	k := des.NewKernel()
	fr.AttachKernel(k, 0)
	if _, err := net.Instantiate(k, kpn.Options{}); err != nil {
		return nil, err
	}
	k.Run(0)
	k.Shutdown()
	return fr.Bytes(), nil
}

// flightNetSharded partitions net across the given shard count, attaches
// one recorder stream per shard kernel, and returns the canonical log.
func flightNetSharded(net *kpn.Network, shards int) ([]byte, error) {
	plan, err := kpn.PartitionNetwork(net, shards)
	if err != nil {
		return nil, err
	}
	fr := obs.NewFlightRecorder(0)
	sk := des.NewShardedKernel(plan.Shards)
	for i := 0; i < sk.NumShards(); i++ {
		fr.AttachKernel(sk.Shard(i), i)
	}
	if _, err := net.InstantiateSharded(sk, plan, kpn.Options{}); err != nil {
		return nil, err
	}
	sk.Run(0)
	sk.Shutdown()
	return fr.Bytes(), nil
}

// TestFlightRecorderIdentitySharded is the acceptance check on the
// recorder's determinism contract: the canonical event log of a real
// application is byte-identical whether the network ran on one kernel
// or partitioned across 1..8 conservative shards.
func TestFlightRecorderIdentitySharded(t *testing.T) {
	for _, name := range []string{"adpcm", "mjpeg"} {
		app, err := AppByName(name, false, 24)
		if err != nil {
			t.Fatalf("AppByName(%s): %v", name, err)
		}
		seq, err := app.Build(nil)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		oracle, err := flightNetSequential(seq.WithDelays(50))
		if err != nil {
			t.Fatalf("%s: sequential run: %v", name, err)
		}
		if len(oracle) == 0 {
			t.Fatalf("%s: sequential flight log is empty", name)
		}
		for shards := 1; shards <= 8; shards++ {
			net, err := app.Build(nil)
			if err != nil {
				t.Fatalf("%s: build: %v", name, err)
			}
			got, err := flightNetSharded(net.WithDelays(50), shards)
			if err != nil {
				t.Fatalf("%s: sharded run (%d): %v", name, shards, err)
			}
			if !bytes.Equal(got, oracle) {
				t.Errorf("%s: flight log at %d shards diverges from the sequential oracle", name, shards)
			}
		}
	}
}

// flightClassRun mirrors a detectbench run of one fault class with the
// flight recorder armed, and returns the recorder plus the first
// conviction of the injected replica.
func flightClassRun(g *golden, pol ft.PolicySpec, class string, idx int) (*obs.FlightRecorder, ft.Fault, des.Time, error) {
	app := g.app
	seed := int64(31)
	rng := rand.New(rand.NewSource(seed*0x5851F42D4C957F2D + int64(idx) + 1))
	replica := 1 + idx%2
	p := app.PeriodUs
	injectAt := des.Time(app.Tokens/4)*p + des.Time(rng.Int63n(int64(app.Tokens/4)*int64(p)))

	fr := obs.NewFlightRecorder(0)
	st := fr.Stream(0)
	net, err := app.Build(nil)
	if err != nil {
		return nil, ft.Fault{}, 0, err
	}
	k := des.NewKernel()
	sys, err := ft.Build(k, net, g.buildConfig(pol))
	if err != nil {
		return nil, ft.Fault{}, 0, err
	}
	ft.InstrumentFlight(sys, st)
	st.Record(obs.FlightEvent{At: int64(injectAt), Kind: obs.FlightInject, Reason: class, Replica: replica})
	sw := sys.Switches[replica-1]
	switch class {
	case "stop":
		sys.InjectFault(replica, injectAt, fault.StopAll, 0)
	case "glitch":
		sys.InjectFault(replica, injectAt, fault.Degrade, 3*p)
		sw.RepairAt(injectAt + glitchFor(app))
	case "burst":
		sw.InjectGrayAt(injectAt, fault.Burst, fault.Gray{OnUs: 2 * p, PeriodUs: 20 * p})
		sw.RepairAt(injectAt + 23*p)
	case "drift":
		sw.InjectGrayAt(injectAt, fault.Drift, fault.Gray{ExtraUs: 4 * p, RampUs: 30 * p})
	case "drop":
		sw.InjectGrayAt(injectAt, fault.DropTokens, fault.Gray{EveryN: 5})
	case "corrupt":
		sw.InjectGrayAt(injectAt, fault.Corrupt, fault.Gray{EveryN: 4, Seed: uint64(idx) + 1})
	default:
		return nil, ft.Fault{}, 0, fmt.Errorf("unknown class %q", class)
	}
	k.Run(0)
	k.Shutdown()

	var first ft.Fault
	found := false
	for _, f := range sys.Faults {
		if f.Replica == replica && f.At >= injectAt {
			first = f
			found = true
			break
		}
	}
	if !found {
		return fr, ft.Fault{}, injectAt, fmt.Errorf("class %q (idx %d) produced no conviction", class, idx)
	}
	return fr, first, injectAt, nil
}

// TestExplainDetectbenchClasses is the forensics acceptance check: for
// every detectbench fault class that convicts, obs.Explain must
// reconstruct the full causal chain — injection instant, fault mode and
// latency — from the event log alone, with replay value-divergence
// evidence on corrupt runs.
func TestExplainDetectbenchClasses(t *testing.T) {
	goldens, err := buildGoldens(8)
	if err != nil {
		t.Fatalf("buildGoldens: %v", err)
	}
	g := goldens[goldenKey{"adpcm", false}]
	binary := ft.PolicySpec{Kind: ft.PolicyBinary}
	mk, err := MKBudgetFor(g.app, glitchFor(g.app))
	if err != nil {
		t.Fatalf("MKBudgetFor: %v", err)
	}
	mkValue := mk
	mkValue.Value = true
	// Burst episodes only trip binary detection on apps whose consumer
	// envelope is tight enough; radar convicts them on either replica.
	gBurst := goldens[goldenKey{"radar", false}]

	cases := []struct {
		g     *golden
		class string
		pol   ft.PolicySpec
		pname string
	}{
		// Binary convicts every class with a timing signature —
		// including the transients detectbench counts as false
		// convictions; forensics must explain those too.
		{g, "stop", binary, "binary"},
		{g, "glitch", binary, "binary"},
		{gBurst, "burst", binary, "binary"},
		{g, "drift", binary, "binary"},
		{g, "drop", binary, "binary"},
		// The (m,k) budget still convicts permanents, after visibly
		// filling the window.
		{g, "stop", mk, "mk"},
		{g, "drift", mk, "mk"},
		{g, "drop", mk, "mk"},
		// Corruption is only caught by the replay value cross-check.
		{g, "corrupt", mkValue, "mk+value"},
	}
	for _, c := range cases {
		for parity := 0; parity < 2; parity++ { // both replicas
			id := fmt.Sprintf("%s/%s/R%d", c.class, c.pname, 1+parity)
			// Transient classes convict at seed-dependent instants; scan
			// a few seeded injection points for a convicting run.
			var (
				fr       *obs.FlightRecorder
				first    ft.Fault
				injectAt des.Time
			)
			err := fmt.Errorf("no attempts")
			for idx := parity; idx < parity+10 && err != nil; idx += 2 {
				fr, first, injectAt, err = flightClassRun(c.g, c.pol, c.class, idx)
			}
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			ex, ok := obs.Explain(fr.Events(), first.Channel, first.Replica, int64(first.At))
			if !ok {
				t.Fatalf("%s: conviction missing from the flight log", id)
			}
			if ex.FaultMode != c.class {
				t.Errorf("%s: fault mode reconstructed as %q", id, ex.FaultMode)
			}
			if ex.InjectedAt != int64(injectAt) {
				t.Errorf("%s: injection reconstructed at %d, injected at %d", id, ex.InjectedAt, injectAt)
			}
			if want := int64(first.At - injectAt); ex.LatencyUs != want {
				t.Errorf("%s: latency reconstructed as %d, measured %d", id, ex.LatencyUs, want)
			}
			if ex.Reason != string(first.Reason) {
				t.Errorf("%s: reason %q, conviction carried %q", id, ex.Reason, first.Reason)
			}
			if len(ex.Chain) < 2 {
				t.Errorf("%s: chain has %d events, want at least inject+convict", id, len(ex.Chain))
			}
			if c.class == "corrupt" {
				if first.Kind != ft.KindValue {
					t.Errorf("%s: conviction kind = %v, want value", id, first.Kind)
				}
				if ex.ValueDrops == 0 && ex.Reason != string(ft.ReasonValueDivergence) {
					t.Errorf("%s: no replay value evidence in the chain: %+v", id, ex)
				}
			}
			if c.pname == "mk" && ex.Forgiven == 0 && len(ex.WindowFills) == 0 {
				// The (m,k) policy forgives m >= 1 violations before
				// convicting a permanent fault; the window fills are the
				// explanation's evidence for "why not earlier".
				t.Errorf("%s: (m,k) conviction with an empty forgiveness window", id)
			}
		}
	}
}
