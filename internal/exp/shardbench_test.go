package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestShardBenchSuiteSmoke runs the suite at reduced size and checks
// the report invariants: identity verified at every chain point and for
// every app, and the protocol actually exchanged cross-shard messages.
func TestShardBenchSuiteSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := ShardBenchConfig{Shards: []int{1, 2, 4}, Timers: 64, Events: 20_000, Tokens: 6}
	if testing.Short() {
		cfg.Shards = []int{1, 2}
	}
	if err := RunShardBenchSuite(&buf, nil, cfg); err != nil {
		t.Fatalf("suite: %v", err)
	}
	var rep ShardBenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.DispatchBaselineNs <= 0 || len(rep.Dispatch) != len(cfg.Shards) {
		t.Fatalf("dispatch section incomplete: %+v", rep)
	}
	var drained int64
	for _, pt := range rep.Chain {
		if !pt.Identical {
			t.Fatalf("chain at %d shards not identical", pt.Shards)
		}
		drained += pt.Drained
	}
	if drained == 0 {
		t.Fatalf("chain sweep drained no cross-shard messages")
	}
	if len(rep.Apps) != 4 {
		t.Fatalf("app identity matrix has %d rows, want 4", len(rep.Apps))
	}
	for _, row := range rep.Apps {
		if !row.Identical {
			t.Fatalf("app %s not identical across shard counts", row.App)
		}
		if len(row.Shards) != 8 {
			t.Fatalf("app %s checked %v, want shard counts 1..8", row.App, row.Shards)
		}
	}
	if rep.HostCPUs <= 0 {
		t.Fatalf("host_cpus missing")
	}
}
