package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSizingForCaches pins the memoized sizing path: same result as
// ComputeSizing, computed once per distinct timing envelope.
func TestSizingForCaches(t *testing.T) {
	app := MJPEGApp(false, 120)
	want, err := ComputeSizing(app)
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := SizingCacheStats()
	got, err := SizingFor(app)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SizingFor = %+v, ComputeSizing = %+v", got, want)
	}
	// A fresh App value with identical envelopes must hit the cache.
	if got2, err := SizingFor(MJPEGApp(false, 120)); err != nil || got2 != want {
		t.Fatalf("cached SizingFor = %+v, %v", got2, err)
	}
	h1, m1 := SizingCacheStats()
	if h1 == h0 {
		t.Error("second SizingFor with identical envelopes did not hit the cache")
	}
	if m1 > m0+1 {
		t.Errorf("misses grew by %d, want at most 1", m1-m0)
	}
	// A different jitter tier is a different configuration.
	minJ, err := SizingFor(MJPEGApp(true, 120))
	if err != nil {
		t.Fatal(err)
	}
	wantMinJ, err := ComputeSizing(MJPEGApp(true, 120))
	if err != nil {
		t.Fatal(err)
	}
	if minJ != wantMinJ {
		t.Fatalf("min-jitter SizingFor = %+v, want %+v", minJ, wantMinJ)
	}
}

// TestRunCoreBenchSuite smoke-runs the simulation-core suite at a small
// campaign size and checks the report schema and its identity claims.
func TestRunCoreBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite is slow")
	}
	var buf, log bytes.Buffer
	err := RunCoreBenchSuite(&buf, &log, CoreBenchConfig{CampaignRuns: 8})
	if err != nil {
		t.Fatal(err)
	}
	var rep CoreBenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.ParallelIdentical {
		t.Error("campaign output differed across parallelism levels")
	}
	names := map[string]bool{}
	for _, c := range rep.Comparisons {
		names[c.Name] = true
	}
	for _, want := range []string{
		"des_events_bucket_vs_heap_256t",
		"crt_fifo_cycle_spsc_vs_locked",
		"crt_fifo_stream_spsc_vs_locked",
	} {
		if !names[want] {
			t.Errorf("report lacks comparison %q", want)
		}
	}
	// 8 runs cannot match the 1000-run golden: the diff must be skipped
	// with an explanation, not reported as a pass.
	if rep.GoldenMatch {
		t.Error("golden_match true for a non-golden campaign size")
	}
	if rep.GoldenNote == "" {
		t.Error("skipped golden diff carries no note")
	}
	if rep.SizingCacheMisses == 0 {
		t.Error("sizing cache recorded no misses — SizingFor not exercised")
	}
}
