package exp

import (
	"errors"
	"testing"
)

// TestParallelDeterminism is the regression for the parallel runner: the
// rendered Table 2 block must be String()-identical between a sequential
// and a heavily parallel execution. Host-time op-cost measurement is the
// one legitimately nondeterministic field, so both sides disable it.
func TestParallelDeterminism(t *testing.T) {
	names := []string{"adpcm"}
	if !testing.Short() {
		names = append(names, "mjpeg")
	}
	for _, name := range names {
		tokens := int64(120)
		app, err := AppByName(name, false, tokens)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Table2(app, 6, WithParallelism(1), WithoutOpCosts())
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		par, err := Table2(app, 6, WithParallelism(8), WithoutOpCosts())
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if s, p := seq.String(), par.String(); s != p {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", name, s, p)
		}
	}
}

// TestTable3ParallelDeterminism covers the second parallelized
// experiment the same way.
func TestTable3ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq, err := Table3ADPCMOnly(6, 1000, 140, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table3ADPCMOnly(6, 1000, 140, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatTable3([]Table3Row{seq}), FormatTable3([]Table3Row{par}); s != p {
		t.Errorf("Table 3 parallel output differs:\n%s\nvs\n%s", s, p)
	}
}

func TestRunIndexed(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got, err := runIndexed(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunIndexedLowestError(t *testing.T) {
	boom3 := errors.New("run 3 failed")
	boom7 := errors.New("run 7 failed")
	for _, workers := range []int{1, 4} {
		_, err := runIndexed(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i, nil
		})
		if !errors.Is(err, boom3) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, boom3)
		}
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	got, err := runIndexed(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run set: %v %v", got, err)
	}
}
