package ft

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Selector is the paper's selector channel (§3.1): two writing
// interfaces and one reading interface sharing a single physical FIFO of
// size max(|S_1|, |S_2|). Per-interface space counters start at
// |S_k| − |S_k|_0 (capacity minus initial tokens, eq. 4) and fill starts
// at max(|S_1|_0, |S_2|_0) preloaded tokens. A consumer read increments
// both space counters; a write on interface k decrements only space_k
// (Lemma 1: interfaces never touch each other's counter, so replicas are
// isolated).
//
// Duplicate-pair arbitration: interface k's token is the first of its
// pair — and is enqueued — iff k's write count is the (weak) maximum of
// all write counts; otherwise the token duplicates one already queued
// and is dropped. With equal virtual capacities this is exactly the
// paper's "space_k <= space_other" rule; tracking write counts keeps the
// rule correct when |S_1| ≠ |S_2|.
//
// Fault detection (§3.3) is counter-only — no runtime timekeeping:
//
//  1. consumer-stall: after a read, space_k > |S_k| means replica k has
//     fallen so far behind that the consumer is living off the other
//     replica alone; replica k is faulty.
//  2. divergence: after a write, if the writer leads the other interface
//     by at least D tokens (eq. 5's threshold), the other replica is
//     faulty. D guarantees no false positives.
type Selector struct {
	faultState
	name  string
	caps  [2]int
	inits [2]int
	space [2]int64
	// wcnt counts actual tokens written per interface, starting at 0 for
	// both. Duplicate-pair arbitration and divergence detection compare
	// these directly: the k-th write of interface 1 and the k-th write
	// of interface 2 are the same stream token. Initial credits (inits)
	// affect only the space counters — folding them into the write
	// counts would shift pair identities between interfaces with
	// asymmetric initial fills and lose a token on fail-over.
	wcnt  [2]int64
	drops [2]int64

	fifo []kpn.Token
	head int

	notEmpty des.Signal
	notFull  [2]des.Signal

	reads   int64
	maxFill int

	// D is the divergence threshold from rtc.DivergenceThreshold; 0
	// disables divergence detection.
	D int64

	onWrite [2]func(now des.Time)
}

// SetWriteHook registers a callback fired after each write by replica
// (1-based); external monitors observe the replica's production events
// through it.
func (s *Selector) SetWriteHook(replica int, fn func(now des.Time)) {
	s.onWrite[replica-1] = fn
}

// NewSelector builds a selector channel. caps are the virtual capacities
// |S_1|, |S_2| (eq. 3 analogue on the consumer side); inits are the
// initial token counts |S_1|_0, |S_2|_0 (eq. 4); preload generates the
// max(inits) physically preloaded tokens (nil for empty timing-only
// tokens with non-positive Seq).
func NewSelector(k *des.Kernel, name string, caps, inits [2]int, d int64, preload func(i int) kpn.Token, handler FaultHandler) *Selector {
	if caps[0] <= 0 || caps[1] <= 0 {
		panic(fmt.Sprintf("ft: selector %q capacities must be positive, got %v", name, caps))
	}
	for i := 0; i < 2; i++ {
		if inits[i] < 0 || inits[i] > caps[i] {
			panic(fmt.Sprintf("ft: selector %q initial tokens %d outside [0,%d]", name, inits[i], caps[i]))
		}
	}
	if d < 0 {
		panic(fmt.Sprintf("ft: selector %q divergence threshold must be non-negative, got %d", name, d))
	}
	s := &Selector{
		faultState: faultState{channel: name, k: k, handler: handler},
		name:       name,
		caps:       caps,
		inits:      inits,
		D:          d,
	}
	nPre := inits[0]
	if inits[1] > nPre {
		nPre = inits[1]
	}
	for i := 0; i < nPre; i++ {
		var tok kpn.Token
		if preload != nil {
			tok = preload(i)
		} else {
			tok = kpn.Token{Seq: int64(i) - int64(nPre) + 1}
		}
		s.fifo = append(s.fifo, tok)
	}
	s.maxFill = nPre
	for i := 0; i < 2; i++ {
		s.space[i] = int64(caps[i] - inits[i])
	}
	return s
}

// Name returns the channel name.
func (s *Selector) Name() string { return s.name }

// Fill returns the number of tokens currently queued.
func (s *Selector) Fill() int { return len(s.fifo) - s.head }

// MaxFill returns the highest observed fill (Table 2's observed fill).
func (s *Selector) MaxFill() int { return s.maxFill }

// Space returns interface k's (1-based) space counter.
func (s *Selector) Space(replica int) int64 { return s.space[replica-1] }

// Writes returns how many tokens interface k (1-based) has actually
// written; Drops counts its late duplicates discarded; Reads counts
// consumer reads.
func (s *Selector) Writes(replica int) int64 { return s.wcnt[replica-1] }
func (s *Selector) Drops(replica int) int64  { return s.drops[replica-1] }
func (s *Selector) Reads() int64             { return s.reads }

// write implements rule 3 with fault detection on interface i (0-based).
func (s *Selector) write(p *des.Proc, i int, tok kpn.Token) {
	for s.space[i] == 0 {
		p.Wait(&s.notFull[i])
	}
	other := 1 - i
	if s.wcnt[i] >= s.wcnt[other] {
		// First token of its duplicate pair: enqueue.
		s.fifo = append(s.fifo, tok)
		if f := s.Fill(); f > s.maxFill {
			s.maxFill = f
		}
		s.k.Broadcast(&s.notEmpty)
	} else {
		// Late duplicate of an already-queued token: drop.
		s.drops[i]++
	}
	s.wcnt[i]++
	s.space[i]--
	if fn := s.onWrite[i]; fn != nil {
		fn(s.k.Now())
	}
	// Divergence detection (§3.3): writer i leading by >= D implies the
	// other replica's output has fallen behind its envelope.
	if s.D > 0 && !s.faulty[other] && s.wcnt[i]-s.wcnt[other] >= s.D {
		s.flag(other, ReasonDivergence)
	}
}

// read implements the destructive blocking read of the single reader
// interface, with consumer-stall detection.
func (s *Selector) read(p *des.Proc) kpn.Token {
	for s.Fill() == 0 {
		p.Wait(&s.notEmpty)
	}
	tok := s.fifo[s.head]
	s.fifo[s.head] = kpn.Token{}
	s.head++
	if s.head == len(s.fifo) {
		s.fifo = s.fifo[:0]
		s.head = 0
	}
	s.reads++
	for i := 0; i < 2; i++ {
		s.space[i]++
		// Consumer-stall detection: space beyond the virtual capacity
		// means this replica no longer backs the tokens being consumed.
		if !s.faulty[i] && s.space[i] > int64(s.caps[i]) {
			s.flag(i, ReasonConsumerStall)
		}
		s.k.Broadcast(&s.notFull[i])
	}
	return tok
}

// selectorWriter is one replica-facing write interface.
type selectorWriter struct {
	s *Selector
	i int
}

// WriterPort returns the write interface for replica (1-based).
func (s *Selector) WriterPort(replica int) kpn.WritePort {
	if replica < 1 || replica > 2 {
		panic(fmt.Sprintf("ft: selector replica %d out of range {1,2}", replica))
	}
	return selectorWriter{s: s, i: replica - 1}
}

func (w selectorWriter) Write(p *des.Proc, tok kpn.Token) { w.s.write(p, w.i, tok) }
func (w selectorWriter) PortName() string                 { return fmt.Sprintf("%s.w%d", w.s.name, w.i+1) }

// selectorReader is the consumer-facing read interface.
type selectorReader struct{ s *Selector }

// ReaderPort returns the single read interface.
func (s *Selector) ReaderPort() kpn.ReadPort { return selectorReader{s} }

func (rd selectorReader) Read(p *des.Proc) kpn.Token { return rd.s.read(p) }
func (rd selectorReader) PortName() string           { return rd.s.name + ".r" }
