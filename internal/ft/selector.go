package ft

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Selector is the paper's selector channel (§3.1): two writing
// interfaces and one reading interface sharing a single physical FIFO of
// size max(|S_1|, |S_2|). Per-interface space counters start at
// |S_k| − |S_k|_0 (capacity minus initial tokens, eq. 4) and fill starts
// at max(|S_1|_0, |S_2|_0) preloaded tokens. A consumer read increments
// both space counters; a write on interface k decrements only space_k
// (Lemma 1: interfaces never touch each other's counter, so replicas are
// isolated).
//
// Duplicate-pair arbitration: interface k's token is the first of its
// pair — and is enqueued — iff k's write count is the (weak) maximum of
// all write counts; otherwise the token duplicates one already queued
// and is dropped. With equal virtual capacities this is exactly the
// paper's "space_k <= space_other" rule; tracking write counts keeps the
// rule correct when |S_1| ≠ |S_2|.
//
// Fault detection (§3.3) is counter-only — no runtime timekeeping:
//
//  1. consumer-stall: after a read, space_k > |S_k| means replica k has
//     fallen so far behind that the consumer is living off the other
//     replica alone; replica k is faulty.
//  2. divergence: after a write, if the writer leads the other interface
//     by at least D tokens (eq. 5's threshold), the other replica is
//     faulty. D guarantees no false positives.
type Selector struct {
	faultState
	name  string
	caps  [2]int
	inits [2]int
	space [2]int64
	// wcnt counts actual tokens written per interface, starting at 0 for
	// both. Duplicate-pair arbitration and divergence detection compare
	// these directly: the k-th write of interface 1 and the k-th write
	// of interface 2 are the same stream token. Initial credits (inits)
	// affect only the space counters — folding them into the write
	// counts would shift pair identities between interfaces with
	// asymmetric initial fills and lose a token on fail-over.
	wcnt  [2]int64
	drops [2]int64
	// wBase rebases an interface's pair index after re-integration:
	// interface i's next write belongs to pair wcnt[i]-wBase[i]+1.
	// All-zero bases reproduce the original counters exactly.
	wBase [2]int64
	// lastSeqW is the stream index (token Seq) of interface i's last
	// counted write; resynchronization aligns a recovering interface's
	// pair index against the healthy interface's lastSeqW.
	lastSeqW [2]int64
	// resync marks an interface undergoing re-integration: its writes
	// bypass arbitration until the Seq alignment point is found.
	resync [2]bool
	// resyncDrops counts stale tokens discarded (uncounted) during
	// resynchronization.
	resyncDrops [2]int64
	// adjust records the space-counter correction applied when the
	// counter was recomputed at alignment, keeping the invariant
	// space = caps - inits - effW + reads - adjust machine-checkable.
	adjust [2]int64
	// selGrace suppresses divergence convictions *by* a freshly
	// re-aligned interface for its first few counted writes: its empty
	// pipeline lets it transiently run ahead of the healthy replica's
	// in-flight backlog, which is not a model violation by the other
	// side.
	selGrace [2]int64
	// vcheck, when non-nil, cross-checks every counted write against the
	// golden replay by pair position (RepTFD-style value detection).
	vcheck ValueCheck
	// valueBad latches an interface convicted for value divergence: its
	// writes are discarded uncounted — the healthy interface owns every
	// pair — until re-integration re-aligns it.
	valueBad [2]bool
	// valueDrops counts tokens discarded by the value path.
	valueDrops [2]int64

	fifo []kpn.Token
	head int

	notEmpty   des.Signal
	notFull    [2]des.Signal
	resyncWait des.Signal

	reads   int64
	nPre    int
	maxFill int

	// D is the divergence threshold from rtc.DivergenceThreshold; 0
	// disables divergence detection.
	D int64

	onWrite [2]func(now des.Time)
	probe   Probe
}

// SetWriteHook registers a callback fired after each write by replica
// (1-based); external monitors observe the replica's production events
// through it.
func (s *Selector) SetWriteHook(replica int, fn func(now des.Time)) {
	s.onWrite[replica-1] = fn
}

// NewSelector builds a selector channel. caps are the virtual capacities
// |S_1|, |S_2| (eq. 3 analogue on the consumer side); inits are the
// initial token counts |S_1|_0, |S_2|_0 (eq. 4); preload generates the
// max(inits) physically preloaded tokens (nil for empty timing-only
// tokens with non-positive Seq).
func NewSelector(k *des.Kernel, name string, caps, inits [2]int, d int64, preload func(i int) kpn.Token, handler FaultHandler) *Selector {
	if caps[0] <= 0 || caps[1] <= 0 {
		panic(fmt.Sprintf("ft: selector %q capacities must be positive, got %v", name, caps))
	}
	for i := 0; i < 2; i++ {
		if inits[i] < 0 || inits[i] > caps[i] {
			panic(fmt.Sprintf("ft: selector %q initial tokens %d outside [0,%d]", name, inits[i], caps[i]))
		}
	}
	if d < 0 {
		panic(fmt.Sprintf("ft: selector %q divergence threshold must be non-negative, got %d", name, d))
	}
	s := &Selector{
		faultState: faultState{channel: name, k: k, handler: handler},
		name:       name,
		caps:       caps,
		inits:      inits,
		D:          d,
	}
	nPre := inits[0]
	if inits[1] > nPre {
		nPre = inits[1]
	}
	for i := 0; i < nPre; i++ {
		var tok kpn.Token
		if preload != nil {
			tok = preload(i)
		} else {
			tok = kpn.Token{Seq: int64(i) - int64(nPre) + 1}
		}
		s.fifo = append(s.fifo, tok)
	}
	s.nPre = nPre
	s.maxFill = nPre
	for i := 0; i < 2; i++ {
		s.space[i] = int64(caps[i] - inits[i])
	}
	return s
}

// Name returns the channel name.
func (s *Selector) Name() string { return s.name }

// Fill returns the number of tokens currently queued.
func (s *Selector) Fill() int { return len(s.fifo) - s.head }

// MaxFill returns the highest observed fill (Table 2's observed fill).
func (s *Selector) MaxFill() int { return s.maxFill }

// Space returns interface k's (1-based) space counter.
func (s *Selector) Space(replica int) int64 { return s.space[replica-1] }

// Writes returns how many tokens interface k (1-based) has actually
// written; Drops counts its late duplicates discarded; Reads counts
// consumer reads.
func (s *Selector) Writes(replica int) int64 { return s.wcnt[replica-1] }
func (s *Selector) Drops(replica int) int64  { return s.drops[replica-1] }
func (s *Selector) Reads() int64             { return s.reads }

// ResyncDrops returns how many stale tokens interface k (1-based)
// discarded uncounted during re-integration; Resyncing reports whether
// the interface is still seeking its alignment point.
func (s *Selector) ResyncDrops(replica int) int64 { return s.resyncDrops[replica-1] }
func (s *Selector) Resyncing(replica int) bool    { return s.resync[replica-1] }

// SetValueCheck installs the replay-based value cross-check applied to
// every counted write (nil disables). A failing check convicts the
// writing interface with ReasonValueDivergence and discards the token
// uncounted, so the healthy interface's write becomes the pair's first
// copy and the consumer stream stays golden even though the corrupt
// replica's timing was clean.
func (s *Selector) SetValueCheck(check ValueCheck) { s.vcheck = check }

// ValueDrops returns how many tokens interface k (1-based) had
// discarded by the value cross-check path.
func (s *Selector) ValueDrops(replica int) int64 { return s.valueDrops[replica-1] }

// effW is interface i's pair index: how many duplicate pairs it has
// participated in since its last (re-)integration base.
func (s *Selector) effW(i int) int64 { return s.wcnt[i] - s.wBase[i] }

// Divergence returns how many duplicate pairs the other interface leads
// replica (1-based) by — the eq. 5 quantity a divergence conviction
// compares against D. Negative when the replica itself is ahead.
func (s *Selector) Divergence(replica int) int64 {
	i := replica - 1
	return s.effW(1-i) - s.effW(i)
}

// Reintegrate puts interface replica (1-based) into resynchronization
// after its replica has been repaired: stale tokens still in the
// replica's pipeline (stream index at or below the healthy interface's
// last counted write) are discarded uncounted, and the first token at or
// just past the healthy write front re-aligns the interface's pair
// index, space counter and divergence base, clearing its conviction.
// The other interface must currently be healthy — it is the reference
// stream; Reintegrate reports false and does nothing otherwise.
func (s *Selector) Reintegrate(replica int) bool {
	i := replica - 1
	if i < 0 || i > 1 {
		panic(fmt.Sprintf("ft: selector replica %d out of range {1,2}", replica))
	}
	h := 1 - i
	if s.faulty[h] || s.resync[h] {
		return false
	}
	if s.resync[i] {
		return true
	}
	// A convicted replica is always at or behind the reference stream
	// (stall and divergence both catch the laggard). Re-integrating an
	// interface that is ahead would re-align its pair index backwards and
	// re-enqueue pairs already in the FIFO, corrupting the stream —
	// refuse rather than corrupt.
	if s.effW(i) > s.effW(h) {
		return false
	}
	s.resync[i] = true
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeReintegrate, Replica: replica, Fill: s.Fill()})
	}
	// A writer parked on the space counter must re-route through the
	// resync path; one parked mid-resync re-evaluates the new state.
	s.k.Broadcast(&s.notFull[i])
	s.k.Broadcast(&s.resyncWait)
	return true
}

// align ends interface i's resynchronization against the healthy
// reference h. back=0 aligns the pending token as the first of the next
// pair (it arrived ahead of h); back=1 aligns it as the late duplicate
// of h's last pair. The space counter is recomputed from the counter
// identity and clamped into [0, caps]; the clamp residue is kept in
// adjust so the identity stays checkable (and detection thresholds shift
// by at most that residue, in the conservative direction for clamp-downs).
func (s *Selector) align(i, h int, back int64) {
	s.wBase[i] = s.wcnt[i] - (s.effW(h) - back)
	raw := int64(s.caps[i]-s.inits[i]) - s.effW(i) + s.reads
	clamped := raw
	if clamped < 0 {
		clamped = 0
	}
	if c := int64(s.caps[i]); clamped > c {
		clamped = c
	}
	s.adjust[i] = raw - clamped
	s.space[i] = clamped
	s.resync[i] = false
	// Grace: the re-integrated replica's empty pipeline lets it race to
	// the stream front, transiently leading the healthy replica by up to
	// its in-flight backlog; do not convict the healthy side for that.
	s.selGrace[i] = int64(s.caps[i]) + s.D
	s.valueBad[i] = false
	s.reinstate(i)
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeAligned, Replica: i + 1, Fill: s.Fill()})
	}
}

// write implements rule 3 with fault detection on interface i (0-based),
// and the resynchronization protocol of a re-integrating interface.
func (s *Selector) write(p *des.Proc, i int, tok kpn.Token) {
	for {
		if s.resync[i] {
			h := 1 - i
			switch last := s.lastSeqW[h]; {
			case tok.Seq <= 0 || tok.Seq < last:
				// Stale pipeline remnant from before the outage (or a
				// preload-era token): discard without counting.
				s.resyncDrops[i]++
				if fn := s.probe; fn != nil {
					fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeDropResync, Replica: i + 1, Fill: s.Fill()})
				}
				return
			case tok.Seq == last:
				s.align(i, h, 1) // late duplicate of h's current pair
			case tok.Seq == last+1:
				s.align(i, h, 0) // first token of the next pair
			default:
				// Ahead of the healthy write front (the recovered
				// replica's pipeline refilled from fresher input):
				// wait for h to advance. Only the recovering side
				// blocks here, so Lemma 1 isolation is preserved.
				p.Wait(&s.resyncWait)
				continue
			}
		}
		if s.valueBad[i] {
			// A value-convicted interface's stream is corrupt: discard
			// uncounted (no space, pair or Seq bookkeeping) so the healthy
			// interface owns every pair until re-integration re-aligns it.
			s.valueDrops[i]++
			if fn := s.probe; fn != nil {
				fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeDropValue, Replica: i + 1, Fill: s.Fill()})
			}
			return
		}
		if s.space[i] == 0 {
			p.Wait(&s.notFull[i])
			continue // a Reintegrate may have re-routed this interface
		}
		break
	}
	other := 1 - i
	// Replay-based value cross-check (RepTFD): the token must match the
	// golden replay at the pair position it is writing into. A mismatch
	// is discarded uncounted — the other interface's copy becomes the
	// pair's first token, so masking stays exact — and convicts the
	// writer even though its timing is clean. Checks are gated on stream
	// identity by the ValueCheck itself (see the type's contract): a
	// replica writing a *different stream position* into the pair (e.g.
	// after a forgiven overflow skipped one of its inputs) is a timing
	// skew for the timing detectors, not corruption.
	if s.vcheck != nil && !s.vcheck(s.effW(i)+1, tok) {
		s.valueDrops[i]++
		if fn := s.probe; fn != nil {
			fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeDropValue, Replica: i + 1, Fill: s.Fill()})
		}
		if convict, forgiven := s.sample(i, ReasonValueDivergence, true); convict {
			s.valueBad[i] = true
			s.flag(i, ReasonValueDivergence)
		} else if forgiven && s.probe != nil {
			s.probe(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeForgiven, Replica: i + 1})
		}
		return
	}
	enq := s.effW(i) >= s.effW(other)
	if enq {
		// First token of its duplicate pair: enqueue.
		s.fifo = append(s.fifo, tok)
		if f := s.Fill(); f > s.maxFill {
			s.maxFill = f
		}
		s.k.Broadcast(&s.notEmpty)
	} else {
		// Late duplicate of an already-queued token: drop.
		s.drops[i]++
	}
	if fn := s.probe; fn != nil {
		kind := ProbeDropDuplicate
		if enq {
			kind = ProbeEnqueue
		}
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: kind, Replica: i + 1,
			Fill: s.Fill(), Lead: s.effW(i) + 1 - s.effW(other)})
	}
	s.wcnt[i]++
	s.space[i]--
	s.lastSeqW[i] = tok.Seq
	if s.selGrace[i] > 0 {
		s.selGrace[i]--
	}
	if s.resync[other] {
		s.k.Broadcast(&s.resyncWait)
	}
	if fn := s.onWrite[i]; fn != nil {
		fn(s.k.Now())
	}
	// Divergence detection (§3.3): writer i leading by >= D implies the
	// other replica's output has fallen behind its envelope. An
	// interface in resync is judged only after alignment, and a freshly
	// aligned interface's transient lead is excused by its grace. Each
	// evaluation is one policy sample; the inline path (nil policy)
	// convicts on the first violation.
	if s.D > 0 && !s.faulty[other] && !s.resync[other] && s.selGrace[i] == 0 {
		lead := s.effW(i) - s.effW(other)
		if convict, forgiven := s.sample(other, ReasonDivergence, lead >= s.D); convict {
			s.flag(other, ReasonDivergence)
		} else if forgiven && s.probe != nil {
			s.probe(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeForgiven, Replica: other + 1, Fill: s.Fill(), Lead: lead})
		}
	}
}

// read implements the destructive blocking read of the single reader
// interface, with consumer-stall detection.
func (s *Selector) read(p *des.Proc) kpn.Token {
	for s.Fill() == 0 {
		p.Wait(&s.notEmpty)
	}
	tok := s.fifo[s.head]
	s.fifo[s.head] = kpn.Token{}
	s.head++
	if s.head == len(s.fifo) {
		s.fifo = s.fifo[:0]
		s.head = 0
	}
	s.reads++
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeRead, Fill: s.Fill()})
	}
	for i := 0; i < 2; i++ {
		s.space[i]++
		// Consumer-stall detection: space beyond the virtual capacity
		// means this replica no longer backs the tokens being consumed.
		// An interface mid-resync is exempt until it re-aligns. Each
		// read is one policy sample per interface.
		if !s.faulty[i] && !s.resync[i] {
			if convict, forgiven := s.sample(i, ReasonConsumerStall, s.space[i] > int64(s.caps[i])); convict {
				s.flag(i, ReasonConsumerStall)
			} else if forgiven && s.probe != nil {
				s.probe(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeForgiven, Replica: i + 1, Fill: s.Fill()})
			}
		}
		s.k.Broadcast(&s.notFull[i])
	}
	return tok
}

// CheckInvariants verifies the selector's counter identities: per
// interface, space = caps - inits - effW + reads - adjust, and globally
// fill = preload + max(effW) - reads. It returns the first violation.
func (s *Selector) CheckInvariants() error {
	for i := 0; i < 2; i++ {
		want := int64(s.caps[i]-s.inits[i]) - s.effW(i) + s.reads - s.adjust[i]
		if s.space[i] != want {
			return fmt.Errorf("ft: selector %q space_%d = %d, counter identity gives %d",
				s.name, i+1, s.space[i], want)
		}
	}
	maxEff := s.effW(0)
	if e := s.effW(1); e > maxEff {
		maxEff = e
	}
	if want := int64(s.nPre) + maxEff - s.reads; int64(s.Fill()) != want {
		return fmt.Errorf("ft: selector %q fill = %d, pair accounting gives %d",
			s.name, s.Fill(), want)
	}
	return nil
}

// selectorWriter is one replica-facing write interface.
type selectorWriter struct {
	s *Selector
	i int
}

// WriterPort returns the write interface for replica (1-based).
func (s *Selector) WriterPort(replica int) kpn.WritePort {
	if replica < 1 || replica > 2 {
		panic(fmt.Sprintf("ft: selector replica %d out of range {1,2}", replica))
	}
	return selectorWriter{s: s, i: replica - 1}
}

func (w selectorWriter) Write(p *des.Proc, tok kpn.Token) { w.s.write(p, w.i, tok) }
func (w selectorWriter) PortName() string                 { return fmt.Sprintf("%s.w%d", w.s.name, w.i+1) }

// selectorReader is the consumer-facing read interface.
type selectorReader struct{ s *Selector }

// ReaderPort returns the single read interface.
func (s *Selector) ReaderPort() kpn.ReadPort { return selectorReader{s} }

func (rd selectorReader) Read(p *des.Proc) kpn.Token { return rd.s.read(p) }
func (rd selectorReader) PortName() string           { return rd.s.name + ".r" }
