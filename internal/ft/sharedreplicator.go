package ft

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// SharedReplicator is the more memory-efficient replicator variant that
// §3.1 mentions ("more efficient implementations utilizing circular
// FIFO buffers with two readers are possible"): one ring buffer storing
// each token once, with an independent read cursor per replica. The
// observable behaviour matches Replicator with equal per-replica
// capacities; token-slot memory is halved.
//
// Fault detection works exactly as in the two-queue design: a write that
// finds replica k lagging a full ring behind marks k faulty, and k's
// cursor stops constraining the writer, so the producer never blocks on
// a faulty replica.
type SharedReplicator struct {
	faultState
	name     string
	capacity int
	ring     []kpn.Token
	writePos int64
	readPos  [2]int64
	maxLag   [2]int64

	notEmpty [2]des.Signal
	lost     int64
}

// NewSharedReplicator builds a shared-ring replicator with the given
// per-replica (and total) capacity.
func NewSharedReplicator(k *des.Kernel, name string, capacity int, handler FaultHandler) *SharedReplicator {
	if capacity <= 0 {
		panic(fmt.Sprintf("ft: shared replicator %q capacity must be positive, got %d", name, capacity))
	}
	return &SharedReplicator{
		faultState: faultState{channel: name, k: k, handler: handler},
		name:       name,
		capacity:   capacity,
		ring:       make([]kpn.Token, capacity),
	}
}

// Name returns the channel name.
func (r *SharedReplicator) Name() string { return r.name }

// Capacity returns the ring capacity.
func (r *SharedReplicator) Capacity() int { return r.capacity }

// Fill returns how many tokens replica i (1-based) still has pending.
func (r *SharedReplicator) Fill(replica int) int {
	return int(r.writePos - r.readPos[replica-1])
}

// MaxFill returns the highest pending count observed for replica i
// (1-based).
func (r *SharedReplicator) MaxFill(replica int) int { return int(r.maxLag[replica-1]) }

// Lost counts tokens written while every replica was faulty.
func (r *SharedReplicator) Lost() int64 { return r.lost }

// write stores the token once and advances the writer.
func (r *SharedReplicator) write(p *des.Proc, tok kpn.Token) {
	anyHealthy := false
	for i := 0; i < 2; i++ {
		if r.faulty[i] {
			continue
		}
		if r.writePos-r.readPos[i] >= int64(r.capacity) {
			r.flag(i, ReasonQueueFull)
			continue
		}
		anyHealthy = true
	}
	if !anyHealthy {
		r.lost++
		return
	}
	r.ring[r.writePos%int64(r.capacity)] = tok
	r.writePos++
	for i := 0; i < 2; i++ {
		if r.faulty[i] {
			continue
		}
		if lag := r.writePos - r.readPos[i]; lag > r.maxLag[i] {
			r.maxLag[i] = lag
		}
		r.k.Broadcast(&r.notEmpty[i])
	}
}

// read returns the next token for replica i (0-based), blocking while
// the replica has consumed everything written so far.
func (r *SharedReplicator) read(p *des.Proc, i int) kpn.Token {
	for r.readPos[i] == r.writePos {
		p.Wait(&r.notEmpty[i])
	}
	tok := r.ring[r.readPos[i]%int64(r.capacity)]
	r.readPos[i]++
	return tok
}

// sharedWriter is the producer-facing interface.
type sharedWriter struct{ r *SharedReplicator }

// WriterPort returns the single write interface.
func (r *SharedReplicator) WriterPort() kpn.WritePort { return sharedWriter{r} }

func (w sharedWriter) Write(p *des.Proc, tok kpn.Token) { w.r.write(p, tok) }
func (w sharedWriter) PortName() string                 { return w.r.name + ".w" }

// sharedReader is one replica-facing interface.
type sharedReader struct {
	r *SharedReplicator
	i int
}

// ReaderPort returns the read interface for replica (1-based).
func (r *SharedReplicator) ReaderPort(replica int) kpn.ReadPort {
	if replica < 1 || replica > 2 {
		panic(fmt.Sprintf("ft: shared replicator replica %d out of range {1,2}", replica))
	}
	return sharedReader{r: r, i: replica - 1}
}

func (rd sharedReader) Read(p *des.Proc) kpn.Token { return rd.r.read(p, rd.i) }
func (rd sharedReader) PortName() string           { return fmt.Sprintf("%s.r%d", rd.r.name, rd.i+1) }
