package ft

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Replicator is the paper's replicator channel (§3.1): one writing
// interface and two reading interfaces backed by two FIFO queues of
// capacities |R_1| and |R_2|. Every written token is duplicated into
// both queues.
//
// In Strict mode the channel follows rule 3 literally: a write blocks
// while min(space_1, space_2) = 0, which (with unbounded or
// never-overflowing queues) yields the equivalence of Theorem 2. In the
// default fault-detecting mode (§3.3) a write that finds queue k full
// instead marks replica k faulty and stops feeding it, so the producer
// never blocks on a faulty replica.
//
// Optionally, a divergence threshold DReads > 0 additionally flags the
// replica whose *consumption* lags the other's by DReads tokens,
// detecting rate degradation before a queue fills (the replicator-side
// analogue of eq. 5, which §3.4 notes is computed analogously).
type Replicator struct {
	faultState
	name    string
	caps    [2]int
	queues  [2][]kpn.Token
	reads   [2]int64
	writes  int64
	lost    int64 // tokens dropped because both replicas were faulty
	maxFill [2]int

	// appended and purged track queue bookkeeping across re-integration:
	// len(queue_i) = appended_i - reads_i - purged_i at all times.
	appended [2]int64
	purged   [2]int64
	// readBase rebases a queue's consumption position after
	// re-integration: replica i's effective position is
	// reads[i]-readBase[i]. All-zero bases reproduce the original
	// counters exactly.
	readBase [2]int64
	// graceReads suppresses read-divergence convictions involving a
	// freshly re-integrated replica for its first graceReads[i]
	// consumptions, covering the transient position skew its re-armed
	// queue introduces.
	graceReads [2]int64
	// slide marks a re-integrated replica that has not read since: until
	// its first read the queue keeps re-arming itself on overflow (drop
	// oldest, append newest) instead of convicting — the replica may
	// still be finishing an operation that was in flight (and possibly
	// degraded) when the fault was repaired. The window stays contiguous,
	// so pair identity is preserved; queue-full detection is fully armed
	// again from the first read on.
	slide [2]bool

	notEmpty [2]des.Signal
	notFull  des.Signal

	// Strict disables fault detection and blocks per rule 3.
	Strict bool
	// DReads is the read-divergence threshold; 0 disables it.
	DReads int64

	onRead [2]func(now des.Time)
	probe  Probe
}

// SetReadHook registers a callback fired after each read by replica
// (1-based); external monitors (package detect) use it to observe the
// replica's consumption events.
func (r *Replicator) SetReadHook(replica int, fn func(now des.Time)) {
	r.onRead[replica-1] = fn
}

// NewReplicator builds a replicator channel with per-replica queue
// capacities (|R_1|, |R_2|) computed from eq. 3.
func NewReplicator(k *des.Kernel, name string, caps [2]int, handler FaultHandler) *Replicator {
	if caps[0] <= 0 || caps[1] <= 0 {
		panic(fmt.Sprintf("ft: replicator %q capacities must be positive, got %v", name, caps))
	}
	return &Replicator{
		faultState: faultState{channel: name, k: k, handler: handler},
		name:       name,
		caps:       caps,
	}
}

// Name returns the channel name.
func (r *Replicator) Name() string { return r.name }

// space returns the free slots of queue i.
func (r *Replicator) space(i int) int { return r.caps[i] - len(r.queues[i]) }

// Fill returns the fill level of replica queue i (1-based).
func (r *Replicator) Fill(replica int) int { return len(r.queues[replica-1]) }

// Capacity returns the capacity of replica queue i (1-based).
func (r *Replicator) Capacity(replica int) int { return r.caps[replica-1] }

// MaxFill returns the highest observed fill of replica queue i
// (1-based) — Table 2's "Max. Observed Fill".
func (r *Replicator) MaxFill(replica int) int { return r.maxFill[replica-1] }

// Writes returns the number of tokens accepted from the producer; Reads
// returns how many replica i (1-based) has consumed; Lost counts tokens
// discarded because every queue was faulty.
func (r *Replicator) Writes() int64           { return r.writes }
func (r *Replicator) Reads(replica int) int64 { return r.reads[replica-1] }
func (r *Replicator) Lost() int64             { return r.lost }

// effReads is replica i's effective consumption position since its last
// (re-)integration base.
func (r *Replicator) effReads(i int) int64 { return r.reads[i] - r.readBase[i] }

// Divergence returns how many consumed tokens the other replica leads
// replica (1-based) by — the read-divergence quantity compared against
// DReads. Negative when the replica itself is ahead.
func (r *Replicator) Divergence(replica int) int64 {
	i := replica - 1
	return r.effReads(1-i) - r.effReads(i)
}

// Reintegrate re-arms replica's (1-based) queue after its fault has been
// repaired: the stale backlog is purged and replaced by a copy of the
// newest fill tokens of the healthy replica's queue (trimmed to the
// queue's own capacity minus one, so re-admission cannot itself trip
// queue-full), the consumption position is rebased to the re-armed
// content, and the conviction is cleared so the next fault is detected.
// graceReads read-divergence convictions involving this replica are
// excused while the transient position skew drains. The other replica
// must be healthy — it is the re-arm source; Reintegrate reports false
// and does nothing otherwise.
func (r *Replicator) Reintegrate(replica int, fill int, graceReads int64) bool {
	i := replica - 1
	if i < 0 || i > 1 {
		panic(fmt.Sprintf("ft: replicator replica %d out of range {1,2}", replica))
	}
	h := 1 - i
	if r.faulty[h] {
		return false
	}
	if fill > r.caps[i]-1 {
		fill = r.caps[i] - 1
	}
	src := r.queues[h]
	if fill > len(src) {
		fill = len(src)
	}
	if fill < 0 {
		fill = 0
	}
	r.purged[i] += int64(len(r.queues[i]))
	r.queues[i] = append(r.queues[i][:0], src[len(src)-fill:]...)
	r.appended[i] += int64(fill)
	if fill > r.maxFill[i] {
		r.maxFill[i] = fill
	}
	// Position-true rebase: holding the newest fill tokens of h's queue
	// means replica i has virtually consumed everything before them,
	// i.e. it sits len(src)-fill positions ahead of h.
	r.readBase[i] = r.reads[i] - (r.effReads(h) + int64(len(src)-fill))
	r.graceReads[i] = graceReads
	r.slide[i] = true
	r.reinstate(i)
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeReintegrate, Replica: replica, Fill: fill})
	}
	if fill > 0 {
		r.k.Broadcast(&r.notEmpty[i])
	}
	return true
}

// write duplicates a token into all healthy queues.
func (r *Replicator) write(p *des.Proc, tok kpn.Token) {
	if r.Strict {
		for r.space(0) == 0 || r.space(1) == 0 {
			p.Wait(&r.notFull)
		}
		r.queues[0] = append(r.queues[0], tok)
		r.queues[1] = append(r.queues[1], tok)
		r.writes++
		for i := 0; i < 2; i++ {
			r.appended[i]++
			if n := len(r.queues[i]); n > r.maxFill[i] {
				r.maxFill[i] = n
			}
			r.k.Broadcast(&r.notEmpty[i])
		}
		if fn := r.probe; fn != nil {
			now := r.k.Now()
			fn(ProbeEvent{At: now, Channel: r.name, Kind: ProbeWrite})
			fn(ProbeEvent{At: now, Channel: r.name, Kind: ProbeEnqueue, Replica: 1, Fill: len(r.queues[0])})
			fn(ProbeEvent{At: now, Channel: r.name, Kind: ProbeEnqueue, Replica: 2, Fill: len(r.queues[1])})
		}
		return
	}
	// Fault detection at the replicator (§3.3): a full queue at write
	// time means its replica consumes slower than its design-time model
	// permits (eq. 3 guarantees this never happens fault-free).
	delivered := false
	for i := 0; i < 2; i++ {
		if r.faulty[i] {
			continue
		}
		if r.space(i) == 0 {
			if !r.slide[i] {
				convict, forgiven := r.sample(i, ReasonQueueFull, true)
				if convict {
					r.flag(i, ReasonQueueFull)
					continue
				}
				// A forgiven overflow re-arms like the recovery slide:
				// drop the oldest token, keep the window contiguous and
				// position-true. The replica skips that token — masking
				// stays exact while the other replica is the reference,
				// and the next re-integration heals the skew.
				if forgiven && r.probe != nil {
					r.probe(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeForgiven, Replica: i + 1, Fill: len(r.queues[i])})
				}
			}
			// Continuous re-arm until the first post-recovery read (or on
			// a policy-forgiven overflow): keep the newest contiguous
			// window, advancing the replica's virtual consumption
			// position past the dropped token.
			copy(r.queues[i], r.queues[i][1:])
			r.queues[i] = r.queues[i][:len(r.queues[i])-1]
			r.purged[i]++
			r.readBase[i]--
			if fn := r.probe; fn != nil {
				fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeDropSlide, Replica: i + 1, Fill: len(r.queues[i])})
			}
		} else if r.policy != nil {
			// Space available: a clean queue-overflow sample slides the
			// (m,k) window toward forgiveness.
			r.sample(i, ReasonQueueFull, false)
		}
		r.queues[i] = append(r.queues[i], tok)
		r.appended[i]++
		if n := len(r.queues[i]); n > r.maxFill[i] {
			r.maxFill[i] = n
		}
		r.k.Broadcast(&r.notEmpty[i])
		delivered = true
		if fn := r.probe; fn != nil {
			fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeEnqueue, Replica: i + 1, Fill: len(r.queues[i])})
		}
	}
	r.writes++
	if !delivered {
		r.lost++
	}
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeWrite})
		if !delivered {
			fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeDropLost})
		}
	}
}

// read removes the head token of queue i, blocking while it is empty.
func (r *Replicator) read(p *des.Proc, i int) kpn.Token {
	for len(r.queues[i]) == 0 {
		p.Wait(&r.notEmpty[i])
	}
	tok := r.queues[i][0]
	copy(r.queues[i], r.queues[i][1:])
	r.queues[i] = r.queues[i][:len(r.queues[i])-1]
	r.reads[i]++
	r.slide[i] = false
	if r.graceReads[i] > 0 {
		r.graceReads[i]--
	}
	if fn := r.onRead[i]; fn != nil {
		fn(r.k.Now())
	}
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeRead, Replica: i + 1, Fill: len(r.queues[i])})
	}
	if r.Strict {
		r.k.Broadcast(&r.notFull)
	} else if d := r.DReads; d > 0 {
		// Read-divergence detection: the *other* replica lags if this
		// one has consumed D more tokens (positions rebased across
		// re-integration). Convictions involving a replica still inside
		// its re-integration grace are excused. Each evaluation is one
		// policy sample for the lagging side.
		other := 1 - i
		if !r.faulty[other] && r.graceReads[i] == 0 && r.graceReads[other] == 0 {
			lead := r.effReads(i) - r.effReads(other)
			if convict, forgiven := r.sample(other, ReasonDivergence, lead >= d); convict {
				r.flag(other, ReasonDivergence)
			} else if forgiven && r.probe != nil {
				r.probe(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeForgiven, Replica: other + 1, Fill: len(r.queues[other]), Lead: lead})
			}
		}
	}
	return tok
}

// CheckInvariants verifies the replicator's queue bookkeeping: per
// replica, fill = appended - reads - purged.
func (r *Replicator) CheckInvariants() error {
	for i := 0; i < 2; i++ {
		if want := r.appended[i] - r.reads[i] - r.purged[i]; int64(len(r.queues[i])) != want {
			return fmt.Errorf("ft: replicator %q queue %d fill = %d, bookkeeping gives %d",
				r.name, i+1, len(r.queues[i]), want)
		}
	}
	return nil
}

// replicatorWriter is the producer-facing write interface.
type replicatorWriter struct{ r *Replicator }

// WriterPort returns the single write interface.
func (r *Replicator) WriterPort() kpn.WritePort { return replicatorWriter{r} }

func (w replicatorWriter) Write(p *des.Proc, tok kpn.Token) { w.r.write(p, tok) }
func (w replicatorWriter) PortName() string                 { return w.r.name + ".w" }

// replicatorReader is one replica-facing read interface.
type replicatorReader struct {
	r *Replicator
	i int
}

// ReaderPort returns the read interface for replica (1-based).
func (r *Replicator) ReaderPort(replica int) kpn.ReadPort {
	if replica < 1 || replica > 2 {
		panic(fmt.Sprintf("ft: replicator replica %d out of range {1,2}", replica))
	}
	return replicatorReader{r: r, i: replica - 1}
}

func (rd replicatorReader) Read(p *des.Proc) kpn.Token { return rd.r.read(p, rd.i) }
func (rd replicatorReader) PortName() string           { return fmt.Sprintf("%s.r%d", rd.r.name, rd.i+1) }
