package ft

import (
	"fmt"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/kpn"
	"ftpn/internal/obs"
)

// buildObserved builds the shared pipeline test network with a stop
// fault on replica 2, instrumented by the given hooks, and runs it.
func buildObserved(t *testing.T, instrument func(*System)) *System {
	t.Helper()
	k := des.NewKernel()
	sys, err := Build(k, pipelineNet(40, nil), BuildConfig{
		SelectorCaps:  map[string][2]int{"FC": {8, 8}},
		SelectorInits: map[string][2]int{"FC": {2, 2}},
		SelectorD:     map[string]int64{"FC": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	instrument(sys)
	sys.InjectFault(2, 3000, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()
	return sys
}

// driveChannels pushes n tokens through a bare replicator and selector,
// reading everything back. Returns the channels for counter assertions.
func driveChannels(k *des.Kernel, probeRep, probeSel Probe, n int64) (*Replicator, *Selector) {
	r := NewReplicator(k, "R", [2]int{8, 8}, nil)
	s := NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 4, nil, nil)
	r.SetProbe(probeRep)
	s.SetProbe(probeSel)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= n; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
			t1 := r.ReaderPort(1).Read(p)
			t2 := r.ReaderPort(2).Read(p)
			s.WriterPort(1).Write(p, t1)
			s.WriterPort(2).Write(p, t2)
			s.ReaderPort().Read(p)
		}
	})
	k.Run(0)
	return r, s
}

// TestProbeEventsMatchCounters drives both channel types and checks the
// probe event stream is exactly consistent with the channels' own
// counters: enqueues = writes per replica, reads match, and the
// selector's duplicate drops equal one per pair.
func TestProbeEventsMatchCounters(t *testing.T) {
	counts := map[string]map[ProbeKind]int64{"R": {}, "S": {}}
	probe := func(e ProbeEvent) { counts[e.Channel][e.Kind]++ }
	r, s := driveChannels(des.NewKernel(), probe, probe, 50)

	rc, sc := counts["R"], counts["S"]
	if rc[ProbeWrite] != r.Writes() {
		t.Errorf("rep write events = %d, Writes() = %d", rc[ProbeWrite], r.Writes())
	}
	if want := r.Reads(1) + r.Reads(2); rc[ProbeRead] != want {
		t.Errorf("rep read events = %d, Reads sum = %d", rc[ProbeRead], want)
	}
	if want := 2 * r.Writes(); rc[ProbeEnqueue] != want {
		t.Errorf("rep enqueue events = %d, want %d (both replicas healthy)", rc[ProbeEnqueue], want)
	}
	// Selector: each pair's first write enqueues, the second drops.
	if want := s.Writes(1) + s.Writes(2); sc[ProbeEnqueue]+sc[ProbeDropDuplicate] != want {
		t.Errorf("sel enqueue+dup events = %d, Writes sum = %d",
			sc[ProbeEnqueue]+sc[ProbeDropDuplicate], want)
	}
	if want := s.Drops(1) + s.Drops(2); sc[ProbeDropDuplicate] != want {
		t.Errorf("sel dup events = %d, Drops sum = %d", sc[ProbeDropDuplicate], want)
	}
	if sc[ProbeRead] != s.Reads() {
		t.Errorf("sel read events = %d, Reads() = %d", sc[ProbeRead], s.Reads())
	}
}

// TestInstrumentMetricsMatchEngine builds a duplicated system through
// Build, injects a stop fault, and asserts the registry's series agree
// with the engine's own counters — the metric layer must never invent
// or lose an event.
func TestInstrumentMetricsMatchEngine(t *testing.T) {
	reg := obs.NewRegistry()
	sys := buildObserved(t, func(sys *System) { Instrument(sys, reg) })

	get := func(name string, l obs.Labels) int64 { return reg.Counter(name, "", l).Value() }
	for name, r := range sys.Replicators {
		if got := get("ftpn_ft_rep_writes_total", obs.Labels{"channel": name}); got != r.Writes() {
			t.Errorf("%s writes metric = %d, engine = %d", name, got, r.Writes())
		}
		for i := 1; i <= 2; i++ {
			if got := get("ftpn_ft_rep_reads_total", replicaLabels(name, i)); got != r.Reads(i) {
				t.Errorf("%s reads[%d] metric = %d, engine = %d", name, i, got, r.Reads(i))
			}
		}
	}
	for name, s := range sys.Selectors {
		if got := get("ftpn_ft_sel_reads_total", obs.Labels{"channel": name}); got != s.Reads() {
			t.Errorf("%s sel reads metric = %d, engine = %d", name, got, s.Reads())
		}
		for i := 1; i <= 2; i++ {
			enq := get("ftpn_ft_sel_enqueued_total", replicaLabels(name, i))
			dup := get("ftpn_ft_sel_dup_drops_total", replicaLabels(name, i))
			if enq+dup != s.Writes(i) {
				t.Errorf("%s interface %d: enqueued %d + dup %d != writes %d", name, i, enq, dup, s.Writes(i))
			}
			if dup != s.Drops(i) {
				t.Errorf("%s interface %d: dup metric = %d, engine = %d", name, i, dup, s.Drops(i))
			}
		}
	}
	// Every detection event is counted, attributed by reason.
	byLabel := int64(0)
	for _, l := range dedupeFaultLabels(sys.Faults) {
		byLabel += get("ftpn_ft_faults_total", l)
	}
	if byLabel != int64(len(sys.Faults)) {
		t.Errorf("faults metric sum = %d, engine recorded %d", byLabel, len(sys.Faults))
	}
	if len(sys.Faults) == 0 {
		t.Error("expected at least one detection from the injected stop fault")
	}
}

// dedupeFaultLabels returns the distinct label sets of the fault series.
func dedupeFaultLabels(faults []Fault) []obs.Labels {
	seen := map[string]obs.Labels{}
	for _, f := range faults {
		key := fmt.Sprintf("%s/%d/%s", f.Channel, f.Replica, f.Reason)
		if _, ok := seen[key]; !ok {
			seen[key] = obs.Labels{"channel": f.Channel, "replica": fmt.Sprintf("%d", f.Replica), "reason": string(f.Reason)}
		}
	}
	out := make([]obs.Labels, 0, len(seen))
	for _, l := range seen {
		out = append(out, l)
	}
	return out
}

// TestInstrumentTraceRecordsTimeline checks InstrumentTrace produces
// fill-track counter samples and a fault marker.
func TestInstrumentTraceRecordsTimeline(t *testing.T) {
	rec := obs.NewTraceRecorder()
	sys := buildObserved(t, func(sys *System) { InstrumentTrace(sys, rec) })
	if rec.Events() == 0 {
		t.Fatal("trace recorder saw no events")
	}
	if len(sys.Faults) == 0 {
		t.Fatal("expected a detection")
	}
}

// BenchmarkSelectorHotPath measures the selector write+read loop with
// probes disabled (the seed-equivalent path plus one nil branch) and
// with full metric instrumentation, backing DESIGN.md §9's overhead
// methodology.
func BenchmarkSelectorHotPath(b *testing.B) {
	for _, mode := range []string{"disabled", "metrics"} {
		b.Run(mode, func(b *testing.B) {
			k := des.NewKernel()
			s := NewSelector(k, "S", [2]int{64, 64}, [2]int{0, 0}, 32, nil, nil)
			if mode == "metrics" {
				reg := obs.NewRegistry()
				c := reg.Counter("bench_total", "h", nil)
				g := reg.Gauge("bench_fill", "h", nil)
				s.SetProbe(func(e ProbeEvent) {
					c.Inc()
					g.Set(int64(e.Fill))
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			k.Spawn("d", 0, func(p *des.Proc) {
				for i := 0; i < b.N; i++ {
					tok := kpn.Token{Seq: int64(i + 1)}
					s.WriterPort(1).Write(p, tok)
					s.WriterPort(2).Write(p, tok)
					s.ReaderPort().Read(p)
				}
			})
			k.Run(0)
			k.Shutdown()
		})
	}
}
