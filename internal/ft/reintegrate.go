package ft

import (
	"fmt"
	"sort"

	"ftpn/internal/des"
)

// ReintegrationPlan carries the per-channel re-arm parameters of a
// replica recovery, normally derived from the rtc initial-fill solver
// (eq. 4) by package recover. Zero values select safe defaults.
type ReintegrationPlan struct {
	// RepFill caps the re-armed queue fill per replicator channel; a
	// missing entry mirrors the healthy queue fully (trimmed only by
	// the queue's own capacity).
	RepFill map[string]int
	// RepGrace is the read-divergence grace per replicator channel; a
	// missing entry defaults to capacity + DReads consumptions.
	RepGrace map[string]int64
}

// Reintegrate re-admits replica (1-based) on every arbitration channel
// of the system after its fault switch has been repaired: replicator
// queues are purged of stale backlog and re-armed from the healthy
// replica's queue, and selector interfaces enter Seq-based
// resynchronization that drains stale pipeline tokens and re-aligns the
// pair index, space counter and divergence base at the healthy write
// front. Channels are visited in name order so recovery is
// deterministic. It reports whether every channel accepted the
// re-integration (a channel refuses when no healthy reference replica
// remains).
func (sys *System) Reintegrate(replica int, plan ReintegrationPlan) bool {
	if replica < 1 || replica > 2 {
		panic(fmt.Sprintf("ft: replica %d out of range {1,2}", replica))
	}
	ok := true
	for _, name := range sortedKeys(sys.Replicators) {
		r := sys.Replicators[name]
		fill := r.Capacity(replica) - 1
		if f, have := plan.RepFill[name]; have {
			fill = f
		}
		grace := int64(r.Capacity(replica)) + r.DReads
		if g, have := plan.RepGrace[name]; have {
			grace = g
		}
		ok = r.Reintegrate(replica, fill, grace) && ok
	}
	for _, name := range sortedKeys(sys.Selectors) {
		ok = sys.Selectors[name].Reintegrate(replica) && ok
	}
	return ok
}

// Repair clears replica's (1-based) fault switch at virtual time t and
// re-integrates it on every arbitration channel in the same event, so
// the replica resumes against already-consistent channel state.
func (sys *System) RepairAndReintegrateAt(replica int, t des.Time, plan ReintegrationPlan) {
	sys.K.At(t, func() {
		sys.Reintegrate(replica, plan)
		sys.Switches[replica-1].Repair()
	})
}

// CheckInvariants verifies the counter identities of every arbitration
// channel, returning the first violation.
func (sys *System) CheckInvariants() error {
	for _, name := range sortedKeys(sys.Replicators) {
		if err := sys.Replicators[name].CheckInvariants(); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(sys.Selectors) {
		if err := sys.Selectors[name].CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
