// Package ft is the paper's primary contribution: arbitration channels
// (the replicator and the selector of Section 3.1) that make a
// duplicated real-time process network equivalent to its reference
// network, plus counter-based timing-fault detection (Section 3.3) that
// needs no runtime timekeeping, and the network transform that builds
// the duplicated system (Figure 1).
//
// The replicator duplicates a producer's stream to both replicas; a full
// replica-side queue at write time marks that replica faulty and the
// producer never blocks on it. The selector merges the replicas' output
// streams, queueing the first token of each duplicate pair and dropping
// the late one; a replica whose stream diverges by the analytically
// derived threshold D (rtc.DivergenceThreshold, eq. 5), or whose space
// counter shows it is stalling the consumer, is marked faulty. Lemma 1's
// isolation property holds by construction: no operation on one writer
// interface ever touches the other interface's space counter.
package ft

import (
	"fmt"

	"ftpn/internal/des"
)

// Reason classifies how a fault was detected.
type Reason string

const (
	// ReasonQueueFull: the producer found a replicator queue full
	// (replicator detection, §3.3).
	ReasonQueueFull Reason = "queue-full"
	// ReasonDivergence: the token-count divergence between the replicas
	// reached the threshold D (selector/replicator detection, §3.3).
	ReasonDivergence Reason = "divergence"
	// ReasonConsumerStall: a selector space counter exceeded its virtual
	// capacity, i.e. the replica would stall the consumer (§3.3).
	ReasonConsumerStall Reason = "consumer-stall"
	// ReasonValueDivergence: a replica's token failed the replay-based
	// value cross-check against the golden payload for its stream
	// position (RepTFD-style; see Selector.SetValueCheck).
	ReasonValueDivergence Reason = "value-divergence"
)

// Fault is one detection event. Replica is 1-based, matching the
// paper's R_1/R_2 notation. Kind distinguishes timing-bound violations
// from value (payload) divergence.
type Fault struct {
	Channel string
	Replica int
	At      des.Time
	Reason  Reason
	Kind    FaultKind
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	return fmt.Sprintf("%s: replica R%d faulty at t=%dµs (%s)", f.Channel, f.Replica, f.At, f.Reason)
}

// FaultHandler receives detection events as they happen.
type FaultHandler func(Fault)

// faultState is the shared detection bookkeeping of a channel.
type faultState struct {
	channel string
	k       *des.Kernel
	faulty  [2]bool
	at      [2]des.Time
	reasons [2]Reason
	handler FaultHandler
	// policy, when non-nil, arbitrates detection samples instead of the
	// inline first-violation conviction (see policy.go). Per-channel
	// instance; must be installed before the kernel runs.
	policy Policy
}

// flag marks replica r (0-based) faulty if it is not already, invoking
// the handler once.
func (fs *faultState) flag(r int, reason Reason) {
	if fs.faulty[r] {
		return
	}
	fs.faulty[r] = true
	fs.at[r] = fs.k.Now()
	fs.reasons[r] = reason
	if fs.handler != nil {
		fs.handler(Fault{Channel: fs.channel, Replica: r + 1, At: fs.k.Now(), Reason: reason, Kind: kindOf(reason)})
	}
}

// sample routes one detection-predicate evaluation through the policy.
// With no policy it reproduces the inline behavior: convict iff
// violated. forgiven reports a violation the policy chose to ride out
// (probe sites surface it as ProbeForgiven).
func (fs *faultState) sample(r int, reason Reason, violation bool) (convict, forgiven bool) {
	if fs.policy == nil {
		return violation, false
	}
	convict = fs.policy.Sample(r, reason, violation)
	return convict, violation && !convict
}

// setPolicy installs the channel's detection policy (nil keeps the
// inline first-violation path).
func (fs *faultState) setPolicy(p Policy) { fs.policy = p }

// PolicyInfo reports the installed policy's name and replica r's
// (1-based) current window state for the reason, rendered
// "violations/k". Both are empty on the inline path — convictions then
// carry no policy annotation.
func (fs *faultState) PolicyInfo(r int, reason Reason) (name, window string) {
	if fs.policy == nil {
		return "", ""
	}
	v, k := fs.policy.Window(r-1, reason)
	return fs.policy.Name(), fmt.Sprintf("%d/%d", v, k)
}

// reinstate clears replica r's (0-based) conviction so detection re-arms
// for the next fault, and resets its policy window — a recovered
// replica starts with a clean violation history.
func (fs *faultState) reinstate(r int) {
	fs.faulty[r] = false
	if fs.policy != nil {
		fs.policy.Reset(r)
	}
}

// Faulty reports whether replica r (1-based) has been marked faulty, and
// if so when and why.
func (fs *faultState) Faulty(r int) (bool, des.Time, Reason) {
	i := r - 1
	if i < 0 || i > 1 {
		panic(fmt.Sprintf("ft: replica index %d out of range {1,2}", r))
	}
	return fs.faulty[i], fs.at[i], fs.reasons[i]
}
