package ft

import (
	"math/rand"
	"testing"
)

// TestNewPolicy pins spec handling: the zero spec is the inline path,
// binary and mk instantiate, bad parameters error.
func TestNewPolicy(t *testing.T) {
	if p, err := NewPolicy(PolicySpec{}); err != nil || p != nil {
		t.Fatalf("zero spec: got (%v, %v), want (nil, nil)", p, err)
	}
	p, err := NewPolicy(PolicySpec{Kind: PolicyBinary})
	if err != nil || p == nil || p.Name() != "binary" {
		t.Fatalf("binary spec: got (%v, %v)", p, err)
	}
	p, err = NewPolicy(PolicySpec{Kind: PolicyMK, M: 2, K: 16})
	if err != nil || p.Name() != "mk(2,16)" {
		t.Fatalf("mk spec: got (%v, %v)", p, err)
	}
	p, err = NewPolicy(PolicySpec{Kind: PolicyMK, M: 2, K: 16, Value: true})
	if err != nil || p.Name() != "mk(2,16)+value" {
		t.Fatalf("mk+value spec: got (%v, %v)", p, err)
	}
	for _, bad := range []PolicySpec{
		{Kind: PolicyMK},              // k = 0
		{Kind: PolicyMK, M: 3, K: 3},  // m = k
		{Kind: PolicyMK, M: -1, K: 4}, // negative m
		{Kind: PolicyBinary, M: 1, K: 2},
		{Kind: "weird"},
	} {
		if _, err := NewPolicy(bad); err == nil {
			t.Fatalf("spec %+v: expected error", bad)
		}
	}
}

// TestBinaryPolicyMatchesInline: the explicit binary policy convicts
// exactly when the sample violates — the inline path's behavior.
func TestBinaryPolicyMatchesInline(t *testing.T) {
	p, _ := NewPolicy(PolicySpec{Kind: PolicyBinary})
	if p.Sample(0, ReasonDivergence, false) {
		t.Fatal("binary convicted a clean sample")
	}
	if !p.Sample(0, ReasonDivergence, true) {
		t.Fatal("binary forgave a violation")
	}
}

// TestMK01MatchesBinary: (0,1) is the binary policy through the window
// machinery — every violation convicts, every clean sample passes.
func TestMK01MatchesBinary(t *testing.T) {
	p, err := NewPolicy(PolicySpec{Kind: PolicyMK, M: 0, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := rng.Intn(2) == 0
		r := rng.Intn(2)
		reason := []Reason{ReasonQueueFull, ReasonDivergence, ReasonConsumerStall}[rng.Intn(3)]
		if got := p.Sample(r, reason, v); got != v {
			t.Fatalf("sample %d: mk(0,1) returned %v for violation %v", i, got, v)
		}
	}
}

// naiveMK is the O(n·k) reference: convict iff more than m of the last
// k samples (for that replica and reason) were violations.
type naiveMK struct {
	m, k    int
	history map[[2]any][]bool
}

func newNaiveMK(m, k int) *naiveMK {
	return &naiveMK{m: m, k: k, history: map[[2]any][]bool{}}
}

func (n *naiveMK) sample(r int, reason Reason, v bool) bool {
	key := [2]any{r, reason}
	h := append(n.history[key], v)
	n.history[key] = h
	count := 0
	start := len(h) - n.k
	if start < 0 {
		start = 0
	}
	for _, b := range h[start:] {
		if b {
			count++
		}
	}
	return count > n.m
}

func (n *naiveMK) reset(r int) {
	for key := range n.history {
		if key[0] == r {
			delete(n.history, key)
		}
	}
}

// TestMKPolicyAgainstNaive drives random sample/reset sequences through
// the ring-bitset window and the naive reference in lockstep.
func TestMKPolicyAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	reasons := []Reason{ReasonQueueFull, ReasonDivergence, ReasonConsumerStall}
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(100)
		m := rng.Intn(k)
		p, err := NewMKPolicy(m, k)
		if err != nil {
			t.Fatal(err)
		}
		ref := newNaiveMK(m, k)
		for step := 0; step < 500; step++ {
			if rng.Intn(50) == 0 {
				r := rng.Intn(2)
				p.Reset(r)
				ref.reset(r)
				continue
			}
			r := rng.Intn(2)
			reason := reasons[rng.Intn(len(reasons))]
			v := rng.Intn(3) == 0
			got := p.Sample(r, reason, v)
			want := ref.sample(r, reason, v)
			if got != want {
				t.Fatalf("trial %d (m=%d,k=%d) step %d: policy %v, naive %v", trial, m, k, step, got, want)
			}
		}
	}
}

// TestMKWindowIsPerReason: violations for one reason must not consume
// another reason's budget.
func TestMKWindowIsPerReason(t *testing.T) {
	p, _ := NewMKPolicy(1, 8)
	if p.Sample(0, ReasonDivergence, true) {
		t.Fatal("first divergence violation convicted under m=1")
	}
	// A queue-full violation on the same replica has its own window.
	if p.Sample(0, ReasonQueueFull, true) {
		t.Fatal("first queue-full violation convicted under m=1")
	}
	if !p.Sample(0, ReasonDivergence, true) {
		t.Fatal("second divergence violation not convicted under m=1")
	}
}

// TestValuePolicyComposition: value samples convict immediately, timing
// samples delegate to the wrapped policy.
func TestValuePolicyComposition(t *testing.T) {
	inner, _ := NewMKPolicy(2, 8)
	p := ValuePolicy{Timing: inner}
	if !p.Sample(1, ReasonValueDivergence, true) {
		t.Fatal("value violation forgiven")
	}
	if p.Sample(1, ReasonDivergence, true) {
		t.Fatal("first timing violation convicted under m=2")
	}
	if v, k := p.Window(1, ReasonDivergence); v != 1 || k != 8 {
		t.Fatalf("window = %d/%d, want 1/8", v, k)
	}
	if v, k := p.Window(1, ReasonValueDivergence); v != 0 || k != 1 {
		t.Fatalf("value window = %d/%d, want 0/1", v, k)
	}
}

// FuzzPolicyWindow fuzzes the (m,k) sliding window against the naive
// reference. Each input byte encodes one step: bit 0 = violation,
// bit 1 = replica, bits 2-3 = reason index (3 = reset instead of
// sample). Invariant: the ring-bitset window convicts iff more than m
// of the last k samples were violations.
func FuzzPolicyWindow(f *testing.F) {
	f.Add(uint8(2), uint8(8), []byte{0x01, 0x05, 0x09, 0x01, 0x0c, 0x01})
	f.Add(uint8(0), uint8(1), []byte{0x00, 0x01, 0x02, 0x03})
	f.Add(uint8(5), uint8(64), []byte{0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, mRaw, kRaw uint8, steps []byte) {
		k := 1 + int(kRaw)%128
		m := int(mRaw) % k
		p, err := NewMKPolicy(m, k)
		if err != nil {
			t.Fatalf("NewMKPolicy(%d,%d): %v", m, k, err)
		}
		ref := newNaiveMK(m, k)
		reasons := []Reason{ReasonQueueFull, ReasonDivergence, ReasonConsumerStall}
		for i, b := range steps {
			v := b&1 != 0
			r := int(b>>1) & 1
			ri := int(b>>2) & 3
			if ri == 3 {
				p.Reset(r)
				ref.reset(r)
				continue
			}
			reason := reasons[ri]
			got := p.Sample(r, reason, v)
			want := ref.sample(r, reason, v)
			if got != want {
				t.Fatalf("step %d (m=%d,k=%d): policy %v, naive %v", i, m, k, got, want)
			}
			if gotV, gotK := p.Window(r, reason); gotK != k || gotV < 0 || gotV > k {
				t.Fatalf("step %d: window %d/%d out of range", i, gotV, gotK)
			}
		}
	})
}
