package ft

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestReplicatorDuplicatesToBothQueues(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{4, 4}, nil)
	var got1, got2 []int64
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
		for i := 0; i < 3; i++ {
			got1 = append(got1, r.ReaderPort(1).Read(p).Seq)
			got2 = append(got2, r.ReaderPort(2).Read(p).Seq)
		}
	})
	k.Run(0)
	for i := 0; i < 3; i++ {
		if got1[i] != int64(i+1) || got2[i] != int64(i+1) {
			t.Fatalf("replica streams diverge: %v vs %v", got1, got2)
		}
	}
	if r.Writes() != 3 || r.Reads(1) != 3 || r.Reads(2) != 3 {
		t.Errorf("counters: w=%d r1=%d r2=%d", r.Writes(), r.Reads(1), r.Reads(2))
	}
}

func TestReplicatorTimestampsUnchanged(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{4, 4}, nil)
	var tok1, tok2 kpn.Token
	k.Spawn("d", 0, func(p *des.Proc) {
		p.Delay(123)
		r.WriterPort().Write(p, kpn.Token{Seq: 1, Stamp: p.Now(), Payload: []byte{9}})
		tok1 = r.ReaderPort(1).Read(p)
		tok2 = r.ReaderPort(2).Read(p)
	})
	k.Run(0)
	if tok1.Stamp != 123 || tok2.Stamp != 123 {
		t.Errorf("stamps = %d/%d, want 123 (replicator must not re-stamp)", tok1.Stamp, tok2.Stamp)
	}
	if tok1.Hash() != tok2.Hash() {
		t.Error("payloads must be identical")
	}
}

func TestReplicatorStrictBlocksOnFull(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{2, 4}, nil)
	r.Strict = true
	var thirdAt des.Time = -1
	k.Spawn("w", 0, func(p *des.Proc) {
		r.WriterPort().Write(p, kpn.Token{Seq: 1})
		r.WriterPort().Write(p, kpn.Token{Seq: 2})
		r.WriterPort().Write(p, kpn.Token{Seq: 3}) // queue 1 full: blocks
		thirdAt = p.Now()
	})
	k.Spawn("r1", 0, func(p *des.Proc) {
		p.Delay(77)
		r.ReaderPort(1).Read(p)
	})
	k.Run(0)
	k.Shutdown()
	if thirdAt != 77 {
		t.Errorf("strict write completed at %d, want 77", thirdAt)
	}
	if ok, _, _ := r.Faulty(1); ok {
		t.Error("strict mode must not flag faults")
	}
}

func TestReplicatorQueueFullDetection(t *testing.T) {
	// Replica 1 stops consuming; queue 1 (cap 2) fills; the third write
	// finds it full, flags R_1 and keeps the producer unblocked.
	k := des.NewKernel()
	var faults []Fault
	r := NewReplicator(k, "R", [2]int{2, 8}, func(f Fault) { faults = append(faults, f) })
	var times []des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 5; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
			times = append(times, p.Now())
			p.Delay(10)
		}
	})
	k.Run(0)
	if len(faults) != 1 || faults[0].Replica != 1 || faults[0].Reason != ReasonQueueFull {
		t.Fatalf("faults = %v, want one queue-full for R1", faults)
	}
	if faults[0].At != 20 {
		t.Errorf("detected at %d, want 20 (third write)", faults[0].At)
	}
	// Producer never blocked: writes at 0,10,20,30,40.
	for i, at := range times {
		if at != des.Time(i)*10 {
			t.Errorf("write %d at %d, want %d (producer must not block)", i, at, i*10)
		}
	}
	// Healthy queue keeps receiving; faulty queue frozen at capacity.
	if r.Fill(2) != 5 || r.Fill(1) != 2 {
		t.Errorf("fills = %d/%d, want 2/5", r.Fill(1), r.Fill(2))
	}
	if r.Lost() != 0 {
		t.Errorf("lost = %d, want 0", r.Lost())
	}
}

func TestReplicatorBothFaultyLosesTokens(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{1, 1}, nil)
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 4; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
	})
	k.Run(0)
	ok1, _, _ := r.Faulty(1)
	ok2, _, _ := r.Faulty(2)
	if !ok1 || !ok2 {
		t.Fatal("both replicas should be flagged")
	}
	if r.Lost() != 3 {
		t.Errorf("lost = %d, want 3 (writes 2, 3 and 4)", r.Lost())
	}
}

func TestReplicatorReadDivergenceDetection(t *testing.T) {
	// D = 3 on reads: replica 1 consumes 3 tokens ahead of replica 2.
	k := des.NewKernel()
	var faults []Fault
	r := NewReplicator(k, "R", [2]int{8, 8}, func(f Fault) { faults = append(faults, f) })
	r.DReads = 3
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
		for i := 0; i < 3; i++ {
			p.Delay(5)
			r.ReaderPort(1).Read(p)
		}
	})
	k.Run(0)
	if len(faults) != 1 || faults[0].Replica != 2 || faults[0].Reason != ReasonDivergence {
		t.Fatalf("faults = %v, want replica 2 divergence", faults)
	}
	if faults[0].At != 15 {
		t.Errorf("detected at %d, want 15", faults[0].At)
	}
}

func TestReplicatorReaderBlocksWhenEmpty(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{2, 2}, nil)
	var readAt des.Time = -1
	k.Spawn("r2", 0, func(p *des.Proc) {
		r.ReaderPort(2).Read(p)
		readAt = p.Now()
	})
	k.Spawn("w", 0, func(p *des.Proc) {
		p.Delay(33)
		r.WriterPort().Write(p, kpn.Token{Seq: 1})
	})
	k.Run(0)
	k.Shutdown()
	if readAt != 33 {
		t.Errorf("read completed at %d, want 33", readAt)
	}
}

func TestReplicatorFaultyQueueStopsReceiving(t *testing.T) {
	// After R1 is flagged, new tokens only reach queue 2, so a reader of
	// queue 1 starves once the stale tokens drain.
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{1, 8}, nil)
	k.Spawn("w", 0, func(p *des.Proc) {
		r.WriterPort().Write(p, kpn.Token{Seq: 1})
		r.WriterPort().Write(p, kpn.Token{Seq: 2}) // flags R1 (queue full)
		r.WriterPort().Write(p, kpn.Token{Seq: 3})
	})
	k.Run(0)
	if ok, _, _ := r.Faulty(1); !ok {
		t.Fatal("R1 should be flagged")
	}
	if r.Fill(1) != 1 {
		t.Errorf("queue 1 fill = %d, want 1 (frozen)", r.Fill(1))
	}
	if r.Fill(2) != 3 {
		t.Errorf("queue 2 fill = %d, want 3", r.Fill(2))
	}
}

func TestReplicatorValidation(t *testing.T) {
	k := des.NewKernel()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero cap", func() { NewReplicator(k, "R", [2]int{0, 1}, nil) })
	r := NewReplicator(k, "R", [2]int{1, 1}, nil)
	mustPanic("bad reader", func() { r.ReaderPort(0) })
	mustPanic("bad reader hi", func() { r.ReaderPort(3) })
}

func TestReplicatorPortNamesAndCaps(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "rep", [2]int{2, 3}, nil)
	if r.WriterPort().PortName() != "rep.w" || r.ReaderPort(1).PortName() != "rep.r1" ||
		r.ReaderPort(2).PortName() != "rep.r2" || r.Name() != "rep" {
		t.Error("port names wrong")
	}
	if r.Capacity(1) != 2 || r.Capacity(2) != 3 {
		t.Error("capacities wrong")
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Channel: "S", Replica: 2, At: 42, Reason: ReasonDivergence}
	if f.String() != "S: replica R2 faulty at t=42µs (divergence)" {
		t.Errorf("String = %q", f.String())
	}
}
