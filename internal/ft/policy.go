package ft

import (
	"fmt"

	"ftpn/internal/kpn"
)

// This file is the pluggable detection-policy layer. The paper convicts
// a replica on the first violation of a counter bound (eq. 5's
// divergence threshold, a full replicator queue, a selector space
// counter past its virtual capacity) — correct for the SCC demo's
// permanent fault model, but a long-running service must ride out
// transient glitches. A Policy receives every evaluation of a detection
// predicate as a *sample* (violated or clean) and decides when the
// evidence amounts to a conviction. The built-in policies are:
//
//   - binary: convict on the first violation — the paper-fidelity
//     oracle, behaviorally identical to the inline path;
//   - (m,k) weakly-hard (Liang et al.): a replica may violate up to m
//     samples in any sliding window of k samples before conviction —
//     convict iff >m violations land in some k-window. (0,1) degenerates
//     to binary;
//   - value: composable replay cross-checking (RepTFD-style) — value
//     divergence is hard evidence of corruption and convicts on the
//     first sample whatever the timing policy forgives.
//
// A nil Policy on a channel keeps the original inline first-violation
// code path (zero overhead, bit-identical behavior); policies are
// per-channel instances and are not safe for concurrent use except
// under the owning channel's lock (the crt wall-clock mirrors call them
// with the channel mutex held).

// FaultKind classifies what a conviction is evidence of: a timing-bound
// violation (the paper's model) or a payload value divergence (RepTFD
// replay cross-check).
type FaultKind string

const (
	KindTiming FaultKind = "timing"
	KindValue  FaultKind = "value"
)

// kindOf maps a detection reason to its fault kind.
func kindOf(reason Reason) FaultKind {
	if reason == ReasonValueDivergence {
		return KindValue
	}
	return KindTiming
}

// Policy decides, sample by sample, when detection evidence convicts a
// replica. Samples arrive once per evaluation of a detection predicate
// (per counted selector write for divergence, per consumer read for
// stalls, per producer write for queue overflow); violation reports
// whether the predicate was violated. Sample returns true when the
// replica must be convicted now. Implementations keep per-(replica,
// reason) state; Reset clears one replica's history at re-integration.
type Policy interface {
	// Name identifies the policy for logs and convictions ("binary",
	// "mk(2,16)", "mk(2,16)+value").
	Name() string
	// Sample feeds one detection-window observation for replica r
	// (0-based) and returns whether to convict.
	Sample(r int, reason Reason, violation bool) bool
	// Window reports replica r's current violation count and window
	// length for the reason — conviction annotations render it as
	// "violations/k".
	Window(r int, reason Reason) (violations, k int)
	// Reset clears replica r's sample history (called on re-integration
	// so a recovered replica starts with a clean window).
	Reset(r int)
}

// PolicyKind names a built-in policy family.
type PolicyKind string

const (
	// PolicyDefault keeps the inline first-violation path (nil Policy).
	PolicyDefault PolicyKind = ""
	// PolicyBinary is the first-violation policy as an explicit Policy
	// instance — behaviorally identical to PolicyDefault, used to
	// validate that the sampling path matches the inline path.
	PolicyBinary PolicyKind = "binary"
	// PolicyMK is the (m,k) weakly-hard policy.
	PolicyMK PolicyKind = "mk"
)

// PolicySpec selects and parameterizes a detection policy. The zero
// value means "inline binary" (no Policy instantiated). M and K apply
// to PolicyMK only; Value composes replay-based value cross-checking on
// top of the timing policy (the ft channels additionally need a
// ValueCheck installed for value samples to exist).
type PolicySpec struct {
	Kind  PolicyKind `json:"kind,omitempty"`
	M     int        `json:"m,omitempty"`
	K     int        `json:"k,omitempty"`
	Value bool       `json:"value,omitempty"`
}

// IsDefault reports whether the spec selects the inline binary path.
func (sp PolicySpec) IsDefault() bool { return sp == PolicySpec{} }

// String renders the spec like a Policy name.
func (sp PolicySpec) String() string {
	var base string
	switch sp.Kind {
	case PolicyDefault:
		base = "binary"
	case PolicyMK:
		base = fmt.Sprintf("mk(%d,%d)", sp.M, sp.K)
	default:
		base = string(sp.Kind)
	}
	if sp.Value {
		base += "+value"
	}
	return base
}

// Validate reports whether the spec names an instantiable policy, so
// declarative layers (the topology DSL, CLI flags) can reject a bad
// spec before any channel is built.
func (sp PolicySpec) Validate() error {
	_, err := NewPolicy(sp)
	return err
}

// NewPolicy instantiates the spec. The zero-value spec returns (nil,
// nil): callers leave the channel on its inline path. Policies are
// stateful — build one instance per channel.
func NewPolicy(sp PolicySpec) (Policy, error) {
	if sp.IsDefault() {
		return nil, nil
	}
	var p Policy
	switch sp.Kind {
	case PolicyDefault, PolicyBinary:
		if sp.M != 0 || sp.K != 0 {
			return nil, fmt.Errorf("ft: binary policy takes no (m,k) parameters, got (%d,%d)", sp.M, sp.K)
		}
		p = binaryPolicy{}
	case PolicyMK:
		mk, err := NewMKPolicy(sp.M, sp.K)
		if err != nil {
			return nil, err
		}
		p = mk
	default:
		return nil, fmt.Errorf("ft: unknown policy kind %q", sp.Kind)
	}
	if sp.Value {
		p = ValuePolicy{Timing: p}
	}
	return p, nil
}

// binaryPolicy convicts on the first violation — the paper's §3.3
// behavior expressed through the sampling interface.
type binaryPolicy struct{}

func (binaryPolicy) Name() string                                { return "binary" }
func (binaryPolicy) Sample(_ int, _ Reason, violation bool) bool { return violation }
func (binaryPolicy) Window(int, Reason) (int, int)               { return 0, 1 }
func (binaryPolicy) Reset(int)                                   {}

// MKPolicy is the (m,k) weakly-hard policy: replica r is convicted for
// a reason as soon as more than m of its last k samples for that reason
// were violations. Windows are kept per (replica, reason) so a
// divergence excursion does not consume the queue-overflow budget.
type MKPolicy struct {
	m, k int
	win  [2][numReasons]mkWindow
}

// NewMKPolicy validates and builds an (m,k) policy. k must be at least
// 1 and m must satisfy 0 <= m < k (m = k would forgive a permanently
// violating replica forever).
func NewMKPolicy(m, k int) (*MKPolicy, error) {
	if k < 1 {
		return nil, fmt.Errorf("ft: (m,k) policy needs k >= 1, got k=%d", k)
	}
	if m < 0 || m >= k {
		return nil, fmt.Errorf("ft: (m,k) policy needs 0 <= m < k, got (%d,%d)", m, k)
	}
	p := &MKPolicy{m: m, k: k}
	for r := range p.win {
		for j := range p.win[r] {
			p.win[r][j].init(k)
		}
	}
	return p, nil
}

// MK returns the policy's (m, k) parameters.
func (p *MKPolicy) MK() (m, k int) { return p.m, p.k }

// Name implements Policy.
func (p *MKPolicy) Name() string { return fmt.Sprintf("mk(%d,%d)", p.m, p.k) }

// Sample implements Policy. Value divergence is not a deadline miss —
// it is evidence of corruption — so it bypasses the window and convicts
// immediately (compose with ValuePolicy for explicitness).
func (p *MKPolicy) Sample(r int, reason Reason, violation bool) bool {
	j, ok := reasonIndex(reason)
	if !ok {
		return violation
	}
	w := &p.win[r][j]
	w.push(violation)
	return w.count > p.m
}

// Window implements Policy.
func (p *MKPolicy) Window(r int, reason Reason) (violations, k int) {
	j, ok := reasonIndex(reason)
	if !ok {
		return 0, 1
	}
	return p.win[r][j].count, p.k
}

// Reset implements Policy.
func (p *MKPolicy) Reset(r int) {
	for j := range p.win[r] {
		p.win[r][j].init(p.k)
	}
}

// numReasons is the number of windowed timing reasons.
const numReasons = 3

// reasonIndex maps a timing reason to its window slot. Value divergence
// (and unknown reasons) are not windowed.
func reasonIndex(reason Reason) (int, bool) {
	switch reason {
	case ReasonQueueFull:
		return 0, true
	case ReasonDivergence:
		return 1, true
	case ReasonConsumerStall:
		return 2, true
	default:
		return 0, false
	}
}

// mkWindow is a sliding bitset over the last k samples.
type mkWindow struct {
	bits  []uint64
	k     int
	pos   int // slot the next sample lands in
	n     int // samples seen, saturating at k
	count int // violations among the last min(n,k) samples
}

// init sizes the window for k samples and clears it.
func (w *mkWindow) init(k int) {
	words := (k + 63) / 64
	if cap(w.bits) < words {
		w.bits = make([]uint64, words)
	} else {
		w.bits = w.bits[:words]
		for i := range w.bits {
			w.bits[i] = 0
		}
	}
	w.k, w.pos, w.n, w.count = k, 0, 0, 0
}

// push appends one sample, evicting the k-th-oldest when full.
func (w *mkWindow) push(violation bool) {
	word, bit := w.pos/64, uint64(1)<<uint(w.pos%64)
	if w.n == w.k {
		if w.bits[word]&bit != 0 {
			w.count--
		}
	} else {
		w.n++
	}
	if violation {
		w.bits[word] |= bit
		w.count++
	} else {
		w.bits[word] &^= bit
	}
	w.pos++
	if w.pos == w.k {
		w.pos = 0
	}
}

// ValuePolicy composes replay-based value cross-checking over a timing
// policy: value-divergence samples convict on the first violation
// (corrupt bytes are not a transient to forgive), all other samples are
// delegated. A nil Timing delegates to binary behavior.
type ValuePolicy struct {
	Timing Policy
}

// Name implements Policy.
func (p ValuePolicy) Name() string {
	if p.Timing == nil {
		return "binary+value"
	}
	return p.Timing.Name() + "+value"
}

// Sample implements Policy.
func (p ValuePolicy) Sample(r int, reason Reason, violation bool) bool {
	if reason == ReasonValueDivergence {
		return violation
	}
	if p.Timing == nil {
		return violation
	}
	return p.Timing.Sample(r, reason, violation)
}

// Window implements Policy.
func (p ValuePolicy) Window(r int, reason Reason) (violations, k int) {
	if reason == ReasonValueDivergence || p.Timing == nil {
		return 0, 1
	}
	return p.Timing.Window(r, reason)
}

// Reset implements Policy.
func (p ValuePolicy) Reset(r int) {
	if p.Timing != nil {
		p.Timing.Reset(r)
	}
}

// SetPolicy installs the selector's detection policy before the kernel
// runs; nil keeps the paper's inline first-violation path.
func (s *Selector) SetPolicy(p Policy) { s.setPolicy(p) }

// SetPolicy installs the replicator's detection policy before the
// kernel runs; nil keeps the paper's inline first-violation path.
func (r *Replicator) SetPolicy(p Policy) { r.setPolicy(p) }

// ValueCheck cross-checks one selector write against the golden replay:
// pair is the 1-based duplicate-pair index the token would occupy, and
// the check returns false when the token's value diverges from the
// golden token at that position. Contract: a check must fail only on
// *value* divergence — same stream position (same Seq), different
// payload. A token whose Seq does not match the golden position is a
// stream skew (the replica skipped or replayed inputs, e.g. after a
// forgiven queue overflow), which is the timing detectors' business;
// the check must pass it. Unknown positions should also return true.
type ValueCheck func(pair int64, tok kpn.Token) bool
