package ft

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// The paper (Section 1) notes that the two-replica construction "can be
// easily relaxed by adding more replicas to the system, and a more
// general setup for tolerating up to n timing faults can be easily
// constructed using the principles outlined in this paper". NReplicator
// and NSelector are that generalization: with m replicas, up to m-1
// single permanent timing faults are tolerated, detected by the same
// counter-only rules.

// nFaultState generalizes faultState to m replicas.
type nFaultState struct {
	channel string
	k       *des.Kernel
	faulty  []bool
	at      []des.Time
	reasons []Reason
	handler FaultHandler
}

func newNFaultState(channel string, k *des.Kernel, n int, handler FaultHandler) nFaultState {
	return nFaultState{
		channel: channel, k: k,
		faulty:  make([]bool, n),
		at:      make([]des.Time, n),
		reasons: make([]Reason, n),
		handler: handler,
	}
}

func (fs *nFaultState) flag(r int, reason Reason) {
	if fs.faulty[r] {
		return
	}
	fs.faulty[r] = true
	fs.at[r] = fs.k.Now()
	fs.reasons[r] = reason
	if fs.handler != nil {
		fs.handler(Fault{Channel: fs.channel, Replica: r + 1, At: fs.k.Now(), Reason: reason})
	}
}

// reinstate clears replica r's (0-based) conviction so detection re-arms
// for the next fault.
func (fs *nFaultState) reinstate(r int) {
	fs.faulty[r] = false
}

// Faulty reports replica r's (1-based) detection state.
func (fs *nFaultState) Faulty(r int) (bool, des.Time, Reason) {
	i := r - 1
	if i < 0 || i >= len(fs.faulty) {
		panic(fmt.Sprintf("ft: replica index %d out of range [1,%d]", r, len(fs.faulty)))
	}
	return fs.faulty[i], fs.at[i], fs.reasons[i]
}

// NumFaulty returns how many replicas have been convicted.
func (fs *nFaultState) NumFaulty() int {
	n := 0
	for _, f := range fs.faulty {
		if f {
			n++
		}
	}
	return n
}

// NReplicator fans one producer stream out to m replica queues, with
// the two-replica Replicator's queue-full fault detection on each.
type NReplicator struct {
	nFaultState
	name   string
	caps   []int
	queues [][]kpn.Token
	reads  []int64
	writes int64
	lost   int64

	// Re-integration bookkeeping; see Replicator for the semantics
	// (slide: continuous re-arm until the first post-recovery read).
	appended   []int64
	purged     []int64
	readBase   []int64
	graceReads []int64
	slide      []bool

	notEmpty []des.Signal

	// DReads enables read-divergence detection: a replica lagging the
	// front-runner by DReads consumed tokens is faulty. 0 disables.
	DReads int64

	probe Probe
}

// NewNReplicator builds an m-way replicator (m = len(caps) >= 2).
func NewNReplicator(k *des.Kernel, name string, caps []int, handler FaultHandler) *NReplicator {
	if len(caps) < 2 {
		panic(fmt.Sprintf("ft: n-replicator %q needs at least 2 queues, got %d", name, len(caps)))
	}
	for i, c := range caps {
		if c <= 0 {
			panic(fmt.Sprintf("ft: n-replicator %q capacity %d for replica %d must be positive", name, c, i+1))
		}
	}
	return &NReplicator{
		nFaultState: newNFaultState(name, k, len(caps), handler),
		name:        name,
		caps:        append([]int(nil), caps...),
		queues:      make([][]kpn.Token, len(caps)),
		reads:       make([]int64, len(caps)),
		appended:    make([]int64, len(caps)),
		purged:      make([]int64, len(caps)),
		readBase:    make([]int64, len(caps)),
		graceReads:  make([]int64, len(caps)),
		slide:       make([]bool, len(caps)),
		notEmpty:    make([]des.Signal, len(caps)),
	}
}

// Name returns the channel name; Replicas the fan-out width.
func (r *NReplicator) Name() string  { return r.name }
func (r *NReplicator) Replicas() int { return len(r.caps) }

// Fill returns the queue fill of replica i (1-based); Writes and Lost
// mirror Replicator's counters.
func (r *NReplicator) Fill(replica int) int { return len(r.queues[replica-1]) }
func (r *NReplicator) Writes() int64        { return r.writes }
func (r *NReplicator) Lost() int64          { return r.lost }

// effReads is replica i's effective consumption position since its last
// (re-)integration base.
func (r *NReplicator) effReads(i int) int64 { return r.reads[i] - r.readBase[i] }

// Reintegrate re-arms replica's (1-based) queue from the healthiest
// front-runner's queue, mirroring Replicator.Reintegrate for the m-way
// channel. It reports false if no healthy source replica exists.
func (r *NReplicator) Reintegrate(replica int, fill int, graceReads int64) bool {
	i := replica - 1
	if i < 0 || i >= len(r.caps) {
		panic(fmt.Sprintf("ft: n-replicator replica %d out of range [1,%d]", replica, len(r.caps)))
	}
	h := -1
	for j := range r.caps {
		if j == i || r.faulty[j] {
			continue
		}
		if h < 0 || r.effReads(j) > r.effReads(h) {
			h = j
		}
	}
	if h < 0 {
		return false
	}
	if fill > r.caps[i]-1 {
		fill = r.caps[i] - 1
	}
	src := r.queues[h]
	if fill > len(src) {
		fill = len(src)
	}
	if fill < 0 {
		fill = 0
	}
	r.purged[i] += int64(len(r.queues[i]))
	r.queues[i] = append(r.queues[i][:0], src[len(src)-fill:]...)
	r.appended[i] += int64(fill)
	r.readBase[i] = r.reads[i] - (r.effReads(h) + int64(len(src)-fill))
	r.graceReads[i] = graceReads
	r.slide[i] = true
	r.reinstate(i)
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeReintegrate, Replica: replica, Fill: fill})
	}
	if fill > 0 {
		r.k.Broadcast(&r.notEmpty[i])
	}
	return true
}

func (r *NReplicator) write(p *des.Proc, tok kpn.Token) {
	delivered := false
	for i := range r.queues {
		if r.faulty[i] {
			continue
		}
		if len(r.queues[i]) >= r.caps[i] {
			if !r.slide[i] {
				r.flag(i, ReasonQueueFull)
				continue
			}
			// Continuous re-arm until the first post-recovery read.
			copy(r.queues[i], r.queues[i][1:])
			r.queues[i] = r.queues[i][:len(r.queues[i])-1]
			r.purged[i]++
			r.readBase[i]--
			if fn := r.probe; fn != nil {
				fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeDropSlide, Replica: i + 1, Fill: len(r.queues[i])})
			}
		}
		r.queues[i] = append(r.queues[i], tok)
		r.appended[i]++
		r.k.Broadcast(&r.notEmpty[i])
		delivered = true
		if fn := r.probe; fn != nil {
			fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeEnqueue, Replica: i + 1, Fill: len(r.queues[i])})
		}
	}
	r.writes++
	if !delivered {
		r.lost++
	}
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeWrite})
		if !delivered {
			fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeDropLost})
		}
	}
}

func (r *NReplicator) read(p *des.Proc, i int) kpn.Token {
	for len(r.queues[i]) == 0 {
		p.Wait(&r.notEmpty[i])
	}
	tok := r.queues[i][0]
	copy(r.queues[i], r.queues[i][1:])
	r.queues[i] = r.queues[i][:len(r.queues[i])-1]
	r.reads[i]++
	r.slide[i] = false
	if r.graceReads[i] > 0 {
		r.graceReads[i]--
	}
	if fn := r.probe; fn != nil {
		fn(ProbeEvent{At: r.k.Now(), Channel: r.name, Kind: ProbeRead, Replica: i + 1, Fill: len(r.queues[i])})
	}
	if r.DReads > 0 && r.graceReads[i] == 0 {
		for j := range r.reads {
			if j != i && !r.faulty[j] && r.graceReads[j] == 0 &&
				r.effReads(i)-r.effReads(j) >= r.DReads {
				r.flag(j, ReasonDivergence)
			}
		}
	}
	return tok
}

// CheckInvariants verifies the n-replicator's queue bookkeeping: per
// replica, fill = appended - reads - purged.
func (r *NReplicator) CheckInvariants() error {
	for i := range r.queues {
		if want := r.appended[i] - r.reads[i] - r.purged[i]; int64(len(r.queues[i])) != want {
			return fmt.Errorf("ft: n-replicator %q queue %d fill = %d, bookkeeping gives %d",
				r.name, i+1, len(r.queues[i]), want)
		}
	}
	return nil
}

// WriterPort returns the single producer-facing write interface.
func (r *NReplicator) WriterPort() kpn.WritePort { return nRepWriter{r} }

// ReaderPort returns replica i's (1-based) read interface.
func (r *NReplicator) ReaderPort(replica int) kpn.ReadPort {
	if replica < 1 || replica > len(r.caps) {
		panic(fmt.Sprintf("ft: n-replicator replica %d out of range [1,%d]", replica, len(r.caps)))
	}
	return nRepReader{r: r, i: replica - 1}
}

type nRepWriter struct{ r *NReplicator }

func (w nRepWriter) Write(p *des.Proc, tok kpn.Token) { w.r.write(p, tok) }
func (w nRepWriter) PortName() string                 { return w.r.name + ".w" }

type nRepReader struct {
	r *NReplicator
	i int
}

func (rd nRepReader) Read(p *des.Proc) kpn.Token { return rd.r.read(p, rd.i) }
func (rd nRepReader) PortName() string           { return fmt.Sprintf("%s.r%d", rd.r.name, rd.i+1) }

// NSelector merges m replica streams into one consumer stream: the
// first token of each duplicate set (the interface whose write count is
// weakly maximal) is queued, every later duplicate dropped. Detection
// generalizes directly: a space counter beyond its virtual capacity
// convicts a consumer-stalling replica, and an interface trailing the
// front-runner by D writes convicts the laggard.
type NSelector struct {
	nFaultState
	name  string
	caps  []int
	inits []int
	space []int64
	wcnt  []int64
	drops []int64

	// Re-integration bookkeeping; see Selector for the semantics.
	wBase       []int64
	lastSeqW    []int64
	resync      []bool
	resyncDrops []int64
	adjust      []int64
	selGrace    []int64

	fifo []kpn.Token
	head int

	notEmpty   des.Signal
	notFull    []des.Signal
	resyncWait des.Signal

	reads   int64
	nPre    int
	maxFill int

	// D is the divergence threshold (eq. 5 computed pairwise over all
	// replica output envelopes); 0 disables divergence detection.
	D int64

	probe Probe
}

// NewNSelector builds an m-way selector (m = len(caps) = len(inits)).
func NewNSelector(k *des.Kernel, name string, caps, inits []int, d int64, preload func(i int) kpn.Token, handler FaultHandler) *NSelector {
	if len(caps) < 2 || len(caps) != len(inits) {
		panic(fmt.Sprintf("ft: n-selector %q needs matching caps/inits of length >= 2, got %d/%d",
			name, len(caps), len(inits)))
	}
	if d < 0 {
		panic(fmt.Sprintf("ft: n-selector %q divergence threshold must be non-negative, got %d", name, d))
	}
	s := &NSelector{
		nFaultState: newNFaultState(name, k, len(caps), handler),
		name:        name,
		caps:        append([]int(nil), caps...),
		inits:       append([]int(nil), inits...),
		space:       make([]int64, len(caps)),
		wcnt:        make([]int64, len(caps)),
		drops:       make([]int64, len(caps)),
		wBase:       make([]int64, len(caps)),
		lastSeqW:    make([]int64, len(caps)),
		resync:      make([]bool, len(caps)),
		resyncDrops: make([]int64, len(caps)),
		adjust:      make([]int64, len(caps)),
		selGrace:    make([]int64, len(caps)),
		notFull:     make([]des.Signal, len(caps)),
		D:           d,
	}
	nPre := 0
	for i := range caps {
		if caps[i] <= 0 {
			panic(fmt.Sprintf("ft: n-selector %q capacity for replica %d must be positive", name, i+1))
		}
		if inits[i] < 0 || inits[i] > caps[i] {
			panic(fmt.Sprintf("ft: n-selector %q initial tokens %d outside [0,%d]", name, inits[i], caps[i]))
		}
		if inits[i] > nPre {
			nPre = inits[i]
		}
	}
	for i := 0; i < nPre; i++ {
		var tok kpn.Token
		if preload != nil {
			tok = preload(i)
		} else {
			tok = kpn.Token{Seq: int64(i) - int64(nPre) + 1}
		}
		s.fifo = append(s.fifo, tok)
	}
	s.nPre = nPre
	s.maxFill = nPre
	for i := range caps {
		// Initial credits affect only space; pairing and divergence use
		// actual write counts (see Selector for why).
		s.space[i] = int64(caps[i] - inits[i])
	}
	return s
}

// Name returns the channel name; Replicas the fan-in width.
func (s *NSelector) Name() string  { return s.name }
func (s *NSelector) Replicas() int { return len(s.caps) }

// Fill, MaxFill, Reads, Writes, Drops mirror Selector's accessors.
func (s *NSelector) Fill() int                { return len(s.fifo) - s.head }
func (s *NSelector) MaxFill() int             { return s.maxFill }
func (s *NSelector) Reads() int64             { return s.reads }
func (s *NSelector) Writes(replica int) int64 { return s.wcnt[replica-1] }
func (s *NSelector) Drops(replica int) int64  { return s.drops[replica-1] }
func (s *NSelector) Space(replica int) int64  { return s.space[replica-1] }

// effW is interface i's pair index since its last (re-)integration base.
func (s *NSelector) effW(i int) int64 { return s.wcnt[i] - s.wBase[i] }

// healthyRef returns the healthy, non-resyncing interface with the
// maximal pair index (the front-runner), or -1 if none exists.
func (s *NSelector) healthyRef(i int) int {
	h := -1
	for j := range s.wcnt {
		if j == i || s.faulty[j] || s.resync[j] {
			continue
		}
		if h < 0 || s.effW(j) > s.effW(h) {
			h = j
		}
	}
	return h
}

// Resyncing reports whether interface replica (1-based) is still seeking
// its alignment point; ResyncDrops counts its stale tokens discarded.
func (s *NSelector) Resyncing(replica int) bool    { return s.resync[replica-1] }
func (s *NSelector) ResyncDrops(replica int) int64 { return s.resyncDrops[replica-1] }

// Reintegrate puts interface replica (1-based) into resynchronization;
// it mirrors Selector.Reintegrate for the m-way channel and reports
// false if no healthy reference interface exists.
func (s *NSelector) Reintegrate(replica int) bool {
	i := replica - 1
	if i < 0 || i >= len(s.caps) {
		panic(fmt.Sprintf("ft: n-selector replica %d out of range [1,%d]", replica, len(s.caps)))
	}
	if s.resync[i] {
		return true
	}
	h := s.healthyRef(i)
	if h < 0 {
		return false
	}
	// As in Selector.Reintegrate: a convicted replica is at or behind
	// the reference stream; an interface ahead of every healthy
	// reference has nothing to re-align against — refuse rather than
	// re-enqueue pairs already in the FIFO.
	if s.effW(i) > s.effW(h) {
		return false
	}
	s.resync[i] = true
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeReintegrate, Replica: replica, Fill: s.Fill()})
	}
	s.k.Broadcast(&s.notFull[i])
	s.k.Broadcast(&s.resyncWait)
	return true
}

// align ends interface i's resynchronization against reference h; see
// Selector.align.
func (s *NSelector) align(i, h int, back int64) {
	s.wBase[i] = s.wcnt[i] - (s.effW(h) - back)
	raw := int64(s.caps[i]-s.inits[i]) - s.effW(i) + s.reads
	clamped := raw
	if clamped < 0 {
		clamped = 0
	}
	if c := int64(s.caps[i]); clamped > c {
		clamped = c
	}
	s.adjust[i] = raw - clamped
	s.space[i] = clamped
	s.resync[i] = false
	s.selGrace[i] = int64(s.caps[i]) + s.D
	s.reinstate(i)
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeAligned, Replica: i + 1, Fill: s.Fill()})
	}
}

func (s *NSelector) write(p *des.Proc, i int, tok kpn.Token) {
	for {
		if s.resync[i] {
			h := s.healthyRef(i)
			if h < 0 {
				// No healthy reference stream left; park until one
				// reappears (or the simulation quiesces).
				p.Wait(&s.resyncWait)
				continue
			}
			switch last := s.lastSeqW[h]; {
			case tok.Seq <= 0 || tok.Seq < last:
				s.resyncDrops[i]++
				if fn := s.probe; fn != nil {
					fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeDropResync, Replica: i + 1, Fill: s.Fill()})
				}
				return
			case tok.Seq == last:
				s.align(i, h, 1)
			case tok.Seq == last+1:
				s.align(i, h, 0)
			default:
				p.Wait(&s.resyncWait)
				continue
			}
		}
		if s.space[i] == 0 {
			p.Wait(&s.notFull[i])
			continue
		}
		break
	}
	first := true
	for j := range s.wcnt {
		if j != i && s.effW(j) > s.effW(i) {
			first = false
			break
		}
	}
	if first {
		s.fifo = append(s.fifo, tok)
		if f := s.Fill(); f > s.maxFill {
			s.maxFill = f
		}
		s.k.Broadcast(&s.notEmpty)
	} else {
		s.drops[i]++
	}
	if fn := s.probe; fn != nil {
		kind := ProbeDropDuplicate
		if first {
			kind = ProbeEnqueue
		}
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: kind, Replica: i + 1, Fill: s.Fill()})
	}
	s.wcnt[i]++
	s.space[i]--
	s.lastSeqW[i] = tok.Seq
	if s.selGrace[i] > 0 {
		s.selGrace[i]--
	}
	for j := range s.resync {
		if s.resync[j] {
			s.k.Broadcast(&s.resyncWait)
			break
		}
	}
	if s.D > 0 && s.selGrace[i] == 0 {
		for j := range s.wcnt {
			if j != i && !s.faulty[j] && !s.resync[j] && s.effW(i)-s.effW(j) >= s.D {
				s.flag(j, ReasonDivergence)
			}
		}
	}
}

func (s *NSelector) read(p *des.Proc) kpn.Token {
	for s.Fill() == 0 {
		p.Wait(&s.notEmpty)
	}
	tok := s.fifo[s.head]
	s.fifo[s.head] = kpn.Token{}
	s.head++
	if s.head == len(s.fifo) {
		s.fifo = s.fifo[:0]
		s.head = 0
	}
	s.reads++
	if fn := s.probe; fn != nil {
		fn(ProbeEvent{At: s.k.Now(), Channel: s.name, Kind: ProbeRead, Fill: s.Fill()})
	}
	for i := range s.space {
		s.space[i]++
		if !s.faulty[i] && !s.resync[i] && s.space[i] > int64(s.caps[i]) {
			s.flag(i, ReasonConsumerStall)
		}
		s.k.Broadcast(&s.notFull[i])
	}
	return tok
}

// CheckInvariants verifies the n-selector's counter identities; see
// Selector.CheckInvariants.
func (s *NSelector) CheckInvariants() error {
	var maxEff int64
	for i := range s.caps {
		want := int64(s.caps[i]-s.inits[i]) - s.effW(i) + s.reads - s.adjust[i]
		if s.space[i] != want {
			return fmt.Errorf("ft: n-selector %q space_%d = %d, counter identity gives %d",
				s.name, i+1, s.space[i], want)
		}
		if e := s.effW(i); i == 0 || e > maxEff {
			maxEff = e
		}
	}
	if want := int64(s.nPre) + maxEff - s.reads; int64(s.Fill()) != want {
		return fmt.Errorf("ft: n-selector %q fill = %d, pair accounting gives %d",
			s.name, s.Fill(), want)
	}
	return nil
}

// WriterPort returns replica i's (1-based) write interface.
func (s *NSelector) WriterPort(replica int) kpn.WritePort {
	if replica < 1 || replica > len(s.caps) {
		panic(fmt.Sprintf("ft: n-selector replica %d out of range [1,%d]", replica, len(s.caps)))
	}
	return nSelWriter{s: s, i: replica - 1}
}

// ReaderPort returns the single consumer-facing read interface.
func (s *NSelector) ReaderPort() kpn.ReadPort { return nSelReader{s} }

type nSelWriter struct {
	s *NSelector
	i int
}

func (w nSelWriter) Write(p *des.Proc, tok kpn.Token) { w.s.write(p, w.i, tok) }
func (w nSelWriter) PortName() string                 { return fmt.Sprintf("%s.w%d", w.s.name, w.i+1) }

type nSelReader struct{ s *NSelector }

func (rd nSelReader) Read(p *des.Proc) kpn.Token { return rd.s.read(p) }
func (rd nSelReader) PortName() string           { return rd.s.name + ".r" }
