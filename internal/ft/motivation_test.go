package ft

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// TestMotivationalDeadlockNaiveArbitration reproduces §1.1's
// "Deadlocked Non-Faulty Replicas" scenario: a naive arbiter that, after
// flagging a replica, simply stops reading from its stream — feeding
// each replica through an ordinary bounded FIFO pair — lets
// back-pressure from the flagged stream propagate through the shared
// producer and starve the healthy replica. The paper's replicator
// breaks that chain: the producer never blocks on a faulty replica's
// queue, so the healthy replica keeps running.
func TestMotivationalDeadlockNaiveArbitration(t *testing.T) {
	const tokens = 60
	const faultAt = 20 // replica 1 stops consuming after 20 tokens

	// --- Naive construction: plain fan-out through two bounded FIFOs,
	// the producer writing to both (blocking semantics everywhere).
	naiveDelivered := func() int {
		k := des.NewKernel()
		q1 := kpn.NewFIFO(k, "q1", 2)
		q2 := kpn.NewFIFO(k, "q2", 2)
		// Producer: must write each token to BOTH queues (active
		// replication over plain channels).
		k.Spawn("P", 0, func(p *des.Proc) {
			for i := int64(1); i <= tokens; i++ {
				q1.Write(p, kpn.Token{Seq: i})
				q2.Write(p, kpn.Token{Seq: i})
				p.Delay(10)
			}
		})
		// Replica 1: consumes until its fault, then stops reading —
		// exactly the "selector stops destructively reading tokens"
		// behaviour of the motivational example, seen from the input.
		k.Spawn("R1", 0, func(p *des.Proc) {
			for i := 0; i < faultAt; i++ {
				q1.Read(p)
				p.Delay(10)
			}
			// Permanent timing fault: no more reads.
		})
		// Replica 2: healthy, consumes forever.
		delivered := 0
		k.Spawn("R2", 0, func(p *des.Proc) {
			for {
				q2.Read(p)
				delivered++
				p.Delay(10)
			}
		})
		k.Run(0)
		k.Shutdown()
		return delivered
	}()

	// The healthy replica starves: once q1 fills, the producer blocks
	// forever, so replica 2 receives only the tokens already in flight.
	if naiveDelivered >= tokens {
		t.Fatalf("naive arbitration delivered %d tokens; expected starvation well below %d",
			naiveDelivered, tokens)
	}

	// --- The paper's replicator in the same scenario.
	ftDelivered := func() int {
		k := des.NewKernel()
		rep := NewReplicator(k, "R", [2]int{2, 2}, nil)
		k.Spawn("P", 0, func(p *des.Proc) {
			for i := int64(1); i <= tokens; i++ {
				rep.WriterPort().Write(p, kpn.Token{Seq: i})
				p.Delay(10)
			}
		})
		k.Spawn("R1", 0, func(p *des.Proc) {
			for i := 0; i < faultAt; i++ {
				rep.ReaderPort(1).Read(p)
				p.Delay(10)
			}
		})
		delivered := 0
		k.Spawn("R2", 0, func(p *des.Proc) {
			for {
				rep.ReaderPort(2).Read(p)
				delivered++
				p.Delay(10)
			}
		})
		k.Run(0)
		k.Shutdown()
		if ok, _, _ := rep.Faulty(1); !ok {
			t.Error("replicator should convict the stalled replica")
		}
		return delivered
	}()

	if ftDelivered != tokens {
		t.Fatalf("replicator delivered %d tokens to the healthy replica, want all %d",
			ftDelivered, tokens)
	}
	t.Logf("naive: %d/%d delivered (starved); replicator: %d/%d", naiveDelivered, tokens, ftDelivered, tokens)
}
