package ft

import (
	"strings"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/kpn"
	"ftpn/internal/rtc"
	"ftpn/internal/scc"
)

// pipelineNet builds a P -> W1 -> W2 -> C reference network whose
// critical subnetwork is the two workers. Payloads are deterministic
// functions of the sequence number so value equivalence is checkable.
// Replica diversity: replica 2 has extra work jitter.
func pipelineNet(tokens int64, sink *[]kpn.Token) *kpn.Network {
	return &kpn.Network{
		Name: "pipe",
		Procs: []kpn.ProcessSpec{
			{Name: "P", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
				return kpn.Producer(rtc.PJD{Period: 1000}, 1, tokens, func(i int64) []byte {
					return []byte{byte(i), byte(i >> 8)}
				})
			}},
			{Name: "W1", Role: kpn.RoleCritical, New: func(replica int) kpn.Behavior {
				return kpn.Transform(kpn.WorkModel{BaseUs: 50, JitterUs: des.Time(replica) * 100}, 7, func(i int64, pl []byte) []byte {
					out := append([]byte{}, pl...)
					return append(out, 0xA0)
				})
			}},
			{Name: "W2", Role: kpn.RoleCritical, New: func(replica int) kpn.Behavior {
				return kpn.Transform(kpn.WorkModel{BaseUs: 30, JitterUs: des.Time(replica) * 50}, 8, func(i int64, pl []byte) []byte {
					out := append([]byte{}, pl...)
					return append(out, 0xB0)
				})
			}},
			{Name: "C", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
				return kpn.Consumer(rtc.PJD{Period: 1000}, 2, tokens, func(now des.Time, tok kpn.Token) {
					if sink != nil {
						*sink = append(*sink, tok)
					}
				})
			}},
		},
		Chans: []kpn.ChannelSpec{
			{Name: "FP", From: "P", To: "W1", Capacity: 4, TokenBytes: 2},
			{Name: "FI", From: "W1", To: "W2", Capacity: 4, TokenBytes: 3},
			{Name: "FC", From: "W2", To: "C", Capacity: 8, InitialTokens: 2, TokenBytes: 4},
		},
	}
}

func TestBuildStructure(t *testing.T) {
	k := des.NewKernel()
	sys, err := Build(k, pipelineNet(5, nil), BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Replicators) != 1 || sys.Replicators["FP"] == nil {
		t.Errorf("replicators = %v, want FP", sys.Replicators)
	}
	if len(sys.Selectors) != 1 || sys.Selectors["FC"] == nil {
		t.Errorf("selectors = %v, want FC", sys.Selectors)
	}
	for _, name := range []string{"FI#1", "FI#2"} {
		if sys.FIFOs[name] == nil {
			t.Errorf("internal FIFO %s missing", name)
		}
	}
	k.Run(0)
	k.Shutdown()
}

func TestBuildRejectsBadNetworks(t *testing.T) {
	k := des.NewKernel()
	// No critical process.
	n := pipelineNet(1, nil)
	for i := range n.Procs {
		n.Procs[i].Role = kpn.RoleProducer
	}
	if _, err := Build(k, n, BuildConfig{}); err == nil {
		t.Error("network without critical subnetwork should be rejected")
	}
	// Critical output into a producer.
	n2 := pipelineNet(1, nil)
	n2.Procs[3].Role = kpn.RoleProducer
	if _, err := Build(k, n2, BuildConfig{}); err == nil {
		t.Error("critical output into non-consumer should be rejected")
	}
	// Structurally invalid network.
	n3 := pipelineNet(1, nil)
	n3.Chans[0].Capacity = 0
	if _, err := Build(k, n3, BuildConfig{}); err == nil {
		t.Error("invalid network should be rejected")
	}
}

// runReference returns the consumer-visible token stream of the
// reference network.
func runReference(t *testing.T, tokens int64) []kpn.Token {
	t.Helper()
	var sink []kpn.Token
	k := des.NewKernel()
	if _, err := pipelineNet(tokens, &sink).Instantiate(k, kpn.Options{}); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	return sink
}

// runDuplicated returns the consumer-visible stream of the duplicated
// network, optionally injecting a fault.
func runDuplicated(t *testing.T, tokens int64, inject func(*System)) ([]kpn.Token, *System) {
	t.Helper()
	var sink []kpn.Token
	k := des.NewKernel()
	sys, err := Build(k, pipelineNet(tokens, &sink), BuildConfig{
		SelectorCaps:  map[string][2]int{"FC": {8, 8}},
		SelectorInits: map[string][2]int{"FC": {2, 2}},
		SelectorD:     map[string]int64{"FC": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inject != nil {
		inject(sys)
	}
	k.Run(0)
	k.Shutdown()
	return sink, sys
}

// compareStreams checks value equivalence of produced (Seq > 0) tokens.
func compareStreams(t *testing.T, ref, dup []kpn.Token) {
	t.Helper()
	filter := func(in []kpn.Token) []kpn.Token {
		var out []kpn.Token
		for _, tok := range in {
			if tok.Seq > 0 {
				out = append(out, tok)
			}
		}
		return out
	}
	r, d := filter(ref), filter(dup)
	if len(r) != len(d) {
		t.Fatalf("stream lengths differ: ref %d vs dup %d", len(r), len(d))
	}
	for i := range r {
		if r[i].Seq != d[i].Seq || r[i].Hash() != d[i].Hash() {
			t.Fatalf("token %d differs: ref seq=%d hash=%x, dup seq=%d hash=%x",
				i, r[i].Seq, r[i].Hash(), d[i].Seq, d[i].Hash())
		}
	}
}

func TestTheorem2EquivalenceFaultFree(t *testing.T) {
	ref := runReference(t, 50)
	dup, sys := runDuplicated(t, 50, nil)
	compareStreams(t, ref, dup)
	if len(sys.Faults) != 0 {
		t.Errorf("fault-free run flagged faults: %v", sys.Faults)
	}
	if fp := sys.FalsePositives(); len(fp) != 0 {
		t.Errorf("false positives: %v", fp)
	}
}

func TestTheorem2EquivalenceUnderStopFault(t *testing.T) {
	ref := runReference(t, 50)
	for _, replica := range []int{1, 2} {
		replica := replica
		dup, sys := runDuplicated(t, 50, func(s *System) {
			s.InjectFault(replica, 20_000, fault.StopAll, 0)
		})
		compareStreams(t, ref, dup)
		f, ok := sys.FirstFault(replica)
		if !ok {
			t.Fatalf("fault on R%d not detected", replica)
		}
		if f.At < 20_000 {
			t.Errorf("detected at %d, before injection", f.At)
		}
		if fp := sys.FalsePositives(); len(fp) != 0 {
			t.Errorf("healthy replica flagged: %v", fp)
		}
	}
}

func TestDetectionUnderDegradeFault(t *testing.T) {
	// Replica 1 degrades to ~3x period per op; the divergence detector
	// at the selector must flag it without a queue-full event.
	_, sys := runDuplicated(t, 60, func(s *System) {
		s.InjectFault(1, 10_000, fault.Degrade, 3000)
	})
	f, ok := sys.FirstFault(1)
	if !ok {
		t.Fatal("degrade fault not detected")
	}
	if f.At < 10_000 {
		t.Errorf("detected at %d, before injection", f.At)
	}
	if fp := sys.FalsePositives(); len(fp) != 0 {
		t.Errorf("false positives: %v", fp)
	}
}

func TestStopConsumingDetectedAtReplicator(t *testing.T) {
	_, sys := runDuplicated(t, 60, func(s *System) {
		s.InjectFault(2, 5_000, fault.StopConsuming, 0)
	})
	if _, ok := sys.FirstFault(2); !ok {
		t.Fatal("stop-consuming fault not detected")
	}
	// The replicator must detect it independently of the selector
	// (§4.3: "the selector and the replicator can independently detect
	// faulty replicas"): queue 2 fills and a later write flags R_2.
	ok, at, reason := sys.Replicators["FP"].Faulty(2)
	if !ok || reason != ReasonQueueFull {
		t.Fatalf("replicator detection: ok=%v reason=%s, want queue-full", ok, reason)
	}
	if at < 5_000 {
		t.Errorf("replicator detected at %d, before injection", at)
	}
	// The selector must flag the same replica too (its stream dries up).
	if ok, _, _ := sys.Selectors["FC"].Faulty(2); !ok {
		t.Error("selector should independently flag the stalled replica")
	}
}

func TestBuildOnSCCPlacesOneProcessPerTile(t *testing.T) {
	chip, err := scc.New(scc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sink []kpn.Token
	k := des.NewKernel()
	sys, err := Build(k, pipelineNet(20, &sink), BuildConfig{Chip: chip})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Cores) != 6 { // P, C, W1#1, W1#2, W2#1, W2#2
		t.Fatalf("placed %d processes, want 6", len(sys.Cores))
	}
	tiles := map[int]bool{}
	for _, c := range sys.Cores {
		if tiles[c.Tile().ID] {
			t.Error("two processes share a tile")
		}
		tiles[c.Tile().ID] = true
	}
	k.Run(0)
	k.Shutdown()
	if len(sink) != 20 {
		t.Errorf("consumer saw %d tokens, want 20", len(sink))
	}
	if len(sys.Faults) != 0 {
		t.Errorf("unexpected faults on SCC run: %v", sys.Faults)
	}
}

func TestSystemDOT(t *testing.T) {
	k := des.NewKernel()
	sys, err := Build(k, pipelineNet(1, nil), BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dot := sys.DOT()
	for _, want := range []string{"replicator FP", "selector FC", `"W1#1"`, `"W1#2"`, `"W2#2"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	k.Run(0)
	k.Shutdown()
}

func TestInjectFaultValidation(t *testing.T) {
	k := des.NewKernel()
	sys, _ := Build(k, pipelineNet(1, nil), BuildConfig{})
	defer func() {
		if recover() == nil {
			t.Error("bad replica index should panic")
		}
	}()
	sys.InjectFault(3, 0, fault.StopAll, 0)
}
