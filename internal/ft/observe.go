package ft

import (
	"fmt"
	"sort"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
	"ftpn/internal/obs"
)

// This file is the glue between the fault-tolerant channels and the
// observability substrate (internal/obs): Instrument turns probe events
// into registry metrics, InstrumentTrace turns them into Chrome-trace
// timeline tracks and markers. Both pre-register every series up front
// so the per-event work is a switch plus one atomic update — nothing
// allocates on the hot path.

// chainProbe composes probes so Instrument and InstrumentTrace can both
// observe the same channel.
func chainProbe(old, add Probe) Probe {
	if old == nil {
		return add
	}
	return func(e ProbeEvent) {
		old(e)
		add(e)
	}
}

// replicaLabels returns {channel, replica} labels for 1-based r.
func replicaLabels(channel string, r int) obs.Labels {
	return obs.Labels{"channel": channel, "replica": fmt.Sprintf("%d", r)}
}

// fillBuckets is the stock histogram shape for queue-fill distributions:
// queue capacities across the experiments stay well under 256.
var fillBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// sortedReplicators returns the system's replicators in name order so
// metric registration is deterministic.
func sortedReplicators(sys *System) []*Replicator {
	names := make([]string, 0, len(sys.Replicators))
	for n := range sys.Replicators {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Replicator, len(names))
	for i, n := range names {
		out[i] = sys.Replicators[n]
	}
	return out
}

// sortedSelectors mirrors sortedReplicators for selectors.
func sortedSelectors(sys *System) []*Selector {
	names := make([]string, 0, len(sys.Selectors))
	for n := range sys.Selectors {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Selector, len(names))
	for i, n := range names {
		out[i] = sys.Selectors[n]
	}
	return out
}

// fifoMetrics adapts a plain FIFO's Observer events to fill metrics.
type fifoMetrics struct {
	fill *obs.Gauge
	dist *obs.Histogram
}

func (m fifoMetrics) OnWrite(now des.Time, tok kpn.Token, fill int) {
	m.fill.Set(int64(fill))
	m.dist.Observe(int64(fill))
}

func (m fifoMetrics) OnRead(now des.Time, tok kpn.Token, fill int) {
	m.fill.Set(int64(fill))
	m.dist.Observe(int64(fill))
}

// Instrument registers the system's channel metrics in reg and installs
// probes that keep them current (see DESIGN.md §9 for the naming
// scheme). Detection events are counted through a fault hook, so
// len(sys.Faults) always equals the sum over ftpn_ft_faults_total.
// Instrumenting with a nil registry is a no-op. Instrument composes
// with InstrumentTrace and with previously installed probes.
func Instrument(sys *System, reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, r := range sortedReplicators(sys) {
		r := r
		name := r.Name()
		chLabel := obs.Labels{"channel": name}
		writes := reg.Counter("ftpn_ft_rep_writes_total", "Tokens accepted from the producer.", chLabel)
		lost := reg.Counter("ftpn_ft_rep_lost_total", "Tokens lost because every replica was faulty.", chLabel)
		var enq, reads, slide, reint, forgiven [2]*obs.Counter
		var fill [2]*obs.Gauge
		var dist [2]*obs.Histogram
		for i := 0; i < 2; i++ {
			rl := replicaLabels(name, i+1)
			enq[i] = reg.Counter("ftpn_ft_rep_enqueued_total", "Tokens duplicated into a replica queue.", rl)
			reads[i] = reg.Counter("ftpn_ft_rep_reads_total", "Tokens consumed by a replica.", rl)
			slide[i] = reg.Counter("ftpn_ft_rep_slide_drops_total", "Oldest tokens discarded by post-recovery queue re-arming.", rl)
			reint[i] = reg.Counter("ftpn_ft_reintegrations_total", "Replica re-admissions after repair.", rl)
			forgiven[i] = reg.Counter("ftpn_ft_forgiven_total", "Detection violations ridden out by the (m,k) policy.", rl)
			fill[i] = reg.Gauge("ftpn_ft_rep_fill", "Current replica queue fill.", rl)
			dist[i] = reg.Histogram("ftpn_ft_rep_fill_dist", "Replica queue fill observed at enqueue/read.", fillBuckets, rl)
		}
		r.SetProbe(chainProbe(r.probe, func(e ProbeEvent) {
			switch e.Kind {
			case ProbeWrite:
				writes.Inc()
			case ProbeEnqueue:
				enq[e.Replica-1].Inc()
				fill[e.Replica-1].Set(int64(e.Fill))
				dist[e.Replica-1].Observe(int64(e.Fill))
			case ProbeRead:
				reads[e.Replica-1].Inc()
				fill[e.Replica-1].Set(int64(e.Fill))
				dist[e.Replica-1].Observe(int64(e.Fill))
			case ProbeDropSlide:
				slide[e.Replica-1].Inc()
			case ProbeDropLost:
				lost.Inc()
			case ProbeForgiven:
				forgiven[e.Replica-1].Inc()
			case ProbeReintegrate:
				reint[e.Replica-1].Inc()
				fill[e.Replica-1].Set(int64(e.Fill))
			}
		}))
	}
	for _, s := range sortedSelectors(sys) {
		s := s
		name := s.Name()
		chLabel := obs.Labels{"channel": name}
		reads := reg.Counter("ftpn_ft_sel_reads_total", "Tokens delivered to the consumer.", chLabel)
		fill := reg.Gauge("ftpn_ft_sel_fill", "Current shared FIFO fill.", chLabel)
		dist := reg.Histogram("ftpn_ft_sel_fill_dist", "Shared FIFO fill observed at write/read.", fillBuckets, chLabel)
		var enq, dup, rsd, aligned, reint, forgiven, vdrop [2]*obs.Counter
		var lead [2]*obs.Gauge
		for i := 0; i < 2; i++ {
			rl := replicaLabels(name, i+1)
			enq[i] = reg.Counter("ftpn_ft_sel_enqueued_total", "Pair-first tokens enqueued by an interface.", rl)
			dup[i] = reg.Counter("ftpn_ft_sel_dup_drops_total", "Late duplicates discarded by arbitration.", rl)
			rsd[i] = reg.Counter("ftpn_ft_sel_resync_drops_total", "Stale tokens discarded during resynchronization.", rl)
			aligned[i] = reg.Counter("ftpn_ft_sel_aligned_total", "Resynchronizations completed at an alignment point.", rl)
			reint[i] = reg.Counter("ftpn_ft_reintegrations_total", "Replica re-admissions after repair.", rl)
			forgiven[i] = reg.Counter("ftpn_ft_forgiven_total", "Detection violations ridden out by the (m,k) policy.", rl)
			vdrop[i] = reg.Counter("ftpn_ft_sel_value_drops_total", "Tokens discarded by the replay value cross-check.", rl)
			lead[i] = reg.Gauge("ftpn_ft_sel_lead", "Interface pair-index lead over the other side.", rl)
		}
		s.SetProbe(chainProbe(s.probe, func(e ProbeEvent) {
			switch e.Kind {
			case ProbeEnqueue:
				enq[e.Replica-1].Inc()
				fill.Set(int64(e.Fill))
				dist.Observe(int64(e.Fill))
				lead[e.Replica-1].Set(e.Lead)
			case ProbeDropDuplicate:
				dup[e.Replica-1].Inc()
				lead[e.Replica-1].Set(e.Lead)
			case ProbeRead:
				reads.Inc()
				fill.Set(int64(e.Fill))
				dist.Observe(int64(e.Fill))
			case ProbeDropResync:
				rsd[e.Replica-1].Inc()
			case ProbeAligned:
				aligned[e.Replica-1].Inc()
			case ProbeForgiven:
				forgiven[e.Replica-1].Inc()
			case ProbeDropValue:
				vdrop[e.Replica-1].Inc()
			case ProbeReintegrate:
				reint[e.Replica-1].Inc()
			}
		}))
	}
	// Plain FIFOs (internal replica channels and reliable-to-reliable
	// links) expose fill through the kpn observer interface.
	fifoNames := make([]string, 0, len(sys.FIFOs))
	for n := range sys.FIFOs {
		fifoNames = append(fifoNames, n)
	}
	sort.Strings(fifoNames)
	for _, n := range fifoNames {
		l := obs.Labels{"channel": n}
		sys.FIFOs[n].Observe(fifoMetrics{
			fill: reg.Gauge("ftpn_kpn_fifo_fill", "Current plain FIFO fill.", l),
			dist: reg.Histogram("ftpn_kpn_fifo_fill_dist", "Plain FIFO fill observed at write/read.", fillBuckets, l),
		})
	}
	sys.AddFaultHook(func(f Fault) {
		reg.Counter("ftpn_ft_faults_total", "Detection events by channel, replica and reason.",
			obs.Labels{"channel": f.Channel, "replica": fmt.Sprintf("%d", f.Replica), "reason": string(f.Reason)}).Inc()
	})
}

// InstrumentTrace installs probes that record every channel's fill
// trajectory as Chrome-trace counter tracks and every fault and
// re-integration phase as global instant markers. It composes with
// Instrument; a nil recorder is a no-op.
func InstrumentTrace(sys *System, rec *obs.TraceRecorder) {
	if rec == nil {
		return
	}
	for _, r := range sortedReplicators(sys) {
		r := r
		track := "fill " + r.Name()
		r.SetProbe(chainProbe(r.probe, func(e ProbeEvent) {
			switch e.Kind {
			case ProbeEnqueue, ProbeRead:
				rec.Counter(track, fmt.Sprintf("R%d", e.Replica), e.At, int64(e.Fill))
			case ProbeReintegrate:
				rec.Instant(fmt.Sprintf("reintegrate R%d on %s (fill %d)", e.Replica, e.Channel, e.Fill), e.At)
			case ProbeForgiven:
				rec.Instant(fmt.Sprintf("forgiven R%d on %s (lead %d)", e.Replica, e.Channel, e.Lead), e.At)
			}
		}))
	}
	for _, s := range sortedSelectors(sys) {
		s := s
		track := "fill " + s.Name()
		s.SetProbe(chainProbe(s.probe, func(e ProbeEvent) {
			switch e.Kind {
			case ProbeEnqueue, ProbeRead:
				rec.Counter(track, "S", e.At, int64(e.Fill))
			case ProbeReintegrate:
				rec.Instant(fmt.Sprintf("resync start R%d on %s", e.Replica, e.Channel), e.At)
			case ProbeAligned:
				rec.Instant(fmt.Sprintf("realigned R%d on %s", e.Replica, e.Channel), e.At)
			case ProbeForgiven:
				rec.Instant(fmt.Sprintf("forgiven R%d on %s (lead %d)", e.Replica, e.Channel, e.Lead), e.At)
			case ProbeDropValue:
				rec.Instant(fmt.Sprintf("value drop R%d on %s", e.Replica, e.Channel), e.At)
			}
		}))
	}
	sys.AddFaultHook(func(f Fault) {
		rec.Instant(fmt.Sprintf("%s fault R%d on %s (%s)", f.Kind, f.Replica, f.Channel, f.Reason), f.At)
	})
}
