package ft

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/kpn"
)

// TestNWayRepairAtReintegration drives the m-way channels (N=3) through
// a full transient-fault cycle on a fault.Switch: replica 2 stops, is
// convicted by both detectors, is repaired via RepairAt with its queue
// re-armed and its selector interface re-synchronized, and is then
// convicted again by a second injection — proving detection re-armed at
// N>2 while the consumer stream stays token-identical throughout.
func TestNWayRepairAtReintegration(t *testing.T) {
	const (
		tokens   = 60
		periodUs = 10
		injectUs = 150
		repairUs = 250
		secondUs = 450
	)
	k := des.NewKernel()
	var faults []Fault
	record := func(f Fault) { faults = append(faults, f) }
	rep := NewNReplicator(k, "R", []int{4, 4, 4}, record)
	rep.DReads = 3
	sel := NewNSelector(k, "S", []int{8, 8, 8}, []int{0, 0, 0}, 3, nil, record)

	sw := fault.NewSwitch(k)
	k.Spawn("producer", 0, func(p *des.Proc) {
		w := rep.WriterPort()
		for i := int64(1); i <= tokens; i++ {
			w.Write(p, kpn.Token{Seq: i})
			p.Delay(periodUs)
		}
	})
	for r := 1; r <= 3; r++ {
		in, out := rep.ReaderPort(r), sel.WriterPort(r)
		if r == 2 {
			in, out = fault.GateRead(in, sw), fault.GateWrite(out, sw)
		}
		k.Spawn("w", 0, func(p *des.Proc) {
			for {
				out.Write(p, in.Read(p))
			}
		})
	}
	var got []int64
	k.Spawn("consumer", periodUs/2, func(p *des.Proc) {
		r := sel.ReaderPort()
		for i := 0; i < tokens; i++ {
			got = append(got, r.Read(p).Seq)
			p.Delay(periodUs)
		}
	})

	sw.InjectAt(injectUs, fault.StopAll, 0)
	// Repair and re-integration in one event, re-arm before the replica
	// wakes: purge + refill the queue, resync the selector interface,
	// then lift the switch.
	k.At(repairUs, func() {
		if !rep.Reintegrate(2, 2, 4) {
			t.Error("replicator re-integration refused")
		}
		if !sel.Reintegrate(2) {
			t.Error("selector re-integration refused")
		}
		sw.Repair()
	})
	sw.InjectAt(secondUs, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()

	for i, seq := range got {
		if seq != int64(i)+1 {
			t.Fatalf("consumer token %d has seq %d, want %d: %v", i, seq, i+1, got)
		}
	}
	var first, second des.Time = -1, -1
	for _, f := range faults {
		if f.Replica != 2 {
			t.Fatalf("healthy replica convicted: %v", f)
		}
		switch {
		case f.At >= secondUs && second < 0:
			second = f.At
		case f.At >= injectUs && f.At < repairUs && first < 0:
			first = f.At
		}
	}
	if first < 0 {
		t.Fatalf("first fault never detected: %v", faults)
	}
	if second < 0 {
		t.Fatalf("second fault after re-integration never detected (redundancy not restored): %v", faults)
	}
	for _, f := range faults {
		if f.At >= repairUs && f.At < secondUs {
			t.Fatalf("replica 2 re-convicted inside the recovered window: %v", f)
		}
	}
	if sel.Resyncing(2) {
		t.Error("selector interface 2 never completed resynchronization")
	}
	if !sw.Repaired() || len(sw.Injections()) != 2 {
		t.Errorf("switch history: repaired=%v injections=%d, want true/2", sw.Repaired(), len(sw.Injections()))
	}
	if err := rep.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := sel.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
