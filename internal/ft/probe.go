package ft

import "ftpn/internal/des"

// ProbeKind discriminates the channel-level events a probe can observe.
type ProbeKind uint8

const (
	// ProbeWrite: the producer-side write interface accepted one token
	// (replicator only; fired once per write, before per-replica
	// delivery). Replica is 0.
	ProbeWrite ProbeKind = iota
	// ProbeEnqueue: a token entered replica Replica's queue (replicator)
	// or the shared FIFO via interface Replica (selector). Fill is the
	// queue fill after the enqueue; for selectors Lead is the writer's
	// pair-index lead over the other interface after the write.
	ProbeEnqueue
	// ProbeRead: a token was consumed. Replica identifies the reading
	// replica for replicators and is 0 for the selector's single
	// consumer. Fill is the fill after the read.
	ProbeRead
	// ProbeDropDuplicate: a selector interface's token was the late
	// duplicate of an already-queued pair and was discarded (counted).
	ProbeDropDuplicate
	// ProbeDropLost: a replicator write found every replica faulty and
	// the token was lost.
	ProbeDropLost
	// ProbeDropSlide: a re-integrated replicator queue re-armed itself on
	// overflow, discarding its oldest token instead of convicting.
	ProbeDropSlide
	// ProbeDropResync: a selector interface in resynchronization
	// discarded a stale pipeline token (uncounted).
	ProbeDropResync
	// ProbeReintegrate: a repaired replica was re-admitted (replicator:
	// queue re-armed with Fill tokens; selector: resynchronization
	// entered).
	ProbeReintegrate
	// ProbeAligned: a resynchronizing selector interface found its
	// alignment point and is fully re-integrated.
	ProbeAligned
	// ProbeForgiven: a detection predicate was violated but the
	// channel's (m,k) policy rode it out instead of convicting. Lead
	// carries the divergence at the violation where meaningful.
	ProbeForgiven
	// ProbeDropValue: a selector interface's token failed the
	// replay-based value cross-check (or followed one that did) and was
	// discarded uncounted, letting the healthy interface own the pair.
	ProbeDropValue
)

// String names the kind for logs and trace markers.
func (k ProbeKind) String() string {
	switch k {
	case ProbeWrite:
		return "write"
	case ProbeEnqueue:
		return "enqueue"
	case ProbeRead:
		return "read"
	case ProbeDropDuplicate:
		return "drop-duplicate"
	case ProbeDropLost:
		return "drop-lost"
	case ProbeDropSlide:
		return "drop-slide"
	case ProbeDropResync:
		return "drop-resync"
	case ProbeReintegrate:
		return "reintegrate"
	case ProbeAligned:
		return "aligned"
	case ProbeForgiven:
		return "forgiven"
	case ProbeDropValue:
		return "drop-value"
	default:
		return "unknown"
	}
}

// ProbeEvent is one channel-level event delivered to a probe. Events
// carry plain values only — a probe must not call back into the channel.
type ProbeEvent struct {
	At      des.Time
	Channel string
	Kind    ProbeKind
	Replica int   // 1-based replica/interface; 0 = channel-wide
	Fill    int   // queue fill after the event (where meaningful)
	Lead    int64 // selector writes: pair-index lead over the other side
}

// Probe observes channel events. Probes run synchronously inside the
// channel operation on the simulation's hot path: they must be cheap,
// must not block, and must not touch the channel that fired them. A nil
// probe costs one predicted branch per event site (see internal/obs for
// the same contract on metric updates).
type Probe func(ProbeEvent)

// SetProbe installs the channel's probe (nil disables).
func (r *Replicator) SetProbe(p Probe) { r.probe = p }

// SetProbe installs the channel's probe (nil disables).
func (s *Selector) SetProbe(p Probe) { s.probe = p }

// SetProbe installs the channel's probe (nil disables).
func (r *NReplicator) SetProbe(p Probe) { r.probe = p }

// SetProbe installs the channel's probe (nil disables).
func (s *NSelector) SetProbe(p Probe) { s.probe = p }
