package ft

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// The fuzz targets interpret the input bytes as a schedule — queue
// capacities, detection thresholds, per-token delays, an optional
// outage window with a re-integration — and drive the channel through
// the resulting interleaving on the DES kernel. Three properties are
// machine-checked on every schedule:
//
//   - stream integrity: the consumer-facing token stream is the gapless
//     ascending sequence 1..n regardless of interleaving, convictions
//     or re-integration (per-replica streams stay strictly increasing);
//   - counter identities: CheckInvariants holds when the run settles;
//   - no false positives: a symmetric schedule (identical replica
//     timing, no outage) convicts nobody, and a freshly re-integrated
//     replicator queue never convicts on queue-full before the
//     replica's first post-recovery read (the slide grace).
//
// fuzzScript cycles over the fuzz input so every draw is defined even
// for short inputs.
type fuzzScript struct {
	data []byte
	pos  int
}

func (f *fuzzScript) next() byte {
	if len(f.data) == 0 {
		return 0
	}
	v := f.data[f.pos%len(f.data)]
	f.pos++
	return v
}

const fuzzTokens = 24

func FuzzSelectorInterleavings(f *testing.F) {
	f.Add([]byte{0})                               // symmetric, minimal
	f.Add([]byte{1, 3, 5, 2, 0, 4, 1, 1, 2, 3})    // asymmetric delays
	f.Add([]byte{2, 6, 2, 4, 9, 3, 0, 1, 7, 2, 5}) // outage + re-integration
	f.Add([]byte{2, 0, 0, 19, 1, 0, 0, 0, 0, 0})   // resume far behind (stale drops)
	f.Add([]byte{2, 7, 7, 3, 17, 9, 9, 9, 1, 1})   // resume ahead (park on resyncWait)
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := &fuzzScript{data: data}
		mode := sc.next() % 3 // 0 symmetric, 1 asymmetric, 2 outage+reintegrate
		caps := [2]int{2 + int(sc.next()%7), 2 + int(sc.next()%7)}
		// 0 disables divergence detection; 1 is degenerate (a writer
		// always momentarily leads its pair partner by one), and eq. 5
		// never yields it — the envelope bound makes D >= 2.
		d := int64(sc.next() % 7)
		if d == 1 {
			d = 2
		}
		stopAt := int64(5 + int(sc.next()%10))    // writer 1's last pre-outage seq
		resumeSeq := int64(1 + int(sc.next()%20)) // first seq of the refilled pipeline
		if resumeSeq > fuzzTokens-2 {
			resumeSeq = fuzzTokens - 2
		}
		outagePause := des.Time(1 + sc.next()%30)
		var d1, d2, dr [fuzzTokens]des.Time
		for i := range d1 {
			d1[i] = des.Time(sc.next() % 5)
			d2[i] = des.Time(sc.next() % 5)
			dr[i] = des.Time(sc.next() % 5)
		}
		if mode == 0 {
			// Identical replica timing: a false positive is a bug. The
			// delays must be positive — Delay(0) does not yield, so a
			// zero-delay writer bursts ahead of its pair partner and the
			// schedule would not actually be symmetric.
			for i := range d1 {
				if d1[i] == 0 {
					d1[i] = 1
				}
			}
			d2 = d1
			// Capacities must match too: with |S_1| != |S_2| the smaller
			// interface back-pressures earlier, and an independently
			// drawn D can be undersized for that gap — the analysis
			// derives D jointly with the capacities, never independently.
			caps[1] = caps[0]
		}

		k := des.NewKernel()
		var faults []Fault
		s := NewSelector(k, "S", caps, [2]int{0, 0}, d, nil, func(f Fault) {
			faults = append(faults, f)
		})
		reintegrated := false
		k.Spawn("w1", 0, func(p *des.Proc) {
			w := s.WriterPort(1)
			for seq := int64(1); seq <= fuzzTokens; seq++ {
				if mode == 2 && !reintegrated && seq == stopAt+1 {
					// Outage: the replica dies mid-stream, is repaired
					// after a pause and resumes with a refilled pipeline
					// whose stream position may be behind (stale tokens,
					// dropped uncounted), aligned, or ahead (parks until
					// the healthy write front catches up).
					p.Delay(outagePause)
					if !s.Reintegrate(1) {
						return // reference replica unusable; nothing to resync against
					}
					reintegrated = true
					seq = resumeSeq
				}
				p.Delay(d1[seq-1])
				w.Write(p, kpn.Token{Seq: seq})
			}
		})
		k.Spawn("w2", 0, func(p *des.Proc) {
			w := s.WriterPort(2)
			for seq := int64(1); seq <= fuzzTokens; seq++ {
				p.Delay(d2[seq-1])
				w.Write(p, kpn.Token{Seq: seq})
			}
		})
		var got []int64
		k.Spawn("consumer", 1, func(p *des.Proc) {
			r := s.ReaderPort()
			for i := 0; i < fuzzTokens; i++ {
				p.Delay(dr[i])
				got = append(got, r.Read(p).Seq)
			}
		})
		k.Run(0)
		k.Shutdown()

		for i, seq := range got {
			if seq != int64(i)+1 {
				t.Fatalf("consumer token %d has seq %d, want %d (stream corrupted)\ngot: %v", i, seq, i+1, got)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("counter identities violated: %v", err)
		}
		if mode == 0 && len(faults) > 0 {
			t.Fatalf("symmetric schedule convicted a replica (false positive): %v", faults)
		}
		if reintegrated && !s.Resyncing(1) {
			// Alignment completed: the interface must be reinstated.
			if ok, at, reason := s.Faulty(1); ok && reason != ReasonConsumerStall && reason != ReasonDivergence {
				t.Fatalf("re-aligned interface still convicted: %v at %d", reason, at)
			}
		}
	})
}

func FuzzReplicatorInterleavings(f *testing.F) {
	f.Add([]byte{0})                                  // symmetric, minimal
	f.Add([]byte{1, 4, 2, 6, 1, 0, 3, 2, 4, 1})       // asymmetric delays
	f.Add([]byte{2, 5, 5, 3, 8, 3, 12, 2, 1, 4, 0})   // outage + re-arm + slide window
	f.Add([]byte{2, 2, 2, 0, 5, 7, 25, 1, 1, 1, 1})   // long pause after re-arm (slide stress)
	f.Add([]byte{2, 6, 6, 6, 10, 0, 0, 3, 3, 3, 3})   // re-arm with empty fill
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := &fuzzScript{data: data}
		mode := sc.next() % 3 // 0 symmetric, 1 asymmetric, 2 outage+reintegrate
		caps := [2]int{2 + int(sc.next()%7), 2 + int(sc.next()%7)}
		// As in the selector target: a read-divergence threshold of 1 is
		// degenerate (momentary lead of one is inherent to pairing) and
		// outside what the analysis produces.
		dReads := int64(sc.next() % 7)
		if dReads == 1 {
			dReads = 2
		}
		stopAt := 3 + int(sc.next()%8) // reader 1 reads this many tokens, then dies
		outagePause := des.Time(1 + sc.next()%40)
		fill := int(sc.next() % 8)
		grace := int64(sc.next() % 8)
		pauseAfter := des.Time(sc.next() % 25) // repair-to-first-read lag (slide window)
		var dp, dr1, dr2 [fuzzTokens]des.Time
		for i := range dp {
			dp[i] = des.Time(1 + sc.next()%4)
			dr1[i] = des.Time(1 + sc.next()%4)
			dr2[i] = des.Time(1 + sc.next()%4)
		}
		if mode == 0 {
			// Identical timing, readers phase-shifted one tick behind the
			// producer: fill stays bounded, a conviction is a bug.
			dr1, dr2 = dp, dp
		}

		k := des.NewKernel()
		var faults []Fault
		r := NewReplicator(k, "R", caps, func(f Fault) {
			faults = append(faults, f)
		})
		r.DReads = dReads
		var reintegratedAt des.Time = -1
		var firstReadAfter des.Time = -1
		r.SetReadHook(1, func(now des.Time) {
			if reintegratedAt >= 0 && firstReadAfter < 0 {
				firstReadAfter = now
			}
		})
		k.Spawn("producer", 0, func(p *des.Proc) {
			w := r.WriterPort()
			for seq := int64(1); seq <= fuzzTokens; seq++ {
				p.Delay(dp[seq-1])
				w.Write(p, kpn.Token{Seq: seq})
			}
		})
		var seqs [2][]int64
		reader := func(i int) func(p *des.Proc) {
			return func(p *des.Proc) {
				port := r.ReaderPort(i + 1)
				delays := dr2
				if i == 0 {
					delays = dr1
				}
				for n := 0; n < fuzzTokens; n++ {
					if i == 0 && mode == 2 && n == stopAt {
						// Outage: the replica stops consuming; the queue
						// fills and the producer convicts it. After the
						// pause the fault is repaired, the queue re-armed
						// from the healthy one, and the replica takes
						// pauseAfter more to issue its first read — the
						// window the slide grace must cover.
						p.Delay(outagePause)
						if !r.Reintegrate(1, fill, grace) {
							return
						}
						reintegratedAt = p.Now()
						p.Delay(pauseAfter)
					}
					p.Delay(delays[n%fuzzTokens])
					seqs[i] = append(seqs[i], port.Read(p).Seq)
				}
			}
		}
		k.Spawn("r1", 1, reader(0))
		k.Spawn("r2", 1, reader(1))
		k.Run(0)
		k.Shutdown()

		// Replica 1's stream is strictly increasing within each segment;
		// across the outage boundary the re-arm window may legitimately
		// reach back to tokens already consumed (the healthy reader was
		// lagging) — the selector's resynchronization is what discards
		// the duplicate outputs end-to-end.
		checkAscending := func(replica int, s []int64) {
			for j := 1; j < len(s); j++ {
				if s[j] <= s[j-1] {
					t.Fatalf("replica %d stream not strictly increasing at %d: %v", replica, j, s)
				}
			}
		}
		if mode == 2 && len(seqs[0]) > stopAt {
			checkAscending(1, seqs[0][:stopAt])
			checkAscending(1, seqs[0][stopAt:])
		} else {
			checkAscending(1, seqs[0])
		}
		checkAscending(2, seqs[1])
		// Replica 2 is never re-integrated, so its stream must be a
		// gapless prefix of the produced sequence.
		for j, seq := range seqs[1] {
			if seq != int64(j)+1 {
				t.Fatalf("replica 2 token %d has seq %d, want %d: %v", j, seq, j+1, seqs[1])
			}
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("queue bookkeeping violated: %v", err)
		}
		if mode == 0 && len(faults) > 0 {
			t.Fatalf("symmetric schedule convicted a replica (false positive): %v", faults)
		}
		if reintegratedAt >= 0 {
			// Slide grace: between re-arm and the replica's first read,
			// overflow re-arms the queue instead of convicting.
			for _, f := range faults {
				if f.Replica == 1 && f.Reason == ReasonQueueFull && f.At > reintegratedAt &&
					(firstReadAfter < 0 || f.At < firstReadAfter) {
					t.Fatalf("queue-full conviction at %dus inside the re-arm window (reintegrated %dus, first read %dus)",
						f.At, reintegratedAt, firstReadAfter)
				}
			}
		}
	})
}
