package ft

import "ftpn/internal/obs"

// InstrumentFlight installs probes that mirror every channel probe
// event into a flight-recorder stream, and a fault hook that records
// each conviction with the divergence and fill sampled at conviction
// time. The probe path copies one struct into a preallocated ring — no
// allocation, no formatting — so the recorder can stay on in long
// campaigns. Composes with Instrument/InstrumentTrace via chainProbe;
// a nil stream is a no-op (nothing is installed).
//
// Injections and recoveries are recorded by the layers that perform
// them (harnesses record obs.FlightInject, recover.Manager records
// obs.FlightRecover); together with the probe events the stream holds
// the full causal chain obs.Explain reconstructs.
func InstrumentFlight(sys *System, st *obs.FlightStream) {
	if st == nil {
		return
	}
	mirror := func(e ProbeEvent) {
		st.Record(obs.FlightEvent{
			At:      int64(e.At),
			Channel: e.Channel,
			Kind:    e.Kind.String(),
			Replica: e.Replica,
			Fill:    e.Fill,
			Aux:     e.Lead,
		})
	}
	for _, r := range sortedReplicators(sys) {
		r.SetProbe(chainProbe(r.probe, mirror))
	}
	for _, s := range sortedSelectors(sys) {
		s.SetProbe(chainProbe(s.probe, mirror))
	}
	sys.AddFaultHook(func(f Fault) {
		ev := obs.FlightEvent{
			At:      int64(f.At),
			Channel: f.Channel,
			Kind:    obs.FlightConvict,
			Reason:  string(f.Reason),
			Replica: f.Replica,
		}
		if r, ok := sys.Replicators[f.Channel]; ok {
			ev.Fill = r.Fill(f.Replica)
			ev.Aux = r.Divergence(f.Replica)
		} else if s, ok := sys.Selectors[f.Channel]; ok {
			ev.Fill = s.Fill()
			ev.Aux = s.Divergence(f.Replica)
		}
		st.Record(ev)
	})
}
