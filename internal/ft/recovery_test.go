package ft

import (
	"fmt"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/kpn"
)

// recoveryBuildConfig arms both detectors with thresholds safe for
// pipelineNet's small jitters.
func recoveryBuildConfig() BuildConfig {
	return BuildConfig{
		ReplicatorD: map[string]int64{"FP": 3},
		SelectorD:   map[string]int64{"FC": 3},
	}
}

// runRecoveryScenario executes pipelineNet with a fault on replica at
// injectUs, repair + re-integration at repairUs, and a second fault at
// secondUs, returning the system and the consumer stream.
func runRecoveryScenario(t *testing.T, tokens int64, replica int, mode fault.Mode, extraUs, injectUs, repairUs, secondUs des.Time) (*System, []kpn.Token) {
	t.Helper()
	k := des.NewKernel()
	var sink []kpn.Token
	sys, err := Build(k, pipelineNet(tokens, &sink), recoveryBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.InjectFault(replica, injectUs, mode, extraUs)
	sys.RepairAndReintegrateAt(replica, repairUs, ReintegrationPlan{})
	if secondUs > 0 {
		sys.InjectFault(replica, secondUs, fault.StopAll, 0)
	}
	k.Run(0)
	k.Shutdown()
	return sys, sink
}

// goldenStream is the consumer stream of a fault-free duplicated run.
func goldenStream(t *testing.T, tokens int64) []kpn.Token {
	t.Helper()
	k := des.NewKernel()
	var sink []kpn.Token
	if _, err := Build(k, pipelineNet(tokens, &sink), recoveryBuildConfig()); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	k.Shutdown()
	return sink
}

func sameStream(a, b []kpn.Token) error {
	if len(a) != len(b) {
		return fmt.Errorf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Hash() != b[i].Hash() {
			return fmt.Errorf("token %d: (seq %d, hash %x) vs (seq %d, hash %x)",
				i, a[i].Seq, a[i].Hash(), b[i].Seq, b[i].Hash())
		}
	}
	return nil
}

// TestRecoveryToleratesSecondFault is the tentpole property: after a
// detected fault, repair plus re-integration restores full redundancy,
// the consumer stream stays token-identical to the fault-free run, the
// healthy replica is never convicted, and a second fault on the
// re-integrated replica is detected again.
func TestRecoveryToleratesSecondFault(t *testing.T) {
	const tokens = 400
	golden := goldenStream(t, tokens)
	cases := []struct {
		name    string
		replica int
		mode    fault.Mode
		extraUs des.Time
	}{
		{"stop-all-r2", 2, fault.StopAll, 0},
		{"stop-consuming-r1", 1, fault.StopConsuming, 0},
		{"stop-producing-r2", 2, fault.StopProducing, 0},
		{"degrade-r1", 1, fault.Degrade, 3000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, sink := runRecoveryScenario(t, tokens, tc.replica, tc.mode, tc.extraUs,
				50_000, 120_000, 250_000)
			if err := sameStream(golden, sink); err != nil {
				t.Errorf("consumer stream diverged from golden run: %v", err)
			}
			healthy := 3 - tc.replica
			for _, f := range sys.Faults {
				if f.Replica == healthy {
					t.Errorf("healthy replica R%d convicted: %v", healthy, f)
				}
			}
			first, ok := sys.FirstFault(tc.replica)
			if !ok || first.At < 50_000 || first.At >= 120_000 {
				t.Fatalf("first fault detection = %v (ok=%v), want in [50ms, 120ms)", first, ok)
			}
			// No spurious re-conviction between recovery and the second
			// fault, and the second fault is detected.
			second := des.Time(-1)
			for _, f := range sys.Faults {
				if f.Replica == tc.replica && f.At >= 120_000 {
					if f.At < 250_000 {
						t.Errorf("spurious re-conviction after recovery: %v", f)
					} else if second < 0 {
						second = f.At
					}
				}
			}
			if second < 0 {
				t.Errorf("second fault at t=250ms was not detected; faults: %v", sys.Faults)
			}
			if sel := sys.Selectors["FC"]; sel.Resyncing(tc.replica) {
				t.Errorf("selector interface R%d never completed resynchronization", tc.replica)
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Errorf("counter invariants violated: %v", err)
			}
			if w := sys.Selectors["FC"].Writes(healthy); w != tokens {
				t.Errorf("healthy replica wrote %d of %d tokens (back-pressured?)", w, tokens)
			}
		})
	}
}

// TestRecoveryWithoutSecondFault checks that a recovered system simply
// runs on cleanly when no further fault arrives.
func TestRecoveryWithoutSecondFault(t *testing.T) {
	const tokens = 300
	golden := goldenStream(t, tokens)
	sys, sink := runRecoveryScenario(t, tokens, 2, fault.StopAll, 0, 40_000, 90_000, 0)
	if err := sameStream(golden, sink); err != nil {
		t.Errorf("consumer stream diverged from golden run: %v", err)
	}
	for _, f := range sys.Faults {
		if f.Replica == 2 && f.At >= 90_000 {
			t.Errorf("re-conviction after recovery with no second fault: %v", f)
		}
		if f.Replica == 1 {
			t.Errorf("healthy replica convicted: %v", f)
		}
	}
	if sys.Selectors["FC"].Resyncing(2) {
		t.Error("selector interface R2 never completed resynchronization")
	}
	// Redundancy restored: both interfaces participated in the tail of
	// the stream (the recovered replica's write count grows past its
	// stale level).
	sel := sys.Selectors["FC"]
	if sel.Writes(2) == 0 || sel.ResyncDrops(2) == 0 {
		t.Errorf("recovered replica writes=%d resyncDrops=%d, want both > 0",
			sel.Writes(2), sel.ResyncDrops(2))
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Errorf("counter invariants violated: %v", err)
	}
}

// TestSelectorReintegrateNeedsHealthyReference verifies the guard: with
// the other interface convicted, re-integration is refused.
func TestSelectorReintegrateNeedsHealthyReference(t *testing.T) {
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{4, 4}, [2]int{1, 1}, 0, nil, nil)
	s.flag(0, ReasonQueueFull)
	s.flag(1, ReasonDivergence)
	if s.Reintegrate(2) {
		t.Error("Reintegrate should refuse with no healthy reference interface")
	}
	s.reinstate(0)
	if !s.Reintegrate(2) {
		t.Error("Reintegrate should accept once the other interface is healthy")
	}
	if !s.Resyncing(2) {
		t.Error("interface 2 should be resynchronizing")
	}
	k.Shutdown()
}

// TestReplicatorReintegrateMirrorsHealthyQueue drives the replicator
// directly: convict replica 2, keep writing, then re-integrate and
// check the re-armed queue mirrors the healthy backlog.
func TestReplicatorReintegrateMirrorsHealthyQueue(t *testing.T) {
	k := des.NewKernel()
	r := NewReplicator(k, "R", [2]int{4, 8}, nil)
	k.Spawn("P", 0, func(p *des.Proc) {
		for i := int64(1); i <= 10; i++ {
			r.write(p, kpn.Token{Seq: i})
			p.Delay(100)
		}
	})
	k.Spawn("C1", 0, func(p *des.Proc) {
		for i := 0; i < 10; i++ {
			r.read(p, 0)
			p.Delay(150)
		}
	})
	// Replica 2 never reads: queue 2 (cap 8) fills and convicts at the
	// 9th write.
	k.Run(0)
	if f, _, reason := r.Faulty(2); !f || reason != ReasonQueueFull {
		t.Fatalf("replica 2 = (%v, %v), want queue-full conviction", f, reason)
	}
	if !r.Reintegrate(2, 8, 4) {
		t.Fatal("Reintegrate refused despite healthy replica 1")
	}
	if f, _, _ := r.Faulty(2); f {
		t.Error("replica 2 still convicted after re-integration")
	}
	// Replica 1 consumed slower than the producer wrote, so its backlog
	// is the newest tokens; replica 2's queue must now mirror it.
	want := r.Fill(1)
	if got := r.Fill(2); got != want {
		t.Errorf("re-armed fill = %d, want mirror of healthy fill %d", got, want)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Errorf("bookkeeping invariant violated: %v", err)
	}
	k.Shutdown()
}
