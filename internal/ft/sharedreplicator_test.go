package ft

import (
	"testing"
	"testing/quick"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestSharedReplicatorDuplicates(t *testing.T) {
	k := des.NewKernel()
	r := NewSharedReplicator(k, "R", 4, nil)
	var got1, got2 []int64
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
		for i := 0; i < 3; i++ {
			got1 = append(got1, r.ReaderPort(1).Read(p).Seq)
			got2 = append(got2, r.ReaderPort(2).Read(p).Seq)
		}
	})
	k.Run(0)
	for i := 0; i < 3; i++ {
		if got1[i] != int64(i+1) || got2[i] != int64(i+1) {
			t.Fatalf("streams diverge: %v vs %v", got1, got2)
		}
	}
	if r.Fill(1) != 0 || r.Fill(2) != 0 {
		t.Errorf("fills = %d/%d, want 0/0", r.Fill(1), r.Fill(2))
	}
	if r.MaxFill(1) != 3 {
		t.Errorf("MaxFill = %d, want 3", r.MaxFill(1))
	}
}

func TestSharedReplicatorQueueFullDetection(t *testing.T) {
	k := des.NewKernel()
	var faults []Fault
	r := NewSharedReplicator(k, "R", 2, func(f Fault) { faults = append(faults, f) })
	k.Spawn("d", 0, func(p *des.Proc) {
		// Replica 2 consumes; replica 1 never reads.
		for i := int64(1); i <= 5; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
			r.ReaderPort(2).Read(p)
			p.Delay(10)
		}
	})
	k.Run(0)
	if len(faults) != 1 || faults[0].Replica != 1 || faults[0].Reason != ReasonQueueFull {
		t.Fatalf("faults = %v, want R1 queue-full", faults)
	}
	// The healthy replica kept receiving everything.
	if got := r.Fill(2); got != 0 {
		t.Errorf("healthy fill = %d, want 0", got)
	}
	if r.Lost() != 0 {
		t.Errorf("lost = %d, want 0 (one replica still healthy)", r.Lost())
	}
}

func TestSharedReplicatorBothFaulty(t *testing.T) {
	k := des.NewKernel()
	r := NewSharedReplicator(k, "R", 1, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
	})
	k.Run(0)
	ok1, _, _ := r.Faulty(1)
	ok2, _, _ := r.Faulty(2)
	if !ok1 || !ok2 {
		t.Fatal("both replicas should be flagged")
	}
	if r.Lost() != 2 {
		t.Errorf("lost = %d, want 2", r.Lost())
	}
}

func TestSharedReplicatorBlocksReader(t *testing.T) {
	k := des.NewKernel()
	r := NewSharedReplicator(k, "R", 2, nil)
	var at des.Time = -1
	k.Spawn("r1", 0, func(p *des.Proc) {
		r.ReaderPort(1).Read(p)
		at = p.Now()
	})
	k.Spawn("w", 0, func(p *des.Proc) {
		p.Delay(42)
		r.WriterPort().Write(p, kpn.Token{Seq: 1})
	})
	k.Run(0)
	k.Shutdown()
	if at != 42 {
		t.Errorf("read completed at %d, want 42", at)
	}
}

func TestSharedReplicatorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	k := des.NewKernel()
	mustPanic("zero cap", func() { NewSharedReplicator(k, "R", 0, nil) })
	r := NewSharedReplicator(k, "R", 2, nil)
	mustPanic("bad reader", func() { r.ReaderPort(3) })
	if r.Capacity() != 2 || r.Name() != "R" ||
		r.WriterPort().PortName() != "R.w" || r.ReaderPort(2).PortName() != "R.r2" {
		t.Error("accessors broken")
	}
}

// Property: under fault-free interleaved consumption, the shared-ring
// replicator delivers exactly the same streams as the two-queue design.
func TestSharedReplicatorEquivalentToTwoQueue(t *testing.T) {
	prop := func(capRaw uint8, pattern uint16) bool {
		capacity := int(capRaw%4) + 2
		k := des.NewKernel()
		a := NewReplicator(k, "A", [2]int{capacity, capacity}, nil)
		b := NewSharedReplicator(k, "B", capacity, nil)
		const n = 12
		var sa1, sa2, sb1, sb2 []int64
		k.Spawn("d", 0, func(p *des.Proc) {
			read1 := func() {
				sa1 = append(sa1, a.ReaderPort(1).Read(p).Seq)
				sb1 = append(sb1, b.ReaderPort(1).Read(p).Seq)
			}
			read2 := func() {
				sa2 = append(sa2, a.ReaderPort(2).Read(p).Seq)
				sb2 = append(sb2, b.ReaderPort(2).Read(p).Seq)
			}
			for i := int64(1); i <= n; i++ {
				// Drain just enough to stay fault-free: a write must never
				// find a replica lagging a full queue behind.
				if a.Fill(1) == capacity {
					read1()
				}
				if a.Fill(2) == capacity {
					read2()
				}
				a.WriterPort().Write(p, kpn.Token{Seq: i})
				b.WriterPort().Write(p, kpn.Token{Seq: i})
				// The pattern bits decide extra reads this round.
				if pattern&(1<<(uint(i)%16)) != 0 {
					read1()
				}
				if pattern&(1<<((uint(i)+5)%16)) != 0 {
					read2()
				}
			}
		})
		k.Run(0)
		k.Shutdown()
		if len(sa1) != len(sb1) || len(sa2) != len(sb2) {
			return false
		}
		for i := range sa1 {
			if sa1[i] != sb1[i] {
				return false
			}
		}
		for i := range sa2 {
			if sa2[i] != sb2[i] {
				return false
			}
		}
		// Neither design flagged anything in this fault-free run.
		af1, _, _ := a.Faulty(1)
		bf1, _, _ := b.Faulty(1)
		return af1 == bf1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
