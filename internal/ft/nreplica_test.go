package ft

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestNReplicatorFansOutToAll(t *testing.T) {
	k := des.NewKernel()
	r := NewNReplicator(k, "R", []int{4, 4, 4}, nil)
	if r.Replicas() != 3 {
		t.Fatalf("Replicas = %d", r.Replicas())
	}
	var streams [3][]int64
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 4; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
		for rep := 1; rep <= 3; rep++ {
			for i := 0; i < 4; i++ {
				streams[rep-1] = append(streams[rep-1], r.ReaderPort(rep).Read(p).Seq)
			}
		}
	})
	k.Run(0)
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 4; i++ {
			if streams[rep][i] != int64(i+1) {
				t.Fatalf("replica %d stream %v", rep+1, streams[rep])
			}
		}
	}
}

func TestNReplicatorToleratesNMinus1Faults(t *testing.T) {
	// 3 replicas, 2 stop consuming: both detected, producer never
	// blocks, the survivor receives everything.
	k := des.NewKernel()
	var faults []Fault
	r := NewNReplicator(k, "R", []int{2, 2, 8}, func(f Fault) { faults = append(faults, f) })
	var writeTimes []des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 8; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
			writeTimes = append(writeTimes, p.Now())
			p.Delay(10)
		}
	})
	k.Spawn("r3", 0, func(p *des.Proc) {
		for i := 0; i < 8; i++ {
			r.ReaderPort(3).Read(p)
			p.Delay(10)
		}
	})
	k.Run(0)
	k.Shutdown()
	if r.NumFaulty() != 2 {
		t.Fatalf("faulty = %d, want 2: %v", r.NumFaulty(), faults)
	}
	ok1, _, _ := r.Faulty(1)
	ok2, _, _ := r.Faulty(2)
	ok3, _, _ := r.Faulty(3)
	if !ok1 || !ok2 || ok3 {
		t.Errorf("faulty flags = %v %v %v, want true true false", ok1, ok2, ok3)
	}
	for i, at := range writeTimes {
		if at != des.Time(i)*10 {
			t.Fatalf("write %d blocked (at %d)", i, at)
		}
	}
}

func TestNReplicatorDivergence(t *testing.T) {
	k := des.NewKernel()
	r := NewNReplicator(k, "R", []int{8, 8, 8}, nil)
	r.DReads = 2
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 2; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
		r.ReaderPort(1).Read(p)
		r.ReaderPort(2).Read(p)
		r.ReaderPort(1).Read(p) // replica 1 now 2 ahead of replica 3
	})
	k.Run(0)
	ok3, _, reason := r.Faulty(3)
	if !ok3 || reason != ReasonDivergence {
		t.Errorf("replica 3 should be flagged for divergence, got %v %s", ok3, reason)
	}
	if ok2, _, _ := r.Faulty(2); ok2 {
		t.Error("replica 2 within threshold must stay healthy")
	}
}

func TestNReplicatorAllFaultyLosesTokens(t *testing.T) {
	k := des.NewKernel()
	r := NewNReplicator(k, "R", []int{1, 1}, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			r.WriterPort().Write(p, kpn.Token{Seq: i})
		}
	})
	k.Run(0)
	if r.Lost() != 2 || r.Writes() != 3 {
		t.Errorf("lost=%d writes=%d, want 2/3", r.Lost(), r.Writes())
	}
}

func TestNSelectorFirstOfSetWins(t *testing.T) {
	k := des.NewKernel()
	s := NewNSelector(k, "S", []int{8, 8, 8}, []int{0, 0, 0}, 0, nil, nil)
	if s.Replicas() != 3 {
		t.Fatalf("Replicas = %d", s.Replicas())
	}
	var got []int64
	k.Spawn("d", 0, func(p *des.Proc) {
		// Set 1 arrives 2, 1, 3; set 2 arrives 3, 2, 1.
		s.WriterPort(2).Write(p, kpn.Token{Seq: 1, Payload: []byte{1}})
		s.WriterPort(1).Write(p, kpn.Token{Seq: 1, Payload: []byte{1}})
		s.WriterPort(3).Write(p, kpn.Token{Seq: 1, Payload: []byte{1}})
		s.WriterPort(3).Write(p, kpn.Token{Seq: 2, Payload: []byte{2}})
		s.WriterPort(2).Write(p, kpn.Token{Seq: 2, Payload: []byte{2}})
		s.WriterPort(1).Write(p, kpn.Token{Seq: 2, Payload: []byte{2}})
		got = append(got, s.ReaderPort().Read(p).Seq, s.ReaderPort().Read(p).Seq)
	})
	k.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("consumer saw %v, want [1 2]", got)
	}
	if s.Fill() != 0 {
		t.Errorf("fill = %d, want 0 (duplicates dropped)", s.Fill())
	}
	if s.Drops(1)+s.Drops(2)+s.Drops(3) != 4 {
		t.Errorf("total drops = %d, want 4", s.Drops(1)+s.Drops(2)+s.Drops(3))
	}
}

func TestNSelectorToleratesNMinus1Faults(t *testing.T) {
	// 3 writers; writers 1 and 3 stop; writer 2 keeps the consumer fed.
	k := des.NewKernel()
	s := NewNSelector(k, "S", []int{4, 4, 4}, []int{1, 1, 1}, 0, nil, nil)
	var arrivals []des.Time
	k.Spawn("w2", 0, func(p *des.Proc) {
		for i := int64(1); i <= 10; i++ {
			s.WriterPort(2).Write(p, kpn.Token{Seq: i})
			p.Delay(10)
		}
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		for i := 0; i < 10; i++ {
			p.Delay(10)
			s.ReaderPort().Read(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	k.Run(0)
	k.Shutdown()
	if len(arrivals) != 10 {
		t.Fatalf("consumer got %d tokens, want 10", len(arrivals))
	}
	ok1, _, r1 := s.Faulty(1)
	ok3, _, r3 := s.Faulty(3)
	if !ok1 || !ok3 || r1 != ReasonConsumerStall || r3 != ReasonConsumerStall {
		t.Errorf("silent writers should be convicted of consumer-stall: %v/%s %v/%s", ok1, r1, ok3, r3)
	}
	if ok2, _, _ := s.Faulty(2); ok2 {
		t.Error("the healthy writer must not be convicted")
	}
}

func TestNSelectorDivergence(t *testing.T) {
	k := des.NewKernel()
	s := NewNSelector(k, "S", []int{16, 16, 16}, []int{0, 0, 0}, 3, nil, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			s.WriterPort(1).Write(p, kpn.Token{Seq: i})
			s.WriterPort(2).Write(p, kpn.Token{Seq: i})
		}
	})
	k.Run(0)
	ok3, _, reason := s.Faulty(3)
	if !ok3 || reason != ReasonDivergence {
		t.Errorf("replica 3 should be flagged for divergence: %v %s", ok3, reason)
	}
	if s.NumFaulty() != 1 {
		t.Errorf("NumFaulty = %d, want 1", s.NumFaulty())
	}
}

func TestNSelectorInitialTokens(t *testing.T) {
	k := des.NewKernel()
	s := NewNSelector(k, "S", []int{4, 6, 8}, []int{2, 3, 4}, 0, func(i int) kpn.Token {
		return kpn.Token{Seq: int64(-i), Payload: []byte{byte(i)}}
	}, nil)
	if s.Fill() != 4 {
		t.Fatalf("initial fill = %d, want 4 (max of inits)", s.Fill())
	}
	if s.Space(1) != 2 || s.Space(2) != 3 || s.Space(3) != 4 {
		t.Errorf("spaces = %d %d %d", s.Space(1), s.Space(2), s.Space(3))
	}
}

func TestNSelectorWriterBlocksOnOwnSpace(t *testing.T) {
	k := des.NewKernel()
	s := NewNSelector(k, "S", []int{1, 8}, []int{0, 0}, 0, nil, nil)
	var secondAt des.Time = -1
	k.Spawn("w1", 0, func(p *des.Proc) {
		s.WriterPort(1).Write(p, kpn.Token{Seq: 1})
		s.WriterPort(1).Write(p, kpn.Token{Seq: 2})
		secondAt = p.Now()
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		p.Delay(70)
		s.ReaderPort().Read(p)
	})
	k.Run(0)
	k.Shutdown()
	if secondAt != 70 {
		t.Errorf("second write at %d, want 70", secondAt)
	}
}

func TestNChannelValidation(t *testing.T) {
	k := des.NewKernel()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("rep too few", func() { NewNReplicator(k, "R", []int{4}, nil) })
	mustPanic("rep zero cap", func() { NewNReplicator(k, "R", []int{4, 0}, nil) })
	mustPanic("sel mismatched", func() { NewNSelector(k, "S", []int{4, 4}, []int{0}, 0, nil, nil) })
	mustPanic("sel zero cap", func() { NewNSelector(k, "S", []int{4, 0}, []int{0, 0}, 0, nil, nil) })
	mustPanic("sel bad init", func() { NewNSelector(k, "S", []int{4, 4}, []int{5, 0}, 0, nil, nil) })
	mustPanic("sel bad D", func() { NewNSelector(k, "S", []int{4, 4}, []int{0, 0}, -1, nil, nil) })
	r := NewNReplicator(k, "R", []int{4, 4}, nil)
	mustPanic("rep bad port", func() { r.ReaderPort(3) })
	s := NewNSelector(k, "S", []int{4, 4}, []int{0, 0}, 0, nil, nil)
	mustPanic("sel bad port", func() { s.WriterPort(0) })
	mustPanic("bad faulty idx", func() { s.Faulty(5) })
	if r.ReaderPort(2).PortName() != "R.r2" || r.WriterPort().PortName() != "R.w" ||
		s.WriterPort(2).PortName() != "S.w2" || s.ReaderPort().PortName() != "S.r" ||
		r.Name() != "R" || s.Name() != "S" {
		t.Error("port names broken")
	}
}

// TestNEquivalentToTwoReplicaChannels: with m=2 the generalized channels
// must behave exactly like the specialized ones.
func TestNEquivalentToTwoReplicaChannels(t *testing.T) {
	k := des.NewKernel()
	sel2 := NewSelector(k, "S2", [2]int{4, 6}, [2]int{1, 2}, 3, nil, nil)
	selN := NewNSelector(k, "SN", []int{4, 6}, []int{1, 2}, 3, nil, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			sel2.WriterPort(1).Write(p, kpn.Token{Seq: i})
			selN.WriterPort(1).Write(p, kpn.Token{Seq: i})
			if i%2 == 0 {
				sel2.WriterPort(2).Write(p, kpn.Token{Seq: i})
				selN.WriterPort(2).Write(p, kpn.Token{Seq: i})
			}
			a := sel2.ReaderPort().Read(p)
			b := selN.ReaderPort().Read(p)
			if a.Seq != b.Seq {
				t.Errorf("token %d: selector %d vs n-selector %d", i, a.Seq, b.Seq)
			}
		}
	})
	k.Run(0)
	k.Shutdown()
	for r := 1; r <= 2; r++ {
		if sel2.Writes(r) != selN.Writes(r) || sel2.Drops(r) != selN.Drops(r) {
			t.Errorf("replica %d counters differ: writes %d/%d drops %d/%d",
				r, sel2.Writes(r), selN.Writes(r), sel2.Drops(r), selN.Drops(r))
		}
		f2, _, _ := sel2.Faulty(r)
		fN, _, _ := selN.Faulty(r)
		if f2 != fN {
			t.Errorf("replica %d fault state differs", r)
		}
	}
}
