package ft

import (
	"fmt"
	"strings"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/kpn"
	"ftpn/internal/scc"
)

// BuildConfig parameterizes the duplication transform. All maps are
// keyed by channel name of the reference network; entries are optional —
// missing capacities default to the reference channel's Capacity on both
// sides and missing initial fills to its InitialTokens.
type BuildConfig struct {
	// ReplicatorCaps gives (|R_1|, |R_2|) for each producer→critical
	// channel (eq. 3).
	ReplicatorCaps map[string][2]int
	// ReplicatorD gives the read-divergence threshold for a replicator;
	// 0 or missing disables it.
	ReplicatorD map[string]int64
	// SelectorCaps gives (|S_1|, |S_2|) for each critical→consumer
	// channel.
	SelectorCaps map[string][2]int
	// SelectorInits gives (|S_1|_0, |S_2|_0), the initial tokens of
	// eq. 4.
	SelectorInits map[string][2]int
	// SelectorD gives the divergence threshold D of eq. 5; 0 or missing
	// disables divergence detection on that selector.
	SelectorD map[string]int64
	// SelectorPreload optionally generates real payloads for the
	// initially queued tokens.
	SelectorPreload map[string]func(i int) kpn.Token

	// Policy selects the detection policy instantiated on every
	// arbitration channel (one stateful instance per channel). The zero
	// value keeps the paper's inline first-violation path bit-for-bit.
	Policy PolicySpec
	// ValueCheck installs replay-based value cross-checks on selector
	// channels, keyed by channel name (see Selector.SetValueCheck).
	ValueCheck map[string]ValueCheck

	// Chip, when non-nil, places every process on its own SCC tile and
	// charges message-passing latency on inter-tile channel operations.
	// The replicator is hosted on the producer's tile and the selector
	// on the consumer's tile (both run on reliable hardware, §2).
	Chip *scc.Chip

	// OnFault, when non-nil, additionally receives every detection
	// event (they are always collected in System.Faults).
	OnFault FaultHandler
}

// System is an instantiated duplicated process network: the reference
// network's critical subnetwork cloned into two diversified replicas,
// joined by replicator and selector channels per Figure 1.
type System struct {
	K           *des.Kernel
	Net         *kpn.Network
	Replicators map[string]*Replicator
	Selectors   map[string]*Selector
	// FIFOs holds the per-replica internal channels, keyed "name#1",
	// "name#2", plus any channels between non-critical processes.
	FIFOs map[string]*kpn.FIFO
	// Switches are the per-replica fault injectors (index 0 = R_1).
	Switches [2]*fault.Switch
	// Cores maps instantiated process names to their SCC cores when a
	// chip was configured.
	Cores map[string]*scc.Core
	// Faults records every detection event in order.
	Faults []Fault

	faultHooks []FaultHandler
}

// AddFaultHook registers an additional observer of detection events
// after Build; recovery managers use it to react to convictions.
func (sys *System) AddFaultHook(fn FaultHandler) {
	sys.faultHooks = append(sys.faultHooks, fn)
}

// Build instantiates the duplicated network for the given reference
// network onto the kernel. The reference network must have at least one
// critical process; channels are transformed by the roles of their
// endpoints: non-critical→critical becomes a replicator,
// critical→non-critical a selector, critical→critical a per-replica
// FIFO pair, and non-critical→non-critical stays a plain FIFO.
func Build(k *des.Kernel, net *kpn.Network, cfg BuildConfig) (*System, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	roles := make(map[string]kpn.Role)
	numCritical := 0
	for _, p := range net.Procs {
		roles[p.Name] = p.Role
		if p.Role == kpn.RoleCritical {
			numCritical++
		}
	}
	if numCritical == 0 {
		return nil, fmt.Errorf("ft: network %q has no critical subnetwork to duplicate", net.Name)
	}
	for _, c := range net.Chans {
		if roles[c.From] == kpn.RoleCritical && roles[c.To] != kpn.RoleCritical && roles[c.To] != kpn.RoleConsumer {
			return nil, fmt.Errorf("ft: channel %q leaves the critical subnetwork into role %s; only consumers may read replica outputs",
				c.Name, roles[c.To])
		}
	}

	sys := &System{
		K:           k,
		Net:         net,
		Replicators: make(map[string]*Replicator),
		Selectors:   make(map[string]*Selector),
		FIFOs:       make(map[string]*kpn.FIFO),
		Cores:       make(map[string]*scc.Core),
	}
	sys.Switches[0] = fault.NewSwitch(k)
	sys.Switches[1] = fault.NewSwitch(k)
	// Validate the policy spec once; instantiation below is per channel
	// (policies are stateful sliding windows).
	if _, err := NewPolicy(cfg.Policy); err != nil {
		return nil, err
	}
	newPolicy := func() Policy {
		p, _ := NewPolicy(cfg.Policy)
		return p
	}
	record := func(f Fault) {
		sys.Faults = append(sys.Faults, f)
		if cfg.OnFault != nil {
			cfg.OnFault(f)
		}
		for _, fn := range sys.faultHooks {
			fn(f)
		}
	}

	// Placement: non-critical processes in declaration order, then the
	// two replica copies of each critical process.
	var placedNames []string
	for _, p := range net.Procs {
		if p.Role == kpn.RoleCritical {
			placedNames = append(placedNames, p.Name+"#1", p.Name+"#2")
		} else {
			placedNames = append(placedNames, p.Name)
		}
	}
	if cfg.Chip != nil {
		cores, err := cfg.Chip.MapPipeline(len(placedNames))
		if err != nil {
			return nil, err
		}
		for i, n := range placedNames {
			sys.Cores[n] = cores[i]
		}
	}

	// Channels.
	for _, c := range net.Chans {
		fromCrit := roles[c.From] == kpn.RoleCritical
		toCrit := roles[c.To] == kpn.RoleCritical
		switch {
		case !fromCrit && toCrit: // replicator
			caps, ok := cfg.ReplicatorCaps[c.Name]
			if !ok {
				caps = [2]int{c.Capacity, c.Capacity}
			}
			r := NewReplicator(k, c.Name, caps, record)
			if d, ok := cfg.ReplicatorD[c.Name]; ok {
				r.DReads = d
			}
			r.SetPolicy(newPolicy())
			sys.Replicators[c.Name] = r
		case fromCrit && !toCrit: // selector
			caps, ok := cfg.SelectorCaps[c.Name]
			if !ok {
				caps = [2]int{c.Capacity, c.Capacity}
			}
			inits, ok := cfg.SelectorInits[c.Name]
			if !ok {
				inits = [2]int{c.InitialTokens, c.InitialTokens}
			}
			s := NewSelector(k, c.Name, caps, inits, cfg.SelectorD[c.Name], cfg.SelectorPreload[c.Name], record)
			s.SetPolicy(newPolicy())
			if vc := cfg.ValueCheck[c.Name]; vc != nil {
				s.SetValueCheck(vc)
			}
			sys.Selectors[c.Name] = s
		case fromCrit && toCrit: // duplicated internal FIFO
			for r := 1; r <= 2; r++ {
				name := fmt.Sprintf("%s#%d", c.Name, r)
				f := kpn.NewFIFO(k, name, c.Capacity)
				if c.InitialTokens > 0 {
					toks := make([]kpn.Token, c.InitialTokens)
					for i := range toks {
						toks[i] = kpn.Token{Seq: int64(i) - int64(c.InitialTokens) + 1}
					}
					f.Preload(toks)
				}
				sys.FIFOs[name] = f
			}
		default: // plain channel between reliable processes
			f := kpn.NewFIFO(k, c.Name, c.Capacity)
			sys.FIFOs[c.Name] = f
		}
	}

	// Processes.
	for _, ps := range net.Procs {
		if ps.Role == kpn.RoleCritical {
			for r := 1; r <= 2; r++ {
				if err := sys.spawnCritical(net, ps, r, cfg); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := sys.spawnReliable(net, ps, cfg); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// spawnCritical instantiates replica r (1 or 2) of a critical process,
// gating its boundary ports with the replica's fault switch.
func (sys *System) spawnCritical(net *kpn.Network, ps kpn.ProcessSpec, r int, cfg BuildConfig) error {
	name := fmt.Sprintf("%s#%d", ps.Name, r)
	sw := sys.Switches[r-1]
	core := sys.Cores[name]

	var ins []kpn.ReadPort
	for _, c := range net.Inputs(ps.Name) {
		if rep, ok := sys.Replicators[c.Name]; ok {
			port := rep.ReaderPort(r)
			if cfg.Chip != nil {
				// The replicator lives on the producer's tile.
				host := sys.Cores[c.From]
				port = kpn.WithReadTransfer(port, cfg.Chip, host, core, c.TokenBytes)
			}
			ins = append(ins, fault.GateRead(port, sw))
			continue
		}
		f, ok := sys.FIFOs[fmt.Sprintf("%s#%d", c.Name, r)]
		if !ok {
			return fmt.Errorf("ft: internal channel %s#%d missing", c.Name, r)
		}
		ins = append(ins, f) // internal reads stay ungated: faults hit interfaces
	}

	var outs []kpn.WritePort
	for _, c := range net.Outputs(ps.Name) {
		if sel, ok := sys.Selectors[c.Name]; ok {
			var port kpn.WritePort = sel.WriterPort(r)
			if cfg.Chip != nil {
				// The selector lives on the consumer's tile.
				host := sys.Cores[c.To]
				port = kpn.WithTransfer(port, cfg.Chip, core, host, c.TokenBytes)
			}
			outs = append(outs, fault.GateWrite(port, sw))
			continue
		}
		f, ok := sys.FIFOs[fmt.Sprintf("%s#%d", c.Name, r)]
		if !ok {
			return fmt.Errorf("ft: internal channel %s#%d missing", c.Name, r)
		}
		var port kpn.WritePort = f
		if cfg.Chip != nil {
			port = kpn.WithTransfer(port, cfg.Chip, core, sys.Cores[fmt.Sprintf("%s#%d", c.To, r)], c.TokenBytes)
		}
		outs = append(outs, port)
	}

	behavior := ps.New(r)
	sys.K.Spawn(name, 0, func(p *des.Proc) { behavior(p, ins, outs) })
	return nil
}

// spawnReliable instantiates a producer or consumer process once,
// binding producer outputs to replicator write ports and consumer inputs
// to selector read ports.
func (sys *System) spawnReliable(net *kpn.Network, ps kpn.ProcessSpec, cfg BuildConfig) error {
	core := sys.Cores[ps.Name]
	var ins []kpn.ReadPort
	for _, c := range net.Inputs(ps.Name) {
		if sel, ok := sys.Selectors[c.Name]; ok {
			// Selector is hosted on this consumer's tile: local read.
			ins = append(ins, sel.ReaderPort())
			continue
		}
		f, ok := sys.FIFOs[c.Name]
		if !ok {
			return fmt.Errorf("ft: channel %q missing for process %q", c.Name, ps.Name)
		}
		ins = append(ins, f)
	}
	var outs []kpn.WritePort
	for _, c := range net.Outputs(ps.Name) {
		if rep, ok := sys.Replicators[c.Name]; ok {
			// Replicator is hosted on this producer's tile: local write.
			outs = append(outs, rep.WriterPort())
			continue
		}
		f, ok := sys.FIFOs[c.Name]
		if !ok {
			return fmt.Errorf("ft: channel %q missing for process %q", c.Name, ps.Name)
		}
		var port kpn.WritePort = f
		if cfg.Chip != nil {
			// The reader of a plain channel is always non-critical here:
			// writes into the critical subnetwork go through replicators.
			port = kpn.WithTransfer(port, cfg.Chip, core, sys.Cores[c.To], c.TokenBytes)
		}
		outs = append(outs, port)
	}
	behavior := ps.New(0)
	sys.K.Spawn(ps.Name, 0, func(p *des.Proc) { behavior(p, ins, outs) })
	return nil
}

// InjectFault schedules a timing fault on replica r (1-based) at virtual
// time t. extraUs applies to fault.Degrade only.
func (sys *System) InjectFault(replica int, t des.Time, mode fault.Mode, extraUs des.Time) {
	if replica < 1 || replica > 2 {
		panic(fmt.Sprintf("ft: replica %d out of range {1,2}", replica))
	}
	sys.Switches[replica-1].InjectAt(t, mode, extraUs)
}

// FirstFault returns the earliest detection event for replica r
// (1-based) across all channels, and whether one exists.
func (sys *System) FirstFault(replica int) (Fault, bool) {
	for _, f := range sys.Faults {
		if f.Replica == replica {
			return f, true
		}
	}
	return Fault{}, false
}

// FalsePositives returns detection events for replicas that never had a
// fault injected.
func (sys *System) FalsePositives() []Fault {
	var out []Fault
	for _, f := range sys.Faults {
		if _, injected := sys.Switches[f.Replica-1].InjectedAt(); !injected {
			out = append(out, f)
		}
	}
	return out
}

// DOT renders the duplicated topology (the lower half of the paper's
// Figure 1) as a Graphviz digraph.
func (sys *System) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", sys.Net.Name+"-duplicated")
	roles := make(map[string]kpn.Role)
	for _, p := range sys.Net.Procs {
		roles[p.Name] = p.Role
		if p.Role == kpn.RoleCritical {
			fmt.Fprintf(&b, "  %q [shape=ellipse];\n  %q [shape=ellipse];\n", p.Name+"#1", p.Name+"#2")
		} else {
			fmt.Fprintf(&b, "  %q [shape=box];\n", p.Name)
		}
	}
	for _, c := range sys.Net.Chans {
		fromCrit := roles[c.From] == kpn.RoleCritical
		toCrit := roles[c.To] == kpn.RoleCritical
		switch {
		case !fromCrit && toCrit:
			fmt.Fprintf(&b, "  %q [shape=diamond,label=\"replicator %s\"];\n", c.Name, c.Name)
			fmt.Fprintf(&b, "  %q -> %q;\n  %q -> %q;\n  %q -> %q;\n",
				c.From, c.Name, c.Name, c.To+"#1", c.Name, c.To+"#2")
		case fromCrit && !toCrit:
			fmt.Fprintf(&b, "  %q [shape=diamond,label=\"selector %s\"];\n", c.Name, c.Name)
			fmt.Fprintf(&b, "  %q -> %q;\n  %q -> %q;\n  %q -> %q;\n",
				c.From+"#1", c.Name, c.From+"#2", c.Name, c.Name, c.To)
		case fromCrit && toCrit:
			fmt.Fprintf(&b, "  %q -> %q;\n  %q -> %q;\n",
				c.From+"#1", c.To+"#1", c.From+"#2", c.To+"#2")
		default:
			fmt.Fprintf(&b, "  %q -> %q;\n", c.From, c.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
