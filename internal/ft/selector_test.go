package ft

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestSelectorFirstOfPairQueuedLateDropped(t *testing.T) {
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{4, 4}, [2]int{0, 0}, 0, nil, nil)
	w1, w2, r := s.WriterPort(1), s.WriterPort(2), s.ReaderPort()
	var got []int64
	k.Spawn("d", 0, func(p *des.Proc) {
		w1.Write(p, kpn.Token{Seq: 1, Payload: []byte{1}})
		w2.Write(p, kpn.Token{Seq: 1, Payload: []byte{1}}) // late duplicate: dropped
		w2.Write(p, kpn.Token{Seq: 2, Payload: []byte{2}}) // first of pair 2
		w1.Write(p, kpn.Token{Seq: 2, Payload: []byte{2}}) // late: dropped
		got = append(got, r.Read(p).Seq, r.Read(p).Seq)
	})
	k.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("consumer saw %v, want [1 2]", got)
	}
	if s.Drops(1) != 1 || s.Drops(2) != 1 {
		t.Errorf("drops = %d/%d, want 1/1", s.Drops(1), s.Drops(2))
	}
	if s.Fill() != 0 {
		t.Errorf("fill = %d, want 0", s.Fill())
	}
}

func TestSelectorTieGoesToCurrentWriter(t *testing.T) {
	// With equal write counts, the next writer is first of a new pair.
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{4, 4}, [2]int{0, 0}, 0, nil, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		s.WriterPort(2).Write(p, kpn.Token{Seq: 1})
	})
	k.Run(0)
	if s.Fill() != 1 {
		t.Errorf("fill = %d, want 1 (tie enqueues)", s.Fill())
	}
}

func TestSelectorIsolationLemma1(t *testing.T) {
	// Lemma 1: operations on interface 2 never change space_1. Fill the
	// FIFO from interface 2 far ahead; interface 1's space is untouched.
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 0, nil, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		before := s.Space(1)
		for i := int64(1); i <= 5; i++ {
			s.WriterPort(2).Write(p, kpn.Token{Seq: i})
		}
		if s.Space(1) != before {
			t.Errorf("space_1 changed from %d to %d by interface-2 writes", before, s.Space(1))
		}
		if s.Space(2) != 3 {
			t.Errorf("space_2 = %d, want 3", s.Space(2))
		}
		// A read increments both.
		s.ReaderPort().Read(p)
		if s.Space(1) != before+1 || s.Space(2) != 4 {
			t.Errorf("after read: spaces = %d/%d", s.Space(1), s.Space(2))
		}
	})
	k.Run(0)
}

func TestSelectorWriterBlocksOnOwnSpaceOnly(t *testing.T) {
	// Interface 1 exhausts its own space and blocks even though the
	// other interface still has space (back-pressure is per-replica).
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{2, 8}, [2]int{0, 0}, 0, nil, nil)
	var thirdWriteAt des.Time = -1
	k.Spawn("w1", 0, func(p *des.Proc) {
		s.WriterPort(1).Write(p, kpn.Token{Seq: 1})
		s.WriterPort(1).Write(p, kpn.Token{Seq: 2})
		s.WriterPort(1).Write(p, kpn.Token{Seq: 3}) // blocks: space_1 = 0
		thirdWriteAt = p.Now()
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		p.Delay(100)
		s.ReaderPort().Read(p)
	})
	k.Run(0)
	k.Shutdown()
	if thirdWriteAt != 100 {
		t.Errorf("third write completed at %d, want 100 (blocked on space_1)", thirdWriteAt)
	}
}

func TestSelectorInitialTokens(t *testing.T) {
	// inits (2,3): fill starts at 3, space_k = cap_k - init_k.
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{4, 6}, [2]int{2, 3}, 0, nil, nil)
	if s.Fill() != 3 {
		t.Fatalf("initial fill = %d, want 3", s.Fill())
	}
	if s.Space(1) != 2 || s.Space(2) != 3 {
		t.Fatalf("initial spaces = %d/%d, want 2/3", s.Space(1), s.Space(2))
	}
	// Preloaded tokens have non-positive Seq.
	var seqs []int64
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			seqs = append(seqs, s.ReaderPort().Read(p).Seq)
		}
	})
	k.Run(0)
	for _, q := range seqs {
		if q > 0 {
			t.Errorf("preloaded token has positive seq %d", q)
		}
	}
}

func TestSelectorPreloadPayloads(t *testing.T) {
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{4, 4}, [2]int{2, 2}, 0, func(i int) kpn.Token {
		return kpn.Token{Seq: int64(i) - 1, Payload: []byte{byte(i)}}
	}, nil)
	var first kpn.Token
	k.Spawn("d", 0, func(p *des.Proc) { first = s.ReaderPort().Read(p) })
	k.Run(0)
	if len(first.Payload) != 1 || first.Payload[0] != 0 {
		t.Errorf("preload payload = %v", first.Payload)
	}
}

func TestSelectorDivergenceDetection(t *testing.T) {
	// D = 3: interface 1 writing 3 tokens ahead flags replica 2.
	k := des.NewKernel()
	var faults []Fault
	s := NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 3, nil, func(f Fault) { faults = append(faults, f) })
	k.Spawn("w1", 0, func(p *des.Proc) {
		for i := int64(1); i <= 3; i++ {
			p.Delay(10)
			s.WriterPort(1).Write(p, kpn.Token{Seq: i})
		}
	})
	k.Run(0)
	if len(faults) != 1 {
		t.Fatalf("faults = %v, want exactly one", faults)
	}
	f := faults[0]
	if f.Replica != 2 || f.Reason != ReasonDivergence || f.At != 30 {
		t.Errorf("fault = %+v, want replica 2 divergence at t=30", f)
	}
	if ok, at, reason := s.Faulty(2); !ok || at != 30 || reason != ReasonDivergence {
		t.Errorf("Faulty(2) = %v %d %s", ok, at, reason)
	}
	if ok, _, _ := s.Faulty(1); ok {
		t.Error("replica 1 must stay healthy")
	}
}

func TestSelectorDivergenceBelowThresholdSilent(t *testing.T) {
	k := des.NewKernel()
	var faults []Fault
	s := NewSelector(k, "S", [2]int{8, 8}, [2]int{0, 0}, 3, nil, func(f Fault) { faults = append(faults, f) })
	k.Spawn("d", 0, func(p *des.Proc) {
		s.WriterPort(1).Write(p, kpn.Token{Seq: 1})
		s.WriterPort(1).Write(p, kpn.Token{Seq: 2}) // lead = 2 < D
		s.WriterPort(2).Write(p, kpn.Token{Seq: 1})
		s.WriterPort(2).Write(p, kpn.Token{Seq: 2})
	})
	k.Run(0)
	if len(faults) != 0 {
		t.Errorf("unexpected faults: %v", faults)
	}
}

func TestSelectorConsumerStallDetection(t *testing.T) {
	// Replica 2 never writes; replica 1 keeps the consumer fed. Once
	// consumer reads push space_2 past |S_2|, replica 2 is flagged.
	k := des.NewKernel()
	var faults []Fault
	s := NewSelector(k, "S", [2]int{4, 4}, [2]int{0, 0}, 0, nil, func(f Fault) { faults = append(faults, f) })
	k.Spawn("w1", 0, func(p *des.Proc) {
		for i := int64(1); i <= 6; i++ {
			s.WriterPort(1).Write(p, kpn.Token{Seq: i})
			p.Delay(10)
		}
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		for i := 0; i < 6; i++ {
			p.Delay(10)
			s.ReaderPort().Read(p)
		}
	})
	k.Run(0)
	k.Shutdown()
	if len(faults) == 0 {
		t.Fatal("consumer-stall fault not detected")
	}
	if faults[0].Replica != 2 || faults[0].Reason != ReasonConsumerStall {
		t.Errorf("fault = %+v, want replica 2 consumer-stall", faults[0])
	}
	// With no initial tokens and no writes from interface 2, the very
	// first read pushes space_2 past |S_2|: detected at the first read.
	if faults[0].At != 10 {
		t.Errorf("detected at %d, want 10", faults[0].At)
	}
}

func TestSelectorMaxFillTracking(t *testing.T) {
	k := des.NewKernel()
	s := NewSelector(k, "S", [2]int{6, 6}, [2]int{0, 0}, 0, nil, nil)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 4; i++ {
			s.WriterPort(1).Write(p, kpn.Token{Seq: i})
		}
		s.ReaderPort().Read(p)
	})
	k.Run(0)
	if s.MaxFill() != 4 {
		t.Errorf("MaxFill = %d, want 4", s.MaxFill())
	}
	if s.Reads() != 1 || s.Writes(1) != 4 || s.Writes(2) != 0 {
		t.Errorf("counters reads=%d w1=%d w2=%d", s.Reads(), s.Writes(1), s.Writes(2))
	}
}

func TestSelectorValidation(t *testing.T) {
	k := des.NewKernel()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero cap", func() { NewSelector(k, "S", [2]int{0, 4}, [2]int{0, 0}, 0, nil, nil) })
	mustPanic("init over cap", func() { NewSelector(k, "S", [2]int{4, 4}, [2]int{5, 0}, 0, nil, nil) })
	mustPanic("negative init", func() { NewSelector(k, "S", [2]int{4, 4}, [2]int{-1, 0}, 0, nil, nil) })
	mustPanic("negative D", func() { NewSelector(k, "S", [2]int{4, 4}, [2]int{0, 0}, -1, nil, nil) })
	s := NewSelector(k, "S", [2]int{4, 4}, [2]int{0, 0}, 0, nil, nil)
	mustPanic("bad writer", func() { s.WriterPort(3) })
	mustPanic("bad faulty", func() { s.Faulty(0) })
}

func TestSelectorPortNames(t *testing.T) {
	k := des.NewKernel()
	s := NewSelector(k, "sel", [2]int{2, 2}, [2]int{0, 0}, 0, nil, nil)
	if s.WriterPort(1).PortName() != "sel.w1" || s.WriterPort(2).PortName() != "sel.w2" ||
		s.ReaderPort().PortName() != "sel.r" || s.Name() != "sel" {
		t.Error("port names wrong")
	}
}
