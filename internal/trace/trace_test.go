package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestStatsBasics(t *testing.T) {
	var s Stats
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Count() != 0 {
		t.Error("empty stats must report zeros")
	}
	for _, v := range []int64{5, 3, 9, 7} {
		s.Add(v)
	}
	if s.Min() != 3 || s.Max() != 9 || s.Count() != 4 {
		t.Errorf("min/max/count = %d/%d/%d", s.Min(), s.Max(), s.Count())
	}
	if s.Mean() != 6 {
		t.Errorf("mean = %d, want 6", s.Mean())
	}
}

func TestStatsMeanRounds(t *testing.T) {
	var s Stats
	s.Add(1)
	s.Add(2) // mean 1.5 -> rounds to 2
	if s.Mean() != 2 {
		t.Errorf("mean = %d, want 2 (rounded)", s.Mean())
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b, c Stats
	a.Add(10)
	a.Add(20)
	b.Add(5)
	b.Add(25)
	a.Merge(&b)
	if a.Min() != 5 || a.Max() != 25 || a.Count() != 4 || a.Mean() != 15 {
		t.Errorf("merged = %s", a.String())
	}
	a.Merge(&c) // merging empty is a no-op
	if a.Count() != 4 {
		t.Error("merging empty changed count")
	}
	c.Merge(&a) // merging into empty adopts
	if c.Min() != 5 || c.Max() != 25 {
		t.Errorf("empty.Merge = %s", c.String())
	}
}

func TestStatsMergeEqualsBulkAdd(t *testing.T) {
	prop := func(xs []int16, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		cut := int(split) % len(xs)
		var all, a, b Stats
		for _, x := range xs {
			all.Add(int64(x))
		}
		for _, x := range xs[:cut] {
			a.Add(int64(x))
		}
		for _, x := range xs[cut:] {
			b.Add(int64(x))
		}
		a.Merge(&b)
		return a.Min() == all.Min() && a.Max() == all.Max() &&
			a.Mean() == all.Mean() && a.Count() == all.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatsReservoirPercentiles(t *testing.T) {
	// 4x the retention cap of a linear ramp: the old retention policy
	// kept only the first 65536 samples, so p50 of [1..4*65536] came out
	// near 32768 instead of ~131072. The reservoir estimate must land
	// within a few percent of the true percentile.
	const n = 4 * maxRetained
	var s Stats
	for v := int64(1); v <= n; v++ {
		s.Add(v)
	}
	if s.Count() != n || s.Min() != 1 || s.Max() != n {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count(), s.Min(), s.Max())
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got := float64(s.Percentile(p))
		want := p / 100 * n
		if diff := (got - want) / n; diff < -0.02 || diff > 0.02 {
			t.Errorf("p%.0f = %.0f, want %.0f +/- 2%% of range", p, got, want)
		}
	}
	// Determinism: an identical stream yields identical percentiles.
	var s2 Stats
	for v := int64(1); v <= n; v++ {
		s2.Add(v)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		if s.Percentile(p) != s2.Percentile(p) {
			t.Fatalf("p%.0f differs across identical runs: %d vs %d",
				p, s.Percentile(p), s2.Percentile(p))
		}
	}
}

func TestStatsMergeOverflowedReservoirs(t *testing.T) {
	// a represents 3x as many samples as b and draws them from a
	// disjoint, higher range; the merged reservoir must reflect the 3:1
	// weighting (p50 falls in a's range, p10 in b's).
	var a, b Stats
	for v := int64(1); v <= 3*maxRetained; v++ {
		a.Add(1_000_000 + v)
	}
	for v := int64(1); v <= maxRetained; v++ {
		b.Add(v)
	}
	a.Merge(&b)
	if a.Count() != 4*maxRetained {
		t.Fatalf("count = %d", a.Count())
	}
	if got := a.Percentile(10); got > maxRetained {
		t.Errorf("p10 = %d, want within b's range (<= %d)", got, maxRetained)
	}
	if got := a.Percentile(50); got < 1_000_000 {
		t.Errorf("p50 = %d, want within a's range (>= 1000000)", got)
	}
	// The b-side share of the reservoir tracks its 25% share of the
	// underlying stream.
	low := 0
	for _, v := range a.samples {
		if v <= maxRetained {
			low++
		}
	}
	frac := float64(low) / float64(len(a.samples))
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("b's reservoir share = %.3f, want ~0.25", frac)
	}
}

func TestArrivals(t *testing.T) {
	var a Arrivals
	for _, at := range []des.Time{0, 100, 230, 330} {
		a.Record(at)
	}
	if a.Count() != 4 || len(a.Times()) != 4 {
		t.Fatalf("count = %d", a.Count())
	}
	s := a.Inter(0)
	if s.Min() != 100 || s.Max() != 130 || s.Count() != 3 {
		t.Errorf("inter = %s", s.String())
	}
	// Skipping the warm-up gap.
	s2 := a.Inter(1)
	if s2.Count() != 2 || s2.Max() != 130 {
		t.Errorf("inter(skip=1) = %s", s2.String())
	}
}

func TestFillTracker(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 8)
	tr := NewFillTracker("c", 4)
	f.Observe(tr)
	k.Spawn("d", 0, func(p *des.Proc) {
		for i := int64(1); i <= 6; i++ {
			f.Write(p, kpn.Token{Seq: i})
		}
		f.Read(p)
	})
	k.Run(0)
	if tr.MaxFill != 6 {
		t.Errorf("MaxFill = %d, want 6", tr.MaxFill)
	}
	if len(tr.History()) != 4 {
		t.Errorf("history kept %d samples, want cap 4", len(tr.History()))
	}
	// History disabled.
	tr2 := NewFillTracker("c", 0)
	tr2.OnWrite(0, kpn.Token{}, 3)
	tr2.OnRead(1, kpn.Token{}, 2)
	if tr2.MaxFill != 3 || len(tr2.History()) != 0 {
		t.Errorf("no-history tracker: max=%d len=%d", tr2.MaxFill, len(tr2.History()))
	}
}

func TestStatsPercentiles(t *testing.T) {
	var s Stats
	if s.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
	for v := int64(1); v <= 100; v++ {
		s.Add(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}, {150, 100}, {-1, 0}}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("p%.0f = %d, want %d", c.p, got, c.want)
		}
	}
	// Percentiles survive a merge.
	var a, b Stats
	for v := int64(1); v <= 50; v++ {
		a.Add(v)
	}
	for v := int64(51); v <= 100; v++ {
		b.Add(v)
	}
	a.Merge(&b)
	if got := a.Percentile(90); got != 90 {
		t.Errorf("merged p90 = %d, want 90", got)
	}
}

// TestStatsMergePooledPercentileProperty is the property test behind
// the campaign aggregators: for shard-partitioned sample sets that fit
// the reservoir, merging per-shard Stats in ANY order yields exactly
// the percentiles of the pooled stream, across many seeded partitions.
func TestStatsMergePooledPercentileProperty(t *testing.T) {
	quantiles := []float64{1, 10, 25, 50, 75, 90, 95, 99, 100}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nParts := 2 + rng.Intn(5)
		var pooled Stats
		parts := make([]Stats, nParts)
		total := 500 + rng.Intn(4000)
		for i := 0; i < total; i++ {
			v := int64(rng.Intn(1_000_000)) - 500_000
			pooled.Add(v)
			parts[rng.Intn(nParts)].Add(v)
		}

		mergeIn := func(order []int) *Stats {
			var acc Stats
			for _, i := range order {
				// Merge a copy: campaign workers own their shard Stats.
				p := parts[i]
				p.samples = append([]int64(nil), parts[i].samples...)
				acc.Merge(&p)
			}
			return &acc
		}
		fwd := make([]int, nParts)
		rev := make([]int, nParts)
		for i := range fwd {
			fwd[i] = i
			rev[i] = nParts - 1 - i
		}
		a, b := mergeIn(fwd), mergeIn(rev)

		for _, m := range []*Stats{a, b} {
			if m.Count() != pooled.Count() || m.Min() != pooled.Min() ||
				m.Max() != pooled.Max() || m.Mean() != pooled.Mean() {
				t.Fatalf("seed %d: merged moments diverge: %v vs pooled %v", seed, m, &pooled)
			}
		}
		for _, q := range quantiles {
			want := pooled.Percentile(q)
			if got := a.Percentile(q); got != want {
				t.Fatalf("seed %d: p%.0f forward-merge = %d, pooled = %d", seed, q, got, want)
			}
			if got := b.Percentile(q); got != want {
				t.Fatalf("seed %d: p%.0f reverse-merge = %d, pooled = %d", seed, q, got, want)
			}
		}
	}
}

// TestStatsMergeOverflowPercentileTolerance: once the pooled stream
// exceeds the reservoir, merged percentiles are estimates — check they
// stay within a small relative band of the exact pooled value on a
// uniform stream, for several seeds.
func TestStatsMergeOverflowPercentileTolerance(t *testing.T) {
	const span = 1_000_000
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var a, b Stats
		total := maxRetained + maxRetained/2
		for i := 0; i < total; i++ {
			v := int64(rng.Intn(span))
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		if a.Count() != int64(total) {
			t.Fatalf("seed %d: merged count = %d, want %d", seed, a.Count(), total)
		}
		if len(a.samples) > maxRetained {
			t.Fatalf("seed %d: reservoir overflowed cap: %d", seed, len(a.samples))
		}
		for _, q := range []float64{25, 50, 75, 90, 99} {
			got := float64(a.Percentile(q))
			want := q / 100 * span // exact quantile of U[0,span)
			if diff := math.Abs(got - want); diff > 0.02*span {
				t.Fatalf("seed %d: p%.0f = %.0f, want ~%.0f (|diff| %.0f > 2%% of span)",
					seed, q, got, want, diff)
			}
		}
	}
}
