// Package trace collects the measurements the paper's evaluation
// reports: min/max/mean statistics (fault-detection latencies, decoded
// inter-frame timings), arrival-time recordings, and FIFO fill tracking
// via the kpn.Observer interface.
package trace

import (
	"fmt"
	"math"
	"sort"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Stats accumulates int64 samples and reports min/max/mean (the summary
// format of Tables 2 and 3) plus percentiles over a retained sample set.
//
// Count, Min, Max and Mean are always exact. Percentiles are computed
// over a retained set of at most maxRetained samples: exact while the
// stream fits, and a uniform random subset (reservoir sampling,
// Algorithm R with a deterministic seed) once it does not — every
// sample of the stream has equal probability maxRetained/n of being
// retained, so the nearest-rank percentile over the reservoir is a
// consistent estimator of the stream percentile with standard error
// O(1/sqrt(maxRetained)). Runs are bit-reproducible: the generator is
// seeded identically for every Stats value.
type Stats struct {
	n        int64
	sum      int64
	min, max int64
	samples  []int64
	rng      uint64 // splitmix64 state; zero value = the deterministic seed
}

// maxRetained caps the per-Stats sample memory; most experiments in
// this repository stay below it, making percentiles exact.
const maxRetained = 1 << 16

// rand64 steps the deterministic splitmix64 generator.
func (s *Stats) rand64() uint64 {
	s.rng += 0x9E3779B97F4A7C15
	z := s.rng
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Add records one sample.
func (s *Stats) Add(v int64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	if len(s.samples) < maxRetained {
		s.samples = append(s.samples, v)
		return
	}
	// Algorithm R: the i-th sample (1-based, i = s.n) replaces a random
	// reservoir slot with probability maxRetained/i, keeping retention
	// uniform over the whole stream. The modulo bias is at most
	// maxRetained/2^64 per draw — far below the estimator's own error.
	if j := s.rand64() % uint64(s.n); j < maxRetained {
		s.samples[j] = v
	}
}

// Count returns the number of samples.
func (s *Stats) Count() int64 { return s.n }

// Min returns the smallest sample (0 when empty).
func (s *Stats) Min() int64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Stats) Max() int64 { return s.max }

// Mean returns the rounded mean sample (0 when empty).
func (s *Stats) Mean() int64 {
	if s.n == 0 {
		return 0
	}
	return (s.sum + s.n/2) / s.n
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method over the retained samples; 0 when empty. Exact
// while Count() <= maxRetained; for longer streams it is a reservoir
// estimate — see the Stats doc for the estimator's properties.
func (s *Stats) Percentile(p float64) int64 {
	if len(s.samples) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]int64(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Merge folds other's samples into s. Count/min/max/sum merge exactly.
// When the combined retained sets fit under maxRetained they are
// concatenated (so merging never-truncated Stats stays exact);
// otherwise each side contributes reservoir slots in proportion to the
// number of underlying samples it represents, chosen by a deterministic
// partial Fisher-Yates shuffle, keeping retention approximately uniform
// over the combined stream.
func (s *Stats) Merge(other *Stats) {
	if other.n == 0 {
		return
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.n == 0 || other.max > s.max {
		s.max = other.max
	}
	nS, nO := s.n, other.n
	s.n += other.n
	s.sum += other.sum
	if len(s.samples)+len(other.samples) <= maxRetained {
		s.samples = append(s.samples, other.samples...)
		return
	}
	kS := int(int64(maxRetained) * nS / (nS + nO))
	kO := maxRetained - kS
	if kO > len(other.samples) {
		kO = len(other.samples)
	}
	if kS > len(s.samples) || kS+kO < maxRetained {
		kS = maxRetained - kO
		if kS > len(s.samples) {
			kS = len(s.samples)
		}
	}
	s.samples = s.subsample(s.samples, kS)
	s.samples = append(s.samples, s.subsample(append([]int64(nil), other.samples...), kO)...)
}

// subsample returns k elements of v chosen uniformly without
// replacement (partial Fisher-Yates driven by s's generator). v is
// permuted in place.
func (s *Stats) subsample(v []int64, k int) []int64 {
	for i := 0; i < k; i++ {
		j := i + int(s.rand64()%uint64(len(v)-i))
		v[i], v[j] = v[j], v[i]
	}
	return v[:k]
}

// String renders "min/max/mean" in the unit of the samples.
func (s *Stats) String() string {
	return fmt.Sprintf("min=%d max=%d mean=%d (n=%d)", s.Min(), s.Max(), s.Mean(), s.Count())
}

// Arrivals records a sequence of arrival instants and summarizes the
// inter-arrival gaps (the paper's "Decoded Inter-Frame Timings").
type Arrivals struct {
	times []des.Time
}

// Record appends one arrival instant (must be called in order).
func (a *Arrivals) Record(now des.Time) { a.times = append(a.times, now) }

// Count returns the number of recorded arrivals.
func (a *Arrivals) Count() int { return len(a.times) }

// Times returns the recorded instants.
func (a *Arrivals) Times() []des.Time { return a.times }

// Inter summarizes the gaps between consecutive arrivals, skipping the
// first `skip` gaps (warm-up transient).
func (a *Arrivals) Inter(skip int) *Stats {
	s := &Stats{}
	for i := skip + 1; i < len(a.times); i++ {
		s.Add(a.times[i] - a.times[i-1])
	}
	return s
}

// FillTracker observes a FIFO and records its maximum fill plus a
// bounded history of (time, fill) samples for plotting.
type FillTracker struct {
	Name    string
	MaxFill int
	history []FillSample
	maxKeep int
}

// FillSample is one observed fill level.
type FillSample struct {
	At   des.Time
	Fill int
}

// NewFillTracker creates a tracker that keeps at most keep history
// samples (0 disables history).
func NewFillTracker(name string, keep int) *FillTracker {
	return &FillTracker{Name: name, maxKeep: keep}
}

// OnWrite implements kpn.Observer.
func (f *FillTracker) OnWrite(now des.Time, tok kpn.Token, fill int) { f.observe(now, fill) }

// OnRead implements kpn.Observer.
func (f *FillTracker) OnRead(now des.Time, tok kpn.Token, fill int) { f.observe(now, fill) }

func (f *FillTracker) observe(now des.Time, fill int) {
	if fill > f.MaxFill {
		f.MaxFill = fill
	}
	if f.maxKeep > 0 {
		if len(f.history) < f.maxKeep {
			f.history = append(f.history, FillSample{At: now, Fill: fill})
		}
	}
}

// History returns the recorded samples.
func (f *FillTracker) History() []FillSample { return f.history }

var _ kpn.Observer = (*FillTracker)(nil)
