// Package trace collects the measurements the paper's evaluation
// reports: min/max/mean statistics (fault-detection latencies, decoded
// inter-frame timings), arrival-time recordings, and FIFO fill tracking
// via the kpn.Observer interface.
package trace

import (
	"fmt"
	"math"
	"sort"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Stats accumulates int64 samples and reports min/max/mean (the summary
// format of Tables 2 and 3) plus percentiles over a retained sample set.
type Stats struct {
	n        int64
	sum      int64
	min, max int64
	samples  []int64
}

// maxRetained caps the per-Stats sample memory; experiments in this
// repository stay far below it.
const maxRetained = 1 << 16

// Add records one sample.
func (s *Stats) Add(v int64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	if len(s.samples) < maxRetained {
		s.samples = append(s.samples, v)
	}
}

// Count returns the number of samples.
func (s *Stats) Count() int64 { return s.n }

// Min returns the smallest sample (0 when empty).
func (s *Stats) Min() int64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Stats) Max() int64 { return s.max }

// Mean returns the rounded mean sample (0 when empty).
func (s *Stats) Mean() int64 {
	if s.n == 0 {
		return 0
	}
	return (s.sum + s.n/2) / s.n
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method over the retained samples; 0 when empty.
func (s *Stats) Percentile(p float64) int64 {
	if len(s.samples) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]int64(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Merge folds other's samples into s.
func (s *Stats) Merge(other *Stats) {
	if other.n == 0 {
		return
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.n == 0 || other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	room := maxRetained - len(s.samples)
	if room > len(other.samples) {
		room = len(other.samples)
	}
	s.samples = append(s.samples, other.samples[:room]...)
}

// String renders "min/max/mean" in the unit of the samples.
func (s *Stats) String() string {
	return fmt.Sprintf("min=%d max=%d mean=%d (n=%d)", s.Min(), s.Max(), s.Mean(), s.Count())
}

// Arrivals records a sequence of arrival instants and summarizes the
// inter-arrival gaps (the paper's "Decoded Inter-Frame Timings").
type Arrivals struct {
	times []des.Time
}

// Record appends one arrival instant (must be called in order).
func (a *Arrivals) Record(now des.Time) { a.times = append(a.times, now) }

// Count returns the number of recorded arrivals.
func (a *Arrivals) Count() int { return len(a.times) }

// Times returns the recorded instants.
func (a *Arrivals) Times() []des.Time { return a.times }

// Inter summarizes the gaps between consecutive arrivals, skipping the
// first `skip` gaps (warm-up transient).
func (a *Arrivals) Inter(skip int) *Stats {
	s := &Stats{}
	for i := skip + 1; i < len(a.times); i++ {
		s.Add(a.times[i] - a.times[i-1])
	}
	return s
}

// FillTracker observes a FIFO and records its maximum fill plus a
// bounded history of (time, fill) samples for plotting.
type FillTracker struct {
	Name    string
	MaxFill int
	history []FillSample
	maxKeep int
}

// FillSample is one observed fill level.
type FillSample struct {
	At   des.Time
	Fill int
}

// NewFillTracker creates a tracker that keeps at most keep history
// samples (0 disables history).
func NewFillTracker(name string, keep int) *FillTracker {
	return &FillTracker{Name: name, maxKeep: keep}
}

// OnWrite implements kpn.Observer.
func (f *FillTracker) OnWrite(now des.Time, tok kpn.Token, fill int) { f.observe(now, fill) }

// OnRead implements kpn.Observer.
func (f *FillTracker) OnRead(now des.Time, tok kpn.Token, fill int) { f.observe(now, fill) }

func (f *FillTracker) observe(now des.Time, fill int) {
	if fill > f.MaxFill {
		f.MaxFill = fill
	}
	if f.maxKeep > 0 {
		if len(f.history) < f.maxKeep {
			f.history = append(f.history, FillSample{At: now, Fill: fill})
		}
	}
}

// History returns the recorded samples.
func (f *FillTracker) History() []FillSample { return f.history }

var _ kpn.Observer = (*FillTracker)(nil)
