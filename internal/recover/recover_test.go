package recover

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/fault"
	"ftpn/internal/ft"
	"ftpn/internal/kpn"
	"ftpn/internal/obs"
	"ftpn/internal/rtc"
)

// testNet is a P -> W -> C network with one critical worker.
func testNet(tokens int64, sink *[]kpn.Token) *kpn.Network {
	return &kpn.Network{
		Name: "recover-net",
		Procs: []kpn.ProcessSpec{
			{Name: "P", Role: kpn.RoleProducer, New: func(int) kpn.Behavior {
				return kpn.Producer(rtc.PJD{Period: 1000}, 1, tokens, func(i int64) []byte {
					return []byte{byte(i)}
				})
			}},
			{Name: "W", Role: kpn.RoleCritical, New: func(replica int) kpn.Behavior {
				return kpn.Transform(kpn.WorkModel{BaseUs: 50, JitterUs: des.Time(replica) * 100}, 3, nil)
			}},
			{Name: "C", Role: kpn.RoleConsumer, New: func(int) kpn.Behavior {
				return kpn.Consumer(rtc.PJD{Period: 1000}, 4, tokens, func(now des.Time, tok kpn.Token) {
					if sink != nil {
						*sink = append(*sink, tok)
					}
				})
			}},
		},
		Chans: []kpn.ChannelSpec{
			{Name: "F_in", From: "P", To: "W", Capacity: 4, TokenBytes: 1},
			{Name: "F_out", From: "W", To: "C", Capacity: 8, InitialTokens: 2, TokenBytes: 1},
		},
	}
}

func buildSys(t *testing.T, tokens int64, sink *[]kpn.Token) (*des.Kernel, *ft.System) {
	t.Helper()
	k := des.NewKernel()
	sys, err := ft.Build(k, testNet(tokens, sink), ft.BuildConfig{
		ReplicatorD: map[string]int64{"F_in": 3},
		SelectorD:   map[string]int64{"F_out": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, sys
}

func TestManagerRecoversAndSecondFaultStaysConvicted(t *testing.T) {
	var sink []kpn.Token
	k, sys := buildSys(t, 300, &sink)
	m := NewManager(sys, Plan{Delay: 20_000, MaxRecoveries: 1})
	var recovered []Event
	m.OnRecovered = func(ev Event) { recovered = append(recovered, ev) }

	sys.InjectFault(2, 40_000, fault.StopAll, 0)
	sys.InjectFault(2, 150_000, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()

	if len(recovered) != 1 {
		t.Fatalf("recoveries = %d, want exactly 1 (MaxRecoveries)", len(recovered))
	}
	ev := recovered[0]
	if !ev.Complete || ev.Replica != 2 {
		t.Errorf("event = %+v, want complete recovery of replica 2", ev)
	}
	if ev.RecoveredAt != ev.DetectedAt+20_000 {
		t.Errorf("recovered at %d, want detection %d + delay 20000", ev.RecoveredAt, ev.DetectedAt)
	}
	// The second fault must be re-detected after recovery and, with the
	// recovery budget spent, stay convicted.
	second := false
	for _, f := range sys.Faults {
		if f.Replica == 2 && f.At >= 150_000 {
			second = true
		}
		if f.Replica == 1 {
			t.Errorf("healthy replica convicted: %v", f)
		}
	}
	if !second {
		t.Errorf("second fault not detected; faults: %v", sys.Faults)
	}
	if faulty, _, _ := sys.Selectors["F_out"].Faulty(2); !faulty {
		if faulty2, _, _ := sys.Replicators["F_in"].Faulty(2); !faulty2 {
			t.Error("replica 2 should stay convicted on some channel after the second fault")
		}
	}
	if got := len(m.Events()); got != 1 {
		t.Errorf("Events() = %d entries, want 1", got)
	}
	// Both inject/repair cycles are on the switch history.
	hist := sys.Switches[1].Injections()
	if len(hist) != 2 || !hist[0].Repaired || hist[1].Repaired {
		t.Errorf("injection history = %+v, want repaired first cycle and latched second", hist)
	}
}

func TestManagerCollapsesMultiChannelConvictions(t *testing.T) {
	var sink []kpn.Token
	k, sys := buildSys(t, 200, &sink)
	m := NewManager(sys, Plan{Delay: 15_000})
	sys.InjectFault(1, 30_000, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()

	// StopAll convicts at both the replicator and the selector; only one
	// recovery must result.
	if got := len(m.Events()); got != 1 {
		t.Fatalf("recoveries = %d, want 1 (multi-channel convictions collapsed)", got)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Errorf("invariants violated after recovery: %v", err)
	}
}

func TestPlanForDerivesBoundedFill(t *testing.T) {
	producer := rtc.PJD{Period: 1000, Jitter: 200}
	in := [2]rtc.PJD{
		{Period: 1000, Jitter: 2000},
		{Period: 1000, Jitter: 3000},
	}
	plan, err := PlanFor("F_in", producer, in, [2]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	fill, ok := plan.RepFill["F_in"]
	if !ok {
		t.Fatal("plan has no fill for F_in")
	}
	if fill < 0 || fill > 3 {
		t.Errorf("re-arm fill = %d, want within [0, cap-1] = [0, 3]", fill)
	}
}

func TestOnConvictedCarriesChannelState(t *testing.T) {
	var sink []kpn.Token
	k, sys := buildSys(t, 300, &sink)
	m := NewManager(sys, Plan{Delay: 20_000, MaxRecoveries: 1})
	reg := obs.NewRegistry()
	m.Observe(reg)
	var convs []Conviction
	m.OnConvicted = func(c Conviction) { convs = append(convs, c) }

	sys.InjectFault(2, 40_000, fault.StopAll, 0)
	sys.InjectFault(2, 150_000, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()

	if len(convs) != len(sys.Faults) {
		t.Fatalf("OnConvicted fired %d times, engine recorded %d faults", len(convs), len(sys.Faults))
	}
	first := convs[0]
	if first.Fault.Channel == "" || first.Fault.Replica != 2 || first.Fault.At == 0 {
		t.Errorf("conviction lacks attribution: %+v", first)
	}
	// A stop fault is caught either by queue-full (fill at capacity) or
	// divergence/stall (healthy side leading) — some state must be
	// non-trivial at conviction.
	if first.Fill == 0 && first.Divergence == 0 {
		t.Errorf("conviction carries no channel state: %+v", first)
	}
	if !first.RecoveryScheduled {
		t.Error("first conviction should schedule the recovery")
	}
	scheduled := 0
	for _, c := range convs {
		if c.RecoveryScheduled {
			scheduled++
		}
	}
	if scheduled != len(m.Events()) {
		t.Errorf("scheduled convictions = %d, completed recoveries = %d", scheduled, len(m.Events()))
	}

	// Metric identities: convictions metric == faults; recoveries
	// started == recoveries performed == scheduled convictions. Sum the
	// conviction series over the distinct label sets the run produced.
	var convTotal int64
	seen := map[string]bool{}
	for _, f := range sys.Faults {
		key := f.Channel + "|" + string(f.Reason)
		if seen[key] {
			continue
		}
		seen[key] = true
		convTotal += reg.Counter("ftpn_recover_convictions_total", "",
			obs.Labels{"channel": f.Channel, "replica": "2", "reason": string(f.Reason)}).Value()
	}
	if convTotal != int64(len(sys.Faults)) {
		t.Errorf("convictions metric = %d, want %d", convTotal, len(sys.Faults))
	}
	started := reg.Counter("ftpn_recover_recoveries_started_total", "", obs.Labels{"replica": "2"}).Value()
	if started != int64(scheduled) {
		t.Errorf("recoveries started metric = %d, want %d", started, scheduled)
	}
	if h := reg.Histogram("ftpn_recover_latency_us", "", nil, nil); h.Count() != int64(len(m.Events())) {
		t.Errorf("latency histogram count = %d, want %d", h.Count(), len(m.Events()))
	}
}

// TestManagerRecordsFlightChain closes the forensics loop end-to-end:
// with the flight recorder armed on the probes (ft.InstrumentFlight),
// the harness (inject event) and the manager (RecordFlight), obs.Explain
// must reconstruct the full injection → conviction → re-integration →
// recovery chain from the event log alone.
func TestManagerRecordsFlightChain(t *testing.T) {
	var sink []kpn.Token
	k, sys := buildSys(t, 300, &sink)
	m := NewManager(sys, Plan{Delay: 20_000, MaxRecoveries: 1})
	fr := obs.NewFlightRecorder(0)
	st := fr.Stream(0)
	ft.InstrumentFlight(sys, st)
	m.RecordFlight(st)

	const injectAt = 40_000
	st.Record(obs.FlightEvent{At: injectAt, Kind: obs.FlightInject, Reason: "stop-all", Replica: 2})
	sys.InjectFault(2, injectAt, fault.StopAll, 0)
	k.Run(0)
	k.Shutdown()

	if len(m.Events()) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(m.Events()))
	}
	rec := m.Events()[0]
	first := rec.Detection
	ex, ok := obs.Explain(fr.Events(), first.Channel, first.Replica, int64(first.At))
	if !ok {
		t.Fatal("conviction missing from the flight log")
	}
	if ex.FaultMode != "stop-all" || ex.InjectedAt != injectAt {
		t.Errorf("injection reconstructed as %q at %d, want stop-all at %d", ex.FaultMode, ex.InjectedAt, injectAt)
	}
	if want := int64(first.At - injectAt); ex.LatencyUs != want {
		t.Errorf("latency reconstructed as %d, want %d", ex.LatencyUs, want)
	}
	if ex.RecoveredAt != int64(rec.RecoveredAt) {
		t.Errorf("recovery reconstructed at %d, manager recorded %d", ex.RecoveredAt, rec.RecoveredAt)
	}
	if ex.ReintegratedAt < 0 {
		t.Error("re-integration probe missing from the chain")
	}
	// The recover event carries the detection→recovery latency in Aux.
	for _, ev := range ex.Chain {
		if ev.Kind == obs.FlightRecover {
			if want := int64(rec.RecoveredAt - rec.DetectedAt); ev.Aux != want {
				t.Errorf("recover event Aux = %d, want latency %d", ev.Aux, want)
			}
		}
	}
	// A nil stream stays a no-op.
	m2 := NewManager(sys, Plan{})
	m2.RecordFlight(nil)
}
