// Package recover closes the loop from fault detection back to fault
// tolerance. The paper's framework detects a timing fault and then
// permanently isolates the convicted replica, leaving the system
// unprotected against a second fault. A Manager subscribes to a
// duplicated system's detection events and, after a configurable repair
// delay (modelling replica restart or migration to a spare core),
// repairs the replica's fault switch and re-integrates it on every
// arbitration channel: stale tokens are drained, the replicator queue
// is re-armed at a safe fill derived from the rtc initial-fill solver
// (eq. 4), and the selector interface re-synchronizes its pair index
// and virtual space counter at the healthy write front. Full redundancy
// is restored and the next fault is tolerated again.
package recover

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/ft"
	"ftpn/internal/rtc"
)

// Plan parameterizes recoveries issued by a Manager.
type Plan struct {
	// Delay is the virtual time between a replica's first conviction
	// and its repair + re-integration (restart/relocation cost).
	Delay des.Time
	// Channels carries the per-channel re-arm parameters, normally
	// built with PlanFor; its zero value uses safe defaults (full
	// mirror of the healthy queue, capacity-sized divergence grace).
	Channels ft.ReintegrationPlan
	// MaxRecoveries bounds how many recoveries the manager performs per
	// replica; 0 means unlimited. Campaign runs use 1 so a second
	// injected fault stays convicted and measurable.
	MaxRecoveries int
}

// PlanFor derives the re-arm fill for one replicator channel from the
// producer and per-replica consumption envelopes via
// rtc.ReintegrationFill (eq. 4 analogue) and returns a channel plan for
// it. caps are the replicator's per-replica queue capacities; the
// per-replica fill is the minimum over both, so whichever replica
// recovers is re-armed safely.
func PlanFor(channel string, producer rtc.PJD, inModels [2]rtc.PJD, caps [2]int) (ft.ReintegrationPlan, error) {
	h := rtc.Horizon(producer, inModels[0], inModels[1])
	fill := -1
	for i, m := range inModels {
		f, err := rtc.ReintegrationFill(producer.Lower(), m.Upper(), rtc.Count(caps[i]), h)
		if err != nil {
			return ft.ReintegrationPlan{}, fmt.Errorf("recover: re-arm fill for %q replica %d: %w", channel, i+1, err)
		}
		if fill < 0 || int(f) < fill {
			fill = int(f)
		}
	}
	return ft.ReintegrationPlan{
		RepFill: map[string]int{channel: fill},
	}, nil
}

// Event records one completed recovery.
type Event struct {
	Replica     int
	DetectedAt  des.Time // first conviction that triggered this recovery
	RecoveredAt des.Time
	Detection   ft.Fault // the triggering conviction
	Complete    bool     // every channel accepted the re-integration
}

// Manager watches a duplicated system for convictions and schedules
// repair + re-integration per its plan. Create it with NewManager
// before running the kernel.
type Manager struct {
	sys  *ft.System
	plan Plan

	pending    [2]bool
	recoveries [2]int
	events     []Event

	// OnRecovered, when non-nil, observes each recovery as it
	// completes; campaign engines use it to schedule follow-up faults
	// deterministically.
	OnRecovered func(Event)
}

// NewManager attaches a recovery manager to the system.
func NewManager(sys *ft.System, plan Plan) *Manager {
	m := &Manager{sys: sys, plan: plan}
	sys.AddFaultHook(m.onFault)
	return m
}

// Events returns the completed recoveries in order.
func (m *Manager) Events() []Event { return append([]Event(nil), m.events...) }

// onFault schedules a recovery for the convicted replica unless one is
// already pending or the per-replica budget is exhausted. Convictions
// of the same replica on multiple channels collapse into one recovery.
func (m *Manager) onFault(f ft.Fault) {
	i := f.Replica - 1
	if m.pending[i] {
		return
	}
	if m.plan.MaxRecoveries > 0 && m.recoveries[i] >= m.plan.MaxRecoveries {
		return
	}
	m.pending[i] = true
	m.recoveries[i]++
	det := f
	m.sys.K.At(f.At+m.plan.Delay, func() { m.recover(det) })
}

// recover re-integrates the replica on all channels, then clears its
// fault switch — in that order, so the replica resumes against
// already-consistent channel state within one kernel event.
func (m *Manager) recover(det ft.Fault) {
	i := det.Replica - 1
	complete := m.sys.Reintegrate(det.Replica, m.plan.Channels)
	m.sys.Switches[i].Repair()
	m.pending[i] = false
	ev := Event{
		Replica:     det.Replica,
		DetectedAt:  det.At,
		RecoveredAt: m.sys.K.Now(),
		Detection:   det,
		Complete:    complete,
	}
	m.events = append(m.events, ev)
	if m.OnRecovered != nil {
		m.OnRecovered(ev)
	}
}
