// Package recover closes the loop from fault detection back to fault
// tolerance. The paper's framework detects a timing fault and then
// permanently isolates the convicted replica, leaving the system
// unprotected against a second fault. A Manager subscribes to a
// duplicated system's detection events and, after a configurable repair
// delay (modelling replica restart or migration to a spare core),
// repairs the replica's fault switch and re-integrates it on every
// arbitration channel: stale tokens are drained, the replicator queue
// is re-armed at a safe fill derived from the rtc initial-fill solver
// (eq. 4), and the selector interface re-synchronizes its pair index
// and virtual space counter at the healthy write front. Full redundancy
// is restored and the next fault is tolerated again.
package recover

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/ft"
	"ftpn/internal/obs"
	"ftpn/internal/rtc"
)

// Plan parameterizes recoveries issued by a Manager.
type Plan struct {
	// Delay is the virtual time between a replica's first conviction
	// and its repair + re-integration (restart/relocation cost).
	Delay des.Time
	// Channels carries the per-channel re-arm parameters, normally
	// built with PlanFor; its zero value uses safe defaults (full
	// mirror of the healthy queue, capacity-sized divergence grace).
	Channels ft.ReintegrationPlan
	// MaxRecoveries bounds how many recoveries the manager performs per
	// replica; 0 means unlimited. Campaign runs use 1 so a second
	// injected fault stays convicted and measurable.
	MaxRecoveries int
}

// PlanFor derives the re-arm fill for one replicator channel from the
// producer and per-replica consumption envelopes via
// rtc.ReintegrationFill (eq. 4 analogue) and returns a channel plan for
// it. caps are the replicator's per-replica queue capacities; the
// per-replica fill is the minimum over both, so whichever replica
// recovers is re-armed safely.
func PlanFor(channel string, producer rtc.PJD, inModels [2]rtc.PJD, caps [2]int) (ft.ReintegrationPlan, error) {
	h := rtc.Horizon(producer, inModels[0], inModels[1])
	fill := -1
	for i, m := range inModels {
		f, err := rtc.ReintegrationFill(producer.Lower(), m.Upper(), rtc.Count(caps[i]), h)
		if err != nil {
			return ft.ReintegrationPlan{}, fmt.Errorf("recover: re-arm fill for %q replica %d: %w", channel, i+1, err)
		}
		if fill < 0 || int(f) < fill {
			fill = int(f)
		}
	}
	return ft.ReintegrationPlan{
		RepFill: map[string]int{channel: fill},
	}, nil
}

// Conviction is one detection event enriched with the channel state
// sampled at the instant of conviction, so logs and the obs layer can
// attribute a fault without re-deriving engine state.
type Conviction struct {
	// Fault carries channel, replica, detection tick and reason.
	Fault ft.Fault
	// Divergence is how far the healthy side led the convicted replica
	// on the detecting channel when it was convicted (duplicate pairs
	// for selectors, consumed tokens for replicators).
	Divergence int64
	// Fill is the detecting channel's queue fill at conviction (the
	// convicted replica's queue for replicators, the shared FIFO for
	// selectors).
	Fill int
	// RecoveryScheduled reports whether this conviction triggered a
	// recovery (false when one was already pending for the replica or
	// the budget was exhausted).
	RecoveryScheduled bool
	// Policy names the detection policy that convicted ("" for the
	// inline first-violation path), Window its violation window at
	// conviction ("violations/k", e.g. "3/16" for an (m,k) policy).
	Policy string
	Window string
	// Kind distinguishes timing convictions from value (replay
	// cross-check) convictions.
	Kind ft.FaultKind
}

// String renders the conviction for logs.
func (c Conviction) String() string {
	pol := ""
	if c.Policy != "" {
		pol = fmt.Sprintf(", policy %s %s", c.Policy, c.Window)
	}
	return fmt.Sprintf("%s: R%d convicted at %dus (%s %s, divergence %d, fill %d%s)",
		c.Fault.Channel, c.Fault.Replica, c.Fault.At, c.Kind, c.Fault.Reason, c.Divergence, c.Fill, pol)
}

// Event records one completed recovery.
type Event struct {
	Replica     int
	DetectedAt  des.Time // first conviction that triggered this recovery
	RecoveredAt des.Time
	Detection   ft.Fault   // the triggering conviction
	Conviction  Conviction // the same conviction with channel state attached
	Complete    bool       // every channel accepted the re-integration
}

// Manager watches a duplicated system for convictions and schedules
// repair + re-integration per its plan. Create it with NewManager
// before running the kernel.
type Manager struct {
	sys  *ft.System
	plan Plan

	pending    [2]bool
	recoveries [2]int
	events     []Event

	// OnConvicted, when non-nil, observes every conviction with channel
	// state attached — including ones that do not schedule a recovery.
	OnConvicted func(Conviction)
	// OnRecovered, when non-nil, observes each recovery as it
	// completes; campaign engines use it to schedule follow-up faults
	// deterministically.
	OnRecovered func(Event)

	reg    *obs.Registry
	flight *obs.FlightStream
}

// NewManager attaches a recovery manager to the system.
func NewManager(sys *ft.System, plan Plan) *Manager {
	m := &Manager{sys: sys, plan: plan}
	sys.AddFaultHook(m.onFault)
	return m
}

// Events returns the completed recoveries in order.
func (m *Manager) Events() []Event { return append([]Event(nil), m.events...) }

// Observe registers the manager's lifecycle metrics in reg (see
// DESIGN.md §9): ftpn_recover_convictions_total{channel,replica,reason},
// ftpn_recover_recoveries_started_total{replica},
// ftpn_recover_recoveries_total{replica,complete} and the
// detection-to-recovery latency histogram ftpn_recover_latency_us. A
// nil registry is a no-op. Recovery events are rare, so series are
// resolved through the registry per event rather than pre-bound.
func (m *Manager) Observe(reg *obs.Registry) { m.reg = reg }

// RecordFlight mirrors each completed recovery into a flight-recorder
// stream as an obs.FlightRecover event (Aux = detection→recovery
// latency in virtual µs), closing the causal chain obs.Explain
// reconstructs. Convictions themselves are recorded by
// ft.InstrumentFlight's fault hook, which fires for every detection
// whether or not a manager is attached. A nil stream is a no-op.
func (m *Manager) RecordFlight(st *obs.FlightStream) { m.flight = st }

// conviction samples the detecting channel's state for a fault.
func (m *Manager) conviction(f ft.Fault, scheduled bool) Conviction {
	c := Conviction{Fault: f, RecoveryScheduled: scheduled, Kind: f.Kind}
	if r, ok := m.sys.Replicators[f.Channel]; ok {
		c.Divergence = r.Divergence(f.Replica)
		c.Fill = r.Fill(f.Replica)
		c.Policy, c.Window = r.PolicyInfo(f.Replica, f.Reason)
	} else if s, ok := m.sys.Selectors[f.Channel]; ok {
		c.Divergence = s.Divergence(f.Replica)
		c.Fill = s.Fill()
		c.Policy, c.Window = s.PolicyInfo(f.Replica, f.Reason)
	}
	return c
}

// onFault schedules a recovery for the convicted replica unless one is
// already pending or the per-replica budget is exhausted. Convictions
// of the same replica on multiple channels collapse into one recovery.
func (m *Manager) onFault(f ft.Fault) {
	i := f.Replica - 1
	scheduled := !m.pending[i] &&
		(m.plan.MaxRecoveries == 0 || m.recoveries[i] < m.plan.MaxRecoveries)
	conv := m.conviction(f, scheduled)
	if m.OnConvicted != nil {
		m.OnConvicted(conv)
	}
	if reg := m.reg; reg != nil {
		reg.Counter("ftpn_recover_convictions_total", "Convictions seen by the recovery manager.",
			obs.Labels{"channel": f.Channel, "replica": fmt.Sprintf("%d", f.Replica), "reason": string(f.Reason)}).Inc()
	}
	if !scheduled {
		return
	}
	m.pending[i] = true
	m.recoveries[i]++
	if reg := m.reg; reg != nil {
		reg.Counter("ftpn_recover_recoveries_started_total", "Recoveries scheduled after a conviction.",
			obs.Labels{"replica": fmt.Sprintf("%d", f.Replica)}).Inc()
	}
	m.sys.K.At(f.At+m.plan.Delay, func() { m.recover(conv) })
}

// recover re-integrates the replica on all channels, then clears its
// fault switch — in that order, so the replica resumes against
// already-consistent channel state within one kernel event.
func (m *Manager) recover(conv Conviction) {
	det := conv.Fault
	i := det.Replica - 1
	complete := m.sys.Reintegrate(det.Replica, m.plan.Channels)
	m.sys.Switches[i].Repair()
	m.pending[i] = false
	ev := Event{
		Replica:     det.Replica,
		DetectedAt:  det.At,
		RecoveredAt: m.sys.K.Now(),
		Detection:   det,
		Conviction:  conv,
		Complete:    complete,
	}
	m.events = append(m.events, ev)
	m.flight.Record(obs.FlightEvent{
		At:      ev.RecoveredAt,
		Channel: det.Channel,
		Kind:    obs.FlightRecover,
		Reason:  string(det.Reason),
		Replica: det.Replica,
		Fill:    conv.Fill,
		Aux:     ev.RecoveredAt - ev.DetectedAt,
	})
	if reg := m.reg; reg != nil {
		reg.Counter("ftpn_recover_recoveries_total", "Recoveries performed.",
			obs.Labels{"replica": fmt.Sprintf("%d", det.Replica), "complete": fmt.Sprintf("%t", complete)}).Inc()
		reg.Histogram("ftpn_recover_latency_us", "Detection-to-recovery latency.",
			obs.ExpBuckets(1000, 4, 8), nil).Observe(ev.RecoveredAt - ev.DetectedAt)
	}
	if m.OnRecovered != nil {
		m.OnRecovered(ev)
	}
}
