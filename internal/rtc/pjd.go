package rtc

import "fmt"

// PJD is the standard <period, jitter, delay> event model used by the
// paper to report all timing parameters (Table 1). Period is the long-run
// inter-arrival time p, Jitter the maximum deviation j from the periodic
// schedule, and MinDist the minimum distance d between two consecutive
// events (the "delay" of the tuple). All values are in ticks; MinDist
// may be zero, meaning no minimum-distance constraint beyond the one
// implied by the period and jitter.
type PJD struct {
	Period  Time
	Jitter  Time
	MinDist Time
}

// String renders the model as the paper's <period, jitter, delay> tuple.
func (m PJD) String() string {
	return fmt.Sprintf("<%d,%d,%d>", m.Period, m.Jitter, m.MinDist)
}

// Validate reports whether the model parameters are usable.
func (m PJD) Validate() error {
	if m.Period <= 0 {
		return fmt.Errorf("rtc: PJD period must be positive, got %d", m.Period)
	}
	if m.Jitter < 0 {
		return fmt.Errorf("rtc: PJD jitter must be non-negative, got %d", m.Jitter)
	}
	if m.MinDist < 0 {
		return fmt.Errorf("rtc: PJD min-distance must be non-negative, got %d", m.MinDist)
	}
	if m.MinDist > m.Period {
		return fmt.Errorf("rtc: PJD min-distance %d exceeds period %d (inconsistent long-run rate)",
			m.MinDist, m.Period)
	}
	return nil
}

// ceilDiv returns ceil(a/b) for b > 0 and any a.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// floorDiv returns floor(a/b) for b > 0 and any a.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// pjdUpper is the upper arrival curve of a PJD model:
//
//	α^u(Δ) = min( ceil((Δ+j)/p), ceil(Δ/d) )   for Δ > 0,
//	α^u(Δ) = 0                                  for Δ <= 0,
//
// where the second term applies only when d > 0.
type pjdUpper struct{ m PJD }

// Eval implements Curve.
func (c pjdUpper) Eval(delta Time) Count {
	if delta <= 0 {
		return 0
	}
	n := ceilDiv(delta+c.m.Jitter, c.m.Period)
	if c.m.MinDist > 0 {
		if byDist := ceilDiv(delta, c.m.MinDist); byDist < n {
			n = byDist
		}
	}
	if n < 0 {
		n = 0
	}
	return n
}

// pjdLower is the lower arrival curve of a PJD model:
//
//	α^l(Δ) = max( 0, floor((Δ-j)/p) ).
type pjdLower struct{ m PJD }

// Eval implements Curve.
func (c pjdLower) Eval(delta Time) Count {
	if delta <= 0 {
		return 0
	}
	n := floorDiv(delta-c.m.Jitter, c.m.Period)
	if n < 0 {
		n = 0
	}
	return n
}

// Breakpoints implements BreakpointCurve: a superset of the interval
// lengths where α^u can change. The ceil((Δ+j)/p) term increments at
// Δ = k·p − j + 1 and the ceil(Δ/d) term at Δ = k·d + 1, so the curve
// has O(h/p + h/d) breakpoints over a horizon h — far fewer than h.
func (c pjdUpper) Breakpoints(horizon Time) []Time {
	pts := []Time{0}
	if horizon >= 1 {
		pts = append(pts, 1)
	}
	p, j, d := c.m.Period, c.m.Jitter, c.m.MinDist
	if p > 0 {
		for k := ceilDiv(j, p); ; k++ {
			delta := k*p - j + 1
			if delta > horizon {
				break
			}
			if delta >= 1 {
				pts = append(pts, delta)
			}
		}
	}
	if d > 0 {
		for delta := d + 1; delta <= horizon; delta += d {
			pts = append(pts, delta)
		}
	}
	return mergePoints(horizon, pts)
}

// LongRunRate implements Rated: one event per period (the min-distance
// term only sharpens the transient, since MinDist <= Period).
func (c pjdUpper) LongRunRate() (Count, Time) { return 1, c.m.Period }

// Breakpoints implements BreakpointCurve: floor((Δ-j)/p) increments at
// Δ = j + k·p.
func (c pjdLower) Breakpoints(horizon Time) []Time {
	pts := []Time{0}
	p, j := c.m.Period, c.m.Jitter
	if p > 0 {
		for delta := j + p; delta <= horizon; delta += p {
			pts = append(pts, delta)
		}
	}
	return mergePoints(horizon, pts)
}

// LongRunRate implements Rated.
func (c pjdLower) LongRunRate() (Count, Time) { return 1, c.m.Period }

// Upper returns the upper arrival curve α^u of the model.
func (m PJD) Upper() Curve { return pjdUpper{m} }

// Lower returns the lower arrival curve α^l of the model.
func (m PJD) Lower() Curve { return pjdLower{m} }

// LongRunRate returns the asymptotic event rate of the model as events
// per tick expressed by the pair (events, ticks) = (1, Period).
func (m PJD) LongRunRate() (events Count, ticks Time) { return 1, m.Period }

// SuggestedHorizon returns a scan horizon long enough for analyses that
// pair this model with other, comparable-rate PJD models: several periods
// past the largest transient the jitter can cause. Callers combining
// multiple models should take the maximum over all of them and sum the
// jitters; Horizon does exactly that.
func (m PJD) SuggestedHorizon() Time {
	h := 8*m.Period + 4*m.Jitter
	if m.MinDist > m.Period {
		h += 4 * m.MinDist
	}
	return h
}

// FitPJD calibrates a PJD model from an observed event trace (sorted
// timestamps): the period is the mean inter-event gap (rounded), the
// jitter the largest deviation of any event from the best-fit periodic
// grid, and the minimum distance the smallest observed gap. The fitted
// model's curves contain the trace (its envelope is conservative for
// the observations; future behaviour is the designer's responsibility,
// as with any calibration, §3.4).
func FitPJD(timestamps []Time) (PJD, error) {
	n := len(timestamps)
	if n < 3 {
		return PJD{}, fmt.Errorf("rtc: fitting needs at least 3 timestamps, got %d", n)
	}
	for i := 1; i < n; i++ {
		if timestamps[i] < timestamps[i-1] {
			return PJD{}, fmt.Errorf("rtc: timestamps not sorted at index %d", i)
		}
	}
	span := timestamps[n-1] - timestamps[0]
	if span <= 0 {
		return PJD{}, fmt.Errorf("rtc: zero-span trace")
	}
	period := (span + Time(n-1)/2) / Time(n-1)
	if period < 1 {
		period = 1
	}
	minDist := span
	for i := 1; i < n; i++ {
		if d := timestamps[i] - timestamps[i-1]; d < minDist {
			minDist = d
		}
	}
	if minDist > period {
		minDist = period
	}
	// Jitter: max |ts[i] - (ts[0] + i*period)|, doubled to cover phase
	// both ways (the PJD envelope places events in [i*p, i*p + j]).
	var maxDev Time
	for i := 0; i < n; i++ {
		ideal := timestamps[0] + Time(i)*period
		d := timestamps[i] - ideal
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	return PJD{Period: period, Jitter: 2 * maxDev, MinDist: minDist}, nil
}

// Horizon returns a scan horizon suitable for joint analyses over all the
// given models: the sum of each model's suggested horizon. This is
// intentionally generous; the analyses in this package are linear in the
// horizon and the curves are cheap to evaluate.
func Horizon(models ...PJD) Time {
	var h Time
	for _, m := range models {
		h += m.SuggestedHorizon()
	}
	if h <= 0 {
		h = 1
	}
	return h
}
