package rtc

// This file implements the analytic formulas of Section 3.4 of the paper.
// All analyses scan interval lengths Δ = 0..horizon; the curves used in
// this repository are integer-tick step functions, so evaluating at every
// integer Δ is exact. Horizons are chosen by the caller (rtc.Horizon
// gives a safe default for PJD models); convergence within the horizon is
// verified and ErrUnbounded returned otherwise.

// BufferCapacity computes the minimum FIFO capacity |F_P| such that a
// producer with upper arrival curve prodUpper never blocks on a consumer
// with lower service/arrival curve consLower (eq. 3):
//
//	α_P^u(Δ) <= α_in^l(Δ) + |F_P|   for all Δ >= 0.
//
// The capacity is the supremum of the difference of the two curves. The
// scan verifies convergence: the supremum must not be attained only at
// the very end of the horizon with the difference still growing.
func BufferCapacity(prodUpper, consLower Curve, horizon Time) (Count, error) {
	return supDiff(prodUpper, consLower, horizon)
}

// InitialFill computes the minimum number of tokens F_{C,0} that must be
// pre-loaded into the consumer-side FIFO so the consumer never stalls on
// an empty queue (eq. 4):
//
//	α_out^l(Δ) >= α_C^u(Δ) - F_{C,0}   for all Δ >= 0,
//
// i.e. F_{C,0} = sup_Δ { α_C^u(Δ) - α_out^l(Δ) }.
func InitialFill(outLower, consUpper Curve, horizon Time) (Count, error) {
	return supDiff(consUpper, outLower, horizon)
}

// DivergenceThreshold computes the smallest integer D that can never be
// reached by the difference in total tokens received from two fault-free
// replicas (eq. 5):
//
//	D > sup_{i≠j, λ>=0} { α_{i,out}^u(λ) - α_{j,out}^l(λ) }.
//
// Both orderings (1 vs 2 and 2 vs 1) are considered. A selector (or
// replicator) using this D is guaranteed free of false positives.
func DivergenceThreshold(upper1, lower1, upper2, lower2 Curve, horizon Time) (Count, error) {
	s12, err := supDiff(upper1, lower2, horizon)
	if err != nil {
		return 0, err
	}
	s21, err := supDiff(upper2, lower1, horizon)
	if err != nil {
		return 0, err
	}
	s := s12
	if s21 > s {
		s = s21
	}
	// Smallest integer strictly greater than the supremum.
	return s + 1, nil
}

// DetectionBound computes the maximum time to detect a fault (eq. 6): the
// smallest Δ such that the healthy replica's lower curve exceeds the
// faulty replica's post-fault upper curve by at least 2D-1 tokens:
//
//	inf { Δ | (α_healthy^l - ᾱ_faulty^u)(Δ) >= 2D-1 }.
//
// Pass rtc.Zero as faultyUpper for a replica that stops producing
// entirely (eq. 8). ErrUnreachable is returned when the gap is never
// reached within the horizon (the "faulty" curve still satisfies the
// constraints, i.e. it is not detectably faulty).
func DetectionBound(healthyLower, faultyUpper Curve, d Count, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	need := 2*d - 1
	for delta := Time(0); delta <= h; delta++ {
		if healthyLower.Eval(delta)-faultyUpper.Eval(delta) >= need {
			return delta, nil
		}
	}
	return 0, ErrUnreachable
}

// MaxDetectionBound generalizes DetectionBound over all replica pairs
// (eq. 7): the worst case over which replica is faulty. healthyLowers[i]
// and faultyUppers[i] describe replica i's healthy lower curve and its
// assumed post-fault upper curve; the bound for "replica j faulty" uses
// every other replica i's healthy lower curve against ᾱ_j^u, and the
// result is the maximum over all such pairs of the per-pair infimum.
func MaxDetectionBound(healthyLowers, faultyUppers []Curve, d Count, horizon Time) (Time, error) {
	if len(healthyLowers) != len(faultyUppers) || len(healthyLowers) < 2 {
		return 0, ErrUnreachable
	}
	var worst Time
	found := false
	for j := range faultyUppers {
		for i := range healthyLowers {
			if i == j {
				continue
			}
			b, err := DetectionBound(healthyLowers[i], faultyUppers[j], d, horizon)
			if err != nil {
				return 0, err
			}
			if b > worst {
				worst = b
			}
			found = true
		}
	}
	if !found {
		return 0, ErrUnreachable
	}
	return worst, nil
}

// StoppedDetectionBound specializes eq. 8: the faulty replica produces
// nothing after the fault, so the bound is the worst case over replicas
// of inf { Δ | α_i^l(Δ) >= 2D-1 }.
func StoppedDetectionBound(healthyLowers []Curve, d Count, horizon Time) (Time, error) {
	var worst Time
	for _, l := range healthyLowers {
		b, err := DetectionBound(l, Zero, d, horizon)
		if err != nil {
			return 0, err
		}
		if b > worst {
			worst = b
		}
	}
	return worst, nil
}

// supDiff computes sup_{0<=Δ<=horizon} { a(Δ) - b(Δ) }, verifying that
// the supremum has stabilized: if a new maximum is still being attained
// in the last eighth of the horizon, the difference is considered
// divergent and ErrUnbounded is returned.
func supDiff(a, b Curve, horizon Time) (Count, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	var sup Count
	lastImprove := Time(0)
	for delta := Time(0); delta <= h; delta++ {
		if d := a.Eval(delta) - b.Eval(delta); d > sup {
			sup = d
			lastImprove = delta
		}
	}
	if h >= 16 && lastImprove > h-h/8 {
		return 0, ErrUnbounded
	}
	return sup, nil
}
