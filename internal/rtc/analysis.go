package rtc

// This file implements the analytic formulas of Section 3.4 of the paper.
// All analyses are exact over integer-tick staircase curves, but instead
// of scanning every interval length Δ = 0..horizon they iterate only the
// curves' breakpoints — the Δ where a staircase can change value — which
// turns O(horizon) scans into O(breakpoints) scans (classic RTC/MPA
// toolkit technique). Curves that do not expose breakpoints are sampled
// once into a memo table (Sampled), so the worst case stays the old
// dense cost. Value-equivalence with the dense reference implementations
// in reference.go is checked by property tests; unboundedness is decided
// exactly from long-run rates when both curves expose them (Rated) and
// by the seed's last-improvement heuristic otherwise.

// BufferCapacity computes the minimum FIFO capacity |F_P| such that a
// producer with upper arrival curve prodUpper never blocks on a consumer
// with lower service/arrival curve consLower (eq. 3):
//
//	α_P^u(Δ) <= α_in^l(Δ) + |F_P|   for all Δ >= 0.
//
// The capacity is the supremum of the difference of the two curves. The
// scan verifies convergence: the supremum must not be attained only at
// the very end of the horizon with the difference still growing.
func BufferCapacity(prodUpper, consLower Curve, horizon Time) (Count, error) {
	return supDiff(prodUpper, consLower, horizon)
}

// InitialFill computes the minimum number of tokens F_{C,0} that must be
// pre-loaded into the consumer-side FIFO so the consumer never stalls on
// an empty queue (eq. 4):
//
//	α_out^l(Δ) >= α_C^u(Δ) - F_{C,0}   for all Δ >= 0,
//
// i.e. F_{C,0} = sup_Δ { α_C^u(Δ) - α_out^l(Δ) }.
func InitialFill(outLower, consUpper Curve, horizon Time) (Count, error) {
	return supDiff(consUpper, outLower, horizon)
}

// ReintegrationFill computes the safe fill at which a repaired
// replica's input queue is re-armed during re-integration — the eq. 4
// analogue on the replicator side: enough pre-queued tokens that the
// recovering replica consuming at its upper envelope does not starve on
// the producer's lower envelope,
//
//	F_re = sup_Δ { α_C^u(Δ) - α_P^l(Δ) },
//
// clamped into [0, cap-1] so that re-admission can never itself trip
// the queue-full detector.
func ReintegrationFill(prodLower, consUpper Curve, cap Count, horizon Time) (Count, error) {
	f, err := supDiff(consUpper, prodLower, horizon)
	if err != nil {
		return 0, err
	}
	if f > cap-1 {
		f = cap - 1
	}
	if f < 0 {
		f = 0
	}
	return f, nil
}

// DivergenceThreshold computes the smallest integer D that can never be
// reached by the difference in total tokens received from two fault-free
// replicas (eq. 5):
//
//	D > sup_{i≠j, λ>=0} { α_{i,out}^u(λ) - α_{j,out}^l(λ) }.
//
// Both orderings (1 vs 2 and 2 vs 1) are considered. A selector (or
// replicator) using this D is guaranteed free of false positives.
func DivergenceThreshold(upper1, lower1, upper2, lower2 Curve, horizon Time) (Count, error) {
	s12, err := supDiff(upper1, lower2, horizon)
	if err != nil {
		return 0, err
	}
	s21, err := supDiff(upper2, lower1, horizon)
	if err != nil {
		return 0, err
	}
	s := s12
	if s21 > s {
		s = s21
	}
	// Smallest integer strictly greater than the supremum.
	return s + 1, nil
}

// DetectionBound computes the maximum time to detect a fault (eq. 6): the
// smallest Δ such that the healthy replica's lower curve exceeds the
// faulty replica's post-fault upper curve by at least 2D-1 tokens:
//
//	inf { Δ | (α_healthy^l - ᾱ_faulty^u)(Δ) >= 2D-1 }.
//
// Pass rtc.Zero as faultyUpper for a replica that stops producing
// entirely (eq. 8). ErrUnreachable is returned when the gap is never
// reached within the horizon (the "faulty" curve still satisfies the
// constraints, i.e. it is not detectably faulty).
func DetectionBound(healthyLower, faultyUpper Curve, d Count, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	need := 2*d - 1
	// The difference of two staircases is piecewise constant between
	// their merged breakpoints, so the smallest satisfying Δ is the left
	// endpoint of the first satisfying segment — a breakpoint.
	hb, fb := Sampled(healthyLower, h), Sampled(faultyUpper, h)
	for _, p := range mergePoints(h, hb.Breakpoints(h), fb.Breakpoints(h)) {
		if hb.Eval(p)-fb.Eval(p) >= need {
			return p, nil
		}
	}
	return 0, ErrUnreachable
}

// TimeToReach returns the smallest Δ in [0, horizon] with c(Δ) >= need,
// or ErrUnreachable if the count is never reached within the horizon.
// It generalizes the bound-inversion scans of eq. 6-8 (detection is
// "time for a lower curve to deliver a token-count gap").
func TimeToReach(c Curve, need Count, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	bc := Sampled(c, h)
	for _, p := range bc.Breakpoints(h) {
		if bc.Eval(p) >= need {
			return p, nil
		}
	}
	return 0, ErrUnreachable
}

// MaxDetectionBound generalizes DetectionBound over all replica pairs
// (eq. 7): the worst case over which replica is faulty. healthyLowers[i]
// and faultyUppers[i] describe replica i's healthy lower curve and its
// assumed post-fault upper curve; the bound for "replica j faulty" uses
// every other replica i's healthy lower curve against ᾱ_j^u, and the
// result is the maximum over all such pairs of the per-pair infimum.
func MaxDetectionBound(healthyLowers, faultyUppers []Curve, d Count, horizon Time) (Time, error) {
	if len(healthyLowers) != len(faultyUppers) || len(healthyLowers) < 2 {
		return 0, ErrUnreachable
	}
	var worst Time
	found := false
	for j := range faultyUppers {
		for i := range healthyLowers {
			if i == j {
				continue
			}
			b, err := DetectionBound(healthyLowers[i], faultyUppers[j], d, horizon)
			if err != nil {
				return 0, err
			}
			if b > worst {
				worst = b
			}
			found = true
		}
	}
	if !found {
		return 0, ErrUnreachable
	}
	return worst, nil
}

// StoppedDetectionBound specializes eq. 8: the faulty replica produces
// nothing after the fault, so the bound is the worst case over replicas
// of inf { Δ | α_i^l(Δ) >= 2D-1 }.
func StoppedDetectionBound(healthyLowers []Curve, d Count, horizon Time) (Time, error) {
	var worst Time
	for _, l := range healthyLowers {
		b, err := DetectionBound(l, Zero, d, horizon)
		if err != nil {
			return 0, err
		}
		if b > worst {
			worst = b
		}
	}
	return worst, nil
}

// supDiff computes sup_{0<=Δ<=horizon} { a(Δ) - b(Δ) } by evaluating
// only at the merged breakpoints of the two curves (the difference is
// constant in between, so the per-segment maximum sits at the left
// endpoint). Divergence is decided exactly from long-run rates when both
// curves expose them: the supremum is infinite iff a's rate strictly
// exceeds b's. Otherwise the dense scan's heuristic is preserved: a new
// maximum still being attained in the last eighth of the horizon is
// considered divergent.
func supDiff(a, b Curve, horizon Time) (Count, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	ab, bb := Sampled(a, h), Sampled(b, h)
	var sup Count
	lastImprove := Time(0)
	for _, p := range mergePoints(h, ab.Breakpoints(h), bb.Breakpoints(h)) {
		if d := ab.Eval(p) - bb.Eval(p); d > sup {
			sup = d
			lastImprove = p
		}
	}
	an, ad, aOK := longRunRate(a)
	bn, bd, bOK := longRunRate(b)
	if aOK && bOK {
		if rateExceeds(an, ad, bn, bd) {
			return 0, ErrUnbounded
		}
	} else if h >= 16 && lastImprove > h-h/8 {
		return 0, ErrUnbounded
	}
	return sup, nil
}
