package rtc

import (
	"errors"
	"testing"
)

func TestRateLatencyEval(t *testing.T) {
	s := RateLatency{LatencyUs: 100, Rate: 1, Per: 10}
	cases := []struct {
		delta Time
		want  Count
	}{
		{0, 0}, {100, 0}, {109, 0}, {110, 1}, {200, 10}, {1100, 100},
	}
	for _, c := range cases {
		if got := s.Eval(c.delta); got != c.want {
			t.Errorf("β(%d) = %d, want %d", c.delta, got, c.want)
		}
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if (RateLatency{LatencyUs: -1, Rate: 1, Per: 1}).Validate() == nil {
		t.Error("negative latency should fail")
	}
	if (RateLatency{Rate: 0, Per: 1}).Validate() == nil {
		t.Error("zero rate should fail")
	}
}

func TestStageService(t *testing.T) {
	s, err := StageService(100, 250)
	if err != nil {
		t.Fatal(err)
	}
	if s.LatencyUs != 250 || s.Rate != 1 || s.Per != 250 {
		t.Errorf("stage service = %+v", s)
	}
	if _, err := StageService(10, 5); err == nil {
		t.Error("max < min should fail")
	}
	if _, err := StageService(-1, 5); err == nil {
		t.Error("negative min should fail")
	}
}

func TestOutputBoundSlowServer(t *testing.T) {
	// Periodic input (p=100), server needs up to 60 per token: the
	// output envelope widens (burstier) but keeps the long-run rate.
	in := PJD{Period: 100, Jitter: 0}
	svc, _ := StageService(20, 60)
	out, err := OutputBound(in.Upper(), svc, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Long-run rate preserved: the output envelope may exceed the input
	// count at equal Δ by a small burst allowance (tokens accumulated
	// during the service latency), but not by more.
	if got, want := out.Eval(3000), in.Upper().Eval(3000)+3; got > want {
		t.Errorf("output envelope rate too high: %d > %d", got, want)
	}
	// And it must dominate the input envelope shifted by the latency: a
	// burst can exit back-to-back.
	if out.Eval(100) < in.Upper().Eval(100) {
		t.Errorf("output envelope below input: %d < %d", out.Eval(100), in.Upper().Eval(100))
	}
	// Monotone, zero at zero.
	if out.Eval(0) != 0 || out.Eval(500) > out.Eval(501) {
		t.Error("output envelope not a valid curve")
	}
}

func TestOutputBoundUnboundedWhenOverloaded(t *testing.T) {
	// Input every 50, server takes 100 per token: backlog diverges.
	in := PJD{Period: 50}
	svc, _ := StageService(100, 100)
	if _, err := OutputBound(in.Upper(), svc, 3000); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestDelayBound(t *testing.T) {
	// Strictly periodic input p=100 through a 60-max server: delay
	// bounded by service latency + one service quantum.
	in := PJD{Period: 100}
	svc, _ := StageService(20, 60)
	d, err := DelayBound(in.Upper(), svc, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 200 {
		t.Errorf("delay bound = %d, want small positive", d)
	}
	// A slower server must not decrease the bound.
	svc2, _ := StageService(20, 90)
	d2, err := DelayBound(in.Upper(), svc2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if d2 < d {
		t.Errorf("slower server reduced delay bound: %d < %d", d2, d)
	}
}

func TestDelayBoundUnbounded(t *testing.T) {
	in := PJD{Period: 50}
	svc, _ := StageService(80, 80)
	if _, err := DelayBound(in.Upper(), svc, 2000); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestBacklogBound(t *testing.T) {
	in := PJD{Period: 100, Jitter: 150}
	svc, _ := StageService(20, 60)
	bk, err := BacklogBound(in.Upper(), svc, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if bk < 1 || bk > 10 {
		t.Errorf("backlog bound = %d, want small positive", bk)
	}
	// More jitter, more backlog.
	in2 := PJD{Period: 100, Jitter: 400}
	bk2, err := BacklogBound(in2.Upper(), svc, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if bk2 < bk {
		t.Errorf("jitter should not shrink backlog: %d < %d", bk2, bk)
	}
}

func TestPipelineOutputBound(t *testing.T) {
	in := PJD{Period: 100, Jitter: 20}
	s1, _ := StageService(10, 40)
	s2, _ := StageService(10, 50)
	out, err := PipelineOutputBound(in.Upper(), []ServiceCurve{s1, s2}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Long-run rate is preserved through the pipeline.
	inRate := in.Upper().Eval(2000)
	if got := out.Eval(2000); got > inRate+4 {
		t.Errorf("pipeline output rate %d far above input %d", got, inRate)
	}
	// The derived envelope can size the replicator of a downstream
	// duplicated system (end-to-end use of the netcalc layer).
	cap, err := BufferCapacity(out, PJD{Period: 100, Jitter: 100}.Lower(), 8000)
	if err != nil {
		t.Fatal(err)
	}
	if cap < 1 {
		t.Errorf("derived capacity = %d", cap)
	}
	// A failing stage propagates its error.
	bad, _ := StageService(200, 200)
	if _, err := PipelineOutputBound(in.Upper(), []ServiceCurve{s1, bad}, 2000); err == nil {
		t.Error("overloaded stage should fail")
	}
}

func TestOutputBoundBadHorizon(t *testing.T) {
	svc, _ := StageService(1, 2)
	if _, err := OutputBound(Zero, svc, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := DelayBound(Zero, svc, -1); err == nil {
		t.Error("negative horizon should fail")
	}
}
