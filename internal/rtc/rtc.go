// Package rtc implements the fragment of real-time calculus needed by the
// fault-tolerance framework of Rai et al. (DAC 2014): arrival curves for
// event streams, the PJD (period, jitter, minimum-distance) event model,
// and the analytic formulas used to size FIFO queues (eq. 3), compute
// initial fill levels (eq. 4), derive the divergence threshold D (eq. 5),
// and bound fault-detection latency (eq. 6-8).
//
// Time is measured in integer ticks; throughout this repository one tick
// is one microsecond of virtual time. Arrival curves are wide-sense
// increasing step functions over interval lengths Δ >= 0: an upper curve
// α^u(Δ) bounds the maximum and a lower curve α^l(Δ) the minimum number
// of events observable in any window of length Δ.
package rtc

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a duration or instant of virtual time, in ticks (microseconds).
type Time = int64

// Count is a number of tokens (stream events).
type Count = int64

// Curve is an arrival curve: a wide-sense increasing function from an
// interval length Δ (in ticks) to a token count. Implementations must
// return 0 for Δ <= 0 and be monotone in Δ.
type Curve interface {
	// Eval returns the curve value at interval length delta.
	Eval(delta Time) Count
}

// CurveFunc adapts an ordinary function to the Curve interface.
type CurveFunc func(delta Time) Count

// Eval implements Curve.
func (f CurveFunc) Eval(delta Time) Count { return f(delta) }

// BreakpointCurve is an optional extension of Curve for staircase curves
// that can enumerate where their value may change. The solvers in this
// package exploit it to scan only O(breakpoints) interval lengths
// instead of every integer tick up to the horizon.
type BreakpointCurve interface {
	Curve

	// Breakpoints returns interval lengths in [0, horizon], sorted
	// ascending and starting with 0, that include every Δ in the range
	// with Eval(Δ) != Eval(Δ-1). Supersets are allowed (extra points
	// where the value does not change are harmless); omissions are not.
	Breakpoints(horizon Time) []Time
}

// Rated is an optional extension of curves (arrival or service) that
// know their exact long-run rate of tokens/per ticks. Solvers use it to
// decide unboundedness exactly — a supremum over the difference of two
// staircases diverges iff the minuend's long-run rate strictly exceeds
// the subtrahend's — instead of heuristically from dense sampling.
type Rated interface {
	// LongRunRate returns the asymptotic rate as the pair
	// (tokens, per): tokens per `per` ticks, with per > 0.
	LongRunRate() (tokens Count, per Time)
}

// zeroCurve is the identically-zero curve; it has a single breakpoint
// at the origin and a long-run rate of zero.
type zeroCurve struct{}

func (zeroCurve) Eval(Time) Count            { return 0 }
func (zeroCurve) Breakpoints(Time) []Time    { return []Time{0} }
func (zeroCurve) LongRunRate() (Count, Time) { return 0, 1 }

// Zero is the arrival curve that is identically zero. It models a stream
// that has stopped entirely, e.g. a replica suffering a fail-silent
// timing fault (the ᾱ^u of eq. 8).
var Zero Curve = zeroCurve{}

// longRunRate unwraps a curve's exact long-run rate, if it exposes one.
func longRunRate(c Curve) (tokens Count, per Time, ok bool) {
	if r, isRated := c.(Rated); isRated {
		if n, d := r.LongRunRate(); d > 0 {
			return n, d, true
		}
	}
	return 0, 0, false
}

// rateExceeds reports whether rate an/ad strictly exceeds bn/bd.
func rateExceeds(an Count, ad Time, bn Count, bd Time) bool {
	return an*Count(bd) > bn*Count(ad)
}

// mergePoints merges breakpoint lists into one ascending, deduplicated
// list of candidate interval lengths in [0, h], always including 0.
func mergePoints(h Time, lists ...[]Time) []Time {
	n := 1
	for _, l := range lists {
		n += len(l)
	}
	pts := make([]Time, 1, n)
	for _, l := range lists {
		for _, p := range l {
			if p > 0 && p <= h {
				pts = append(pts, p)
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	out := pts[:1]
	for _, p := range pts[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// ErrUnbounded is returned by analyses whose supremum does not stabilize
// within the scan horizon, which indicates diverging long-run rates
// (e.g. a producer strictly faster than its consumer: no finite FIFO
// capacity exists).
var ErrUnbounded = errors.New("rtc: supremum does not converge within horizon")

// ErrUnreachable is returned by detection-latency bounds when the
// required token-count gap is never reached within the scan horizon.
var ErrUnreachable = errors.New("rtc: bound not reached within horizon")

// validateHorizon normalizes a scan horizon, rejecting non-positive ones.
func validateHorizon(h Time) (Time, error) {
	if h <= 0 {
		return 0, fmt.Errorf("rtc: horizon must be positive, got %d", h)
	}
	return h, nil
}
