// Package rtc implements the fragment of real-time calculus needed by the
// fault-tolerance framework of Rai et al. (DAC 2014): arrival curves for
// event streams, the PJD (period, jitter, minimum-distance) event model,
// and the analytic formulas used to size FIFO queues (eq. 3), compute
// initial fill levels (eq. 4), derive the divergence threshold D (eq. 5),
// and bound fault-detection latency (eq. 6-8).
//
// Time is measured in integer ticks; throughout this repository one tick
// is one microsecond of virtual time. Arrival curves are wide-sense
// increasing step functions over interval lengths Δ >= 0: an upper curve
// α^u(Δ) bounds the maximum and a lower curve α^l(Δ) the minimum number
// of events observable in any window of length Δ.
package rtc

import (
	"errors"
	"fmt"
)

// Time is a duration or instant of virtual time, in ticks (microseconds).
type Time = int64

// Count is a number of tokens (stream events).
type Count = int64

// Curve is an arrival curve: a wide-sense increasing function from an
// interval length Δ (in ticks) to a token count. Implementations must
// return 0 for Δ <= 0 and be monotone in Δ.
type Curve interface {
	// Eval returns the curve value at interval length delta.
	Eval(delta Time) Count
}

// CurveFunc adapts an ordinary function to the Curve interface.
type CurveFunc func(delta Time) Count

// Eval implements Curve.
func (f CurveFunc) Eval(delta Time) Count { return f(delta) }

// Zero is the arrival curve that is identically zero. It models a stream
// that has stopped entirely, e.g. a replica suffering a fail-silent
// timing fault (the ᾱ^u of eq. 8).
var Zero Curve = CurveFunc(func(Time) Count { return 0 })

// ErrUnbounded is returned by analyses whose supremum does not stabilize
// within the scan horizon, which indicates diverging long-run rates
// (e.g. a producer strictly faster than its consumer: no finite FIFO
// capacity exists).
var ErrUnbounded = errors.New("rtc: supremum does not converge within horizon")

// ErrUnreachable is returned by detection-latency bounds when the
// required token-count gap is never reached within the scan horizon.
var ErrUnreachable = errors.New("rtc: bound not reached within horizon")

// validateHorizon normalizes a scan horizon, rejecting non-positive ones.
func validateHorizon(h Time) (Time, error) {
	if h <= 0 {
		return 0, fmt.Errorf("rtc: horizon must be positive, got %d", h)
	}
	return h, nil
}
