package rtc

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestPJDValidate(t *testing.T) {
	cases := []struct {
		name string
		m    PJD
		ok   bool
	}{
		{"valid", PJD{Period: 30, Jitter: 2, MinDist: 30}, true},
		{"zero jitter", PJD{Period: 10}, true},
		{"zero period", PJD{Period: 0}, false},
		{"negative period", PJD{Period: -1}, false},
		{"negative jitter", PJD{Period: 10, Jitter: -1}, false},
		{"negative mindist", PJD{Period: 10, MinDist: -5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.m.Validate(); (err == nil) != c.ok {
				t.Errorf("Validate(%v) = %v, want ok=%v", c.m, err, c.ok)
			}
		})
	}
}

func TestPJDString(t *testing.T) {
	got := PJD{Period: 30, Jitter: 5, MinDist: 30}.String()
	if got != "<30,5,30>" {
		t.Errorf("String() = %q, want <30,5,30>", got)
	}
}

func TestPJDUpperStrictlyPeriodic(t *testing.T) {
	// A strictly periodic stream with period 10: at most ceil(Δ/10) events.
	u := PJD{Period: 10}.Upper()
	cases := []struct {
		delta Time
		want  Count
	}{
		{0, 0}, {-5, 0}, {1, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3}, {100, 10},
	}
	for _, c := range cases {
		if got := u.Eval(c.delta); got != c.want {
			t.Errorf("upper(%d) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestPJDLowerStrictlyPeriodic(t *testing.T) {
	l := PJD{Period: 10}.Lower()
	cases := []struct {
		delta Time
		want  Count
	}{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {100, 10},
	}
	for _, c := range cases {
		if got := l.Eval(c.delta); got != c.want {
			t.Errorf("lower(%d) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestPJDJitterWidensEnvelope(t *testing.T) {
	// With jitter j, a window can see extra early events and miss late ones.
	m := PJD{Period: 10, Jitter: 15}
	u, l := m.Upper(), m.Lower()
	if got := u.Eval(1); got != 2 {
		t.Errorf("upper(1) with j=15 = %d, want 2 (burst)", got)
	}
	if got := l.Eval(24); got != 0 {
		t.Errorf("lower(24) with j=15 = %d, want 0", got)
	}
	if got := l.Eval(25); got != 1 {
		t.Errorf("lower(25) with j=15 = %d, want 1", got)
	}
}

func TestPJDMinDistCapsBurst(t *testing.T) {
	// Jitter allows a burst of 3 in a tiny window, but d=4 spaces them out.
	m := PJD{Period: 10, Jitter: 25, MinDist: 4}
	u := m.Upper()
	if got := u.Eval(1); got != 1 {
		t.Errorf("upper(1) = %d, want 1 (min distance caps burst)", got)
	}
	if got := u.Eval(5); got != 2 {
		t.Errorf("upper(5) = %d, want 2", got)
	}
	if got := u.Eval(9); got != 3 {
		t.Errorf("upper(9) = %d, want 3", got)
	}
}

func TestPJDZeroAtZero(t *testing.T) {
	m := PJD{Period: 7, Jitter: 3, MinDist: 2}
	if m.Upper().Eval(0) != 0 || m.Lower().Eval(0) != 0 {
		t.Error("arrival curves must be 0 at Δ=0")
	}
}

// Property: upper and lower curves are wide-sense increasing and the
// upper dominates the lower at every Δ.
func TestPJDCurveProperties(t *testing.T) {
	prop := func(period uint16, jitter uint16, minDist uint16, d1, d2 uint16) bool {
		p := Time(period%500) + 1
		m := PJD{Period: p, Jitter: Time(jitter % 1000), MinDist: Time(minDist) % (p + 1)}
		u, l := m.Upper(), m.Lower()
		a, b := Time(d1), Time(d2)
		if a > b {
			a, b = b, a
		}
		return u.Eval(a) <= u.Eval(b) && l.Eval(a) <= l.Eval(b) &&
			u.Eval(a) >= l.Eval(a) && u.Eval(b) >= l.Eval(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a concrete periodic-with-jitter trace always respects the
// curves of its own model. Event i occurs at i*p + phase(i), phase in
// [0, j] — the standard PJD trace family.
func TestPJDTraceWithinEnvelope(t *testing.T) {
	prop := func(period uint8, jitter uint8, seed int64) bool {
		p := Time(period%50) + 2
		j := Time(jitter % 20)
		m := PJD{Period: p, Jitter: j}
		u, l := m.Upper(), m.Lower()
		const n = 64
		ts := make([]Time, n)
		state := seed
		for i := range ts {
			state = state*6364136223846793005 + 1442695040888963407
			ph := Time(0)
			if j > 0 {
				r := (state >> 33) % (j + 1)
				if r < 0 {
					r += j + 1
				}
				ph = r
			}
			ts[i] = Time(i)*p + ph
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		// Upper: events a..b fit in a window of length ts[b]-ts[a]+1.
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				delta := ts[b] - ts[a] + 1
				if Count(b-a+1) > u.Eval(delta) {
					return false
				}
			}
		}
		// Lower: any window [s, s+Δ) inside the trace span must contain at
		// least l(Δ) events; sample placements at s = ts[a] and s = ts[a]+1.
		span := ts[n-1]
		for a := 0; a < n; a++ {
			for _, s := range []Time{ts[a], ts[a] + 1} {
				for _, delta := range []Time{p, 2 * p, 5*p + j, 10 * p} {
					if s+delta > span {
						continue
					}
					var cnt Count
					for k := 0; k < n; k++ {
						if ts[k] >= s && ts[k] < s+delta {
							cnt++
						}
					}
					if cnt < l.Eval(delta) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct {
		a, b, ceil, floor int64
	}{
		{7, 2, 4, 3}, {8, 2, 4, 4}, {-7, 2, -3, -4}, {0, 5, 0, 0}, {-8, 2, -4, -4},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

func TestHorizonPositive(t *testing.T) {
	if h := Horizon(); h <= 0 {
		t.Errorf("Horizon() with no models = %d, want positive", h)
	}
	m := PJD{Period: 30000, Jitter: 5000}
	if h := Horizon(m, m); h < 2*m.SuggestedHorizon() {
		t.Errorf("Horizon(m,m) = %d, want >= %d", h, 2*m.SuggestedHorizon())
	}
}

func TestFitPJDStrictlyPeriodic(t *testing.T) {
	ts := make([]Time, 20)
	for i := range ts {
		ts[i] = Time(i) * 50
	}
	m, err := FitPJD(ts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period != 50 || m.Jitter != 0 || m.MinDist != 50 {
		t.Errorf("fitted %v, want <50,0,50>", m)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFitPJDEnvelopeContainsTrace(t *testing.T) {
	// A jittered periodic trace must lie within its fitted envelope.
	var ts []Time
	state := int64(99)
	for i := 0; i < 60; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		ph := ((state >> 33) & 0xFFFF) % 9
		ts = append(ts, Time(i)*40+ph)
	}
	m, err := FitPJD(ts)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Upper()
	for a := 0; a < len(ts); a++ {
		for b := a; b < len(ts); b++ {
			delta := ts[b] - ts[a] + 1
			if cnt := Count(b - a + 1); cnt > u.Eval(delta) {
				t.Fatalf("fitted upper violated: %d events in window %d (model %v)", cnt, delta, m)
			}
		}
	}
}

func TestFitPJDErrors(t *testing.T) {
	if _, err := FitPJD([]Time{1, 2}); err == nil {
		t.Error("too few timestamps should fail")
	}
	if _, err := FitPJD([]Time{3, 2, 4}); err == nil {
		t.Error("unsorted should fail")
	}
	if _, err := FitPJD([]Time{5, 5, 5}); err == nil {
		t.Error("zero span should fail")
	}
}
