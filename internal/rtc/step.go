package rtc

import (
	"fmt"
	"sort"
)

// StepPoint is one breakpoint of a StepCurve: at interval length Delta
// and beyond (until the next breakpoint) the curve has value Value.
type StepPoint struct {
	Delta Time
	Value Count
}

// StepCurve is a general wide-sense increasing staircase arrival curve:
// an explicit list of breakpoints for the transient prefix, followed by a
// long-run linear extension with rate RateNum/RateDen tokens per tick
// beyond the last breakpoint. It can represent measured (calibrated)
// curves that do not fit the PJD model, as the paper's Section 3.4 allows
// ("provided as a part of the timing model, or derived from calibration
// experiments").
type StepCurve struct {
	points  []StepPoint
	rateNum Count
	rateDen Time
}

// NewStepCurve builds a StepCurve from breakpoints and a long-run rate of
// rateNum tokens per rateDen ticks (rateDen must be positive; rateNum may
// be zero for a curve that saturates). Breakpoints are sorted and
// validated for monotonicity.
func NewStepCurve(points []StepPoint, rateNum Count, rateDen Time) (*StepCurve, error) {
	if rateDen <= 0 {
		return nil, fmt.Errorf("rtc: step-curve rate denominator must be positive, got %d", rateDen)
	}
	if rateNum < 0 {
		return nil, fmt.Errorf("rtc: step-curve rate must be non-negative, got %d", rateNum)
	}
	ps := make([]StepPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Delta < ps[j].Delta })
	for i := range ps {
		if ps[i].Delta < 0 {
			return nil, fmt.Errorf("rtc: step-curve breakpoint at negative Δ=%d", ps[i].Delta)
		}
		if ps[i].Value < 0 {
			return nil, fmt.Errorf("rtc: step-curve value must be non-negative, got %d at Δ=%d", ps[i].Value, ps[i].Delta)
		}
		if i > 0 {
			if ps[i].Delta == ps[i-1].Delta {
				return nil, fmt.Errorf("rtc: duplicate step-curve breakpoint at Δ=%d", ps[i].Delta)
			}
			if ps[i].Value < ps[i-1].Value {
				return nil, fmt.Errorf("rtc: step curve not monotone at Δ=%d (%d < %d)",
					ps[i].Delta, ps[i].Value, ps[i-1].Value)
			}
		}
	}
	return &StepCurve{points: ps, rateNum: rateNum, rateDen: rateDen}, nil
}

// Eval implements Curve. Beyond the last breakpoint the curve grows as
// lastValue + floor(rate * elapsed).
func (c *StepCurve) Eval(delta Time) Count {
	if delta <= 0 || len(c.points) == 0 {
		if delta <= 0 {
			return 0
		}
		return c.rateNum * floorDiv(delta, c.rateDen) // pure-rate curve
	}
	// Binary search for the last breakpoint with Delta <= delta.
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Delta > delta })
	if i == 0 {
		return 0
	}
	last := c.points[i-1]
	if i < len(c.points) {
		return last.Value
	}
	elapsed := delta - last.Delta
	return last.Value + c.rateNum*floorDiv(elapsed, c.rateDen)
}

// NumBreakpoints returns the number of explicit breakpoints in the
// transient prefix of the curve.
func (c *StepCurve) NumBreakpoints() int { return len(c.points) }

// Breakpoints implements BreakpointCurve: the explicit transient
// breakpoints plus, beyond the last one, the ticks where the long-run
// linear extension steps (every rateDen ticks while rateNum > 0).
func (c *StepCurve) Breakpoints(horizon Time) []Time {
	pts := []Time{0}
	var tail Time // where the rate extension starts stepping
	if len(c.points) == 0 {
		tail = 0
	} else {
		for _, p := range c.points {
			if p.Delta <= horizon {
				pts = append(pts, p.Delta)
			}
		}
		tail = c.points[len(c.points)-1].Delta
	}
	if c.rateNum > 0 {
		for delta := tail + c.rateDen; delta <= horizon; delta += c.rateDen {
			pts = append(pts, delta)
		}
	}
	return mergePoints(horizon, pts)
}

// LongRunRate implements Rated: the explicit extension rate.
func (c *StepCurve) LongRunRate() (Count, Time) { return c.rateNum, c.rateDen }

// CalibratedCurves derives an upper and a lower arrival curve from a
// trace of observed event timestamps, the way a calibration experiment
// would (paper §3.4: curves "derived from calibration experiments"). The
// curves are exact for the trace: for every window length Δ up to the
// trace span, upper(Δ) is the maximum and lower(Δ) the minimum number of
// events in any window of that length. Beyond the trace span the upper
// curve extends with the densest observed long-run rate and the lower
// curve with the sparsest.
//
// The timestamps must be sorted in non-decreasing order; maxWindows caps
// the number of distinct window lengths sampled (the full O(n²) set is
// used when maxWindows <= 0 or n is small).
func CalibratedCurves(timestamps []Time, maxWindows int) (upper, lower Curve, err error) {
	n := len(timestamps)
	if n < 2 {
		return nil, nil, fmt.Errorf("rtc: calibration needs at least 2 timestamps, got %d", n)
	}
	for i := 1; i < n; i++ {
		if timestamps[i] < timestamps[i-1] {
			return nil, nil, fmt.Errorf("rtc: calibration timestamps not sorted at index %d", i)
		}
	}
	span := timestamps[n-1] - timestamps[0]
	if span <= 0 {
		return nil, nil, fmt.Errorf("rtc: calibration trace has zero span")
	}

	// For k = 1..n-1, the tightest window containing k+1 events has length
	// min over i of timestamps[i+k]-timestamps[i]; the loosest, max over i.
	// From these, upper(Δ) >= k+1 for Δ > minSpan(k) and lower(Δ) <= k for
	// Δ < maxSpan(k) - the standard trace-to-curve construction.
	upPts := []StepPoint{{Delta: 1, Value: 1}}
	loPts := []StepPoint{}
	for k := 1; k < n; k++ {
		minSpan, maxSpan := span, Time(0)
		for i := 0; i+k < n; i++ {
			d := timestamps[i+k] - timestamps[i]
			if d < minSpan {
				minSpan = d
			}
			if d > maxSpan {
				maxSpan = d
			}
		}
		// Any window strictly longer than minSpan(k) can contain k+1 events.
		upPts = append(upPts, StepPoint{Delta: minSpan + 1, Value: Count(k + 1)})
		// A window must exceed maxSpan(k) to be guaranteed k events... the
		// guaranteed count reaches k only once Δ > maxSpan(k).
		loPts = append(loPts, StepPoint{Delta: maxSpan + 1, Value: Count(k)})
	}
	upPts = dedupeSteps(upPts)
	loPts = dedupeSteps(loPts)
	if maxWindows > 0 {
		upPts = thinStepsUpper(upPts, maxWindows)
		loPts = thinStepsLower(loPts, maxWindows)
	}

	// Long-run rates: densest k-event packing for upper, sparsest for lower.
	avgDen := span / Time(n-1)
	if avgDen <= 0 {
		avgDen = 1
	}
	u, err := NewStepCurve(upPts, 1, avgDen)
	if err != nil {
		return nil, nil, err
	}
	l, err := NewStepCurve(loPts, 1, avgDen)
	if err != nil {
		return nil, nil, err
	}
	return u, l, nil
}

// dedupeSteps keeps, for equal deltas, the largest value, and drops
// non-increasing entries so the result is strictly increasing in both
// coordinates.
func dedupeSteps(pts []StepPoint) []StepPoint {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Delta != pts[j].Delta {
			return pts[i].Delta < pts[j].Delta
		}
		return pts[i].Value < pts[j].Value
	})
	out := pts[:0]
	for _, p := range pts {
		for len(out) > 0 && out[len(out)-1].Delta == p.Delta {
			out = out[:len(out)-1]
		}
		if len(out) == 0 || p.Value > out[len(out)-1].Value {
			out = append(out, p)
		}
	}
	return out
}

// thinStepsUpper reduces an upper-curve breakpoint list to at most max
// entries conservatively: consecutive breakpoints are grouped and each
// group collapses to (earliest delta, largest value), so the thinned
// curve dominates the exact one everywhere.
func thinStepsUpper(pts []StepPoint, max int) []StepPoint {
	if len(pts) <= max || max < 1 {
		return pts
	}
	out := make([]StepPoint, 0, max)
	for g := 0; g < max; g++ {
		lo := g * len(pts) / max
		hi := (g+1)*len(pts)/max - 1
		out = append(out, StepPoint{Delta: pts[lo].Delta, Value: pts[hi].Value})
	}
	return dedupeSteps(out)
}

// thinStepsLower reduces a lower-curve breakpoint list conservatively:
// keeping a subset of the original points never overestimates, because
// between kept points the curve holds the previous (smaller) value.
func thinStepsLower(pts []StepPoint, max int) []StepPoint {
	if len(pts) <= max || max < 2 {
		return pts
	}
	out := make([]StepPoint, 0, max)
	stride := float64(len(pts)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, pts[int(float64(i)*stride+0.5)])
	}
	return dedupeSteps(out)
}
