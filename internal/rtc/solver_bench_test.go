package rtc

import "testing"

// Micro-benchmarks comparing the breakpoint-driven solvers against the
// dense tick-scan references at a 1e5-tick horizon (the order of the
// horizons ComputeSizing uses for the paper's applications).

const benchHorizon = Time(100000)

var (
	benchHealthy = PJD{Period: 900, Jitter: 250, MinDist: 100}
	benchFaulty  = PJD{Period: 1100, Jitter: 400}
	benchService = RateLatency{LatencyUs: 700, Rate: 1, Per: 800}
)

func BenchmarkSupDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := supDiff(benchFaulty.Upper(), benchHealthy.Lower(), benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseSupDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DenseSupDiff(benchFaulty.Upper(), benchHealthy.Lower(), benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectionBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DetectionBound(benchHealthy.Lower(), Zero, 4, benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseDetectionBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DenseDetectionBound(benchHealthy.Lower(), Zero, 4, benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

// OutputBound is quadratic in its scan set, so the dense reference runs
// at a reduced horizon; the breakpoint version is benchmarked at both.

const denseDeconvHorizon = Time(20000)

func BenchmarkOutputBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := OutputBound(benchHealthy.Upper(), benchService, denseDeconvHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOutputBound100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := OutputBound(benchHealthy.Upper(), benchService, benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseOutputBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DenseOutputBound(benchHealthy.Upper(), benchService, denseDeconvHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelayBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DelayBound(benchHealthy.Upper(), benchService, benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseDelayBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DenseDelayBound(benchHealthy.Upper(), benchService, benchHorizon); err != nil {
			b.Fatal(err)
		}
	}
}
