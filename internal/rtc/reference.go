package rtc

// Reference solvers: the original per-tick dense-scan implementations,
// retained verbatim after the breakpoint-driven rewrite. They serve two
// purposes: (a) test oracles — the equivalence property tests check that
// the breakpoint solvers return exactly the same values on randomized
// models — and (b) fallbacks for OutputBound/DelayBound when a curve
// exposes neither breakpoints nor an exact long-run rate. They scan every
// integer tick and are O(horizon) to O(horizon²); do not use them on
// production paths.

// DenseSupDiff computes sup_{0<=Δ<=horizon} { a(Δ) - b(Δ) } by scanning
// every tick, verifying convergence with the last-improvement heuristic:
// if a new maximum is still being attained in the last eighth of the
// horizon, the difference is considered divergent and ErrUnbounded is
// returned.
func DenseSupDiff(a, b Curve, horizon Time) (Count, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	var sup Count
	lastImprove := Time(0)
	for delta := Time(0); delta <= h; delta++ {
		if d := a.Eval(delta) - b.Eval(delta); d > sup {
			sup = d
			lastImprove = delta
		}
	}
	if h >= 16 && lastImprove > h-h/8 {
		return 0, ErrUnbounded
	}
	return sup, nil
}

// DenseDetectionBound is the per-tick reference for DetectionBound: the
// smallest Δ with healthyLower(Δ) - faultyUpper(Δ) >= 2D-1.
func DenseDetectionBound(healthyLower, faultyUpper Curve, d Count, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	need := 2*d - 1
	for delta := Time(0); delta <= h; delta++ {
		if healthyLower.Eval(delta)-faultyUpper.Eval(delta) >= need {
			return delta, nil
		}
	}
	return 0, ErrUnreachable
}

// DenseTimeToReach is the per-tick reference for TimeToReach: the
// smallest Δ in [0, horizon] with c(Δ) >= need.
func DenseTimeToReach(c Curve, need Count, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	for delta := Time(0); delta <= h; delta++ {
		if c.Eval(delta) >= need {
			return delta, nil
		}
	}
	return 0, ErrUnreachable
}

// DenseOutputBound is the O(horizon²) reference for OutputBound: the
// (min,+) deconvolution α' = α ⊘ β evaluated tick-by-tick with the
// last-improvement unboundedness heuristic of the seed implementation.
func DenseOutputBound(input Curve, service ServiceCurve, horizon Time) (Curve, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return nil, err
	}
	// Precompute the output curve as an explicit table up to the horizon.
	vals := make([]Count, h+1)
	for delta := Time(0); delta <= h; delta++ {
		var sup Count
		lastImprove := Time(0)
		for u := Time(0); u <= h; u++ {
			if v := input.Eval(delta+u) - service.Eval(u); v > sup {
				sup = v
				lastImprove = u
			}
		}
		if h >= 16 && lastImprove > h-h/8 {
			return nil, ErrUnbounded
		}
		vals[delta] = sup
	}
	rate := vals[h] - vals[h-1]
	if rate < 0 {
		rate = 0
	}
	return CurveFunc(func(delta Time) Count {
		if delta <= 0 {
			return 0
		}
		if delta <= h {
			return vals[delta]
		}
		return vals[h] + rate*Count(delta-h) // linear extension
	}), nil
}

// DenseDelayBound is the per-tick reference for DelayBound: the
// horizontal deviation sup_t inf { d | α(t) <= β(t+d) } with the seed's
// 4·horizon search limit and last-improvement heuristic.
func DenseDelayBound(input Curve, service ServiceCurve, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	var worst Time
	lastImprove := Time(0)
	for t := Time(0); t <= h; t++ {
		need := input.Eval(t)
		if need == 0 {
			continue
		}
		// Find the smallest d with β(t+d) >= need.
		d, found := Time(0), false
		for ; t+d <= 4*h; d++ {
			if service.Eval(t+d) >= need {
				found = true
				break
			}
		}
		if !found {
			return 0, ErrUnbounded
		}
		if d > worst {
			worst = d
			lastImprove = t
		}
	}
	// A bound still growing at the end of the horizon indicates an
	// overloaded server: the true supremum is infinite.
	if h >= 16 && lastImprove > h-h/8 {
		return 0, ErrUnbounded
	}
	return worst, nil
}
