package rtc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBufferCapacityMatchedRates(t *testing.T) {
	// Producer and consumer both period 10; producer jitter 5, consumer
	// jitter 15: capacity must absorb producer bursts plus consumer lag.
	prod := PJD{Period: 10, Jitter: 5}
	cons := PJD{Period: 10, Jitter: 15}
	cap, err := BufferCapacity(prod.Upper(), cons.Lower(), Horizon(prod, cons))
	if err != nil {
		t.Fatal(err)
	}
	// sup { ceil((Δ+5)/10) - max(0, floor((Δ-15)/10)) }: at Δ=15, 2-0=2; at
	// Δ=25, 3-1=2; at Δ=16..24, ceil((Δ+5)/10)=3 at Δ=16? ceil(21/10)=3,
	// floor(1/10)=0 => 3. Check it finds the true sup of 3.
	if cap != 3 {
		t.Errorf("BufferCapacity = %d, want 3", cap)
	}
}

func TestBufferCapacityZeroJitter(t *testing.T) {
	// Identical strictly periodic producer and consumer: capacity 1 is
	// enough (a token may arrive just before it is consumed).
	m := PJD{Period: 10}
	cap, err := BufferCapacity(m.Upper(), m.Lower(), Horizon(m, m))
	if err != nil {
		t.Fatal(err)
	}
	if cap != 1 {
		t.Errorf("BufferCapacity = %d, want 1", cap)
	}
}

func TestBufferCapacityUnbounded(t *testing.T) {
	// Producer strictly faster than consumer: no finite capacity.
	prod := PJD{Period: 9}
	cons := PJD{Period: 10}
	_, err := BufferCapacity(prod.Upper(), cons.Lower(), 100000)
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("BufferCapacity mismatched rates: err = %v, want ErrUnbounded", err)
	}
}

func TestBufferCapacityBadHorizon(t *testing.T) {
	m := PJD{Period: 10}
	if _, err := BufferCapacity(m.Upper(), m.Lower(), 0); err == nil {
		t.Error("BufferCapacity with horizon 0: want error")
	}
}

func TestInitialFill(t *testing.T) {
	// Replica output lags (jitter 20), consumer strict period 10: the
	// consumer can demand tokens before the replica guarantees them.
	out := PJD{Period: 10, Jitter: 20}
	cons := PJD{Period: 10}
	fill, err := InitialFill(out.Lower(), cons.Upper(), Horizon(out, cons))
	if err != nil {
		t.Fatal(err)
	}
	// sup { ceil(Δ/10) - max(0, floor((Δ-20)/10)) } = 3 (e.g. Δ=21: 3-0).
	if fill != 3 {
		t.Errorf("InitialFill = %d, want 3", fill)
	}
}

func TestDivergenceThresholdSymmetric(t *testing.T) {
	// Two replicas, same period, jitters 5 and 15.
	r1 := PJD{Period: 10, Jitter: 5}
	r2 := PJD{Period: 10, Jitter: 15}
	d, err := DivergenceThreshold(r1.Upper(), r1.Lower(), r2.Upper(), r2.Lower(), Horizon(r1, r2))
	if err != nil {
		t.Fatal(err)
	}
	// sup(u1-l2) at Δ=16..24 region: ceil((Δ+5)/10) - floor((Δ-15)/10):
	// Δ=25: 3-1=2; Δ=16: ceil(21/10)=3 - 0 = 3.
	// sup(u2-l1): Δ=6: ceil(21/10)=3 - 0 = 3; Δ=16: ceil(31/10)=4 - floor(11/10)=1 -> 3.
	// So sup = 3, D = 4.
	if d != 4 {
		t.Errorf("DivergenceThreshold = %d, want 4", d)
	}
}

func TestDivergenceThresholdIdenticalReplicas(t *testing.T) {
	r := PJD{Period: 10}
	d, err := DivergenceThreshold(r.Upper(), r.Lower(), r.Upper(), r.Lower(), Horizon(r, r))
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("DivergenceThreshold identical strict replicas = %d, want 2", d)
	}
}

func TestDetectionBoundStoppedReplica(t *testing.T) {
	// Healthy replica strictly periodic p=10, D=4: need lower(Δ) >= 7,
	// first at Δ = 70.
	healthy := PJD{Period: 10}
	b, err := DetectionBound(healthy.Lower(), Zero, 4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if b != 70 {
		t.Errorf("DetectionBound = %d, want 70", b)
	}
}

func TestDetectionBoundDegradedReplica(t *testing.T) {
	// Faulty replica degrades to period 40 (still producing, too slow);
	// healthy stays at period 10. Gap 2D-1 = 7 must open up.
	healthy := PJD{Period: 10}
	degraded := PJD{Period: 40}
	b, err := DetectionBound(healthy.Lower(), degraded.Upper(), 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// lower(Δ)=floor(Δ/10), degradedUpper(Δ)=ceil(Δ/40). At Δ=100: 10-3=7. ok
	// Check earlier: Δ=90: 9-3=6; Δ=95: 9-3=6; Δ=100 first.
	if b != 100 {
		t.Errorf("DetectionBound degraded = %d, want 100", b)
	}
	// Degraded detection must be slower than full-stop detection.
	stop, err := DetectionBound(healthy.Lower(), Zero, 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if stop >= b {
		t.Errorf("stopped bound %d should be < degraded bound %d", stop, b)
	}
}

func TestDetectionBoundUnreachable(t *testing.T) {
	// "Faulty" replica as fast as the healthy one: gap never opens.
	m := PJD{Period: 10}
	_, err := DetectionBound(m.Lower(), m.Upper(), 4, 5000)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestMaxDetectionBoundAsymmetric(t *testing.T) {
	// Replica 1 fast (p=10), replica 2 slow-ish (p=10, j=30): worst case
	// is detecting a fault of replica 1 using replica 2's lower curve.
	r1 := PJD{Period: 10}
	r2 := PJD{Period: 10, Jitter: 30}
	lowers := []Curve{r1.Lower(), r2.Lower()}
	uppers := []Curve{Zero, Zero} // both stop entirely after a fault
	b, err := MaxDetectionBound(lowers, uppers, 4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := DetectionBound(r2.Lower(), Zero, 4, 10000) // replica 1 faulty
	b2, _ := DetectionBound(r1.Lower(), Zero, 4, 10000) // replica 2 faulty
	want := b1
	if b2 > want {
		want = b2
	}
	if b != want {
		t.Errorf("MaxDetectionBound = %d, want %d", b, want)
	}
	if b1 <= b2 {
		t.Errorf("expected asymmetry: bound with jittery healthy replica (%d) should exceed %d", b1, b2)
	}
}

func TestMaxDetectionBoundDegenerate(t *testing.T) {
	if _, err := MaxDetectionBound(nil, nil, 2, 100); err == nil {
		t.Error("MaxDetectionBound(nil) should fail")
	}
	m := PJD{Period: 5}
	if _, err := MaxDetectionBound([]Curve{m.Lower()}, []Curve{Zero}, 2, 100); err == nil {
		t.Error("MaxDetectionBound with one replica should fail")
	}
}

func TestStoppedDetectionBound(t *testing.T) {
	r1 := PJD{Period: 10}
	r2 := PJD{Period: 10, Jitter: 20}
	b, err := StoppedDetectionBound([]Curve{r1.Lower(), r2.Lower()}, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// 2D-1 = 5. r1: floor(Δ/10) >= 5 at 50. r2: floor((Δ-20)/10) >= 5 at 70.
	if b != 70 {
		t.Errorf("StoppedDetectionBound = %d, want 70", b)
	}
}

// Property: detection bound is monotone in D — a larger threshold never
// detects faster.
func TestDetectionBoundMonotoneInD(t *testing.T) {
	prop := func(period uint8, jitter uint8, d uint8) bool {
		m := PJD{Period: Time(period%40) + 1, Jitter: Time(jitter % 40)}
		dd := Count(d%8) + 1
		b1, err1 := DetectionBound(m.Lower(), Zero, dd, 1<<20)
		b2, err2 := DetectionBound(m.Lower(), Zero, dd+1, 1<<20)
		if err1 != nil || err2 != nil {
			return false
		}
		return b2 >= b1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: eq. 3 really holds — simulate the worst-case producer trace
// against the guaranteed consumer trace and confirm the computed capacity
// is never exceeded.
func TestBufferCapacitySufficient(t *testing.T) {
	prop := func(pj uint8, cj uint8) bool {
		p := Time(20)
		prod := PJD{Period: p, Jitter: Time(pj % 40)}
		cons := PJD{Period: p, Jitter: Time(cj % 40)}
		capTok, err := BufferCapacity(prod.Upper(), cons.Lower(), Horizon(prod, cons))
		if err != nil {
			return false
		}
		// Backlog at any Δ is at most prodUpper(Δ) - consLower(Δ) when the
		// queue never empties; verify across a long window.
		for delta := Time(0); delta < 50*p; delta++ {
			if prod.Upper().Eval(delta)-cons.Lower().Eval(delta) > capTok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: D from eq. 5 admits no false positives — for any fault-free
// pair of traces within their envelopes, |received1 - received2| < D.
func TestDivergenceThresholdNoFalsePositives(t *testing.T) {
	prop := func(j1, j2 uint8) bool {
		p := Time(25)
		r1 := PJD{Period: p, Jitter: Time(j1 % 50)}
		r2 := PJD{Period: p, Jitter: Time(j2 % 50)}
		d, err := DivergenceThreshold(r1.Upper(), r1.Lower(), r2.Upper(), r2.Lower(), Horizon(r1, r2))
		if err != nil {
			return false
		}
		// The worst divergence over a window Δ is bounded by
		// max(u1(Δ)-l2(Δ), u2(Δ)-l1(Δ)); verify < D over a long window.
		for delta := Time(0); delta < 100*p; delta++ {
			d12 := r1.Upper().Eval(delta) - r2.Lower().Eval(delta)
			d21 := r2.Upper().Eval(delta) - r1.Lower().Eval(delta)
			if d12 >= d || d21 >= d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
