package rtc

// (m,k) weakly-hard generalizations of the detection analyses of
// Section 3.4 (eqs. 5-8). Under an (m,k) policy (Liang et al.) a
// replica is convicted only when more than m of its last k detection
// samples were violations, so a permanently faulty replica must first
// accumulate m+1 violating samples where the binary policy needed one.
//
// Divergence threshold under (m,k): D itself must NOT shrink. Eq. 5's D
// is the smallest bound two fault-free replicas can never reach; any
// smaller D' admits fault-free excursions that can persist for
// unboundedly many consecutive samples (the envelopes allow a replica
// to sit at the supremum difference for arbitrarily long), so no finite
// m forgives them safely. The relaxation under (m,k) is therefore in
// the conviction rule, not the threshold, and the detection-latency
// bounds below account for the extra m forgiven violations.
//
// Detection latency: the binary bound (eq. 6) inverts the healthy
// replica's lower curve at a 2D-1 token gap — D-1 tokens of pre-fault
// slack, then D more to reach the threshold. Divergence samples arrive
// one per counted write of the healthy side, and each write past the
// threshold is one violation, so the (m,k) policy convicts at the
// (m+1)-th violating write: the gap to invert becomes 2D-1+m. k does
// not appear — a permanent fault violates every sample once past the
// threshold, so any k > m window fills with violations regardless of
// its length (k only controls how much *history* a transient needs to
// outlive).

// DetectionBoundMK generalizes eq. 6: the smallest Δ such that the
// healthy replica's lower curve exceeds the faulty replica's post-fault
// upper curve by 2D-1+m tokens — the (m+1)-th violating divergence
// sample, at which an (m,k) policy with any k > m convicts. m = 0
// reproduces DetectionBound exactly.
func DetectionBoundMK(healthyLower, faultyUpper Curve, d Count, m int, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	if m < 0 {
		m = 0
	}
	need := 2*d - 1 + Count(m)
	hb, fb := Sampled(healthyLower, h), Sampled(faultyUpper, h)
	for _, p := range mergePoints(h, hb.Breakpoints(h), fb.Breakpoints(h)) {
		if hb.Eval(p)-fb.Eval(p) >= need {
			return p, nil
		}
	}
	return 0, ErrUnreachable
}

// MaxDetectionBoundMK generalizes eq. 7 over all replica pairs under an
// (m,k) policy: the worst case over which replica is faulty of the
// per-pair DetectionBoundMK infimum.
func MaxDetectionBoundMK(healthyLowers, faultyUppers []Curve, d Count, m int, horizon Time) (Time, error) {
	if len(healthyLowers) != len(faultyUppers) || len(healthyLowers) < 2 {
		return 0, ErrUnreachable
	}
	var worst Time
	found := false
	for j := range faultyUppers {
		for i := range healthyLowers {
			if i == j {
				continue
			}
			b, err := DetectionBoundMK(healthyLowers[i], faultyUppers[j], d, m, horizon)
			if err != nil {
				return 0, err
			}
			if b > worst {
				worst = b
			}
			found = true
		}
	}
	if !found {
		return 0, ErrUnreachable
	}
	return worst, nil
}

// StoppedDetectionBoundMK specializes eq. 8 under (m,k): the faulty
// replica produces nothing after the fault, so the bound is the worst
// case over replicas of inf { Δ | α_i^l(Δ) >= 2D-1+m }. m = 0
// reproduces StoppedDetectionBound exactly.
func StoppedDetectionBoundMK(healthyLowers []Curve, d Count, m int, horizon Time) (Time, error) {
	var worst Time
	for _, l := range healthyLowers {
		b, err := DetectionBoundMK(l, Zero, d, m, horizon)
		if err != nil {
			return 0, err
		}
		if b > worst {
			worst = b
		}
	}
	return worst, nil
}

// ForgivenStallBound is the design-side converse: the largest outage
// duration Δ a transient glitch may impose on a replica without an
// (m,k) divergence policy ever convicting it. While the replica is
// silent the healthy side writes at most α_h^u(Δ) tokens; each write
// once the gap reaches D is one violation, so the glitch stays within
// budget when α_h^u(Δ) <= 2D-2+m (one less than the conviction gap of
// DetectionBoundMK). The bound is the largest merged breakpoint (and
// segment interior) satisfying that, scanned over [0, horizon]; 0 means
// even an instantaneous stall risks conviction only if D = 0.
func ForgivenStallBound(healthyUpper Curve, d Count, m int, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	if m < 0 {
		m = 0
	}
	budget := 2*d - 2 + Count(m)
	hb := Sampled(healthyUpper, h)
	// α_h^u is non-decreasing, so the admissible set is a prefix [0, Δ*].
	// Scan breakpoints for the first violation; Δ* is one tick before it
	// (staircases are right-continuous integer-tick curves).
	var last Time = h
	for _, p := range hb.Breakpoints(h) {
		if hb.Eval(p) > budget {
			if p == 0 {
				return 0, nil
			}
			last = p - 1
			break
		}
	}
	return last, nil
}

// StallViolationBudget estimates the (m,k) violation budget m needed to
// forgive a transient stall of glitchUs on a replica: while stalled and
// then catching up, the healthy side issues violating divergence
// samples; bounding the catch-up phase by a second glitch-length of
// writes gives m ≈ α_h^u(2·glitch). The factor 2 is a heuristic backed
// by the workloads' low stage utilization (a recovered replica drains
// its backlog much faster than the period, so catch-up adds well under
// one glitch-length of violating samples); detectbench measures the
// real margin. Returns at least 1.
func StallViolationBudget(healthyUpper Curve, glitchUs Time, horizon Time) (int, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	at := 2 * glitchUs
	if at > h {
		at = h
	}
	m := int(Sampled(healthyUpper, h).Eval(at))
	if m < 1 {
		m = 1
	}
	return m, nil
}
