package rtc

// Property tests proving the breakpoint-driven solvers value-equivalent
// to the dense tick-scan reference implementations (reference.go), which
// are the seed's original solvers kept as test oracles. Any divergence
// here means a breakpoint list omitted a change point or a candidate
// jump set missed a maximizer — both correctness bugs, not tolerances.

import (
	"errors"
	"math/rand"
	"testing"
)

// randPJD draws a small random PJD model; jitter and min-distance are
// biased toward the awkward edges (0, ==period).
func randPJD(rng *rand.Rand) PJD {
	p := Time(1 + rng.Intn(40))
	j := Time(rng.Intn(3 * int(p)))
	if rng.Intn(4) == 0 {
		j = 0
	}
	d := Time(rng.Intn(int(p) + 1))
	if rng.Intn(4) == 0 {
		d = 0
	}
	return PJD{Period: p, Jitter: j, MinDist: d}
}

// randTrace draws a sorted timestamp trace for CalibratedCurves.
func randTrace(rng *rand.Rand) []Time {
	n := 4 + rng.Intn(12)
	ts := make([]Time, n)
	var t Time
	for i := range ts {
		t += Time(1 + rng.Intn(30))
		ts[i] = t
	}
	return ts
}

// assertSameErr fails unless both errors are nil or both wrap the same
// sentinel.
func assertSameErr(t *testing.T, ctx string, got, want error) bool {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: error mismatch: breakpoint=%v dense=%v", ctx, got, want)
	}
	if want != nil {
		if !errors.Is(got, want) && got.Error() != want.Error() {
			t.Fatalf("%s: different errors: breakpoint=%v dense=%v", ctx, got, want)
		}
		return false
	}
	return true
}

func TestSupDiffMatchesDenseOnPJD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		a, b := randPJD(rng), randPJD(rng)
		h := Horizon(a, b)
		ds, derr := DenseSupDiff(a.Upper(), b.Lower(), h)
		bs, berr := supDiff(a.Upper(), b.Lower(), h)
		if errors.Is(derr, ErrUnbounded) {
			// The dense heuristic can only under-report divergence
			// relative to the exact rate test, never invent it: if the
			// heuristic fired, rates must genuinely diverge.
			if !errors.Is(berr, ErrUnbounded) {
				t.Fatalf("trial %d: dense heuristic unbounded (%v vs %v, h=%d) but exact rate test disagrees",
					trial, a, b, h)
			}
			continue
		}
		if errors.Is(berr, ErrUnbounded) {
			// Exact test may catch divergence the heuristic missed; check
			// the rates really do diverge (a faster than b).
			if a.Period >= b.Period {
				t.Fatalf("trial %d: rate test claims unbounded but periods %d >= %d", trial, a.Period, b.Period)
			}
			continue
		}
		if !assertSameErr(t, "supDiff", berr, derr) {
			continue
		}
		if bs != ds {
			t.Fatalf("trial %d: supDiff(%v,%v,h=%d) = %d, dense = %d", trial, a, b, h, bs, ds)
		}
	}
}

func TestSupDiffMatchesDenseOnCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		up, lo, err := CalibratedCurves(randTrace(rng), 0)
		if err != nil {
			t.Fatal(err)
		}
		h := Time(500 + rng.Intn(1500))
		ds, derr := DenseSupDiff(up, lo, h)
		bs, berr := supDiff(up, lo, h)
		if errors.Is(derr, ErrUnbounded) || errors.Is(berr, ErrUnbounded) {
			// Calibrated upper/lower share a long-run rate; exact test
			// never fires, and the heuristic firing is a legitimate
			// difference the exact test corrects. Just require the
			// breakpoint path not to invent divergence.
			if errors.Is(berr, ErrUnbounded) {
				t.Fatalf("trial %d: exact rate test claims unbounded for equal-rate curves", trial)
			}
			continue
		}
		if !assertSameErr(t, "supDiff calibrated", berr, derr) {
			continue
		}
		if bs != ds {
			t.Fatalf("trial %d: calibrated supDiff = %d, dense = %d (h=%d)", trial, bs, ds, h)
		}
	}
}

func TestDetectionBoundMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		healthy, faulty := randPJD(rng), randPJD(rng)
		h := Horizon(healthy, faulty)
		d := Count(1 + rng.Intn(5))
		var fu Curve = faulty.Upper()
		if rng.Intn(3) == 0 {
			fu = Zero // eq. 8: fail-silent replica
		}
		db, berr := DetectionBound(healthy.Lower(), fu, d, h)
		dd, derr := DenseDetectionBound(healthy.Lower(), fu, d, h)
		if !assertSameErr(t, "DetectionBound", berr, derr) {
			continue
		}
		if db != dd {
			t.Fatalf("trial %d: DetectionBound = %d, dense = %d (%v vs %v, D=%d, h=%d)",
				trial, db, dd, healthy, faulty, d, h)
		}
	}
}

func TestTimeToReachMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		m := randPJD(rng)
		h := m.SuggestedHorizon()
		need := Count(1 + rng.Intn(10))
		var c Curve = m.Lower()
		if trial%2 == 0 {
			c = m.Upper()
		}
		bt, berr := TimeToReach(c, need, h)
		dt, derr := DenseTimeToReach(c, need, h)
		if !assertSameErr(t, "TimeToReach", berr, derr) {
			continue
		}
		if bt != dt {
			t.Fatalf("trial %d: TimeToReach = %d, dense = %d (%v, need=%d)", trial, bt, dt, m, need)
		}
	}
}

// randService draws a rate-latency service curve at least as fast as the
// given input model, so deconvolution stays bounded.
func randService(rng *rand.Rand, in PJD) RateLatency {
	per := Time(1 + rng.Intn(int(in.Period)))
	return RateLatency{LatencyUs: Time(rng.Intn(60)), Rate: 1, Per: per}
}

func TestOutputBoundMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		in := randPJD(rng)
		svc := randService(rng, in)
		h := Time(200 + rng.Intn(400))
		bc, berr := OutputBound(in.Upper(), svc, h)
		dc, derr := DenseOutputBound(in.Upper(), svc, h)
		if errors.Is(derr, ErrUnbounded) {
			// Heuristic false alarm is possible on slow transients; the
			// exact path must only report unbounded when rates diverge,
			// which randService rules out.
			if errors.Is(berr, ErrUnbounded) {
				t.Fatalf("trial %d: exact OutputBound unbounded despite service at least as fast", trial)
			}
			continue
		}
		if !assertSameErr(t, "OutputBound", berr, derr) {
			continue
		}
		// Compare across the table range and beyond (linear extension).
		for _, delta := range []Time{-3, 0, 1, 2, h / 3, h/2 + 1, h - 1, h, h + 1, h + 7, 2 * h} {
			if bv, dv := bc.Eval(delta), dc.Eval(delta); bv != dv {
				t.Fatalf("trial %d: OutputBound(%v ⊘ %+v, h=%d).Eval(%d) = %d, dense = %d",
					trial, in, svc, h, delta, bv, dv)
			}
		}
		for delta := Time(0); delta <= h; delta++ {
			if bv, dv := bc.Eval(delta), dc.Eval(delta); bv != dv {
				t.Fatalf("trial %d: OutputBound.Eval(%d) = %d, dense = %d (%v ⊘ %+v, h=%d)",
					trial, delta, bv, dv, in, svc, h)
			}
		}
	}
}

func TestDelayBoundMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 120; trial++ {
		in := randPJD(rng)
		svc := randService(rng, in)
		h := Time(200 + rng.Intn(800))
		bd, berr := DelayBound(in.Upper(), svc, h)
		dd, derr := DenseDelayBound(in.Upper(), svc, h)
		if errors.Is(derr, ErrUnbounded) {
			if errors.Is(berr, ErrUnbounded) {
				t.Fatalf("trial %d: exact DelayBound unbounded despite service at least as fast", trial)
			}
			continue
		}
		if !assertSameErr(t, "DelayBound", berr, derr) {
			continue
		}
		if bd != dd {
			t.Fatalf("trial %d: DelayBound = %d, dense = %d (%v vs %+v, h=%d)", trial, bd, dd, in, svc, h)
		}
	}
}

// TestBreakpointsCoverChanges checks the BreakpointCurve contract for
// every implementation in the package: each Δ with Eval(Δ) != Eval(Δ-1)
// must appear in Breakpoints (supersets allowed, omissions not).
func TestBreakpointsCoverChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(name string, bc BreakpointCurve, h Time) {
		t.Helper()
		pts := bc.Breakpoints(h)
		set := make(map[Time]bool, len(pts))
		prev := Time(-1)
		for _, p := range pts {
			if p < 0 || p > h {
				t.Fatalf("%s: breakpoint %d outside [0,%d]", name, p, h)
			}
			if p <= prev {
				t.Fatalf("%s: breakpoints not strictly ascending at %d", name, p)
			}
			prev = p
			set[p] = true
		}
		if len(pts) == 0 || pts[0] != 0 {
			t.Fatalf("%s: breakpoints must start with 0", name)
		}
		for delta := Time(1); delta <= h; delta++ {
			if bc.Eval(delta) != bc.Eval(delta-1) && !set[delta] {
				t.Fatalf("%s: change at Δ=%d missing from breakpoints", name, delta)
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		m := randPJD(rng)
		h := m.SuggestedHorizon()
		check("pjdUpper", m.Upper().(BreakpointCurve), h)
		check("pjdLower", m.Lower().(BreakpointCurve), h)

		up, lo, err := CalibratedCurves(randTrace(rng), 0)
		if err != nil {
			t.Fatal(err)
		}
		check("step upper", up.(BreakpointCurve), 600)
		check("step lower", lo.(BreakpointCurve), 600)

		svc := randService(rng, m)
		check("rate-latency", svc, 500)
		if out, err := OutputBound(m.Upper(), svc, 300); err == nil {
			check("deconv", out.(BreakpointCurve), 450)
		}
	}
	check("zero", Zero.(BreakpointCurve), 100)
	check("sampled", Sampled(CurveFunc(func(d Time) Count {
		if d <= 0 {
			return 0
		}
		return Count(d / 7)
	}), 200), 200)
}

// TestOutputBoundExactOverload is the regression for the re-derived
// unboundedness condition: an input strictly faster than the service
// must report ErrUnbounded from the long-run rates alone, even at
// horizons far too short for the old last-improvement heuristic to
// trigger reliably.
func TestOutputBoundExactOverload(t *testing.T) {
	in := PJD{Period: 100, Jitter: 10}
	svc := RateLatency{LatencyUs: 0, Rate: 1, Per: 101} // barely too slow
	if _, err := OutputBound(in.Upper(), svc, 20000); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("rate 1/100 into service 1/101: got %v, want ErrUnbounded", err)
	}
	if _, err := DelayBound(in.Upper(), svc, 20000); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("DelayBound overloaded: got %v, want ErrUnbounded", err)
	}
	if _, err := BacklogBound(in.Upper(), svc, 20000); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("BacklogBound overloaded: got %v, want ErrUnbounded", err)
	}
	// Matched rates stay bounded at any horizon.
	ok := RateLatency{LatencyUs: 50, Rate: 1, Per: 100}
	if _, err := OutputBound(in.Upper(), ok, 20000); err != nil {
		t.Fatalf("matched rates should be bounded: %v", err)
	}
}
