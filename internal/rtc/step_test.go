package rtc

import (
	"testing"
	"testing/quick"
)

func TestNewStepCurveValidation(t *testing.T) {
	if _, err := NewStepCurve(nil, 1, 0); err == nil {
		t.Error("zero rate denominator should fail")
	}
	if _, err := NewStepCurve(nil, -1, 10); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := NewStepCurve([]StepPoint{{Delta: -1, Value: 1}}, 1, 10); err == nil {
		t.Error("negative delta should fail")
	}
	if _, err := NewStepCurve([]StepPoint{{Delta: 5, Value: 2}, {Delta: 5, Value: 3}}, 1, 10); err == nil {
		t.Error("duplicate delta should fail")
	}
	if _, err := NewStepCurve([]StepPoint{{Delta: 1, Value: 3}, {Delta: 5, Value: 2}}, 1, 10); err == nil {
		t.Error("non-monotone values should fail")
	}
	if _, err := NewStepCurve([]StepPoint{{Delta: 1, Value: -1}}, 1, 10); err == nil {
		t.Error("negative value should fail")
	}
}

func TestStepCurveEval(t *testing.T) {
	c, err := NewStepCurve([]StepPoint{
		{Delta: 1, Value: 1},
		{Delta: 10, Value: 3},
		{Delta: 25, Value: 4},
	}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		delta Time
		want  Count
	}{
		{0, 0}, {-3, 0},
		{1, 1}, {9, 1},
		{10, 3}, {24, 3},
		{25, 4}, {34, 4},
		{35, 5},   // 4 + floor(10/10)
		{105, 12}, // 4 + floor(80/10)
	}
	for _, c2 := range cases {
		if got := c.Eval(c2.delta); got != c2.want {
			t.Errorf("Eval(%d) = %d, want %d", c2.delta, got, c2.want)
		}
	}
	if c.NumBreakpoints() != 3 {
		t.Errorf("NumBreakpoints = %d, want 3", c.NumBreakpoints())
	}
}

func TestStepCurvePureRate(t *testing.T) {
	c, err := NewStepCurve(nil, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(25); got != 10 {
		t.Errorf("pure-rate Eval(25) = %d, want 10", got)
	}
	if got := c.Eval(0); got != 0 {
		t.Errorf("pure-rate Eval(0) = %d, want 0", got)
	}
}

func TestStepCurveSortsInput(t *testing.T) {
	c, err := NewStepCurve([]StepPoint{
		{Delta: 10, Value: 3},
		{Delta: 1, Value: 1},
	}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(5); got != 1 {
		t.Errorf("Eval(5) = %d, want 1", got)
	}
}

// Property: step curves are monotone regardless of rate/breakpoints.
func TestStepCurveMonotone(t *testing.T) {
	prop := func(v1, v2, v3 uint8, d1, d2 uint16) bool {
		a, b, c := Count(v1%10), Count(v1%10)+Count(v2%10), Count(v1%10)+Count(v2%10)+Count(v3%10)
		sc, err := NewStepCurve([]StepPoint{
			{Delta: 1, Value: a},
			{Delta: 50, Value: b},
			{Delta: 200, Value: c},
		}, 1, 25)
		if err != nil {
			return false
		}
		x, y := Time(d1), Time(d2)
		if x > y {
			x, y = y, x
		}
		return sc.Eval(x) <= sc.Eval(y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCalibratedCurvesPeriodicTrace(t *testing.T) {
	// A strictly periodic trace should calibrate to curves close to the
	// PJD{Period:10} envelope.
	ts := make([]Time, 50)
	for i := range ts {
		ts[i] = Time(i) * 10
	}
	u, l, err := CalibratedCurves(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Windows of length 11 contain at most 2 events, at least 1.
	if got := u.Eval(11); got != 2 {
		t.Errorf("calibrated upper(11) = %d, want 2", got)
	}
	if got := l.Eval(9); got != 0 {
		t.Errorf("calibrated lower(9) = %d, want 0", got)
	}
	if got := l.Eval(11); got != 1 {
		t.Errorf("calibrated lower(11) = %d, want 1", got)
	}
}

func TestCalibratedCurvesEnvelopeHolds(t *testing.T) {
	// The calibrated curves must bound the trace that produced them.
	ts := []Time{0, 8, 21, 30, 44, 50, 63, 70, 85, 90}
	u, l, err := CalibratedCurves(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ts)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			delta := ts[b] - ts[a] + 1
			cnt := Count(b - a + 1)
			if got := u.Eval(delta); got < cnt {
				t.Fatalf("upper(%d) = %d < observed %d events", delta, got, cnt)
			}
		}
	}
	// Lower bound: the guaranteed count must not exceed the minimum over
	// all window placements that lie fully inside the observation span.
	span := ts[n-1]
	for _, delta := range []Time{5, 15, 25, 40, 60, 90} {
		min := Count(n)
		for a := 0; a < n; a++ {
			if ts[a]+delta > span {
				continue
			}
			var cnt Count
			for k := 0; k < n; k++ {
				if ts[k] >= ts[a] && ts[k] < ts[a]+delta {
					cnt++
				}
			}
			if cnt < min {
				min = cnt
			}
		}
		if got := l.Eval(delta); got > min {
			t.Fatalf("lower(%d) = %d > guaranteed minimum %d", delta, got, min)
		}
	}
}

func TestCalibratedCurvesErrors(t *testing.T) {
	if _, _, err := CalibratedCurves([]Time{5}, 0); err == nil {
		t.Error("single timestamp should fail")
	}
	if _, _, err := CalibratedCurves([]Time{5, 3}, 0); err == nil {
		t.Error("unsorted timestamps should fail")
	}
	if _, _, err := CalibratedCurves([]Time{5, 5}, 0); err == nil {
		t.Error("zero-span trace should fail")
	}
}

func TestCalibratedCurvesThinning(t *testing.T) {
	ts := make([]Time, 200)
	for i := range ts {
		ts[i] = Time(i)*10 + Time(i%3) // slight jitter
	}
	u, l, err := CalibratedCurves(ts, 16)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := u.(*StepCurve)
	if !ok {
		t.Fatal("calibrated curve is not a *StepCurve")
	}
	if sc.NumBreakpoints() > 16 {
		t.Errorf("thinned curve has %d breakpoints, want <= 16", sc.NumBreakpoints())
	}
	// Thinning must stay conservative: thinned upper >= exact upper,
	// thinned lower <= exact lower, at every sampled window length.
	uFull, lFull, err := CalibratedCurves(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for delta := Time(0); delta <= ts[len(ts)-1]; delta += 7 {
		if u.Eval(delta) < uFull.Eval(delta) {
			t.Fatalf("thinned upper(%d)=%d below exact %d", delta, u.Eval(delta), uFull.Eval(delta))
		}
		if l.Eval(delta) > lFull.Eval(delta) {
			t.Fatalf("thinned lower(%d)=%d above exact %d", delta, l.Eval(delta), lFull.Eval(delta))
		}
	}
}

func TestZeroCurve(t *testing.T) {
	for _, d := range []Time{-1, 0, 1, 1000000} {
		if Zero.Eval(d) != 0 {
			t.Errorf("Zero.Eval(%d) != 0", d)
		}
	}
}

func TestCurveFunc(t *testing.T) {
	c := CurveFunc(func(d Time) Count { return Count(d) })
	if c.Eval(7) != 7 {
		t.Error("CurveFunc does not delegate")
	}
}
