package rtc

// Network-calculus extensions: service curves and the standard
// (min,+)-algebra bounds. The paper sizes queues from arrival curves it
// assumes given at every interface (§3.4, citing interface-based rate
// analysis); these helpers derive such interface curves from first
// principles — a stage's output envelope from its input envelope and a
// service-curve model of the stage — so the per-replica envelopes need
// not be hand-calibrated.
//
// All operators are evaluated numerically over integer-tick horizons,
// which is exact for the staircase curves used throughout this package.

import "fmt"

// ServiceCurve is a lower service curve β(Δ): a guarantee that any
// backlogged interval of length Δ sees at least β(Δ) tokens served.
type ServiceCurve interface {
	// Eval returns the guaranteed service in any window of length delta.
	Eval(delta Time) Count
}

// RateLatency is the classical β_{R,T} service curve: after an initial
// latency T, service proceeds at R tokens per Per ticks —
// β(Δ) = max(0, floor((Δ-T) * R / Per)).
type RateLatency struct {
	LatencyUs Time
	Rate      Count // tokens per Per ticks
	Per       Time
}

// Validate reports whether the curve parameters are usable.
func (s RateLatency) Validate() error {
	if s.LatencyUs < 0 {
		return fmt.Errorf("rtc: service latency must be non-negative, got %d", s.LatencyUs)
	}
	if s.Rate <= 0 || s.Per <= 0 {
		return fmt.Errorf("rtc: service rate must be positive, got %d/%d", s.Rate, s.Per)
	}
	return nil
}

// Eval implements ServiceCurve.
func (s RateLatency) Eval(delta Time) Count {
	if delta <= s.LatencyUs {
		return 0
	}
	return Count((delta - s.LatencyUs)) * s.Rate / Count(s.Per)
}

// StageService models one pipeline stage as a rate-latency server: a
// stage that takes between MinUs and MaxUs per token offers (to a
// backlogged input) one token per MaxUs after an initial MaxUs latency.
func StageService(minUs, maxUs Time) (RateLatency, error) {
	if minUs < 0 || maxUs < minUs || maxUs <= 0 {
		return RateLatency{}, fmt.Errorf("rtc: invalid stage bounds [%d,%d]", minUs, maxUs)
	}
	return RateLatency{LatencyUs: maxUs, Rate: 1, Per: maxUs}, nil
}

// OutputBound computes the tightest upper arrival curve of a stage's
// output given the input's upper arrival curve and the stage's lower
// service curve — the (min,+) deconvolution α' = α ⊘ β:
//
//	α'(Δ) = sup_{u >= 0} { α(Δ+u) − β(u) },
//
// evaluated over u in [0, horizon]. The supremum must stabilize within
// the horizon or ErrUnbounded is returned (an input faster than the
// service rate has no bounded output envelope... or backlog).
func OutputBound(input Curve, service ServiceCurve, horizon Time) (Curve, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return nil, err
	}
	// Precompute the output curve as an explicit table up to the horizon.
	vals := make([]Count, h+1)
	for delta := Time(0); delta <= h; delta++ {
		var sup Count
		lastImprove := Time(0)
		for u := Time(0); u <= h; u++ {
			if v := input.Eval(delta+u) - service.Eval(u); v > sup {
				sup = v
				lastImprove = u
			}
		}
		if h >= 16 && lastImprove > h-h/8 {
			return nil, ErrUnbounded
		}
		vals[delta] = sup
	}
	rate := vals[h] - vals[h-1]
	if rate < 0 {
		rate = 0
	}
	return CurveFunc(func(delta Time) Count {
		if delta <= 0 {
			return 0
		}
		if delta <= h {
			return vals[delta]
		}
		return vals[h] + rate*Count(delta-h) // linear extension
	}), nil
}

// DelayBound computes the classical horizontal-deviation delay bound
// h(α, β): the maximum time a token can spend in a stage with input
// envelope α and service curve β,
//
//	h = sup_{t >= 0} inf { d >= 0 | α(t) <= β(t+d) }.
func DelayBound(input Curve, service ServiceCurve, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	var worst Time
	lastImprove := Time(0)
	for t := Time(0); t <= h; t++ {
		need := input.Eval(t)
		if need == 0 {
			continue
		}
		// Find the smallest d with β(t+d) >= need.
		d, found := Time(0), false
		for ; t+d <= 4*h; d++ {
			if service.Eval(t+d) >= need {
				found = true
				break
			}
		}
		if !found {
			return 0, ErrUnbounded
		}
		if d > worst {
			worst = d
			lastImprove = t
		}
	}
	// A bound still growing at the end of the horizon indicates an
	// overloaded server: the true supremum is infinite.
	if h >= 16 && lastImprove > h-h/8 {
		return 0, ErrUnbounded
	}
	return worst, nil
}

// BacklogBound computes the vertical deviation v(α, β): the maximum
// number of tokens simultaneously queued in the stage — directly usable
// as an internal FIFO capacity.
func BacklogBound(input Curve, service ServiceCurve, horizon Time) (Count, error) {
	return supDiff(input, CurveFunc(service.Eval), horizon)
}

// PipelineOutputBound chains OutputBound through consecutive stages,
// returning the envelope of the final stage's output — the analytic
// derivation of a replica's production envelope from its stage models.
func PipelineOutputBound(input Curve, stages []ServiceCurve, horizon Time) (Curve, error) {
	cur := input
	for i, s := range stages {
		out, err := OutputBound(cur, s, horizon)
		if err != nil {
			return nil, fmt.Errorf("rtc: pipeline stage %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}
