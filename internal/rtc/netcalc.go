package rtc

// Network-calculus extensions: service curves and the standard
// (min,+)-algebra bounds. The paper sizes queues from arrival curves it
// assumes given at every interface (§3.4, citing interface-based rate
// analysis); these helpers derive such interface curves from first
// principles — a stage's output envelope from its input envelope and a
// service-curve model of the stage — so the per-replica envelopes need
// not be hand-calibrated.
//
// All operators are exact over the integer-tick staircase curves used
// throughout this package. They iterate the curves' breakpoints instead
// of every tick whenever both operands expose breakpoints and exact
// long-run rates (BreakpointCurve + Rated), falling back to the dense
// reference scans in reference.go otherwise. Value-equivalence between
// the two paths is enforced by property tests.

import (
	"fmt"
	"sort"
)

// ServiceCurve is a lower service curve β(Δ): a guarantee that any
// backlogged interval of length Δ sees at least β(Δ) tokens served.
type ServiceCurve interface {
	// Eval returns the guaranteed service in any window of length delta.
	Eval(delta Time) Count
}

// RateLatency is the classical β_{R,T} service curve: after an initial
// latency T, service proceeds at R tokens per Per ticks —
// β(Δ) = max(0, floor((Δ-T) * R / Per)).
type RateLatency struct {
	LatencyUs Time
	Rate      Count // tokens per Per ticks
	Per       Time
}

// Validate reports whether the curve parameters are usable.
func (s RateLatency) Validate() error {
	if s.LatencyUs < 0 {
		return fmt.Errorf("rtc: service latency must be non-negative, got %d", s.LatencyUs)
	}
	if s.Rate <= 0 || s.Per <= 0 {
		return fmt.Errorf("rtc: service rate must be positive, got %d/%d", s.Rate, s.Per)
	}
	return nil
}

// Eval implements ServiceCurve.
func (s RateLatency) Eval(delta Time) Count {
	if delta <= s.LatencyUs {
		return 0
	}
	return Count((delta - s.LatencyUs)) * s.Rate / Count(s.Per)
}

// Breakpoints implements BreakpointCurve: the curve reaches value k at
// Δ = T + ceil(k·Per/R), so successive jumps are enumerated directly
// (skipping duplicates when several tokens land on one tick).
func (s RateLatency) Breakpoints(horizon Time) []Time {
	pts := []Time{0}
	if s.Rate <= 0 || s.Per <= 0 {
		return pts
	}
	for delta := s.LatencyUs + 1; delta <= horizon; {
		need := s.Eval(delta-1) + 1
		jump := s.LatencyUs + ceilDiv(need*Count(s.Per), s.Rate)
		if jump < delta {
			jump = delta
		}
		if jump > horizon {
			break
		}
		pts = append(pts, jump)
		delta = jump + 1
	}
	return pts
}

// LongRunRate implements Rated.
func (s RateLatency) LongRunRate() (Count, Time) { return s.Rate, s.Per }

// StageService models one pipeline stage as a rate-latency server: a
// stage that takes between MinUs and MaxUs per token offers (to a
// backlogged input) one token per MaxUs after an initial MaxUs latency.
func StageService(minUs, maxUs Time) (RateLatency, error) {
	if minUs < 0 || maxUs < minUs || maxUs <= 0 {
		return RateLatency{}, fmt.Errorf("rtc: invalid stage bounds [%d,%d]", minUs, maxUs)
	}
	return RateLatency{LatencyUs: maxUs, Rate: 1, Per: maxUs}, nil
}

// deconvCurve is the result of a breakpoint-driven OutputBound: the
// deconvolution α ⊘ β tabulated at its candidate breakpoints over
// [0, h], with the dense implementation's linear extension beyond the
// horizon (slope = the last one-tick increment at h).
type deconvCurve struct {
	pts   []Time // ascending, pts[0] == 0
	vals  []Count
	h     Time
	rate  Count // extension slope of the table past h (tokens/tick)
	rateN Count // true long-run rate of the deconvolution ...
	rateD Time  // ... = the input's rate (valid since rate α <= rate β)
}

// Eval implements Curve, matching the dense table semantics exactly:
// 0 at Δ <= 0, the tabulated staircase on (0, h], linear extension past h.
func (c *deconvCurve) Eval(delta Time) Count {
	if delta <= 0 {
		return 0
	}
	if delta > c.h {
		return c.vals[len(c.vals)-1] + c.rate*Count(delta-c.h)
	}
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i] > delta }) - 1
	return c.vals[i]
}

// Breakpoints implements BreakpointCurve. Δ=1 is always included: the
// Eval clamp to 0 at Δ <= 0 can jump to a positive vals[0] there.
func (c *deconvCurve) Breakpoints(horizon Time) []Time {
	pts := []Time{0}
	if horizon >= 1 {
		pts = append(pts, 1)
	}
	for i := 1; i < len(c.pts); i++ {
		if c.pts[i] > horizon {
			break
		}
		if c.vals[i] != c.vals[i-1] {
			pts = append(pts, c.pts[i])
		}
	}
	if c.rate > 0 {
		// The extension grows every tick past the horizon.
		for delta := c.h + 1; delta <= horizon; delta++ {
			pts = append(pts, delta)
		}
	}
	return mergePoints(horizon, pts)
}

// LongRunRate implements Rated: the true long-run rate of α ⊘ β, which
// equals the input's rate whenever the deconvolution is bounded (the
// service cannot throttle an envelope's asymptotic slope). The tabulated
// Eval saturates past its horizon — a truncation artifact — so divergence
// decisions in downstream analyses must use this rate, not the table.
func (c *deconvCurve) LongRunRate() (Count, Time) { return c.rateN, c.rateD }

// OutputBound computes the tightest upper arrival curve of a stage's
// output given the input's upper arrival curve and the stage's lower
// service curve — the (min,+) deconvolution α' = α ⊘ β:
//
//	α'(Δ) = sup_{u >= 0} { α(Δ+u) − β(u) },
//
// evaluated over u in [0, horizon]. When both curves expose breakpoints
// and long-run rates, the supremum is evaluated only at the candidate
// jump points of the result — for every α-jump p and β-jump q these are
// p, p−h and p−q+1 — turning the O(h²) tick scan into an O(b²)
// breakpoint scan, and unboundedness is decided exactly: the deconvolution
// diverges iff the input's long-run rate strictly exceeds the service
// rate. Curves without breakpoints or rates fall back to the dense
// reference scan (DenseOutputBound) with its last-improvement heuristic.
func OutputBound(input Curve, service ServiceCurve, horizon Time) (Curve, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return nil, err
	}
	sc := Curve(service)
	inBC, inOK := input.(BreakpointCurve)
	svcBC, svcOK := sc.(BreakpointCurve)
	inN, inD, inRated := longRunRate(input)
	svcN, svcD, svcRated := longRunRate(sc)
	if !inOK || !svcOK || !inRated || !svcRated {
		return DenseOutputBound(input, service, horizon)
	}
	if rateExceeds(inN, inD, svcN, svcD) {
		return nil, ErrUnbounded
	}

	// Candidate jump points of α'. A strict increase of the supremum at Δ
	// implies an α-jump at p = Δ+u* for the minimal maximizer u*, and
	// either u* = 0 (Δ = p), u* = h (Δ = p−h), or a β-jump at q = u*+1
	// (Δ = p−q+1): between those, α(Δ+u) is constant and β(u)
	// non-decreasing, so the supremum cannot grow.
	pa := inBC.Breakpoints(2 * h) // α-jumps over [0, Δ+h], Δ <= h
	qb := svcBC.Breakpoints(h)    // β-jumps over the u range
	cand := make([]Time, 0, 3+len(pa)*(len(qb)+2))
	cand = append(cand, 0, h-1, h)
	for _, p := range pa {
		if p <= h {
			cand = append(cand, p)
		}
		if p >= h {
			cand = append(cand, p-h)
		}
		for _, q := range qb {
			if d := p - q + 1; d >= 0 && d <= h {
				cand = append(cand, d)
			}
		}
	}
	cand = mergePoints(h, cand)

	// Evaluate the supremum at each candidate: u = 0 plus every α-jump
	// inside the window (Δ, Δ+h] — the per-Δ maximizer set.
	vals := make([]Count, len(cand))
	for i, delta := range cand {
		var sup Count // the dense scan's supremum starts at 0
		if v := input.Eval(delta) - service.Eval(0); v > sup {
			sup = v
		}
		j := sort.Search(len(pa), func(j int) bool { return pa[j] > delta })
		for ; j < len(pa) && pa[j] <= delta+h; j++ {
			if v := input.Eval(pa[j]) - service.Eval(pa[j]-delta); v > sup {
				sup = v
			}
		}
		vals[i] = sup
	}

	out := &deconvCurve{pts: cand, vals: vals, h: h, rateN: inN, rateD: inD}
	out.rate = out.at(h) - out.at(h-1)
	if out.rate < 0 {
		out.rate = 0
	}
	return out, nil
}

// at returns the tabulated value at a candidate Δ in [0, h] (Δ need not
// be a stored point; the staircase is constant between points).
func (c *deconvCurve) at(delta Time) Count {
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i] > delta }) - 1
	if i < 0 {
		return 0
	}
	return c.vals[i]
}

// DelayBound computes the classical horizontal-deviation delay bound
// h(α, β): the maximum time a token can spend in a stage with input
// envelope α and service curve β,
//
//	h = sup_{t >= 0} inf { d >= 0 | α(t) <= β(t+d) }.
//
// With breakpoint curves, only the α-jumps need to be tried as t (the
// demand is constant and the available slack only grows in between), and
// each inf is found by binary search over β's jump table instead of a
// forward tick scan. As in the dense reference, a demand not served
// within 4·horizon means an overloaded server (ErrUnbounded); residual
// divergence is decided exactly from long-run rates when available and by
// the last-improvement heuristic otherwise.
func DelayBound(input Curve, service ServiceCurve, horizon Time) (Time, error) {
	h, err := validateHorizon(horizon)
	if err != nil {
		return 0, err
	}
	sc := Curve(service)
	inBC, inOK := input.(BreakpointCurve)
	svcBC, svcOK := sc.(BreakpointCurve)
	if !inOK || !svcOK {
		return DenseDelayBound(input, service, horizon)
	}
	// β's jump table over the search range [0, 4h]: ascending deltas with
	// non-decreasing values — a pseudo-inverse for "first s with β(s) >= n".
	sp := svcBC.Breakpoints(4 * h)
	sv := make([]Count, len(sp))
	for i, p := range sp {
		sv[i] = service.Eval(p)
	}
	var worst Time
	lastImprove := Time(0)
	for _, t := range mergePoints(h, inBC.Breakpoints(h)) {
		need := input.Eval(t)
		if need == 0 {
			continue
		}
		var d Time
		if service.Eval(t) < need {
			i := sort.Search(len(sv), func(i int) bool { return sv[i] >= need })
			if i == len(sv) {
				return 0, ErrUnbounded // not served within 4h
			}
			d = sp[i] - t
		}
		if d > worst {
			worst = d
			lastImprove = t
		}
	}
	inN, inD, inRated := longRunRate(input)
	svcN, svcD, svcRated := longRunRate(sc)
	if inRated && svcRated {
		if rateExceeds(inN, inD, svcN, svcD) {
			return 0, ErrUnbounded
		}
	} else if h >= 16 && lastImprove > h-h/8 {
		return 0, ErrUnbounded
	}
	return worst, nil
}

// BacklogBound computes the vertical deviation v(α, β): the maximum
// number of tokens simultaneously queued in the stage — directly usable
// as an internal FIFO capacity.
func BacklogBound(input Curve, service ServiceCurve, horizon Time) (Count, error) {
	// A ServiceCurve's method set is a Curve's, so breakpoints and rates
	// (when implemented) survive the conversion.
	return supDiff(input, Curve(service), horizon)
}

// PipelineOutputBound chains OutputBound through consecutive stages,
// returning the envelope of the final stage's output — the analytic
// derivation of a replica's production envelope from its stage models.
func PipelineOutputBound(input Curve, stages []ServiceCurve, horizon Time) (Curve, error) {
	cur := input
	for i, s := range stages {
		out, err := OutputBound(cur, s, horizon)
		if err != nil {
			return nil, fmt.Errorf("rtc: pipeline stage %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}
