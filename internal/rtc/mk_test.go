package rtc

import (
	"math/rand"
	"testing"
)

// randomPJD draws a well-formed PJD envelope for property tests.
func randomPJD(rng *rand.Rand) PJD {
	p := Time(100 + rng.Intn(2000))
	j := Time(rng.Intn(int(3 * p)))
	var d Time
	if rng.Intn(2) == 0 && p > 2 {
		d = Time(1 + rng.Intn(int(p/2)))
	}
	return PJD{Period: p, Jitter: j, MinDist: d}
}

// TestDetectionBoundMKZeroMatchesBinary pins the (0,k) degeneration:
// m = 0 must reproduce eq. 6/8 exactly on random envelopes.
func TestDetectionBoundMKZeroMatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		healthy := randomPJD(rng)
		faulty := randomPJD(rng)
		h := Horizon(healthy, faulty) * 8
		d := Count(1 + rng.Intn(6))

		want, errW := DetectionBound(healthy.Lower(), faulty.Upper(), d, h)
		got, errG := DetectionBoundMK(healthy.Lower(), faulty.Upper(), d, 0, h)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: binary err %v, mk(0) err %v", trial, errW, errG)
		}
		if errW == nil && want != got {
			t.Fatalf("trial %d: DetectionBound = %d, DetectionBoundMK(m=0) = %d", trial, want, got)
		}

		wantS, errW := StoppedDetectionBound([]Curve{healthy.Lower(), faulty.Lower()}, d, h)
		gotS, errG := StoppedDetectionBoundMK([]Curve{healthy.Lower(), faulty.Lower()}, d, 0, h)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: stopped binary err %v, mk(0) err %v", trial, errW, errG)
		}
		if errW == nil && wantS != gotS {
			t.Fatalf("trial %d: StoppedDetectionBound = %d, MK(m=0) = %d", trial, wantS, gotS)
		}
	}
}

// TestDetectionBoundMKMonotoneInM: forgiving more violations can only
// delay detection, and each extra forgiven violation costs at least the
// envelope's minimum token spacing... at least non-strictly: the bound
// is non-decreasing in m.
func TestDetectionBoundMKMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		healthy := randomPJD(rng)
		h := Horizon(healthy) * 16
		d := Count(1 + rng.Intn(4))
		prev := Time(-1)
		for m := 0; m <= 8; m++ {
			b, err := DetectionBoundMK(healthy.Lower(), Zero, d, m, h)
			if err != nil {
				t.Fatalf("trial %d m=%d: %v", trial, m, err)
			}
			if b < prev {
				t.Fatalf("trial %d: bound decreased from %d to %d at m=%d", trial, prev, b, m)
			}
			prev = b
		}
	}
}

// TestMaxDetectionBoundMKZeroMatchesBinary pins eq. 7's degeneration.
func TestMaxDetectionBoundMKZeroMatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		a, b := randomPJD(rng), randomPJD(rng)
		fa, fb := randomPJD(rng), randomPJD(rng)
		h := Horizon(a, b, fa, fb) * 8
		d := Count(1 + rng.Intn(5))
		lowers := []Curve{a.Lower(), b.Lower()}
		uppers := []Curve{fa.Upper(), fb.Upper()}
		want, errW := MaxDetectionBound(lowers, uppers, d, h)
		got, errG := MaxDetectionBoundMK(lowers, uppers, d, 0, h)
		if (errW == nil) != (errG == nil) {
			continue // both paths agree on reachability below
		}
		if errW == nil && want != got {
			t.Fatalf("trial %d: MaxDetectionBound = %d, MK(m=0) = %d", trial, want, got)
		}
	}
}

// TestForgivenStallBound checks the forgiveness/detection duality on
// random envelopes: a stall no longer than the forgiven bound keeps the
// healthy side's worst-case token count within the conviction budget,
// and one tick past it can exceed it.
func TestForgivenStallBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		healthy := randomPJD(rng)
		h := Horizon(healthy) * 16
		d := Count(1 + rng.Intn(4))
		m := rng.Intn(6)
		bound, err := ForgivenStallBound(healthy.Upper(), d, m, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		budget := 2*d - 2 + Count(m)
		up := Sampled(healthy.Upper(), h)
		if bound > 0 && up.Eval(bound) > budget {
			t.Fatalf("trial %d: α^u(%d) = %d exceeds budget %d inside the forgiven bound",
				trial, bound, up.Eval(bound), budget)
		}
		if bound+1 <= h && up.Eval(bound+1) <= budget && bound != h {
			t.Fatalf("trial %d: bound %d not maximal (α^u(%d) = %d <= %d)",
				trial, bound, bound+1, up.Eval(bound+1), budget)
		}
	}
}

// TestStallViolationBudget sanity: the budget is positive and grows
// (weakly) with the glitch length.
func TestStallViolationBudget(t *testing.T) {
	healthy := PJD{Period: 1000, Jitter: 500}
	h := Horizon(healthy) * 16
	prev := 0
	for _, g := range []Time{0, 500, 1000, 5000, 20000} {
		m, err := StallViolationBudget(healthy.Upper(), g, h)
		if err != nil {
			t.Fatal(err)
		}
		if m < 1 {
			t.Fatalf("budget %d < 1 for glitch %d", m, g)
		}
		if m < prev {
			t.Fatalf("budget shrank from %d to %d at glitch %d", prev, m, g)
		}
		prev = m
	}
}
