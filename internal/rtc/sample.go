package rtc

// TableCurve memoizes an arbitrary curve into a dense value table and
// derives breakpoints from where the sampled values change. It is the
// fallback that lets the breakpoint-driven solvers accept any Curve
// implementation: the underlying curve is evaluated once per tick (one
// O(horizon) sampling pass, grown lazily and cached across solver
// calls) instead of being re-evaluated per query.
//
// TableCurve is not safe for concurrent use; share only the underlying
// curve across goroutines, not the wrapper.
type TableCurve struct {
	c    Curve
	vals []Count // vals[i] == c.Eval(i) for sampled i
}

// Sampled adapts a curve to BreakpointCurve: curves that already expose
// breakpoints are returned unchanged, anything else is wrapped in a
// TableCurve sampled up to the given horizon.
func Sampled(c Curve, horizon Time) BreakpointCurve {
	if bc, ok := c.(BreakpointCurve); ok {
		return bc
	}
	t := &TableCurve{c: c}
	t.ensure(horizon)
	return t
}

// ensure grows the memo table to cover [0, h].
func (t *TableCurve) ensure(h Time) {
	if h < 0 {
		return
	}
	if cap(t.vals) == 0 {
		t.vals = make([]Count, 0, h+1)
	}
	for i := Time(len(t.vals)); i <= h; i++ {
		t.vals = append(t.vals, t.c.Eval(i))
	}
}

// Eval implements Curve, serving sampled ticks from the memo table and
// delegating out-of-range queries to the underlying curve.
func (t *TableCurve) Eval(delta Time) Count {
	if delta >= 0 && delta < Time(len(t.vals)) {
		return t.vals[delta]
	}
	return t.c.Eval(delta)
}

// Breakpoints implements BreakpointCurve: the exact change points of
// the sampled table over [0, horizon].
func (t *TableCurve) Breakpoints(horizon Time) []Time {
	if horizon < 0 {
		return []Time{0}
	}
	t.ensure(horizon)
	pts := []Time{0}
	for i := Time(1); i <= horizon; i++ {
		if t.vals[i] != t.vals[i-1] {
			pts = append(pts, i)
		}
	}
	return pts
}
