package obs

import (
	"slices"
	"strconv"
)

// Explanation is the reconstructed causal chain behind one conviction:
// fault injection → first violating sample → (m,k) window fills →
// conviction → re-integration/recovery. All times are virtual µs; -1
// means the stage was not observed in the log (e.g. no harness-recorded
// injection, or the replica was never repaired).
type Explanation struct {
	Channel string `json:"channel"`
	Replica int    `json:"replica"`
	Reason  string `json:"reason"`               // conviction reason (queue-full, divergence, ...)
	FaultMode string `json:"fault_mode,omitempty"` // injected mode, from the inject event

	InjectedAt       int64 `json:"injected_at_us"`
	FirstViolationAt int64 `json:"first_violation_at_us"`
	ConvictedAt      int64 `json:"convicted_at_us"`
	ReintegratedAt   int64 `json:"reintegrated_at_us"`
	RecoveredAt      int64 `json:"recovered_at_us"`

	// LatencyUs is injection→conviction (-1 when no injection was
	// logged) — the quantity the analytic (m,k) detection bound caps.
	LatencyUs int64 `json:"latency_us"`

	// Forgiven counts the (m,k) window fills before conviction;
	// WindowFills holds the probe-reported fill at each of them.
	// ValueDrops counts replay value-check evidence (drop-value probes)
	// in the same window.
	Forgiven    int   `json:"forgiven"`
	WindowFills []int `json:"window_fills,omitempty"`
	ValueDrops  int   `json:"value_drops"`

	// FillAtConviction and Divergence are sampled by the fault hook at
	// conviction time (Divergence in µs of selector/replicator lead).
	FillAtConviction int    `json:"fill_at_conviction"`
	Divergence       int64  `json:"divergence_us"`

	// Chain is the supporting evidence in canonical log order: the
	// inject, forgiven, drop-value, convict, reintegrate and recover
	// events this explanation was reconstructed from.
	Chain []FlightEvent `json:"chain"`
}

// Explain reconstructs the causal chain for the conviction of replica
// on channel at the given time from a canonical event log (as returned
// by FlightRecorder.Events). The second result is false when the log
// holds no matching convict event.
func Explain(events []FlightEvent, channel string, replica int, at int64) (Explanation, bool) {
	for i, ev := range events {
		if ev.Kind == FlightConvict && ev.Channel == channel && ev.Replica == replica && ev.At == at {
			return explainAt(events, i), true
		}
	}
	return Explanation{}, false
}

// ExplainAll reconstructs one explanation per convict event in the log,
// in log order.
func ExplainAll(events []FlightEvent) []Explanation {
	var out []Explanation
	for i, ev := range events {
		if ev.Kind == FlightConvict {
			out = append(out, explainAt(events, i))
		}
	}
	return out
}

// explainAt builds the explanation for the convict event at index ci.
func explainAt(events []FlightEvent, ci int) Explanation {
	conv := events[ci]
	ex := Explanation{
		Channel:          conv.Channel,
		Replica:          conv.Replica,
		Reason:           conv.Reason,
		ConvictedAt:      conv.At,
		InjectedAt:       -1,
		FirstViolationAt: conv.At,
		ReintegratedAt:   -1,
		RecoveredAt:      -1,
		LatencyUs:        -1,
		FillAtConviction: conv.Fill,
		Divergence:       conv.Aux,
	}
	chain := []FlightEvent{conv}

	// Latest injection of this replica at or before the conviction.
	// Injections carry no channel (a replica-wide act), so match on
	// replica alone.
	injIdx := -1
	for i := ci - 1; i >= 0; i-- {
		ev := events[i]
		if ev.Kind == FlightInject && ev.Replica == conv.Replica {
			injIdx = i
			break
		}
	}
	if injIdx >= 0 {
		inj := events[injIdx]
		ex.InjectedAt = inj.At
		ex.FaultMode = inj.Reason
		ex.LatencyUs = conv.At - inj.At
		chain = append(chain, inj)
	}

	// Window evidence between injection (or the log start) and the
	// conviction: forgiven (m,k) fills and drop-value replay evidence
	// for the convicted (channel, replica).
	for i := injIdx + 1; i < ci; i++ {
		ev := events[i]
		if ev.Channel != conv.Channel || ev.Replica != conv.Replica {
			continue
		}
		switch ev.Kind {
		case "forgiven":
			if ex.Forgiven == 0 {
				ex.FirstViolationAt = ev.At
			}
			ex.Forgiven++
			ex.WindowFills = append(ex.WindowFills, ev.Fill)
			chain = append(chain, ev)
		case "drop-value":
			if ex.Forgiven == 0 && ex.ValueDrops == 0 {
				ex.FirstViolationAt = ev.At
			}
			ex.ValueDrops++
			chain = append(chain, ev)
		}
	}

	// Repair: first re-integration of the channel and first completed
	// recovery of the replica after the conviction.
	for i := ci + 1; i < len(events); i++ {
		ev := events[i]
		if ex.ReintegratedAt < 0 && ev.Kind == "reintegrate" &&
			ev.Channel == conv.Channel && ev.Replica == conv.Replica {
			ex.ReintegratedAt = ev.At
			chain = append(chain, ev)
		}
		if ex.RecoveredAt < 0 && ev.Kind == FlightRecover && ev.Replica == conv.Replica {
			ex.RecoveredAt = ev.At
			chain = append(chain, ev)
		}
		if ex.ReintegratedAt >= 0 && ex.RecoveredAt >= 0 {
			break
		}
	}

	slices.SortStableFunc(chain, func(a, b FlightEvent) int {
		if a.At != b.At {
			return int(a.At - b.At)
		}
		return 0
	})
	ex.Chain = chain
	return ex
}

// AnnotateTrace writes the explanation's causal chain into rec as a
// Chrome-trace flow (a named arrow sequence): one instant per chain
// step, connected by flow events sharing the given id. Perfetto draws
// the arrows from injection through the window fills to the conviction
// and repair.
func (ex *Explanation) AnnotateTrace(rec *TraceRecorder, id int64) {
	if rec == nil || ex == nil || len(ex.Chain) == 0 {
		return
	}
	track := "forensics " + ex.Channel
	name := "convict " + ex.Channel + " R" + strconv.Itoa(ex.Replica)
	for i, ev := range ex.Chain {
		label := ev.Kind
		if ev.Reason != "" {
			label += " (" + ev.Reason + ")"
		}
		rec.Instant(label, ev.At)
		switch {
		case i == 0:
			rec.FlowBegin(track, name, id, ev.At)
		case i == len(ex.Chain)-1:
			rec.FlowEnd(track, name, id, ev.At)
		default:
			rec.FlowStep(track, name, id, ev.At)
		}
	}
}
