package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"

	"ftpn/internal/des"
)

// Flight-recorder event kinds recorded by layers above the channel
// probes. Probe-sourced events reuse the ft.ProbeKind strings verbatim
// ("write", "read", "drop-duplicate", "forgiven", "drop-value", ...);
// the constants below are the extra lifecycle kinds the harnesses and
// the recovery manager add around them.
const (
	// FlightInject marks a fault injection (harness-recorded): Reason
	// holds the fault mode ("stop-all", "corrupt", ...), Replica the
	// injected replica, At the injection instant.
	FlightInject = "inject"
	// FlightConvict marks a conviction (ft fault hook): Reason holds the
	// fault reason ("queue-full", "divergence", "consumer-stall",
	// "value-divergence"), Fill the queue fill and Aux the divergence
	// sampled at conviction time.
	FlightConvict = "convict"
	// FlightRecover marks a completed recovery (recover.Manager): Aux
	// holds the conviction→recovered latency in virtual µs.
	FlightRecover = "recover"
)

// FlightEvent is one structured record in the flight log. At is the
// virtual timestamp in µs; Shard and Seq identify where and in what
// arrival order the event was captured (transport metadata — excluded
// from the canonical serialization, see Bytes). Channel names the
// arbitration channel (or the process, for kernel-sourced events), and
// Aux carries a kind-specific payload: selector lead for probe events,
// divergence for convictions, recovery latency for recover events.
type FlightEvent struct {
	At      int64  `json:"at_us"`
	Shard   int    `json:"shard"`
	Seq     uint64 `json:"seq"`
	Channel string `json:"channel,omitempty"`
	Kind    string `json:"kind"`
	Reason  string `json:"reason,omitempty"`
	Replica int    `json:"replica"`
	Fill    int    `json:"fill"`
	Aux     int64  `json:"aux,omitempty"`
}

// FlightStream is one bounded single-writer-ordered event ring inside a
// FlightRecorder. Each emitter (a shard's probe set, a kernel tracer)
// records into its own stream; Record is mutex-guarded so wall-clock
// (crt) emitters may also share one stream across goroutines.
//
// A nil *FlightStream is a no-op on Record: recording disabled costs
// one predicted branch per event site and zero allocations, matching
// the registry's nil-metric idiom.
type FlightStream struct {
	mu    sync.Mutex
	shard int
	ring  []FlightEvent
	next  uint64 // events ever recorded; also the next seq
}

// Record appends ev to the stream, stamping its shard and sequence
// number. The ring is bounded: once full, the oldest event is
// overwritten (and counted as dropped). No allocation on the hot path —
// the ring is preallocated and the event is copied by value.
func (s *FlightStream) Record(ev FlightEvent) {
	if s == nil {
		return
	}
	s.mu.Lock()
	ev.Shard = s.shard
	ev.Seq = s.next
	s.ring[s.next%uint64(len(s.ring))] = ev
	s.next++
	s.mu.Unlock()
}

// snapshot returns the retained events oldest→newest plus the number
// overwritten.
func (s *FlightStream) snapshot() (evs []FlightEvent, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := uint64(len(s.ring))
	if s.next <= n {
		return slices.Clone(s.ring[:s.next]), 0
	}
	head := s.next % n
	evs = make([]FlightEvent, 0, n)
	evs = append(evs, s.ring[head:]...)
	evs = append(evs, s.ring[:head]...)
	return evs, s.next - n
}

// DefaultFlightCap is the per-stream ring capacity when
// NewFlightRecorder is given 0.
const DefaultFlightCap = 1 << 16

// FlightRecorder is the bounded structured event log: a set of
// per-emitter streams whose merged view is deterministic in virtual
// time. The merge uses the same canonical key family as
// des.TraceCollector — (time, channel, per-channel arrival index) —
// so a run's log is byte-identical whether the network ran on one
// kernel or was partitioned across shards: every channel lives on
// exactly one shard, making its per-stream arrival order the channel's
// own deterministic event order, and cross-channel ties are broken by
// name rather than by scheduling accidents.
//
// A nil *FlightRecorder hands out nil streams and empty views.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	streams []*FlightStream
}

// NewFlightRecorder returns a recorder whose streams each retain the
// last capPerStream events (DefaultFlightCap if <= 0).
func NewFlightRecorder(capPerStream int) *FlightRecorder {
	if capPerStream <= 0 {
		capPerStream = DefaultFlightCap
	}
	return &FlightRecorder{cap: capPerStream}
}

// Stream allocates a new event stream tagged with the emitting shard.
// Call once per emitter (per shard's probe set, per kernel tracer);
// returns nil on a nil recorder, so the disabled path stays a single
// branch at every Record site.
func (fr *FlightRecorder) Stream(shard int) *FlightStream {
	if fr == nil {
		return nil
	}
	s := &FlightStream{shard: shard, ring: make([]FlightEvent, fr.cap)}
	fr.mu.Lock()
	fr.streams = append(fr.streams, s)
	fr.mu.Unlock()
	return s
}

// AttachKernel installs a tracer on k recording scheduler events
// (spawn/resume/block/end/stop) into a new stream, with the process
// name as the event channel. Kernel callbacks (Proc == "") are
// excluded — they are shard-protocol artifacts, exactly as in
// des.TraceCollector. Note des kernels hold a single tracer slot, so
// this replaces any TraceCollector already attached.
func (fr *FlightRecorder) AttachKernel(k *des.Kernel, shard int) {
	if fr == nil || k == nil {
		return
	}
	st := fr.Stream(shard)
	k.Trace(func(e des.TraceEvent) {
		if e.Proc == "" {
			return
		}
		st.Record(FlightEvent{At: int64(e.At), Channel: e.Proc, Kind: e.Kind})
	})
}

// flightRec pairs an event with its per-(stream, channel) arrival
// index for the canonical merge.
type flightRec struct {
	ev  FlightEvent
	idx int
}

// merged returns all retained events in canonical order.
func (fr *FlightRecorder) merged() []flightRec {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	streams := slices.Clone(fr.streams)
	fr.mu.Unlock()
	var all []flightRec
	for _, s := range streams {
		evs, _ := s.snapshot()
		idx := make(map[string]int, 8)
		for _, ev := range evs {
			all = append(all, flightRec{ev: ev, idx: idx[ev.Channel]})
			idx[ev.Channel]++
		}
	}
	slices.SortFunc(all, func(a, b flightRec) int {
		if a.ev.At != b.ev.At {
			return int(a.ev.At - b.ev.At)
		}
		if a.ev.Channel != b.ev.Channel {
			if a.ev.Channel < b.ev.Channel {
				return -1
			}
			return 1
		}
		if a.idx != b.idx {
			return a.idx - b.idx
		}
		// Same channel recorded by two streams — outside the
		// one-channel-one-shard contract; fall back to transport order
		// so the sort at least stays total.
		if a.ev.Shard != b.ev.Shard {
			return a.ev.Shard - b.ev.Shard
		}
		return int(a.ev.Seq) - int(b.ev.Seq)
	})
	return all
}

// Events returns every retained event in canonical merged order.
func (fr *FlightRecorder) Events() []FlightEvent {
	recs := fr.merged()
	out := make([]FlightEvent, len(recs))
	for i, r := range recs {
		out[i] = r.ev
	}
	return out
}

// Tail returns the last n events in canonical order (all of them when
// n <= 0 or n exceeds the retained count).
func (fr *FlightRecorder) Tail(n int) []FlightEvent {
	evs := fr.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len returns the number of retained events across all streams.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	streams := slices.Clone(fr.streams)
	fr.mu.Unlock()
	n := 0
	for _, s := range streams {
		evs, _ := s.snapshot()
		n += len(evs)
	}
	return n
}

// Dropped returns the total number of events overwritten by ring
// wrap-around across all streams.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	streams := slices.Clone(fr.streams)
	fr.mu.Unlock()
	var d uint64
	for _, s := range streams {
		_, dr := s.snapshot()
		d += dr
	}
	return d
}

// Bytes renders the canonical serialization: one line per event in
// merged order, excluding the transport metadata (shard, seq) that
// legitimately differs between partitionings. This is the artifact the
// identity tests compare — byte-identical across -parallel levels and
// shard counts 1..8.
func (fr *FlightRecorder) Bytes() []byte {
	var buf bytes.Buffer
	for _, r := range fr.merged() {
		ev := r.ev
		fmt.Fprintf(&buf, "%d %s %s %s %d %d %d\n",
			ev.At, orDash(ev.Channel), orDash(ev.Kind), orDash(ev.Reason),
			ev.Replica, ev.Fill, ev.Aux)
	}
	return buf.Bytes()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// WriteJSON writes every retained event (canonical order, full fields
// including shard and seq) as an indented JSON array.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	evs := fr.Events()
	if evs == nil {
		evs = []FlightEvent{}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(evs); err != nil {
		return err
	}
	return bw.Flush()
}
