package obs

import "ftpn/internal/des"

// ShardCounters exposes the sharded kernel's conservative-protocol
// counters as metrics: null-message clock publications, horizon grants
// from the global fixed point, parks, wakes, payload messages drained,
// and full-transport stalls. Scrape once per run (or periodically) with
// Update — the des layer keeps its own atomics, so this is a copy, not
// a live binding.
type ShardCounters struct {
	Nulls, Grants, Parks, Wakes, Drained, Stalls *Counter
}

// NewShardCounters registers the ftpn_des_shard_* counter family on r.
// A nil registry yields nil counters (no-op metrics), matching the rest
// of the package.
func NewShardCounters(r *Registry) ShardCounters {
	return ShardCounters{
		Nulls:   r.Counter("ftpn_des_shard_null_messages_total", "link clock publications (shared-memory null messages)", nil),
		Grants:  r.Counter("ftpn_des_shard_grants_total", "horizon grants from the global fixed point", nil),
		Parks:   r.Counter("ftpn_des_shard_parks_total", "shard runner parks", nil),
		Wakes:   r.Counter("ftpn_des_shard_wakes_total", "wakes of parked shards", nil),
		Drained: r.Counter("ftpn_des_shard_drained_total", "cross-shard payload messages drained", nil),
		Stalls:  r.Counter("ftpn_des_shard_stalls_total", "full-transport stalls", nil),
	}
}

// Update advances the counters to match a stats snapshot. Snapshots are
// cumulative, so Update adds only the delta since the last call.
func (c *ShardCounters) Update(s des.ShardStats) {
	c.Nulls.Add(s.NullMessages - c.Nulls.Value())
	c.Grants.Add(s.Grants - c.Grants.Value())
	c.Parks.Add(s.Parks - c.Parks.Value())
	c.Wakes.Add(s.Wakes - c.Wakes.Value())
	c.Drained.Add(s.Drained - c.Drained.Value())
	c.Stalls.Add(s.Stalls - c.Stalls.Value())
}
