package obs

import (
	"strconv"

	"ftpn/internal/des"
)

// ShardCounters exposes the sharded kernel's conservative-protocol
// counters as metrics: null-message clock publications, horizon grants
// from the global fixed point, parks, wakes, payload messages drained,
// and full-transport stalls. Scrape once per run (or periodically) with
// Update — the des layer keeps its own atomics, so this is a copy, not
// a live binding.
type ShardCounters struct {
	Nulls, Grants, Parks, Wakes, Drained, Stalls *Counter

	// reg is kept for lazy per-shard series registration (the shard
	// count is only known at Update time).
	reg      *Registry
	perShard []perShardGauges
}

// perShardGauges are the `shard`-labeled gauges for one shard.
type perShardGauges struct {
	Slack, Parks, Wakes, ParkRatio *Gauge
}

// NewShardCounters registers the ftpn_des_shard_* counter family on r.
// A nil registry yields nil counters (no-op metrics), matching the rest
// of the package.
func NewShardCounters(r *Registry) ShardCounters {
	return ShardCounters{
		Nulls:   r.Counter("ftpn_des_shard_null_messages_total", "link clock publications (shared-memory null messages)", nil),
		Grants:  r.Counter("ftpn_des_shard_grants_total", "horizon grants from the global fixed point", nil),
		Parks:   r.Counter("ftpn_des_shard_parks_total", "shard runner parks", nil),
		Wakes:   r.Counter("ftpn_des_shard_wakes_total", "wakes of parked shards", nil),
		Drained: r.Counter("ftpn_des_shard_drained_total", "cross-shard payload messages drained", nil),
		Stalls:  r.Counter("ftpn_des_shard_stalls_total", "full-transport stalls", nil),
		reg:     r,
	}
}

// Update advances the counters to match a stats snapshot. Snapshots are
// cumulative, so Update adds only the delta since the last call.
func (c *ShardCounters) Update(s des.ShardStats) {
	c.Nulls.Add(s.NullMessages - c.Nulls.Value())
	c.Grants.Add(s.Grants - c.Grants.Value())
	c.Parks.Add(s.Parks - c.Parks.Value())
	c.Wakes.Add(s.Wakes - c.Wakes.Value())
	c.Drained.Add(s.Drained - c.Drained.Value())
	c.Stalls.Add(s.Stalls - c.Stalls.Value())
}

// UpdatePerShard publishes a per-shard snapshot: each shard's lookahead
// slack (how far its inbound promises run ahead of the horizon it last
// adopted; -1 when unbounded, i.e. no inbound links), its park/wake
// counts, and its idle park ratio in permille — 1000·parks/(parks+wakes),
// 0 when the shard never parked. Series are registered lazily with a
// `shard` label on first sight of each index; pass sk.PerShardStats().
func (c *ShardCounters) UpdatePerShard(stats []des.ShardStat) {
	for _, st := range stats {
		for len(c.perShard) <= st.Shard {
			lbl := Labels{"shard": strconv.Itoa(len(c.perShard))}
			c.perShard = append(c.perShard, perShardGauges{
				Slack:     c.reg.Gauge("ftpn_des_shard_lookahead_slack_us", "inbound horizon minus last adopted horizon, virtual us (-1 = unbounded)", lbl),
				Parks:     c.reg.Gauge("ftpn_des_shard_parks", "this shard's runner parks", lbl),
				Wakes:     c.reg.Gauge("ftpn_des_shard_wakes", "wakes delivered to this shard", lbl),
				ParkRatio: c.reg.Gauge("ftpn_des_shard_park_ratio_permille", "1000*parks/(parks+wakes) for this shard", lbl),
			})
		}
		g := c.perShard[st.Shard]
		if st.Unbounded {
			g.Slack.Set(-1)
		} else {
			g.Slack.Set(int64(st.Slack))
		}
		g.Parks.Set(st.Parks)
		g.Wakes.Set(st.Wakes)
		if total := st.Parks + st.Wakes; total > 0 {
			g.ParkRatio.Set(1000 * st.Parks / total)
		} else {
			g.ParkRatio.Set(0)
		}
	}
}
