package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h", nil)
	g := r.Gauge("x", "h", nil)
	h := r.Histogram("x_hist", "h", []int64{1, 2}, nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry WritePrometheus: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Errorf("nil registry WriteJSON: %v", err)
	}
	var tr *TraceRecorder
	tr.Slice("a", "b", 0, 1)
	tr.Counter("a", "s", 0, 1)
	tr.Instant("m", 0)
	if tr.Events() != 0 {
		t.Error("nil recorder must record nothing")
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total", "help", Labels{"k": "v"})
	c2 := r.Counter("a_total", "help", Labels{"k": "v"})
	if c1 != c2 {
		t.Error("same (name, labels) must return the same counter")
	}
	c3 := r.Counter("a_total", "help", Labels{"k": "w"})
	if c1 == c3 {
		t.Error("different label value must be a distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as gauge must panic")
		}
	}()
	r.Gauge("a_total", "help", Labels{"k": "v"})
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []int64{1, 4, 16}, nil)
	for _, v := range []int64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 108 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,    // 0, 1
		`lat_bucket{le="4"} 3`,    // + 2
		`lat_bucket{le="16"} 4`,   // + 5
		`lat_bucket{le="+Inf"} 5`, // + 100
		`lat_sum 108`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestPrometheusGolden locks the full exposition format: HELP/TYPE once
// per name, series sorted by (name, labels), deterministic output.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ftpn_ft_drops_total", "Tokens dropped.", Labels{"channel": "F_out", "replica": "2"}).Add(3)
	r.Counter("ftpn_ft_drops_total", "Tokens dropped.", Labels{"channel": "F_out", "replica": "1"}).Add(7)
	r.Gauge("ftpn_ft_fill", "Queue fill.", Labels{"channel": "F_in"}).Set(4)
	h := r.Histogram("ftpn_ft_fill_dist", "Fill distribution.", []int64{1, 2}, Labels{"channel": "F_in"})
	h.Observe(1)
	h.Observe(2)
	h.Observe(9)

	const want = `# HELP ftpn_ft_drops_total Tokens dropped.
# TYPE ftpn_ft_drops_total counter
ftpn_ft_drops_total{channel="F_out",replica="1"} 7
ftpn_ft_drops_total{channel="F_out",replica="2"} 3
# HELP ftpn_ft_fill Queue fill.
# TYPE ftpn_ft_fill gauge
ftpn_ft_fill{channel="F_in"} 4
# HELP ftpn_ft_fill_dist Fill distribution.
# TYPE ftpn_ft_fill_dist histogram
ftpn_ft_fill_dist_bucket{channel="F_in",le="1"} 1
ftpn_ft_fill_dist_bucket{channel="F_in",le="2"} 2
ftpn_ft_fill_dist_bucket{channel="F_in",le="+Inf"} 3
ftpn_ft_fill_dist_sum{channel="F_in"} 12
ftpn_ft_fill_dist_count{channel="F_in"} 3
`
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Encoding twice is identical (determinism).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two encodings differ")
	}
}

// TestBuildInfoGolden locks the build-info exposition convention:
// constant-1 gauge with the information in labels, plus the
// caller-refreshed uptime gauge.
func TestBuildInfoGolden(t *testing.T) {
	r := NewRegistry()
	uptime := RegisterBuildInfo(r, "v9.9.9-test")
	uptime.Set(42)
	want := fmt.Sprintf(`# HELP ftpn_build_info Build metadata; the value is constant 1.
# TYPE ftpn_build_info gauge
ftpn_build_info{go_version=%q,version="v9.9.9-test"} 1
# HELP ftpn_process_uptime_seconds Seconds since process start (caller-refreshed).
# TYPE ftpn_process_uptime_seconds gauge
ftpn_process_uptime_seconds 42
`, runtime.Version())
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestBuildInfoDefaultsAndNil(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "") // "" -> package Version
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `version="`+Version+`"`) {
		t.Errorf("default version missing from exposition:\n%s", buf.String())
	}
	var nilReg *Registry
	if g := RegisterBuildInfo(nilReg, "x"); g != nil {
		t.Error("nil registry must yield a nil uptime gauge")
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []int64{1, 4, 16}
	r := NewRegistry()
	a := r.Histogram("merge_a", "h", bounds, nil)
	b := r.Histogram("merge_b", "h", bounds, nil)
	pooled := r.Histogram("merge_pool", "h", bounds, nil)
	samplesA := []int64{0, 2, 5, 100}
	samplesB := []int64{1, 1, 17}
	for _, v := range samplesA {
		a.Observe(v)
		pooled.Observe(v)
	}
	for _, v := range samplesB {
		b.Observe(v)
		pooled.Observe(v)
	}
	a.Merge(b)
	if a.Count() != pooled.Count() || a.Sum() != pooled.Sum() {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", a.Count(), a.Sum(), pooled.Count(), pooled.Sum())
	}
	for i := range bounds {
		if got, want := a.counts[i].Load(), pooled.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	// Merge is nil-safe in both directions.
	a.Merge(nil)
	var nilH *Histogram
	nilH.Merge(a)
	if a.Count() != pooled.Count() {
		t.Fatal("nil merge changed the receiver")
	}
}

// TestHistogramMergeOrderIndependent: merging shard-local histograms in
// any order yields identical buckets — counts are exact, so the merge
// is associative and commutative.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	bounds := ExpBuckets(1, 2, 8)
	build := func(order []int) *Histogram {
		r := NewRegistry()
		parts := make([]*Histogram, 4)
		for i := range parts {
			parts[i] = r.Histogram(fmt.Sprintf("p%d", i), "h", bounds, nil)
			for j := 0; j < 100; j++ {
				parts[i].Observe(int64((i*37 + j*j) % 300))
			}
		}
		acc := r.Histogram("acc", "h", bounds, nil)
		for _, i := range order {
			acc.Merge(parts[i])
		}
		return acc
	}
	fwd := build([]int{0, 1, 2, 3})
	rev := build([]int{3, 1, 0, 2})
	if fwd.Count() != rev.Count() || fwd.Sum() != rev.Sum() {
		t.Fatalf("order changed count/sum: %d/%d vs %d/%d", fwd.Count(), fwd.Sum(), rev.Count(), rev.Sum())
	}
	for i := range fwd.counts {
		if fwd.counts[i].Load() != rev.counts[i].Load() {
			t.Fatalf("bucket %d differs across merge orders", i)
		}
	}
}

func TestHistogramMergeBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("mm_a", "h", []int64{1, 2}, nil)
	b := r.Histogram("mm_b", "h", []int64{1, 3}, nil)
	defer func() {
		if recover() == nil {
			t.Error("merging histograms with different bounds must panic")
		}
	}()
	a.Merge(b)
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", Labels{"k": "v"}).Add(2)
	r.Histogram("h", "h", []int64{10}, nil).Observe(5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []JSONMetric
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 || out[0].Name != "c_total" || out[0].Value != 2 || out[1].Count != 1 {
		t.Errorf("unexpected JSON: %+v", out)
	}
}

// TestConcurrentHammer drives counters, gauges, histograms and the
// encoders from many goroutines; run under -race this is the registry's
// thread-safety proof, and the counts are exact because updates are
// atomic.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "h", nil)
			g := r.Gauge("hammer_fill", "h", nil)
			h := r.Histogram("hammer_dist", "h", []int64{8, 64, 512}, Labels{"w": "all"})
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i))
				if i%500 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "h", nil).Value(); got != workers*perW {
		t.Errorf("counter = %d, want %d", got, workers*perW)
	}
	if got := r.Histogram("hammer_dist", "h", nil, Labels{"w": "all"}).Count(); got != workers*perW {
		t.Errorf("histogram count = %d, want %d", got, workers*perW)
	}
}

func TestTraceRecorder(t *testing.T) {
	tr := NewTraceRecorder()
	tr.Slice("dec#1", "run", 100, 40)
	tr.Counter("F_in fill", "R1", 120, 3)
	tr.Counter("F_in fill", "R1", 150, 2)
	tr.Instant("fault R1 (queue-full on F_in)", 160)
	if tr.Events() != 4 {
		t.Fatalf("events = %d, want 4", tr.Events())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Metadata (process name + one slice-track thread name; counter
	// tracks key on their event name, not a tid) + 4 events.
	if len(doc.TraceEvents) != 6 {
		t.Errorf("traceEvents = %d, want 6", len(doc.TraceEvents))
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	want := []string{"M", "M", "X", "C", "C", "i"}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestTraceRecorderConcurrent(t *testing.T) {
	tr := NewTraceRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Counter("track", "s", int64(i), int64(w))
			}
		}(w)
	}
	wg.Wait()
	if tr.Events() != 2000 {
		t.Errorf("events = %d, want 2000", tr.Events())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_dist", "h", ExpBuckets(1, 2, 8), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 255))
	}
}
