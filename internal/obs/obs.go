// Package obs is the runtime observability substrate: a typed metrics
// registry (counters, gauges, fixed-bucket histograms) with
// Prometheus-text and JSON encoders, and a Chrome trace-event recorder
// that turns simulation or live runs into Perfetto-loadable timelines.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Updating a metric is one atomic
//     op; histograms use a fixed bucket array scanned linearly.
//  2. Nil-safe disablement. Every update method is defined on a
//     possibly-nil receiver and returns immediately when the metric is
//     nil, so uninstrumented code paths pay exactly one predictable
//     branch per event site. A nil *Registry hands out nil metrics, so
//     "observability off" is the zero value of everything.
//  3. Concurrency-safe. All updates are atomic; registration and
//     encoding take a registry mutex. The package works identically
//     under the single-threaded des kernel and the goroutine-based crt
//     runtime.
//
// Metric naming follows the Prometheus convention used across this
// repository: ftpn_<pkg>_<thing>_total for counters, ftpn_<pkg>_<thing>
// for gauges and histograms (see DESIGN.md §9).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Labels attaches dimension values (channel, replica, reason, ...) to a
// metric instance. Label maps are canonicalized (sorted) at
// registration; lookups and updates never touch them again.
type Labels map[string]string

// kind discriminates the metric types in the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The zero value is ready to use; a nil
// *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 samples. Bucket i
// counts samples v <= bounds[i]; one implicit +Inf bucket catches the
// rest. The zero value is unusable — histograms come from a Registry —
// but a nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one sample: a linear scan over the fixed bounds (small
// by construction) plus two atomic adds; no allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge folds other's observations into h bucket-wise. Because buckets
// are exact counts (no sampling), Merge is exact, associative and
// order-independent: merging in any order yields identical state to
// observing the pooled samples directly. Both histograms must share
// the same bucket bounds; nil operands are no-ops.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic("obs: Merge of histograms with different bucket bounds")
	}
	for i, b := range other.bounds {
		if h.bounds[i] != b {
			panic("obs: Merge of histograms with different bucket bounds")
		}
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.sum.Add(other.sum.Load())
	h.n.Add(other.n.Load())
}

// ExpBuckets returns n bucket bounds start, start*factor, ... — the
// stock shape for fill and latency histograms.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start <= 0 || factor < 2 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%d,%d,%d) invalid", start, factor, n))
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   kind
	labels [][2]string // sorted key/value pairs
	lstr   string      // canonical {k="v",...} rendering ("" when unlabeled)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metric series. A nil *Registry hands out nil
// metrics from every constructor, so callers can thread one optional
// pointer through their stack and never branch themselves.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed name + canonical label string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// canonical renders labels sorted as {a="x",b="y"}; "" for none.
func canonical(labels Labels) (pairs [][2]string, lstr string) {
	if len(labels) == 0 {
		return nil, ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs = make([][2]string, len(keys))
	s := "{"
	for i, k := range keys {
		pairs[i] = [2]string{k, labels[k]}
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", k, labels[k])
	}
	return pairs, s + "}"
}

// register returns the series (name, labels), creating it on first use.
// Re-registering with a different kind panics — that is a programming
// error, not a runtime condition.
func (r *Registry) register(name, help string, k kind, labels Labels, mk func(m *metric)) *metric {
	pairs, lstr := canonical(labels)
	key := name + lstr
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", key, k, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: k, labels: pairs, lstr: lstr}
	mk(m)
	r.metrics[key] = m
	return m
}

// Counter returns the counter series (name, labels), creating it on
// first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels, func(m *metric) {
		m.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge series (name, labels), creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels, func(m *metric) {
		m.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the histogram series (name, labels) with the given
// bucket upper bounds (ascending; +Inf is implicit), creating it on
// first use. Bounds are captured at first registration; later calls
// with the same key reuse the existing buckets. A nil registry returns
// a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []int64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	return r.register(name, help, kindHistogram, labels, func(m *metric) {
		m.hist = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}).hist
}

// snapshot returns the registered series sorted by (name, labels) for
// deterministic encoding.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].lstr < out[j].lstr
	})
	return out
}
