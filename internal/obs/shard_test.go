package obs

import (
	"testing"

	"ftpn/internal/des"
)

func TestShardCountersUpdate(t *testing.T) {
	r := NewRegistry()
	c := NewShardCounters(r)
	c.Update(des.ShardStats{NullMessages: 5, Grants: 2, Parks: 3, Wakes: 4, Drained: 10, Stalls: 1})
	c.Update(des.ShardStats{NullMessages: 8, Grants: 2, Parks: 5, Wakes: 6, Drained: 12, Stalls: 1})
	if got := c.Nulls.Value(); got != 8 {
		t.Fatalf("nulls = %d, want cumulative 8", got)
	}
	if got := c.Drained.Value(); got != 12 {
		t.Fatalf("drained = %d, want 12", got)
	}
	if got := c.Parks.Value(); got != 5 {
		t.Fatalf("parks = %d, want 5", got)
	}
}

func TestShardCountersNilRegistry(t *testing.T) {
	c := NewShardCounters(nil)
	c.Update(des.ShardStats{NullMessages: 5}) // must not panic
	if c.Nulls.Value() != 0 {
		t.Fatalf("nil-registry counter accumulated")
	}
}
