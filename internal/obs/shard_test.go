package obs

import (
	"bytes"
	"strings"
	"testing"

	"ftpn/internal/des"
)

func TestShardCountersUpdate(t *testing.T) {
	r := NewRegistry()
	c := NewShardCounters(r)
	c.Update(des.ShardStats{NullMessages: 5, Grants: 2, Parks: 3, Wakes: 4, Drained: 10, Stalls: 1})
	c.Update(des.ShardStats{NullMessages: 8, Grants: 2, Parks: 5, Wakes: 6, Drained: 12, Stalls: 1})
	if got := c.Nulls.Value(); got != 8 {
		t.Fatalf("nulls = %d, want cumulative 8", got)
	}
	if got := c.Drained.Value(); got != 12 {
		t.Fatalf("drained = %d, want 12", got)
	}
	if got := c.Parks.Value(); got != 5 {
		t.Fatalf("parks = %d, want 5", got)
	}
}

func TestShardCountersNilRegistry(t *testing.T) {
	c := NewShardCounters(nil)
	c.Update(des.ShardStats{NullMessages: 5}) // must not panic
	if c.Nulls.Value() != 0 {
		t.Fatalf("nil-registry counter accumulated")
	}
	c.UpdatePerShard([]des.ShardStat{{Shard: 0, Parks: 1, Wakes: 1}}) // must not panic
}

// runTwoShardToy runs a real cross-shard workload (a periodic source on
// shard 0 feeding a sink on shard 1 over a TimedRing link). It pauses
// mid-run to take a bounded-horizon per-shard snapshot (after a
// completed run every horizon is released to the far future and reads
// as unbounded), then runs to completion and returns the kernel plus
// the mid-run snapshot.
func runTwoShardToy(t *testing.T) (*des.ShardedKernel, []des.ShardStat) {
	t.Helper()
	sk := des.NewShardedKernel(2)
	ring := des.NewTimedRing[int64](8)
	link := sk.Connect(0, 1, 5)
	var got int
	sk.RegisterDrain(1, func(k *des.Kernel) int64 {
		var n int64
		for {
			m, ok := ring.TryPop()
			if !ok {
				break
			}
			k.At(m.At, func() { got++ })
			n++
		}
		link.NotifyDrained(n)
		return n
	})
	i := 0
	sk.Shard(0).Spawn("src", 0, func(p *des.Proc) {
		for ; i < 200; i++ {
			p.Delay(7)
			at := p.Now() + 5
			for !ring.TryPush(des.Stamped[int64]{At: at, V: int64(i)}) {
				link.StallWake()
			}
			link.NotifySent()
		}
	})
	sk.Run(500) // pause mid-run: horizons still live
	mid := sk.PerShardStats()
	sk.Run(0)
	sk.Shutdown()
	if got != 200 {
		t.Fatalf("sink saw %d messages, want 200", got)
	}
	return sk, mid
}

// TestPerShardStats checks the per-shard snapshot against the global
// aggregate on a real two-shard run: park/wake sums must reconcile,
// shard 0 (no inbound links) is unbounded, shard 1's slack is the
// inbound horizon headroom.
func TestPerShardStats(t *testing.T) {
	sk, mid := runTwoShardToy(t)
	per := sk.PerShardStats()
	if len(per) != 2 {
		t.Fatalf("per-shard stats = %d entries, want 2", len(per))
	}
	agg := sk.Stats()
	var parks, wakes int64
	for i, st := range per {
		if st.Shard != i {
			t.Fatalf("entry %d has shard %d", i, st.Shard)
		}
		parks += st.Parks
		wakes += st.Wakes
	}
	if parks != agg.Parks {
		t.Fatalf("per-shard parks sum %d != aggregate %d", parks, agg.Parks)
	}
	if wakes != agg.Wakes {
		t.Fatalf("per-shard wakes sum %d != aggregate %d", wakes, agg.Wakes)
	}
	if !per[0].Unbounded {
		t.Fatalf("shard 0 has no inbound links, want Unbounded: %+v", per[0])
	}
	// Mid-run, shard 1's inbound horizon is live: bounded, with
	// non-negative slack over the horizon it last adopted.
	if mid[1].Unbounded {
		t.Fatalf("mid-run shard 1 has an inbound link, want bounded: %+v", mid[1])
	}
	if mid[1].Slack < 0 || mid[1].Horizon < mid[1].LastH {
		t.Fatalf("mid-run shard 1 slack inconsistent: %+v", mid[1])
	}
}

// TestUpdatePerShardGauges drives UpdatePerShard from a real run and
// checks the shard-labeled series land in the exposition with a sane
// park ratio.
func TestUpdatePerShardGauges(t *testing.T) {
	sk, _ := runTwoShardToy(t)
	r := NewRegistry()
	c := NewShardCounters(r)
	c.Update(sk.Stats())
	c.UpdatePerShard(sk.PerShardStats())
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ftpn_des_shard_lookahead_slack_us{shard="0"} -1`, // unbounded
		`ftpn_des_shard_lookahead_slack_us{shard="1"}`,
		`ftpn_des_shard_parks{shard="0"}`,
		`ftpn_des_shard_parks{shard="1"}`,
		`ftpn_des_shard_wakes{shard="1"}`,
		`ftpn_des_shard_park_ratio_permille{shard="0"}`,
		`ftpn_des_shard_park_ratio_permille{shard="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for i, g := range c.perShard {
		if ratio := g.ParkRatio.Value(); ratio < 0 || ratio > 1000 {
			t.Errorf("shard %d park ratio = %d, want [0,1000]", i, ratio)
		}
		if g.Parks.Value() < 0 || g.Wakes.Value() < 0 {
			t.Errorf("shard %d negative park/wake gauges", i)
		}
	}
	// Re-publishing after more work must reuse the same series (lazy
	// registration is idempotent).
	n := len(c.perShard)
	c.UpdatePerShard(sk.PerShardStats())
	if len(c.perShard) != n {
		t.Errorf("UpdatePerShard re-registered series: %d -> %d", n, len(c.perShard))
	}
}
