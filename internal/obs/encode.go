package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// Version identifies the build in ftpn_build_info. Override at link
// time with -ldflags "-X ftpn/internal/obs.Version=v1.2.3".
var Version = "dev"

// RegisterBuildInfo registers the conventional ftpn_build_info gauge
// (constant 1 — the information lives in its labels: the build version
// and the Go runtime that compiled it) plus a process-uptime gauge,
// which it returns for the caller to refresh (typically per scrape)
// with whole seconds since process start. version "" uses the
// package-level Version. Nil-registry safe.
func RegisterBuildInfo(r *Registry, version string) *Gauge {
	if version == "" {
		version = Version
	}
	r.Gauge("ftpn_build_info", "Build metadata; the value is constant 1.",
		Labels{"version": version, "go_version": runtime.Version()}).Set(1)
	return r.Gauge("ftpn_process_uptime_seconds", "Seconds since process start (caller-refreshed).", nil)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name then labels so the
// output is deterministic. Values are read atomically; a scrape
// concurrent with updates sees a consistent-enough point-in-time view
// (per-series, not cross-series). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var lastName string
	for _, m := range r.snapshot() {
		if m.name != lastName {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.lstr, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.lstr, m.gauge.Value())
		case kindHistogram:
			h := m.hist
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, withLE(m, fmt.Sprintf("%d", b)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, withLE(m, "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %d\n", m.name, m.lstr, h.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", m.name, m.lstr, h.Count())
		}
	}
	return bw.Flush()
}

// withLE renders the metric's label string with an le label appended
// (histogram bucket rows).
func withLE(m *metric, le string) string {
	if m.lstr == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", m.lstr[:len(m.lstr)-1], le)
}

// JSONMetric is one series in the JSON encoding.
type JSONMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"` // counter/gauge
	// Histogram fields.
	Buckets []JSONBucket `json:"buckets,omitempty"`
	Sum     int64        `json:"sum,omitempty"`
	Count   int64        `json:"count,omitempty"`
}

// JSONBucket is one cumulative histogram bucket; LE "" means +Inf.
type JSONBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// WriteJSON renders every registered series as an indented JSON array in
// the same deterministic order as WritePrometheus. A nil registry
// writes an empty array.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []JSONMetric
	if r != nil {
		for _, m := range r.snapshot() {
			jm := JSONMetric{Name: m.name, Type: m.kind.String()}
			if len(m.labels) > 0 {
				jm.Labels = make(map[string]string, len(m.labels))
				for _, kv := range m.labels {
					jm.Labels[kv[0]] = kv[1]
				}
			}
			switch m.kind {
			case kindCounter:
				jm.Value = m.counter.Value()
			case kindGauge:
				jm.Value = m.gauge.Value()
			case kindHistogram:
				h := m.hist
				cum := int64(0)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					jm.Buckets = append(jm.Buckets, JSONBucket{LE: fmt.Sprintf("%d", b), Count: cum})
				}
				cum += h.counts[len(h.bounds)].Load()
				jm.Buckets = append(jm.Buckets, JSONBucket{LE: "+Inf", Count: cum})
				jm.Sum, jm.Count = h.Sum(), h.Count()
			}
			out = append(out, jm)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []JSONMetric{}
	}
	return enc.Encode(out)
}
