package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceRecorder accumulates Chrome trace-event records (the JSON format
// consumed by Perfetto and chrome://tracing) describing one run as a
// timeline: duration slices for process activity, counter tracks for
// queue fills, and instant markers for faults, convictions and
// recovery phases. Timestamps are in microseconds — exactly the
// simulator's virtual tick, so a DES run exports without conversion.
//
// A nil *TraceRecorder is a no-op on every method, mirroring the
// registry's nil-safety: tracing disabled costs one branch per site.
// The recorder is mutex-guarded so the wall-clock (crt) runtime can
// record from several goroutines.
type TraceRecorder struct {
	mu     sync.Mutex
	events []chromeEvent
	tids   map[string]int64 // track (thread) name -> tid
	order  []string
}

// chromeEvent is one record of the "JSON Array Format" trace spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`    // instant scope: g=global, p=process, t=thread
	ID    int64          `json:"id,omitempty"`   // flow binding id (s/t/f phases)
	BP    string         `json:"bp,omitempty"`   // flow bind point ("e": enclosing slice)
	Args  map[string]any `json:"args,omitempty"` // counter series / metadata
}

// tracePID is the single synthetic process id all tracks live under.
const tracePID = 1

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{tids: make(map[string]int64)}
}

// tid returns the stable thread id for a named track, allocating the
// next id (in first-use order) when new. Caller holds t.mu.
func (t *TraceRecorder) tid(track string) int64 {
	if id, ok := t.tids[track]; ok {
		return id
	}
	id := int64(len(t.tids) + 1)
	t.tids[track] = id
	t.order = append(t.order, track)
	return id
}

// Slice records a completed duration event [ts, ts+dur] on the named
// track — one process "active" span.
func (t *TraceRecorder) Slice(track, name string, ts, dur int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: name, Phase: "X", TS: ts, Dur: dur, PID: tracePID, TID: t.tid(track),
	})
	t.mu.Unlock()
}

// Counter records a counter sample: the named series on the named
// counter track takes the given value at ts. Perfetto renders counter
// tracks as filled step plots — the queue-fill trajectories of the
// paper's Fig. 7.
func (t *TraceRecorder) Counter(track, series string, ts, value int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: track, Phase: "C", TS: ts, PID: tracePID,
		Args: map[string]any{series: value},
	})
	t.mu.Unlock()
}

// Instant records a zero-duration marker visible across the whole
// timeline (fault raised, conviction, repair, re-integration).
func (t *TraceRecorder) Instant(name string, ts int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: name, Phase: "i", TS: ts, PID: tracePID, Scope: "g",
	})
	t.mu.Unlock()
}

// flow records one flow-phase event ("s" start, "t" step, "f" finish)
// on the named track; events sharing (name, id) are drawn as a
// connected arrow sequence by Perfetto.
func (t *TraceRecorder) flow(phase, track, name string, id, ts int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, chromeEvent{
		Name: name, Phase: phase, TS: ts, PID: tracePID, TID: t.tid(track),
		ID: id, BP: "e",
	})
	t.mu.Unlock()
}

// FlowBegin starts a named flow (causal arrow chain) at ts.
func (t *TraceRecorder) FlowBegin(track, name string, id, ts int64) { t.flow("s", track, name, id, ts) }

// FlowStep continues a flow started with FlowBegin at the same id.
func (t *TraceRecorder) FlowStep(track, name string, id, ts int64) { t.flow("t", track, name, id, ts) }

// FlowEnd terminates a flow at ts.
func (t *TraceRecorder) FlowEnd(track, name string, id, ts int64) { t.flow("f", track, name, id, ts) }

// Events returns the number of recorded events (0 for nil).
func (t *TraceRecorder) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the accumulated trace in the Chrome trace "JSON
// Object Format": thread-name metadata first (so Perfetto labels each
// track), then every event in record order.
func (t *TraceRecorder) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	all := make([]chromeEvent, 0, len(t.order)+1+len(t.events))
	all = append(all, chromeEvent{
		Name: "process_name", Phase: "M", PID: tracePID,
		Args: map[string]any{"name": "ftpn"},
	})
	for _, track := range t.order {
		all = append(all, chromeEvent{
			Name: "thread_name", Phase: "M", PID: tracePID, TID: t.tids[track],
			Args: map[string]any{"name": track},
		})
	}
	all = append(all, t.events...)
	t.mu.Unlock()
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: all, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
