package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chainLog is a synthetic canonical log covering every stage Explain
// reconstructs: inject → forgiven window fills → drop-value evidence →
// conviction → re-integration → recovery, with an unrelated healthy
// channel interleaved as noise.
func chainLog() []FlightEvent {
	return []FlightEvent{
		{At: 100, Kind: FlightInject, Reason: "corrupt", Replica: 2},
		{At: 110, Channel: "F_in", Kind: "write", Replica: 2, Fill: 1},
		{At: 115, Channel: "G_out", Kind: "write", Replica: 1, Fill: 1}, // noise
		{At: 120, Channel: "F_in", Kind: "forgiven", Reason: "late", Replica: 2, Fill: 2},
		{At: 130, Channel: "F_in", Kind: "drop-value", Replica: 2, Fill: 2},
		{At: 140, Channel: "F_in", Kind: "forgiven", Reason: "late", Replica: 2, Fill: 3},
		{At: 150, Channel: "F_in", Kind: FlightConvict, Reason: "value-divergence", Replica: 2, Fill: 4, Aux: 3},
		{At: 155, Channel: "G_out", Kind: "read", Replica: 1}, // noise
		{At: 180, Channel: "F_in", Kind: "reintegrate", Replica: 2, Fill: 2},
		{At: 181, Kind: FlightRecover, Reason: "value-divergence", Replica: 2, Fill: 4, Aux: 31},
	}
}

func TestExplainReconstructsChain(t *testing.T) {
	ex, ok := Explain(chainLog(), "F_in", 2, 150)
	if !ok {
		t.Fatal("Explain found no conviction")
	}
	if ex.Channel != "F_in" || ex.Replica != 2 || ex.Reason != "value-divergence" {
		t.Fatalf("identity = %q R%d %q", ex.Channel, ex.Replica, ex.Reason)
	}
	if ex.FaultMode != "corrupt" || ex.InjectedAt != 100 {
		t.Fatalf("injection = %q at %d, want corrupt at 100", ex.FaultMode, ex.InjectedAt)
	}
	if ex.ConvictedAt != 150 || ex.LatencyUs != 50 {
		t.Fatalf("convicted at %d latency %d, want 150 / 50", ex.ConvictedAt, ex.LatencyUs)
	}
	if ex.FirstViolationAt != 120 {
		t.Fatalf("first violation at %d, want first forgiven at 120", ex.FirstViolationAt)
	}
	if ex.Forgiven != 2 || len(ex.WindowFills) != 2 || ex.WindowFills[0] != 2 || ex.WindowFills[1] != 3 {
		t.Fatalf("forgiven = %d fills %v, want 2 fills [2 3]", ex.Forgiven, ex.WindowFills)
	}
	if ex.ValueDrops != 1 {
		t.Fatalf("value drops = %d, want 1", ex.ValueDrops)
	}
	if ex.FillAtConviction != 4 || ex.Divergence != 3 {
		t.Fatalf("fill/divergence = %d/%d, want 4/3", ex.FillAtConviction, ex.Divergence)
	}
	if ex.ReintegratedAt != 180 || ex.RecoveredAt != 181 {
		t.Fatalf("repair = %d/%d, want 180/181", ex.ReintegratedAt, ex.RecoveredAt)
	}
	// Chain: inject, 2×forgiven, drop-value, convict, reintegrate,
	// recover — in time order, noise excluded.
	if len(ex.Chain) != 7 {
		t.Fatalf("chain has %d events, want 7: %+v", len(ex.Chain), ex.Chain)
	}
	for i := 1; i < len(ex.Chain); i++ {
		if ex.Chain[i].At < ex.Chain[i-1].At {
			t.Fatalf("chain out of order at %d: %+v", i, ex.Chain)
		}
	}
	for _, ev := range ex.Chain {
		if ev.Channel == "G_out" {
			t.Fatalf("chain contains unrelated channel evidence: %+v", ev)
		}
	}
}

func TestExplainNoInjection(t *testing.T) {
	evs := []FlightEvent{
		{At: 50, Channel: "F_in", Kind: FlightConvict, Reason: "queue-full", Replica: 1, Fill: 4},
	}
	ex, ok := Explain(evs, "F_in", 1, 50)
	if !ok {
		t.Fatal("conviction not found")
	}
	if ex.InjectedAt != -1 || ex.LatencyUs != -1 || ex.FaultMode != "" {
		t.Fatalf("uninjected conviction must report -1 latency, got %+v", ex)
	}
	if ex.ReintegratedAt != -1 || ex.RecoveredAt != -1 {
		t.Fatalf("unrepaired conviction must report -1 repair times, got %+v", ex)
	}
	if ex.FirstViolationAt != 50 {
		t.Fatalf("first violation defaults to conviction instant, got %d", ex.FirstViolationAt)
	}
}

func TestExplainMissingConviction(t *testing.T) {
	if _, ok := Explain(chainLog(), "F_in", 1, 150); ok {
		t.Fatal("Explain matched the wrong replica")
	}
	if _, ok := Explain(chainLog(), "X", 2, 150); ok {
		t.Fatal("Explain matched the wrong channel")
	}
}

func TestExplainAll(t *testing.T) {
	log := chainLog()
	log = append(log, FlightEvent{At: 300, Channel: "G_out", Kind: FlightConvict, Reason: "divergence", Replica: 1})
	exs := ExplainAll(log)
	if len(exs) != 2 {
		t.Fatalf("explanations = %d, want 2", len(exs))
	}
	if exs[0].Channel != "F_in" || exs[1].Channel != "G_out" {
		t.Fatalf("order = %q, %q; want log order", exs[0].Channel, exs[1].Channel)
	}
	// The second conviction has no injection for replica 1.
	if exs[1].LatencyUs != -1 {
		t.Fatalf("G_out latency = %d, want -1", exs[1].LatencyUs)
	}
}

func TestExplanationJSONRoundTrip(t *testing.T) {
	ex, _ := Explain(chainLog(), "F_in", 2, 150)
	b, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back Explanation
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Channel != ex.Channel || back.LatencyUs != ex.LatencyUs || len(back.Chain) != len(ex.Chain) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, ex)
	}
}

func TestAnnotateTraceFlow(t *testing.T) {
	ex, _ := Explain(chainLog(), "F_in", 2, 150)
	rec := NewTraceRecorder()
	ex.AnnotateTrace(rec, 7)
	// One instant + one flow phase per chain step.
	if got, want := rec.Events(), 2*len(ex.Chain); got != want {
		t.Fatalf("trace events = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		phases[ph]++
		if ph == "s" || ph == "t" || ph == "f" {
			if id := ev["id"].(float64); id != 7 {
				t.Fatalf("flow event id = %v, want 7", id)
			}
			if bp := ev["bp"].(string); bp != "e" {
				t.Fatalf("flow bind point = %q, want e", bp)
			}
		}
	}
	if phases["s"] != 1 || phases["f"] != 1 {
		t.Fatalf("flow must begin and end exactly once: %v", phases)
	}
	if phases["t"] != len(ex.Chain)-2 {
		t.Fatalf("flow steps = %d, want %d", phases["t"], len(ex.Chain)-2)
	}
	// Nil receivers are no-ops.
	var nilEx *Explanation
	nilEx.AnnotateTrace(rec, 1)
	ex.AnnotateTrace(nil, 1)
}
