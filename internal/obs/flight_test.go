package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ftpn/internal/des"
)

func TestFlightNilSafety(t *testing.T) {
	var fr *FlightRecorder
	if st := fr.Stream(0); st != nil {
		t.Fatal("nil recorder must hand out a nil stream")
	}
	var st *FlightStream
	st.Record(FlightEvent{At: 1, Kind: "write"}) // must not panic
	fr.AttachKernel(des.NewKernel(), 0)          // must not panic
	if fr.Len() != 0 || fr.Dropped() != 0 || len(fr.Events()) != 0 || len(fr.Tail(5)) != 0 {
		t.Fatal("nil recorder must read as empty")
	}
	if got := fr.Bytes(); len(got) != 0 {
		t.Fatalf("nil recorder Bytes = %q, want empty", got)
	}
	var buf bytes.Buffer
	if err := fr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil recorder WriteJSON: %v", err)
	}
	var evs []FlightEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil || len(evs) != 0 {
		t.Fatalf("nil recorder must encode an empty array, got %q (err %v)", buf.String(), err)
	}
}

func TestFlightStreamStampsShardAndSeq(t *testing.T) {
	fr := NewFlightRecorder(8)
	st := fr.Stream(3)
	st.Record(FlightEvent{At: 10, Channel: "A", Kind: "write", Shard: 99, Seq: 99})
	st.Record(FlightEvent{At: 20, Channel: "A", Kind: "read"})
	evs := fr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for i, ev := range evs {
		if ev.Shard != 3 {
			t.Errorf("event %d shard = %d, want 3 (caller-supplied value must be overwritten)", i, ev.Shard)
		}
		if ev.Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i)
		}
	}
}

func TestFlightRingWrapAndDropped(t *testing.T) {
	fr := NewFlightRecorder(4)
	st := fr.Stream(0)
	for i := 0; i < 10; i++ {
		st.Record(FlightEvent{At: int64(i), Channel: "C", Kind: "write"})
	}
	if got := fr.Len(); got != 4 {
		t.Fatalf("len = %d, want ring cap 4", got)
	}
	if got := fr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := fr.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.At != want {
			t.Fatalf("event %d at = %d, want %d (oldest retained first)", i, ev.At, want)
		}
	}
}

func TestFlightDefaultCap(t *testing.T) {
	fr := NewFlightRecorder(0)
	st := fr.Stream(0)
	if got := len(st.ring); got != DefaultFlightCap {
		t.Fatalf("default ring cap = %d, want %d", got, DefaultFlightCap)
	}
}

// TestFlightCanonicalMerge is the determinism core: the same logical
// event set, recorded into differently-partitioned streams, must merge
// to byte-identical canonical output. Each channel's events go to
// exactly one stream (the one-channel-one-shard contract), and the
// partitions interleave their Record calls differently.
func TestFlightCanonicalMerge(t *testing.T) {
	channels := []string{"A_in", "B_out", "C_in", "D_out"}
	var logical []FlightEvent
	rng := rand.New(rand.NewSource(42))
	at := int64(0)
	for i := 0; i < 400; i++ {
		if rng.Intn(3) != 0 {
			at += int64(rng.Intn(4)) // many same-instant events
		}
		logical = append(logical, FlightEvent{
			At:      at,
			Channel: channels[rng.Intn(len(channels))],
			Kind:    "write",
			Replica: 1 + rng.Intn(2),
			Fill:    rng.Intn(8),
		})
	}

	render := func(shardOf func(ch string) int, nShards int) []byte {
		fr := NewFlightRecorder(0)
		sts := make([]*FlightStream, nShards)
		for s := range sts {
			sts[s] = fr.Stream(s)
		}
		// Per-channel order is preserved (it is the canonical order);
		// different shard counts interleave the streams differently.
		for _, ev := range logical {
			sts[shardOf(ev.Channel)].Record(ev)
		}
		return fr.Bytes()
	}

	want := render(func(string) int { return 0 }, 1)
	if len(want) == 0 {
		t.Fatal("canonical rendering is empty")
	}
	for nShards := 2; nShards <= 8; nShards++ {
		n := nShards
		got := render(func(ch string) int {
			h := 0
			for _, c := range ch {
				h = h*31 + int(c)
			}
			return h % n
		}, n)
		if !bytes.Equal(got, want) {
			t.Fatalf("canonical bytes differ between 1 and %d shards:\n1 shard:\n%s\n%d shards:\n%s",
				n, want, n, got)
		}
	}
}

func TestFlightTail(t *testing.T) {
	fr := NewFlightRecorder(0)
	st := fr.Stream(0)
	for i := 0; i < 10; i++ {
		st.Record(FlightEvent{At: int64(i), Channel: "C", Kind: "write"})
	}
	tail := fr.Tail(3)
	if len(tail) != 3 || tail[0].At != 7 || tail[2].At != 9 {
		t.Fatalf("Tail(3) = %+v, want last three", tail)
	}
	if got := fr.Tail(0); len(got) != 10 {
		t.Fatalf("Tail(0) = %d events, want all 10", len(got))
	}
	if got := fr.Tail(100); len(got) != 10 {
		t.Fatalf("Tail(100) = %d events, want all 10", len(got))
	}
}

func TestFlightWriteJSON(t *testing.T) {
	fr := NewFlightRecorder(0)
	st := fr.Stream(2)
	st.Record(FlightEvent{At: 5, Channel: "F_in", Kind: FlightConvict, Reason: "queue-full", Replica: 1, Fill: 4, Aux: 7})
	var buf bytes.Buffer
	if err := fr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []FlightEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	want := FlightEvent{At: 5, Shard: 2, Seq: 0, Channel: "F_in", Kind: FlightConvict,
		Reason: "queue-full", Replica: 1, Fill: 4, Aux: 7}
	if len(evs) != 1 || evs[0] != want {
		t.Fatalf("round-trip = %+v, want %+v", evs, want)
	}
}

func TestFlightAttachKernel(t *testing.T) {
	fr := NewFlightRecorder(0)
	k := des.NewKernel()
	fr.AttachKernel(k, 0)
	k.Spawn("worker", 0, func(p *des.Proc) {
		p.Delay(10)
		p.Delay(10)
	})
	k.Run(0)
	k.Shutdown()
	evs := fr.Events()
	if len(evs) == 0 {
		t.Fatal("no scheduler events recorded")
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		if ev.Channel != "worker" {
			t.Fatalf("kernel event channel = %q, want process name (callbacks must be excluded)", ev.Channel)
		}
		kinds[ev.Kind]++
	}
	for _, k := range []string{"spawn", "end"} {
		if kinds[k] == 0 {
			t.Errorf("missing %q scheduler event; kinds = %v", k, kinds)
		}
	}
}

// TestFlightHammer is the -race proof: concurrent emitters on separate
// streams, a shared stream, and concurrent readers of every view.
func TestFlightHammer(t *testing.T) {
	fr := NewFlightRecorder(1 << 10)
	shared := fr.Stream(0)
	const writers, perW = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fr.Stream(w + 1)
			for i := 0; i < perW; i++ {
				own.Record(FlightEvent{At: int64(i), Channel: fmt.Sprintf("c%d", w), Kind: "write"})
				shared.Record(FlightEvent{At: int64(i), Channel: "shared", Kind: "read"})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			fr.Events()
			fr.Bytes()
			fr.Tail(16)
			fr.Len()
			fr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if got := fr.Len() + int(fr.Dropped()); got != 2*writers*perW {
		t.Fatalf("retained+dropped = %d, want %d", got, 2*writers*perW)
	}
}

// TestFlightRecordDisabledAllocs pins the acceptance criterion that a
// disabled recorder (nil stream) allocates nothing on the probe path.
func TestFlightRecordDisabledAllocs(t *testing.T) {
	var st *FlightStream
	ev := FlightEvent{At: 1, Channel: "C", Kind: "write", Fill: 3}
	if allocs := testing.AllocsPerRun(1000, func() { st.Record(ev) }); allocs != 0 {
		t.Fatalf("disabled Record allocates %.1f per op, want 0", allocs)
	}
}

// TestFlightRecordEnabledAllocs pins the steady-state hot path: the
// ring is preallocated, so an enabled Record is also alloc-free.
func TestFlightRecordEnabledAllocs(t *testing.T) {
	fr := NewFlightRecorder(1 << 8)
	st := fr.Stream(0)
	ev := FlightEvent{At: 1, Channel: "C", Kind: "write", Fill: 3}
	if allocs := testing.AllocsPerRun(1000, func() { st.Record(ev) }); allocs != 0 {
		t.Fatalf("enabled Record allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkFlightRecordDisabled(b *testing.B) {
	var st *FlightStream
	ev := FlightEvent{At: 1, Channel: "C", Kind: "write", Fill: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Record(ev)
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	fr := NewFlightRecorder(1 << 16)
	st := fr.Stream(0)
	ev := FlightEvent{At: 1, Channel: "C", Kind: "write", Fill: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.At = int64(i)
		st.Record(ev)
	}
}
