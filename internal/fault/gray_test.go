package fault

import (
	"bytes"
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestGrayModeStrings(t *testing.T) {
	cases := map[Mode]string{
		Drift: "drift", Burst: "burst", DropTokens: "drop-tokens", Corrupt: "corrupt",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// TestDriftRampsDelay: the per-write delay grows linearly from zero at
// injection to ExtraUs once RampUs has elapsed.
func TestDriftRampsDelay(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 64)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	s.InjectGray(Drift, Gray{ExtraUs: 100, RampUs: 1000})
	var stamps []des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := 0; i < 5; i++ {
			// Land write i at elapsed 0, 250, 500, 750, 1000.
			if at := des.Time(i) * 250; at > k.Now() {
				p.Delay(at - k.Now())
			}
			before := k.Now()
			gated.Write(p, kpn.Token{Seq: int64(i + 1)})
			stamps = append(stamps, k.Now()-before)
		}
	})
	k.Run(0)
	if len(stamps) != 5 {
		t.Fatalf("got %d writes", len(stamps))
	}
	// First write at elapsed 0: no extra delay yet.
	if stamps[0] != 0 {
		t.Errorf("write at elapsed 0 delayed %d, want 0", stamps[0])
	}
	// Delays must be non-decreasing and reach full strength.
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Errorf("drift delay shrank: %v", stamps)
		}
	}
	if last := stamps[len(stamps)-1]; last != 100 {
		t.Errorf("post-ramp delay = %d, want 100", last)
	}
}

// TestDriftZeroRampIsDegrade: RampUs = 0 starts at full strength.
func TestDriftZeroRampIsDegrade(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 8)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	s.InjectGray(Drift, Gray{ExtraUs: 42})
	var delay des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		before := k.Now()
		gated.Write(p, kpn.Token{Seq: 1})
		delay = k.Now() - before
	})
	k.Run(0)
	if delay != 42 {
		t.Errorf("zero-ramp drift delay = %d, want 42", delay)
	}
}

// TestBurstDutyCycle: writes in the on-window stall to its end; writes
// in the off-window pass untouched.
func TestBurstDutyCycle(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 64)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	// On for 100 of every 1000, injected at t=0.
	s.InjectGray(Burst, Gray{OnUs: 100, PeriodUs: 1000})
	type rec struct{ start, end des.Time }
	var recs []rec
	k.Spawn("w", 0, func(p *des.Proc) {
		for _, at := range []des.Time{0, 50, 150, 1020, 1500} {
			if at > k.Now() {
				p.Delay(at - k.Now())
			}
			start := k.Now()
			gated.Write(p, kpn.Token{Seq: 1})
			recs = append(recs, rec{start, k.Now()})
		}
	})
	k.Run(0)
	want := []rec{
		{0, 100},     // phase 0: stall to end of on-window
		{100, 100},   // pushed to 100 by previous stall; phase 100 = off
		{150, 150},   // off-window
		{1020, 1100}, // second period's on-window
		{1500, 1500}, // off
	}
	for i, w := range want {
		if i >= len(recs) || recs[i] != w {
			t.Fatalf("write %d: got %+v, want %+v (all: %+v)", i, recs[i], w, recs)
		}
	}
}

// TestBurstRepairWakes: a repair during an on-window stall releases the
// writer immediately instead of serving the rest of the stall.
func TestBurstRepairWakes(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 8)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	s.InjectGray(Burst, Gray{OnUs: 500, PeriodUs: 1000})
	s.RepairAt(100)
	var done des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		gated.Write(p, kpn.Token{Seq: 1})
		done = k.Now()
	})
	k.Run(0)
	// The stall re-checks mode after each delay slice; with the mode
	// cleared at 100 the write completes at the first re-check, well
	// before the 500us the full on-window would have cost.
	if done > 500 {
		t.Errorf("write completed at %d, want before the full on-window end", done)
	}
}

// TestDropTokensEveryN: every N-th gated write vanishes, the rest pass.
func TestDropTokensEveryN(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 64)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	s.InjectGray(DropTokens, Gray{EveryN: 3})
	var got []int64
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 9; i++ {
			gated.Write(p, kpn.Token{Seq: i})
		}
	})
	k.Spawn("r", 0, func(p *des.Proc) {
		for i := 0; i < 6; i++ {
			got = append(got, f.Read(p).Seq)
		}
	})
	k.Run(0)
	want := []int64{1, 2, 4, 5, 7, 8} // ops 3, 6, 9 dropped
	if len(got) != len(want) {
		t.Fatalf("read %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read %v, want %v", got, want)
		}
	}
	if d := s.Drops(); d != 3 {
		t.Errorf("Drops() = %d, want 3", d)
	}
}

// TestCorruptFlipsByteDeterministically: the corrupted byte position
// follows (Seed+ops) %% len, the original payload slice is untouched,
// and the same seed reproduces the same corruption.
func TestCorruptFlipsByteDeterministically(t *testing.T) {
	run := func(seed uint64) [][]byte {
		k := des.NewKernel()
		f := kpn.NewFIFO(k, "c", 64)
		s := NewSwitch(k)
		gated := GateWrite(f, s)
		s.InjectGray(Corrupt, Gray{EveryN: 2, Seed: seed})
		orig := []byte{1, 2, 3, 4}
		var out [][]byte
		k.Spawn("w", 0, func(p *des.Proc) {
			for i := int64(1); i <= 4; i++ {
				gated.Write(p, kpn.Token{Seq: i, Payload: orig})
			}
		})
		k.Spawn("r", 0, func(p *des.Proc) {
			for i := 0; i < 4; i++ {
				out = append(out, f.Read(p).Payload)
			}
		})
		k.Run(0)
		if !bytes.Equal(orig, []byte{1, 2, 3, 4}) {
			t.Fatalf("corruption mutated the shared payload: %v", orig)
		}
		return out
	}
	a := run(7)
	// ops 2 and 4 corrupted, 1 and 3 clean.
	if !bytes.Equal(a[0], []byte{1, 2, 3, 4}) || !bytes.Equal(a[2], []byte{1, 2, 3, 4}) {
		t.Fatalf("clean writes corrupted: %v", a)
	}
	if bytes.Equal(a[1], []byte{1, 2, 3, 4}) || bytes.Equal(a[3], []byte{1, 2, 3, 4}) {
		t.Fatalf("scheduled writes not corrupted: %v", a)
	}
	b := run(7)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("corruption not deterministic: %v vs %v", a, b)
		}
	}
}

// TestRepairClearsGray: repairing a gray fault clears its config so a
// later plain injection starts clean.
func TestRepairClearsGray(t *testing.T) {
	k := des.NewKernel()
	s := NewSwitch(k)
	s.InjectGray(DropTokens, Gray{EveryN: 1})
	s.Repair()
	if s.gray != (Gray{}) || s.ops != 0 {
		t.Errorf("repair left gray state: %+v ops=%d", s.gray, s.ops)
	}
	if d := s.Drops(); d != 0 {
		t.Errorf("Drops() = %d after repair, want 0", d)
	}
}

// TestCorrelatedBursts: the schedule is deterministic per seed, has
// n episodes per switch, keeps each episode inside the span with the
// configured skew, and actually stalls the switches.
func TestCorrelatedBursts(t *testing.T) {
	k := des.NewKernel()
	s0, s1 := NewSwitch(k), NewSwitch(k)
	eps := CorrelatedBursts([]*Switch{s0, s1}, 99, 3, 1000, 9000, 200, 50)
	if len(eps) != 6 {
		t.Fatalf("got %d episodes, want 6", len(eps))
	}
	for _, e := range eps {
		if e.StartUs < 1000 || e.EndUs > 1000+9000+200+50 {
			t.Errorf("episode %+v outside span", e)
		}
		if e.EndUs-e.StartUs != 200 {
			t.Errorf("episode %+v has wrong duration", e)
		}
	}
	// Pairs are skewed by skewUs.
	for i := 0; i+1 < len(eps); i += 2 {
		if eps[i+1].StartUs-eps[i].StartUs != 50 {
			t.Errorf("pair %d not skewed by 50: %+v %+v", i/2, eps[i], eps[i+1])
		}
	}
	// Same seed reproduces the schedule on fresh switches.
	k2 := des.NewKernel()
	eps2 := CorrelatedBursts([]*Switch{NewSwitch(k2), NewSwitch(k2)}, 99, 3, 1000, 9000, 200, 50)
	for i := range eps {
		if eps[i] != eps2[i] {
			t.Fatalf("schedule not deterministic: %+v vs %+v", eps[i], eps2[i])
		}
	}
	// The injections fire: sample each switch mid-episode.
	probe := eps[0].StartUs + 100
	var m0 Mode
	k.At(probe, func() { m0 = s0.Mode() })
	var healedAll bool
	k.At(eps[len(eps)-1].EndUs+1, func() { healedAll = s0.Mode() == None && s1.Mode() == None })
	k.Run(0)
	if m0 != StopAll {
		t.Errorf("switch 0 mode mid-episode = %s, want stop-all", m0)
	}
	if !healedAll {
		t.Error("switches not repaired after the last episode")
	}
}
