package fault

import (
	"testing"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		None: "none", StopConsuming: "stop-consuming", StopProducing: "stop-producing",
		StopAll: "stop-all", Degrade: "degrade", Mode(42): "Mode(42)",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestSwitchInjectOnce(t *testing.T) {
	k := des.NewKernel()
	s := NewSwitch(k)
	if _, ok := s.InjectedAt(); ok {
		t.Error("fresh switch reports injected")
	}
	s.Inject(StopAll, 0)
	at, ok := s.InjectedAt()
	if !ok || at != 0 || s.Mode() != StopAll {
		t.Errorf("after inject: at=%d ok=%v mode=%s", at, ok, s.Mode())
	}
	// Permanent: a second injection is ignored.
	s.Inject(Degrade, 100)
	if s.Mode() != StopAll {
		t.Error("switch must be permanent once tripped")
	}
	// Injecting None is a no-op.
	s2 := NewSwitch(k)
	s2.Inject(None, 0)
	if _, ok := s2.InjectedAt(); ok {
		t.Error("Inject(None) must not arm the switch")
	}
}

func TestInjectAtSchedules(t *testing.T) {
	k := des.NewKernel()
	s := NewSwitch(k)
	s.InjectAt(500, StopProducing, 0)
	k.Spawn("obs", 0, func(p *des.Proc) {
		p.Delay(499)
		if s.Mode() != None {
			t.Error("fault fired early")
		}
		p.Delay(2)
		if s.Mode() != StopProducing {
			t.Error("fault did not fire at 500")
		}
	})
	k.Run(0)
}

func TestStopConsumingBlocksReads(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 4)
	s := NewSwitch(k)
	gated := GateRead(f, s)
	var reads int
	k.Spawn("r", 0, func(p *des.Proc) {
		for {
			gated.Read(p)
			reads++
			p.Delay(10)
		}
	})
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 10; i++ {
			f.Write(p, kpn.Token{Seq: i})
			p.Delay(10)
		}
	})
	s.InjectAt(35, StopConsuming, 0)
	k.Run(0)
	k.Shutdown()
	if reads != 4 { // t = 0,10,20,30
		t.Errorf("reads = %d, want 4 (stopped at t=35)", reads)
	}
	if gated.PortName() != "c" {
		t.Error("gate must preserve port name")
	}
}

func TestStopProducingBlocksWrites(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 100)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); ; i++ {
			gated.Write(p, kpn.Token{Seq: i})
			p.Delay(10)
		}
	})
	s.InjectAt(45, StopProducing, 0)
	k.Run(0)
	k.Shutdown()
	if f.Writes() != 5 { // t = 0,10,20,30,40
		t.Errorf("writes = %d, want 5", f.Writes())
	}
	if gated.PortName() != "c" {
		t.Error("gate must preserve port name")
	}
}

func TestDegradeSlowsOperations(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 100)
	s := NewSwitch(k)
	s.Inject(Degrade, 25)
	gated := GateWrite(f, s)
	var done des.Time
	k.Spawn("w", 0, func(p *des.Proc) {
		gated.Write(p, kpn.Token{Seq: 1})
		gated.Write(p, kpn.Token{Seq: 2})
		done = p.Now()
	})
	k.Run(0)
	if done != 50 {
		t.Errorf("two degraded writes finished at %d, want 50", done)
	}
	if f.Writes() != 2 {
		t.Errorf("degrade must not drop tokens: writes = %d", f.Writes())
	}
}

func TestStopAllBlocksBothDirections(t *testing.T) {
	k := des.NewKernel()
	in := kpn.NewFIFO(k, "in", 4)
	out := kpn.NewFIFO(k, "out", 4)
	s := NewSwitch(k)
	gr, gw := GateRead(in, s), GateWrite(out, s)
	var ops int
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); ; i++ {
			in.Write(p, kpn.Token{Seq: i})
			p.Delay(10)
		}
	})
	k.Spawn("t", 0, func(p *des.Proc) {
		for {
			tok := gr.Read(p)
			gw.Write(p, tok)
			ops++
			p.Delay(10)
		}
	})
	s.InjectAt(25, StopAll, 0)
	k.Run(200)
	k.Shutdown()
	if ops != 3 { // t=0,10,20
		t.Errorf("ops = %d, want 3", ops)
	}
}

func TestRepairResumesInterface(t *testing.T) {
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 100)
	s := NewSwitch(k)
	gated := GateWrite(f, s)
	k.Spawn("w", 0, func(p *des.Proc) {
		for i := int64(1); i <= 10; i++ {
			gated.Write(p, kpn.Token{Seq: i})
			p.Delay(10)
		}
	})
	s.InjectAt(25, StopProducing, 0) // pauses writes 4..N
	s.RepairAt(95)                   // transient fault: resume
	k.Run(0)
	k.Shutdown()
	if f.Writes() != 10 {
		t.Errorf("writes = %d, want all 10 after repair", f.Writes())
	}
	if !s.Repaired() || s.Mode() != None {
		t.Error("switch should report repaired and healthy")
	}
	if _, injected := s.InjectedAt(); !injected {
		t.Error("ever-injected flag must stay latched across repair")
	}
}

func TestRepairNoOpWhenHealthy(t *testing.T) {
	k := des.NewKernel()
	s := NewSwitch(k)
	s.Repair()
	if s.Repaired() {
		t.Error("repairing a healthy switch must be a no-op")
	}
}

func TestReinjectAfterRepair(t *testing.T) {
	k := des.NewKernel()
	s := NewSwitch(k)
	s.Inject(Degrade, 100)
	s.Repair()
	s.Inject(StopAll, 0)
	if s.Mode() != StopAll {
		t.Errorf("mode after re-injection = %s, want stop-all", s.Mode())
	}
}

func TestFaultWhileBlockedInsideReadDoesNotLeakToken(t *testing.T) {
	// Reader blocks on an empty FIFO; fault fires while blocked; a token
	// then arrives. The faulty replica must not forward it.
	k := des.NewKernel()
	f := kpn.NewFIFO(k, "c", 4)
	s := NewSwitch(k)
	gated := GateRead(f, s)
	var forwarded bool
	k.Spawn("r", 0, func(p *des.Proc) {
		gated.Read(p)
		forwarded = true
	})
	s.InjectAt(10, StopConsuming, 0)
	k.Spawn("w", 0, func(p *des.Proc) {
		p.Delay(50)
		f.Write(p, kpn.Token{Seq: 1})
	})
	k.Run(0)
	k.Shutdown()
	if forwarded {
		t.Error("token leaked through a stopped replica interface")
	}
}
