// Package fault injects timing faults at process interfaces, following
// the paper's fault model (Section 2): a faulty replica "either stops
// producing (or consuming) tokens, or does so at a rate lower than
// expected", observed purely at its channel interfaces. Faults are
// injected by gating a replica's read and write ports with a Switch; the
// replica's internal computation is untouched, which matches the paper's
// black-box treatment of replicas.
package fault

import (
	"fmt"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Mode describes the timing fault a Switch currently imposes.
type Mode int

const (
	// None: the interface behaves normally.
	None Mode = iota
	// StopConsuming blocks all reads forever (the replica stops pulling
	// tokens from its input).
	StopConsuming
	// StopProducing blocks all writes forever (the replica stops
	// delivering tokens; the paper's fail-silent stop fault).
	StopProducing
	// StopAll blocks both directions.
	StopAll
	// Degrade adds a fixed extra delay to every read and write,
	// modelling a replica that still works but at a lower rate than its
	// design-time model allows.
	Degrade
	// Drift is the gray-failure version of Degrade: the extra delay
	// ramps linearly from zero to Gray.ExtraUs over Gray.RampUs after
	// injection — slow jitter drift that stays under the detection
	// envelopes for a while (see gray.go).
	Drift
	// Burst stalls both directions for the first Gray.OnUs of every
	// Gray.PeriodUs — duty-cycled stop-all episodes.
	Burst
	// DropTokens silently swallows every Gray.EveryN-th gated write; the
	// replica computes but intermittently fails to deliver.
	DropTokens
	// Corrupt flips payload bytes of every Gray.EveryN-th gated write
	// while timing stays clean — the value-fault mode only replay-based
	// cross-checking (ft.Selector.SetValueCheck) can detect.
	Corrupt
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case StopConsuming:
		return "stop-consuming"
	case StopProducing:
		return "stop-producing"
	case StopAll:
		return "stop-all"
	case Degrade:
		return "degrade"
	case Drift:
		return "drift"
	case Burst:
		return "burst"
	case DropTokens:
		return "drop-tokens"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Switch is the fault control for one replica. The zero value is a
// healthy interface; faults are armed with Inject or scheduled with
// InjectAt. A Switch is permanent once tripped (the paper tolerates one
// permanent timing fault) unless RepairAt is used — an extension beyond
// the paper's model for studying transient faults: the replica resumes,
// its stale tokens surface as late duplicates the selector drops, and
// any conviction already made stays latched.
// Injection records one inject/repair cycle of a Switch.
type Injection struct {
	Mode       Mode
	ExtraUs    des.Time
	At         des.Time
	RepairedAt des.Time // valid when Repaired
	Repaired   bool
}

type Switch struct {
	k        *des.Kernel
	mode     Mode
	extraUs  des.Time
	at       des.Time // injection instant, valid once mode != None
	blocked  des.Signal
	injected bool
	repaired bool
	history  []Injection

	// gray parameterizes the gray-failure modes (see gray.go); ops
	// counts gated writes since injection for the every-N modes.
	gray Gray
	ops  int64
}

// NewSwitch creates a healthy switch bound to the kernel.
func NewSwitch(k *des.Kernel) *Switch { return &Switch{k: k} }

// Inject trips the switch immediately. extraUs is only meaningful for
// Degrade and is the added delay per channel operation. An active fault
// is permanent: further injections are ignored until (and unless) the
// switch is Repair-ed.
func (s *Switch) Inject(mode Mode, extraUs des.Time) {
	if s.mode != None || mode == None {
		return
	}
	s.mode = mode
	s.extraUs = extraUs
	s.at = s.k.Now()
	s.injected = true
	s.history = append(s.history, Injection{Mode: mode, ExtraUs: extraUs, At: s.at})
}

// InjectAt schedules the fault for virtual time t.
func (s *Switch) InjectAt(t des.Time, mode Mode, extraUs des.Time) {
	s.k.At(t, func() { s.Inject(mode, extraUs) })
}

// Mode returns the current fault mode.
func (s *Switch) Mode() Mode { return s.mode }

// InjectedAt returns the most recent injection instant and whether the
// switch has ever been injected (the flag stays latched across Repair,
// so detections of a since-repaired fault are not misread as false
// positives).
func (s *Switch) InjectedAt() (des.Time, bool) { return s.at, s.injected }

// Repair clears the fault, waking any interface operations parked by a
// stop fault. InjectedAt keeps reporting the original injection so
// detection latency remains measurable. The replica may be injected
// again afterwards.
func (s *Switch) Repair() {
	if s.mode == None {
		return
	}
	s.mode = None
	s.extraUs = 0
	s.gray = Gray{}
	s.ops = 0
	s.repaired = true
	if n := len(s.history); n > 0 && !s.history[n-1].Repaired {
		s.history[n-1].Repaired = true
		s.history[n-1].RepairedAt = s.k.Now()
	}
	s.k.Broadcast(&s.blocked)
}

// RepairAt schedules Repair for virtual time t.
func (s *Switch) RepairAt(t des.Time) {
	s.k.At(t, func() { s.Repair() })
}

// Repaired reports whether the switch has ever been repaired.
func (s *Switch) Repaired() bool { return s.repaired }

// Injections returns the full inject/repair history in injection order;
// campaign engines use it to audit multi-fault scenarios.
func (s *Switch) Injections() []Injection {
	return append([]Injection(nil), s.history...)
}

// blockWhileStopped parks the process until the stop fault is repaired
// (never, for the paper's permanent faults).
func (s *Switch) blockWhileStopped(p *des.Proc, stops func(Mode) bool) {
	for stops(s.mode) {
		p.Wait(&s.blocked)
	}
}

func stopsReads(m Mode) bool  { return m == StopConsuming || m == StopAll }
func stopsWrites(m Mode) bool { return m == StopProducing || m == StopAll }

// gateRead applies the fault to a read about to happen.
func (s *Switch) gateRead(p *des.Proc) {
	s.blockWhileStopped(p, stopsReads)
	s.grayGate(p)
	if s.mode == Degrade {
		p.Delay(s.extraUs)
	}
}

// gateWrite applies the fault to a write about to happen.
func (s *Switch) gateWrite(p *des.Proc) {
	s.blockWhileStopped(p, stopsWrites)
	s.grayGate(p)
	if s.mode == Degrade {
		p.Delay(s.extraUs)
	}
}

// readGate wraps a ReadPort with a Switch.
type readGate struct {
	inner kpn.ReadPort
	sw    *Switch
}

// GateRead returns a ReadPort whose reads are subject to the switch's
// fault mode at the moment of each call.
func GateRead(port kpn.ReadPort, sw *Switch) kpn.ReadPort {
	return &readGate{inner: port, sw: sw}
}

// Read implements kpn.ReadPort.
func (g *readGate) Read(p *des.Proc) kpn.Token {
	g.sw.gateRead(p)
	tok := g.inner.Read(p)
	// A fault injected while blocked inside the inner read must not leak
	// the token onward: re-check and park while the replica is stopped.
	// Under a permanent fault the token is lost with the replica; if the
	// fault is transient (Repair), the resumed replica continues with
	// the token it had fetched — pause semantics.
	g.sw.blockWhileStopped(p, stopsReads)
	return tok
}

// PortName implements kpn.ReadPort.
func (g *readGate) PortName() string { return g.inner.PortName() }

// writeGate wraps a WritePort with a Switch.
type writeGate struct {
	inner kpn.WritePort
	sw    *Switch
}

// GateWrite returns a WritePort whose writes are subject to the switch's
// fault mode at the moment of each call.
func GateWrite(port kpn.WritePort, sw *Switch) kpn.WritePort {
	return &writeGate{inner: port, sw: sw}
}

// Write implements kpn.WritePort.
func (g *writeGate) Write(p *des.Proc, tok kpn.Token) {
	g.sw.gateWrite(p)
	tok, drop := g.sw.transformWrite(tok)
	if drop {
		return
	}
	g.inner.Write(p, tok)
}

// PortName implements kpn.WritePort.
func (g *writeGate) PortName() string { return g.inner.PortName() }
