package fault

// Gray-failure fault library: faults that are neither fail-silent nor
// cleanly degraded — slow jitter drift, duty-cycled stalls, intermittent
// token loss, silent payload corruption, and correlated multi-replica
// episodes. These are the fault classes an (m,k) weakly-hard detection
// policy must ride out (short, within-budget episodes) or a value
// cross-check must catch (corruption with clean timing); the binary
// first-violation policy either convicts on the first excursion or
// never notices.

import (
	"math/rand"

	"ftpn/internal/des"
	"ftpn/internal/kpn"
)

// Gray parameterizes the gray-failure modes. Only the fields of the
// injected mode are read.
type Gray struct {
	// Drift: the per-operation delay ramps linearly from 0 at injection
	// to ExtraUs once RampUs has elapsed (RampUs = 0 starts at full
	// strength, i.e. plain Degrade).
	ExtraUs des.Time
	RampUs  des.Time

	// Burst: operations stall for the first OnUs of every PeriodUs,
	// phase-locked to the injection instant. OnUs is clamped below
	// PeriodUs (a full-period stall is StopAll, not a burst).
	OnUs     des.Time
	PeriodUs des.Time

	// DropTokens/Corrupt: every EveryN-th gated write is affected
	// (EveryN <= 1 means every write).
	EveryN int

	// Corrupt: Seed varies which payload byte is flipped.
	Seed uint64
}

// InjectGray trips a gray-failure fault immediately. Like Inject, an
// active fault is permanent until Repair; the plain modes may also be
// passed (their Gray fields are ignored except ExtraUs for Degrade).
func (s *Switch) InjectGray(mode Mode, g Gray) {
	if s.mode != None || mode == None {
		return
	}
	if mode == Burst && g.PeriodUs > 0 && g.OnUs >= g.PeriodUs {
		g.OnUs = g.PeriodUs - 1
	}
	s.gray = g
	s.ops = 0
	s.Inject(mode, g.ExtraUs)
}

// InjectGrayAt schedules the gray fault for virtual time t.
func (s *Switch) InjectGrayAt(t des.Time, mode Mode, g Gray) {
	s.k.At(t, func() { s.InjectGray(mode, g) })
}

// grayGate applies the delay-shaped gray modes to an operation about to
// happen (called from gateRead/gateWrite with any stop already served).
func (s *Switch) grayGate(p *des.Proc) {
	switch s.mode {
	case Drift:
		extra := s.gray.ExtraUs
		if ramp := s.gray.RampUs; ramp > 0 {
			elapsed := s.k.Now() - s.at
			if elapsed < ramp {
				extra = extra * elapsed / ramp
			}
		}
		if extra > 0 {
			p.Delay(extra)
		}
	case Burst:
		period := s.gray.PeriodUs
		if period <= 0 {
			return
		}
		// Stall to the end of the current on-window; re-check after the
		// delay in case a repair (or nothing — phase is then past OnUs)
		// changed the picture.
		for s.mode == Burst {
			phase := (s.k.Now() - s.at) % period
			if phase >= s.gray.OnUs {
				return
			}
			p.Delay(s.gray.OnUs - phase)
		}
	}
}

// transformWrite applies the token-shaped gray modes to a gated write:
// returns the (possibly corrupted) token and whether to drop it.
func (s *Switch) transformWrite(tok kpn.Token) (kpn.Token, bool) {
	switch s.mode {
	case DropTokens:
		s.ops++
		return tok, s.nth()
	case Corrupt:
		s.ops++
		if s.nth() && len(tok.Payload) > 0 {
			// Flip one payload byte in a copy — cached golden payloads
			// (kpn.PayloadMemo) are shared and must stay immutable.
			corrupt := append([]byte(nil), tok.Payload...)
			idx := int((s.gray.Seed + uint64(s.ops)) % uint64(len(corrupt)))
			corrupt[idx] ^= 0x5A
			tok.Payload = corrupt
		}
		return tok, false
	default:
		return tok, false
	}
}

// nth reports whether the current op lands on the every-N schedule.
func (s *Switch) nth() bool {
	n := int64(s.gray.EveryN)
	if n <= 1 {
		return true
	}
	return s.ops%n == 0
}

// Drops returns how many gated writes the switch has swallowed or
// corrupted so far (the every-N modes); campaign engines use it to
// audit that a gray fault actually manifested.
func (s *Switch) Drops() int64 {
	if s.mode != DropTokens && s.mode != Corrupt {
		return 0
	}
	n := int64(s.gray.EveryN)
	if n <= 1 {
		return s.ops
	}
	return (s.ops + n - 1) / n
}

// Episode is one correlated stop episode scheduled by CorrelatedBursts.
type Episode struct {
	Replica int // 0-based switch index
	StartUs des.Time
	EndUs   des.Time
}

// CorrelatedBursts schedules n correlated stop-all episodes across the
// switches from one seeded schedule — the multi-replica gray-failure
// class where both replicas degrade from a shared cause (a power rail,
// a shared interconnect). Episode j starts at a deterministic random
// instant inside the j-th equal slice of [startUs, startUs+spanUs) and
// stalls switch i for onUs beginning at start+i·skewUs, so the replicas
// stall together but not perfectly in phase. The schedule is returned
// for auditing. Episodes never overlap within one switch as long as
// onUs + (len(switches)-1)·skewUs < spanUs/n.
func CorrelatedBursts(switches []*Switch, seed int64, n int, startUs, spanUs, onUs, skewUs des.Time) []Episode {
	if n < 1 || len(switches) == 0 || spanUs <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	slot := spanUs / des.Time(n)
	width := slot - onUs - des.Time(len(switches)-1)*skewUs
	if width < 1 {
		width = 1
	}
	var eps []Episode
	for j := 0; j < n; j++ {
		base := startUs + des.Time(j)*slot + des.Time(rng.Int63n(int64(width)))
		for i, sw := range switches {
			at := base + des.Time(i)*skewUs
			sw.InjectAt(at, StopAll, 0)
			sw.RepairAt(at + onUs)
			eps = append(eps, Episode{Replica: i, StartUs: at, EndUs: at + onUs})
		}
	}
	return eps
}
