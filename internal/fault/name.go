package fault

// ModeByName resolves the canonical string name of a fault mode (the
// Mode.String() form used by scenario descriptions, the topology DSL and
// experiment reports) back to the Mode. The second result reports
// whether the name is known; "none" resolves to None.
func ModeByName(name string) (Mode, bool) {
	for m := None; m <= Corrupt; m++ {
		if m.String() == name {
			return m, true
		}
	}
	return None, false
}

// IsGray reports whether the mode is parameterized by a Gray struct
// (injected via InjectGray/InjectGrayAt rather than Inject).
func (m Mode) IsGray() bool {
	switch m {
	case Drift, Burst, DropTokens, Corrupt:
		return true
	}
	return false
}
