package h264

import (
	"math"
	"testing"
	"testing/quick"
)

// testFrame synthesizes a deterministic gradient-plus-pattern frame.
func testFrame(w, h int, seed int64) []byte {
	pix := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint64(x+y)*3 + uint64(seed)*17
			n := uint64(x)*2654435761 ^ uint64(y)*40503 ^ uint64(seed)
			pix[y*w+x] = byte((v + n%13) % 256)
		}
	}
	return pix
}

func psnr(a, b []byte) float64 {
	var sum float64
	for i := range a {
		d := float64(int(a[i]) - int(b[i]))
		sum += d * d
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/(sum/float64(len(a))))
}

func TestTransformRoundTrip(t *testing.T) {
	// forward → dequant(QP such that scale is identity-ish) is not exact;
	// instead verify forward+quant+dequant+inverse at QP 0 is near-lossless.
	var x [16]int32
	orig := [16]int32{12, -3, 40, 7, 0, 25, -18, 4, 9, -9, 3, 3, 60, -60, 1, -1}
	x = orig
	forward4x4(&x)
	quantize(&x, 0)
	dequantize(&x, 0)
	inverse4x4(&x)
	for i := range x {
		d := x[i] - orig[i]
		if d < -2 || d > 2 {
			t.Fatalf("coef %d: %d vs %d", i, x[i], orig[i])
		}
	}
}

func TestQuantizerCoarsensWithQP(t *testing.T) {
	var lo, hi [16]int32
	for i := range lo {
		lo[i] = int32(i * 13)
		hi[i] = int32(i * 13)
	}
	forward4x4(&lo)
	hi = lo
	quantize(&lo, 10)
	quantize(&hi, 40)
	nzLo, nzHi := 0, 0
	for i := range lo {
		if lo[i] != 0 {
			nzLo++
		}
		if hi[i] != 0 {
			nzHi++
		}
	}
	if nzHi > nzLo {
		t.Errorf("QP40 kept %d nonzeros, QP10 kept %d; higher QP must be coarser", nzHi, nzLo)
	}
}

func TestCoefClass(t *testing.T) {
	if coefClass(0) != 0 || coefClass(2) != 0 || coefClass(8) != 0 || coefClass(10) != 0 {
		t.Error("class-0 positions wrong")
	}
	if coefClass(5) != 1 || coefClass(7) != 1 || coefClass(13) != 1 || coefClass(15) != 1 {
		t.Error("class-1 positions wrong")
	}
	if coefClass(1) != 2 || coefClass(4) != 2 {
		t.Error("class-2 positions wrong")
	}
}

func TestZigzag4IsPermutation(t *testing.T) {
	var seen [16]bool
	for _, v := range zigzag4 {
		if v < 0 || v > 15 || seen[v] {
			t.Fatal("zigzag4 is not a permutation")
		}
		seen[v] = true
	}
}

func TestGolombRoundTrip(t *testing.T) {
	w := &bitWriter{}
	ues := []uint32{0, 1, 2, 3, 7, 8, 100, 65535}
	ses := []int32{0, 1, -1, 2, -2, 17, -17, 1000, -1000}
	for _, v := range ues {
		w.writeUE(v)
	}
	for _, v := range ses {
		w.writeSE(v)
	}
	r := &bitReader{buf: w.flush()}
	for _, want := range ues {
		got, err := r.readUE()
		if err != nil || got != want {
			t.Fatalf("readUE = %d,%v want %d", got, err, want)
		}
	}
	for _, want := range ses {
		got, err := r.readSE()
		if err != nil || got != want {
			t.Fatalf("readSE = %d,%v want %d", got, err, want)
		}
	}
}

func TestGolombProperty(t *testing.T) {
	prop := func(vals []uint32) bool {
		w := &bitWriter{}
		for _, v := range vals {
			w.writeUE(v % (1 << 20))
		}
		r := &bitReader{buf: w.flush()}
		for _, v := range vals {
			got, err := r.readUE()
			if err != nil || got != v%(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	w, h := 320, 240
	src := testFrame(w, h, 1)
	data, err := Encode(src, w, h, 24)
	if err != nil {
		t.Fatal(err)
	}
	dec, dw, dh, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dw != w || dh != h {
		t.Fatalf("decoded %dx%d", dw, dh)
	}
	if p := psnr(src, dec); p < 30 {
		t.Errorf("PSNR = %.1f dB at QP24, want >= 30", p)
	}
	t.Logf("QP24: %d bytes, PSNR %.1f dB", len(data), psnr(src, dec))
}

func TestQPTradesSizeForQuality(t *testing.T) {
	w, h := 160, 128
	src := testFrame(w, h, 5)
	lo, err := Encode(src, w, h, 10)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Encode(src, w, h, 44)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) >= len(lo) {
		t.Errorf("QP44 (%dB) should be smaller than QP10 (%dB)", len(hi), len(lo))
	}
	decLo, _, _, _ := Decode(lo)
	decHi, _, _, _ := Decode(hi)
	if psnr(src, decLo) <= psnr(src, decHi) {
		t.Error("lower QP must give higher PSNR")
	}
}

func TestLosslessAtQP0ForFlatFrame(t *testing.T) {
	w, h := 32, 32
	src := make([]byte, w*h)
	for i := range src {
		src[i] = 77
	}
	data, err := Encode(src, w, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if d := int(src[i]) - int(dec[i]); d < -1 || d > 1 {
			t.Fatalf("flat frame pixel %d: %d vs %d", i, src[i], dec[i])
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(make([]byte, 12), 3, 4, 20); err == nil {
		t.Error("width not multiple of 4 should fail")
	}
	if _, err := Encode(make([]byte, 10), 4, 4, 20); err == nil {
		t.Error("bad buffer length should fail")
	}
	if _, err := Encode(make([]byte, 16), 4, 4, 99); err == nil {
		t.Error("QP out of range should fail")
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, _, _, err := Decode([]byte{1}); err == nil {
		t.Error("short input should fail")
	}
	if _, _, _, err := Decode(make([]byte, headerBytes+4)); err == nil {
		t.Error("bad magic should fail")
	}
	good, _ := Encode(testFrame(16, 16, 0), 16, 16, 20)
	if _, _, _, err := Decode(good[:len(good)-6]); err == nil {
		t.Error("truncated bitstream should fail")
	}
}

func TestDeterministic(t *testing.T) {
	src := testFrame(64, 48, 9)
	a, _ := Encode(src, 64, 48, 28)
	b, _ := Encode(src, 64, 48, 28)
	if string(a) != string(b) {
		t.Error("encoder must be deterministic")
	}
}

func TestPredictionModesSelected(t *testing.T) {
	// Left half: vertical stripes (vertical mode predicts perfectly);
	// right half: horizontal stripes (horizontal mode wins). The mode
	// search must use both.
	w, h := 64, 64
	pix := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				if x%8 < 4 {
					pix[y*w+x] = 30
				} else {
					pix[y*w+x] = 220
				}
			} else {
				if y%8 < 4 {
					pix[y*w+x] = 30
				} else {
					pix[y*w+x] = 220
				}
			}
		}
	}
	recon := make([]byte, w*h)
	modes := map[int]int{}
	for by := 0; by < h; by += 4 {
		for bx := 0; bx < w; bx += 4 {
			modes[chooseMode(pix, recon, w, h, bx, by)]++
			// Fake perfect reconstruction for mode statistics.
			for y := 0; y < 4; y++ {
				copy(recon[(by+y)*w+bx:(by+y)*w+bx+4], pix[(by+y)*w+bx:(by+y)*w+bx+4])
			}
		}
	}
	if len(modes) < 2 {
		t.Errorf("only %v modes selected; prediction search looks broken", modes)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(seed int64, qpRaw uint8) bool {
		qp := int(qpRaw) % (MaxQP + 1)
		src := testFrame(32, 16, seed%100)
		data, err := Encode(src, 32, 16, qp)
		if err != nil {
			return false
		}
		dec, w, h, err := Decode(data)
		return err == nil && w == 32 && h == 16 && len(dec) == len(src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
