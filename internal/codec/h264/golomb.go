package h264

import "fmt"

// Exp-Golomb coding, the entropy layer of H.264 headers and (in this
// simplified encoder) of residual levels.

// errBitstream reports truncated or corrupt input.
var errBitstream = fmt.Errorf("h264: truncated or corrupt bitstream")

// bitWriter packs bits MSB-first.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur int
}

func (w *bitWriter) writeBit(b uint32) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(v >> uint(i))
	}
}

// writeUE writes an unsigned Exp-Golomb code ue(v).
func (w *bitWriter) writeUE(v uint32) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.writeBit(0)
	}
	w.writeBits(x, n+1)
}

// writeSE writes a signed Exp-Golomb code se(v): v>0 → 2v-1, v<=0 → -2v.
func (w *bitWriter) writeSE(v int32) {
	if v > 0 {
		w.writeUE(uint32(2*v - 1))
	} else {
		w.writeUE(uint32(-2 * v))
	}
}

// flush pads with zero bits to a byte boundary (rbsp-trailing style with
// a stop bit first).
func (w *bitWriter) flush() []byte {
	w.writeBit(1) // stop bit
	for w.nCur != 0 {
		w.writeBit(0)
	}
	return w.buf
}

// bitReader consumes bits MSB-first.
type bitReader struct {
	buf []byte
	pos int
	bit int
}

func (r *bitReader) readBit() (uint32, error) {
	if r.pos >= len(r.buf) {
		return 0, errBitstream
	}
	b := (r.buf[r.pos] >> uint(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return uint32(b), nil
}

func (r *bitReader) readBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// readUE reads ue(v).
func (r *bitReader) readUE() (uint32, error) {
	n := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 31 {
			return 0, errBitstream
		}
	}
	if n == 0 {
		return 0, nil
	}
	rest, err := r.readBits(n)
	if err != nil {
		return 0, err
	}
	return (1<<uint(n) | rest) - 1, nil
}

// readSE reads se(v).
func (r *bitReader) readSE() (int32, error) {
	u, err := r.readUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}
